#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark set and gate against the committed
# baseline.
#
# Usage:
#   scripts/bench.sh                      # run + compare against benchmarks/baseline.txt
#   BENCH_MAX_REGRESSION_PCT=10 scripts/bench.sh
#   BENCH_COUNT=5 scripts/bench.sh       # more -count repetitions for stability
#
# The gate fails (exit 1) if any benchmark's ns/op regresses more than
# BENCH_MAX_REGRESSION_PCT percent (default 20) versus the baseline, or if
# allocs/op regresses at all beyond the allowed percentage. New benchmarks
# absent from the baseline are reported but never fail the gate; promote
# them with scripts/bench-update.sh.
#
# It also gates cross-session scan sharing: BenchmarkUnsharedSessions
# ns/op divided by BenchmarkSharedSessions ns/op (two same-spec sessions,
# decoded twice vs once) must be at least BENCH_MIN_SHARED_RATIO (default
# 1.5). The measured ratio is printed, and appended to the CI job summary
# when GITHUB_STEP_SUMMARY is set.
#
# Reader autoscaling is gated the same way: BenchmarkStaticStalledConsumer
# ns/op divided by BenchmarkAutoscaledStalledConsumer ns/op must be at
# least BENCH_MIN_AUTOSCALE_RATIO. On the 1-CPU baseline runner extra
# workers cannot buy wall time, so this is a parity gate — autoscaled must
# match static (1.0x nominal; the default 0.9 allows scheduler noise) —
# proving the controller itself is free. When a multicore baseline lands,
# raise the gate to the real speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_PATTERN=${BENCH_PATTERN:-'BenchmarkIKJTConversion$|BenchmarkJaggedIndexSelect$|BenchmarkJaggedIndexSelectAlloc$|BenchmarkIKJTToKJTRoundTrip$|BenchmarkDWRFWriteClustered$|BenchmarkReaderTier$|BenchmarkReaderTierPipelined$|BenchmarkServiceSession$|BenchmarkRemoteSession$|BenchmarkSharedSessions$|BenchmarkUnsharedSessions$|BenchmarkStaticStalledConsumer$|BenchmarkAutoscaledStalledConsumer$|BenchmarkShardedFleet1$|BenchmarkShardedFleet2$|BenchmarkShardedFleet4$|BenchmarkPipelineEndToEnd$'}
BENCH_COUNT=${BENCH_COUNT:-1}
MAX_PCT=${BENCH_MAX_REGRESSION_PCT:-20}
BASELINE=${BENCH_BASELINE:-benchmarks/baseline.txt}
LATEST=${BENCH_LATEST:-benchmarks/latest.txt}

mkdir -p "$(dirname "$LATEST")"
go test -run '^$' -bench "$BENCH_PATTERN" -benchmem -count "$BENCH_COUNT" . | tee "$LATEST"

# --- Cross-session scan-sharing gate: two same-spec sessions through the
# ScanCache must beat two uncached sessions by at least
# BENCH_MIN_SHARED_RATIO in aggregate ns/op (ISSUE 3 criterion: >= 1.5x
# aggregate throughput). Computed from this run, not the baseline, so the
# gate holds on every machine the benchmarks actually ran on.
MIN_SHARED_RATIO=${BENCH_MIN_SHARED_RATIO:-1.5}
awk -v min="$MIN_SHARED_RATIO" '
    /^BenchmarkSharedSessions/   { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < shared || !shared)) shared = $i + 0 }
    /^BenchmarkUnsharedSessions/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < unshared || !unshared)) unshared = $i + 0 }
    END {
        if (!shared || !unshared) {
            print "bench: shared-session ratio not measured (pattern excluded the session pair)"
            exit 0
        }
        ratio = unshared / shared
        printf "bench: shared-vs-unshared sessions: %.0f / %.0f ns/op = %.2fx aggregate throughput (gate %.2fx)\n", unshared, shared, ratio, min
        summary = ENVIRON["GITHUB_STEP_SUMMARY"]
        if (summary != "") {
            printf "### Cross-session scan sharing\n\n| sessions | ns/op |\n|---|---|\n| 2 unshared | %.0f |\n| 2 shared (ScanCache) | %.0f |\n\n**%.2fx** aggregate throughput (gate: >= %.2fx)\n", unshared, shared, ratio, min >> summary
        }
        if (ratio < min) {
            printf "bench: FAIL — shared sessions only %.2fx faster, need %.2fx\n", ratio, min
            exit 1
        }
    }
' "$LATEST"

# --- Network-boundary overhead gate: a session pulled through the
# dppnet TCP transport on loopback (BenchmarkRemoteSession) may cost at
# most BENCH_MAX_REMOTE_OVERHEAD_PCT percent more than the same scan
# through an in-process session (BenchmarkServiceSession). Same-run
# ratio, so host speed cancels out.
MAX_REMOTE_PCT=${BENCH_MAX_REMOTE_OVERHEAD_PCT:-25}
awk -v max="$MAX_REMOTE_PCT" '
    /^BenchmarkServiceSession/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < local || !local)) local = $i + 0 }
    /^BenchmarkRemoteSession/  { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < remote || !remote)) remote = $i + 0 }
    END {
        if (!local || !remote) {
            print "bench: remote-session overhead not measured (pattern excluded the session pair)"
            exit 0
        }
        pct = (remote - local) / local * 100
        printf "bench: remote vs local session: %.0f / %.0f ns/op = %+.1f%% loopback overhead (gate %.0f%%)\n", remote, local, pct, max
        summary = ENVIRON["GITHUB_STEP_SUMMARY"]
        if (summary != "") {
            printf "### Network service boundary\n\n| session | ns/op |\n|---|---|\n| local (in-process) | %.0f |\n| remote (dppnet loopback) | %.0f |\n\n**%+.1f%%** loopback overhead (gate: <= %.0f%%)\n", local, remote, pct, max >> summary
        }
        if (pct > max) {
            printf "bench: FAIL — remote session %.1f%% slower than local, cap %.0f%%\n", pct, max
            exit 1
        }
    }
' "$LATEST"

# --- Sharded-fleet capacity gate: the same multi-epoch scan over two
# preprocessing shards (BenchmarkShardedFleet2) must beat one shard
# (BenchmarkShardedFleet1) by at least BENCH_MIN_SHARD_SCALING. The
# per-shard ScanCache is budgeted at 3/4 of the table, so one shard
# thrashes every epoch while two shards' summed (rendezvous-partitioned)
# capacity holds it — the win is additive cache, not parallelism, which
# is why it gates cleanly on the 1-CPU runner. Same-run ratio.
MIN_SHARD_SCALING=${BENCH_MIN_SHARD_SCALING:-1.3}
awk -v min="$MIN_SHARD_SCALING" '
    /^BenchmarkShardedFleet1[^0-9]/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < one || !one)) one = $i + 0 }
    /^BenchmarkShardedFleet2[^0-9]/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < two || !two)) two = $i + 0 }
    END {
        if (!one || !two) {
            print "bench: shard-scaling ratio not measured (pattern excluded the fleet pair)"
            exit 0
        }
        ratio = one / two
        printf "bench: 2-shard vs 1-shard fleet: %.0f / %.0f ns/op = %.2fx aggregate throughput (gate %.2fx)\n", one, two, ratio, min
        summary = ENVIRON["GITHUB_STEP_SUMMARY"]
        if (summary != "") {
            printf "### Sharded preprocessing fleet\n\n| shards | ns/op |\n|---|---|\n| 1 (cache thrashes) | %.0f |\n| 2 (fleet cache fits) | %.0f |\n\n**%.2fx** aggregate throughput (gate: >= %.2fx; per-shard cache fixed at 3/4 table)\n", one, two, ratio, min >> summary
        }
        if (ratio < min) {
            printf "bench: FAIL — 2-shard fleet only %.2fx faster than 1 shard, need %.2fx\n", ratio, min
            exit 1
        }
    }
' "$LATEST"

# --- Autoscaling parity gate: a session whose worker pool is resized
# live by the AutoScaler (BenchmarkAutoscaledStalledConsumer) must not
# lose wall time against the same scan with a static pool
# (BenchmarkStaticStalledConsumer). Same-run ratio; on the 1-CPU runner
# this pins "the controller is free" (parity), not a speedup — see the
# header comment.
MIN_AUTOSCALE_RATIO=${BENCH_MIN_AUTOSCALE_RATIO:-0.9}
awk -v min="$MIN_AUTOSCALE_RATIO" '
    /^BenchmarkStaticStalledConsumer/     { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < static || !static)) static = $i + 0 }
    /^BenchmarkAutoscaledStalledConsumer/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && ($i + 0 < scaled || !scaled)) scaled = $i + 0 }
    END {
        if (!static || !scaled) {
            print "bench: autoscale ratio not measured (pattern excluded the stalled-consumer pair)"
            exit 0
        }
        ratio = static / scaled
        printf "bench: autoscaled vs static stalled-consumer session: %.0f / %.0f ns/op = %.2fx (gate %.2fx; 1.0x = parity)\n", static, scaled, ratio, min
        summary = ENVIRON["GITHUB_STEP_SUMMARY"]
        if (summary != "") {
            printf "### Reader autoscaling\n\n| session | ns/op |\n|---|---|\n| static 4-worker pool | %.0f |\n| autoscaled pool (1-4) | %.0f |\n\n**%.2fx** static/autoscaled (gate: >= %.2fx; parity on the 1-CPU runner)\n", static, scaled, ratio, min >> summary
        }
        if (ratio < min) {
            printf "bench: FAIL — autoscaled session %.2fx of static, need %.2fx\n", ratio, min
            exit 1
        }
    }
' "$LATEST"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench: no baseline at $BASELINE — run scripts/bench-update.sh to create one" >&2
    exit 0
fi

awk -v max="$MAX_PCT" '
    # Collect the best (minimum) ns/op and allocs/op per benchmark name,
    # so -count > 1 runs gate on the least-noisy sample.
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
        ns = ""; allocs = ""
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op") ns = $i
            if ($(i+1) == "allocs/op") allocs = $i
        }
        if (ns == "") next
        if (FNR == NR) {
            if (!(name in base_ns) || ns + 0 < base_ns[name]) {
                base_ns[name] = ns + 0
                base_allocs[name] = allocs + 0
            }
        } else {
            seen[name] = 1
            if (!(name in latest_ns) || ns + 0 < latest_ns[name]) {
                latest_ns[name] = ns + 0
                latest_allocs[name] = allocs + 0
            }
        }
    }
    END {
        fail = 0
        printf "%-36s %14s %14s %9s\n", "benchmark", "baseline ns/op", "latest ns/op", "delta"
        for (name in seen) {
            if (!(name in base_ns)) {
                printf "%-36s %14s %14.0f %9s\n", name, "(new)", latest_ns[name], "-"
                continue
            }
            pct = (latest_ns[name] - base_ns[name]) / base_ns[name] * 100
            mark = ""
            if (pct > max) { mark = "  << REGRESSION"; fail = 1 }
            printf "%-36s %14.0f %14.0f %+8.1f%%%s\n", name, base_ns[name], latest_ns[name], pct, mark
            # A zero-alloc baseline is a hard contract: any alloc at all
            # regresses it. Non-zero baselines get the percentage gate.
            if ((base_allocs[name] == 0 && latest_allocs[name] > 0) ||
                (base_allocs[name] > 0 && latest_allocs[name] > base_allocs[name] * (1 + max / 100))) {
                printf "%-36s allocs/op %.0f -> %.0f  << ALLOC REGRESSION\n", name, base_allocs[name], latest_allocs[name]
                fail = 1
            }
        }
        missing = 0
        for (name in base_ns) {
            if (!(name in seen)) {
                printf "%-36s %14.0f %14s %9s  (baseline entry uncompared)\n", name, base_ns[name], "(absent)", "-"
                missing = 1
            }
        }
        if (missing) {
            printf "bench: WARNING — baseline entries missing from this run (narrowed BENCH_PATTERN, or a renamed/deleted benchmark that needs scripts/bench-update.sh)\n"
        }
        if (fail) {
            printf "bench: FAIL — regression beyond %s%% versus baseline\n", max
            exit 1
        }
        printf "bench: OK (gate %s%%)\n", max
    }
' "$BASELINE" "$LATEST"
