#!/usr/bin/env bash
# docs-check.sh — documentation gate, run by the CI `docs` job.
#
#   1. Every internal/* package must carry a package comment (godoc
#      `// Package <name> ...` on some non-test file).
#   2. Every ```go fence in docs/*.md and the top-level *.md files must
#      be gofmt-clean. Snippets without a `package` clause are checked
#      as-is wrapped in a synthetic `package docs`; write complete
#      top-level declarations or use a plain ``` fence for shell/pseudo
#      code.
#   3. Every relative markdown link in docs/*.md and the top-level
#      *.md files must resolve to an existing file or directory.
#
# Usage: scripts/docs-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. package comments -------------------------------------------------
# godoc ignores _test.go files, so the comment must live on a non-test
# file to count.
for dir in internal/*/; do
    pkg=$(basename "$dir")
    files=$(find "$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go')
    if [[ -z "$files" ]] || ! echo "$files" | xargs grep -l -q "^// Package $pkg" 2>/dev/null; then
        echo "docs: package $dir has no '// Package $pkg' comment on a non-test file"
        fail=1
    fi
done

# --- 2. go code fences ---------------------------------------------------
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for md in docs/*.md *.md; do
    [[ -f "$md" ]] || continue
    awk -v md="$md" -v tmpdir="$tmpdir" '
        /^```go$/ { infence = 1; n++; start = NR; buf = ""; next }
        /^```$/ && infence {
            infence = 0
            slug = md; gsub(/[^A-Za-z0-9]/, "_", slug)
            file = sprintf("%s/fence-%s-%d.go", tmpdir, slug, start)
            printf "%s", buf > file
            close(file)
            printf "%s:%d %s\n", md, start, file >> (tmpdir "/index")
            next
        }
        infence { buf = buf $0 "\n" }
    ' "$md"
done
if [[ -f "$tmpdir/index" ]]; then
    while read -r where file; do
        src="$file"
        if ! grep -q '^package ' "$file"; then
            src="$file.wrapped.go"
            { echo "package docs"; echo; cat "$file"; } > "$src"
        fi
        if ! out=$(gofmt -l -e "$src" 2>&1); then
            echo "docs: $where: go fence does not parse:"
            echo "$out" | sed 's/^/    /'
            fail=1
        elif [[ -n "$out" ]]; then
            echo "docs: $where: go fence is not gofmt-clean"
            fail=1
        fi
    done < "$tmpdir/index"
fi

# --- 3. relative links ---------------------------------------------------
for md in docs/*.md *.md; do
    [[ -f "$md" ]] || continue
    dir=$(dirname "$md")
    # Markdown inline links: [text](target). Skip absolute URLs and
    # pure in-page anchors. grep exits 1 on link-free files — that is
    # fine, not a failure.
    { grep -o '\[[^][]*\]([^)]*)' "$md" || true; } | sed 's/^.*](\([^)]*\))$/\1/' | while read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [[ -z "$path" ]] && continue
        if [[ ! -e "$dir/$path" ]]; then
            echo "docs: $md: broken link -> $target"
            exit 1
        fi
    done || fail=1
done

if [[ "$fail" -ne 0 ]]; then
    echo "docs: FAIL"
    exit 1
fi
echo "docs: OK (package comments, go fences, links)"
