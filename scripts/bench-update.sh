#!/usr/bin/env bash
# bench-update.sh — promote fresh benchmark numbers to the committed
# baseline. Run this on the same class of machine the gate will run on,
# after verifying the change that moved the numbers is intentional, then
# commit benchmarks/baseline.txt.
#
# Usage:
#   scripts/bench-update.sh            # re-run benchmarks, overwrite baseline
#   BENCH_PROMOTE_LATEST=1 scripts/bench-update.sh   # promote latest.txt as-is
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BENCH_BASELINE:-benchmarks/baseline.txt}
LATEST=${BENCH_LATEST:-benchmarks/latest.txt}

if [[ "${BENCH_PROMOTE_LATEST:-0}" == "1" ]]; then
    if [[ ! -f "$LATEST" ]]; then
        echo "bench-update: no $LATEST to promote; run scripts/bench.sh first" >&2
        exit 1
    fi
else
    BENCH_BASELINE=/dev/null BENCH_LATEST="$LATEST" scripts/bench.sh
fi

mkdir -p "$(dirname "$BASELINE")"
cp "$LATEST" "$BASELINE"
echo "bench-update: promoted $LATEST -> $BASELINE"
