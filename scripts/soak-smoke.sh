#!/usr/bin/env bash
# soak-smoke.sh — short SLO-gated soak of a real two-process run, the CI
# smoke for the observability subsystem.
#
# Usage:
#   scripts/soak-smoke.sh                 # ~5s soak with CI-safe gates
#   SOAK_DURATION=30s scripts/soak-smoke.sh
#
# What it proves, end to end:
#   1. recd-serve comes up with -autoscale and an -obs-listen sidecar.
#   2. recd-soak drives mixed-profile load (shared / pooled / think)
#      against the live server and its SLO gates pass: p99 batch wait
#      under SOAK_SLO_P99, aggregate throughput over SOAK_MIN_TPUT,
#      zero session errors.
#   3. The sidecar answers /metrics mid-run, and the final scrape shows
#      nonzero session, cache-hit, scale-event, net-batch, and
#      access-log series (-check-metrics) — the golden-format test pins
#      their names, this pins that a real run moves them.
#   4. A -reconnect soak survives the server being SIGKILLed and
#      restarted mid-run: every stream continues against the new process
#      by deterministic offset replay (the old resume table died with
#      it) with zero stream errors, and the restarted server's
#      recd_replayed_sessions_total is nonzero — the replay counter,
#      not recd_resumed_sessions_total, which only counts parked-token
#      resumes the restarted process cannot serve.
#   5. SIGTERM shuts the (restarted) server down gracefully: it drains,
#      prints its shard stats and the access-log tally, and exits 0.
#   6. Drain handoff: with a two-shard fleet under -reconnect load,
#      SIGTERM on one shard mid-stream hands its active clients a drain
#      notice; they fail over to the surviving shard with zero stream
#      errors, the soak reports nonzero drain handoffs, and the drained
#      server exits 0.
#   7. Live tail: a -follow server hosts the landing writer while a
#      -follow trainer tails the growing table in windows and drains the
#      remainder after EndFollow. Gates: the trainer exits 0 with zero
#      stream errors (any mid-stream error is fatal to it) and the
#      server's final scrape shows nonzero recd_landed_files_total.
#
# Gates are deliberately loose (CI runners are slow shared machines);
# tighten locally via the SOAK_* variables.
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_DURATION=${SOAK_DURATION:-5s}
SOAK_KILL_DURATION=${SOAK_KILL_DURATION:-8s}
SOAK_SLO_P99=${SOAK_SLO_P99:-2s}
SOAK_MIN_TPUT=${SOAK_MIN_TPUT:-5}
SOAK_SERVE_ADDR=${SOAK_SERVE_ADDR:-127.0.0.1:7171}
SOAK_SERVE2_ADDR=${SOAK_SERVE2_ADDR:-127.0.0.1:7172}
SOAK_OBS_ADDR=${SOAK_OBS_ADDR:-127.0.0.1:9171}
SOAK_OBS2_ADDR=${SOAK_OBS2_ADDR:-127.0.0.1:9172}
TABLE_FLAGS=(-sessions 60 -batch 64)
# The default table is one 724-row DWRF file (RowsPerFile 4096), which
# rendezvous routing places wholly on one shard — draining the other
# would touch nothing. The drain phase lands ~35k rows (~9 files) so
# both shards deterministically own part of every session's file plan.
DRAIN_TABLE_FLAGS=(-sessions 2500 -batch 64)

bin=$(mktemp -d)
servelog="$bin/serve.log"
trap 'kill "${serve_pid:-}" "${serve2_pid:-}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/recd-serve" ./cmd/recd-serve
go build -o "$bin/recd-soak" ./cmd/recd-soak

"$bin/recd-serve" -listen "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -autoscale -obs-listen "$SOAK_OBS_ADDR" >"$servelog" 2>&1 &
serve_pid=$!

# The soak's own -ready-wait handles server startup; run it with every
# gate armed.
"$bin/recd-soak" -connect "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -duration "$SOAK_DURATION" -concurrency 6 \
    -obs-scrape "http://$SOAK_OBS_ADDR" -check-metrics \
    -slo-p99 "$SOAK_SLO_P99" -min-throughput "$SOAK_MIN_TPUT"

# Kill-and-reconnect: a -reconnect soak must ride out the server being
# SIGKILLed and restarted mid-run. The p99 and scrape gates stay off
# (the dead window shows up as batch wait, and a mid-run scrape could
# land on it); the zero-stream-errors gate stays armed — opens that hit
# the dead window are retried and tallied separately.
killlog="$bin/soak-kill.log"
"$bin/recd-soak" -connect "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -duration "$SOAK_KILL_DURATION" -concurrency 4 -reconnect \
    >"$killlog" 2>&1 &
soak_pid=$!
sleep 2
kill -KILL "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
"$bin/recd-serve" -listen "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -autoscale -obs-listen "$SOAK_OBS_ADDR" >"$servelog" 2>&1 &
serve_pid=$!
if ! wait "$soak_pid"; then
    echo "soak-smoke: reconnect soak did not survive the server restart" >&2
    cat "$killlog" >&2
    exit 1
fi
cat "$killlog"
replayed=$(curl -sf "http://$SOAK_OBS_ADDR/metrics" \
    | awk '$1 ~ /^recd_replayed_sessions_total/ {s+=$2} END {print s+0}')
if [ "${replayed%%.*}" -lt 1 ]; then
    echo "soak-smoke: restarted server replayed no sessions (recd_replayed_sessions_total=$replayed)" >&2
    cat "$servelog" >&2
    exit 1
fi
echo "soak-smoke: restarted server offset-replayed $replayed session(s) across the kill"

# Graceful shutdown: SIGTERM must produce a clean exit and the
# shutdown-time access-log tally.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "soak-smoke: recd-serve exited nonzero after SIGTERM" >&2
    cat "$servelog" >&2
    exit 1
fi
if ! grep -q "access log: .* opens" "$servelog"; then
    echo "soak-smoke: shutdown output missing the access-log tally" >&2
    cat "$servelog" >&2
    exit 1
fi

# Drain handoff: a two-shard fleet under -reconnect load, SIGTERM on
# shard 2 mid-run. Its in-flight streams get a drain notice and fail
# over to the surviving shard — the soak must finish with zero stream
# errors and report nonzero drain handoffs, and the drained server
# must exit 0.
"$bin/recd-serve" -listen "$SOAK_SERVE_ADDR" "${DRAIN_TABLE_FLAGS[@]}" \
    -autoscale -obs-listen "$SOAK_OBS_ADDR" >"$servelog" 2>&1 &
serve_pid=$!
serve2log="$bin/serve2.log"
"$bin/recd-serve" -listen "$SOAK_SERVE2_ADDR" "${DRAIN_TABLE_FLAGS[@]}" \
    -autoscale -obs-listen "$SOAK_OBS2_ADDR" >"$serve2log" 2>&1 &
serve2_pid=$!
drainlog="$bin/soak-drain.log"
"$bin/recd-soak" -connect "$SOAK_SERVE_ADDR,$SOAK_SERVE2_ADDR" "${DRAIN_TABLE_FLAGS[@]}" \
    -duration "$SOAK_KILL_DURATION" -concurrency 4 -reconnect \
    >"$drainlog" 2>&1 &
soak_pid=$!
# SIGTERM only once the victim shard is mid-session: a fixed sleep can
# land during the table build on a slow runner and drain an idle shard.
active=0
for _ in $(seq 120); do
    active=$(curl -sf "http://$SOAK_OBS2_ADDR/metrics" 2>/dev/null \
        | awk '$1 ~ /^recd_sessions_active/ {s+=$2} END {print s+0}' || true)
    [ "${active:-0}" -ge 1 ] && break
    sleep 0.25
done
if [ "${active:-0}" -lt 1 ]; then
    echo "soak-smoke: victim shard never reported an active session" >&2
    cat "$serve2log" >&2
    exit 1
fi
kill -TERM "$serve2_pid"
if ! wait "$soak_pid"; then
    echo "soak-smoke: fleet soak did not survive the shard drain" >&2
    cat "$drainlog" >&2
    exit 1
fi
cat "$drainlog"
if ! wait "$serve2_pid"; then
    echo "soak-smoke: drained shard exited nonzero" >&2
    cat "$serve2log" >&2
    exit 1
fi
handoffs=$(awk '/drain handoffs/ {print $(NF-2)+0; exit}' "$drainlog")
if [ "${handoffs:-0}" -lt 1 ]; then
    echo "soak-smoke: shard drain produced no handoffs (got ${handoffs:-0})" >&2
    cat "$serve2log" >&2
    exit 1
fi
echo "soak-smoke: $handoffs stream(s) handed off across the shard drain"
kill -TERM "$serve_pid"
wait "$serve_pid" || true

# Live tail: the server hosts the landing writer (-follow), the trainer
# tails the growing table over the wire. The trainer treats any stream
# error as fatal, so its exit code is the zero-stream-errors gate; the
# sidecar's recd_landed_files_total proves the writer really landed.
go build -o "$bin/recd-train" ./cmd/recd-train
"$bin/recd-serve" -listen "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -follow -flush-interval 150ms -obs-listen "$SOAK_OBS_ADDR" >"$servelog" 2>&1 &
serve_pid=$!
for _ in $(seq 120); do
    curl -sf "http://$SOAK_OBS_ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.25
done
taillog="$bin/train-tail.log"
if ! "$bin/recd-train" -connect "$SOAK_SERVE_ADDR" -follow -epochs 2 >"$taillog" 2>&1; then
    echo "soak-smoke: live-tail trainer hit a stream error" >&2
    cat "$taillog" "$servelog" >&2
    exit 1
fi
if ! grep -q "follow tail ended" "$taillog"; then
    echo "soak-smoke: live-tail trainer never drained its tail" >&2
    cat "$taillog" >&2
    exit 1
fi
landed=$(curl -sf "http://$SOAK_OBS_ADDR/metrics" \
    | awk '$1 ~ /^recd_landed_files_total/ {s+=$2} END {print s+0}')
if [ "${landed%%.*}" -lt 1 ]; then
    echo "soak-smoke: live-tail server landed no files (recd_landed_files_total=$landed)" >&2
    cat "$servelog" >&2
    exit 1
fi
cat "$taillog"
echo "soak-smoke: live tail landed $landed file(s), zero stream errors"
kill -TERM "$serve_pid"
wait "$serve_pid" || true

echo "soak-smoke: PASS"
cat "$servelog"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### Soak smoke"
        echo ""
        echo '```'
        cat "$servelog"
        echo '```'
    } >>"$GITHUB_STEP_SUMMARY"
fi
