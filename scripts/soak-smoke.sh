#!/usr/bin/env bash
# soak-smoke.sh — short SLO-gated soak of a real two-process run, the CI
# smoke for the observability subsystem.
#
# Usage:
#   scripts/soak-smoke.sh                 # ~5s soak with CI-safe gates
#   SOAK_DURATION=30s scripts/soak-smoke.sh
#
# What it proves, end to end:
#   1. recd-serve comes up with -autoscale and an -obs-listen sidecar.
#   2. recd-soak drives mixed-profile load (shared / pooled / think)
#      against the live server and its SLO gates pass: p99 batch wait
#      under SOAK_SLO_P99, aggregate throughput over SOAK_MIN_TPUT,
#      zero session errors.
#   3. The sidecar answers /metrics mid-run, and the final scrape shows
#      nonzero session, cache-hit, scale-event, net-batch, and
#      access-log series (-check-metrics) — the golden-format test pins
#      their names, this pins that a real run moves them.
#   4. A -reconnect soak survives the server being SIGKILLed and
#      restarted mid-run: every stream resumes against the new process
#      (offset replay — the old resume table died with it) with zero
#      stream errors, and the restarted server's
#      recd_resumed_sessions_total is nonzero.
#   5. SIGTERM shuts the (restarted) server down gracefully: it drains,
#      prints its shard stats and the access-log tally, and exits 0.
#
# Gates are deliberately loose (CI runners are slow shared machines);
# tighten locally via the SOAK_* variables.
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_DURATION=${SOAK_DURATION:-5s}
SOAK_KILL_DURATION=${SOAK_KILL_DURATION:-8s}
SOAK_SLO_P99=${SOAK_SLO_P99:-2s}
SOAK_MIN_TPUT=${SOAK_MIN_TPUT:-5}
SOAK_SERVE_ADDR=${SOAK_SERVE_ADDR:-127.0.0.1:7171}
SOAK_OBS_ADDR=${SOAK_OBS_ADDR:-127.0.0.1:9171}
TABLE_FLAGS=(-sessions 60 -batch 64)

bin=$(mktemp -d)
servelog="$bin/serve.log"
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/recd-serve" ./cmd/recd-serve
go build -o "$bin/recd-soak" ./cmd/recd-soak

"$bin/recd-serve" -listen "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -autoscale -obs-listen "$SOAK_OBS_ADDR" >"$servelog" 2>&1 &
serve_pid=$!

# The soak's own -ready-wait handles server startup; run it with every
# gate armed.
"$bin/recd-soak" -connect "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -duration "$SOAK_DURATION" -concurrency 6 \
    -obs-scrape "http://$SOAK_OBS_ADDR" -check-metrics \
    -slo-p99 "$SOAK_SLO_P99" -min-throughput "$SOAK_MIN_TPUT"

# Kill-and-reconnect: a -reconnect soak must ride out the server being
# SIGKILLed and restarted mid-run. The p99 and scrape gates stay off
# (the dead window shows up as batch wait, and a mid-run scrape could
# land on it); the zero-stream-errors gate stays armed — opens that hit
# the dead window are retried and tallied separately.
killlog="$bin/soak-kill.log"
"$bin/recd-soak" -connect "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -duration "$SOAK_KILL_DURATION" -concurrency 4 -reconnect \
    >"$killlog" 2>&1 &
soak_pid=$!
sleep 2
kill -KILL "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
"$bin/recd-serve" -listen "$SOAK_SERVE_ADDR" "${TABLE_FLAGS[@]}" \
    -autoscale -obs-listen "$SOAK_OBS_ADDR" >"$servelog" 2>&1 &
serve_pid=$!
if ! wait "$soak_pid"; then
    echo "soak-smoke: reconnect soak did not survive the server restart" >&2
    cat "$killlog" >&2
    exit 1
fi
cat "$killlog"
resumed=$(curl -sf "http://$SOAK_OBS_ADDR/metrics" \
    | awk '$1 ~ /^recd_resumed_sessions_total/ {s+=$2} END {print s+0}')
if [ "${resumed%%.*}" -lt 1 ]; then
    echo "soak-smoke: restarted server resumed no sessions (recd_resumed_sessions_total=$resumed)" >&2
    cat "$servelog" >&2
    exit 1
fi
echo "soak-smoke: restarted server resumed $resumed session(s) across the kill"

# Graceful shutdown: SIGTERM must produce a clean exit and the
# shutdown-time access-log tally.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "soak-smoke: recd-serve exited nonzero after SIGTERM" >&2
    cat "$servelog" >&2
    exit 1
fi
if ! grep -q "access log: .* opens" "$servelog"; then
    echo "soak-smoke: shutdown output missing the access-log tally" >&2
    cat "$servelog" >&2
    exit 1
fi

echo "soak-smoke: PASS"
cat "$servelog"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### Soak smoke"
        echo ""
        echo '```'
        cat "$servelog"
        echo '```'
    } >>"$GITHUB_STEP_SUMMARY"
fi
