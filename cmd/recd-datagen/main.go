// Command recd-datagen synthesizes a session-centric DLRM training
// partition and writes it as DWRF files to a local directory, optionally
// clustered by session (O2). The output can be inspected with
// recd-inspect.
//
// Usage:
//
//	recd-datagen -out /tmp/recd-table -sessions 500 -cluster
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/etl"
)

func main() {
	var (
		out      = flag.String("out", "recd-table", "output directory")
		sessions = flag.Int("sessions", 500, "number of user sessions")
		meanS    = flag.Float64("mean-s", 16.5, "mean samples per session")
		userSeq  = flag.Int("user-seq", 9, "user sequence features")
		userElem = flag.Int("user-elem", 12, "element-wise user features")
		item     = flag.Int("item", 4, "item features")
		dense    = flag.Int("dense", 8, "dense features")
		seqLen   = flag.Int("seq-len", 32, "mean sequence feature length")
		cluster  = flag.Bool("cluster", false, "cluster by session ID (O2)")
		rowsPer  = flag.Int("rows-per-file", 4096, "rows per DWRF file")
		stripe   = flag.Int("stripe-rows", 128, "rows per stripe")
		seed     = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: *userSeq, UserElem: *userElem, Item: *item, Dense: *dense,
		SeqLen: *seqLen, Seed: *seed,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              *sessions,
		MeanSamplesPerSession: *meanS,
		Seed:                  *seed,
	})
	samples := gen.GeneratePartition()
	if *cluster {
		samples = etl.ClusterBySession(samples)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var total dwrf.PartitionStats
	part := 0
	for start := 0; start < len(samples); start += *rowsPer {
		end := start + *rowsPer
		if end > len(samples) {
			end = len(samples)
		}
		w, err := dwrf.NewFileWriter(schema, dwrf.WriterOptions{StripeRows: *stripe})
		if err != nil {
			fatal(err)
		}
		if err := w.WriteRows(samples[start:end]); err != nil {
			fatal(err)
		}
		data, stats, err := w.Finish()
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("part-%05d.dwrf", part))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		total.Add(stats)
		part++
	}

	fmt.Printf("wrote %d files, %d rows (%d sessions, measured S=%.2f)\n",
		total.Files, total.Rows, *sessions, datagen.MeasuredS(samples))
	fmt.Printf("raw %.1f MiB, compressed %.1f MiB, ratio %.2fx (clustered=%v)\n",
		float64(total.RawBytes)/(1<<20), float64(total.CompressedBytes)/(1<<20),
		total.CompressionRatio(), *cluster)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recd-datagen:", err)
	os.Exit(1)
}
