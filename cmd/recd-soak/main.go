// Command recd-soak is the SLO-gated load generator for a running
// recd-serve: it drives N concurrent remote preprocessing sessions with
// a mixed profile set for a fixed duration, measures what a trainer
// would feel — per-batch wait latency (p50/p95/p99), aggregate batch
// throughput — reads back the server's cache and autoscaler accounting,
// and exits nonzero when a gate fails. CI runs it as a smoke soak
// (scripts/soak-smoke.sh); operators run it longer against a staging
// fleet.
//
// The session profiles exercise the serving paths that matter:
//
//   - shared: ShareScans sessions — repeated scans hit the server's
//     ScanCache, so the soak proves cross-session sharing under load.
//   - pooled: plain queue-backed sessions with a small worker pool —
//     the non-shared decode path.
//   - think: a deliberately slow consumer (per-batch -think sleep on a
//     small credit window) — starves the server's merge into consumer
//     stall so a server started with -autoscale must scale down, and
//     the credit-stall counters must move.
//
// Both processes must be started with the same -sessions/-batch/-seed
// so they derive the same table (exactly as recd-train does). With a
// comma-separated -connect list the soak opens rendezvous-routed fleet
// sessions over every shard. With -obs-scrape pointed at the server's
// -obs-listen address the soak scrapes /metrics mid-run and at the end,
// and -check-metrics gates on the series a healthy run must move.
//
// Usage:
//
//	recd-serve -listen 127.0.0.1:7077 -autoscale -obs-listen 127.0.0.1:9077 &
//	recd-soak -connect 127.0.0.1:7077 -duration 10s \
//	  -obs-scrape http://127.0.0.1:9077 -check-metrics \
//	  -slo-p99 500ms -min-throughput 20
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/dppshard"
)

func main() {
	var (
		connect     = flag.String("connect", "127.0.0.1:7077", "recd-serve address, or a comma-separated shard list for a fleet soak")
		sessions    = flag.Int("sessions", 200, "training sessions in the landed table (match recd-serve)")
		batch       = flag.Int("batch", 128, "batch size the derived spec uses (match recd-serve)")
		seed        = flag.Int64("seed", 11, "random seed (match recd-serve)")
		concurrency = flag.Int("concurrency", 6, "concurrent session workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long workers keep opening sessions")
		profilesArg = flag.String("profiles", "shared,pooled,think", "comma-separated worker profile mix: shared, pooled, think")
		think       = flag.Duration("think", 5*time.Millisecond, "per-batch consumer think time in the think profile")
		readyWait   = flag.Duration("ready-wait", 30*time.Second, "how long to wait for every shard to answer statsz before starting")
		obsScrape   = flag.String("obs-scrape", "", "base URL of the server's -obs-listen sidecar; enables mid-run and final /metrics scrapes")
		sloP99      = flag.Duration("slo-p99", 0, "fail if p99 batch wait exceeds this; 0 disables the gate")
		minTput     = flag.Float64("min-throughput", 0, "fail if aggregate batches/sec falls below this; 0 disables the gate")
		checkSeries = flag.Bool("check-metrics", false, "fail unless the final /metrics scrape shows nonzero session, cache-hit, scale-event, and net-batch series (needs -obs-scrape and a server with -autoscale)")
		reconnect   = flag.Bool("reconnect", false, "resume sessions over lost connections, so in-flight streams survive a server restart; failures to open a session (a dead serving window) are then reported separately and do not fail the error gate")
		authToken   = flag.String("auth-token", "", "tenant token sent in every session handshake (match a line in recd-serve's -tenants file)")
	)
	flag.Parse()

	addrs := splitAddrs(*connect)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-connect needs at least one address"))
	}
	profiles := splitAddrs(*profilesArg)
	if len(profiles) == 0 {
		fatal(fmt.Errorf("-profiles needs at least one profile"))
	}
	for _, p := range profiles {
		if p != "shared" && p != "pooled" && p != "think" {
			fatal(fmt.Errorf("unknown profile %q", p))
		}
	}
	if *checkSeries && *obsScrape == "" {
		fatal(fmt.Errorf("-check-metrics needs -obs-scrape"))
	}

	// The soak derives the same table the server landed — file lists and
	// spec fingerprints match, so ShareScans sessions share the server's
	// cache with each other (and with any trainer using the same flags).
	tt, err := core.BuildTrainTable(core.TrainTableConfig{
		Sessions: *sessions, Batch: *batch, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	files, err := tt.Catalog.Files("train", 0)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	waitReady(ctx, addrs, *readyWait)

	// open(profile) dials one session. Fleet soaks route every profile
	// through the rendezvous multiplexer (its sessions are ShareScans by
	// construction); single-shard soaks exercise the distinct session
	// modes directly.
	var resume dppnet.ResumePolicy
	if *reconnect {
		resume = dppnet.ResumePolicy{MaxAttempts: 40, BaseDelay: 100 * time.Millisecond}
	}
	var fleet *dppshard.Fleet
	if len(addrs) > 1 {
		if fleet, err = dppshard.New(dppshard.Config{Addrs: addrs, Backend: tt.Backend, Resume: resume, AuthToken: *authToken}); err != nil {
			fatal(err)
		}
	}
	client := dppnet.NewClient(addrs[0])
	client.Resume = resume
	client.AuthToken = *authToken
	open := func(profile string) (dpp.Stream, error) {
		spec := dpp.Spec{Spec: tt.Spec, Files: files}
		switch profile {
		case "shared":
			spec.ShareScans = true
		case "pooled":
			spec.Readers, spec.Buffer = 2, 2
		case "think":
			// Few readers, minimal window: the slow consumer below turns
			// this into consumer stall the server's autoscaler must act on.
			spec.Readers, spec.Buffer = 4, 1
		}
		if fleet != nil {
			spec.ShareScans = true
			return fleet.Open(ctx, spec)
		}
		return client.Open(ctx, spec)
	}

	fmt.Printf("recd-soak: %d shard(s), %d workers, mix %v, %v\n", len(addrs), *concurrency, profiles, *duration)

	// Mid-run scrape: half-way through, prove the sidecar answers while
	// the server is under load (CI's liveness check on the obs path).
	var midSeries int
	var midErr error
	midDone := make(chan struct{})
	if *obsScrape != "" {
		time.AfterFunc(*duration/2, func() {
			defer close(midDone)
			var m map[string]float64
			if m, midErr = scrapeMetrics(*obsScrape); midErr == nil {
				midSeries = len(m)
			}
		})
	} else {
		close(midDone)
	}

	start := time.Now()
	deadline := start.Add(*duration)
	results := make([]result, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			profile := profiles[w%len(profiles)]
			thinkFor := time.Duration(0)
			if profile == "think" {
				thinkFor = *think
			}
			r := &results[w]
			for time.Now().Before(deadline) {
				sess, err := open(profile)
				if err != nil {
					// Under -reconnect an open can land in the dead window of
					// a restarting server; that is expected churn, not a
					// stream failure, so it gets its own tally.
					if *reconnect {
						r.openFails++
					} else {
						r.errors++
					}
					time.Sleep(50 * time.Millisecond)
					continue
				}
				r.sessions++
				for {
					t0 := time.Now()
					_, err := sess.Next(ctx)
					if err == io.EOF {
						break
					}
					if err != nil {
						r.errors++
						break
					}
					r.lat = append(r.lat, time.Since(t0))
					r.batches++
					if thinkFor > 0 {
						time.Sleep(thinkFor)
					}
				}
				sess.Close()
				// Reconnect accounting straight off the session: how the
				// stream survived — parked-token resume, deterministic
				// offset replay, or a drain handoff to another shard.
				switch s := sess.(type) {
				case *dppnet.RemoteSession:
					r.tokenResumes += s.TokenResumes()
					r.replays += s.Replays()
					r.drainHandoffs += s.DrainHandoffs()
				case *dppshard.Session:
					r.drainHandoffs += s.DrainHandoffs()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-midDone

	// Merge and report.
	var all []time.Duration
	var totalSessions, totalBatches, totalErrors, totalOpenFails int64
	var totalTokenResumes, totalReplays, totalDrainHandoffs int64
	for i := range results {
		all = append(all, results[i].lat...)
		totalSessions += results[i].sessions
		totalBatches += results[i].batches
		totalErrors += results[i].errors
		totalOpenFails += results[i].openFails
		totalTokenResumes += results[i].tokenResumes
		totalReplays += results[i].replays
		totalDrainHandoffs += results[i].drainHandoffs
	}
	if totalBatches == 0 {
		fatal(fmt.Errorf("no batches streamed (%d errors)", totalErrors))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	tput := float64(totalBatches) / elapsed.Seconds()
	fmt.Printf("recd-soak: %d sessions, %d batches, %d errors in %v\n",
		totalSessions, totalBatches, totalErrors, elapsed.Round(time.Millisecond))
	if *reconnect {
		fmt.Printf("recd-soak: %d opens fell in a dead serving window (retried)\n", totalOpenFails)
		fmt.Printf("recd-soak: client resumes: %d by parked token, %d by offset replay; %d drain handoffs\n",
			totalTokenResumes, totalReplays, totalDrainHandoffs)
	}
	fmt.Printf("recd-soak: batch wait p50 %v p95 %v p99 %v max %v\n",
		pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1].Round(10*time.Microsecond))
	fmt.Printf("recd-soak: throughput %.1f batches/s\n", tput)

	// Server-side accounting straight off the wire, per shard.
	for _, addr := range addrs {
		st, err := dppnet.NewClient(addr).ServiceStats(ctx)
		if err != nil {
			fmt.Printf("recd-soak: shard %s: statsz unavailable: %v\n", addr, err)
			continue
		}
		ratio := 0.0
		if st.Cache.Hits+st.Cache.Misses > 0 {
			ratio = 100 * float64(st.Cache.Hits) / float64(st.Cache.Hits+st.Cache.Misses)
		}
		fmt.Printf("recd-soak: shard %s: %d sessions, %d batches; scan cache %.1f%% hits (%d/%d); scaled %d up / %d down\n",
			addr, st.SessionsOpened, st.BatchesServed, ratio, st.Cache.Hits, st.Cache.Misses,
			st.Scheduler.ScaleUps, st.Scheduler.ScaleDowns)
	}

	// Gates. Every failure prints, then one exit code at the end.
	failed := false
	gate := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("recd-soak: %s: %s\n", fmt.Sprintf(format, args...), verdict)
	}
	if *obsScrape != "" {
		gate(midErr == nil && midSeries > 0, "mid-run scrape (%d series, err %v)", midSeries, midErr)
	}
	if *sloP99 > 0 {
		gate(pct(all, 99) <= *sloP99, "SLO p99 %v <= %v", pct(all, 99), *sloP99)
	}
	if *minTput > 0 {
		gate(tput >= *minTput, "throughput %.1f >= %.1f batches/s", tput, *minTput)
	}
	gate(totalErrors == 0, "%d session errors", totalErrors)
	if *checkSeries {
		m, err := scrapeMetrics(*obsScrape)
		if err != nil {
			fatal(fmt.Errorf("final scrape: %w", err))
		}
		for _, series := range []string{
			"recd_sessions_opened_total",
			"recd_scancache_hits_total",
			"recd_scale_events_total",
			"recd_net_batches_sent_total",
			"recd_accesslog_events_total",
		} {
			gate(sumSeries(m, series) > 0, "metrics: %s > 0 (got %g)", series, sumSeries(m, series))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// result is one worker's tally. openFails only accumulates under
// -reconnect, where a failed open is expected restart churn; the
// resume split distinguishes parked-token resumes from deterministic
// offset replays, and drainHandoffs counts streams handed off to
// another shard by a draining server.
type result struct {
	lat                                  []time.Duration
	sessions, batches, errors, openFails int64
	tokenResumes, replays, drainHandoffs int64
}

// pct reads an exact percentile (nearest-rank) from sorted samples.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Round(10 * time.Microsecond)
}

// waitReady polls every shard's statsz handshake until it answers —
// recd-serve may still be landing its table when the soak starts.
func waitReady(ctx context.Context, addrs []string, patience time.Duration) {
	deadline := time.Now().Add(patience)
	for _, addr := range addrs {
		client := dppnet.NewClient(addr)
		for {
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_, err := client.ServiceStats(cctx)
			cancel()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("shard %s not ready after %v: %w", addr, patience, err))
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
}

// scrapeMetrics GETs <base>/metrics and parses the exposition text into
// a map keyed by "name{labels}".
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("/metrics had no samples")
	}
	return out, nil
}

// sumSeries totals every sample of one metric family across label sets.
func sumSeries(m map[string]float64, name string) float64 {
	total := 0.0
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// splitAddrs parses a comma-separated list, trimming whitespace.
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recd-soak:", err)
	os.Exit(1)
}
