// Command recd-bench regenerates every table and figure of the paper's
// evaluation from the synthetic pipeline. Each experiment prints
// paper-style rows plus a note quoting the paper's reported values, so
// the reproduction can be compared at a glance (EXPERIMENTS.md records
// both sides).
//
// Usage:
//
//	recd-bench -list
//	recd-bench -exp fig7
//	recd-bench -exp all -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale = flag.String("scale", "full", "run scale: full or small")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-14s %s\n", r.ID, r.Brief)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.Full
	case "small":
		sc = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "recd-bench: unknown scale %q (want full or small)\n", *scale)
		os.Exit(2)
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "recd-bench: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recd-bench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Print(res)
		fmt.Printf("  (%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
