// Command recd-serve runs the preprocessing service as its own process —
// the paper's DPP deployment shape — serving dpp sessions to trainers
// over the dppnet TCP protocol. It lands the same deterministic
// synthetic table recd-train builds (same -sessions/-batch/-seed ⇒ same
// files, same spec fingerprints), opens a dpp.Service over it with both
// cache tiers configured, and listens until SIGINT/SIGTERM.
//
// A typical two-process run:
//
//	recd-serve -listen 127.0.0.1:7077 &
//	recd-train -connect 127.0.0.1:7077 -epochs 4
//
// Because the ScanCache lives here, sharing now spans processes: a
// second trainer (same flags) — or the first trainer's later epochs —
// streams batches this server decoded for someone else.
//
// -listen also takes a comma-separated address list, which runs one
// preprocessing shard per address in this process: each shard is its own
// dpp.Service (own ScanCache, own admission cap) over the shared landed
// table. A trainer pointing -connect at the same list routes each file
// to exactly one shard by rendezvous hashing, so the fleet's decoded
// cache capacity is the sum of the shards' — the paper's scale-out axis
// for preprocessing. For a real multi-host fleet, start one recd-serve
// per host instead; the trainer cannot tell the difference.
//
// With -follow the server also hosts the online-ingestion path: a
// landing writer keeps appending freshly generated hour partitions to
// the served table (sealed DWRF files, atomically published), so a
// trainer running `recd-train -connect ... -follow` tails a genuinely
// growing table. -flush-interval paces the landings and bounds the
// writer's seal latency; -retain-hours chases the tail with retention,
// dropping the oldest partitions and invalidating both cache tiers.
//
// With -autoscale the service also closes the paper's reader-scaling
// loop: each session's worker pool is resized between 1 and
// -max-readers-per-session from its observed starvation — a trainer that
// stops returning dppnet credits starves its session's merge and the
// pool shrinks; a trainer outrunning the readers grows it. Scaling never
// changes the bytes a trainer receives, only their pace.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/front"
	"repro/internal/dpp/landing"
	"repro/internal/obs"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:7077", "TCP listen address, or a comma-separated list to run one preprocessing shard per address")
		sessions      = flag.Int("sessions", 200, "training sessions in the landed table (match recd-train)")
		batch         = flag.Int("batch", 128, "batch size the derived spec uses (match recd-train)")
		seed          = flag.Int64("seed", 11, "random seed (match recd-train)")
		maxSessions   = flag.Int("max-sessions", 0, "concurrent session cap per shard; 0 is unlimited")
		scanCacheMB   = flag.Int64("scan-cache-mb", 256, "decoded-batch ScanCache budget in MiB per shard; 0 or negative disables (ShareScans sessions rejected)")
		rawCacheMB    = flag.Int64("store-cache-mb", 256, "raw-byte CachingBackend budget in MiB; 0 disables")
		autoscale     = flag.Bool("autoscale", false, "autoscale each session's reader-worker pool from its observed credit/worker starvation")
		maxReaders    = flag.Int("max-readers-per-session", dpp.DefaultMaxReaders, "autoscaler upper bound on a session's worker pool (with -autoscale)")
		obsListen     = flag.String("obs-listen", "", "observability sidecar HTTP address (/metrics, /debug/pprof, /healthz, /statsz, /accesslog); empty disables")
		accessLogN    = flag.Int("access-log-events", 4096, "access-log ring capacity (with -obs-listen)")
		resumeTTL     = flag.Duration("resume-ttl", 45*time.Second, "how long a dropped resumable session stays parked awaiting reconnect")
		resumeMax     = flag.Int("resume-sessions", 64, "parked resumable sessions kept per shard; negative disables parking (offset replay still works)")
		tenantsFile   = flag.String("tenants", "", "tenant token file enabling the multi-tenant front door (lines: tenant token [weight [max-sessions [max-mb]]]); empty serves a single anonymous tenant")
		workerBudget  = flag.Int("worker-budget", 0, "total reader-worker budget arbitrated across tenants by weighted fair share (needs -autoscale); 0 leaves sessions unarbitrated")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain (SIGTERM or POST /drainz) waits for active streams to hand off before forcing shutdown")
		follow        = flag.Bool("follow", false, "host a live landing writer: keep appending freshly generated hour partitions to the served table, so tailing (Follow) sessions see it grow")
		flushInterval = flag.Duration("flush-interval", 500*time.Millisecond, "with -follow: the landing cadence, and the writer's latency-bound seal interval")
		retainHours   = flag.Int("retain-hours", 0, "with -follow: keep only the newest N hour partitions, dropping older ones and invalidating both cache tiers; 0 keeps everything (a drop under a lagging tailer fails that session's reads — keep N above the consumer's lag)")
	)
	flag.Parse()

	addrs := strings.Split(*listen, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			fatal(fmt.Errorf("empty address in -listen %q", *listen))
		}
	}

	tt, err := core.BuildTrainTable(core.TrainTableConfig{
		Sessions: *sessions, Batch: *batch, Seed: *seed,
		StoreCacheBytes: *rawCacheMB << 20,
	})
	if err != nil {
		fatal(err)
	}

	// Flag semantics match -store-cache-mb: 0 turns the cache off. The
	// dpp.Config convention differs (0 picks the default budget), so map
	// explicitly.
	scanBudget := int64(-1)
	if *scanCacheMB > 0 {
		scanBudget = *scanCacheMB << 20
	}
	cfg := dpp.Config{
		Backend:        tt.Backend,
		Catalog:        tt.Catalog,
		MaxSessions:    *maxSessions,
		ScanCacheBytes: scanBudget,
	}
	if *autoscale {
		cfg.AutoScale = &dpp.AutoScalerConfig{MaxReaders: *maxReaders}
	}

	// Multi-tenant front door: one Gate shared by every shard server, so
	// a tenant's session and byte quotas span the whole process, not one
	// shard. Without -tenants every handshake admits as the anonymous
	// default tenant and no quota applies.
	var gate *front.Gate
	var tenantLimits map[string]front.Limits
	if *tenantsFile != "" {
		auth, limits, err := front.LoadTenants(*tenantsFile)
		if err != nil {
			fatal(err)
		}
		tenantLimits = limits
		gate = front.NewGate(front.Config{Auth: auth, Limits: limits})
	}

	// Fair-share worker governor: one arbiter shared by every shard
	// service, owning the *process-wide* reader-worker budget. Each
	// session's AutoScaler becomes a bid source — its Resize calls route
	// through the governor, which water-fills the budget across starved
	// tenants by weight.
	var gov *front.Governor
	if *workerBudget > 0 {
		if !*autoscale {
			fatal(fmt.Errorf("-worker-budget needs -autoscale (the autoscalers are the governor's bid sources)"))
		}
		weights := make(map[string]int, len(tenantLimits))
		for t, l := range tenantLimits {
			weights[t] = l.Weight
		}
		gov = front.NewGovernor(front.GovernorConfig{Budget: *workerBudget, Weights: weights})
		cfg.Arbiter = gov
	}

	// One service + server per shard address. The services share the
	// landed table (and its raw-byte cache tier) but nothing else: each
	// shard's ScanCache and session cap are its own, which is exactly
	// what makes a fleet's cache capacity additive.
	type shard struct {
		addr string
		svc  *dpp.Service
		srv  *dppnet.Server
		ln   net.Listener
	}
	// Served table metadata: the tablez handshake hands a connecting
	// trainer everything it needs to start cold — the derived spec, the
	// file plan, the schema facts — with no local table build.
	meta := &dppnet.TableMeta{
		Table:      tt.Spec.Table,
		DenseWidth: tt.Schema.Dense,
		TrainRows:  tt.TrainRows,
		S:          tt.S,
		Spec:       dpp.Spec{Spec: tt.Spec},
	}
	for _, hour := range tt.Catalog.Partitions(tt.Spec.Table) {
		files, err := tt.Catalog.Files(tt.Spec.Table, hour)
		if err != nil {
			fatal(err)
		}
		meta.Partitions = append(meta.Partitions, dppnet.TablePartition{Hour: hour, Files: files})
	}

	shards := make([]*shard, 0, len(addrs))
	for _, addr := range addrs {
		svc, err := dpp.New(cfg)
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fatal(err)
		}
		srv := dppnet.NewServer(svc)
		srv.Tablez = meta
		srv.ResumeTTL = *resumeTTL
		srv.ResumeMax = *resumeMax
		srv.Gate = gate
		shards = append(shards, &shard{addr: addr, svc: svc, srv: srv, ln: ln})
	}

	// Live landing writer: one goroutine growing the served table an hour
	// partition per -flush-interval, generated deterministically from the
	// table seed, joined and clustered inside the writer. Every shard
	// shares the catalog, so each shard's Follow sessions observe the
	// same landings; -retain-hours chases the tail with retention drops,
	// which invalidate both cache tiers (never serving stale bytes).
	var (
		lander       *landing.Writer
		landerStop   chan struct{}
		landerDone   chan struct{}
		droppedHours atomic.Int64
	)
	if *follow {
		if *flushInterval <= 0 {
			fatal(fmt.Errorf("-follow needs a positive -flush-interval"))
		}
		w, err := landing.NewWriter(landing.Config{
			Store: tt.Store, Catalog: tt.Catalog, Table: tt.Spec.Table,
			Schema: tt.Schema, FlushRows: 4096, FlushInterval: *flushInterval,
			Cluster: true,
		})
		if err != nil {
			fatal(err)
		}
		lander = w
		landerStop, landerDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(landerDone)
			hour := int64(0)
			for _, h := range tt.Catalog.Partitions(tt.Spec.Table) {
				if h >= hour {
					hour = h + 1
				}
			}
			n := *sessions / 4
			if n == 0 {
				n = 1
			}
			for {
				select {
				case <-landerStop:
					if err := w.Close(); err != nil {
						fmt.Fprintln(os.Stderr, "recd-serve: landing writer close:", err)
					}
					return
				case <-time.After(*flushInterval):
				}
				samples := datagen.NewGenerator(tt.Schema, datagen.GeneratorConfig{
					Sessions: n, MeanSamplesPerSession: 14, Seed: *seed + 2000 + hour,
					LabelSignal: 2.0, CTR: 0.2,
				}).GeneratePartition()
				if err := w.Append(hour, samples...); err != nil {
					fmt.Fprintln(os.Stderr, "recd-serve: landing writer:", err)
					return
				}
				if *retainHours > 0 {
					dropped, err := tt.Catalog.EnforceRetention(tt.Store, tt.Spec.Table, *retainHours)
					if err != nil {
						fmt.Fprintln(os.Stderr, "recd-serve: retention:", err)
						return
					}
					droppedHours.Add(int64(len(dropped)))
				}
				hour++
			}
		}()
	}
	var landerOnce sync.Once
	stopLander := func() {
		if lander == nil {
			return
		}
		landerOnce.Do(func() { close(landerStop) })
		<-landerDone
	}

	// Graceful drain, triggered by the first SIGTERM/SIGINT or POST
	// /drainz: stop admitting, hand in-flight clients their drain notice
	// (resume token + offset, so they splice onto another server), wait
	// up to -drain-timeout for the streams to move off, then close.
	drainOnce := sync.Once{}
	drain := func() {
		drainOnce.Do(func() {
			go func() {
				fmt.Fprintln(os.Stderr, "recd-serve: draining (new sessions refused; active streams handed off)")
				stopLander()
				for _, sh := range shards {
					sh.srv.Drain()
				}
				deadline := time.Now().Add(*drainTimeout)
				for time.Now().Before(deadline) {
					active := int64(0)
					for _, sh := range shards {
						active += sh.srv.Stats().ConnsActive
					}
					if active == 0 {
						break
					}
					time.Sleep(100 * time.Millisecond)
				}
				for _, sh := range shards {
					sh.srv.Close()
				}
			}()
		})
	}

	// Observability sidecar: one private HTTP listener for the whole
	// process, with per-shard labeled series and every shard's session
	// lifecycle feeding one access log.
	var (
		obsSrv  *obs.Server
		alog    *obs.AccessLog
		obsDone chan error
	)
	if *obsListen != "" {
		reg := obs.NewRegistry()
		alog = obs.NewAccessLog(*accessLogN)
		obs.RegisterProcess(reg)
		obs.RegisterAccessLog(reg, alog)
		if tt.Cache != nil {
			obs.RegisterStoreCache(reg, nil, tt.Cache.Stats)
		}
		if lander != nil {
			obs.RegisterLanding(reg, nil, lander.Stats)
		}
		for i, sh := range shards {
			labels := obs.Labels{"shard": strconv.Itoa(i)}
			obs.RegisterService(reg, labels, sh.svc)
			obs.RegisterNetServer(reg, labels, sh.srv)
			sh.srv.OnSession = obs.SessionHook(alog)
		}
		if gate != nil {
			obs.RegisterGate(reg, nil, gate)
		}
		if gov != nil {
			tenants := make([]string, 0, len(tenantLimits))
			for t := range tenantLimits {
				tenants = append(tenants, t)
			}
			sort.Strings(tenants)
			obs.RegisterGovernor(reg, nil, gov, tenants)
		}
		statsz := func() any {
			out := make(map[string]any, len(shards)+2)
			for i, sh := range shards {
				out[fmt.Sprintf("shard%d", i)] = map[string]any{
					"addr": sh.addr, "service": sh.svc.Stats(), "net": sh.srv.Stats(),
				}
			}
			if gate != nil {
				out["gate"] = gate.Stats()
			}
			if gov != nil {
				out["governor"] = gov.Stats()
			}
			return out
		}
		obsSrv = obs.NewServer(obs.Config{Registry: reg, AccessLog: alog, Statsz: statsz, Drain: drain})
		obsLn, err := net.Listen("tcp", *obsListen)
		if err != nil {
			fatal(err)
		}
		obsDone = make(chan error, 1)
		go func() { obsDone <- obsSrv.Serve(obsLn) }()
		fmt.Printf("recd-serve: observability sidecar on %s\n", obsLn.Addr())
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "recd-serve: shutting down")
		drain()
		// A second signal skips the drain grace period.
		<-sigs
		fmt.Fprintln(os.Stderr, "recd-serve: second signal, forcing shutdown")
		for _, sh := range shards {
			sh.srv.Close()
		}
	}()

	bound := make([]string, len(shards))
	for i, sh := range shards {
		bound[i] = sh.ln.Addr().String()
	}
	fmt.Printf("recd-serve: table %q (%d samples, S=%.1f, %d dedup groups), %d shard(s) on %s\n",
		tt.Spec.Table, tt.TrainRows, tt.S, len(tt.Spec.DedupSparseFeatures), len(shards), strings.Join(bound, " "))

	errCh := make(chan error, len(shards))
	for _, sh := range shards {
		go func(sh *shard) { errCh <- sh.srv.Serve(sh.ln) }(sh)
	}
	for range shards {
		if err := <-errCh; err != nil {
			// One listener failing takes the process down; the trainer-side
			// fleet treats the lost shard like any mid-stream death.
			for _, sh := range shards {
				sh.srv.Close()
			}
			fatal(err)
		}
	}

	stopLander()
	if lander != nil {
		st := lander.Stats()
		fmt.Printf("recd-serve: landing writer sealed %d files / %d rows (%d timed flushes); retention dropped %d hour(s)\n",
			st.FilesLanded, st.RowsLanded, st.TimedFlushes, droppedHours.Load())
	}
	for _, sh := range shards {
		st := sh.svc.Stats()
		if fs := st.Follow; fs.ExtendedFiles > 0 {
			fmt.Printf("recd-serve: shard %s extended %d files into follow sessions\n", sh.addr, fs.ExtendedFiles)
		}
		fmt.Printf("recd-serve: shard %s served %d sessions, %d batches; scan cache %d/%d hits/misses (%d entries, %.1f MiB)\n",
			sh.addr, st.SessionsOpened, st.BatchesServed, st.Cache.Hits, st.Cache.Misses,
			st.Cache.Entries, float64(st.Cache.Bytes)/(1<<20))
		if *autoscale {
			fmt.Printf("recd-serve: shard %s autoscaler resized worker pools %d up / %d down (cap %d readers/session)\n",
				sh.addr, st.Scheduler.ScaleUps, st.Scheduler.ScaleDowns, *maxReaders)
		}
	}
	if tt.Cache != nil {
		bs := tt.Cache.Stats()
		fmt.Printf("recd-serve: raw-byte tier %d/%d hits/misses\n", bs.Hits, bs.Misses)
	}
	if gate != nil {
		gs := gate.Stats()
		fmt.Printf("recd-serve: front door rejected %d auth / %d quota / %d draining\n",
			gs.AuthFailures, gs.QuotaRejects, gs.DrainRejects)
		for _, ts := range gs.Tenants {
			fmt.Printf("recd-serve: tenant %s: %d sessions admitted, %.1f MiB streamed\n",
				ts.Tenant, ts.Admitted, float64(ts.Bytes)/(1<<20))
		}
	}
	for _, sh := range shards {
		if st := sh.srv.Stats(); st.DrainNotices > 0 {
			fmt.Printf("recd-serve: shard %s handed %d drain notices\n", sh.addr, st.DrainNotices)
		}
	}

	// Graceful sidecar teardown, after the data plane has drained: give
	// in-flight scrapes a bounded moment to finish, then print the access
	// log's lifetime tally — the shutdown-time flush of what the ring saw.
	if obsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := obsSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "recd-serve: sidecar shutdown:", err)
		}
		cancel()
		if err := <-obsDone; err != nil {
			fmt.Fprintln(os.Stderr, "recd-serve: sidecar:", err)
		}
		st := alog.Stats()
		fmt.Printf("recd-serve: access log: %d opens, %d closes, %d errors\n", st.Opens, st.Closes, st.Errors)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recd-serve:", err)
	os.Exit(1)
}
