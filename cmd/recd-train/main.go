// Command recd-train runs DLRM training end-to-end over a synthetic
// session-centric dataset: generate → cluster → land DWRF files → read
// through the preprocessing service with IKJT dedup → train with
// per-epoch held-out evaluation → save a checkpoint. It demonstrates the
// complete library surface: both execution modes, both optimizers, the
// model store, and cross-session scan sharing — every epoch opens fresh
// per-hour sessions over the same landed partitions, so epoch 1 decodes
// each DWRF file once and every later epoch streams the same batches out
// of the service's ScanCache (and the raw-byte CachingBackend underneath)
// without touching the decode path again.
//
// Usage:
//
//	recd-train -epochs 4 -mode recd -opt adagrad -ckpt /tmp/model.ckpt
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/storage"
	"repro/internal/trainer"
)

func main() {
	var (
		epochs   = flag.Int("epochs", 4, "training epochs")
		sessions = flag.Int("sessions", 200, "training sessions")
		batch    = flag.Int("batch", 128, "batch size")
		modeStr  = flag.String("mode", "recd", "execution mode: baseline or recd")
		optStr   = flag.String("opt", "adagrad", "optimizer: sgd or adagrad")
		lr       = flag.Float64("lr", 0.05, "learning rate")
		ckpt     = flag.String("ckpt", "", "checkpoint output path (optional)")
		seed     = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	var mode trainer.Mode
	switch *modeStr {
	case "baseline":
		mode = trainer.Baseline
	case "recd":
		mode = trainer.RecD
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeStr))
	}
	var opt trainer.Optimizer
	switch *optStr {
	case "sgd":
		opt = trainer.SGD
	case "adagrad":
		opt = trainer.Adagrad
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *optStr))
	}

	// Dataset: session-centric with learnable labels. The cart sequences
	// form one sync group (a grouped IKJT); the item features use small
	// ID spaces so the label's item effect is actually learnable at this
	// scale (unlike production-sized 2^40 spaces).
	specs := []datagen.FeatureSpec{
		{Key: "hist_items", Class: datagen.UserFeature, ChangeProb: 0.08,
			MeanLen: 24, MaxLen: 48, Update: datagen.ShiftAppend,
			Cardinality: 1 << 34, SyncGroup: "hist"},
		{Key: "hist_cats", Class: datagen.UserFeature, ChangeProb: 0.08,
			MeanLen: 24, MaxLen: 48, Update: datagen.ShiftAppend,
			Cardinality: 1 << 16, SyncGroup: "hist"},
		{Key: "user_prefs", Class: datagen.UserFeature, ChangeProb: 0.1,
			MeanLen: 8, MaxLen: 16, Update: datagen.Resample, Cardinality: 1 << 20},
		{Key: "item_id", Class: datagen.ItemFeature, ChangeProb: 0.95,
			MeanLen: 1, MaxLen: 2, Update: datagen.Resample, Cardinality: 1 << 8},
		{Key: "item_cat", Class: datagen.ItemFeature, ChangeProb: 0.9,
			MeanLen: 2, MaxLen: 4, Update: datagen.Resample, Cardinality: 1 << 6},
	}
	schema, err := datagen.NewSchema(specs, 4)
	if err != nil {
		fatal(err)
	}
	makePartition := func(sessions int, genSeed int64) []datagen.Sample {
		return datagen.NewGenerator(schema, datagen.GeneratorConfig{
			Sessions:              sessions,
			MeanSamplesPerSession: 14,
			Seed:                  genSeed,
			LabelSignal:           2.0,
			CTR:                   0.2,
		}).GeneratePartition()
	}
	train := etl.ClusterBySession(makePartition(*sessions, *seed))
	eval := etl.ClusterBySession(makePartition(*sessions/4, *seed+1000))

	// Land both partitions and read them back through the reader tier
	// with the dedup heuristic's groups.
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	for hour, part := range map[int64][]datagen.Sample{0: train, 1: eval} {
		if _, err := dwrf.WritePartition(store, catalog, "train", hour, schema, part,
			dwrf.TableOptions{RowsPerFile: 4096, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
			fatal(err)
		}
	}
	s := datagen.MeasuredS(train)
	decisions := core.SelectDedupFeatures(schema, s, *batch, 0)
	groups := core.DedupGroups(decisions)
	spec := reader.Spec{Table: "train", BatchSize: *batch, DedupSparseFeatures: groups}
	inGroup := map[string]bool{}
	for _, g := range groups {
		for _, k := range g {
			inGroup[k] = true
		}
	}
	for _, f := range schema.Sparse {
		if !inGroup[f.Key] {
			spec.SparseFeatures = append(spec.SparseFeatures, f.Key)
		}
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	// Read the partitions through the preprocessing service. Every epoch
	// opens a fresh per-hour session with ShareScans: the first scan of
	// each partition decodes it and publishes the batches into the
	// service's ScanCache; every later session (epoch 2's train pass,
	// every eval pass after the first) streams the identical batches out
	// of the cache without decoding anything. The CachingBackend under
	// the service is the raw-byte fallback tier: it only sees traffic
	// from scans the ScanCache cannot serve (spec-mismatched sessions, or
	// batch boundaries straddling files). In this binary every session
	// shares the same aligned spec, so expect its hit count to be zero —
	// the stats line at the end shows which tier absorbed the reuse.
	cachedStore := storage.NewCachingBackend(store, 256<<20)
	svc, err := dpp.New(dpp.Config{Backend: cachedStore, Catalog: catalog})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	readHour := func(hour int64) []*reader.Batch {
		files, err := catalog.Files("train", hour)
		if err != nil {
			fatal(err)
		}
		sess, err := svc.Open(ctx, dpp.Spec{Spec: spec, Files: files, ShareScans: true})
		if err != nil {
			fatal(err)
		}
		defer sess.Close()
		var out []*reader.Batch
		for {
			b, err := sess.Next(ctx)
			if err == io.EOF {
				return out
			}
			if err != nil {
				fatal(err)
			}
			out = append(out, b)
		}
	}

	model, err := trainer.New(trainer.Config{
		EmbDim:       16,
		DenseIn:      schema.Dense,
		BottomHidden: []int{32},
		TopHidden:    []int{64, 32},
		Features: []trainer.FeatureConfig{
			{Key: "hist_items", Pool: trainer.AttentionPool, TableRows: 1 << 12},
			{Key: "hist_cats", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "user_prefs", Pool: trainer.MeanPool, TableRows: 1 << 10},
			{Key: "item_id", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "item_cat", Pool: trainer.SumPool, TableRows: 1 << 8},
		},
		Opt:  opt,
		LR:   float32(*lr),
		Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("training on %d samples (S=%.1f), %d dedup groups, mode=%s opt=%s\n\n",
		len(train), s, len(groups), mode, opt)

	for e := 1; e <= *epochs; e++ {
		start := time.Now()
		var lastLoss float64
		trainBatches := readHour(0) // epoch 1 decodes; later epochs hit the scan cache
		for _, b := range trainBatches {
			loss, _, err := model.TrainStep(b, mode)
			if err != nil {
				fatal(err)
			}
			lastLoss = loss
		}
		m, err := model.Evaluate(readHour(1), mode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("epoch %d: train loss %.4f | eval logloss %.4f auc %.4f calib %.2f (%v)\n",
			e, lastLoss, m.LogLoss, m.AUC, m.Calibration, time.Since(start).Round(time.Millisecond))
	}

	cs := svc.Stats().Cache
	bs := cachedStore.Stats()
	fmt.Printf("\nscan sharing across %d epochs: %d/%d scan-cache hits/misses (%d entries, %.1f MiB); raw-byte fallback tier %d/%d hits/misses\n",
		*epochs, cs.Hits, cs.Misses, cs.Entries, float64(cs.Bytes)/(1<<20), bs.Hits, bs.Misses)

	if *ckpt != "" {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*ckpt, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\ncheckpoint written to %s (%d bytes)\n", *ckpt, buf.Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recd-train:", err)
	os.Exit(1)
}
