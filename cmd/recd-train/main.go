// Command recd-train runs DLRM training end-to-end over a synthetic
// session-centric dataset: generate → cluster → land DWRF files → read
// through the preprocessing service with IKJT dedup → train with
// per-epoch held-out evaluation → save a checkpoint. It demonstrates the
// complete library surface: both execution modes, both optimizers, the
// model store, and cross-session scan sharing — every epoch opens fresh
// per-hour ShareScans sessions over the same landed partitions, so epoch
// 1 decodes each DWRF file once and every later epoch streams the same
// batches out of the service's ScanCache (and the raw-byte
// CachingBackend underneath) without touching the decode path again.
//
// With -connect the preprocessing service runs in another process: batches
// stream from a cmd/recd-serve instance over the dppnet TCP protocol
// instead of an in-process dpp.Service, and the scan sharing happens in
// the server — epoch 2 of this trainer (or another trainer with the same
// flags) hits a cache it never filled. The trainer starts cold from the
// wire: a tablez handshake fetches the served table's metadata (derived
// spec, per-hour file plan, schema facts), so no local table is built
// and -sessions/-batch/-seed are ignored in this mode. Connections are
// resumable — a restarted server picks each stream back up at the exact
// batch the trainer had consumed (see -reconnect-attempts).
//
// -connect also takes a comma-separated shard list (host1:port1,host2:...):
// each epoch's files are routed to exactly one shard by rendezvous
// hashing and the per-shard streams are merged client-side back into the
// single-server batch order, so the fleet's decoded-cache capacity is
// the sum of the shards' and a shard dying mid-epoch only re-routes its
// own remaining files.
//
// With -follow the trainer tails a live, growing table instead of
// re-reading hour 0: one Follow session blocks at end-of-catalog,
// observes newly landed files, and delivers them in landed order, and
// each -epochs "window" trains on the next table's-worth of live
// batches. Locally the trainer hosts its own landing writer
// (-flush-interval, -retain-hours); with -connect it tails a recd-serve
// running -follow, the server announcing each landing mid-stream over
// the protocol's extend frames. Follow streams neither resume nor fail
// over — a tail has no frozen plan to replay against.
//
// Usage:
//
//	recd-train -epochs 4 -mode recd -opt adagrad -ckpt /tmp/model.ckpt
//	recd-serve -listen 127.0.0.1:7077 &
//	recd-train -connect 127.0.0.1:7077 -epochs 4
//	recd-serve -listen 127.0.0.1:7077,127.0.0.1:7078 &
//	recd-train -connect 127.0.0.1:7077,127.0.0.1:7078 -epochs 4
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/dppshard"
	"repro/internal/dpp/landing"
	"repro/internal/obs"
	"repro/internal/reader"
	"repro/internal/trainer"
)

func main() {
	var (
		epochs            = flag.Int("epochs", 4, "training epochs")
		sessions          = flag.Int("sessions", 200, "training sessions")
		batch             = flag.Int("batch", 128, "batch size")
		modeStr           = flag.String("mode", "recd", "execution mode: baseline or recd")
		optStr            = flag.String("opt", "adagrad", "optimizer: sgd or adagrad")
		lr                = flag.Float64("lr", 0.05, "learning rate")
		ckpt              = flag.String("ckpt", "", "checkpoint output path (optional)")
		seed              = flag.Int64("seed", 11, "random seed")
		connect           = flag.String("connect", "", "recd-serve address (host:port), or a comma-separated shard list for a sharded fleet; empty runs the service in-process")
		obsSide           = flag.String("obs-listen", "", "observability sidecar HTTP address for this trainer (/metrics, /debug/pprof, /healthz, /statsz); empty disables")
		reconnectAttempts = flag.Int("reconnect-attempts", 8, "with -connect: resume attempts after a lost connection before the stream fails; 0 disables resume")
		reconnectBackoff  = flag.Duration("reconnect-backoff", 250*time.Millisecond, "with -connect: base delay between resume attempts (doubles, capped)")
		authToken         = flag.String("auth-token", "", "with -connect: tenant token sent in every session handshake (match a line in recd-serve's -tenants file)")
		follow            = flag.Bool("follow", false, "windowed-epoch mode over the live tail: one Follow session replaces the per-epoch hour-0 reruns, each -epochs window training on the next table's-worth of freshly landed batches (locally the trainer hosts its own landing writer; with -connect point at a recd-serve running -follow)")
		flushInterval     = flag.Duration("flush-interval", 500*time.Millisecond, "with -follow and no -connect: the local landing cadence and the writer's latency-bound seal interval")
		retainHours       = flag.Int("retain-hours", 0, "with -follow and no -connect: keep only the newest N hour partitions; 0 keeps everything (retention that outruns the tailing consumer — or drops eval hour 1 — fails those reads)")
	)
	flag.Parse()

	var mode trainer.Mode
	switch *modeStr {
	case "baseline":
		mode = trainer.Baseline
	case "recd":
		mode = trainer.RecD
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeStr))
	}
	var opt trainer.Optimizer
	switch *optStr {
	case "sgd":
		opt = trainer.SGD
	case "adagrad":
		opt = trainer.Adagrad
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *optStr))
	}

	ctx := context.Background()
	resume := dppnet.ResumePolicy{MaxAttempts: *reconnectAttempts, BaseDelay: *reconnectBackoff}

	// Table knowledge. Local mode lands the dataset; -connect mode starts
	// cold from the wire — a tablez handshake to the first address hands
	// over the served table's derived spec, file plan, and schema facts,
	// so the trainer builds no table at all.
	var (
		tt   *core.TrainTable
		meta *dppnet.TableMeta
	)
	if *connect == "" {
		var err error
		tt, err = core.BuildTrainTable(core.TrainTableConfig{
			Sessions: *sessions, Batch: *batch, Seed: *seed, StoreCacheBytes: 256 << 20,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		addrs := splitAddrs(*connect)
		if len(addrs) == 0 {
			fatal(fmt.Errorf("empty -connect address list %q", *connect))
		}
		var err error
		meta, err = dppnet.NewClient(addrs[0]).Tablez(ctx)
		if err != nil {
			fatal(fmt.Errorf("tablez from %s: %w", addrs[0], err))
		}
	}

	// The two table sources reduce to one view for the model config and
	// the per-hour session requests.
	var (
		tableSpec          dpp.Spec
		denseIn, trainRows int
		meanS              float64
		hourFiles          func(hour int64) []string
	)
	if tt != nil {
		tableSpec = dpp.Spec{Spec: tt.Spec}
		denseIn, trainRows, meanS = tt.Schema.Dense, tt.TrainRows, tt.S
		hourFiles = func(hour int64) []string {
			files, err := tt.Catalog.Files(tt.Spec.Table, hour)
			if err != nil {
				fatal(err)
			}
			return files
		}
	} else {
		tableSpec = meta.Spec
		denseIn, trainRows, meanS = meta.DenseWidth, meta.TrainRows, meta.S
		hourFiles = func(hour int64) []string {
			files := meta.Files(hour)
			if files == nil {
				fatal(fmt.Errorf("served table %q has no partition for hour %d", meta.Table, hour))
			}
			return files
		}
	}

	// Trainer-side observability: in-process preprocessing series when
	// the service runs locally, plus process/runtime series either way.
	// The server-side view of a -connect run lives on recd-serve's own
	// -obs-listen sidecar.
	var reg *obs.Registry
	var statsz func() any
	if *obsSide != "" {
		reg = obs.NewRegistry()
		obs.RegisterProcess(reg)
		if tt != nil && tt.Cache != nil {
			obs.RegisterStoreCache(reg, nil, tt.Cache.Stats)
		}
	}

	// open abstracts where sessions come from: a local service or a
	// remote dppnet server. Both return the same dpp.Stream pull shape,
	// so the training loop below does not care which side of the TCP
	// boundary preprocessing runs on.
	var open func(hour int64) dpp.Stream
	var openFollow func() dpp.Stream
	var printSharing func()
	var noteStream func(dpp.Stream)
	if *connect == "" {
		svc, err := dpp.New(dpp.Config{Backend: tt.Backend, Catalog: tt.Catalog})
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
		if reg != nil {
			obs.RegisterService(reg, nil, svc)
			statsz = func() any { return svc.Stats() }
		}
		open = func(hour int64) dpp.Stream {
			sp := tableSpec
			sp.Files = hourFiles(hour)
			sp.ShareScans = true
			sess, err := svc.Open(ctx, sp)
			if err != nil {
				fatal(err)
			}
			return sess
		}
		openFollow = func() dpp.Stream {
			sp := tableSpec
			sp.Follow = true
			sess, err := svc.Open(ctx, sp)
			if err != nil {
				fatal(err)
			}
			return sess
		}
		printSharing = func() {
			cs := svc.Stats().Cache
			bs := tt.Cache.Stats()
			fmt.Printf("\nscan sharing across %d epochs: %d/%d scan-cache hits/misses (%d entries, %.1f MiB); raw-byte fallback tier %d/%d hits/misses\n",
				*epochs, cs.Hits, cs.Misses, cs.Entries, float64(cs.Bytes)/(1<<20), bs.Hits, bs.Misses)
		}
	} else if addrs := splitAddrs(*connect); len(addrs) > 1 {
		// Sharded fleet: one dppshard session per epoch-hour. No local
		// backend — the trainer built no table — which is fine for the
		// served spec (aligned batches never need a local carry re-fill).
		fleet, err := dppshard.New(dppshard.Config{Addrs: addrs, Resume: resume, AuthToken: *authToken})
		if err != nil {
			fatal(err)
		}
		var reroutes int64
		shardServed := make(map[string]int)
		open = func(hour int64) dpp.Stream {
			sp := tableSpec
			sp.Files = hourFiles(hour)
			sp.ShareScans = true
			sess, err := fleet.Open(ctx, sp)
			if err != nil {
				fatal(err)
			}
			return sess
		}
		noteStream = func(sess dpp.Stream) {
			fs, ok := sess.(*dppshard.Session)
			if !ok {
				return
			}
			stats, rr := fs.ShardStats()
			reroutes += rr
			for _, st := range stats {
				shardServed[st.Addr] += st.Served
			}
		}
		printSharing = func() {
			fmt.Printf("\nsharded scan sharing across %d epochs over %d shards (%d mid-stream re-routes):\n",
				*epochs, len(addrs), reroutes)
			for _, addr := range addrs {
				st, err := dppnet.NewClient(addr).ServiceStats(ctx)
				if err != nil {
					fmt.Printf("  shard %s: served %d files this trainer; statsz unavailable: %v\n", addr, shardServed[addr], err)
					continue
				}
				fmt.Printf("  shard %s: served %d files this trainer; scan cache %d/%d hits/misses (%d entries, %.1f MiB)\n",
					addr, shardServed[addr], st.Cache.Hits, st.Cache.Misses,
					st.Cache.Entries, float64(st.Cache.Bytes)/(1<<20))
			}
		}
	} else {
		client := dppnet.NewClient(*connect)
		client.Resume = resume
		client.AuthToken = *authToken
		// Tally the scheduler telemetry each remote session's trailing
		// stats frame reports: scale events are the server-side
		// autoscaler at work (ShareScans sessions are exempt, so the
		// demo's stay at one worker), and the worker/consumer stall
		// split is the signal it scales on.
		var scaleUps, scaleDowns, schedSessions int64
		var workerStall, consumerStall time.Duration
		open = func(hour int64) dpp.Stream {
			sp := tableSpec
			sp.Files = hourFiles(hour)
			sp.ShareScans = true
			rs, err := client.Open(ctx, sp)
			if err != nil {
				fatal(err)
			}
			return rs
		}
		openFollow = func() dpp.Stream {
			// Follow streams neither resume nor fail over — a fresh client
			// without the resume policy, or the open is refused.
			fc := dppnet.NewClient(*connect)
			fc.AuthToken = *authToken
			sp := tableSpec
			sp.Follow = true
			rs, err := fc.Open(ctx, sp)
			if err != nil {
				fatal(err)
			}
			return rs
		}
		noteStream = func(sess dpp.Stream) {
			rs, ok := sess.(*dppnet.RemoteSession)
			if !ok {
				return
			}
			if st, ok := rs.Stats(); ok {
				scaleUps += st.Scheduler.ScaleUps
				scaleDowns += st.Scheduler.ScaleDowns
				workerStall += st.Scheduler.WorkerStall
				consumerStall += st.Scheduler.ConsumerStall
				schedSessions++
			}
		}
		printSharing = func() {
			st, err := client.ServiceStats(ctx)
			if err != nil {
				fatal(fmt.Errorf("statsz from %s: %w", *connect, err))
			}
			fmt.Printf("\nremote scan sharing at %s across %d epochs: %d/%d scan-cache hits/misses (%d entries, %.1f MiB); %d sessions served, %d batches shipped\n",
				*connect, *epochs, st.Cache.Hits, st.Cache.Misses, st.Cache.Entries,
				float64(st.Cache.Bytes)/(1<<20), st.SessionsOpened, st.BatchesServed)
			if schedSessions > 0 {
				fmt.Printf("server scheduling observed across %d sessions: %d/%d scale-ups/downs (service total %d/%d); stall %v waiting on readers, %v waiting on this trainer\n",
					schedSessions, scaleUps, scaleDowns, st.Scheduler.ScaleUps, st.Scheduler.ScaleDowns,
					workerStall.Round(time.Millisecond), consumerStall.Round(time.Millisecond))
			}
		}
	}

	if *follow && openFollow == nil {
		fatal(fmt.Errorf("-follow does not compose with a sharded -connect fleet; point at a single recd-serve running -follow"))
	}

	// Local follow mode hosts its own landing writer: a goroutine growing
	// the table one generated hour partition per -flush-interval, exactly
	// what `recd-serve -follow` runs server-side.
	var stopLander = func() {}
	if *follow && tt != nil {
		if *flushInterval <= 0 {
			fatal(fmt.Errorf("-follow needs a positive -flush-interval"))
		}
		w, err := landing.NewWriter(landing.Config{
			Store: tt.Store, Catalog: tt.Catalog, Table: tt.Spec.Table,
			Schema: tt.Schema, FlushRows: 4096, FlushInterval: *flushInterval,
			Cluster: true,
		})
		if err != nil {
			fatal(err)
		}
		landerStop, landerDone := make(chan struct{}), make(chan struct{})
		go func() {
			defer close(landerDone)
			hour := int64(2) // hours 0 and 1 are the landed train/eval partitions
			n := *sessions / 4
			if n == 0 {
				n = 1
			}
			for {
				select {
				case <-landerStop:
					if err := w.Close(); err != nil {
						fmt.Fprintln(os.Stderr, "recd-train: landing writer close:", err)
					}
					return
				case <-time.After(*flushInterval):
				}
				samples := datagen.NewGenerator(tt.Schema, datagen.GeneratorConfig{
					Sessions: n, MeanSamplesPerSession: 14, Seed: *seed + 2000 + hour,
					LabelSignal: 2.0, CTR: 0.2,
				}).GeneratePartition()
				if err := w.Append(hour, samples...); err != nil {
					fmt.Fprintln(os.Stderr, "recd-train: landing writer:", err)
					return
				}
				if *retainHours > 0 {
					if _, err := tt.Catalog.EnforceRetention(tt.Store, tt.Spec.Table, *retainHours); err != nil {
						fmt.Fprintln(os.Stderr, "recd-train: retention:", err)
						return
					}
				}
				hour++
			}
		}()
		var once sync.Once
		stopLander = func() {
			once.Do(func() { close(landerStop) })
			<-landerDone
		}
		defer stopLander()
	}

	var obsSrv *obs.Server
	var obsDone chan error
	if reg != nil {
		obsSrv = obs.NewServer(obs.Config{Registry: reg, Statsz: statsz})
		ln, err := net.Listen("tcp", *obsSide)
		if err != nil {
			fatal(err)
		}
		obsDone = make(chan error, 1)
		go func() { obsDone <- obsSrv.Serve(ln) }()
		fmt.Printf("recd-train: observability sidecar on %s\n", ln.Addr())
	}

	readHour := func(hour int64) []*reader.Batch {
		sess := open(hour)
		defer sess.Close()
		var out []*reader.Batch
		for {
			b, err := sess.Next(ctx)
			if err == io.EOF {
				if noteStream != nil {
					noteStream(sess)
				}
				return out
			}
			if err != nil {
				fatal(err)
			}
			out = append(out, b)
		}
	}

	model, err := trainer.New(trainer.Config{
		EmbDim:       16,
		DenseIn:      denseIn,
		BottomHidden: []int{32},
		TopHidden:    []int{64, 32},
		Features: []trainer.FeatureConfig{
			{Key: "hist_items", Pool: trainer.AttentionPool, TableRows: 1 << 12},
			{Key: "hist_cats", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "user_prefs", Pool: trainer.MeanPool, TableRows: 1 << 10},
			{Key: "item_id", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "item_cat", Pool: trainer.SumPool, TableRows: 1 << 8},
		},
		Opt:  opt,
		LR:   float32(*lr),
		Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	where := "in-process service"
	if *connect != "" {
		where = "remote service at " + *connect
	}
	fmt.Printf("training on %d samples (S=%.1f), %d dedup groups, mode=%s opt=%s, %s\n\n",
		trainRows, meanS, len(tableSpec.DedupSparseFeatures), mode, opt, where)

	if *follow {
		// Windowed epochs over the live tail: one Follow session supplies
		// every window; each window trains on the next table's-worth of
		// batches the tail delivers (blocking while the writer lands more),
		// then evaluates on the held-out hour as usual. When the windows
		// are done, EndFollow drains the tail's remainder to a clean EOF.
		winBatches := trainRows / *batch
		if winBatches == 0 {
			winBatches = 1
		}
		sess := openFollow()
		for e := 1; e <= *epochs; e++ {
			start := time.Now()
			var lastLoss float64
			for i := 0; i < winBatches; i++ {
				b, err := sess.Next(ctx)
				if err != nil {
					fatal(err) // the tail never EOFs before EndFollow
				}
				loss, _, err := model.TrainStep(b, mode)
				if err != nil {
					fatal(err)
				}
				lastLoss = loss
			}
			m, err := model.Evaluate(readHour(1), mode)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("window %d: train loss %.4f over %d live batches | eval logloss %.4f auc %.4f calib %.2f (%v)\n",
				e, lastLoss, winBatches, m.LogLoss, m.AUC, m.Calibration, time.Since(start).Round(time.Millisecond))
		}
		stopLander()
		sess.(interface{ EndFollow() }).EndFollow()
		tail := 0
		for {
			b, err := sess.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			if _, _, err := model.TrainStep(b, mode); err != nil {
				fatal(err)
			}
			tail++
		}
		if noteStream != nil {
			noteStream(sess)
		}
		sess.Close()
		fmt.Printf("\nfollow tail ended: %d remainder batches trained after EndFollow\n", tail)
	} else {
		for e := 1; e <= *epochs; e++ {
			start := time.Now()
			var lastLoss float64
			trainBatches := readHour(0) // epoch 1 decodes; later epochs hit the scan cache
			for _, b := range trainBatches {
				loss, _, err := model.TrainStep(b, mode)
				if err != nil {
					fatal(err)
				}
				lastLoss = loss
			}
			m, err := model.Evaluate(readHour(1), mode)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("epoch %d: train loss %.4f | eval logloss %.4f auc %.4f calib %.2f (%v)\n",
				e, lastLoss, m.LogLoss, m.AUC, m.Calibration, time.Since(start).Round(time.Millisecond))
		}
	}

	printSharing()

	if *ckpt != "" {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*ckpt, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\ncheckpoint written to %s (%d bytes)\n", *ckpt, buf.Len())
	}

	if obsSrv != nil {
		sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		if err := obsSrv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "recd-train: sidecar shutdown:", err)
		}
		cancel()
		<-obsDone
	}
}

// splitAddrs parses a comma-separated address list, trimming whitespace.
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	addrs := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			addrs = append(addrs, p)
		}
	}
	return addrs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recd-train:", err)
	os.Exit(1)
}
