// Command recd-inspect dumps the structure and deduplication statistics
// of DWRF files written by recd-datagen: per-column compression, samples
// per session, and the analytic DedupeFactor each feature would get at a
// given batch size.
//
// Usage:
//
//	recd-inspect -batch 2048 /tmp/recd-table/part-00000.dwrf ...
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/tensor"
)

func main() {
	batch := flag.Int("batch", 2048, "batch size for DedupeFactor estimates")
	topN := flag.Int("top", 15, "show the top-N features by DedupeFactor")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: recd-inspect [-batch N] file.dwrf ...")
		os.Exit(2)
	}

	var samples []datagen.Sample
	var keys []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		fr, err := dwrf.OpenReader(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		ss, err := fr.ReadAll()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: %d rows, %d stripes, %d sparse features, %d dense\n",
			path, fr.NumRows(), fr.NumStripes(), len(fr.SparseKeys()), fr.DenseCount())
		samples = append(samples, ss...)
		keys = fr.SparseKeys()
	}

	s := datagen.MeasuredS(samples)
	fmt.Printf("\ntotal rows: %d, measured samples/session S = %.2f\n", len(samples), s)

	// Per-feature duplicate measurement + analytic DedupeFactor at the
	// requested batch size (using measured d(f) and l(f)).
	type featStat struct {
		key    string
		avgLen float64
		exact  float64
		factor float64
	}
	stats := make([]featStat, len(keys))
	for fi, key := range keys {
		var totalIDs int64
		var rows int64
		for _, smp := range samples {
			totalIDs += int64(len(smp.Sparse[fi]))
			rows++
		}
		avgLen := float64(totalIDs) / float64(rows)

		// Exact duplicate fraction across adjacent same-session rows.
		var dup, pairs int64
		for i := 1; i < len(samples); i++ {
			if samples[i].SessionID != samples[i-1].SessionID {
				continue
			}
			pairs++
			if listEqual(samples[i].Sparse[fi], samples[i-1].Sparse[fi]) {
				dup++
			}
		}
		d := 0.0
		if pairs > 0 {
			d = float64(dup) / float64(pairs)
		}
		m := tensor.FeatureModel{S: s, B: float64(*batch), D: d, L: avgLen}
		stats[fi] = featStat{key: key, avgLen: avgLen, exact: d * 100, factor: m.DedupeFactor()}
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].factor > stats[j].factor })

	fmt.Printf("\n%-20s %10s %10s %12s %8s\n", "feature", "avg_len", "dup%", "DedupeFactor", "dedup?")
	n := *topN
	if n > len(stats) {
		n = len(stats)
	}
	for _, st := range stats[:n] {
		worth := ""
		if st.factor > tensor.DefaultDedupeThreshold {
			worth = "yes"
		}
		fmt.Printf("%-20s %10.1f %10.1f %12.2f %8s\n", st.key, st.avgLen, st.exact, st.factor, worth)
	}
}

func listEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recd-inspect:", err)
	os.Exit(1)
}
