// Benchmarks regenerating every table and figure of the paper's
// evaluation section, one testing.B target per experiment, plus
// micro-benchmarks for the hot paths (IKJT conversion, jagged index
// select, DWRF IO, collectives). Run:
//
//	go test -bench=. -benchmem
//
// Each experiment bench reports its headline metric(s) via b.ReportMetric
// so `-bench` output reads like the paper's results. The experiment
// implementations are in internal/experiments; cmd/recd-bench prints the
// full row sets.
package repro_test

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/dppshard"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/experiments"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// runExperiment executes one registered experiment per iteration and
// reports the requested cells as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics map[string][2]string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Run(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, addr := range metrics {
		if v, ok := res.Value(addr[0], addr[1]); ok {
			b.ReportMetric(v, name)
		} else {
			b.Fatalf("%s: missing %s/%s", id, addr[0], addr[1])
		}
	}
}

// BenchmarkFig3SessionHistogram regenerates Figure 3 (samples/session in
// a partition vs in a 4096 batch).
func BenchmarkFig3SessionHistogram(b *testing.B) {
	runExperiment(b, "fig3", map[string][2]string{
		"partition_S": {"partition", "mean_s"},
		"batch_S":     {"batch4096 (interleaved)", "mean_s"},
	})
}

// BenchmarkFig4Duplication regenerates Figure 4 (exact/partial duplicate
// percentages; paper 80.0/83.9, byte-weighted 81.6/89.4).
func BenchmarkFig4Duplication(b *testing.B) {
	runExperiment(b, "fig4", map[string][2]string{
		"exact_pct":   {"all features (mean)", "exact"},
		"partial_pct": {"all features (mean)", "partial"},
	})
}

// BenchmarkFig7EndToEnd regenerates Figure 7 (trainer/reader/storage
// gains; paper RM1 2.48/1.79/3.71x).
func BenchmarkFig7EndToEnd(b *testing.B) {
	runExperiment(b, "fig7", map[string][2]string{
		"rm1_trainer_x": {"RM1", "trainer"},
		"rm1_reader_x":  {"RM1", "reader"},
		"rm1_storage_x": {"RM1", "storage"},
	})
}

// BenchmarkFig8IterationBreakdown regenerates Figure 8 (A2A roughly
// halves; totals drop 23-44%).
func BenchmarkFig8IterationBreakdown(b *testing.B) {
	runExperiment(b, "fig8", map[string][2]string{
		"rm1_recd_total": {"RM1 recd", "total"},
		"rm1_recd_a2a":   {"RM1 recd", "a2a"},
		"rm1_base_a2a":   {"RM1 baseline", "a2a"},
	})
}

// BenchmarkFig9Ablation regenerates Figure 9 (paper ladder 1.0 / 1.0 /
// 1.34 / 2.42 / 2.48).
func BenchmarkFig9Ablation(b *testing.B) {
	r, ok := experiments.ByID("fig9")
	if !ok {
		b.Fatal("fig9 not registered")
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Run(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, row := range res.Rows {
		b.ReportMetric(row.Values[0].Value, row.Label[:3]+string(rune('0'+i))+"_x")
	}
}

// BenchmarkTable2ResourceUtilization regenerates Table 2 (QPS, memory
// utilization, compute efficiency).
func BenchmarkTable2ResourceUtilization(b *testing.B) {
	runExperiment(b, "table2", map[string][2]string{
		"recd_qps_x":   {"recd", "norm_qps"},
		"recd_maxmem":  {"recd", "max_mem"},
		"base_maxmem":  {"baseline", "max_mem"},
		"recd_eff_x":   {"recd", "comp_eff"},
		"batch3_qps_x": {"recd + 3x batch", "norm_qps"},
	})
}

// BenchmarkTable3ReaderBytes regenerates Table 3 (read/send bytes; paper
// 538/837 -> 179/837 -> 179/713 GB).
func BenchmarkTable3ReaderBytes(b *testing.B) {
	runExperiment(b, "table3", map[string][2]string{
		"base_read_MB":  {"baseline", "read"},
		"clust_read_MB": {"with cluster (O2)", "read"},
		"ikjt_send_MB":  {"with IKJT (O3/O4)", "send"},
	})
}

// BenchmarkTable4OptimizationSummary regenerates Table 4 (per-optimization
// impacts for RM1).
func BenchmarkTable4OptimizationSummary(b *testing.B) {
	runExperiment(b, "table4", map[string][2]string{
		"o2_compression_x": {"O2 table compression", "value"},
		"trainer_x":        {"O5-O7 trainer throughput", "value"},
	})
}

// BenchmarkFig10ReaderBreakdown regenerates Figure 10 (reader CPU
// fill/convert/process; paper fill -50/-33/-46%).
func BenchmarkFig10ReaderBreakdown(b *testing.B) {
	runExperiment(b, "fig10", map[string][2]string{
		"rm1_base_fill": {"RM1 baseline", "fill"},
		"rm1_recd_fill": {"RM1 recd", "fill"},
	})
}

// BenchmarkScribeSharding regenerates the §6.1 Scribe result (1.50x ->
// 2.25x).
func BenchmarkScribeSharding(b *testing.B) {
	runExperiment(b, "scribe", map[string][2]string{
		"improvement_x": {"improvement", "ratio"},
	})
}

// BenchmarkSingleNode regenerates §6.2 single-node training (2.18x).
func BenchmarkSingleNode(b *testing.B) {
	runExperiment(b, "singlenode", map[string][2]string{
		"speedup_x": {"single-node (8 GPUs)", "speedup"},
	})
}

// BenchmarkDedupeFactorModel regenerates the §4.2 analytic-vs-measured
// sweep.
func BenchmarkDedupeFactorModel(b *testing.B) {
	runExperiment(b, "dedupefactor", map[string][2]string{
		"analytic_x": {"d=0.95 S=16.5", "analytic"},
		"measured_x": {"d=0.95 S=16.5", "measured"},
	})
}

// BenchmarkPartialIKJT regenerates the §7 partial-dedup extension.
func BenchmarkPartialIKJT(b *testing.B) {
	runExperiment(b, "partial", map[string][2]string{
		"exact_x":   {"exact IKJT", "factor"},
		"partial_x": {"partial IKJT", "factor"},
	})
}

// BenchmarkDownsampling regenerates the §7 per-session downsampling
// argument.
func BenchmarkDownsampling(b *testing.B) {
	runExperiment(b, "downsample", map[string][2]string{
		"per_sample_S":  {"per-sample 50%", "S"},
		"per_session_S": {"per-session 50%", "S"},
	})
}

// BenchmarkAccuracyImpact regenerates the §6.2 accuracy observation
// (clustering improves generalization by avoiding repeated sparse
// updates on duplicate values).
func BenchmarkAccuracyImpact(b *testing.B) {
	runExperiment(b, "accuracy", map[string][2]string{
		"interleaved_auc": {"interleaved (baseline)", "auc"},
		"clustered_auc":   {"clustered (O2)", "auc"},
	})
}

// --- Micro-benchmarks for the hot paths ---

func benchBatch(b *testing.B, sessions, batch int) (*datagen.Schema, []tensor.Jagged, []string) {
	b.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	if len(samples) < batch {
		b.Fatalf("only %d samples for batch %d", len(samples), batch)
	}
	keys := schema.SparseKeys()
	tensors := make([]tensor.Jagged, len(keys))
	for fi := range keys {
		lists := make([][]tensor.Value, batch)
		for i := 0; i < batch; i++ {
			lists[i] = samples[i].Sparse[fi]
		}
		tensors[fi] = tensor.NewJagged(lists)
	}
	return schema, tensors, keys
}

// BenchmarkIKJTConversion measures the reader-side dedup cost the paper
// reports as a 21% convert-time increase (§6.3).
func BenchmarkIKJTConversion(b *testing.B) {
	_, tensors, keys := benchBatch(b, 200, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.DedupJagged(keys[:3], tensors[:3]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJaggedIndexSelect measures the O6 primitive in its steady-state
// form: a trainer expanding every batch reuses one destination buffer via
// JaggedIndexSelectInto, so the expansion loop runs allocation-free.
func BenchmarkJaggedIndexSelect(b *testing.B) {
	_, tensors, keys := benchBatch(b, 200, 1024)
	ik, err := tensor.DedupJagged(keys[:3], tensors[:3])
	if err != nil {
		b.Fatal(err)
	}
	dd, _ := ik.Deduped(keys[0])
	inv := ik.InverseLookup()
	var dst tensor.Jagged
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tensor.JaggedIndexSelectInto(dst, dd, inv)
	}
}

// BenchmarkJaggedIndexSelectAlloc measures the one-shot form that
// allocates a fresh result per call.
func BenchmarkJaggedIndexSelectAlloc(b *testing.B) {
	_, tensors, keys := benchBatch(b, 200, 1024)
	ik, err := tensor.DedupJagged(keys[:3], tensors[:3])
	if err != nil {
		b.Fatal(err)
	}
	dd, _ := ik.Deduped(keys[0])
	inv := ik.InverseLookup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.JaggedIndexSelect(dd, inv)
	}
}

// BenchmarkIKJTToKJTRoundTrip measures full expansion.
func BenchmarkIKJTToKJTRoundTrip(b *testing.B) {
	_, tensors, keys := benchBatch(b, 200, 1024)
	ik, err := tensor.DedupJagged(keys, tensors)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ik.ToKJT()
	}
}

// BenchmarkDWRFWriteClustered measures columnar encode+compress.
func BenchmarkDWRFWriteClustered(b *testing.B) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := dwrf.NewFileWriter(schema, dwrf.WriterOptions{StripeRows: 128})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteRows(samples); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReaderTier measures the fill→convert→process pipeline.
func BenchmarkReaderTier(b *testing.B) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 256,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	files, _ := catalog.AllFiles("t")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := reader.NewReader(store, spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(context.Background(), files, func(*reader.Batch) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReaderTierPipelined measures the same scan with prefetching
// fill and parallel per-dedup-group conversion enabled.
func BenchmarkReaderTierPipelined(b *testing.B) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 256,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
		FillAhead:           4,
		ConvertWorkers:      2,
	}
	files, _ := catalog.AllFiles("t")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := reader.NewReader(store, spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(context.Background(), files, func(*reader.Batch) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSession measures the dpp session API over the exact
// scan BenchmarkReaderTier runs through a direct Reader — the iterator
// overhead (service admission, one worker goroutine, a bounded-channel
// hop per batch) must stay within noise of the callback path.
func BenchmarkServiceSession(b *testing.B) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 256,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := svc.Open(ctx, dpp.Spec{Spec: spec, Buffer: 1})
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := sess.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		sess.Close()
	}
}

// BenchmarkRemoteSession measures the same scan as
// BenchmarkServiceSession pulled through the dppnet TCP transport on
// loopback: dial + handshake, framed batch encode/decode, credit
// returns, trailing stats. scripts/bench.sh gates the overhead versus
// BenchmarkServiceSession at BENCH_MAX_REMOTE_OVERHEAD_PCT (default
// 25%), computed from the same run so host speed cancels out.
func BenchmarkRemoteSession(b *testing.B) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 256,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := dppnet.NewServer(svc)
	go srv.Serve(ln)
	defer srv.Close()
	client := dppnet.NewClient(ln.Addr().String())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := client.Open(ctx, dpp.Spec{Spec: spec, Buffer: 1})
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := rs.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		rs.Close()
	}
}

// benchTwoSessions measures the aggregate cost of two concurrent
// same-spec sessions scanning one table, with or without cross-session
// scan sharing. Each iteration opens a fresh service, so the shared case
// always measures "two sessions, one decode" (single-flight coalescing +
// cache reuse), never a pre-warmed cache.
func benchTwoSessions(b *testing.B, share bool) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	// 256 rows per file so files align to the 256-row batch: every file
	// boundary is a batch boundary and the whole scan is shareable.
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 256, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 256,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for s := 0; s < 2; s++ {
			sess, err := svc.Open(ctx, dpp.Spec{Spec: spec, Buffer: 1, ShareScans: share})
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(s int, sess *dpp.Session) {
				defer wg.Done()
				for {
					_, err := sess.Next(ctx)
					if err == io.EOF {
						return
					}
					if err != nil {
						errs[s] = err
						return
					}
				}
			}(s, sess)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		svc.Close()
	}
}

// BenchmarkSharedSessions and BenchmarkUnsharedSessions are the
// cross-session scan-sharing headline pair: two jobs with equal specs
// over one table, batches memoized via the service ScanCache versus
// decoded twice. scripts/bench.sh gates the unshared/shared ns/op ratio
// (aggregate throughput gain) at BENCH_MIN_SHARED_RATIO, default 1.5.
func BenchmarkSharedSessions(b *testing.B)   { benchTwoSessions(b, true) }
func BenchmarkUnsharedSessions(b *testing.B) { benchTwoSessions(b, false) }

// benchShardedFleet measures several epochs of one trainer-shaped
// consumer over k preprocessing shards on loopback, with each shard's
// ScanCache deliberately budgeted at 3/4 of the table's decoded size.
// One shard therefore cannot hold the table — the LRU thrashes and every
// epoch re-decodes — while two shards' summed capacity fits it, so epochs
// after the first stream from the fleet's partitioned cache. That makes
// this pair the capacity headline scripts/bench.sh gates with
// BENCH_MIN_SHARD_SCALING (Fleet1 ns/op ÷ Fleet2 ns/op): the win is the
// fleet's additive cache, which survives the 1-CPU CI runner where
// parallel-decode wins cannot.
func benchShardedFleet(b *testing.B, shards int) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 300, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	// 256 rows per file so files align to the 256-row batch: the whole
	// scan is shareable and every file is cacheable on its owning shard.
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 256, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 256,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	files, err := catalog.AllFiles("t")
	if err != nil {
		b.Fatal(err)
	}
	r, err := reader.NewReader(store, spec)
	if err != nil {
		b.Fatal(err)
	}
	one, err := r.ScanFile(context.Background(), files[0])
	if err != nil {
		b.Fatal(err)
	}
	budget := one.MemBytes() * int64(len(files)) * 3 / 4

	// Each iteration stands up a fresh, cold fleet: the measured unit is
	// "cold fleet, 5 epochs", independent of b.N — cache state must not
	// leak between iterations or the 1-vs-2-shard ratio would depend on
	// how long the harness happens to run each side.
	startFleet := func() (*dppshard.Fleet, func()) {
		var closers []func()
		addrs := make([]string, 0, shards)
		for i := 0; i < shards; i++ {
			svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog, ScanCacheBytes: budget})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := dppnet.NewServer(svc)
			go srv.Serve(ln)
			closers = append(closers, func() { srv.Close(); svc.Close() })
			addrs = append(addrs, ln.Addr().String())
		}
		fleet, err := dppshard.New(dppshard.Config{Addrs: addrs, Backend: store})
		if err != nil {
			b.Fatal(err)
		}
		return fleet, func() {
			for _, c := range closers {
				c()
			}
		}
	}

	ctx := context.Background()
	const epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fleet, shutdown := startFleet()
		b.StartTimer()
		for e := 0; e < epochs; e++ {
			sess, err := fleet.Open(ctx, dpp.Spec{Spec: spec, Files: files, Buffer: 1, ShareScans: true})
			if err != nil {
				b.Fatal(err)
			}
			for {
				_, err := sess.Next(ctx)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			sess.Close()
		}
		b.StopTimer()
		shutdown()
		b.StartTimer()
	}
}

// BenchmarkShardedFleet1/2/4 are the sharded-preprocessing capacity
// ladder: identical table, identical merged stream, per-shard cache
// budget fixed at 3/4 of the table — shard count is the only axis.
func BenchmarkShardedFleet1(b *testing.B) { benchShardedFleet(b, 1) }
func BenchmarkShardedFleet2(b *testing.B) { benchShardedFleet(b, 2) }
func BenchmarkShardedFleet4(b *testing.B) { benchShardedFleet(b, 4) }

// benchStalledConsumer measures one session drained by a consumer that
// stalls briefly after each of the first half of its batches (a trainer
// warming up / periodically busy) and then drains flat out. The static
// variant keeps the spec's 4 workers throughout; the autoscaled variant
// starts identically but lets the service's AutoScaler resize the pool
// from the observed worker/consumer starvation — down while the consumer
// stalls, back up when it speeds up.
func benchStalledConsumer(b *testing.B, autoscale bool) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	// Small files (64 rows) so the scan is a long work queue: resizes
	// land mid-stream and a wrongly-sized pool has room to cost time.
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 64}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 64,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	cfg := dpp.Config{Backend: store, Catalog: catalog}
	if autoscale {
		cfg.AutoScale = &dpp.AutoScalerConfig{
			MinReaders: 1, MaxReaders: 4,
			Interval: time.Millisecond,
		}
	}
	svc, err := dpp.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	var scaleEvents int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := svc.Open(ctx, dpp.Spec{Spec: spec, Readers: 4, Buffer: 1})
		if err != nil {
			b.Fatal(err)
		}
		consumed := 0
		for {
			_, err := sess.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			consumed++
			if consumed%2 == 1 && consumed < 12 {
				time.Sleep(500 * time.Microsecond) // the trainer is busy
			}
		}
		st := sess.Stats().Scheduler
		scaleEvents += st.ScaleUps + st.ScaleDowns
		sess.Close()
	}
	b.ReportMetric(float64(scaleEvents)/float64(b.N), "scale_events/op")
}

// BenchmarkStaticStalledConsumer and BenchmarkAutoscaledStalledConsumer
// are the scheduling headline pair: scripts/bench.sh gates
// static ns/op ÷ autoscaled ns/op at BENCH_MIN_AUTOSCALE_RATIO. On the
// 1-CPU baseline runner the pool size cannot buy wall time, so this is a
// parity gate (autoscaling ≈ 1.0× static, bounded noise allowance): the
// controller must be free — resizing never stalls the stream — until a
// multicore baseline can gate its real win.
func BenchmarkStaticStalledConsumer(b *testing.B)     { benchStalledConsumer(b, false) }
func BenchmarkAutoscaledStalledConsumer(b *testing.B) { benchStalledConsumer(b, true) }

// BenchmarkTrainStepBaseline and BenchmarkTrainStepRecD measure the
// numeric DLRM step in both modes on identical batches.
func benchTrainStep(b *testing.B, mode trainer.Mode) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "t", 0, schema, samples,
		dwrf.TableOptions{Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		b.Fatal(err)
	}
	spec := reader.Spec{
		Table: "t", BatchSize: 128,
		SparseFeatures:      []string{"item_0"},
		DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
	}
	r, err := reader.NewReader(store, spec)
	if err != nil {
		b.Fatal(err)
	}
	files, _ := catalog.AllFiles("t")
	var batches []*reader.Batch
	if err := r.Run(context.Background(), files, func(bb *reader.Batch) error {
		batches = append(batches, bb)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	model, err := trainer.New(trainer.Config{
		EmbDim: 8, DenseIn: 2, BottomHidden: []int{16}, TopHidden: []int{16},
		Features: []trainer.FeatureConfig{
			{Key: "user_seq_0", Pool: trainer.AttentionPool, TableRows: 1 << 10},
			{Key: "user_seq_1", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "user_seq_2", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "user_elem_0", Pool: trainer.MeanPool, TableRows: 1 << 10},
			{Key: "user_elem_1", Pool: trainer.MaxPool, TableRows: 1 << 10},
			{Key: "user_elem_2", Pool: trainer.SumPool, TableRows: 1 << 10},
			{Key: "item_0", Pool: trainer.SumPool, TableRows: 1 << 10},
		},
		Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.TrainStep(batches[i%len(batches)], mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStepBaseline(b *testing.B) { benchTrainStep(b, trainer.Baseline) }
func BenchmarkTrainStepRecD(b *testing.B)     { benchTrainStep(b, trainer.RecD) }

// BenchmarkAllToAll measures the collective cost model itself.
func BenchmarkAllToAll(b *testing.B) {
	top := comm.ZionEX(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.UniformAllToAll(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineEndToEnd measures a complete small pipeline run.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	rm := core.RM1()
	rm.GenCfg.Sessions = 30
	rm.BaselineBatch, rm.RecDBatch = 128, 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunRecD(rm); err != nil {
			b.Fatal(err)
		}
	}
}
