package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/scribe"
	"repro/internal/trainer"
)

// PipelineConfig selects which RecD optimizations an end-to-end run
// enables, mirroring the paper's ablation axes (Table 1, Fig 9).
type PipelineConfig struct {
	RM RMSpec

	// ShardBySession enables O1 at the Scribe tier.
	ShardBySession bool
	// Clustered enables O2: the ETL clusters the landed table by session.
	Clustered bool
	// Dedup enables O3–O5/O7: IKJT conversion at readers and the RecD
	// trainer path.
	Dedup bool
	// UseJaggedIndexSelect enables O6 (only meaningful with Dedup).
	UseJaggedIndexSelect bool

	// Batch overrides the global batch size; 0 picks the RM's baseline
	// or RecD batch according to Dedup.
	Batch int
	// Readers is the reader-tier width (default 4).
	Readers int
	// ScribeShards is the Scribe cluster width (default 32).
	ScribeShards int
	// TrainSteps caps the numeric training steps (default 6; the cost
	// model extrapolates cluster behaviour from their cost reports).
	TrainSteps int
	// StatsOnly skips training and cluster simulation entirely: the
	// reader session is drained for its accounting (ingest/egress bytes,
	// stage times, dedup factor) and every batch is discarded as soon as
	// it is measured. The count-only path for experiments that never
	// look at FinalLoss/Cost/Iteration (Table 3, Fig 10).
	StatsOnly bool
	// ShareScans opts the run's reader session into the service's
	// cross-session ScanCache (dpp.Spec.ShareScans). A single Run opens
	// one session over a freshly landed table, so this changes nothing
	// measurable here — it exists so callers embedding core in
	// multi-session setups (several jobs over one landed partition, as
	// cmd/recd-train does per epoch) inherit the sharing path.
	ShareScans bool
	// DedupeThreshold overrides the selection heuristic's threshold.
	DedupeThreshold float64
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Batch == 0 {
		if c.Dedup {
			c.Batch = c.RM.RecDBatch
		} else {
			c.Batch = c.RM.BaselineBatch
		}
	}
	if c.Readers == 0 {
		c.Readers = 4
	}
	if c.ScribeShards == 0 {
		c.ScribeShards = 32
	}
	if c.TrainSteps == 0 {
		c.TrainSteps = 6
	}
	return c
}

// Result aggregates every tier's measurements for one pipeline run.
type Result struct {
	RM      string
	Samples int
	// S is the measured mean samples per session in the partition.
	S float64

	// Scribe compression (O1).
	Scribe scribe.Stats
	// Partition is the landed table's storage stats (O2).
	Partition dwrf.PartitionStats
	// Reader tier accounting (O3/O4, Table 3, Fig 10).
	Reader reader.Stats
	// ReaderThroughput is samples per reader-CPU-second.
	ReaderThroughput float64

	// Decisions and DedupGroups record the heuristic's output.
	Decisions   []FeatureDecision
	DedupGroups [][]string
	// MeasuredDedupFactor is the realized value-dedup across batches.
	MeasuredDedupFactor float64

	// FinalLoss is the numeric model's loss after TrainSteps.
	FinalLoss float64
	// Cost is the aggregate cost report across trained batches.
	Cost *trainer.CostReport
	// Iteration is the simulated cluster iteration at the configured
	// global batch.
	Iteration trainer.IterationReport
}

// Run executes the full pipeline under one configuration.
func Run(cfg PipelineConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	rm := cfg.RM
	schema := rm.Schema()
	res := &Result{RM: rm.Name}

	// --- Data generation: raw inference-ordered log stream.
	gen := datagen.NewGenerator(schema, rm.GenCfg)
	samples := gen.GeneratePartition()
	res.Samples = len(samples)
	res.S = datagen.MeasuredS(samples)

	// --- Scribe (O1): append the raw logs under the configured policy.
	policy := scribe.ShardByRequest
	if cfg.ShardBySession {
		policy = scribe.ShardBySession
	}
	sc, err := scribe.New(scribe.Config{Shards: cfg.ScribeShards, Policy: policy})
	if err != nil {
		return nil, err
	}
	var payload bytes.Buffer
	for _, s := range samples {
		payload.Reset()
		if err := s.Encode(&payload); err != nil {
			return nil, err
		}
		if err := sc.Append(scribe.Message{
			RequestID: s.RequestID,
			SessionID: s.SessionID,
			Payload:   payload.Bytes(),
		}); err != nil {
			return nil, err
		}
	}
	if err := sc.Flush(); err != nil {
		return nil, err
	}
	res.Scribe = sc.Stats()

	// --- ETL: consume the raw logs back off the message bus (charging
	// Scribe TX), split them into feature and event streams, and inner-
	// join on request ID to produce labeled samples — the paper's
	// streaming/batch processing stage (§2.1). With O2 the job also
	// clusters by session; otherwise samples land in inference-time order.
	var consumed []datagen.Sample
	if err := sc.Consume(func(m scribe.Message) error {
		dec, err := datagen.DecodeSample(bytes.NewReader(m.Payload))
		if err != nil {
			return err
		}
		consumed = append(consumed, dec)
		return nil
	}); err != nil {
		return nil, err
	}
	if len(consumed) != len(samples) {
		return nil, fmt.Errorf("core: scribe consume returned %d samples, appended %d", len(consumed), len(samples))
	}
	feats, events := etl.SplitLogs(consumed)
	landed := etl.Join(feats, events)
	if cfg.Clustered {
		landed = etl.ClusterBySession(landed)
	} else {
		sort.SliceStable(landed, func(i, j int) bool { return landed[i].Timestamp < landed[j].Timestamp })
	}

	// --- Storage: land one hourly partition of DWRF files.
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	table := rm.Name
	pstats, err := dwrf.WritePartition(store, catalog, table, 0, schema, landed,
		dwrf.TableOptions{RowsPerFile: 4096, Writer: dwrf.WriterOptions{StripeRows: 128}})
	if err != nil {
		return nil, err
	}
	res.Partition = pstats

	// --- Dedup selection (heuristic §7) and reader spec (O3/O4).
	var groups [][]string
	if cfg.Dedup {
		res.Decisions = SelectDedupFeatures(schema, res.S, cfg.Batch, cfg.DedupeThreshold)
		groups = DedupGroups(res.Decisions)
	}
	res.DedupGroups = groups
	spec, err := rm.ReaderSpec(table, cfg.Batch, groups)
	if err != nil {
		return nil, err
	}

	// --- Reader tier, DPP-style: open one session on a preprocessing
	// service and pull batches. Streaming (rather than collecting the
	// whole table) keeps only the first TrainSteps batches resident —
	// dedup-factor accounting folds in per batch and the rest of the
	// table is discarded as it is measured.
	svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec, Readers: cfg.Readers, ShareScans: cfg.ShareScans})
	if err != nil {
		return nil, err
	}
	var trainBatches []*reader.Batch
	var origValues, dedupValues float64
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, ik := range b.IKJTs {
			dedupValues += float64(ik.SDDWireBytes())
			origValues += float64(ik.SDDWireBytes()) * ik.MeasuredFactor()
		}
		if !cfg.StatsOnly && len(trainBatches) < cfg.TrainSteps {
			trainBatches = append(trainBatches, b)
		}
	}
	rstats := sess.Stats().Reader
	res.Reader = rstats
	res.ReaderThroughput = reader.ThroughputSamplesPerSec(rstats)

	// Measured dedup factor across IKJT groups.
	if dedupValues > 0 {
		res.MeasuredDedupFactor = origValues / dedupValues
	} else {
		res.MeasuredDedupFactor = 1
	}

	if cfg.StatsOnly {
		return res, nil
	}

	// --- Training: numeric steps for correctness + cost reports for the
	// cluster model.
	model, err := trainer.New(rm.ModelConfig(schema))
	if err != nil {
		return nil, err
	}
	mode := trainer.Baseline
	if cfg.Dedup {
		mode = trainer.RecD
	}
	var costs []*trainer.CostReport
	for _, b := range trainBatches {
		loss, cost, err := model.TrainStep(b, mode)
		if err != nil {
			return nil, err
		}
		res.FinalLoss = loss
		costs = append(costs, cost)
	}
	if len(costs) == 0 {
		return nil, fmt.Errorf("core: no batches to train on")
	}
	agg := &trainer.CostReport{}
	for _, c := range costs {
		agg.Add(c)
	}
	res.Cost = agg

	rep, err := trainer.SimulateTraining(costs, cfg.Batch, trainer.SimInput{
		EmbParamBytes:        rm.SimEmbParamBytes,
		DenseStateBytes:      model.DenseParamCount() * 8, // params + momentum
		UseJaggedIndexSelect: cfg.UseJaggedIndexSelect || !cfg.Dedup,
		ByteScale:            rm.SimByteScale,
		PoolFlopScale:        rm.SimPoolFlopScale,
		DenseFlopScale:       rm.SimDenseFlopScale,
		ParamScale:           rm.SimParamScale,
		ActMemScale:          rm.SimActMemScale,
	}, trainer.DefaultCluster(rm.Nodes))
	if err != nil {
		return nil, err
	}
	res.Iteration = rep
	return res, nil
}

// RunBaseline runs the RM with every RecD optimization off.
func RunBaseline(rm RMSpec) (*Result, error) {
	return Run(PipelineConfig{RM: rm})
}

// RunRecD runs the RM with the full optimization suite on.
func RunRecD(rm RMSpec) (*Result, error) {
	return Run(PipelineConfig{
		RM:                   rm,
		ShardBySession:       true,
		Clustered:            true,
		Dedup:                true,
		UseJaggedIndexSelect: true,
	})
}
