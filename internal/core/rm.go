// Package core orchestrates the full RecD pipeline end-to-end: synthetic
// data generation → Scribe log aggregation → ETL join/clustering → DWRF
// tables on the blob store → the reader tier → numeric DLRM training with
// the cluster cost model. It defines scaled-down equivalents of the
// paper's three evaluation models (RM1/RM2/RM3, §6.1) and the
// feature-deduplication selection heuristic (§7), and is the engine
// behind every table/figure reproduction in cmd/recd-bench.
package core

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/reader"
	"repro/internal/trainer"
)

// RMSpec is a scaled-down stand-in for one of the paper's representative
// recommendation models. The paper's RMs carry O(10⁹)–O(10¹¹) parameters
// on 48–64 GPUs; these specs keep the architectural shape (sequence
// features with attention pooling for RM1, element-wise pooling
// elsewhere, relative dataset session richness) at laptop scale.
type RMSpec struct {
	Name string

	// SchemaCfg shapes the sparse feature population.
	SchemaCfg datagen.StandardSchemaConfig
	// GenCfg shapes the session/sample distribution.
	GenCfg datagen.GeneratorConfig

	// BaselineBatch and RecDBatch are the per-iteration global batch
	// sizes (the paper raises RM1 2048→6144 and RM3 1152→2048 with RecD).
	BaselineBatch int
	RecDBatch     int
	// Nodes is the ZionEX node count (8 GPUs each).
	Nodes int

	// EmbDim is the numeric model's embedding dimension.
	EmbDim int
	// BottomHidden/TopHidden are MLP widths.
	BottomHidden []int
	TopHidden    []int
	// TableRows is the numeric embedding-table height per feature.
	TableRows int
	// SimEmbParamBytes is the simulated total embedding state for the
	// cluster memory model (the paper's O(10GB)–O(100GB) tables).
	SimEmbParamBytes int64
	// AttentionGroups is how many sequence sync groups are pooled with
	// transformers (RM1's distinguishing trait, §6.2); the paper's RM1
	// transformers are expensive but a bounded share of total compute
	// (dedup cut GEMM time ≈12%).
	AttentionGroups int

	// Production-scale calibration for the cluster cost model (see
	// trainer.SimInput and DESIGN.md): laptop tensors are rescaled so
	// byte-dependent collective costs dominate fixed message latency the
	// way they do on a real ZionEX fleet.
	SimByteScale      float64
	SimPoolFlopScale  float64
	SimDenseFlopScale float64
	SimParamScale     float64
	SimActMemScale    float64
}

// RM1 is the sequence-heavy model: many transformer-pooled user history
// features, the largest RecD gains (2.48× trainer, 1.79× reader, 3.71×
// compression).
func RM1() RMSpec {
	return RMSpec{
		Name: "RM1",
		SchemaCfg: datagen.StandardSchemaConfig{
			UserSeq: 9, UserElem: 12, Item: 4, Dense: 8,
			SeqLen: 24, SeqGroupSize: 3, Seed: 101,
		},
		GenCfg: datagen.GeneratorConfig{
			Sessions: 120, MeanSamplesPerSession: 16.5, Seed: 1001,
		},
		BaselineBatch: 512,
		RecDBatch:     1536,
		Nodes:         6,
		EmbDim:        16,
		BottomHidden:  []int{64},
		TopHidden:     []int{128, 64},
		TableRows:     1 << 12,
		// O(10GB) embedding state.
		SimEmbParamBytes:  10 << 30,
		AttentionGroups:   1,
		SimByteScale:      512,
		SimPoolFlopScale:  7000,
		SimDenseFlopScale: 25000,
		SimParamScale:     16,
		SimActMemScale:    50,
	}
}

// RM2 shares RM1's table (same GenCfg/SchemaCfg shape, same session
// richness) but pools element-wise only and cannot grow its batch
// (paper: 1.25× trainer gain, batch stays 2048).
func RM2() RMSpec {
	return RMSpec{
		Name: "RM2",
		SchemaCfg: datagen.StandardSchemaConfig{
			UserSeq: 3, UserElem: 12, Item: 4, Dense: 8,
			SeqLen: 48, SeqGroupSize: 3, Seed: 101,
		},
		GenCfg: datagen.GeneratorConfig{
			Sessions: 120, MeanSamplesPerSession: 16.5, Seed: 1001,
		},
		BaselineBatch: 512,
		RecDBatch:     512,
		Nodes:         6,
		EmbDim:        16,
		BottomHidden:  []int{64},
		TopHidden:     []int{64, 32},
		TableRows:     1 << 12,
		// O(100GB) embedding state.
		SimEmbParamBytes:  60 << 30,
		SimByteScale:      512,
		SimPoolFlopScale:  7000,
		SimDenseFlopScale: 25000,
		SimParamScale:     16,
		SimActMemScale:    50,
	}
}

// RM3 uses a session-poorer table (lower S), so clustering helps its
// compression less (2.06× vs 3.71×), and moderate dedup gains (1.43×
// trainer with batch 1152→2048).
func RM3() RMSpec {
	return RMSpec{
		Name: "RM3",
		SchemaCfg: datagen.StandardSchemaConfig{
			UserSeq: 6, UserElem: 10, Item: 5, Dense: 8,
			SeqLen: 32, SeqGroupSize: 6, Seed: 202,
		},
		GenCfg: datagen.GeneratorConfig{
			Sessions: 220, MeanSamplesPerSession: 6, Seed: 2002,
		},
		BaselineBatch:     384,
		RecDBatch:         768,
		Nodes:             8,
		EmbDim:            16,
		BottomHidden:      []int{64},
		TopHidden:         []int{64, 32},
		TableRows:         1 << 12,
		SimEmbParamBytes:  60 << 30,
		SimByteScale:      512,
		SimPoolFlopScale:  7000,
		SimDenseFlopScale: 25000,
		SimParamScale:     16,
		SimActMemScale:    50,
	}
}

// AllRMs returns the three evaluation models in paper order.
func AllRMs() []RMSpec { return []RMSpec{RM1(), RM2(), RM3()} }

// Schema instantiates the RM's dataset schema.
func (r RMSpec) Schema() *datagen.Schema {
	return datagen.StandardSchema(r.SchemaCfg)
}

// ModelConfig builds the numeric trainer configuration for this RM over
// its schema: sequence features get attention pooling when AttentionSeq
// is set, element-wise features rotate through sum/mean/max, item
// features sum-pool.
func (r RMSpec) ModelConfig(schema *datagen.Schema) trainer.Config {
	cfg := trainer.Config{
		EmbDim:       r.EmbDim,
		DenseIn:      schema.Dense,
		BottomHidden: r.BottomHidden,
		TopHidden:    r.TopHidden,
		LR:           0.01,
		Seed:         4242,
	}
	elemPools := []trainer.PoolKind{trainer.SumPool, trainer.MeanPool, trainer.MaxPool}
	elemIdx := 0
	groupSize := r.SchemaCfg.SeqGroupSize
	if groupSize <= 0 {
		groupSize = 3
	}
	seqIdx := 0
	for _, f := range schema.Sparse {
		fc := trainer.FeatureConfig{Key: f.Key, TableRows: r.TableRows}
		switch {
		case f.Class == datagen.UserFeature && f.Update == datagen.ShiftAppend:
			if seqIdx/groupSize < r.AttentionGroups {
				fc.Pool = trainer.AttentionPool
			} else {
				fc.Pool = trainer.SumPool
			}
			seqIdx++
		case f.Class == datagen.UserFeature:
			fc.Pool = elemPools[elemIdx%len(elemPools)]
			elemIdx++
		default:
			fc.Pool = trainer.SumPool
		}
		cfg.Features = append(cfg.Features, fc)
	}
	return cfg
}

// ReaderSpec builds the DataLoader spec for this RM. With dedup enabled,
// the groups come from the selection heuristic; otherwise every feature
// is consumed as a plain KJT.
func (r RMSpec) ReaderSpec(table string, batch int, dedupGroups [][]string) (reader.Spec, error) {
	schema := r.Schema()
	spec := reader.Spec{Table: table, BatchSize: batch}
	inGroup := map[string]bool{}
	for _, g := range dedupGroups {
		for _, k := range g {
			if _, ok := schema.FeatureIndex(k); !ok {
				return reader.Spec{}, fmt.Errorf("core: dedup group references unknown feature %q", k)
			}
			inGroup[k] = true
		}
	}
	spec.DedupSparseFeatures = dedupGroups
	for _, f := range schema.Sparse {
		if !inGroup[f.Key] {
			spec.SparseFeatures = append(spec.SparseFeatures, f.Key)
		}
	}
	// Preprocessing: hash every consumed feature into the model's table
	// space, then enforce ID bounds — a two-stage stand-in for the
	// readers' TorchScript transform chains (§4.3). Transforms over dedup
	// groups run on deduplicated values only (O4).
	all := spec.ConsumedFeatures()
	spec.SparseTransforms = []reader.SparseTransform{
		reader.HashMod{Features: all, TableSize: int64(r.TableRows)},
		reader.Clamp{Features: all, Min: 0, Max: int64(r.TableRows) - 1},
	}
	return spec, spec.Validate()
}
