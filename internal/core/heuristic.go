package core

import (
	"sort"

	"repro/internal/datagen"
	"repro/internal/tensor"
)

// FeatureDecision records the dedup heuristic's verdict for one feature.
type FeatureDecision struct {
	Key string
	// Factor is the analytic DedupeFactor(f) from the paper's §4.2 model.
	Factor float64
	// Dedup is whether the feature clears the threshold.
	Dedup bool
	// Group is the IKJT group the feature lands in when deduplicated:
	// its schema SyncGroup, or a singleton group named after the key.
	Group string
}

// SelectDedupFeatures applies the paper's heuristic (§7): compute
// DedupeFactor(f) for every sparse feature from the measured
// samples-per-session S and the per-feature d(f) and l(f), and
// deduplicate those above the threshold (typically 1.5). Features sharing
// a schema SyncGroup are deduplicated together or not at all (grouped
// IKJTs require synchronous updates), decided on the group's mean factor.
func SelectDedupFeatures(schema *datagen.Schema, s float64, batch int, threshold float64) []FeatureDecision {
	if threshold <= 0 {
		threshold = tensor.DefaultDedupeThreshold
	}
	decisions := make([]FeatureDecision, len(schema.Sparse))
	groupSum := map[string]float64{}
	groupCount := map[string]int{}

	for i, f := range schema.Sparse {
		m := datagen.FeatureModelFor(f, s, batch)
		d := FeatureDecision{Key: f.Key, Factor: m.DedupeFactor()}
		if f.SyncGroup != "" {
			d.Group = f.SyncGroup
			groupSum[f.SyncGroup] += d.Factor
			groupCount[f.SyncGroup]++
		} else {
			d.Group = f.Key
		}
		decisions[i] = d
	}

	for i := range decisions {
		f := schema.Sparse[i]
		if f.SyncGroup != "" {
			mean := groupSum[f.SyncGroup] / float64(groupCount[f.SyncGroup])
			decisions[i].Dedup = mean > threshold
		} else {
			decisions[i].Dedup = decisions[i].Factor > threshold
		}
	}
	return decisions
}

// DedupGroups folds positive decisions into the reader spec's
// dedup_sparse_features shape: one group per Group tag, members in schema
// order, groups ordered by first appearance.
func DedupGroups(decisions []FeatureDecision) [][]string {
	order := []string{}
	members := map[string][]string{}
	for _, d := range decisions {
		if !d.Dedup {
			continue
		}
		if _, ok := members[d.Group]; !ok {
			order = append(order, d.Group)
		}
		members[d.Group] = append(members[d.Group], d.Key)
	}
	out := make([][]string, 0, len(order))
	for _, g := range order {
		out = append(out, members[g])
	}
	return out
}

// MeanDedupFactor averages the analytic factor over deduplicated features,
// the number the paper quotes per RM ("DedupeFactor was ≈4–15 for
// deduplicated features").
func MeanDedupFactor(decisions []FeatureDecision) float64 {
	var sum float64
	var n int
	for _, d := range decisions {
		if d.Dedup {
			sum += d.Factor
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// TopFactors returns the k highest-factor decisions, for reporting.
func TopFactors(decisions []FeatureDecision, k int) []FeatureDecision {
	out := append([]FeatureDecision(nil), decisions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Factor > out[j].Factor })
	if k < len(out) {
		out = out[:k]
	}
	return out
}
