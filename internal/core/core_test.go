package core

import (
	"testing"

	"repro/internal/datagen"
)

func TestHeuristicSelectsUserFeatures(t *testing.T) {
	rm := RM1()
	schema := rm.Schema()
	decisions := SelectDedupFeatures(schema, 16.5, 2048, 1.5)
	if len(decisions) != len(schema.Sparse) {
		t.Fatalf("got %d decisions for %d features", len(decisions), len(schema.Sparse))
	}
	byKey := map[string]FeatureDecision{}
	for _, d := range decisions {
		byKey[d.Key] = d
	}
	// High-d(f) sequence features clear the threshold; item features do not.
	if !byKey["user_seq_0"].Dedup {
		t.Fatalf("user_seq_0 should dedup (factor %.2f)", byKey["user_seq_0"].Factor)
	}
	if byKey["item_0"].Dedup {
		t.Fatalf("item_0 should not dedup (factor %.2f)", byKey["item_0"].Factor)
	}
	// Sync-group members decide together.
	g0 := byKey["user_seq_0"].Group
	if byKey["user_seq_1"].Group != g0 || byKey["user_seq_2"].Group != g0 {
		t.Fatal("seq group members should share a group")
	}
	if byKey["user_seq_1"].Dedup != byKey["user_seq_0"].Dedup {
		t.Fatal("sync group members must decide together")
	}
}

func TestDedupGroupsShape(t *testing.T) {
	decisions := []FeatureDecision{
		{Key: "a", Dedup: true, Group: "g1"},
		{Key: "b", Dedup: true, Group: "g1"},
		{Key: "c", Dedup: false, Group: "c"},
		{Key: "d", Dedup: true, Group: "d"},
	}
	groups := DedupGroups(decisions)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != "a" || groups[0][1] != "b" {
		t.Fatalf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != "d" {
		t.Fatalf("group 1 = %v", groups[1])
	}
	if MeanDedupFactor(nil) != 1 {
		t.Fatal("empty mean factor should be 1")
	}
	top := TopFactors(decisions, 2)
	if len(top) != 2 {
		t.Fatalf("TopFactors len %d", len(top))
	}
}

func TestDedupeThresholdBoundary(t *testing.T) {
	// A feature exactly at the threshold is not deduplicated (strict >).
	specs := []datagen.FeatureSpec{
		{Key: "f", Class: datagen.UserFeature, ChangeProb: 0, MeanLen: 10, MaxLen: 20,
			Update: datagen.Resample, Cardinality: 100},
	}
	schema, err := datagen.NewSchema(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := datagen.FeatureModelFor(specs[0], 4, 1024)
	decisions := SelectDedupFeatures(schema, 4, 1024, m.DedupeFactor())
	if decisions[0].Dedup {
		t.Fatal("factor == threshold should not dedup")
	}
	decisions = SelectDedupFeatures(schema, 4, 1024, m.DedupeFactor()-0.01)
	if !decisions[0].Dedup {
		t.Fatal("factor > threshold should dedup")
	}
}

func TestReaderSpecConstruction(t *testing.T) {
	rm := RM1()
	spec, err := rm.ReaderSpec("t", 128, [][]string{{"user_seq_0", "user_seq_1"}})
	if err != nil {
		t.Fatal(err)
	}
	schema := rm.Schema()
	total := len(spec.SparseFeatures)
	for _, g := range spec.DedupSparseFeatures {
		total += len(g)
	}
	if total != len(schema.Sparse) {
		t.Fatalf("spec consumes %d features, schema has %d", total, len(schema.Sparse))
	}
	if _, err := rm.ReaderSpec("t", 128, [][]string{{"nope"}}); err == nil {
		t.Fatal("expected error for unknown feature in group")
	}
}

func TestModelConfigCoversSchema(t *testing.T) {
	for _, rm := range AllRMs() {
		schema := rm.Schema()
		cfg := rm.ModelConfig(schema)
		if len(cfg.Features) != len(schema.Sparse) {
			t.Fatalf("%s: model has %d features, schema %d", rm.Name, len(cfg.Features), len(schema.Sparse))
		}
	}
}

// TestEndToEndBaselineVsRecD is the headline Fig 7 shape at test scale:
// RecD must beat the baseline on trainer QPS, reader throughput-per-work,
// and storage compression, for RM1.
func TestEndToEndBaselineVsRecD(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline is slow")
	}
	rm := RM1()
	// Shrink for test runtime.
	rm.GenCfg.Sessions = 40
	rm.BaselineBatch, rm.RecDBatch = 256, 512

	base, err := RunBaseline(rm)
	if err != nil {
		t.Fatal(err)
	}
	recd, err := RunRecD(rm)
	if err != nil {
		t.Fatal(err)
	}

	if recd.Iteration.QPS <= base.Iteration.QPS {
		t.Fatalf("RecD QPS %.0f not above baseline %.0f", recd.Iteration.QPS, base.Iteration.QPS)
	}
	if recd.Partition.CompressionRatio() <= base.Partition.CompressionRatio() {
		t.Fatalf("clustered compression %.2f not above baseline %.2f",
			recd.Partition.CompressionRatio(), base.Partition.CompressionRatio())
	}
	if recd.Scribe.CompressionRatio() <= base.Scribe.CompressionRatio() {
		t.Fatalf("session-sharded scribe compression %.2f not above baseline %.2f",
			recd.Scribe.CompressionRatio(), base.Scribe.CompressionRatio())
	}
	if recd.Reader.ReadBytes >= base.Reader.ReadBytes {
		t.Fatal("clustering should cut reader ingest bytes")
	}
	if recd.MeasuredDedupFactor <= 1.5 {
		t.Fatalf("measured dedup factor %.2f too low", recd.MeasuredDedupFactor)
	}
	if len(recd.DedupGroups) == 0 {
		t.Fatal("heuristic selected no dedup groups")
	}
	// Sanity: the numeric model actually trained.
	if recd.FinalLoss <= 0 || base.FinalLoss <= 0 {
		t.Fatal("training losses missing")
	}
	t.Logf("QPS %.0f -> %.0f (%.2fx); compression %.2f -> %.2f; dedup factor %.2f",
		base.Iteration.QPS, recd.Iteration.QPS, recd.Iteration.QPS/base.Iteration.QPS,
		base.Partition.CompressionRatio(), recd.Partition.CompressionRatio(),
		recd.MeasuredDedupFactor)
}

func TestPipelineDefaults(t *testing.T) {
	cfg := PipelineConfig{RM: RM2(), Dedup: true}
	cfg = cfg.withDefaults()
	if cfg.Batch != RM2().RecDBatch {
		t.Fatalf("default batch = %d", cfg.Batch)
	}
	cfg = PipelineConfig{RM: RM2()}.withDefaults()
	if cfg.Batch != RM2().BaselineBatch {
		t.Fatalf("default baseline batch = %d", cfg.Batch)
	}
	if cfg.Readers != 4 || cfg.ScribeShards != 32 || cfg.TrainSteps != 6 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}
