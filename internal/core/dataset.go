package core

import (
	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/storage"
)

// TrainTableConfig parameterizes the deterministic synthetic training
// table cmd/recd-train trains on and cmd/recd-serve serves. Determinism
// is the point: two processes building with equal configs land
// byte-identical partitions under identical file names and derive the
// same reader spec (same fingerprint), which is what lets a trainer
// submit specs and file lists to a preprocessing server that landed the
// data independently — and lets its ShareScans sessions hit the server's
// cache entries.
type TrainTableConfig struct {
	// Sessions is the training-partition session count; the eval
	// partition gets a quarter of it.
	Sessions int
	// Batch is the training batch size the derived spec uses.
	Batch int
	// Seed drives generation (eval uses Seed+1000, as recd-train always
	// has).
	Seed int64
	// StoreCacheBytes wraps the landed store in a raw-byte
	// storage.CachingBackend with this budget; 0 leaves the store bare.
	StoreCacheBytes int64
}

// TrainTable is the landed dataset plus everything both binaries derive
// from it.
type TrainTable struct {
	Schema  *datagen.Schema
	Store   *lakefs.Store
	Catalog *lakefs.Catalog
	// Backend is what a dpp.Service should read through: the raw store,
	// or the CachingBackend over it when StoreCacheBytes > 0.
	Backend storage.Backend
	// Cache is the raw-byte caching tier, nil when StoreCacheBytes == 0.
	Cache *storage.CachingBackend
	// Spec is the derived reader spec: the dedup heuristic's groups over
	// the measured S, remaining sparse features as plain KJTs.
	Spec reader.Spec
	// S is the measured mean samples per session of the train partition.
	S float64
	// TrainRows counts landed training samples.
	TrainRows int
}

// trainTableSchema is the fixed feature schema of the demo table: the
// cart sequences form one sync group (a grouped IKJT); the item features
// use small ID spaces so the label's item effect is learnable at demo
// scale.
func trainTableSchema() (*datagen.Schema, error) {
	specs := []datagen.FeatureSpec{
		{Key: "hist_items", Class: datagen.UserFeature, ChangeProb: 0.08,
			MeanLen: 24, MaxLen: 48, Update: datagen.ShiftAppend,
			Cardinality: 1 << 34, SyncGroup: "hist"},
		{Key: "hist_cats", Class: datagen.UserFeature, ChangeProb: 0.08,
			MeanLen: 24, MaxLen: 48, Update: datagen.ShiftAppend,
			Cardinality: 1 << 16, SyncGroup: "hist"},
		{Key: "user_prefs", Class: datagen.UserFeature, ChangeProb: 0.1,
			MeanLen: 8, MaxLen: 16, Update: datagen.Resample, Cardinality: 1 << 20},
		{Key: "item_id", Class: datagen.ItemFeature, ChangeProb: 0.95,
			MeanLen: 1, MaxLen: 2, Update: datagen.Resample, Cardinality: 1 << 8},
		{Key: "item_cat", Class: datagen.ItemFeature, ChangeProb: 0.9,
			MeanLen: 2, MaxLen: 4, Update: datagen.Resample, Cardinality: 1 << 6},
	}
	return datagen.NewSchema(specs, 4)
}

// BuildTrainTable generates, clusters, and lands the two hourly
// partitions (hour 0 train, hour 1 eval) and derives the dedup-grouped
// reader spec.
func BuildTrainTable(cfg TrainTableConfig) (*TrainTable, error) {
	schema, err := trainTableSchema()
	if err != nil {
		return nil, err
	}
	makePartition := func(sessions int, genSeed int64) []datagen.Sample {
		return datagen.NewGenerator(schema, datagen.GeneratorConfig{
			Sessions:              sessions,
			MeanSamplesPerSession: 14,
			Seed:                  genSeed,
			LabelSignal:           2.0,
			CTR:                   0.2,
		}).GeneratePartition()
	}
	train := etl.ClusterBySession(makePartition(cfg.Sessions, cfg.Seed))
	eval := etl.ClusterBySession(makePartition(cfg.Sessions/4, cfg.Seed+1000))

	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	for hour, part := range map[int64][]datagen.Sample{0: train, 1: eval} {
		if _, err := dwrf.WritePartition(store, catalog, "train", hour, schema, part,
			dwrf.TableOptions{RowsPerFile: 4096, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
			return nil, err
		}
	}

	s := datagen.MeasuredS(train)
	groups := DedupGroups(SelectDedupFeatures(schema, s, cfg.Batch, 0))
	spec := reader.Spec{Table: "train", BatchSize: cfg.Batch, DedupSparseFeatures: groups}
	inGroup := map[string]bool{}
	for _, g := range groups {
		for _, k := range g {
			inGroup[k] = true
		}
	}
	for _, f := range schema.Sparse {
		if !inGroup[f.Key] {
			spec.SparseFeatures = append(spec.SparseFeatures, f.Key)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	tt := &TrainTable{
		Schema:    schema,
		Store:     store,
		Catalog:   catalog,
		Backend:   store,
		Spec:      spec,
		S:         s,
		TrainRows: len(train),
	}
	if cfg.StoreCacheBytes > 0 {
		tt.Cache = storage.NewCachingBackend(store, cfg.StoreCacheBytes)
		tt.Backend = tt.Cache
	}
	return tt, nil
}
