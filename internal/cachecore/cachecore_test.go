package cachecore_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cachecore"
)

func newStringCache(cfg cachecore.Config) *cachecore.Cache[string, string] {
	return cachecore.New[string](cfg, func(v string) int64 { return int64(len(v)) })
}

func mustGet(t *testing.T, c *cachecore.Cache[string, string], key, val string) bool {
	t.Helper()
	got, hit, err := c.Get(context.Background(), key, func(context.Context) (string, error) {
		return val, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit && got != val {
		t.Fatalf("computed %q, want %q", got, val)
	}
	return hit
}

func TestEvictionOrderAndRefresh(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 12}) // room for three 4-byte values

	for _, k := range []string{"a", "b", "c"} {
		if hit := mustGet(t, c, k, "vvvv"); hit {
			t.Fatalf("first insert of %q reported a hit", k)
		}
	}
	mustGet(t, c, "a", "") // refresh a: b is now LRU
	mustGet(t, c, "d", "vvvv")
	if c.Contains("b") {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%q should be resident", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 12 {
		t.Fatalf("stats %+v", st)
	}
	entries := c.Entries()
	if len(entries) != 3 || entries[0].Key != "d" || entries[2].Key != "c" {
		t.Fatalf("recency order %+v", entries)
	}
}

// TestOversizeNeverRetained: a value larger than the whole budget is
// served but not inserted — and crucially does not evict the resident
// working set to make room for something that cannot fit anyway.
func TestOversizeNeverRetained(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 8})
	mustGet(t, c, "a", "vvvv")
	mustGet(t, c, "b", "vvvv")
	got, hit, err := c.Get(context.Background(), "huge", func(context.Context) (string, error) {
		return "0123456789abcdef", nil
	})
	if err != nil || hit || got != "0123456789abcdef" {
		t.Fatalf("oversize get: %q hit=%v err=%v", got, hit, err)
	}
	if c.Contains("huge") {
		t.Fatal("oversize value must not be retained")
	}
	if !c.Contains("a") || !c.Contains("b") {
		t.Fatal("oversize value evicted the resident working set")
	}
}

// TestWaiterAccounting pins the config split: waiters coalesced onto a
// leader's compute charge a hit with CountWaiterHits and nothing
// without, while the leader charges one miss either way.
func TestWaiterAccounting(t *testing.T) {
	for _, tc := range []struct {
		name       string
		waiterHits bool
		wantHits   int64
	}{
		{"waiters-count-as-hits", true, 3},
		{"waiters-count-nothing", false, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newStringCache(cachecore.Config{MaxBytes: 1 << 20, CountWaiterHits: tc.waiterHits})
			release := make(chan struct{})
			var computes atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, _, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
						computes.Add(1)
						<-release
						return "v", nil
					})
					if err != nil {
						t.Error(err)
					}
				}()
			}
			time.Sleep(20 * time.Millisecond) // let the losers park behind the leader
			close(release)
			wg.Wait()
			if n := computes.Load(); n != 1 {
				t.Fatalf("computed %d times for 4 concurrent callers", n)
			}
			st := c.Stats()
			if st.Misses != 1 || st.Hits != tc.wantHits {
				t.Fatalf("stats %+v, want 1 miss %d hits", st, tc.wantHits)
			}
		})
	}
}

func TestLeaderFailureDoesNotPoison(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	boom := errors.New("compute failed")
	_, _, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
		return "", boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	if c.Contains("k") {
		t.Fatal("failed entry must not be cached")
	}
	got, hit, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
		return "v", nil
	})
	if err != nil || hit || got != "v" {
		t.Fatalf("retry: %q hit=%v err=%v", got, hit, err)
	}
}

func TestWaiterCancellation(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Get(context.Background(), "k", func(context.Context) (string, error) {
			close(started)
			<-release
			return "v", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, "k", func(context.Context) (string, error) {
			return "", errors.New("waiter must not compute")
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}

// TestPeekAccounting: Peek charges a hit and refreshes recency when
// resident, a miss otherwise, and never blocks on in-flight computes.
func TestPeekAccounting(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 8})
	if _, ok := c.Peek("a"); ok {
		t.Fatal("peek of empty cache hit")
	}
	mustGet(t, c, "a", "vvvv")
	mustGet(t, c, "b", "vvvv")
	if v, ok := c.Peek("a"); !ok || v != "vvvv" {
		t.Fatalf("peek a = %q, %v", v, ok)
	}
	mustGet(t, c, "d", "vvvv") // a was refreshed by Peek, so b is evicted
	if c.Contains("b") || !c.Contains("a") {
		t.Fatal("peek did not refresh recency")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats %+v, want 1 hit 4 misses", st)
	}
}

// TestRemoveResident: invalidating a resident entry frees its bytes,
// counts an invalidation, and forces the next Get to recompute.
func TestRemoveResident(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	mustGet(t, c, "a", "vvvv")
	mustGet(t, c, "b", "vvvv")
	if !c.Remove("a") {
		t.Fatal("Remove of resident entry reported false")
	}
	if c.Remove("a") {
		t.Fatal("second Remove of the same key reported true")
	}
	if c.Contains("a") || !c.Contains("b") {
		t.Fatal("Remove dropped the wrong entry")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 4 || st.Invalidations != 1 {
		t.Fatalf("stats %+v, want 1 entry, 4 bytes, 1 invalidation", st)
	}
	if hit := mustGet(t, c, "a", "wwww"); hit {
		t.Fatal("Get after Remove hit stale state")
	}
}

// TestRemoveInFlight pins the doomed-entry semantics: removing a key
// whose compute is still running serves the in-flight waiters their
// value but never retains it — and leaks no bytes or ghost LRU nodes.
func TestRemoveInFlight(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan string, 1)
	go func() {
		v, _, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
			close(started)
			<-release
			return "stale", nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	<-started
	if !c.Remove("k") {
		t.Fatal("Remove of in-flight entry reported false")
	}
	close(release)
	if v := <-done; v != "stale" {
		t.Fatalf("in-flight caller got %q, want its computed value", v)
	}
	if c.Contains("k") {
		t.Fatal("doomed entry was retained after its compute finished")
	}
	// A successor Get recomputes and is retained normally — the doomed
	// predecessor's completion must not delete the successor's entry.
	startedTwo := make(chan struct{})
	releaseTwo := make(chan struct{})
	doneTwo := make(chan struct{})
	go func() {
		defer close(doneTwo)
		c.Get(context.Background(), "k", func(context.Context) (string, error) {
			close(startedTwo)
			<-releaseTwo
			return "new!", nil
		})
	}()
	<-startedTwo
	close(releaseTwo)
	<-doneTwo
	if !c.Contains("k") {
		t.Fatal("successor entry was not retained")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 4 || st.Invalidations != 1 {
		t.Fatalf("stats %+v, want exactly the successor's 4 bytes resident", st)
	}
}

// TestRemoveIf: predicate invalidation drops exactly the matching keys
// and reports how many it removed.
func TestRemoveIf(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	for _, k := range []string{"tbl/f1", "tbl/f2", "other/f1"} {
		mustGet(t, c, k, "vvvv")
	}
	n := c.RemoveIf(func(k string) bool { return len(k) >= 4 && k[:4] == "tbl/" })
	if n != 2 {
		t.Fatalf("RemoveIf removed %d entries, want 2", n)
	}
	if c.Contains("tbl/f1") || c.Contains("tbl/f2") || !c.Contains("other/f1") {
		t.Fatal("RemoveIf dropped the wrong keys")
	}
	if st := c.Stats(); st.Invalidations != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 2 invalidations, 1 entry", st)
	}
}
