package cachecore_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cachecore"
)

func newStringCache(cfg cachecore.Config) *cachecore.Cache[string, string] {
	return cachecore.New[string](cfg, func(v string) int64 { return int64(len(v)) })
}

func mustGet(t *testing.T, c *cachecore.Cache[string, string], key, val string) bool {
	t.Helper()
	got, hit, err := c.Get(context.Background(), key, func(context.Context) (string, error) {
		return val, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit && got != val {
		t.Fatalf("computed %q, want %q", got, val)
	}
	return hit
}

func TestEvictionOrderAndRefresh(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 12}) // room for three 4-byte values

	for _, k := range []string{"a", "b", "c"} {
		if hit := mustGet(t, c, k, "vvvv"); hit {
			t.Fatalf("first insert of %q reported a hit", k)
		}
	}
	mustGet(t, c, "a", "") // refresh a: b is now LRU
	mustGet(t, c, "d", "vvvv")
	if c.Contains("b") {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%q should be resident", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 12 {
		t.Fatalf("stats %+v", st)
	}
	entries := c.Entries()
	if len(entries) != 3 || entries[0].Key != "d" || entries[2].Key != "c" {
		t.Fatalf("recency order %+v", entries)
	}
}

// TestOversizeNeverRetained: a value larger than the whole budget is
// served but not inserted — and crucially does not evict the resident
// working set to make room for something that cannot fit anyway.
func TestOversizeNeverRetained(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 8})
	mustGet(t, c, "a", "vvvv")
	mustGet(t, c, "b", "vvvv")
	got, hit, err := c.Get(context.Background(), "huge", func(context.Context) (string, error) {
		return "0123456789abcdef", nil
	})
	if err != nil || hit || got != "0123456789abcdef" {
		t.Fatalf("oversize get: %q hit=%v err=%v", got, hit, err)
	}
	if c.Contains("huge") {
		t.Fatal("oversize value must not be retained")
	}
	if !c.Contains("a") || !c.Contains("b") {
		t.Fatal("oversize value evicted the resident working set")
	}
}

// TestWaiterAccounting pins the config split: waiters coalesced onto a
// leader's compute charge a hit with CountWaiterHits and nothing
// without, while the leader charges one miss either way.
func TestWaiterAccounting(t *testing.T) {
	for _, tc := range []struct {
		name       string
		waiterHits bool
		wantHits   int64
	}{
		{"waiters-count-as-hits", true, 3},
		{"waiters-count-nothing", false, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newStringCache(cachecore.Config{MaxBytes: 1 << 20, CountWaiterHits: tc.waiterHits})
			release := make(chan struct{})
			var computes atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, _, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
						computes.Add(1)
						<-release
						return "v", nil
					})
					if err != nil {
						t.Error(err)
					}
				}()
			}
			time.Sleep(20 * time.Millisecond) // let the losers park behind the leader
			close(release)
			wg.Wait()
			if n := computes.Load(); n != 1 {
				t.Fatalf("computed %d times for 4 concurrent callers", n)
			}
			st := c.Stats()
			if st.Misses != 1 || st.Hits != tc.wantHits {
				t.Fatalf("stats %+v, want 1 miss %d hits", st, tc.wantHits)
			}
		})
	}
}

func TestLeaderFailureDoesNotPoison(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	boom := errors.New("compute failed")
	_, _, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
		return "", boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	if c.Contains("k") {
		t.Fatal("failed entry must not be cached")
	}
	got, hit, err := c.Get(context.Background(), "k", func(context.Context) (string, error) {
		return "v", nil
	})
	if err != nil || hit || got != "v" {
		t.Fatalf("retry: %q hit=%v err=%v", got, hit, err)
	}
}

func TestWaiterCancellation(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 1 << 20})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Get(context.Background(), "k", func(context.Context) (string, error) {
			close(started)
			<-release
			return "v", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, "k", func(context.Context) (string, error) {
			return "", errors.New("waiter must not compute")
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}

// TestPeekAccounting: Peek charges a hit and refreshes recency when
// resident, a miss otherwise, and never blocks on in-flight computes.
func TestPeekAccounting(t *testing.T) {
	c := newStringCache(cachecore.Config{MaxBytes: 8})
	if _, ok := c.Peek("a"); ok {
		t.Fatal("peek of empty cache hit")
	}
	mustGet(t, c, "a", "vvvv")
	mustGet(t, c, "b", "vvvv")
	if v, ok := c.Peek("a"); !ok || v != "vvvv" {
		t.Fatalf("peek a = %q, %v", v, ok)
	}
	mustGet(t, c, "d", "vvvv") // a was refreshed by Peek, so b is evicted
	if c.Contains("b") || !c.Contains("a") {
		t.Fatal("peek did not refresh recency")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats %+v, want 1 hit 4 misses", st)
	}
}
