// Package cachecore is the one single-flight + byte-bounded-LRU engine
// behind the repo's two cache tiers: dpp.ScanCache (decoded file scans,
// keyed by file + spec fingerprint) and storage.CachingBackend (raw
// blobs, keyed by path). Both tiers previously carried their own ~200
// line copy of the same machinery — coalesced misses, leader-failure
// retry, recency-ordered eviction under a byte budget — which the
// sharded preprocessing fleet would have forced into a third copy.
// Extracting the core keeps exactly one implementation of the
// correctness-critical loop and lets the tiers differ only where their
// contracts actually differ (waiter accounting; see Config).
package cachecore

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Config tunes the engine to a tier's documented contract.
type Config struct {
	// MaxBytes is the byte budget. Must be positive; completed entries
	// are evicted least-recently-used once the budget is exceeded. A
	// value whose cost alone exceeds the budget is served but never
	// retained (retaining it would evict the entire cache for one entry).
	MaxBytes int64
	// CountWaiterHits controls how a caller coalesced onto another
	// caller's in-flight compute is charged once that compute succeeds:
	// true charges a hit (dpp.ScanCache's contract — the waiter was
	// served work someone else paid for), false charges neither hit nor
	// miss (storage.CachingBackend's contract — only resident entries
	// hit).
	CountWaiterHits bool
}

// Cache memoizes compute(key) results under a byte budget with
// single-flight coalescing of concurrent misses. All methods are safe
// for concurrent use.
//
// Failure never poisons: a failed compute propagates only to the caller
// that ran it, and its waiters retry (one of them computing). Evicted
// entries remain valid for holders — values are never recycled, only
// forgotten.
type Cache[K comparable, V any] struct {
	max        int64
	waiterHits bool
	cost       func(V) int64

	mu      sync.Mutex
	entries map[K]*entry[K, V]
	lru     *list.List // complete resident entries only; front = most recent

	// The accounting is atomic so Stats never contends with Get/Peek: a
	// metrics scraper polling every cache tier in the process must stay
	// invisible to the hot path. bytes and resident are mutated only
	// under mu (the eviction logic reads them there), but loaded
	// lock-free by Stats.
	hits, misses, evictions atomic.Int64
	invalidations           atomic.Int64
	bytes, resident         atomic.Int64
}

// entry is one cached (or in-flight) computation.
type entry[K comparable, V any] struct {
	key  K
	el   *list.Element // nil while in flight or after eviction
	cost int64
	hits int64

	// doomed marks an in-flight entry invalidated mid-compute: its
	// completion serves the value to the callers already waiting but must
	// not retain it — retaining would resurrect data the source deleted,
	// and the map may already hold a fresh entry under the same key.
	doomed bool

	ready chan struct{} // closed when val/err are set
	val   V
	err   error
}

// New builds a cache. cost prices a completed value for the byte
// budget; it is called once per successful compute. Panics on a
// non-positive budget or nil cost, both programmer errors.
func New[K comparable, V any](cfg Config, cost func(V) int64) *Cache[K, V] {
	if cfg.MaxBytes <= 0 {
		panic("cachecore: cache needs a positive byte budget")
	}
	if cost == nil {
		panic("cachecore: cache needs a cost function")
	}
	return &Cache[K, V]{
		max:        cfg.MaxBytes,
		waiterHits: cfg.CountWaiterHits,
		cost:       cost,
		entries:    make(map[K]*entry[K, V]),
		lru:        list.New(),
	}
}

// Get returns the value for key, computing and caching it on a miss.
// Concurrent Gets of one missing key share a single compute call; hit
// reports whether this caller was served without computing (resident
// entry, or a coalesced wait — see Config.CountWaiterHits for how the
// latter is charged in Stats). If the computing caller fails, its error
// reaches that caller alone; waiters retry, one of them computing.
// Cancelling ctx abandons a coalesced wait with ctx.Err(); the in-flight
// compute itself sees only its own caller's context.
func (c *Cache[K, V]) Get(ctx context.Context, key K, compute func(context.Context) (V, error)) (val V, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.ready: // complete
				if e.err == nil {
					c.touch(e)
					c.hits.Add(1)
					e.hits++
					c.mu.Unlock()
					return e.val, true, nil
				}
				// Failed entries are removed by their computer; one still
				// visible lost a race — fall through and wait it out.
			default:
			}
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
			if e.err != nil {
				continue // leader failed; retry (and possibly lead)
			}
			c.mu.Lock()
			if c.waiterHits {
				c.touch(e)
				c.hits.Add(1)
				e.hits++
			}
			c.mu.Unlock()
			return e.val, true, nil
		}

		e := &entry[K, V]{key: key, ready: make(chan struct{})}
		c.entries[key] = e
		c.misses.Add(1)
		c.mu.Unlock()

		e.val, e.err = compute(ctx)

		c.mu.Lock()
		if e.err != nil {
			// A doomed entry was already unmapped by Remove, and the map may
			// hold a successor under the same key — only delete our own.
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			close(e.ready)
			var zero V
			return zero, false, e.err
		}
		e.cost = c.cost(e.val)
		if e.cost > c.max || e.doomed {
			// Unretainable: serve the value (waiters included) but drop the
			// entry rather than evicting everything else to make room — or,
			// for a doomed entry, rather than caching data its source
			// invalidated mid-compute.
			if c.entries[key] == e {
				delete(c.entries, key)
			}
		} else {
			e.el = c.lru.PushFront(e)
			c.bytes.Add(e.cost)
			c.resident.Add(1)
			c.evict()
		}
		c.mu.Unlock()
		close(e.ready)
		return e.val, false, nil
	}
}

// Peek returns the resident value for key, charging a hit and
// refreshing recency when present and a miss otherwise — the lookup
// shape of a read path that falls back to an uncached source instead of
// computing (storage.CachingBackend.ReadRange). In-flight entries are
// not waited for: Peek never blocks.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.el != nil {
		c.touch(e)
		c.hits.Add(1)
		e.hits++
		return e.val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Contains reports whether a completed entry for key is resident,
// without touching recency or the hit/miss accounting.
func (c *Cache[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.el != nil
}

// Remove invalidates the entry for key, reporting whether one existed.
// A resident entry is dropped immediately (its bytes leave the budget);
// an in-flight entry is unmapped and doomed — the compute in progress
// still serves its waiters, but its result is not retained, and a Get
// arriving after Remove returns recomputes from the source. Removal is
// how a catalog's retention path keeps the cache honest: once the
// backing file is deleted, the next lookup must miss.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(key)
}

// RemoveIf invalidates every entry whose key satisfies pred, returning
// how many were dropped. Used for file-scoped invalidation where one
// file fans out to several cache keys (per-fingerprint scan entries).
func (c *Cache[K, V]) RemoveIf(pred func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key := range c.entries {
		if pred(key) && c.removeLocked(key) {
			n++
		}
	}
	return n
}

// removeLocked implements Remove. Callers hold c.mu.
func (c *Cache[K, V]) removeLocked(key K) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	delete(c.entries, key)
	if e.el != nil {
		c.lru.Remove(e.el)
		e.el = nil
		c.bytes.Add(-e.cost)
		c.resident.Add(-1)
	} else {
		e.doomed = true
	}
	c.invalidations.Add(1)
	return true
}

// touch marks a resident entry most-recently-used. Callers hold c.mu.
func (c *Cache[K, V]) touch(e *entry[K, V]) {
	if e.el != nil {
		c.lru.MoveToFront(e.el)
	}
}

// evict drops least-recently-used resident entries until the budget
// holds. Callers hold c.mu.
func (c *Cache[K, V]) evict() {
	for c.bytes.Load() > c.max {
		last := c.lru.Back()
		if last == nil {
			return
		}
		e := last.Value.(*entry[K, V])
		c.lru.Remove(last)
		delete(c.entries, e.key)
		c.bytes.Add(-e.cost)
		c.resident.Add(-1)
		e.el = nil
		c.evictions.Add(1)
	}
}

// Stats is a snapshot of cache-wide accounting.
type Stats struct {
	// Hits and Misses count Get/Peek lookups; see Config.CountWaiterHits
	// for how coalesced waiters are charged.
	Hits, Misses int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
	// Invalidations counts entries dropped by Remove/RemoveIf (cache
	// coherence with the source, not budget pressure).
	Invalidations int64
	// Entries and Bytes describe current occupancy (complete resident
	// entries).
	Entries int
	Bytes   int64
}

// Stats returns a snapshot of the cache accounting. It reads only
// atomics — no lock is taken — so a metrics scraper may poll it at any
// frequency without contending with the serving path. The fields are
// individually consistent (each monotone counter is exact); the snapshot
// as a whole is not a single linearization point.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       int(c.resident.Load()),
		Bytes:         c.bytes.Load(),
	}
}

// Entry describes one resident entry.
type Entry[K comparable] struct {
	Key K
	// Hits counts lookups this entry served since insertion.
	Hits int64
	// Bytes is the entry's budgeted cost.
	Bytes int64
}

// Entries returns the resident entries most-recently-used first — the
// order in which eviction will NOT happen.
func (c *Cache[K, V]) Entries() []Entry[K] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry[K], 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		out = append(out, Entry[K]{Key: e.key, Hits: e.hits, Bytes: e.cost})
	}
	return out
}
