package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
)

func init() {
	register(Runner{ID: "fleet", Brief: "aggregate throughput and cache hit ratio vs concurrent same-spec sessions", Run: runFleet})
}

// FleetNs returns the sweep points: powers of two 1 → 64, capped at 16
// for Small (the -short / CI budget).
func FleetNs(scale Scale) []int {
	ns := []int{1, 2, 4, 8, 16, 32, 64}
	if scale == Small {
		return ns[:5]
	}
	return ns
}

// fleetEnv is one landed partition plus the spec every fleet session
// submits, file-aligned so the whole scan is shareable.
type fleetEnv struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	spec    reader.Spec
	files   int
}

// newFleetEnv lands the sweep's partition: batch-aligned files (256 rows
// per file, batch 256) so every session is fully shareable, sized so one
// serial scan is long enough to measure but cheap enough that the 64-way
// point stays CI-friendly.
func newFleetEnv() (*fleetEnv, error) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 100, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "fleet", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 256, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		return nil, err
	}
	files, err := catalog.AllFiles("fleet")
	if err != nil {
		return nil, err
	}
	return &fleetEnv{
		store:   store,
		catalog: catalog,
		files:   len(files),
		spec: reader.Spec{
			Table: "fleet", BatchSize: 256,
			SparseFeatures:      []string{"item_0"},
			DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
		},
	}, nil
}

// FleetPoint is one sweep measurement.
type FleetPoint struct {
	// Sessions is N, the concurrent same-spec session count.
	Sessions int
	// Batches is the total batch count streamed across all N sessions.
	Batches int64
	// Elapsed is the wall time for all N sessions to drain.
	Elapsed time.Duration
	// BatchesPerSec is the aggregate throughput: Batches / Elapsed.
	BatchesPerSec float64
	// HitRatio is hits / (hits + misses) over the service ScanCache for
	// this point's fresh service: (N−1)/N when sharing is perfect.
	HitRatio float64
	// RowsDecoded counts rows actually decoded across the fleet — flat
	// in N when single-flight coalescing works.
	RowsDecoded int64
}

// runPoint opens N concurrent ShareScans sessions on a fresh service
// (cold cache: every point measures "N sessions, one decode", never a
// pre-warmed cache) and drains them all.
func (env *fleetEnv) runPoint(n int) (FleetPoint, error) {
	svc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog})
	if err != nil {
		return FleetPoint{}, err
	}
	defer svc.Close()
	ctx := context.Background()

	sessions := make([]*dpp.Session, n)
	for i := range sessions {
		if sessions[i], err = svc.Open(ctx, dpp.Spec{Spec: env.spec, Buffer: 1, ShareScans: true}); err != nil {
			return FleetPoint{}, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	start := time.Now()
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *dpp.Session) {
			defer wg.Done()
			for {
				if _, err := sess.Next(ctx); err != nil {
					if err != io.EOF {
						errs[i] = err
					}
					return
				}
			}
		}(i, sess)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return FleetPoint{}, err
		}
	}

	pt := FleetPoint{Sessions: n, Elapsed: elapsed}
	for _, sess := range sessions {
		st := sess.Stats()
		pt.Batches += st.Reader.BatchesProduced
		pt.RowsDecoded += st.Reader.RowsDecoded
	}
	cs := svc.Stats().Cache
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		pt.HitRatio = float64(cs.Hits) / float64(lookups)
	}
	if elapsed > 0 {
		pt.BatchesPerSec = float64(pt.Batches) / elapsed.Seconds()
	}
	return pt, nil
}

// FleetSweep is the fleet-scale experiment (ROADMAP "Fleet-scale
// experiments"): N same-spec ShareScans sessions over one partition,
// N = 1 → 64, turning the PR-3 shared/unshared benchmark pair into a
// figure. Aggregate throughput must grow with N (the marginal session
// streams from the ScanCache instead of decoding) and the cache hit
// ratio must converge to (N−1)/N — exactly, because single-flight
// coalescing decodes each file once per sweep point no matter how the N
// sessions race.
//
// Every point uses a fresh service; the landed partition is shared
// across points (it is immutable).
func FleetSweep(ns []int) ([]FleetPoint, error) {
	env, err := newFleetEnv()
	if err != nil {
		return nil, err
	}
	points := make([]FleetPoint, 0, len(ns))
	for _, n := range ns {
		pt, err := env.runPoint(n)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// runFleet renders the sweep as a paper-style result table.
func runFleet(scale Scale) (*Result, error) {
	points, err := FleetSweep(FleetNs(scale))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fleet",
		Title: "fleet scaling: N same-spec ShareScans sessions over one partition",
	}
	for _, pt := range points {
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("N=%d", pt.Sessions),
			Values: []Cell{
				{Name: "agg_batches_s", Value: pt.BatchesPerSec, Unit: ""},
				{Name: "hit_ratio", Value: pt.HitRatio, Unit: ""},
				{Name: "rows_decoded", Value: float64(pt.RowsDecoded), Unit: ""},
			},
		})
	}
	res.Notes = append(res.Notes,
		"fresh service per point: every N measures a cold cache, so hit_ratio = (N-1)/N is the single-flight ideal",
		"rows_decoded flat in N = the fleet decodes each file once per point regardless of N")
	return res, nil
}
