// Package experiments implements one runner per table and figure of the
// paper's evaluation (§3 characterization, §6 evaluation, §7 extensions).
// Each runner returns a structured result with a paper-style textual
// rendering; cmd/recd-bench and the repository-root benchmark harness are
// thin wrappers over these functions. EXPERIMENTS.md records the
// paper-reported values next to what these runners measure.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one printable result row: a label and named columns.
type Row struct {
	Label  string
	Values []Cell
}

// Cell is one named numeric result.
type Cell struct {
	Name  string
	Value float64
	// Unit annotates rendering ("x", "%", "GB", "qps", "").
	Unit string
}

// Result is a rendered experiment outcome.
type Result struct {
	ID    string // "fig7", "table3", ...
	Title string
	Rows  []Row
	Notes []string
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		// Header from the first row's cell names.
		fmt.Fprintf(&b, "%-28s", "")
		for _, c := range r.Rows[0].Values {
			fmt.Fprintf(&b, "%16s", c.Name)
		}
		b.WriteByte('\n')
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-28s", row.Label)
			for _, c := range row.Values {
				fmt.Fprintf(&b, "%15.2f%-1s", c.Value, c.Unit)
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Cell lookup for tests.
func (r *Result) Value(label, cell string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Label != label {
			continue
		}
		for _, c := range row.Values {
			if c.Name == cell {
				return c.Value, true
			}
		}
	}
	return 0, false
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Brief string
	Run   func(scale Scale) (*Result, error)
}

// Scale sizes an experiment run. Benchmarks use Small for iteration speed;
// the CLI defaults to Full for better statistics.
type Scale int

const (
	// Small shrinks session counts for fast CI runs.
	Small Scale = iota
	// Full uses the RM specs as configured.
	Full
)

// registry in presentation order.
var registry []Runner

func register(r Runner) { registry = append(registry, r) }

// All returns every registered experiment in paper order.
func All() []Runner { return append([]Runner(nil), registry...) }

// ByID finds one experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
