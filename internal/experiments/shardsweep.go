package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/dppshard"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
)

func init() {
	register(Runner{ID: "shard-sweep", Brief: "one trainer over a sharded preprocessing fleet: throughput and decode partitioning vs shard count", Run: runShardSweep})
}

// ShardNs returns the sweep's shard counts, 1 → 8 doublings; Small (the
// -short / CI budget) stops at 4.
func ShardNs(scale Scale) []int {
	ns := []int{1, 2, 4, 8}
	if scale == Small {
		return ns[:3]
	}
	return ns
}

// shardSweepEnv is the landed partition the sweep scans, cut into many
// small batch-aligned files so rendezvous routing has material to spread
// across 8 shards.
type shardSweepEnv struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	spec    reader.Spec
	files   []string
}

func newShardSweepEnv() (*shardSweepEnv, error) {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 3, UserElem: 3, Item: 1, Dense: 2, SeqLen: 32, Seed: 12,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 160, MeanSamplesPerSession: 12, Seed: 13,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "shardsweep", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 128, Writer: dwrf.WriterOptions{StripeRows: 64}}); err != nil {
		return nil, err
	}
	files, err := catalog.AllFiles("shardsweep")
	if err != nil {
		return nil, err
	}
	return &shardSweepEnv{
		store:   store,
		catalog: catalog,
		files:   files,
		spec: reader.Spec{
			Table: "shardsweep", BatchSize: 128,
			SparseFeatures:      []string{"item_0"},
			DedupSparseFeatures: [][]string{{"user_seq_0", "user_seq_1", "user_seq_2"}, {"user_elem_0", "user_elem_1", "user_elem_2"}},
		},
	}, nil
}

// ShardPoint is one sweep measurement: one ShareScans fleet session
// drained over k fresh shards.
type ShardPoint struct {
	// Shards is k, the fleet size.
	Shards int
	// Batches is the merged stream's batch count (identical at every k).
	Batches int64
	// Elapsed is the wall time to drain the merged stream.
	Elapsed time.Duration
	// BatchesPerSec is Batches / Elapsed.
	BatchesPerSec float64
	// FilesDecoded sums per-shard cache misses — equal to the file count
	// when every file is decoded on exactly one shard.
	FilesDecoded int64
	// MaxShardFiles is the largest per-shard routed subset, the routing
	// balance figure (len(files)/k when perfectly even).
	MaxShardFiles int
	// Reroutes counts mid-stream shard deaths (zero on a healthy sweep).
	Reroutes int64
}

// runPoint starts k shard services on loopback listeners, opens one
// fleet session over them, and drains it cold — every point measures
// "k shards, each file decoded once, on its owning shard".
func (env *shardSweepEnv) runPoint(k int) (ShardPoint, error) {
	type proc struct {
		svc *dpp.Service
		srv *dppnet.Server
	}
	procs := make([]proc, 0, k)
	addrs := make([]string, 0, k)
	defer func() {
		for _, p := range procs {
			p.srv.Close()
			p.svc.Close()
		}
	}()
	for i := 0; i < k; i++ {
		svc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog})
		if err != nil {
			return ShardPoint{}, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return ShardPoint{}, err
		}
		srv := dppnet.NewServer(svc)
		go srv.Serve(ln)
		procs = append(procs, proc{svc: svc, srv: srv})
		addrs = append(addrs, ln.Addr().String())
	}

	fleet, err := dppshard.New(dppshard.Config{Addrs: addrs, Backend: env.store})
	if err != nil {
		return ShardPoint{}, err
	}
	ctx := context.Background()
	sess, err := fleet.Open(ctx, dpp.Spec{Spec: env.spec, Files: env.files, Buffer: 2, ShareScans: true})
	if err != nil {
		return ShardPoint{}, err
	}
	defer sess.Close()

	pt := ShardPoint{Shards: k}
	start := time.Now()
	for {
		_, err := sess.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return ShardPoint{}, err
		}
		pt.Batches++
	}
	pt.Elapsed = time.Since(start)
	if pt.Elapsed > 0 {
		pt.BatchesPerSec = float64(pt.Batches) / pt.Elapsed.Seconds()
	}
	stats, reroutes := sess.ShardStats()
	pt.Reroutes = reroutes
	for _, st := range stats {
		if st.StatsOK {
			pt.FilesDecoded += st.Stats.Cache.Misses
		}
		if st.Files > pt.MaxShardFiles {
			pt.MaxShardFiles = st.Files
		}
	}
	return pt, nil
}

// ShardSweep is the sharded-fleet scaling experiment: one trainer-shaped
// consumer over k preprocessing shards, k = 1 → 8. The merged stream is
// the same at every k (the determinism contract pins it byte-identical);
// what k buys is capacity — per-shard decode work and cache footprint
// shrink as 1/k because rendezvous routing decodes each file on exactly
// one shard, which the per-shard miss counts make visible.
func ShardSweep(ns []int) ([]ShardPoint, error) {
	env, err := newShardSweepEnv()
	if err != nil {
		return nil, err
	}
	points := make([]ShardPoint, 0, len(ns))
	for _, k := range ns {
		pt, err := env.runPoint(k)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// runShardSweep renders the sweep as a paper-style result table.
func runShardSweep(scale Scale) (*Result, error) {
	points, err := ShardSweep(ShardNs(scale))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "shard-sweep",
		Title: "sharded preprocessing fleet: one consumer over k rendezvous-routed shards",
	}
	for _, pt := range points {
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("k=%d", pt.Shards),
			Values: []Cell{
				{Name: "batches_s", Value: pt.BatchesPerSec, Unit: ""},
				{Name: "files_decoded", Value: float64(pt.FilesDecoded), Unit: ""},
				{Name: "max_shard_files", Value: float64(pt.MaxShardFiles), Unit: ""},
				{Name: "reroutes", Value: float64(pt.Reroutes), Unit: ""},
			},
		})
	}
	res.Notes = append(res.Notes,
		"files_decoded is flat in k (each file decoded on exactly its owning shard); max_shard_files falls ~1/k",
		"the merged stream is byte-identical at every k — shards add cache capacity, not new bytes")
	return res, nil
}
