package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trainer"
)

func init() {
	register(Runner{ID: "fig8", Brief: "trainer iteration latency breakdown per RM", Run: runFig8})
	register(Runner{ID: "fig9", Brief: "RM1 ablation ladder (CT, DE+JIS, DC, batch)", Run: runFig9})
	register(Runner{ID: "table2", Brief: "RM1 throughput / memory / compute efficiency", Run: runTable2})
	register(Runner{ID: "table4", Brief: "per-optimization impact summary for RM1", Run: runTable4})
}

// resimulate replays the cluster model for an already-run pipeline with a
// (possibly modified) cost report, batch, and O6 switch — the mechanism
// behind the Fig 9 ablation rows.
func resimulate(rm core.RMSpec, cost *trainer.CostReport, batch int, jis bool) (trainer.IterationReport, error) {
	schema := rm.Schema()
	model, err := trainer.New(rm.ModelConfig(schema))
	if err != nil {
		return trainer.IterationReport{}, err
	}
	return trainer.SimulateTraining([]*trainer.CostReport{cost}, batch, trainer.SimInput{
		EmbParamBytes:        rm.SimEmbParamBytes,
		DenseStateBytes:      model.DenseParamCount() * 8,
		UseJaggedIndexSelect: jis,
		ByteScale:            rm.SimByteScale,
		PoolFlopScale:        rm.SimPoolFlopScale,
		DenseFlopScale:       rm.SimDenseFlopScale,
		ParamScale:           rm.SimParamScale,
		ActMemScale:          rm.SimActMemScale,
	}, trainer.DefaultCluster(rm.Nodes))
}

// breakdownRow renders an iteration breakdown normalized to a baseline
// total (Fig 8's y-axis).
func breakdownRow(label string, bd, baseTotal time.Duration, parts func() (time.Duration, time.Duration, time.Duration, time.Duration)) Row {
	emb, gemm, a2a, other := parts()
	norm := func(d time.Duration) float64 { return float64(d) / float64(baseTotal) }
	return Row{Label: label, Values: []Cell{
		{Name: "emb", Value: norm(emb)},
		{Name: "gemm", Value: norm(gemm)},
		{Name: "a2a", Value: norm(a2a)},
		{Name: "other", Value: norm(other)},
		{Name: "total", Value: norm(bd)},
	}}
}

// runFig8 reproduces Figure 8: the per-RM iteration latency breakdown
// (EMB / GEMM / A2A / Other) with RecD at the same batch size as the
// baseline, normalized to the baseline iteration (paper: A2A roughly
// halves everywhere; RM1 additionally cuts GEMM ≈12%; RM1 total −44%,
// RM2 −23%).
func runFig8(scale Scale) (*Result, error) {
	res := &Result{
		ID:    "fig8",
		Title: "iteration latency breakdown, same batch as baseline (norm.)",
		Notes: []string{
			"paper: A2A halved across RMs; RM1 GEMM -12% from dedup transformers; totals -44%/-23%/-29%",
		},
	}
	for _, rm := range core.AllRMs() {
		rm = scaledRM(rm, scale)
		base, err := core.Run(core.PipelineConfig{RM: rm, Batch: rm.BaselineBatch})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", rm.Name, err)
		}
		recd, err := core.Run(core.PipelineConfig{
			RM: rm, ShardBySession: true, Clustered: true, Dedup: true,
			UseJaggedIndexSelect: true, Batch: rm.BaselineBatch,
		})
		if err != nil {
			return nil, fmt.Errorf("%s recd: %w", rm.Name, err)
		}
		bb, rb := base.Iteration.Breakdown, recd.Iteration.Breakdown
		res.Rows = append(res.Rows,
			breakdownRow(rm.Name+" baseline", bb.Total(), bb.Total(), func() (time.Duration, time.Duration, time.Duration, time.Duration) {
				return bb.EMB, bb.GEMM, bb.A2A, bb.Other
			}),
			breakdownRow(rm.Name+" recd", rb.Total(), bb.Total(), func() (time.Duration, time.Duration, time.Duration, time.Duration) {
				return rb.EMB, rb.GEMM, rb.A2A, rb.Other
			}),
		)
	}
	return res, nil
}

// runFig9 reproduces Figure 9, the RM1 ablation ladder (paper: CT alone
// 1.0×; +DE/JIS with 2× batch 1.34×; +DC 2.42×; +B6144 2.48×). The DC-off
// rung reruns the cluster model with the baseline's (non-deduplicated)
// pooling flops substituted into the RecD cost report.
func runFig9(scale Scale) (*Result, error) {
	rm := scaledRM(core.RM1(), scale)
	b1 := rm.BaselineBatch
	b2 := rm.BaselineBatch * 2
	b3 := rm.BaselineBatch * 3

	base, err := core.Run(core.PipelineConfig{RM: rm, Batch: b1})
	if err != nil {
		return nil, err
	}
	clusterOnly, err := core.Run(core.PipelineConfig{RM: rm, Clustered: true, Batch: b1})
	if err != nil {
		return nil, err
	}
	recd, err := core.Run(core.PipelineConfig{
		RM: rm, ShardBySession: true, Clustered: true, Dedup: true,
		UseJaggedIndexSelect: true, Batch: b2,
	})
	if err != nil {
		return nil, err
	}

	// O5+O6 without O7: deduplicated lookups/SDD but full-batch pooling
	// compute — substitute the baseline's per-sample pool flops.
	dcOff := *recd.Cost
	dcOff.PoolFLOPs = base.Cost.PoolFLOPs * float64(recd.Cost.Batch) / float64(base.Cost.Batch)
	noDC, err := resimulate(rm, &dcOff, b2, true)
	if err != nil {
		return nil, err
	}
	// Full suite at 2× batch (O7 on).
	withDC, err := resimulate(rm, recd.Cost, b2, true)
	if err != nil {
		return nil, err
	}
	// Full suite at 3× batch.
	bigBatch, err := resimulate(rm, recd.Cost, b3, true)
	if err != nil {
		return nil, err
	}

	norm := base.Iteration.QPS
	row := func(label string, qps float64) Row {
		return Row{Label: label, Values: []Cell{{Name: "qps", Value: qps / norm, Unit: "x"}}}
	}
	return &Result{
		ID:    "fig9",
		Title: "RM1 ablation: normalized trainer throughput",
		Rows: []Row{
			row(fmt.Sprintf("baseline B%d", b1), base.Iteration.QPS),
			row("+CT (clustered table)", clusterOnly.Iteration.QPS),
			row(fmt.Sprintf("+DE+JIS B%d", b2), noDC.QPS),
			row(fmt.Sprintf("+DC B%d", b2), withDC.QPS),
			row(fmt.Sprintf("+DC B%d", b3), bigBatch.QPS),
		},
		Notes: []string{"paper: 1.0 / 1.0 / 1.34 / 2.42 / 2.48"},
	}, nil
}

// runTable2 reproduces Table 2: RM1 normalized QPS, max/avg memory
// utilization, and normalized compute efficiency across RecD configs
// (paper: 1.00/99.9/72.8/1.00 → 1.89/27.8/22.2/1.73 → +D256 1.55/.../1.92
// → +B6144 2.26/91.8/51.6/2.12).
func runTable2(scale Scale) (*Result, error) {
	rm := scaledRM(core.RM1(), scale)

	base, err := core.Run(core.PipelineConfig{RM: rm, Batch: rm.BaselineBatch})
	if err != nil {
		return nil, err
	}
	recd, err := core.Run(core.PipelineConfig{
		RM: rm, ShardBySession: true, Clustered: true, Dedup: true,
		UseJaggedIndexSelect: true, Batch: rm.BaselineBatch,
	})
	if err != nil {
		return nil, err
	}

	// RecD + doubled embedding dimension (the paper's 128→256).
	rmBig := rm
	rmBig.EmbDim *= 2
	rmBig.SimEmbParamBytes *= 2
	recdBig, err := core.Run(core.PipelineConfig{
		RM: rmBig, ShardBySession: true, Clustered: true, Dedup: true,
		UseJaggedIndexSelect: true, Batch: rm.BaselineBatch,
	})
	if err != nil {
		return nil, err
	}

	// RecD + 3× batch (the paper's 2048→6144).
	recdBatch, err := resimulate(rm, recd.Cost, rm.BaselineBatch*3, true)
	if err != nil {
		return nil, err
	}

	row := func(label string, rep trainer.IterationReport) Row {
		return Row{Label: label, Values: []Cell{
			{Name: "norm_qps", Value: rep.QPS / base.Iteration.QPS, Unit: "x"},
			{Name: "max_mem", Value: rep.PeakMemUtilization * 100, Unit: "%"},
			{Name: "avg_mem", Value: rep.AvgMemUtilization * 100, Unit: "%"},
			{Name: "comp_eff", Value: rep.AchievedFLOPs / base.Iteration.AchievedFLOPs, Unit: "x"},
		}}
	}
	return &Result{
		ID:    "table2",
		Title: "RM1 throughput, memory, and compute efficiency",
		Rows: []Row{
			row("baseline", base.Iteration),
			row("recd", recd.Iteration),
			row("recd + 2x emb dim", recdBig.Iteration),
			row("recd + 3x batch", recdBatch),
		},
		Notes: []string{
			"paper: 1.00/99.9/72.8/1.00; 1.89/27.8/22.2/1.73; 1.55/40.9/31.2/1.92; 2.26/91.8/51.6/2.12",
		},
	}, nil
}

// runTable4 reproduces Table 4, the per-optimization impact summary for
// RM1, by switching optimizations on cumulatively.
func runTable4(scale Scale) (*Result, error) {
	rm := scaledRM(core.RM1(), scale)

	base, err := core.Run(core.PipelineConfig{RM: rm, Batch: rm.BaselineBatch})
	if err != nil {
		return nil, err
	}
	o1, err := core.Run(core.PipelineConfig{RM: rm, ShardBySession: true, Batch: rm.BaselineBatch})
	if err != nil {
		return nil, err
	}
	o2, err := core.Run(core.PipelineConfig{RM: rm, ShardBySession: true, Clustered: true, Batch: rm.BaselineBatch})
	if err != nil {
		return nil, err
	}
	full, err := core.Run(core.PipelineConfig{
		RM: rm, ShardBySession: true, Clustered: true, Dedup: true,
		UseJaggedIndexSelect: true, Batch: rm.RecDBatch,
	})
	if err != nil {
		return nil, err
	}

	return &Result{
		ID:    "table4",
		Title: "per-optimization impact (RM1, cumulative)",
		Rows: []Row{
			{Label: "O1 scribe compression", Values: []Cell{
				{Name: "value", Value: o1.Scribe.CompressionRatio() / base.Scribe.CompressionRatio(), Unit: "x"},
			}},
			{Label: "O2 table compression", Values: []Cell{
				{Name: "value", Value: o2.Partition.CompressionRatio() / base.Partition.CompressionRatio(), Unit: "x"},
			}},
			{Label: "O2 reader fill bytes", Values: []Cell{
				{Name: "value", Value: float64(base.Reader.ReadBytes) / float64(o2.Reader.ReadBytes), Unit: "x"},
			}},
			{Label: "O3 convert values (cost)", Values: []Cell{
				{Name: "value", Value: float64(full.Reader.ConvertValues) / float64(o2.Reader.ConvertValues), Unit: "x"},
			}},
			{Label: "O4 egress bytes saved", Values: []Cell{
				{Name: "value", Value: float64(o2.Reader.SentBytes) / float64(o2.Reader.RowsDecoded) /
					(float64(full.Reader.SentBytes) / float64(full.Reader.RowsDecoded)), Unit: "x"},
			}},
			{Label: "O5-O7 trainer throughput", Values: []Cell{
				{Name: "value", Value: full.Iteration.QPS / base.Iteration.QPS, Unit: "x"},
			}},
		},
		Notes: []string{
			"paper: O1 1.50x scribe; O2 3.71x storage + 50% fill; O3 +21% convert; O4 -13% process; O5-O7 2.48x trainer",
		},
	}, nil
}
