package experiments

import (
	"repro/internal/datagen"
	"repro/internal/etl"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

func init() {
	register(Runner{ID: "accuracy", Brief: "clustering's effect on model accuracy (§6.2)", Run: runAccuracy})
}

// accuracySchema is a small schema with learnable structure: the item
// feature carries the label signal, the user features are user-specific
// IDs hashed into shared embedding tables (so over-updating them bleeds
// into rows shared with other users — the paper's tail-value overfitting
// mechanism).
func accuracySchema() *datagen.Schema {
	specs := []datagen.FeatureSpec{
		{Key: "user_hist", Class: datagen.UserFeature, ChangeProb: 0.05,
			MeanLen: 16, MaxLen: 32, Update: datagen.ShiftAppend, Cardinality: 1 << 34},
		{Key: "user_prefs", Class: datagen.UserFeature, ChangeProb: 0.05,
			MeanLen: 8, MaxLen: 16, Update: datagen.Resample, Cardinality: 1 << 34},
		{Key: "item_id", Class: datagen.ItemFeature, ChangeProb: 0.95,
			MeanLen: 1, MaxLen: 2, Update: datagen.Resample, Cardinality: 1 << 8},
	}
	schema, err := datagen.NewSchema(specs, 2)
	if err != nil {
		panic(err) // static specs are valid
	}
	return schema
}

func accuracyBatches(schema *datagen.Schema, samples []datagen.Sample, batch int) []*reader.Batch {
	keys := schema.SparseKeys()
	var out []*reader.Batch
	for start := 0; start+batch <= len(samples); start += batch {
		b := &reader.Batch{Size: batch}
		b.Dense = tensor.NewDense(batch, schema.Dense)
		b.Labels = make([]float32, batch)
		tensors := make([]tensor.Jagged, len(keys))
		for fi := range keys {
			lists := make([][]tensor.Value, batch)
			for i := 0; i < batch; i++ {
				s := samples[start+i]
				lists[i] = s.Sparse[fi]
				if fi == 0 {
					copy(b.Dense.Row(i), s.Dense)
					b.Labels[i] = float32(s.Label)
				}
				b.OriginalSparseValues += len(s.Sparse[fi])
			}
			tensors[fi] = tensor.NewJagged(lists)
		}
		kjt, err := tensor.NewKJT(keys, tensors)
		if err != nil {
			panic(err)
		}
		b.KJT = kjt
		out = append(out, b)
	}
	return out
}

func accuracyModel(schema *datagen.Schema, seed int64) (*trainer.Model, error) {
	return trainer.New(trainer.Config{
		EmbDim: 8, DenseIn: schema.Dense,
		BottomHidden: []int{8}, TopHidden: []int{16},
		Features: []trainer.FeatureConfig{
			{Key: "user_hist", Pool: trainer.SumPool, TableRows: 1 << 7},
			{Key: "user_prefs", Pool: trainer.MeanPool, TableRows: 1 << 7},
			{Key: "item_id", Pool: trainer.SumPool, TableRows: 1 << 12},
		},
		LR:   0.3,
		Seed: seed,
	})
}

// runAccuracy reproduces the §6.2 "Impacts to Accuracy" observation:
// without clustering, a session's duplicate feature values are spread
// across batches, so the model applies many sparse updates to the same
// values and overfits them (hurting tail generalization); clustering
// groups them into one batch and one aggregated update. Both
// configurations train on the same sample multiset with learnable labels
// and are evaluated on held-out sessions. Results average several seeds.
func runAccuracy(scale Scale) (*Result, error) {
	sessions, seeds, epochs := 150, 5, 6
	if scale == Small {
		sessions, seeds = 80, 2
	}
	schema := accuracySchema()
	batch := 64

	var interLoss, clustLoss, interAUC, clustAUC float64
	for seed := int64(0); seed < int64(seeds); seed++ {
		gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
			Sessions:              sessions,
			MeanSamplesPerSession: 12,
			CTR:                   0.2,
			LabelSignal:           2.0,
			Seed:                  100 + seed,
		})
		train := gen.GeneratePartition()

		evalGen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
			Sessions:              sessions / 2,
			MeanSamplesPerSession: 12,
			CTR:                   0.2,
			LabelSignal:           2.0,
			Seed:                  900 + seed,
		})
		evalBatches := accuracyBatches(schema, evalGen.GeneratePartition(), batch)

		for _, clustered := range []bool{false, true} {
			samples := train
			if clustered {
				samples = etl.ClusterBySession(train)
			}
			model, err := accuracyModel(schema, 7+seed)
			if err != nil {
				return nil, err
			}
			batches := accuracyBatches(schema, samples, batch)
			for e := 0; e < epochs; e++ {
				for _, b := range batches {
					if _, _, err := model.TrainStep(b, trainer.Baseline); err != nil {
						return nil, err
					}
				}
			}
			m, err := model.Evaluate(evalBatches, trainer.Baseline)
			if err != nil {
				return nil, err
			}
			if clustered {
				clustLoss += m.LogLoss
				clustAUC += m.AUC
			} else {
				interLoss += m.LogLoss
				interAUC += m.AUC
			}
		}
	}
	n := float64(seeds)
	return &Result{
		ID:    "accuracy",
		Title: "held-out accuracy: interleaved vs clustered training batches",
		Rows: []Row{
			{Label: "interleaved (baseline)", Values: []Cell{
				{Name: "logloss", Value: interLoss / n},
				{Name: "auc", Value: interAUC / n},
			}},
			{Label: "clustered (O2)", Values: []Cell{
				{Name: "logloss", Value: clustLoss / n},
				{Name: "auc", Value: clustAUC / n},
			}},
		},
		Notes: []string{
			"paper §6.2: clustering improves accuracy by avoiding repeated sparse updates on duplicate values",
			"IKJT vs KJT execution is bit-identical and does not appear here; only batch composition matters",
		},
	}, nil
}
