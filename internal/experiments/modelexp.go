package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/etl"
	"repro/internal/tensor"
)

func init() {
	register(Runner{ID: "dedupefactor", Brief: "analytic DedupeFactor model vs measured (§4.2)", Run: runDedupeFactor})
	register(Runner{ID: "partial", Brief: "partial IKJT capture beyond exact matches (§7)", Run: runPartial})
	register(Runner{ID: "downsample", Brief: "per-sample vs per-session downsampling S (§7)", Run: runDownsample})
}

// oneFeatureSchema builds a schema with one user feature of the given
// change probability and mean length.
func oneFeatureSchema(changeProb float64, meanLen int, update datagen.UpdateKind) *datagen.Schema {
	schema, err := datagen.NewSchema([]datagen.FeatureSpec{{
		Key:         "f",
		Class:       datagen.UserFeature,
		ChangeProb:  changeProb,
		MeanLen:     meanLen,
		MaxLen:      meanLen * 2,
		Update:      update,
		Cardinality: 1 << 30,
	}}, 0)
	if err != nil {
		panic(err) // static specs are valid
	}
	return schema
}

// measureFactor deduplicates clustered batches of the feature and returns
// the realized value dedup factor.
func measureFactor(schema *datagen.Schema, samples []datagen.Sample, batch int) (float64, error) {
	var orig, dedup float64
	for start := 0; start+batch <= len(samples); start += batch {
		rows := make([][]tensor.Value, batch)
		for i := 0; i < batch; i++ {
			rows[i] = samples[start+i].Sparse[0]
		}
		j := tensor.NewJagged(rows)
		ik, err := tensor.DedupJagged([]string{"f"}, []tensor.Jagged{j})
		if err != nil {
			return 0, err
		}
		orig += float64(j.NumValues())
		dd, _ := ik.Deduped("f")
		dedup += float64(dd.NumValues())
	}
	if dedup == 0 {
		return 1, nil
	}
	return orig / dedup, nil
}

// runDedupeFactor sweeps d(f) and S, comparing the paper's analytic
// DedupeFactor model against the measured factor on clustered batches.
func runDedupeFactor(scale Scale) (*Result, error) {
	sessions := 400
	batch := 512
	if scale == Small {
		sessions = 120
		batch = 256
	}
	res := &Result{
		ID:    "dedupefactor",
		Title: "analytic vs measured DedupeFactor",
		Notes: []string{"analytic model: DedupeFactor = l·B / DedupeLen (paper §4.2)"},
	}
	for _, cfg := range []struct {
		d float64
		s float64
	}{
		{0.95, 16.5}, {0.80, 16.5}, {0.50, 16.5}, {0.95, 4}, {0.80, 4},
	} {
		schema := oneFeatureSchema(1-cfg.d, 32, datagen.Resample)
		gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
			Sessions:              sessions,
			MeanSamplesPerSession: cfg.s,
			Seed:                  int64(cfg.d*100) + int64(cfg.s),
		})
		samples := etl.ClusterBySession(gen.GeneratePartition())
		sMeasured := datagen.MeasuredS(samples)

		analytic := tensor.FeatureModel{S: sMeasured, B: float64(batch), D: cfg.d, L: 32}.DedupeFactor()
		measured, err := measureFactor(schema, samples, batch)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("d=%.2f S=%.1f", cfg.d, cfg.s),
			Values: []Cell{
				{Name: "analytic", Value: analytic, Unit: "x"},
				{Name: "measured", Value: measured, Unit: "x"},
				{Name: "err", Value: (measured - analytic) / analytic * 100, Unit: "%"},
			},
		})
	}
	return res, nil
}

// runPartial reproduces §7 "Supporting Partial IKJTs": for shift-append
// sequence features, partial (shift) deduplication captures value reuse
// that exact matching misses (paper: exact captures 81.6% of a 93.9%
// ceiling; partials add 7.8%).
func runPartial(scale Scale) (*Result, error) {
	sessions := 300
	batch := 256
	if scale == Small {
		sessions = 100
		batch = 128
	}
	// A shift-append feature that changes often: exact dedup suffers,
	// partial dedup captures the shifted windows.
	schema := oneFeatureSchema(0.5, 48, datagen.ShiftAppend)
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              sessions,
		MeanSamplesPerSession: 12,
		Seed:                  31,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())

	var exactOrig, exactDedup, partialDedup float64
	for start := 0; start+batch <= len(samples); start += batch {
		rows := make([][]tensor.Value, batch)
		for i := 0; i < batch; i++ {
			rows[i] = samples[start+i].Sparse[0]
		}
		j := tensor.NewJagged(rows)
		ik, err := tensor.DedupJagged([]string{"f"}, []tensor.Jagged{j})
		if err != nil {
			return nil, err
		}
		dd, _ := ik.Deduped("f")
		p := tensor.PartialDedup("f", j)
		exactOrig += float64(j.NumValues())
		exactDedup += float64(dd.NumValues())
		partialDedup += float64(len(p.Values))
	}

	exactFactor := exactOrig / exactDedup
	partialFactor := exactOrig / partialDedup
	return &Result{
		ID:    "partial",
		Title: "exact vs partial IKJT dedup on a shift-append feature",
		Rows: []Row{
			{Label: "exact IKJT", Values: []Cell{{Name: "factor", Value: exactFactor, Unit: "x"}}},
			{Label: "partial IKJT", Values: []Cell{{Name: "factor", Value: partialFactor, Unit: "x"}}},
			{Label: "extra capture", Values: []Cell{{Name: "factor",
				Value: (1 - partialDedup/exactDedup) * 100, Unit: "%"}}},
		},
		Notes: []string{"paper: exact captures 81.6% of IDs; partial shifts add 7.8%"},
	}, nil
}

// runDownsample reproduces the §7 "Boosting Dedupe Factors" argument:
// per-session downsampling keeps S (and thus DedupeFactor) high at the
// same retained data volume, while per-sample downsampling collapses S.
func runDownsample(scale Scale) (*Result, error) {
	sessions := 600
	if scale == Small {
		sessions = 200
	}
	schema := oneFeatureSchema(0.05, 32, datagen.Resample)
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              sessions,
		MeanSamplesPerSession: 16.5,
		Seed:                  17,
	})
	full := gen.GeneratePartition()
	rate := 0.5

	perSample := etl.Downsample(full, rate, etl.PerSample, 1)
	perSession := etl.Downsample(full, rate, etl.PerSession, 1)

	batch := 256
	factorOf := func(samples []datagen.Sample) (float64, error) {
		return measureFactor(schema, etl.ClusterBySession(samples), batch)
	}
	fFull, err := factorOf(full)
	if err != nil {
		return nil, err
	}
	fSample, err := factorOf(perSample)
	if err != nil {
		return nil, err
	}
	fSession, err := factorOf(perSession)
	if err != nil {
		return nil, err
	}

	row := func(label string, samples []datagen.Sample, factor float64) Row {
		return Row{Label: label, Values: []Cell{
			{Name: "kept", Value: float64(len(samples))},
			{Name: "S", Value: datagen.MeasuredS(samples)},
			{Name: "dedup_f", Value: factor, Unit: "x"},
		}}
	}
	return &Result{
		ID:    "downsample",
		Title: "downsampling policy vs samples-per-session and dedup factor",
		Rows: []Row{
			row("full partition", full, fFull),
			row("per-sample 50%", perSample, fSample),
			row("per-session 50%", perSession, fSession),
		},
		Notes: []string{"per-session keeps S (and DedupeFactor) at full-partition levels with half the data"},
	}, nil
}
