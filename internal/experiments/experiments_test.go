package experiments

import (
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := r.Run(Small)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id %q want %q", res.ID, id)
	}
	return res
}

func mustValue(t *testing.T, res *Result, label, cell string) float64 {
	t.Helper()
	v, ok := res.Value(label, cell)
	if !ok {
		t.Fatalf("%s: missing %s/%s in\n%s", res.ID, label, cell, res)
	}
	return v
}

func TestRegistry(t *testing.T) {
	want := []string{"fig3", "fig4", "fig7", "scribe", "singlenode",
		"fig8", "fig9", "table2", "table4", "table3", "fig10",
		"dedupefactor", "partial", "downsample", "accuracy"}
	got := map[string]bool{}
	for _, r := range All() {
		got[r.ID] = true
		if r.Brief == "" || r.Run == nil {
			t.Errorf("%s: incomplete runner", r.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should miss unknown ids")
	}
}

// TestFig3Shape: partitions are session-rich, interleaved batches are
// session-poor, clustering restores locality.
func TestFig3Shape(t *testing.T) {
	res := runExp(t, "fig3")
	partition := mustValue(t, res, "partition", "mean_s")
	batch := mustValue(t, res, "batch4096 (interleaved)", "mean_s")
	clustered := mustValue(t, res, "batch4096 (clustered)", "mean_s")
	if partition < 8 {
		t.Fatalf("partition S %.2f too low (paper 16.5)", partition)
	}
	if batch > partition/2 {
		t.Fatalf("interleaved batch S %.2f should collapse below partition %.2f", batch, partition)
	}
	if clustered < batch*2 {
		t.Fatalf("clustered batch S %.2f should far exceed interleaved %.2f", clustered, batch)
	}
}

// TestFig4Shape: most feature values are duplicates; partial ≥ exact;
// user features ≫ item features.
func TestFig4Shape(t *testing.T) {
	res := runExp(t, "fig4")
	exact := mustValue(t, res, "all features (mean)", "exact")
	partial := mustValue(t, res, "all features (mean)", "partial")
	user := mustValue(t, res, "user features (mean)", "exact")
	item := mustValue(t, res, "item features (mean)", "exact")
	if exact < 50 || exact > 100 {
		t.Fatalf("exact dup %.1f%% implausible (paper 80.0%%)", exact)
	}
	if partial < exact {
		t.Fatalf("partial %.1f%% below exact %.1f%%", partial, exact)
	}
	if user <= item+20 {
		t.Fatalf("user dup %.1f%% should far exceed item dup %.1f%%", user, item)
	}
}

// TestFig7Shape: every RM gains on all three axes; RM1 gains most on the
// trainer; RM3's storage gain trails RM1's.
func TestFig7Shape(t *testing.T) {
	res := runExp(t, "fig7")
	for _, rm := range []string{"RM1", "RM2", "RM3"} {
		for _, axis := range []string{"trainer", "reader", "storage"} {
			v := mustValue(t, res, rm, axis)
			if v <= 1 {
				t.Errorf("%s %s gain %.2fx not above 1", rm, axis, v)
			}
		}
	}
	rm1 := mustValue(t, res, "RM1", "trainer")
	rm2 := mustValue(t, res, "RM2", "trainer")
	if rm1 <= rm2 {
		t.Errorf("RM1 trainer gain %.2f should exceed RM2 %.2f (sequence features)", rm1, rm2)
	}
	s1 := mustValue(t, res, "RM1", "storage")
	s3 := mustValue(t, res, "RM3", "storage")
	if s1 <= s3 {
		t.Errorf("RM1 storage gain %.2f should exceed RM3 %.2f (higher S)", s1, s3)
	}
}

func TestScribeShape(t *testing.T) {
	res := runExp(t, "scribe")
	imp := mustValue(t, res, "improvement", "ratio")
	if imp <= 1.05 {
		t.Fatalf("session sharding improvement %.2fx too small (paper 1.5x)", imp)
	}
}

func TestSingleNodeShape(t *testing.T) {
	res := runExp(t, "singlenode")
	single := mustValue(t, res, "single-node (8 GPUs)", "speedup")
	if single <= 1 {
		t.Fatalf("single-node speedup %.2fx should exceed 1 (paper 2.18x)", single)
	}
	sA2A := mustValue(t, res, "single-node (8 GPUs)", "a2a_ms")
	mA2A := mustValue(t, res, "multi-node (48 GPUs)", "a2a_ms")
	if sA2A >= mA2A {
		t.Fatalf("single-node baseline A2A %.3fms should be below multi-node %.3fms", sA2A, mA2A)
	}
}

// TestFig8Shape: RecD cuts exposed A2A roughly in half and cuts the
// total; RM1 (attention) also cuts GEMM.
func TestFig8Shape(t *testing.T) {
	res := runExp(t, "fig8")
	for _, rm := range []string{"RM1", "RM2", "RM3"} {
		baseTotal := mustValue(t, res, rm+" baseline", "total")
		recdTotal := mustValue(t, res, rm+" recd", "total")
		if recdTotal >= baseTotal {
			t.Errorf("%s: recd total %.2f not below baseline %.2f", rm, recdTotal, baseTotal)
		}
		baseA2A := mustValue(t, res, rm+" baseline", "a2a")
		recdA2A := mustValue(t, res, rm+" recd", "a2a")
		if recdA2A >= baseA2A {
			t.Errorf("%s: recd A2A %.2f not below baseline %.2f", rm, recdA2A, baseA2A)
		}
	}
	baseGEMM := mustValue(t, res, "RM1 baseline", "gemm")
	recdGEMM := mustValue(t, res, "RM1 recd", "gemm")
	if recdGEMM >= baseGEMM {
		t.Errorf("RM1 GEMM should shrink with dedup transformers: %.2f vs %.2f", recdGEMM, baseGEMM)
	}
}

// TestFig9Shape: the ablation ladder is monotone: baseline ≈ CT <
// DE+JIS < +DC ≤ +bigger batch.
func TestFig9Shape(t *testing.T) {
	res := runExp(t, "fig9")
	var ladder []float64
	for _, row := range res.Rows {
		ladder = append(ladder, row.Values[0].Value)
	}
	if len(ladder) != 5 {
		t.Fatalf("ladder rows = %d", len(ladder))
	}
	// CT alone provides no training gain (paper: "clustered tables
	// provide no training throughput benefit").
	if ladder[1] > ladder[0]*1.15 || ladder[1] < ladder[0]*0.85 {
		t.Errorf("CT-only gain %.2f should be ≈1.0", ladder[1])
	}
	if ladder[2] <= ladder[1] {
		t.Errorf("DE+JIS %.2f should beat CT %.2f", ladder[2], ladder[1])
	}
	if ladder[3] <= ladder[2] {
		t.Errorf("+DC %.2f should beat DE+JIS %.2f", ladder[3], ladder[2])
	}
	if ladder[4] < ladder[3] {
		t.Errorf("+batch %.2f should not regress +DC %.2f", ladder[4], ladder[3])
	}
}

// TestTable2Shape: RecD slashes memory utilization at the same batch and
// raises compute efficiency; bigger batches buy throughput back.
func TestTable2Shape(t *testing.T) {
	res := runExp(t, "table2")
	baseMem := mustValue(t, res, "baseline", "max_mem")
	recdMem := mustValue(t, res, "recd", "max_mem")
	if recdMem >= baseMem {
		t.Fatalf("recd max mem %.1f%% not below baseline %.1f%%", recdMem, baseMem)
	}
	recdQPS := mustValue(t, res, "recd", "norm_qps")
	if recdQPS <= 1 {
		t.Fatalf("recd norm QPS %.2f not above 1", recdQPS)
	}
	batchQPS := mustValue(t, res, "recd + 3x batch", "norm_qps")
	if batchQPS <= recdQPS {
		t.Fatalf("3x batch QPS %.2f should beat same-batch recd %.2f", batchQPS, recdQPS)
	}
	embMem := mustValue(t, res, "recd + 2x emb dim", "max_mem")
	if embMem <= recdMem {
		t.Fatalf("2x emb dim mem %.1f%% should exceed recd %.1f%%", embMem, recdMem)
	}
	eff := mustValue(t, res, "recd", "comp_eff")
	if eff <= 1 {
		t.Fatalf("recd compute efficiency %.2f not above 1 (paper 1.73)", eff)
	}
}

// TestTable3Shape: clustering cuts read bytes at equal send bytes; IKJTs
// cut send bytes at equal read bytes.
func TestTable3Shape(t *testing.T) {
	res := runExp(t, "table3")
	baseRead := mustValue(t, res, "baseline", "read")
	baseSend := mustValue(t, res, "baseline", "send")
	clustRead := mustValue(t, res, "with cluster (O2)", "read")
	clustSend := mustValue(t, res, "with cluster (O2)", "send")
	ikjtRead := mustValue(t, res, "with IKJT (O3/O4)", "read")
	ikjtSend := mustValue(t, res, "with IKJT (O3/O4)", "send")

	if clustRead >= baseRead*0.9 {
		t.Fatalf("clustering should cut read bytes: %.1f vs %.1f", clustRead, baseRead)
	}
	if rel := clustSend / baseSend; rel < 0.98 || rel > 1.02 {
		t.Fatalf("clustering should not change send bytes: %.1f vs %.1f", clustSend, baseSend)
	}
	if rel := ikjtRead / clustRead; rel < 0.98 || rel > 1.02 {
		t.Fatalf("IKJTs should not change read bytes: %.1f vs %.1f", ikjtRead, clustRead)
	}
	if ikjtSend >= clustSend*0.95 {
		t.Fatalf("IKJTs should cut send bytes: %.1f vs %.1f", ikjtSend, clustSend)
	}
}

// TestFig10Shape: RecD cuts fill time markedly; total reader CPU shrinks.
func TestFig10Shape(t *testing.T) {
	res := runExp(t, "fig10")
	for _, rm := range []string{"RM1", "RM2", "RM3"} {
		baseFill := mustValue(t, res, rm+" baseline", "fill")
		recdFill := mustValue(t, res, rm+" recd", "fill")
		if recdFill >= baseFill*0.9 {
			t.Errorf("%s: fill time should drop markedly: %.2f vs %.2f", rm, recdFill, baseFill)
		}
		baseTotal := mustValue(t, res, rm+" baseline", "total")
		recdTotal := mustValue(t, res, rm+" recd", "total")
		if recdTotal >= baseTotal {
			t.Errorf("%s: total reader CPU should shrink: %.2f vs %.2f", rm, recdTotal, baseTotal)
		}
	}
}

// TestDedupeFactorModel: the analytic model tracks the measured factor
// within a loose band across the sweep.
func TestDedupeFactorModel(t *testing.T) {
	res := runExp(t, "dedupefactor")
	for _, row := range res.Rows {
		var analytic, measured float64
		for _, c := range row.Values {
			switch c.Name {
			case "analytic":
				analytic = c.Value
			case "measured":
				measured = c.Value
			}
		}
		if analytic < 1 || measured < 1 {
			t.Errorf("%s: factors below 1: %v %v", row.Label, analytic, measured)
		}
		// The model assumes only adjacent-row duplication; the measured
		// factor can exceed it (whole-batch matching) but should stay
		// within a small multiple.
		if measured < analytic*0.5 || measured > analytic*3 {
			t.Errorf("%s: measured %.2f far from analytic %.2f", row.Label, measured, analytic)
		}
	}
}

// TestPartialShape: partial dedup strictly beats exact dedup on
// shift-append features.
func TestPartialShape(t *testing.T) {
	res := runExp(t, "partial")
	exact := mustValue(t, res, "exact IKJT", "factor")
	partial := mustValue(t, res, "partial IKJT", "factor")
	if partial <= exact {
		t.Fatalf("partial factor %.2f should beat exact %.2f", partial, exact)
	}
}

// TestDownsampleShape: per-session downsampling keeps S near the full
// partition; per-sample halves it; dedup factors follow.
func TestDownsampleShape(t *testing.T) {
	res := runExp(t, "downsample")
	fullS := mustValue(t, res, "full partition", "S")
	sampleS := mustValue(t, res, "per-sample 50%", "S")
	sessionS := mustValue(t, res, "per-session 50%", "S")
	if sampleS > fullS*0.7 {
		t.Fatalf("per-sample S %.2f should collapse from %.2f", sampleS, fullS)
	}
	if sessionS < fullS*0.8 {
		t.Fatalf("per-session S %.2f should stay near %.2f", sessionS, fullS)
	}
	fSample := mustValue(t, res, "per-sample 50%", "dedup_f")
	fSession := mustValue(t, res, "per-session 50%", "dedup_f")
	if fSession <= fSample {
		t.Fatalf("per-session dedup factor %.2f should beat per-sample %.2f", fSession, fSample)
	}
}

// TestAccuracyShape: clustering must not hurt held-out accuracy, and in
// this synthetic setup it mildly helps (the paper's §6.2 observation; the
// production effect is larger because tail-value populations are much
// bigger there).
func TestAccuracyShape(t *testing.T) {
	res := runExp(t, "accuracy")
	interLL := mustValue(t, res, "interleaved (baseline)", "logloss")
	clustLL := mustValue(t, res, "clustered (O2)", "logloss")
	interAUC := mustValue(t, res, "interleaved (baseline)", "auc")
	clustAUC := mustValue(t, res, "clustered (O2)", "auc")
	if clustLL > interLL*1.02 {
		t.Fatalf("clustering hurt held-out logloss: %.4f vs %.4f", clustLL, interLL)
	}
	if clustAUC < interAUC-0.02 {
		t.Fatalf("clustering hurt held-out AUC: %.4f vs %.4f", clustAUC, interAUC)
	}
	if interAUC < 0.45 || interAUC > 1 {
		t.Fatalf("implausible AUC %.4f", interAUC)
	}
}

func TestResultString(t *testing.T) {
	res := &Result{
		ID: "x", Title: "demo",
		Rows:  []Row{{Label: "r", Values: []Cell{{Name: "v", Value: 1.5, Unit: "x"}}}},
		Notes: []string{"hello"},
	}
	s := res.String()
	for _, want := range []string{"demo", "r", "1.50", "hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	if _, ok := res.Value("r", "nope"); ok {
		t.Error("Value should miss unknown cell")
	}
	if _, ok := res.Value("nope", "v"); ok {
		t.Error("Value should miss unknown label")
	}
}
