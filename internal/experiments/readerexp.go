package experiments

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(Runner{ID: "table3", Brief: "reader ingest/egress bytes for a fixed sample count", Run: runTable3})
	register(Runner{ID: "fig10", Brief: "reader CPU time breakdown per RM", Run: runFig10})
}

// runTable3 reproduces Table 3: reader read (ingest) and send (egress)
// bytes for a fixed number of samples — baseline, with clustering, and
// with clustering + IKJTs (paper: 538/837 GB → 179/837 GB → 179/713 GB).
func runTable3(scale Scale) (*Result, error) {
	rm := scaledRM(core.RM1(), scale)

	// Table 3 reads nothing but reader byte accounting, so the runs are
	// stats-only: every batch is discarded as soon as it is measured.
	baseline, err := core.Run(core.PipelineConfig{RM: rm, Readers: 1, StatsOnly: true})
	if err != nil {
		return nil, err
	}
	clustered, err := core.Run(core.PipelineConfig{RM: rm, Clustered: true, Readers: 1, StatsOnly: true})
	if err != nil {
		return nil, err
	}
	ikjt, err := core.Run(core.PipelineConfig{
		RM: rm, Clustered: true, Dedup: true, UseJaggedIndexSelect: true,
		Batch: rm.BaselineBatch, Readers: 1, // fixed batch: isolate the byte effect
		StatsOnly: true,
	})
	if err != nil {
		return nil, err
	}

	mb := func(n int64) float64 { return float64(n) / (1 << 20) }
	row := func(label string, r *core.Result) Row {
		return Row{Label: label, Values: []Cell{
			{Name: "read", Value: mb(r.Reader.ReadBytes), Unit: "M"},
			{Name: "send", Value: mb(r.Reader.SentBytes), Unit: "M"},
		}}
	}
	res := &Result{
		ID:    "table3",
		Title: "reader ingest & egress bytes, fixed sample count",
		Rows: []Row{
			row("baseline", baseline),
			row("with cluster (O2)", clustered),
			row("with IKJT (O3/O4)", ikjt),
		},
		Notes: []string{
			"paper: 538/837 GB -> 179/837 GB -> 179/713 GB",
			fmt.Sprintf("samples per run: %d", baseline.Samples),
		},
	}
	return res, nil
}

// runFig10 reproduces Figure 10: per-RM reader CPU time spent on fill,
// convert, and process, normalized to the baseline total (paper: fill
// −50/33/46%, convert +21/37/11%, process −13/−11/+3%).
func runFig10(scale Scale) (*Result, error) {
	res := &Result{
		ID:    "fig10",
		Title: "reader CPU breakdown (normalized to baseline total)",
		Notes: []string{
			"paper: fill -50/-33/-46%, convert +21/+37/+11%, process -13/-11/+3%",
		},
	}
	for _, rm := range core.AllRMs() {
		rm = scaledRM(rm, scale)
		// Fig 10 reads only the per-stage reader CPU times: stats-only.
		base, err := core.Run(core.PipelineConfig{RM: rm, Batch: rm.BaselineBatch, Readers: 1, StatsOnly: true})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", rm.Name, err)
		}
		recd, err := core.Run(core.PipelineConfig{
			RM: rm, Clustered: true, Dedup: true,
			UseJaggedIndexSelect: true, Batch: rm.BaselineBatch, Readers: 1,
			StatsOnly: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s recd: %w", rm.Name, err)
		}
		baseTotal := base.Reader.TotalTime().Seconds()
		row := func(label string, r *core.Result) Row {
			return Row{Label: label, Values: []Cell{
				{Name: "fill", Value: r.Reader.FillTime.Seconds() / baseTotal},
				{Name: "convert", Value: r.Reader.ConvertTime.Seconds() / baseTotal},
				{Name: "process", Value: r.Reader.ProcessTime.Seconds() / baseTotal},
				{Name: "total", Value: r.Reader.TotalTime().Seconds() / baseTotal},
			}}
		}
		res.Rows = append(res.Rows, row(rm.Name+" baseline", base), row(rm.Name+" recd", recd))
	}
	return res, nil
}
