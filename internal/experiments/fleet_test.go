package experiments

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
)

// TestFleetSweep is the ROADMAP fleet-scale contract: sweeping N
// same-spec ShareScans sessions (1 → 64; -short caps at 16 for CI),
// aggregate throughput is non-decreasing within tolerance, the cache hit
// ratio is exactly (N−1)/N (single-flight coalescing makes it
// deterministic, not approximate), and the fleet's decode work stays
// flat in N. The measured table is appended to the CI job summary
// (GITHUB_STEP_SUMMARY) next to the bench-gate ratios.
func TestFleetSweep(t *testing.T) {
	scale := Full
	if testing.Short() {
		scale = Small
	}
	ns := FleetNs(scale)
	points, err := FleetSweep(ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ns) {
		t.Fatalf("swept %d points, want %d", len(points), len(ns))
	}

	// Throughput is wall-clock and CI runners are noisy shared machines:
	// the gate is "never collapses", not "always improves" — each point
	// must keep at least half the best aggregate throughput seen at any
	// smaller N. A sharing regression (N sessions decoding N times)
	// shows up as a 1/N-style collapse and fails this immediately.
	const tolerance = 0.5
	best := 0.0
	for _, pt := range points {
		if pt.Batches == 0 || pt.BatchesPerSec == 0 {
			t.Fatalf("N=%d streamed nothing: %+v", pt.Sessions, pt)
		}
		if pt.BatchesPerSec < best*tolerance {
			t.Errorf("N=%d aggregate throughput %.0f batches/s collapsed below %.0f×%.2f",
				pt.Sessions, pt.BatchesPerSec, best, tolerance)
		}
		if pt.BatchesPerSec > best {
			best = pt.BatchesPerSec
		}

		want := float64(pt.Sessions-1) / float64(pt.Sessions)
		if math.Abs(pt.HitRatio-want) > 1e-9 {
			t.Errorf("N=%d hit ratio %.6f, want exactly (N-1)/N = %.6f", pt.Sessions, pt.HitRatio, want)
		}
		// Single-flight: the fleet decodes the table once per point.
		if pt.RowsDecoded != points[0].RowsDecoded {
			t.Errorf("N=%d decoded %d rows, want %d (one decode per point, any N)",
				pt.Sessions, pt.RowsDecoded, points[0].RowsDecoded)
		}
		// Batches scale exactly linearly: every session streams the whole
		// partition.
		if want := int64(pt.Sessions) * points[0].Batches; pt.Batches != want {
			t.Errorf("N=%d streamed %d batches, want %d", pt.Sessions, pt.Batches, want)
		}
	}

	writeFleetSummary(t, points)
}

// writeFleetSummary appends the sweep table to the GitHub Actions job
// summary when running in CI, next to the bench.sh ratio tables; locally
// it just logs the table.
func writeFleetSummary(t *testing.T, points []FleetPoint) {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "### Fleet-scale sweep (N same-spec ShareScans sessions)\n\n")
	fmt.Fprintf(&b, "| N | agg batches/s | hit ratio | rows decoded | wall |\n|---|---|---|---|---|\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "| %d | %.0f | %.3f | %d | %s |\n",
			pt.Sessions, pt.BatchesPerSec, pt.HitRatio, pt.RowsDecoded, pt.Elapsed.Round(pt.Elapsed/100))
	}
	b.WriteString("\nhit ratio is exactly (N−1)/N and rows decoded is flat: N sessions, one decode.\n")
	t.Log("\n" + b.String())
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	// The sweep runs more than once in CI (full suite, then -short under
	// -race); append the table only once.
	if prev, err := os.ReadFile(path); err == nil && strings.Contains(string(prev), "Fleet-scale sweep") {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("job summary unavailable: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, b.String())
}

// TestFleetRunnerRegistered: the sweep is a first-class experiment
// (recd-bench prints it alongside the paper tables).
func TestFleetRunnerRegistered(t *testing.T) {
	r, ok := ByID("fleet")
	if !ok {
		t.Fatal("fleet experiment not registered")
	}
	if r.Brief == "" || r.Run == nil {
		t.Fatal("incomplete fleet runner")
	}
}

// BenchmarkFleetSessions16 measures the N=16 sweep point end to end —
// the fleet-shaped companion to the 2-session BenchmarkSharedSessions
// pair — reporting aggregate throughput and the hit ratio as metrics.
func BenchmarkFleetSessions16(b *testing.B) {
	env, err := newFleetEnv()
	if err != nil {
		b.Fatal(err)
	}
	var last FleetPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := env.runPoint(16)
		if err != nil {
			b.Fatal(err)
		}
		last = pt
	}
	b.ReportMetric(last.BatchesPerSec, "agg_batches/s")
	b.ReportMetric(last.HitRatio, "hit_ratio")
}
