package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/etl"
)

func init() {
	register(Runner{ID: "fig3", Brief: "samples-per-session histogram: partition vs 4096-batch", Run: runFig3})
	register(Runner{ID: "fig4", Brief: "exact/partial duplicate percentage per feature", Run: runFig4})
}

// characterizationData generates the Fig 3/4 partition: a paper-shaped
// schema with user-dominated volume and S≈16.5.
func characterizationData(scale Scale) (*datagen.Schema, []datagen.Sample) {
	// Session count must dwarf the 4096-sample batch for the Fig 3
	// interleaving effect to show: a batch then touches thousands of
	// distinct sessions.
	sessions := 4000
	features := datagen.StandardSchemaConfig{
		UserSeq: 24, UserElem: 60, Item: 16, Dense: 4,
		SeqLen: 40, SeqGroupSize: 3, Seed: 77,
	}
	if scale == Small {
		sessions = 1500
		features.UserSeq, features.UserElem, features.Item = 3, 6, 2
		features.SeqLen = 16
	}
	schema := datagen.StandardSchema(features)
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions:              sessions,
		MeanSamplesPerSession: 16.5,
		Seed:                  7,
	})
	return schema, gen.GeneratePartition()
}

// runFig3 reproduces Figure 3: the mean samples per session within an
// hourly partition (paper: 16.5, heavy tail >1000) versus within a
// 4096-sample batch cut from the inference-ordered stream (paper: 1.15).
func runFig3(scale Scale) (*Result, error) {
	_, samples := characterizationData(scale)

	hist := datagen.SessionHistogram(samples)
	partitionMean := hist.Mean()
	batchMean := datagen.BatchSessionMean(samples, 4096)
	clusteredBatchMean := datagen.BatchSessionMean(etl.ClusterBySession(samples), 4096)

	res := &Result{
		ID:    "fig3",
		Title: "samples per session: hourly partition vs 4096 batch",
		Rows: []Row{
			{Label: "partition", Values: []Cell{
				{Name: "mean_s", Value: partitionMean},
				{Name: "max_s", Value: float64(hist.Max())},
			}},
			{Label: "batch4096 (interleaved)", Values: []Cell{
				{Name: "mean_s", Value: batchMean},
				{Name: "max_s", Value: 0},
			}},
			{Label: "batch4096 (clustered)", Values: []Cell{
				{Name: "mean_s", Value: clusteredBatchMean},
				{Name: "max_s", Value: 0},
			}},
		},
		Notes: []string{
			"paper: partition mean 16.5 (tail >1000); interleaved batch mean 1.15",
			"clustering restores per-batch session locality (motivates O2)",
		},
	}
	for _, b := range hist.Buckets() {
		if b.Count == 0 {
			continue
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("  hist %s", b.Label),
			Values: []Cell{
				{Name: "mean_s", Value: float64(b.Count)},
				{Name: "max_s", Value: 0},
			},
		})
	}
	return res, nil
}

// runFig4 reproduces Figure 4: percent of exact and partial duplicate
// feature values across sparse features, plus the byte-weighted versions
// (paper: 80.0% exact / 83.9% partial; byte-weighted 81.6% / 89.4%).
func runFig4(scale Scale) (*Result, error) {
	schema, samples := characterizationData(scale)
	sum := datagen.MeasureDuplication(schema, samples)

	var userExact, itemExact float64
	var userN, itemN int
	for _, f := range sum.PerFeature {
		if f.Class == datagen.UserFeature {
			userExact += f.ExactPct
			userN++
		} else {
			itemExact += f.ExactPct
			itemN++
		}
	}
	if userN > 0 {
		userExact /= float64(userN)
	}
	if itemN > 0 {
		itemExact /= float64(itemN)
	}

	return &Result{
		ID:    "fig4",
		Title: "duplicate feature values within an hourly partition",
		Rows: []Row{
			{Label: "all features (mean)", Values: []Cell{
				{Name: "exact", Value: sum.MeanExactPct, Unit: "%"},
				{Name: "partial", Value: sum.MeanPartialPct, Unit: "%"},
			}},
			{Label: "byte-weighted", Values: []Cell{
				{Name: "exact", Value: sum.ByteWeightedExactPct, Unit: "%"},
				{Name: "partial", Value: sum.ByteWeightedPartialPct, Unit: "%"},
			}},
			{Label: "user features (mean)", Values: []Cell{
				{Name: "exact", Value: userExact, Unit: "%"},
				{Name: "partial", Value: 0, Unit: "%"},
			}},
			{Label: "item features (mean)", Values: []Cell{
				{Name: "exact", Value: itemExact, Unit: "%"},
				{Name: "partial", Value: 0, Unit: "%"},
			}},
		},
		Notes: []string{
			"paper: mean 80.0% exact / 83.9% partial; byte-weighted 81.6% / 89.4%",
			"user features dominate volume and duplication; item features sit right of the knee",
		},
	}, nil
}
