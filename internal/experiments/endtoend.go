package experiments

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(Runner{ID: "fig7", Brief: "end-to-end trainer/reader/storage gains per RM", Run: runFig7})
	register(Runner{ID: "scribe", Brief: "Scribe compression: request vs session sharding (O1)", Run: runScribe})
	register(Runner{ID: "singlenode", Brief: "single-node RM1 speedup (§6.2)", Run: runSingleNode})
}

// scaledRM shrinks an RM spec for fast runs.
func scaledRM(rm core.RMSpec, scale Scale) core.RMSpec {
	if scale == Small {
		rm.GenCfg.Sessions /= 3
		if rm.GenCfg.Sessions < 30 {
			rm.GenCfg.Sessions = 30
		}
		rm.BaselineBatch /= 2
		rm.RecDBatch /= 2
	}
	return rm
}

// runFig7 reproduces Figure 7: normalized trainer throughput, reader
// throughput, and storage compression for RM1/RM2/RM3 with the full RecD
// suite versus their baselines (paper: 2.48/1.25/1.43×, 1.79/1.38/1.36×,
// 3.71/3.71/2.06×).
func runFig7(scale Scale) (*Result, error) {
	res := &Result{
		ID:    "fig7",
		Title: "RecD end-to-end gains, normalized to baseline",
		Notes: []string{
			"paper: trainer 2.48/1.25/1.43x, reader 1.79/1.38/1.36x, compression 3.71/3.71/2.06x",
		},
	}
	for _, rm := range core.AllRMs() {
		rm = scaledRM(rm, scale)
		base, err := core.Run(core.PipelineConfig{RM: rm, Readers: 1})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", rm.Name, err)
		}
		recd, err := core.Run(core.PipelineConfig{
			RM: rm, ShardBySession: true, Clustered: true, Dedup: true,
			UseJaggedIndexSelect: true, Readers: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("%s recd: %w", rm.Name, err)
		}
		res.Rows = append(res.Rows, Row{
			Label: rm.Name,
			Values: []Cell{
				{Name: "trainer", Value: recd.Iteration.QPS / base.Iteration.QPS, Unit: "x"},
				{Name: "reader", Value: recd.ReaderThroughput / base.ReaderThroughput, Unit: "x"},
				{Name: "storage", Value: recd.Partition.CompressionRatio() / base.Partition.CompressionRatio(), Unit: "x"},
				{Name: "dedup_f", Value: recd.MeasuredDedupFactor, Unit: "x"},
			},
		})
	}
	return res, nil
}

// runScribe reproduces the §6.1 Scribe result: session sharding raises
// the message-bus compression ratio (paper: 1.50× → 2.25×).
func runScribe(scale Scale) (*Result, error) {
	rm := scaledRM(core.RM1(), scale)

	base, err := core.Run(core.PipelineConfig{RM: rm})
	if err != nil {
		return nil, err
	}
	sharded, err := core.Run(core.PipelineConfig{RM: rm, ShardBySession: true})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "scribe",
		Title: "Scribe compression ratio by shard policy (O1)",
		Rows: []Row{
			{Label: "shard by request (base)", Values: []Cell{
				{Name: "ratio", Value: base.Scribe.CompressionRatio(), Unit: "x"},
			}},
			{Label: "shard by session (O1)", Values: []Cell{
				{Name: "ratio", Value: sharded.Scribe.CompressionRatio(), Unit: "x"},
			}},
			{Label: "improvement", Values: []Cell{
				{Name: "ratio", Value: sharded.Scribe.CompressionRatio() / base.Scribe.CompressionRatio(), Unit: "x"},
			}},
		},
		Notes: []string{"paper: 1.50x -> 2.25x (1.5x improvement)"},
	}, nil
}

// runSingleNode reproduces §6.2 "Single-node Training": RM1 downsized to
// one ZionEX node still gains from RecD (paper: 2.18×) because compute
// and memory savings remain even when NVLink hides most communication.
func runSingleNode(scale Scale) (*Result, error) {
	rm := scaledRM(core.RM1(), scale)
	rm.Nodes = 1
	// The paper downsizes RM1 to fit one ZionEX node; shrink the
	// simulated embedding state and activation footprint accordingly.
	rm.SimEmbParamBytes = 4 << 30
	rm.SimActMemScale = 6

	base, err := core.RunBaseline(rm)
	if err != nil {
		return nil, err
	}
	recd, err := core.RunRecD(rm)
	if err != nil {
		return nil, err
	}

	multi := scaledRM(core.RM1(), scale)
	baseMulti, err := core.RunBaseline(multi)
	if err != nil {
		return nil, err
	}
	recdMulti, err := core.RunRecD(multi)
	if err != nil {
		return nil, err
	}

	return &Result{
		ID:    "singlenode",
		Title: "RecD gain: single node vs multi node (RM1)",
		Rows: []Row{
			{Label: "single-node (8 GPUs)", Values: []Cell{
				{Name: "speedup", Value: recd.Iteration.QPS / base.Iteration.QPS, Unit: "x"},
				{Name: "a2a_ms", Value: base.Iteration.Breakdown.A2A.Seconds() * 1e3},
			}},
			{Label: "multi-node (48 GPUs)", Values: []Cell{
				{Name: "speedup", Value: recdMulti.Iteration.QPS / baseMulti.Iteration.QPS, Unit: "x"},
				{Name: "a2a_ms", Value: baseMulti.Iteration.Breakdown.A2A.Seconds() * 1e3},
			}},
		},
		Notes: []string{"paper: 2.18x single-node gain; single-node exposes less A2A but keeps compute/memory wins"},
	}, nil
}
