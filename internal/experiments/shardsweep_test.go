package experiments

import "testing"

// TestShardSweep pins the sweep's deterministic shape: the merged batch
// count is identical at every shard count (the byte-identity contract's
// coarse shadow), the fleet decodes each file exactly once per point
// (per-shard misses sum to the file count, flat in k), routing spreads
// files across shards (the max per-shard subset shrinks as k grows), and
// a healthy sweep never re-routes. Throughput is reported, not gated —
// scripts/bench.sh gates the 2-vs-1 shard ratio where cache capacity,
// not CI scheduling noise, decides it.
func TestShardSweep(t *testing.T) {
	scale := Full
	if testing.Short() {
		scale = Small
	}
	ns := ShardNs(scale)
	points, err := ShardSweep(ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ns) {
		t.Fatalf("swept %d points, want %d", len(points), len(ns))
	}
	for _, pt := range points {
		if pt.Batches == 0 || pt.BatchesPerSec == 0 {
			t.Fatalf("k=%d streamed nothing: %+v", pt.Shards, pt)
		}
		if pt.Batches != points[0].Batches {
			t.Errorf("k=%d streamed %d batches, k=1 streamed %d (merged stream must not depend on k)",
				pt.Shards, pt.Batches, points[0].Batches)
		}
		if pt.FilesDecoded != points[0].FilesDecoded {
			t.Errorf("k=%d decoded %d files, want %d (each file decoded on exactly one shard)",
				pt.Shards, pt.FilesDecoded, points[0].FilesDecoded)
		}
		if pt.Reroutes != 0 {
			t.Errorf("k=%d re-routed %d times on a healthy fleet", pt.Shards, pt.Reroutes)
		}
	}
	// Routing balance: at the largest k, no shard owns the whole table.
	last := points[len(points)-1]
	if last.Shards > 1 && int64(last.MaxShardFiles) >= last.FilesDecoded {
		t.Errorf("k=%d routed every file to one shard (max subset %d of %d)",
			last.Shards, last.MaxShardFiles, last.FilesDecoded)
	}
}

// TestShardSweepRunnerRegistered: the sweep is a first-class experiment.
func TestShardSweepRunnerRegistered(t *testing.T) {
	r, ok := ByID("shard-sweep")
	if !ok {
		t.Fatal("shard-sweep experiment not registered")
	}
	if r.Brief == "" || r.Run == nil {
		t.Fatal("incomplete shard-sweep runner")
	}
}
