package testutil

import (
	"sync"
	"testing"
	"time"
)

// Clock is a manual-advance clock for deterministic scheduling tests: it
// satisfies dpp.Clock structurally (Now + After) but time only moves when
// the test calls Advance, so controller decisions — which stall deltas
// trigger which resizes — are reproducible without a single time.Sleep.
//
// All methods are safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewClock returns a clock frozen at start (the zero time works fine —
// only differences matter to consumers).
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the clock's current frozen time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once Advance has moved the clock at
// least d past the current time. d <= 0 fires on the next Advance(0).
func (c *Clock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t.ch
}

// Advance moves the clock forward by d and fires every timer now due.
// Fires are non-blocking sends into each timer's buffered channel, so an
// abandoned After channel never wedges the test.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var pending []*fakeTimer
	var due []*fakeTimer
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			due = append(due, t)
		} else {
			pending = append(pending, t)
		}
	}
	c.timers = pending
	now := c.now
	c.mu.Unlock()
	for _, t := range due {
		select {
		case t.ch <- now:
		default:
		}
	}
}

// Waiters reports how many After channels are armed — the
// synchronization hook that lets a test wait for a goroutine to reach
// its next tick before advancing past it.
func (c *Clock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// BlockUntilWaiters polls until at least n After channels are armed,
// failing the test after 5s. Use it to hand-shake with a ticking
// goroutine: once it is parked on After, an Advance is guaranteed to be
// observed as exactly one tick.
func (c *Clock) BlockUntilWaiters(t testing.TB, n int) {
	t.Helper()
	Eventually(t, func() bool { return c.Waiters() >= n }, "clock waiters >= %d", n)
}

// Eventually polls cond every few milliseconds until it returns true,
// failing the test with the formatted message after 5s — the shared
// deadline for every "the other goroutine must get there" assertion in
// the concurrency suites (session-slot release, stream start, pool
// drain). Centralizing the deadline keeps fault-injection tests from
// each hand-rolling their own wait loop.
func Eventually(t testing.TB, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held: "+format, args...)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
