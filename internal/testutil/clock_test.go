package testutil

import (
	"testing"
	"time"
)

// TestClockAdvanceFiresDueTimers: After channels fire exactly when the
// manual clock crosses their deadline, independently of wall time.
func TestClockAdvanceFiresDueTimers(t *testing.T) {
	c := NewClock(time.Unix(0, 0))
	early := c.After(10 * time.Millisecond)
	late := c.After(30 * time.Millisecond)
	if n := c.Waiters(); n != 2 {
		t.Fatalf("Waiters = %d, want 2", n)
	}

	c.Advance(5 * time.Millisecond)
	select {
	case <-early:
		t.Fatal("timer fired before its deadline")
	default:
	}

	c.Advance(5 * time.Millisecond) // t = 10ms: early due, late not
	select {
	case at := <-early:
		if want := time.Unix(0, 0).Add(10 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("timer delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("due timer did not fire")
	}
	select {
	case <-late:
		t.Fatal("late timer fired early")
	default:
	}
	if n := c.Waiters(); n != 1 {
		t.Fatalf("Waiters after one fire = %d, want 1", n)
	}

	c.Advance(100 * time.Millisecond)
	select {
	case <-late:
	default:
		t.Fatal("late timer never fired")
	}
	if got, want := c.Now(), time.Unix(0, 0).Add(110*time.Millisecond); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

// TestEventuallyPolls: Eventually returns once the condition flips.
func TestEventuallyPolls(t *testing.T) {
	n := 0
	Eventually(t, func() bool { n++; return n >= 3 }, "counter reaches 3")
	if n < 3 {
		t.Fatalf("condition polled %d times", n)
	}
}
