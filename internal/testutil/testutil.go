// Package testutil holds small helpers shared across the repo's test
// suites. The headline helper is WaitForGoroutines, the goroutine-leak
// assertion every cancellation, teardown, and fault-injection test ends
// with: concurrency features here are only considered correct when they
// tear down to zero residue.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitForGoroutines polls until the goroutine count settles back to the
// pre-test level, failing with a full stack dump after 5s. Call with a
// count captured via runtime.NumGoroutine() before the test started its
// workers; schedulers need a moment to unwind, so the helper tolerates
// transient overshoot by polling rather than asserting once.
func WaitForGoroutines(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before %d now %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
