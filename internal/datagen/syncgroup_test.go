package datagen

import (
	"fmt"
	"testing"
)

// TestSyncGroupUpdatesTogether: features sharing a SyncGroup and
// ChangeProb must change on exactly the same steps within a session, the
// property grouped IKJTs rely on (paper §4.2).
func TestSyncGroupUpdatesTogether(t *testing.T) {
	specs := []FeatureSpec{
		{Key: "a", Class: UserFeature, ChangeProb: 0.5, MeanLen: 4, MaxLen: 8,
			Update: Resample, Cardinality: 1 << 20, SyncGroup: "g"},
		{Key: "b", Class: UserFeature, ChangeProb: 0.5, MeanLen: 6, MaxLen: 12,
			Update: Resample, Cardinality: 1 << 20, SyncGroup: "g"},
		{Key: "c", Class: UserFeature, ChangeProb: 0.5, MeanLen: 4, MaxLen: 8,
			Update: Resample, Cardinality: 1 << 20}, // independent
	}
	schema, err := NewSchema(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(schema, GeneratorConfig{
		Sessions: 50, MeanSamplesPerSession: 10, Seed: 3,
	})
	sessions := gen.GenerateSessions()

	listEq := func(x, y []int64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}

	cChangesAlone := false
	for _, sess := range sessions {
		for i := 1; i < len(sess); i++ {
			aChanged := !listEq(sess[i].Sparse[0], sess[i-1].Sparse[0])
			bChanged := !listEq(sess[i].Sparse[1], sess[i-1].Sparse[1])
			cChanged := !listEq(sess[i].Sparse[2], sess[i-1].Sparse[2])
			if aChanged != bChanged {
				t.Fatalf("sync group members diverged at step %d: a=%v b=%v", i, aChanged, bChanged)
			}
			if cChanged != aChanged {
				cChangesAlone = true
			}
		}
	}
	if !cChangesAlone {
		t.Fatal("independent feature never diverged from the group; sync draw is leaking")
	}
}

// TestStandardSchemaSyncGroups: StandardSchema assigns sequence features
// to groups of SeqGroupSize with identical ChangeProb per group.
func TestStandardSchemaSyncGroups(t *testing.T) {
	s := StandardSchema(StandardSchemaConfig{
		UserSeq: 7, UserElem: 2, Item: 1, Dense: 2, SeqLen: 16, SeqGroupSize: 3, Seed: 9,
	})
	groups := map[string][]FeatureSpec{}
	for _, f := range s.Sparse {
		if f.Class == UserFeature && f.SyncGroup != "" {
			groups[f.SyncGroup] = append(groups[f.SyncGroup], f)
		}
	}
	// 7 seq features in groups of 3 → groups of size 3, 3, 1.
	if len(groups) != 3 {
		t.Fatalf("got %d sync groups want 3", len(groups))
	}
	for name, fs := range groups {
		for _, f := range fs[1:] {
			if f.ChangeProb != fs[0].ChangeProb {
				t.Fatalf("group %s has mixed ChangeProb", name)
			}
		}
	}
	// Group names follow the documented pattern.
	for i := 0; i < 3; i++ {
		if _, ok := groups[fmt.Sprintf("seq_group_%d", i)]; !ok {
			t.Fatalf("missing seq_group_%d", i)
		}
	}
}
