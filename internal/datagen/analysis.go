package datagen

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Analysis utilities reproducing the paper's §3 characterization:
// samples-per-session histograms (Fig 3) and exact/partial duplicate
// percentages per feature (Fig 4), including the byte-weighted aggregate.

// SessionHistogram observes the number of samples per session across the
// sample stream and returns the histogram plus the mean (the paper reports
// mean 16.5 per hourly partition).
func SessionHistogram(samples []Sample) *metrics.Histogram {
	counts := map[int64]int64{}
	for i := range samples {
		counts[samples[i].SessionID]++
	}
	h := metrics.NewHistogram([]int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	for _, c := range counts {
		h.Observe(c)
	}
	return h
}

// BatchSessionMean computes the mean samples-per-session within each
// consecutive batch of batchSize samples, averaged across batches. On an
// inference-time-ordered stream this collapses towards 1 (the paper
// measures 1.15 at batch 4096); on a clustered stream it approaches the
// partition-level mean.
func BatchSessionMean(samples []Sample, batchSize int) float64 {
	if len(samples) == 0 || batchSize <= 0 {
		return 0
	}
	var totalRatio float64
	var batches int
	for start := 0; start < len(samples); start += batchSize {
		end := start + batchSize
		if end > len(samples) {
			end = len(samples)
		}
		sessions := map[int64]bool{}
		for i := start; i < end; i++ {
			sessions[samples[i].SessionID] = true
		}
		totalRatio += float64(end-start) / float64(len(sessions))
		batches++
	}
	return totalRatio / float64(batches)
}

// FeatureDupStats carries the per-feature duplicate measurements of Fig 4.
type FeatureDupStats struct {
	Key   string
	Class FeatureClass
	// ExactPct is the percentage of samples whose value exactly matches
	// another sample from the same session in the partition.
	ExactPct float64
	// PartialPct is the percentage of individual list IDs that are
	// (shift-)duplicates within the session.
	PartialPct float64
	// TotalIDs is the number of IDs this feature contributes (its share of
	// dataset volume; used for byte weighting).
	TotalIDs int64
}

// DupSummary aggregates the Fig 4 measurements.
type DupSummary struct {
	PerFeature []FeatureDupStats
	// MeanExactPct / MeanPartialPct average across features (the paper
	// reports 80.0% and 83.9%).
	MeanExactPct   float64
	MeanPartialPct float64
	// ByteWeightedExactPct / ByteWeightedPartialPct weigh each feature by
	// its total ID volume (the paper reports 81.6% and 89.4%).
	ByteWeightedExactPct   float64
	ByteWeightedPartialPct float64
}

// MeasureDuplication computes exact and partial duplicate statistics per
// feature over a partition, mirroring the paper's methodology: for each
// feature, the fraction of samples whose list exactly equals another sample
// of the same session, and the fraction of IDs that are shift-duplicates.
func MeasureDuplication(schema *Schema, samples []Sample) DupSummary {
	// Group sample indices by session, preserving stream order.
	bySession := map[int64][]int{}
	var order []int64
	for i := range samples {
		sid := samples[i].SessionID
		if _, ok := bySession[sid]; !ok {
			order = append(order, sid)
		}
		bySession[sid] = append(bySession[sid], i)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	summary := DupSummary{PerFeature: make([]FeatureDupStats, len(schema.Sparse))}
	for fi, spec := range schema.Sparse {
		var dupSamples, totalSamples int64
		var storedPartial, totalIDs int64
		for _, sid := range order {
			idxs := bySession[sid]
			rows := make([][]tensor.Value, len(idxs))
			for k, si := range idxs {
				rows[k] = samples[si].Sparse[fi]
				totalIDs += int64(len(rows[k]))
			}
			j := tensor.NewJagged(rows)
			// Exact duplicates: samples minus unique rows within session.
			ik, err := tensor.DedupJagged([]string{spec.Key}, []tensor.Jagged{j})
			if err != nil {
				panic(err) // unreachable: constructed inputs are valid
			}
			dupSamples += int64(len(idxs) - ik.UniqueRows())
			totalSamples += int64(len(idxs))
			// Partial duplicates: IDs minus shift-dedup storage.
			p := tensor.PartialDedup(spec.Key, j)
			storedPartial += int64(len(p.Values))
		}
		st := FeatureDupStats{Key: spec.Key, Class: spec.Class, TotalIDs: totalIDs}
		if totalSamples > 0 {
			st.ExactPct = 100 * float64(dupSamples) / float64(totalSamples)
		}
		if totalIDs > 0 {
			st.PartialPct = 100 * float64(totalIDs-storedPartial) / float64(totalIDs)
		}
		summary.PerFeature[fi] = st
	}

	var sumExact, sumPartial float64
	var wExact, wPartial, wTotal float64
	for _, st := range summary.PerFeature {
		sumExact += st.ExactPct
		sumPartial += st.PartialPct
		wExact += st.ExactPct * float64(st.TotalIDs)
		wPartial += st.PartialPct * float64(st.TotalIDs)
		wTotal += float64(st.TotalIDs)
	}
	if n := float64(len(summary.PerFeature)); n > 0 {
		summary.MeanExactPct = sumExact / n
		summary.MeanPartialPct = sumPartial / n
	}
	if wTotal > 0 {
		summary.ByteWeightedExactPct = wExact / wTotal
		summary.ByteWeightedPartialPct = wPartial / wTotal
	}
	return summary
}

// MeasuredS computes the empirical mean samples per session.
func MeasuredS(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sessions := map[int64]bool{}
	for i := range samples {
		sessions[samples[i].SessionID] = true
	}
	return float64(len(samples)) / float64(len(sessions))
}

// FeatureModelFor derives the paper's analytic model parameters for one
// feature from a measured partition: S from the stream, d(f) from the spec,
// l(f) from the spec's mean length.
func FeatureModelFor(spec FeatureSpec, s float64, batch int) tensor.FeatureModel {
	return tensor.FeatureModel{
		S: s,
		B: float64(batch),
		D: spec.D(),
		L: float64(spec.MeanLen),
	}
}
