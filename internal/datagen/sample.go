package datagen

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Sample is one training sample: an impression and its outcome, carrying
// the full feature snapshot logged at inference time (inference servers log
// features per request to avoid data leakage, paper §2.1).
type Sample struct {
	SessionID int64
	UserID    int64
	RequestID int64
	// Timestamp is microseconds since the partition start; the raw log
	// stream is ordered by this inference time, which interleaves sessions
	// (paper §3).
	Timestamp int64
	// Sparse holds one ID list per schema sparse feature, indexed in
	// schema order.
	Sparse [][]int64
	// Dense holds the dense float features.
	Dense []float32
	// Label is the impression outcome (e.g. click).
	Label int8
}

// Clone deep-copies the sample.
func (s Sample) Clone() Sample {
	out := s
	out.Sparse = make([][]int64, len(s.Sparse))
	for i, l := range s.Sparse {
		out.Sparse[i] = append([]int64(nil), l...)
	}
	out.Dense = append([]float32(nil), s.Dense...)
	return out
}

// SparseBytes reports the payload bytes attributable to sparse features.
func (s Sample) SparseBytes() int {
	n := 0
	for _, l := range s.Sparse {
		n += 8 * len(l)
	}
	return n
}

// EncodedSize reports the serialized size of the sample without encoding
// it (upper bound; varints may shrink it).
func (s Sample) EncodedSize() int {
	return 8*4 + 1 + s.SparseBytes() + 8*len(s.Sparse) + 4*len(s.Dense) + 16
}

// Encode serializes the sample in the raw-log wire format used by the
// inference→Scribe path. The format is deliberately value-dense so that
// black-box compression behaves like it does on production logs: duplicate
// feature values across co-located samples compress away.
func (s Sample) Encode(w io.Writer) error {
	var hdr [8]byte
	writeI64 := func(v int64) error {
		binary.LittleEndian.PutUint64(hdr[:], uint64(v))
		_, err := w.Write(hdr[:])
		return err
	}
	for _, v := range []int64{s.SessionID, s.UserID, s.RequestID, s.Timestamp} {
		if err := writeI64(v); err != nil {
			return err
		}
	}
	if _, err := w.Write([]byte{byte(s.Label)}); err != nil {
		return err
	}
	if err := writeI64(int64(len(s.Sparse))); err != nil {
		return err
	}
	for _, list := range s.Sparse {
		if err := writeI64(int64(len(list))); err != nil {
			return err
		}
		buf := make([]byte, 8*len(list))
		for i, v := range list {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if err := writeI64(int64(len(s.Dense))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(s.Dense))
	for i, v := range s.Dense {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// DecodeSample reads one sample from r in the Encode format.
func DecodeSample(r io.Reader) (Sample, error) {
	var s Sample
	var hdr [8]byte
	readI64 := func() (int64, error) {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return 0, err
		}
		return int64(binary.LittleEndian.Uint64(hdr[:])), nil
	}
	var err error
	if s.SessionID, err = readI64(); err != nil {
		return s, err // io.EOF here means a clean end of stream
	}
	if s.UserID, err = readI64(); err != nil {
		return s, fmt.Errorf("datagen: decode user id: %w", err)
	}
	if s.RequestID, err = readI64(); err != nil {
		return s, fmt.Errorf("datagen: decode request id: %w", err)
	}
	if s.Timestamp, err = readI64(); err != nil {
		return s, fmt.Errorf("datagen: decode timestamp: %w", err)
	}
	var lbl [1]byte
	if _, err := io.ReadFull(r, lbl[:]); err != nil {
		return s, fmt.Errorf("datagen: decode label: %w", err)
	}
	s.Label = int8(lbl[0])
	nSparse, err := readI64()
	if err != nil {
		return s, fmt.Errorf("datagen: decode sparse count: %w", err)
	}
	if nSparse < 0 || nSparse > 1<<20 {
		return s, fmt.Errorf("datagen: implausible sparse count %d", nSparse)
	}
	s.Sparse = make([][]int64, nSparse)
	for i := range s.Sparse {
		n, err := readI64()
		if err != nil {
			return s, fmt.Errorf("datagen: decode list len: %w", err)
		}
		if n < 0 || n > 1<<24 {
			return s, fmt.Errorf("datagen: implausible list len %d", n)
		}
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return s, fmt.Errorf("datagen: decode list: %w", err)
		}
		list := make([]int64, n)
		for c := range list {
			list[c] = int64(binary.LittleEndian.Uint64(buf[c*8:]))
		}
		s.Sparse[i] = list
	}
	nDense, err := readI64()
	if err != nil {
		return s, fmt.Errorf("datagen: decode dense count: %w", err)
	}
	if nDense < 0 || nDense > 1<<20 {
		return s, fmt.Errorf("datagen: implausible dense count %d", nDense)
	}
	buf := make([]byte, 4*nDense)
	if _, err := io.ReadFull(r, buf); err != nil {
		return s, fmt.Errorf("datagen: decode dense: %w", err)
	}
	s.Dense = make([]float32, nDense)
	for i := range s.Dense {
		s.Dense[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return s, nil
}

// EncodeSamples serializes a slice of samples back to back.
func EncodeSamples(w io.Writer, samples []Sample) error {
	for i := range samples {
		if err := samples[i].Encode(w); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSamples reads samples until EOF.
func DecodeSamples(r io.Reader) ([]Sample, error) {
	var out []Sample
	for {
		s, err := DecodeSample(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}
