package datagen

import (
	"bytes"
	"math"
	"testing"
)

func testSchema() *Schema {
	return StandardSchema(StandardSchemaConfig{
		UserSeq:  2,
		UserElem: 6,
		Item:     4,
		Dense:    8,
		SeqLen:   40,
		Seed:     1,
	})
}

func TestStandardSchemaShape(t *testing.T) {
	s := testSchema()
	if got := len(s.Sparse); got != 12 {
		t.Fatalf("sparse features = %d, want 12", got)
	}
	if s.Dense != 8 {
		t.Fatalf("dense = %d, want 8", s.Dense)
	}
	var users, items int
	for _, f := range s.Sparse {
		switch f.Class {
		case UserFeature:
			users++
			if f.D() < 0.75 {
				t.Errorf("user feature %s d(f)=%v, want high", f.Key, f.D())
			}
		case ItemFeature:
			items++
			if f.D() > 0.2 {
				t.Errorf("item feature %s d(f)=%v, want low", f.Key, f.D())
			}
		}
	}
	if users != 8 || items != 4 {
		t.Fatalf("users=%d items=%d", users, items)
	}
	if i, ok := s.FeatureIndex("user_seq_0"); !ok || i != 0 {
		t.Errorf("FeatureIndex(user_seq_0) = %d,%v", i, ok)
	}
	if _, ok := s.FeatureIndex("nope"); ok {
		t.Error("FeatureIndex should miss")
	}
	keys := s.SparseKeys()
	if len(keys) != 12 || keys[0] != "user_seq_0" {
		t.Errorf("SparseKeys = %v", keys)
	}
}

func TestNewSchemaValidation(t *testing.T) {
	bad := []FeatureSpec{
		{Key: "", MeanLen: 1, MaxLen: 1, Cardinality: 10},
		{Key: "a", ChangeProb: 2, MeanLen: 1, MaxLen: 1, Cardinality: 10},
		{Key: "a", MeanLen: 0, MaxLen: 1, Cardinality: 10},
		{Key: "a", MeanLen: 5, MaxLen: 2, Cardinality: 10},
		{Key: "a", MeanLen: 1, MaxLen: 1, Cardinality: 0},
	}
	for i, f := range bad {
		if _, err := NewSchema([]FeatureSpec{f}, 0); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	if _, err := NewSchema([]FeatureSpec{
		{Key: "a", MeanLen: 1, MaxLen: 1, Cardinality: 10},
		{Key: "a", MeanLen: 1, MaxLen: 1, Cardinality: 10},
	}, 0); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Sessions: 20, MeanSamplesPerSession: 5, Seed: 42}
	a := NewGenerator(testSchema(), cfg).GeneratePartition()
	b := NewGenerator(testSchema(), cfg).GeneratePartition()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].RequestID != b[i].RequestID || a[i].SessionID != b[i].SessionID {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestGeneratorSessionMean(t *testing.T) {
	g := NewGenerator(testSchema(), GeneratorConfig{
		Sessions:              2000,
		MeanSamplesPerSession: 16.5,
		Seed:                  7,
	})
	samples := g.GeneratePartition()
	s := MeasuredS(samples)
	if s < 12 || s > 21 {
		t.Fatalf("measured S = %v, want near 16.5", s)
	}
	// The stream must be timestamp ordered (inference-time interleaving).
	for i := 1; i < len(samples); i++ {
		if samples[i].Timestamp < samples[i-1].Timestamp {
			t.Fatal("partition not timestamp ordered")
		}
	}
}

// TestInterleavingCollapsesBatchSessionMean reproduces the core Fig 3
// observation: a timestamp-ordered partition has many samples per session
// overall, but within a 4096 batch only ~1 per session.
func TestInterleavingCollapsesBatchSessionMean(t *testing.T) {
	g := NewGenerator(testSchema(), GeneratorConfig{
		Sessions:              3000,
		MeanSamplesPerSession: 16.5,
		Seed:                  5,
	})
	samples := g.GeneratePartition()
	partitionS := MeasuredS(samples)
	batchS := BatchSessionMean(samples, 4096)
	if batchS >= partitionS/3 {
		t.Fatalf("batch S %v should be far below partition S %v", batchS, partitionS)
	}
	if batchS > 3.0 {
		t.Fatalf("batch S = %v, want near 1 on interleaved stream", batchS)
	}
}

func TestSessionHistogramTail(t *testing.T) {
	g := NewGenerator(testSchema(), GeneratorConfig{
		Sessions:               5000,
		MeanSamplesPerSession:  16.5,
		SigmaSamplesPerSession: 1.3,
		Seed:                   9,
	})
	samples := g.GeneratePartition()
	h := SessionHistogram(samples)
	if h.Count() != 5000 {
		t.Fatalf("sessions = %d", h.Count())
	}
	if h.Mean() < 10 {
		t.Errorf("mean = %v, want >= 10", h.Mean())
	}
	// Heavy tail: some session should exceed 128 samples.
	if h.Max() < 128 {
		t.Errorf("max = %d, want a heavy tail", h.Max())
	}
}

// TestDuplicationStats checks the Fig 4 shape: user features highly
// duplicated, item features barely; partial >= exact; byte-weighted near
// the paper's 80% range for user-dominated schemas.
func TestDuplicationStats(t *testing.T) {
	schema := testSchema()
	g := NewGenerator(schema, GeneratorConfig{
		Sessions:              400,
		MeanSamplesPerSession: 16.5,
		Seed:                  3,
	})
	samples := g.GeneratePartition()
	sum := MeasureDuplication(schema, samples)

	for _, st := range sum.PerFeature {
		switch st.Class {
		case UserFeature:
			if st.ExactPct < 50 {
				t.Errorf("user feature %s exact dup %.1f%%, want high", st.Key, st.ExactPct)
			}
		case ItemFeature:
			if st.ExactPct > 40 {
				t.Errorf("item feature %s exact dup %.1f%%, want low", st.Key, st.ExactPct)
			}
		}
		if st.PartialPct+2 < st.ExactPct {
			// Partial captures exact duplicates too (up to per-ID vs
			// per-sample accounting noise).
			t.Errorf("feature %s partial %.1f%% < exact %.1f%%", st.Key, st.PartialPct, st.ExactPct)
		}
	}
	if sum.MeanExactPct < 40 || sum.MeanExactPct > 95 {
		t.Errorf("mean exact = %.1f%%, want user-dominated average", sum.MeanExactPct)
	}
	if sum.ByteWeightedExactPct < sum.MeanExactPct {
		t.Errorf("byte-weighted exact %.1f%% < mean %.1f%%: longer features should dup slightly more",
			sum.ByteWeightedExactPct, sum.MeanExactPct)
	}
	if sum.ByteWeightedPartialPct < sum.ByteWeightedExactPct {
		t.Errorf("byte-weighted partial %.1f%% < exact %.1f%%",
			sum.ByteWeightedPartialPct, sum.ByteWeightedExactPct)
	}
}

func TestSampleEncodeDecodeRoundTrip(t *testing.T) {
	g := NewGenerator(testSchema(), GeneratorConfig{Sessions: 5, MeanSamplesPerSession: 4, Seed: 2})
	samples := g.GeneratePartition()
	var buf bytes.Buffer
	if err := EncodeSamples(&buf, samples); err != nil {
		t.Fatalf("EncodeSamples: %v", err)
	}
	back, err := DecodeSamples(&buf)
	if err != nil {
		t.Fatalf("DecodeSamples: %v", err)
	}
	if len(back) != len(samples) {
		t.Fatalf("decoded %d, want %d", len(back), len(samples))
	}
	for i := range samples {
		a, b := samples[i], back[i]
		if a.SessionID != b.SessionID || a.RequestID != b.RequestID ||
			a.Timestamp != b.Timestamp || a.Label != b.Label {
			t.Fatalf("sample %d header mismatch", i)
		}
		if len(a.Sparse) != len(b.Sparse) {
			t.Fatalf("sample %d sparse count mismatch", i)
		}
		for fi := range a.Sparse {
			if len(a.Sparse[fi]) != len(b.Sparse[fi]) {
				t.Fatalf("sample %d feature %d length mismatch", i, fi)
			}
			for c := range a.Sparse[fi] {
				if a.Sparse[fi][c] != b.Sparse[fi][c] {
					t.Fatalf("sample %d feature %d value mismatch", i, fi)
				}
			}
		}
		for d := range a.Dense {
			if a.Dense[d] != b.Dense[d] {
				t.Fatalf("sample %d dense mismatch", i)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// A sparse count of 2^40 must be rejected, not allocated.
	var buf bytes.Buffer
	s := Sample{Sparse: [][]int64{}, Dense: []float32{}}
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the sparse-count field (offset 33 = 4*8 header + label).
	for i := 33; i < 41; i++ {
		raw[i] = 0xff
	}
	if _, err := DecodeSample(bytes.NewReader(raw)); err == nil {
		t.Fatal("implausible sparse count accepted")
	}
}

func TestSampleClone(t *testing.T) {
	s := Sample{Sparse: [][]int64{{1, 2}}, Dense: []float32{3}}
	c := s.Clone()
	c.Sparse[0][0] = 99
	c.Dense[0] = 99
	if s.Sparse[0][0] == 99 || s.Dense[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestGenerateSessionsGrouped(t *testing.T) {
	g := NewGenerator(testSchema(), GeneratorConfig{Sessions: 10, MeanSamplesPerSession: 8, Seed: 4})
	sessions := g.GenerateSessions()
	if len(sessions) != 10 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	for _, sess := range sessions {
		if len(sess) == 0 {
			t.Fatal("empty session")
		}
		sid := sess[0].SessionID
		for i, s := range sess {
			if s.SessionID != sid {
				t.Fatal("mixed session IDs in group")
			}
			if i > 0 && s.Timestamp < sess[i-1].Timestamp {
				t.Fatal("session samples not time ordered")
			}
		}
	}
}

func TestShiftAppendProducesPartialOverlap(t *testing.T) {
	schema, err := NewSchema([]FeatureSpec{{
		Key:         "seq",
		Class:       UserFeature,
		ChangeProb:  1.0, // change every sample
		MeanLen:     20,
		MaxLen:      20,
		Update:      ShiftAppend,
		Cardinality: 1 << 30,
	}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(schema, GeneratorConfig{Sessions: 50, MeanSamplesPerSession: 10, Seed: 6})
	samples := g.GeneratePartition()
	sum := MeasureDuplication(schema, samples)
	st := sum.PerFeature[0]
	if st.ExactPct > 5 {
		t.Errorf("exact = %.1f%%, want ~0 when every sample shifts", st.ExactPct)
	}
	if st.PartialPct < 50 {
		t.Errorf("partial = %.1f%%, want high for shift updates", st.PartialPct)
	}
}

func TestSessionSizeMeanApproximation(t *testing.T) {
	g := NewGenerator(testSchema(), GeneratorConfig{
		Sessions:              1,
		MeanSamplesPerSession: 16.5,
		Seed:                  8,
	})
	var total float64
	const n = 20000
	for i := 0; i < n; i++ {
		total += float64(g.sessionSize())
	}
	mean := total / n
	if math.Abs(mean-16.5) > 2.5 {
		t.Fatalf("empirical mean %v, want ~16.5", mean)
	}
}
