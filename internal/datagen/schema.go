// Package datagen synthesizes session-centric DLRM training data with the
// duplication structure the paper characterizes in §3: each user session
// produces many samples (mean 16.5 in the paper's hourly partition, with a
// tail beyond 1000), and sparse user features rarely change across a
// session's samples while item features change nearly every sample.
//
// The generator stands in for Meta's production inference logs (repro band:
// no access to production traces). Duplication statistics are fully
// determined by the (samples-per-session, per-feature change probability,
// list length) parameters, so every downstream dedup code path observes the
// same distributional shape as the paper's dataset.
package datagen

import (
	"fmt"
	"math/rand"
)

// FeatureClass distinguishes user from item sparse features. User features
// (e.g. last-N liked post IDs) are largely static within a session; item
// features (e.g. the candidate item ID) change almost every impression
// (paper §3).
type FeatureClass int

const (
	// UserFeature reflects user traits; highly duplicated within sessions.
	UserFeature FeatureClass = iota
	// ItemFeature reflects the ranked item; low duplication.
	ItemFeature
)

// String implements fmt.Stringer.
func (c FeatureClass) String() string {
	switch c {
	case UserFeature:
		return "user"
	case ItemFeature:
		return "item"
	default:
		return fmt.Sprintf("FeatureClass(%d)", int(c))
	}
}

// UpdateKind describes how a feature's value evolves when it changes.
type UpdateKind int

const (
	// Resample draws a completely new list (e.g. a recomputed ranking
	// signal). Changes produce no partial overlap.
	Resample UpdateKind = iota
	// ShiftAppend appends one new ID and slides the window (e.g. last-N
	// engagement history). Changes are shifts, so partial IKJTs can still
	// deduplicate them (paper §7).
	ShiftAppend
)

// FeatureSpec describes one sparse feature.
type FeatureSpec struct {
	Key   string
	Class FeatureClass
	// ChangeProb is the probability the feature's value changes between
	// adjacent samples of the same session; d(f) in the paper's model is
	// 1 - ChangeProb.
	ChangeProb float64
	// MeanLen is the average list length l(f).
	MeanLen int
	// MaxLen bounds the list length (sequence window size).
	MaxLen int
	// Update selects how changes are applied.
	Update UpdateKind
	// Cardinality is the ID space size for this feature.
	Cardinality int64
	// SyncGroup, when non-empty, names a set of features that update
	// synchronously across a session's samples (one change draw shared by
	// the whole group) — the property grouped IKJTs rely on (paper §4.2:
	// "features updated synchronously across samples", e.g. item-ID and
	// seller-ID of the same cart sequence).
	SyncGroup string
}

// D returns the paper's d(f): probability the value is unchanged across
// adjacent rows.
func (f FeatureSpec) D() float64 { return 1 - f.ChangeProb }

// Schema is the dataset schema: an ordered list of sparse features plus a
// count of dense float features.
type Schema struct {
	Sparse []FeatureSpec
	Dense  int
	index  map[string]int
}

// NewSchema builds a schema, validating feature specs.
func NewSchema(sparse []FeatureSpec, dense int) (*Schema, error) {
	s := &Schema{Sparse: append([]FeatureSpec(nil), sparse...), Dense: dense, index: map[string]int{}}
	for i, f := range s.Sparse {
		if f.Key == "" {
			return nil, fmt.Errorf("datagen: feature %d has empty key", i)
		}
		if _, dup := s.index[f.Key]; dup {
			return nil, fmt.Errorf("datagen: duplicate feature key %q", f.Key)
		}
		if f.ChangeProb < 0 || f.ChangeProb > 1 {
			return nil, fmt.Errorf("datagen: feature %q change prob %v out of [0,1]", f.Key, f.ChangeProb)
		}
		if f.MeanLen <= 0 || f.MaxLen < f.MeanLen {
			return nil, fmt.Errorf("datagen: feature %q bad lengths mean=%d max=%d", f.Key, f.MeanLen, f.MaxLen)
		}
		if f.Cardinality <= 0 {
			return nil, fmt.Errorf("datagen: feature %q cardinality %d", f.Key, f.Cardinality)
		}
		s.index[f.Key] = i
	}
	return s, nil
}

// FeatureIndex returns the position of key in the sparse feature list.
func (s *Schema) FeatureIndex(key string) (int, bool) {
	i, ok := s.index[key]
	return i, ok
}

// SparseKeys returns the ordered sparse feature keys.
func (s *Schema) SparseKeys() []string {
	out := make([]string, len(s.Sparse))
	for i, f := range s.Sparse {
		out[i] = f.Key
	}
	return out
}

// StandardSchemaConfig parameterizes StandardSchema.
type StandardSchemaConfig struct {
	// UserSeq is the number of long user sequence features (ShiftAppend,
	// high d(f), long lists) — the features the paper's RM1 deduplicates
	// in transformer-pooled groups.
	UserSeq int
	// UserElem is the number of element-wise pooled user features
	// (Resample, high d(f), short-to-medium lists) — the ~100 additional
	// deduplicated features per RM.
	UserElem int
	// Item is the number of item features (low d(f)).
	Item int
	// Dense is the number of dense float features.
	Dense int
	// SeqLen is the mean length of sequence features.
	SeqLen int
	// SeqGroupSize is how many user sequence features share one sync
	// group (and thus one grouped IKJT); the paper's RM1 deduplicates 16
	// sequence features in 5 groups. Defaults to 3.
	SeqGroupSize int
	// Seed drives the per-feature parameter draws.
	Seed int64
}

// StandardSchema builds a schema shaped like the paper's characterization:
// user features dominate dataset volume and have high d(f) (the left mass
// of Fig 4); item features sit right of the knee with low d(f).
func StandardSchema(cfg StandardSchemaConfig) *Schema {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sparse []FeatureSpec
	if cfg.SeqLen == 0 {
		cfg.SeqLen = 200
	}
	if cfg.SeqGroupSize <= 0 {
		cfg.SeqGroupSize = 3
	}
	// Sequence features are drawn in sync groups: every member of a group
	// shares one ChangeProb and one SyncGroup tag, so its values update
	// synchronously and the group deduplicates as one IKJT.
	groupProb := 0.0
	for i := 0; i < cfg.UserSeq; i++ {
		if i%cfg.SeqGroupSize == 0 {
			groupProb = 0.02 + 0.10*rng.Float64() // d(f) in [0.88, 0.98]
		}
		sparse = append(sparse, FeatureSpec{
			Key:         fmt.Sprintf("user_seq_%d", i),
			Class:       UserFeature,
			ChangeProb:  groupProb,
			MeanLen:     cfg.SeqLen,
			MaxLen:      cfg.SeqLen * 2,
			Update:      ShiftAppend,
			Cardinality: 1 << 40,
			SyncGroup:   fmt.Sprintf("seq_group_%d", i/cfg.SeqGroupSize),
		})
	}
	for i := 0; i < cfg.UserElem; i++ {
		meanLen := 4 + rng.Intn(28)
		sparse = append(sparse, FeatureSpec{
			Key:         fmt.Sprintf("user_elem_%d", i),
			Class:       UserFeature,
			ChangeProb:  0.02 + 0.18*rng.Float64(), // d(f) in [0.80, 0.98]
			MeanLen:     meanLen,
			MaxLen:      meanLen * 3,
			Update:      Resample,
			Cardinality: 1 << 32,
		})
	}
	for i := 0; i < cfg.Item; i++ {
		meanLen := 1 + rng.Intn(4)
		sparse = append(sparse, FeatureSpec{
			Key:         fmt.Sprintf("item_%d", i),
			Class:       ItemFeature,
			ChangeProb:  0.85 + 0.15*rng.Float64(), // d(f) in [0, 0.15]
			MeanLen:     meanLen,
			MaxLen:      meanLen * 2,
			Update:      Resample,
			Cardinality: 1 << 28,
		})
	}
	s, err := NewSchema(sparse, cfg.Dense)
	if err != nil {
		panic(err) // unreachable: constructed specs are valid
	}
	return s
}
