package datagen

import (
	"math"
	"math/rand"
	"sort"
)

// GeneratorConfig parameterizes a synthetic hourly partition.
type GeneratorConfig struct {
	// Sessions is the number of user sessions in the partition.
	Sessions int
	// MeanSamplesPerSession targets the paper's S (16.5 in §3). Session
	// sizes are drawn log-normally, producing the heavy tail of Fig 3.
	MeanSamplesPerSession float64
	// SigmaSamplesPerSession is the log-normal sigma; larger values fatten
	// the tail. Defaults to 1.1 when zero.
	SigmaSamplesPerSession float64
	// MaxSamplesPerSession caps pathological draws. Defaults to 4096.
	MaxSamplesPerSession int
	// PartitionSpanMicros is the time window the sessions are spread over
	// (defaults to one hour).
	PartitionSpanMicros int64
	// CTR is the positive-label probability.
	CTR float64
	// LabelSignal, when positive, makes labels learnable: the click
	// probability becomes sigmoid(LabelSignal·(userEffect+itemEffect)+bias)
	// where userEffect derives from the user ID and itemEffect from the
	// first item feature's leading ID. Zero keeps pure-noise CTR labels.
	// Learnable labels are needed by experiments that measure model
	// accuracy (the paper's §6.2 "Impacts to Accuracy").
	LabelSignal float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.SigmaSamplesPerSession == 0 {
		c.SigmaSamplesPerSession = 1.1
	}
	if c.MaxSamplesPerSession == 0 {
		c.MaxSamplesPerSession = 4096
	}
	if c.PartitionSpanMicros == 0 {
		c.PartitionSpanMicros = 3600 * 1e6
	}
	if c.CTR == 0 {
		c.CTR = 0.05
	}
	if c.MeanSamplesPerSession == 0 {
		c.MeanSamplesPerSession = 16.5
	}
	return c
}

// Generator produces session-centric synthetic partitions for a schema.
type Generator struct {
	schema *Schema
	cfg    GeneratorConfig
	rng    *rand.Rand
}

// NewGenerator builds a deterministic generator.
func NewGenerator(schema *Schema, cfg GeneratorConfig) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{schema: schema, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Schema returns the generator's schema.
func (g *Generator) Schema() *Schema { return g.schema }

// sessionSize draws a samples-per-session count with the configured
// log-normal distribution, clamped to [1, MaxSamplesPerSession].
func (g *Generator) sessionSize() int {
	sigma := g.cfg.SigmaSamplesPerSession
	// Mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); solve for mu.
	mu := math.Log(g.cfg.MeanSamplesPerSession) - sigma*sigma/2
	n := int(math.Round(math.Exp(g.rng.NormFloat64()*sigma + mu)))
	if n < 1 {
		n = 1
	}
	if n > g.cfg.MaxSamplesPerSession {
		n = g.cfg.MaxSamplesPerSession
	}
	return n
}

func (g *Generator) freshList(f FeatureSpec) []int64 {
	// Lengths are uniform around the mean, clamped to [1, MaxLen], giving
	// E[len] == MeanLen.
	span := f.MeanLen // uniform in [MeanLen-span/2, MeanLen+span/2]
	n := f.MeanLen - span/2 + g.rng.Intn(span+1)
	if n < 1 {
		n = 1
	}
	if n > f.MaxLen {
		n = f.MaxLen
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = g.rng.Int63n(f.Cardinality)
	}
	return out
}

func (g *Generator) updateList(f FeatureSpec, cur []int64) []int64 {
	switch f.Update {
	case ShiftAppend:
		// Append one new ID; slide the window if at capacity. This creates
		// the shifted partial duplicates of §7.
		next := append([]int64(nil), cur...)
		next = append(next, g.rng.Int63n(f.Cardinality))
		if len(next) > f.MaxLen {
			next = next[len(next)-f.MaxLen:]
		}
		return next
	default:
		return g.freshList(f)
	}
}

// GeneratePartition synthesizes one hourly partition. The returned slice is
// ordered by inference timestamp, which interleaves sessions exactly as the
// paper's data generation infrastructure does ("the data generation
// infrastructure typically orders samples based on inference time", §3).
func (g *Generator) GeneratePartition() []Sample {
	var out []Sample
	for sess := 0; sess < g.cfg.Sessions; sess++ {
		out = append(out, g.generateSession(int64(sess+1))...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out
}

// generateSession produces the samples of one session. Feature values
// persist across the session's samples and change with each feature's
// ChangeProb, generating the duplication structure of §3.
func (g *Generator) generateSession(sessionID int64) []Sample {
	n := g.sessionSize()
	userID := g.rng.Int63n(1 << 40)

	// Impression timestamps are uniform over the partition window (a
	// session is the set of a user's impressions within the fixed window,
	// paper §3 fn. 1). With many concurrent sessions this interleaves the
	// inference-time-ordered stream so heavily that a 4096-sample batch
	// sees ~1 sample per session, matching Fig 3 (right).
	times := make([]int64, n)
	for i := range times {
		times[i] = g.rng.Int63n(g.cfg.PartitionSpanMicros)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	cur := make([][]int64, len(g.schema.Sparse))
	for fi, f := range g.schema.Sparse {
		cur[fi] = g.freshList(f)
	}

	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			// Features in the same SyncGroup share one uniform draw per
			// step, so equal-ChangeProb group members change together —
			// the synchronous-update property grouped IKJTs exploit.
			groupDraws := make(map[string]float64)
			for fi, f := range g.schema.Sparse {
				var u float64
				if f.SyncGroup != "" {
					v, ok := groupDraws[f.SyncGroup]
					if !ok {
						v = g.rng.Float64()
						groupDraws[f.SyncGroup] = v
					}
					u = v
				} else {
					u = g.rng.Float64()
				}
				if u < f.ChangeProb {
					cur[fi] = g.updateList(f, cur[fi])
				}
			}
		}
		sp := make([][]int64, len(cur))
		copy(sp, cur) // value lists are immutable once emitted; share them
		dense := make([]float32, g.schema.Dense)
		for d := range dense {
			dense[d] = g.rng.Float32()
		}
		label := int8(0)
		if g.cfg.LabelSignal > 0 {
			p := g.clickProbability(userID, sp)
			if g.rng.Float64() < p {
				label = 1
			}
		} else if g.rng.Float64() < g.cfg.CTR {
			label = 1
		}
		samples = append(samples, Sample{
			SessionID: sessionID,
			UserID:    userID,
			RequestID: g.rng.Int63(),
			Timestamp: times[i],
			Sparse:    sp,
			Dense:     dense,
			Label:     label,
		})
	}
	return samples
}

// clickProbability computes the learnable label model: a logistic over a
// user effect and an item effect, centered so the base rate stays near
// CTR. Effects are deterministic hashes of IDs, so a model with enough
// embedding capacity can learn them — and can overfit tail IDs, which is
// the mechanism behind the paper's clustering-accuracy observation.
func (g *Generator) clickProbability(userID int64, sparse [][]int64) float64 {
	signed := func(v int64) float64 {
		x := uint64(v) * 0x9E3779B97F4A7C15
		x ^= x >> 33
		return float64(int64(x)) / float64(math.MaxInt64) // in [-1, 1]
	}
	// Both effects derive from observable feature values so the model can
	// learn them: the user effect from the leading ID of the first user
	// feature (a huge ID space — memorizable on train users, unseen for
	// held-out users), the item effect from the first item feature (a
	// small ID space — generalizes).
	userEffect := signed(userID)
	itemEffect := 0.0
	haveUser := false
	for fi, f := range g.schema.Sparse {
		if f.Class == UserFeature && !haveUser && len(sparse[fi]) > 0 {
			userEffect = signed(sparse[fi][0])
			haveUser = true
		}
		if f.Class == ItemFeature && itemEffect == 0 && len(sparse[fi]) > 0 {
			itemEffect = signed(sparse[fi][0])
		}
	}
	base := math.Log(g.cfg.CTR / (1 - g.cfg.CTR))
	z := base + g.cfg.LabelSignal*(userEffect+itemEffect)
	return 1 / (1 + math.Exp(-z))
}

// GenerateSessions synthesizes the partition but returns samples grouped by
// session (session-major order), the layout a clustered table produces.
// Used by tests to compare against the ETL clustering output.
func (g *Generator) GenerateSessions() [][]Sample {
	out := make([][]Sample, 0, g.cfg.Sessions)
	for sess := 0; sess < g.cfg.Sessions; sess++ {
		out = append(out, g.generateSession(int64(sess+1)))
	}
	return out
}
