package dpp_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/landing"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/storage"
	"repro/internal/testutil"
)

func followSchema() *datagen.Schema {
	return datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
}

// hourSamples is the deterministic sample block for one live hour: the
// same (hour, sessions, seed) always produces the same rows, so a
// reference run can land byte-identical files.
func hourSamples(schema *datagen.Schema, hour int64, sessions int, seed int64) []datagen.Sample {
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 6, Seed: seed + hour,
	})
	return etl.ClusterBySession(gen.GeneratePartition())
}

// TestFollowMatchesFrozenLocal is the Follow determinism contract (run
// under -race in CI): a session opened with Follow before files land
// observes the landings mid-stream, and after EndFollow its complete
// stream is byte-identical to a cold session opened on the frozen
// publish-order file list.
func TestFollowMatchesFrozenLocal(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 40)
	svc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Following() {
		t.Fatal("follow session does not report Following")
	}

	// Land two live hours while the session tails.
	schema := followSchema()
	total := len(env.samples)
	for _, hour := range []int64{3600, 7200} {
		samples := hourSamples(schema, hour, 25, 1234)
		w, err := landing.NewWriter(landing.Config{
			Store: env.store, Catalog: env.catalog, Table: "tbl", Schema: schema, FlushRows: 96,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(hour, samples...); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		total += len(samples)
	}

	batchSize := dedupSpec().BatchSize
	full := total / batchSize
	var gotEnc [][]byte
	rows := 0
	for len(gotEnc) < full {
		b, err := sess.Next(context.Background())
		if err != nil {
			t.Fatalf("batch %d: %v", len(gotEnc), err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		gotEnc = append(gotEnc, buf.Bytes())
		rows += b.Size
	}
	if st := svc.Stats(); st.Follow.Sessions != 1 || st.Follow.ExtendedFiles == 0 {
		t.Fatalf("follow stats while tailing: %+v", st.Follow)
	}
	sess.EndFollow()
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		gotEnc = append(gotEnc, buf.Bytes())
		rows += b.Size
	}
	if rows != total {
		t.Fatalf("follow stream delivered %d rows, landed %d", rows, total)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Freeze the prefix: the publish-sequence order is exactly the order
	// the Follow session emitted, so a cold session on that explicit
	// file list must produce the identical bytes.
	pubs, err := env.catalog.PublishedFiles("tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]string, len(pubs))
	for i, pf := range pubs {
		files[i] = pf.Path
	}
	cold, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Files: files})
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := drainSession(t, cold)
	if len(gotEnc) != len(wantEnc) || len(wantEnc) == 0 {
		t.Fatalf("follow stream produced %d batches, frozen prefix %d (nonzero)", len(gotEnc), len(wantEnc))
	}
	for i := range wantEnc {
		if !bytes.Equal(gotEnc[i], wantEnc[i]) {
			t.Fatalf("batch %d differs between follow stream and frozen prefix", i)
		}
	}

	svc.Close()
	testutil.WaitForGoroutines(t, before)
}

// TestFollowOpenRejections: Follow composes with neither ShareScans nor
// an explicit Files list, and needs a catalog that can tail.
func TestFollowOpenRejections(t *testing.T) {
	env := newTestEnv(t, 5)
	svc := newService(t, env, dpp.Config{})

	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Follow: true, ShareScans: true}); err == nil ||
		!strings.Contains(err.Error(), "Follow") {
		t.Fatalf("Follow+ShareScans admitted: %v", err)
	}
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Follow: true, Files: files}); err == nil ||
		!strings.Contains(err.Error(), "Follow") {
		t.Fatalf("Follow+Files admitted: %v", err)
	}
}

// TestRetentionInvalidatesBothTiers is the stale-cache-after-retention
// regression test: DropPartition must purge the dropped files from the
// decoded ScanCache AND the raw-byte CachingBackend, a post-drop read of
// a dropped file must reach the (empty) store and fail rather than serve
// stale cached bytes, and decoded residency must not double-charge the
// raw tier in the first place.
func TestRetentionInvalidatesBothTiers(t *testing.T) {
	schema := followSchema()
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()

	// Land two hours in exact multiples of the batch size so every file
	// seals at 64 rows: all files take the aligned ScanCache path.
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	land := func(hour int64, rows int) {
		samples := hourSamples(schema, hour, rows/4, 77)
		for len(samples) < rows {
			samples = append(samples, samples...)
		}
		if err := w.Append(hour, samples[:rows]...); err != nil {
			t.Fatal(err)
		}
	}
	land(0, 256)    // 4 aligned files
	land(3600, 192) // 3 aligned files
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cached := storage.NewCachingBackend(store, 64<<20)
	svc, err := dpp.New(dpp.Config{Backend: cached, Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Warm both tiers through a ShareScans drain.
	warm, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), ShareScans: true})
	if err != nil {
		t.Fatal(err)
	}
	warmEnc := drainSession(t, warm)
	if len(warmEnc) != (256+192)/64 {
		t.Fatalf("warm drain produced %d batches, want %d", len(warmEnc), (256+192)/64)
	}
	sc := svc.Stats().Cache
	if sc.Entries != 7 || sc.Misses != 7 {
		t.Fatalf("scan cache after warm drain: %+v", sc)
	}
	// The double-caching fix: every file resident in the decoded tier
	// was demoted out of the raw tier — decoded data is charged once.
	if rc := cached.Stats(); rc.Entries != 0 || rc.Invalidations == 0 {
		t.Fatalf("raw tier still pins bytes for decoded-resident files: %+v", rc)
	}

	droppedFiles, err := catalog.Files("tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := catalog.DropPartition(store, "tbl", 0); err != nil || n != 4 {
		t.Fatalf("DropPartition = %d, %v", n, err)
	}
	sc = svc.Stats().Cache
	if sc.Invalidations != 4 || sc.Entries != 3 {
		t.Fatalf("scan cache after drop: %+v", sc)
	}

	// A read that names a dropped file bypasses both (purged) tiers,
	// reaches the store, and fails — it cannot serve stale bytes.
	doomed, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Files: droppedFiles[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Next(context.Background()); err == nil || err == io.EOF {
		t.Fatalf("read of dropped file returned %v, want a storage error", err)
	}
	doomed.Close()

	// The surviving partition still serves, now entirely from the
	// decoded tier.
	rerun, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), ShareScans: true})
	if err != nil {
		t.Fatal(err)
	}
	rerunEnc := drainSession(t, rerun)
	if len(rerunEnc) != 192/64 {
		t.Fatalf("post-drop drain produced %d batches, want %d", len(rerunEnc), 192/64)
	}
	sc = svc.Stats().Cache
	if sc.Hits != 3 || sc.Misses != 7 {
		t.Fatalf("post-drop drain recomputed dropped state: %+v", sc)
	}
}

// TestDropFailsInFlightSession: a session mid-stream over a partition
// that retention drops fails cleanly — an error from Next, never a hang
// and never stale rows from a purged cache.
func TestDropFailsInFlightSession(t *testing.T) {
	schema := followSchema()
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := hourSamples(schema, 0, 128, 31)
	for len(samples) < 512 {
		samples = append(samples, samples...)
	}
	if err := w.Append(0, samples[:512]...); err != nil { // 8 aligned files
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cached := storage.NewCachingBackend(store, 64<<20)
	svc, err := dpp.New(dpp.Config{Backend: cached, Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sess, err := svc.Open(context.Background(), dpp.Spec{
		Spec: dedupSpec(), Readers: 1, Buffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := catalog.DropPartition(store, "tbl", 0); err != nil {
		t.Fatal(err)
	}
	// With Buffer 1 at most a few batches were decoded before the drop;
	// the worker's next file read hits the purged store and fails.
	batches := 1
	var streamErr error
	for {
		_, err := sess.Next(context.Background())
		if err != nil {
			streamErr = err
			break
		}
		batches++
	}
	if streamErr == io.EOF || batches >= 8 {
		t.Fatalf("dropped-partition session delivered %d batches and ended %v, want a mid-stream error", batches, streamErr)
	}
	if err := sess.Close(); err != nil { // Close is clean; the error already surfaced via Next
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SessionErrors == 0 || st.ActiveSessions != 0 {
		t.Fatalf("errored session not retired as an error: %+v", st)
	}
}

// TestChaosLiveTail interleaves, per seed, a landing writer growing the
// table, a Follow session consuming it, and retention drops gated just
// behind the consumer's position — and asserts the full follow stream is
// byte-identical to a cold run over a frozen reference landing with the
// identical flush schedule, that the drops invalidated cached bytes, and
// that nothing leaks.
func TestChaosLiveTail(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			before := runtime.NumGoroutine()
			schema := followSchema()

			const hours = 5
			blocks := make([][]datagen.Sample, hours)
			cum := make([]int, hours) // cumulative rows through hour h
			total := 0
			for h := range blocks {
				blocks[h] = hourSamples(schema, int64(h)*3600, 16, 500+seed)
				total += len(blocks[h])
				cum[h] = total
			}

			// Reference: the same blocks landed by one writer with the same
			// flush schedule into a frozen store — byte-identical files —
			// drained cold in publish order.
			refStore, refCatalog := lakefs.NewStore(), lakefs.NewCatalog()
			refW, err := landing.NewWriter(landing.Config{
				Store: refStore, Catalog: refCatalog, Table: "tbl", Schema: schema, FlushRows: 48,
			})
			if err != nil {
				t.Fatal(err)
			}
			for h := range blocks {
				if err := refW.Append(int64(h)*3600, blocks[h]...); err != nil {
					t.Fatal(err)
				}
			}
			if err := refW.Close(); err != nil {
				t.Fatal(err)
			}
			refSvc, err := dpp.New(dpp.Config{Backend: refStore, Catalog: refCatalog})
			if err != nil {
				t.Fatal(err)
			}
			pubs, err := refCatalog.PublishedFiles("tbl", 0)
			if err != nil {
				t.Fatal(err)
			}
			refFiles := make([]string, len(pubs))
			for i, pf := range pubs {
				refFiles[i] = pf.Path
			}
			refSess, err := refSvc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Files: refFiles})
			if err != nil {
				t.Fatal(err)
			}
			wantEnc := drainSession(t, refSess)
			refSvc.Close()

			// Chaos run: hour 0 lands, a Follow session opens, then a lander
			// goroutine feeds hours 1..H with seeded jitter while the
			// consumer drops each hour as soon as it is provably consumed.
			store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
			cached := storage.NewCachingBackend(store, 64<<20)
			w, err := landing.NewWriter(landing.Config{
				Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 48,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(0, blocks[0]...); err != nil {
				t.Fatal(err)
			}
			svc, err := dpp.New(dpp.Config{Backend: cached, Catalog: catalog})
			if err != nil {
				t.Fatal(err)
			}
			sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Follow: true})
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed))
			landerDone := make(chan error, 1)
			go func() {
				for h := 1; h < hours; h++ {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					if err := w.Append(int64(h)*3600, blocks[h]...); err != nil {
						landerDone <- err
						return
					}
				}
				landerDone <- w.Close()
			}()

			batchSize := dedupSpec().BatchSize
			full := total / batchSize
			var gotEnc [][]byte
			rows, dropped := 0, 0
			for len(gotEnc) < full {
				b, err := sess.Next(context.Background())
				if err != nil {
					t.Fatalf("batch %d: %v", len(gotEnc), err)
				}
				var buf bytes.Buffer
				if err := b.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				gotEnc = append(gotEnc, buf.Bytes())
				rows += b.Size
				// Retention chases the consumer: drop hour h only once every
				// row of hour h+1 has been consumed — by then the workers are
				// provably past hour h's files, so the drop exercises cache
				// invalidation without racing a pending read.
				for dropped < hours-2 && rows >= cum[dropped+1] {
					if _, err := catalog.DropPartition(store, "tbl", int64(dropped)*3600); err != nil {
						t.Fatal(err)
					}
					dropped++
				}
			}
			if err := <-landerDone; err != nil {
				t.Fatal(err)
			}
			sess.EndFollow()
			for {
				b, err := sess.Next(context.Background())
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := b.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				gotEnc = append(gotEnc, buf.Bytes())
				rows += b.Size
			}
			if rows != total {
				t.Fatalf("chaos follow stream delivered %d rows, landed %d", rows, total)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}

			if dropped == 0 {
				t.Fatal("chaos schedule never dropped a partition")
			}
			if rc := cached.Stats(); rc.Invalidations == 0 {
				t.Fatalf("drops purged nothing from the raw tier: %+v", rc)
			}
			if len(gotEnc) != len(wantEnc) || len(wantEnc) == 0 {
				t.Fatalf("chaos stream produced %d batches, reference %d (nonzero)", len(gotEnc), len(wantEnc))
			}
			for i := range wantEnc {
				if !bytes.Equal(gotEnc[i], wantEnc[i]) {
					t.Fatalf("batch %d differs between chaos follow stream and frozen reference", i)
				}
			}

			svc.Close()
			testutil.WaitForGoroutines(t, before)
		})
	}
}
