package front

import (
	"sort"
	"sync"

	"repro/internal/dpp"
)

// GovernorConfig wires a Governor.
type GovernorConfig struct {
	// Budget is the total worker count the governor may hand out across
	// every arbitrated session in the process.
	Budget int
	// Weights are per-tenant fair-share weights; absent or non-positive
	// entries count as 1.
	Weights map[string]int
}

// Governor owns a service-wide worker budget and implements
// dpp.WorkerArbiter: each session's AutoScaler keeps observing its own
// starvation and proposing a size, but the proposal is a bid, not an
// allocation. On every bid (and every session arrival or departure) the
// governor re-runs one deterministic weighted max-min fair share over
// all live sessions and actuates Session.Resize on whichever sessions
// changed.
//
// The split is computed by water-filling: every session first gets one
// worker (a pool cannot run below one), then the remaining budget goes
// one worker at a time to the *most starved tenant* — the one with the
// smallest allocated/weight ratio that still has a session wanting more
// — and, within that tenant, to the session with the largest unmet bid.
// All ties break on fixed orderings (tenant name, then registration
// sequence), so a given set of bids always yields the same split: two
// tenants with weights 1:2 both saturating their bids converge to a
// 1:2 worker split within ±1 regardless of arrival or bid order.
type Governor struct {
	budget  int
	weights map[string]int

	mu         sync.Mutex
	seq        int64
	members    map[dpp.ScaleTarget]*member
	rebalances int64
}

type member struct {
	tenant  string
	target  dpp.ScaleTarget
	seq     int64
	want    int
	granted int
}

// NewGovernor builds a Governor. A non-positive budget disables
// arbitration (every bid passes straight through to Resize).
func NewGovernor(cfg GovernorConfig) *Governor {
	return &Governor{
		budget:  cfg.Budget,
		weights: cfg.Weights,
		members: make(map[dpp.ScaleTarget]*member),
	}
}

// Budget returns the configured worker budget.
func (g *Governor) Budget() int { return g.budget }

func (g *Governor) weight(tenant string) int {
	if w := g.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// Register enrolls a session under its tenant and immediately
// rebalances, clamping the newcomer (and everyone else) into the
// budget. Implements dpp.WorkerArbiter.
func (g *Governor) Register(tenant string, t dpp.ScaleTarget) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[t]; ok {
		return
	}
	g.seq++
	want := t.SchedulerStats().Workers
	if want < 1 {
		want = 1
	}
	g.members[t] = &member{tenant: tenant, target: t, seq: g.seq, want: want, granted: want}
	g.rebalanceLocked()
}

// Unregister drops a departed session and redistributes its workers.
// Implements dpp.WorkerArbiter.
func (g *Governor) Unregister(t dpp.ScaleTarget) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[t]; !ok {
		return
	}
	delete(g.members, t)
	g.rebalanceLocked()
}

// Bid records that t's controller wants n workers, rebalances, and
// returns the count actually granted to t. Implements
// dpp.WorkerArbiter.
func (g *Governor) Bid(tenant string, t dpp.ScaleTarget, n int) int {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	m := g.members[t]
	if m == nil {
		// Not arbitrated (registered elsewhere or already departed):
		// pass the bid through as a plain resize.
		g.mu.Unlock()
		return t.Resize(n)
	}
	m.want = n
	g.rebalanceLocked()
	granted := m.granted
	g.mu.Unlock()
	return granted
}

// rebalanceLocked recomputes the fair split and actuates every changed
// member. Holding g.mu across the Resize calls is safe: Session.Resize
// takes only the session's own pool lock and never calls back into the
// governor (the autoscaler's bids come through Bid, on its own
// goroutine, and queue behind the mutex).
func (g *Governor) rebalanceLocked() {
	if len(g.members) == 0 {
		return
	}
	g.rebalances++
	if g.budget <= 0 {
		// Arbitration disabled: grant every bid as-is.
		for _, m := range g.members {
			if m.granted != m.want {
				m.granted = m.want
				m.target.Resize(m.granted)
			}
		}
		return
	}

	// Fixed orderings for determinism: members by (tenant, seq), and a
	// per-tenant allocation tally for the starvation ratio.
	order := make([]*member, 0, len(g.members))
	for _, m := range g.members {
		order = append(order, m)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].tenant != order[j].tenant {
			return order[i].tenant < order[j].tenant
		}
		return order[i].seq < order[j].seq
	})
	grants := make(map[*member]int, len(order))
	alloc := make(map[string]int)
	spent := 0
	for _, m := range order {
		grants[m] = 1 // floor: a pool cannot go below one worker
		alloc[m.tenant]++
		spent++
	}
	for spent < g.budget {
		// Most starved tenant with unmet demand: smallest alloc/weight,
		// compared exactly as alloc_i*weight_j < alloc_j*weight_i.
		var pick *member
		var pickTenant string
		for _, m := range order {
			if grants[m] >= m.want {
				continue
			}
			t := m.tenant
			if pick == nil ||
				alloc[t]*g.weight(pickTenant) < alloc[pickTenant]*g.weight(t) {
				pick, pickTenant = m, t
				continue
			}
			if t == pickTenant && m.want-grants[m] > pick.want-grants[pick] {
				// Within the chosen tenant, the deepest unmet bid first
				// (order already breaks remaining ties by seq).
				pick = m
			}
		}
		if pick == nil {
			break // every bid is met; leave the rest of the budget idle
		}
		grants[pick]++
		alloc[pickTenant]++
		spent++
	}
	for _, m := range order {
		if n := grants[m]; n != m.granted {
			m.granted = n
			m.target.Resize(n)
		}
	}
}

// TenantGrant is one tenant's live share of the budget.
type TenantGrant struct {
	Tenant   string
	Sessions int
	Want     int // summed live bids
	Granted  int // summed grants
}

// GovernorStats snapshots the governor.
type GovernorStats struct {
	Budget     int
	Rebalances int64
	Tenants    []TenantGrant // sorted by tenant name
}

// Stats snapshots the governor's per-tenant grants.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	byTenant := make(map[string]*TenantGrant)
	for _, m := range g.members {
		tg := byTenant[m.tenant]
		if tg == nil {
			tg = &TenantGrant{Tenant: m.tenant}
			byTenant[m.tenant] = tg
		}
		tg.Sessions++
		tg.Want += m.want
		tg.Granted += m.granted
	}
	st := GovernorStats{Budget: g.budget, Rebalances: g.rebalances}
	for _, tg := range byTenant {
		st.Tenants = append(st.Tenants, *tg)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// Granted returns one tenant's currently granted worker total (for
// per-tenant metric series).
func (g *Governor) Granted(tenant string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	total := 0
	for _, m := range g.members {
		if m.tenant == tenant {
			total += m.granted
		}
	}
	return total
}
