package front

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dpp"
)

// TestParseTenants pins the tenants-file grammar: whitespace fields,
// comments, optional limit columns, MiB scaling, multi-token tenants,
// and every malformed-line rejection.
func TestParseTenants(t *testing.T) {
	input := `
# fleet tenants
team-a tok-a 1 4 64
team-b tok-b 2          # weight only
team-b tok-b2           # second token, limits already set
solo   tok-solo
`
	tokens, limits, err := ParseTenants(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	wantTokens := StaticTokens{
		"tok-a": "team-a", "tok-b": "team-b", "tok-b2": "team-b", "tok-solo": "solo",
	}
	if len(tokens) != len(wantTokens) {
		t.Fatalf("parsed %d tokens, want %d", len(tokens), len(wantTokens))
	}
	for tok, tenant := range wantTokens {
		if tokens[tok] != tenant {
			t.Errorf("token %q -> %q, want %q", tok, tokens[tok], tenant)
		}
	}
	if lim := limits["team-a"]; lim.Weight != 1 || lim.MaxSessions != 4 || lim.MaxBytes != 64<<20 {
		t.Errorf("team-a limits %+v, want weight 1, 4 sessions, 64 MiB", lim)
	}
	if lim := limits["team-b"]; lim.Weight != 2 || lim.MaxSessions != 0 || lim.MaxBytes != 0 {
		t.Errorf("team-b limits %+v, want weight 2 and unlimited otherwise", lim)
	}
	if lim := limits["solo"]; lim != (Limits{}) {
		t.Errorf("solo limits %+v, want all-zero (unlimited)", lim)
	}

	for name, bad := range map[string]string{
		"one field":       "lonely\n",
		"too many fields": "t tok 1 2 3 4\n",
		"bad weight":      "t tok nope\n",
		"negative cap":    "t tok 1 -2\n",
		"duplicate token": "a tok\nb tok\n",
		"empty file":      "# only comments\n",
	} {
		if _, _, err := ParseTenants(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: ParseTenants accepted %q", name, bad)
		}
	}
}

// TestStaticTokensAuthenticate: unknown and empty tokens are refused
// with ErrUnauthorized even if an empty key sneaks into the table.
func TestStaticTokensAuthenticate(t *testing.T) {
	auth := StaticTokens{"tok-a": "team-a", "": "sneaky"}
	if tenant, err := auth.Authenticate("tok-a"); err != nil || tenant != "team-a" {
		t.Fatalf("Authenticate(tok-a) = %q, %v", tenant, err)
	}
	for _, tok := range []string{"", "wrong"} {
		if _, err := auth.Authenticate(tok); !errors.Is(err, ErrUnauthorized) {
			t.Errorf("Authenticate(%q) = %v, want ErrUnauthorized", tok, err)
		}
	}
}

// TestGateAdmission covers the whole admission path over one gate: auth
// refusal, session-cap and byte-budget quota refusals, lease release
// idempotence, and the per-tenant accounting each decision leaves
// behind.
func TestGateAdmission(t *testing.T) {
	g := NewGate(Config{
		Auth: StaticTokens{"tok-a": "team-a", "tok-b": "team-b"},
		Limits: map[string]Limits{
			"team-a": {MaxSessions: 2},
			"team-b": {MaxBytes: 100},
		},
	})

	if _, err := g.Admit("wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("bad token admitted: %v", err)
	}
	if st := g.Stats(); st.AuthFailures != 1 || len(st.Tenants) != 0 {
		t.Fatalf("stats after auth refusal %+v, want 1 auth failure and no tenant state", st)
	}

	l1, err := g.Admit("tok-a")
	if err != nil || l1.Tenant != "team-a" {
		t.Fatalf("Admit(tok-a) = %+v, %v", l1, err)
	}
	l2, err := g.Admit("tok-a")
	if err != nil {
		t.Fatalf("second admit under a 2-session cap: %v", err)
	}
	if _, err := g.Admit("tok-a"); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("third admit = %v, want ErrOverQuota at the session cap", err)
	}
	l2.Release()
	l2.Release() // idempotent: releasing twice must not free two slots
	if ts := g.TenantStats("team-a"); ts.Active != 1 || ts.Admitted != 2 {
		t.Fatalf("team-a after release %+v, want 1 active / 2 admitted", ts)
	}
	if l3, err := g.Admit("tok-a"); err != nil {
		t.Fatalf("admit after release: %v", err)
	} else {
		l3.Release()
	}
	l1.Release()

	// Byte budgets are cumulative: the charge survives the lease.
	lb, err := g.Admit("tok-b")
	if err != nil {
		t.Fatal(err)
	}
	lb.AddBytes(150)
	lb.Release()
	if _, err := g.Admit("tok-b"); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("admit over the byte budget = %v, want ErrOverQuota", err)
	}
	if st := g.Stats(); st.QuotaRejects != 2 {
		t.Fatalf("stats %+v, want 2 quota rejects (session cap + byte budget)", st)
	}
}

// TestGateNoAuthDefaultsTenant: without an Authenticator every
// handshake lands on DefaultTenant, still subject to its limits.
func TestGateNoAuthDefaultsTenant(t *testing.T) {
	g := NewGate(Config{DefaultLimits: Limits{MaxSessions: 1}})
	l, err := g.Admit("ignored-token")
	if err != nil || l.Tenant != DefaultTenant {
		t.Fatalf("Admit = %+v, %v, want the default tenant", l, err)
	}
	if _, err := g.Admit(""); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("second admit = %v, want ErrOverQuota under DefaultLimits", err)
	}
	l.Release()
}

// TestGateDrain: after Drain every admit — valid token or not — fails
// with ErrDraining (whose text carries "draining" for the fleet's
// route-around match), and the refusals are counted.
func TestGateDrain(t *testing.T) {
	g := NewGate(Config{Auth: StaticTokens{"tok-a": "team-a"}})
	g.Drain()
	g.Drain() // idempotent
	if !g.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	_, err := g.Admit("tok-a")
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("admit while draining = %v, want ErrDraining", err)
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("drain refusal %q must contain \"draining\" for clients to match", err)
	}
	if st := g.Stats(); !st.Draining || st.DrainRejects != 1 {
		t.Fatalf("stats %+v, want draining with 1 drain reject", st)
	}
}

// fakeTarget is a ScaleTarget whose pool is a plain integer — the
// governor's Resize actuations land here.
type fakeTarget struct {
	name    string
	workers int
}

func (f *fakeTarget) SchedulerStats() dpp.SchedulerStats {
	return dpp.SchedulerStats{Workers: f.workers}
}

func (f *fakeTarget) Resize(n int) int {
	f.workers = n
	return n
}

// TestGovernorFairShare is the fair-share convergence pin: two starved
// tenants with weights 1:2 bidding far past the budget must converge to
// a 1:2 split of the whole budget within ±1, deterministically, and
// independent of arrival or bid order.
func TestGovernorFairShare(t *testing.T) {
	const budget = 9
	for name, order := range map[string][2]string{
		"a-first": {"team-a", "team-b"},
		"b-first": {"team-b", "team-a"},
	} {
		t.Run(name, func(t *testing.T) {
			g := NewGovernor(GovernorConfig{
				Budget:  budget,
				Weights: map[string]int{"team-a": 1, "team-b": 2},
			})
			targets := map[string][]*fakeTarget{}
			for _, tenant := range order {
				for i := 0; i < 2; i++ {
					ft := &fakeTarget{name: fmt.Sprintf("%s-%d", tenant, i), workers: 1}
					targets[tenant] = append(targets[tenant], ft)
					g.Register(tenant, ft)
				}
			}
			// Both tenants saturate: every session bids for the whole budget.
			for _, tenant := range order {
				for _, ft := range targets[tenant] {
					g.Bid(tenant, ft, budget)
				}
			}
			grant := func(tenant string) int {
				total := 0
				for _, ft := range targets[tenant] {
					total += ft.workers
				}
				if got := g.Granted(tenant); got != total {
					t.Fatalf("%s: Granted() %d disagrees with actuated pools %d", tenant, got, total)
				}
				return total
			}
			a, b := grant("team-a"), grant("team-b")
			if a+b != budget {
				t.Fatalf("split %d+%d spends %d, want the whole budget %d", a, b, a+b, budget)
			}
			// Ideal 1:2 split of 9 is 3:6; the contract allows ±1.
			if a < 2 || a > 4 || b < 5 || b > 7 {
				t.Fatalf("split a=%d b=%d, want 3:6 within ±1", a, b)
			}
			if b < 2*a-1 {
				t.Fatalf("split a=%d b=%d does not respect the 1:2 weighting", a, b)
			}

			// Departure redistributes: with team-b gone, team-a's sessions
			// absorb the budget up to their bids.
			for _, ft := range targets["team-b"] {
				g.Unregister(ft)
			}
			if got := grant("team-a"); got != budget {
				t.Fatalf("after team-b departed, team-a holds %d workers, want the full budget %d", got, budget)
			}
			if st := g.Stats(); st.Rebalances < 1 || st.Budget != budget {
				t.Fatalf("governor stats %+v", st)
			}
		})
	}
}

// TestGovernorDeterministicSplit: the same membership and bids always
// produce the same per-session grants (the water-filling is seeded by
// fixed orderings, not map iteration).
func TestGovernorDeterministicSplit(t *testing.T) {
	split := func() []int {
		g := NewGovernor(GovernorConfig{Budget: 7, Weights: map[string]int{"x": 1, "y": 3}})
		var fts []*fakeTarget
		for i := 0; i < 4; i++ {
			ft := &fakeTarget{workers: 1}
			fts = append(fts, ft)
			tenant := "x"
			if i%2 == 1 {
				tenant = "y"
			}
			g.Register(tenant, ft)
			g.Bid(tenant, ft, 3+i)
		}
		out := make([]int, len(fts))
		for i, ft := range fts {
			out[i] = ft.workers
		}
		return out
	}
	first := split()
	for run := 0; run < 20; run++ {
		if got := split(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("run %d split %v, first run %v — arbitration is nondeterministic", run, got, first)
		}
	}
}

// TestGovernorUnlimitedBudget: budget <= 0 disables arbitration — every
// bid passes through to Resize unchanged.
func TestGovernorUnlimitedBudget(t *testing.T) {
	g := NewGovernor(GovernorConfig{})
	ft := &fakeTarget{workers: 1}
	g.Register("t", ft)
	if got := g.Bid("t", ft, 17); got != 17 || ft.workers != 17 {
		t.Fatalf("bid under a disabled budget granted %d (pool %d), want 17", got, ft.workers)
	}
}

// TestGovernorMetBidsLeaveBudgetIdle: the governor never grants above a
// session's own bid — surplus budget stays idle rather than inflating
// pools past what their controllers asked for.
func TestGovernorMetBidsLeaveBudgetIdle(t *testing.T) {
	g := NewGovernor(GovernorConfig{Budget: 100})
	ft := &fakeTarget{workers: 1}
	g.Register("t", ft)
	if got := g.Bid("t", ft, 3); got != 3 || ft.workers != 3 {
		t.Fatalf("granted %d (pool %d), want exactly the 3-worker bid", got, ft.workers)
	}
}

// TestGovernorPassThroughUnregistered: a bid from a target the governor
// never registered is a plain resize, not a silent drop.
func TestGovernorPassThroughUnregistered(t *testing.T) {
	g := NewGovernor(GovernorConfig{Budget: 4})
	ft := &fakeTarget{workers: 1}
	if got := g.Bid("ghost", ft, 2); got != 2 || ft.workers != 2 {
		t.Fatalf("unregistered bid granted %d (pool %d), want 2", got, ft.workers)
	}
}
