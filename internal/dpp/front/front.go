// Package front is the service's multi-tenant front door: everything
// that must happen to an `open` handshake before any session state is
// allocated. It decides three things, in order —
//
//  1. Who is this? An Authenticator maps the handshake's tenant token
//     to a tenant name (StaticTokens is the file-backed implementation
//     recd-serve -tenants uses). No token matches no tenant: the
//     connection is refused before a spec is even decoded into a
//     session.
//  2. May they open? The Gate enforces per-tenant Limits — concurrent
//     sessions and cumulative streamed bytes — and refuses admission
//     outright while the service drains. Every admitted session holds
//     a Lease; releasing it frees the concurrency slot, so a parked
//     resumable session does not pin quota while its client is gone.
//  3. How many workers do they get? The Governor owns one service-wide
//     worker budget and splits it between tenants by weighted max-min
//     fair share. Each session's AutoScaler keeps running exactly as
//     before, but its Resize calls become *bids*: the governor grants
//     what the budget and the tenant's weight allow and actuates
//     Session.Resize itself.
//
// The package sits above dpp (it arbitrates dpp sessions via the
// dpp.WorkerArbiter interface) and below dppnet (the server calls
// Gate.Admit during the handshake); it imports dpp only, so the
// dependency order stays reader → dpp → front → dppnet.
package front

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// DefaultTenant is the tenant every session is accounted to when the
// gate runs without an Authenticator (single-tenant deployments keep
// working with no token anywhere).
const DefaultTenant = "default"

// Typed refusal reasons. They cross the wire as error-frame text, so
// clients match them by message; in-process callers use errors.Is.
var (
	// ErrUnauthorized: the handshake token matched no tenant.
	ErrUnauthorized = errors.New("front: unauthorized")
	// ErrOverQuota: the tenant is at a configured limit.
	ErrOverQuota = errors.New("front: over quota")
	// ErrDraining: the service is draining and admits no new sessions.
	// The text deliberately contains "draining" — fleet clients route
	// around a draining shard by matching it (see dppshard).
	ErrDraining = errors.New("front: service draining")
)

// Authenticator maps a handshake tenant token to a tenant name. An
// implementation must be safe for concurrent use; Authenticate is on
// the handshake path of every connection.
type Authenticator interface {
	Authenticate(token string) (tenant string, err error)
}

// StaticTokens is the file-backed Authenticator: a fixed token→tenant
// table. The zero value rejects everything.
type StaticTokens map[string]string

// Authenticate implements Authenticator.
func (s StaticTokens) Authenticate(token string) (string, error) {
	if tenant, ok := s[token]; ok && token != "" {
		return tenant, nil
	}
	return "", fmt.Errorf("%w: unknown tenant token", ErrUnauthorized)
}

// Limits is one tenant's front-door configuration. Zero fields mean
// unlimited (and weight 1), so a tenants file can list only tokens.
type Limits struct {
	// Weight is the tenant's fair-share weight in the governor's
	// worker arbitration; 0 means 1.
	Weight int
	// MaxSessions caps the tenant's concurrent admitted sessions;
	// 0 is unlimited.
	MaxSessions int
	// MaxBytes caps the tenant's cumulative streamed bytes (a lifetime
	// budget, the paper's per-job byte accounting); 0 is unlimited.
	MaxBytes int64
}

// ParseTenants reads a tenants file: one tenant per line,
//
//	tenant token [weight [max-sessions [max-mb]]]
//
// separated by whitespace, with '#' starting a comment. It returns the
// token table and the per-tenant limits. A tenant may appear on several
// lines (several tokens); its limits come from the first line that
// spells them out.
func ParseTenants(r io.Reader) (StaticTokens, map[string]Limits, error) {
	tokens := StaticTokens{}
	limits := map[string]Limits{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 5 {
			return nil, nil, fmt.Errorf("front: tenants line %d: want `tenant token [weight [max-sessions [max-mb]]]`, got %d fields", line, len(fields))
		}
		tenant, token := fields[0], fields[1]
		if prev, dup := tokens[token]; dup {
			return nil, nil, fmt.Errorf("front: tenants line %d: token already assigned to tenant %q", line, prev)
		}
		tokens[token] = tenant
		lim := limits[tenant]
		for i, set := range []func(int64){
			func(v int64) { lim.Weight = int(v) },
			func(v int64) { lim.MaxSessions = int(v) },
			func(v int64) { lim.MaxBytes = v << 20 },
		} {
			if len(fields) <= 2+i {
				break
			}
			v, err := strconv.ParseInt(fields[2+i], 10, 64)
			if err != nil || v < 0 {
				return nil, nil, fmt.Errorf("front: tenants line %d: field %d: %q is not a non-negative integer", line, 3+i, fields[2+i])
			}
			set(v)
		}
		limits[tenant] = lim
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(tokens) == 0 {
		return nil, nil, errors.New("front: tenants file defines no tokens")
	}
	return tokens, limits, nil
}

// LoadTenants is ParseTenants over a file path (the -tenants flag).
func LoadTenants(path string) (StaticTokens, map[string]Limits, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	tokens, limits, err := ParseTenants(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return tokens, limits, nil
}
