package front

import (
	"fmt"
	"sort"
	"sync"
)

// Config wires a Gate.
type Config struct {
	// Auth maps handshake tokens to tenants. Nil disables auth: every
	// connection is admitted as DefaultTenant (subject to its limits).
	Auth Authenticator
	// Limits configures per-tenant quotas and weights; tenants absent
	// from the map get DefaultLimits.
	Limits map[string]Limits
	// DefaultLimits applies to tenants with no Limits entry.
	DefaultLimits Limits
}

// Gate is the admission front door. One Gate serves a whole process —
// recd-serve shares it across every shard server, so tenant quotas span
// the fleet's shards rather than multiplying by their count.
type Gate struct {
	auth Authenticator
	cfg  Config

	mu       sync.Mutex
	draining bool
	tenants  map[string]*tenantState

	authFailures int64
	quotaRejects int64
	drainRejects int64
}

type tenantState struct {
	active   int
	admitted int64
	bytes    int64
}

// NewGate builds a Gate from cfg.
func NewGate(cfg Config) *Gate {
	return &Gate{auth: cfg.Auth, cfg: cfg, tenants: make(map[string]*tenantState)}
}

// LimitsFor resolves a tenant's effective limits.
func (g *Gate) LimitsFor(tenant string) Limits {
	if lim, ok := g.cfg.Limits[tenant]; ok {
		return lim
	}
	return g.cfg.DefaultLimits
}

// Weight resolves a tenant's fair-share weight (never below 1).
func (g *Gate) Weight(tenant string) int {
	if w := g.LimitsFor(tenant).Weight; w > 0 {
		return w
	}
	return 1
}

// Admit runs the full admission path for one handshake: authenticate
// the token, refuse while draining, and charge the tenant's session
// quota. It either returns a held Lease or an error — and on error the
// caller has allocated nothing yet, which is the point: rejection must
// be free of session state.
func (g *Gate) Admit(token string) (*Lease, error) {
	tenant := DefaultTenant
	if g.auth != nil {
		t, err := g.auth.Authenticate(token)
		if err != nil {
			g.mu.Lock()
			g.authFailures++
			g.mu.Unlock()
			return nil, err
		}
		tenant = t
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		g.drainRejects++
		return nil, ErrDraining
	}
	lim := g.LimitsFor(tenant)
	ts := g.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		g.tenants[tenant] = ts
	}
	if lim.MaxSessions > 0 && ts.active >= lim.MaxSessions {
		g.quotaRejects++
		return nil, fmt.Errorf("%w: tenant %q at its %d-session cap", ErrOverQuota, tenant, lim.MaxSessions)
	}
	if lim.MaxBytes > 0 && ts.bytes >= lim.MaxBytes {
		g.quotaRejects++
		return nil, fmt.Errorf("%w: tenant %q exhausted its %d-byte budget", ErrOverQuota, tenant, lim.MaxBytes)
	}
	ts.active++
	ts.admitted++
	return &Lease{g: g, Tenant: tenant}, nil
}

// Drain flips the gate into drain mode: every subsequent Admit — new
// sessions and resume claims alike — fails with ErrDraining. Idempotent.
func (g *Gate) Drain() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Lease is one admitted session's hold on its tenant's quota. The
// serving path calls AddBytes as frames go out and Release when the
// session's network stream ends (a parked session keeps only its byte
// charge, not a concurrency slot).
type Lease struct {
	// Tenant the session was admitted as.
	Tenant string

	g        *Gate
	released bool
	mu       sync.Mutex
}

// AddBytes charges n streamed bytes to the lease's tenant. The charge
// outlives the lease: byte budgets are cumulative.
func (l *Lease) AddBytes(n int64) {
	if n <= 0 {
		return
	}
	l.g.mu.Lock()
	if ts := l.g.tenants[l.Tenant]; ts != nil {
		ts.bytes += n
	}
	l.g.mu.Unlock()
}

// Release frees the tenant's concurrency slot. Idempotent.
func (l *Lease) Release() {
	l.mu.Lock()
	done := l.released
	l.released = true
	l.mu.Unlock()
	if done {
		return
	}
	l.g.mu.Lock()
	if ts := l.g.tenants[l.Tenant]; ts != nil && ts.active > 0 {
		ts.active--
	}
	l.g.mu.Unlock()
}

// TenantStat is one tenant's admission accounting.
type TenantStat struct {
	Tenant   string
	Active   int   // sessions currently holding a lease
	Admitted int64 // sessions ever admitted
	Bytes    int64 // cumulative streamed bytes charged
}

// GateStats is a point-in-time snapshot of the gate.
type GateStats struct {
	Draining     bool
	AuthFailures int64
	QuotaRejects int64
	DrainRejects int64
	Tenants      []TenantStat // sorted by tenant name
}

// Stats snapshots the gate's accounting.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GateStats{
		Draining:     g.draining,
		AuthFailures: g.authFailures,
		QuotaRejects: g.quotaRejects,
		DrainRejects: g.drainRejects,
	}
	for name, ts := range g.tenants {
		st.Tenants = append(st.Tenants, TenantStat{
			Tenant: name, Active: ts.active, Admitted: ts.admitted, Bytes: ts.bytes,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// TenantStats returns one tenant's accounting (zero value if the
// tenant has never been admitted). Metric closures use it so a scrape
// reads a consistent snapshot per tenant.
func (g *Gate) TenantStats(tenant string) TenantStat {
	g.mu.Lock()
	defer g.mu.Unlock()
	ts := g.tenants[tenant]
	if ts == nil {
		return TenantStat{Tenant: tenant}
	}
	return TenantStat{Tenant: tenant, Active: ts.active, Admitted: ts.admitted, Bytes: ts.bytes}
}

// KnownTenants lists the tenants named in the gate's configuration,
// sorted — the set obs registers per-tenant metric series for at
// startup (tenants outside the config share DefaultLimits and show up
// only in Stats).
func (g *Gate) KnownTenants() []string {
	names := make([]string, 0, len(g.cfg.Limits))
	for name := range g.cfg.Limits {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
