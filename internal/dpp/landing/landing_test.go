package landing_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp/landing"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/testutil"
)

func testSchema() *datagen.Schema {
	return datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
}

func genSamples(schema *datagen.Schema, n int, seed int64) []datagen.Sample {
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: n, MeanSamplesPerSession: 1, Seed: seed,
	})
	s := gen.GeneratePartition()
	if len(s) < n {
		panic("generator under-produced")
	}
	return s[:n]
}

// TestWriterCountTrigger: the count half of the batcher seals a file per
// FlushRows appended rows, publishes Put-before-AddFile, and Flush seals
// the remainder on demand.
func TestWriterCountTrigger(t *testing.T) {
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
	schema := testSchema()
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, genSamples(schema, 10, 7)...); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.FilesLanded != 2 || st.RowsLanded != 8 || st.BufferedRows != 2 {
		t.Fatalf("after 10 rows at FlushRows=4: %+v", st)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.FilesLanded != 3 || st.RowsLanded != 10 || st.BufferedRows != 0 || st.TimedFlushes != 0 {
		t.Fatalf("after Flush: %+v", st)
	}
	// Every catalogued path holds real bytes (the atomic-publish order),
	// and the publish log is the landing order.
	pubs, err := catalog.PublishedFiles("tbl", 0)
	if err != nil || len(pubs) != 3 {
		t.Fatalf("publish log %v, %v", pubs, err)
	}
	for i, pf := range pubs {
		if !store.Exists(pf.Path) {
			t.Fatalf("catalogued %q has no blob", pf.Path)
		}
		if !strings.Contains(pf.Path, "hour=0/") {
			t.Fatalf("path %q not under hour=0", pf.Path)
		}
		if i > 0 && pubs[i-1].Seq >= pf.Seq {
			t.Fatal("publish log out of order")
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterHourAdvanceSeals: a file never spans partitions — rows for a
// new hour seal the old hour's buffer first, whatever its size.
func TestWriterHourAdvanceSeals(t *testing.T) {
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
	schema := testSchema()
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, genSamples(schema, 3, 7)...); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(3600, genSamples(schema, 2, 8)...); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.FilesLanded != 1 || st.RowsLanded != 3 || st.LastHour != 0 || st.BufferedRows != 2 {
		t.Fatalf("hour advance did not seal: %+v", st)
	}
	if err := w.Close(); err != nil { // Close seals the hour-3600 remainder
		t.Fatal(err)
	}
	st = w.Stats()
	if st.FilesLanded != 2 || st.LastHour != 3600 || st.BufferedRows != 0 {
		t.Fatalf("after Close: %+v", st)
	}
	if fs, err := catalog.Files("tbl", 3600); err != nil || len(fs) != 1 {
		t.Fatalf("hour-3600 partition: %v, %v", fs, err)
	}
}

// TestWriterIntervalTrigger: rows sitting unsealed for a FlushInterval
// are sealed by the timer — and the timer is first-row-relative, so a
// buffer that already sealed by count is not flushed again.
func TestWriterIntervalTrigger(t *testing.T) {
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
	schema := testSchema()
	clock := testutil.NewClock(time.Unix(0, 0))
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema,
		FlushRows: 100, FlushInterval: time.Second, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.BlockUntilWaiters(t, 1) // the flusher armed its first tick
	if err := w.Append(0, genSamples(schema, 3, 7)...); err != nil {
		t.Fatal(err)
	}
	// The first tick was armed before the rows arrived, so the gen guard
	// skips it (the rows have not sat a full interval yet); the next tick
	// is armed against the pending buffer and seals it.
	clock.Advance(time.Second)
	clock.BlockUntilWaiters(t, 1)
	clock.Advance(time.Second)
	testutil.Eventually(t, func() bool { return w.Stats().TimedFlushes == 1 },
		"interval flush never fired: %+v", w.Stats())
	st := w.Stats()
	if st.FilesLanded != 1 || st.RowsLanded != 3 || st.BufferedRows != 0 {
		t.Fatalf("after timed flush: %+v", st)
	}
	// An empty buffer arms but never flushes.
	clock.BlockUntilWaiters(t, 1)
	clock.Advance(time.Second)
	clock.BlockUntilWaiters(t, 1)
	if st := w.Stats(); st.TimedFlushes != 1 || st.Flushes != 1 {
		t.Fatalf("timer flushed an empty buffer: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterStickyError: a seal failure wedges the writer — later
// Appends refuse with the same error instead of landing rows out of
// order past a hole — and Close reports it.
func TestWriterStickyError(t *testing.T) {
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
	schema := testSchema()
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A sample from a different schema cannot encode.
	alien := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 1, UserElem: 1, Item: 1, Dense: 2, SeqLen: 4, Seed: 1,
	})
	sealErr := w.Append(0, genSamples(alien, 2, 9)...)
	if sealErr == nil {
		t.Fatal("alien samples sealed cleanly")
	}
	if err := w.Append(0, genSamples(schema, 2, 7)...); err == nil || err.Error() != sealErr.Error() {
		t.Fatalf("append after failure = %v, want sticky %v", err, sealErr)
	}
	if st := w.Stats(); st.FilesLanded != 0 {
		t.Fatalf("failed writer landed files: %+v", st)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the sticky error")
	}
	if err := w.Append(0, genSamples(schema, 1, 7)...); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

// TestWriterLandJoined: the etl join runs inside the writer — only
// matched feature/event pairs land, with the join's labels.
func TestWriterLandJoined(t *testing.T) {
	store, catalog := lakefs.NewStore(), lakefs.NewCatalog()
	schema := testSchema()
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 8, MeanSamplesPerSession: 2, Seed: 21,
	})
	samples := gen.GeneratePartition()
	feats, events := etl.SplitLogs(samples)
	w, err := landing.NewWriter(landing.Config{
		Store: store, Catalog: catalog, Table: "tbl", Schema: schema, FlushRows: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.LandJoined(0, feats, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(samples) {
		t.Fatalf("join surfaced %d samples from %d logged", n, len(samples))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.RowsLanded != int64(n) {
		t.Fatalf("landed %d rows, joined %d", st.RowsLanded, n)
	}
}
