// Package landing is the live end of the ingestion pipeline: a Writer
// that joins raw etl log streams into labeled samples, batches them by
// count and flush interval, and appends sealed DWRF files to a growing
// hourly partition — the scribe → etl → time-partitioned DWRF landing
// path the paper's preprocessing service is fed by (§2.1).
//
// Publication is atomic from a reader's point of view: a sealed file is
// fully written to the store before its path is added to the catalog, so
// a session planning (or tailing) the table can always open every file
// the catalog names. Together with the catalog's publish-sequence
// ordering, that is the producer half of the Follow determinism
// contract: for any landed-file prefix P, a tailing session's stream
// over P is byte-identical to a cold session opened on the frozen P.
package landing

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
)

// Clock abstracts time for the interval batcher; structurally identical
// to dpp.Clock so recd-serve shares one clock across service and writer,
// and tests drive flush timing with testutil.Clock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Config wires a Writer to its table.
type Config struct {
	// Store and Catalog receive the sealed files: Put first, AddFile
	// second (the atomic-publish ordering).
	Store   *lakefs.Store
	Catalog *lakefs.Catalog
	// Table is the table every sealed file lands into.
	Table string
	// Schema validates and encodes the appended samples.
	Schema *datagen.Schema
	// FlushRows seals a file once this many samples are buffered (the
	// count half of the batcher). 0 picks DefaultFlushRows.
	FlushRows int
	// FlushInterval seals a non-empty buffer this long after its first
	// buffered row even if FlushRows was never reached (the latency
	// bound half). 0 disables timed flushes: sealing then happens only
	// on FlushRows, hour advance, Flush, or Close.
	FlushInterval time.Duration
	// Cluster applies etl.ClusterBySession to each sealed file's rows
	// (the paper's O2 job), so landed files are dedup-friendly.
	Cluster bool
	// Writer tunes the DWRF encoding of sealed files.
	Writer dwrf.WriterOptions
	// Clock drives the interval batcher; nil uses the wall clock.
	Clock Clock
}

// DefaultFlushRows is the count trigger used when Config leaves
// FlushRows zero: small enough that a live tail sees files at
// interactive latency, large enough that files amortize their stripe
// and header overhead.
const DefaultFlushRows = 1024

// Writer lands joined samples as sealed DWRF files on a live partition.
// Append/LandJoined/Flush/Close are safe for concurrent use; rows are
// sealed in append order.
type Writer struct {
	cfg   Config
	clock Clock

	mu     sync.Mutex
	buf    []datagen.Sample
	hour   int64 // partition hour of the buffered rows
	bufGen uint64
	seq    int // next sealed-file number, writer-global so paths never collide
	err    error
	closed bool

	stats WriterStats

	done chan struct{}
	wg   sync.WaitGroup
}

// WriterStats is a snapshot of a Writer's landing accounting.
type WriterStats struct {
	// FilesLanded and RowsLanded count sealed files and the rows inside
	// them.
	FilesLanded, RowsLanded int64
	// Flushes counts seal events; TimedFlushes counts the subset forced
	// by FlushInterval rather than FlushRows/hour-advance/Flush/Close.
	Flushes, TimedFlushes int64
	// LastHour is the partition hour of the most recently sealed file.
	LastHour int64
	// BufferedRows is the current unsealed backlog.
	BufferedRows int
}

// NewWriter validates the config and starts the interval batcher.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Store == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("landing: writer needs a store and a catalog")
	}
	if cfg.Table == "" {
		return nil, fmt.Errorf("landing: writer needs a table name")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("landing: writer needs a schema")
	}
	if cfg.FlushRows == 0 {
		cfg.FlushRows = DefaultFlushRows
	}
	if cfg.FlushRows < 0 {
		return nil, fmt.Errorf("landing: negative flush-row count %d", cfg.FlushRows)
	}
	if cfg.FlushInterval < 0 {
		return nil, fmt.Errorf("landing: negative flush interval %v", cfg.FlushInterval)
	}
	w := &Writer{cfg: cfg, clock: cfg.Clock, done: make(chan struct{})}
	if w.clock == nil {
		w.clock = systemClock{}
	}
	if cfg.FlushInterval > 0 {
		w.wg.Add(1)
		go w.runIntervalFlusher()
	}
	return w, nil
}

// runIntervalFlusher is the interval half of the count+interval batcher:
// whenever rows sit unsealed for a full FlushInterval, seal them. The
// buffer generation makes the timer first-row-relative: each armed tick
// remembers which buffer it was armed against, and only flushes if that
// buffer is still the one pending.
func (w *Writer) runIntervalFlusher() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		gen := w.bufGen
		pending := len(w.buf) > 0
		w.mu.Unlock()
		select {
		case <-w.done:
			return
		case <-w.clock.After(w.cfg.FlushInterval):
			if !pending {
				continue
			}
			w.mu.Lock()
			if !w.closed && w.err == nil && len(w.buf) > 0 && w.bufGen == gen {
				w.stats.TimedFlushes++
				w.sealLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Append buffers samples for the given partition hour, sealing a file
// whenever the count trigger fires — and, first, whenever the hour
// advances (a file never spans partitions). Returns the writer's sticky
// error: once a seal fails, the writer refuses further rows rather than
// silently dropping or reordering them.
func (w *Writer) Append(hour int64, samples ...datagen.Sample) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("landing: append after Close")
	}
	if w.err != nil {
		return w.err
	}
	for _, s := range samples {
		if len(w.buf) > 0 && hour != w.hour {
			w.sealLocked()
			if w.err != nil {
				return w.err
			}
		}
		if len(w.buf) == 0 {
			w.hour = hour
			w.bufGen++
		}
		w.buf = append(w.buf, s)
		if len(w.buf) >= w.cfg.FlushRows {
			w.sealLocked()
			if w.err != nil {
				return w.err
			}
		}
	}
	return nil
}

// LandJoined runs the etl join over one slice of raw log streams and
// appends the labeled result, returning how many samples survived the
// inner join.
func (w *Writer) LandJoined(hour int64, feats []etl.FeatureRecord, events []etl.EventRecord) (int, error) {
	joined := etl.Join(feats, events)
	return len(joined), w.Append(hour, joined...)
}

// Flush seals the buffered rows (if any) into a file immediately.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		w.sealLocked()
	}
	return w.err
}

// sealLocked encodes the buffered rows into one DWRF file and publishes
// it: store.Put first, catalog.AddFile second, so no reader ever
// observes a catalogued path without its bytes. Callers hold w.mu. On
// failure the writer goes sticky-failed with the buffer intact.
func (w *Writer) sealLocked() {
	rows := w.buf
	if w.cfg.Cluster {
		rows = etl.ClusterBySession(rows)
	}
	fw, err := dwrf.NewFileWriter(w.cfg.Schema, w.cfg.Writer)
	if err != nil {
		w.err = err
		return
	}
	if err := fw.WriteRows(rows); err != nil {
		w.err = err
		return
	}
	data, _, err := fw.Finish()
	if err != nil {
		w.err = err
		return
	}
	path := fmt.Sprintf("%s/hour=%d/landed-%06d.dwrf", w.cfg.Table, w.hour, w.seq)
	if err := w.cfg.Store.Put(path, data); err != nil {
		w.err = err
		return
	}
	w.cfg.Catalog.AddFile(w.cfg.Table, w.hour, path)
	w.seq++
	w.stats.Flushes++
	w.stats.FilesLanded++
	w.stats.RowsLanded += int64(len(w.buf))
	w.stats.LastHour = w.hour
	w.buf = w.buf[:0]
	w.bufGen++
}

// Close seals any buffered rows and stops the interval batcher. Further
// Appends fail. Returns the writer's final error state.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	if w.err == nil && len(w.buf) > 0 {
		w.sealLocked()
	}
	err := w.err
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	return err
}

// Stats returns a snapshot of the landing accounting.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.BufferedRows = len(w.buf)
	return st
}
