package dppnet

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dpp"
	"repro/internal/reader"
)

// Fuzz coverage for the two stats codecs the PR-5 scheduler fields
// extended: the binary session-stats frame (reader.Stats + cache
// counters + scheduler block) and the JSON svcstats frame. The
// adversarial model matches the batch-frame fuzzer: a malicious or
// corrupt server must never panic the client, every accepted decode must
// round-trip, and forged counts/overflow are rejected, not wrapped.

func sessionStatsSeed(st dpp.SessionStats) []byte {
	var buf bytes.Buffer
	if err := encodeSessionStats(&buf, st); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeSessionStats: decodeSessionStats on arbitrary bytes either
// fails cleanly or yields a value whose re-encoding decodes back equal
// (the codec is a bijection on its accepted set), with every counter
// non-negative and the worker count within the wire cap.
func FuzzDecodeSessionStats(f *testing.F) {
	full := dpp.SessionStats{
		Reader: reader.Stats{
			FillTime: 123 * time.Millisecond, ConvertTime: 45 * time.Millisecond,
			ProcessTime: 6 * time.Millisecond, ReadBytes: 1 << 20, SentBytes: 1 << 21,
			RowsDecoded: 4096, BatchesProduced: 16, ConvertValues: 99999, ProcessOps: 1234,
		},
		Cache: dpp.SessionCacheStats{Hits: 7, Misses: 3},
		Scheduler: dpp.SchedulerStats{
			Workers: 5, ScaleUps: 4, ScaleDowns: 2,
			WorkerStall: 250 * time.Millisecond, ConsumerStall: 80 * time.Millisecond,
		},
	}
	f.Add(sessionStatsSeed(full))
	f.Add(sessionStatsSeed(dpp.SessionStats{Scheduler: dpp.SchedulerStats{Workers: 1}}))
	// Truncations exercise every partial-field error path.
	whole := sessionStatsSeed(full)
	for _, cut := range []int{1, len(whole) / 2, len(whole) - 1} {
		f.Add(whole[:cut])
	}
	// Forged tails: plausible reader stats followed by hostile varints.
	var forged bytes.Buffer
	if err := (reader.Stats{}).Encode(&forged); err != nil {
		f.Fatal(err)
	}
	overflow := binary.AppendUvarint(nil, 1<<63)
	f.Add(append(append([]byte(nil), forged.Bytes()...), bytes.Repeat(overflow, 7)...))
	hugeWorkers := forged.Bytes()
	hugeWorkers = binary.AppendUvarint(hugeWorkers, 0) // hits
	hugeWorkers = binary.AppendUvarint(hugeWorkers, 0) // misses
	hugeWorkers = binary.AppendUvarint(hugeWorkers, maxWireWorkers+1)
	f.Add(hugeWorkers)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeSessionStats(bytes.NewReader(data))
		if err != nil {
			return
		}
		if st.Cache.Hits < 0 || st.Cache.Misses < 0 ||
			st.Scheduler.Workers < 0 || st.Scheduler.Workers > maxWireWorkers ||
			st.Scheduler.ScaleUps < 0 || st.Scheduler.ScaleDowns < 0 ||
			st.Scheduler.WorkerStall < 0 || st.Scheduler.ConsumerStall < 0 {
			t.Fatalf("accepted stats with out-of-range fields: %+v", st)
		}
		var re bytes.Buffer
		if err := encodeSessionStats(&re, st); err != nil {
			t.Fatalf("re-encoding accepted stats: %v", err)
		}
		back, err := decodeSessionStats(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if back != st {
			t.Fatalf("round trip changed stats:\n got %+v\nwant %+v", back, st)
		}
	})
}

// FuzzDecodeServiceStats: the svcstats JSON decoder on arbitrary bytes
// either fails cleanly or yields service stats with no negative counter
// — a forged statsz reply cannot poison downstream rate math.
func FuzzDecodeServiceStats(f *testing.F) {
	f.Add([]byte(`{"SessionsOpened":3,"ActiveSessions":1,"BatchesServed":42,` +
		`"Cache":{"Hits":5,"Misses":2,"Evictions":0,"Entries":2,"Bytes":1024},` +
		`"Scheduler":{"ScaleUps":4,"ScaleDowns":1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"BatchesServed":-1}`))
	f.Add([]byte(`{"Scheduler":{"ScaleUps":-9}}`))
	f.Add([]byte(`{"BatchesServed":999999999999999999999999}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeServiceStats(data)
		if err != nil {
			return
		}
		if st.SessionsOpened < 0 || st.ActiveSessions < 0 || st.BatchesServed < 0 ||
			st.Cache.Hits < 0 || st.Cache.Misses < 0 || st.Cache.Evictions < 0 ||
			st.Cache.Entries < 0 || st.Cache.Bytes < 0 ||
			st.Scheduler.ScaleUps < 0 || st.Scheduler.ScaleDowns < 0 {
			t.Fatalf("accepted service stats with negative fields: %+v", st)
		}
	})
}

// FuzzDecodeResumeHandshake: the v4 open frame is the resume surface —
// an attacker-supplied offset or token rides in before any session
// state exists. decodeOpenRequest on arbitrary bytes either fails
// cleanly or yields a request within the handshake bounds (offset in
// [0, maxResumeOffset], token no longer than a minted one can be) whose
// re-marshalled form decodes back equal.
func FuzzDecodeResumeHandshake(f *testing.F) {
	seed := func(req openRequest) []byte {
		payload, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		return payload
	}
	ws, err := encodeSpec(dpp.Spec{Spec: misalignedSpec(), ShareScans: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed(openRequest{Kind: kindSession, Window: 4, Spec: ws}))
	f.Add(seed(openRequest{
		Kind: kindSession, Window: 8, Spec: ws, FileUnits: true,
		Resumable: true, Offset: 1234, Token: "00112233445566778899aabbccddeeff",
	}))
	f.Add(seed(openRequest{Kind: kindTablez}))
	f.Add(seed(openRequest{Kind: kindSession, Window: 4, Spec: ws, Offset: maxResumeOffset}))
	// Hostile handshakes: negative and overflow offsets, a token past the
	// mint bound, and plain garbage.
	f.Add([]byte(`{"kind":"session","offset":-1}`))
	f.Add([]byte(`{"kind":"session","offset":1099511627777}`))
	f.Add([]byte(`{"kind":"session","token":"` + strings.Repeat("a", maxResumeTokenLen+1) + `"}`))
	f.Add([]byte(`{"kind":"session","offset":999999999999999999999999}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeOpenRequest(data)
		if err != nil {
			return
		}
		if req.Offset < 0 || req.Offset > maxResumeOffset {
			t.Fatalf("accepted out-of-range offset %d", req.Offset)
		}
		if len(req.Token) > maxResumeTokenLen {
			t.Fatalf("accepted %d-byte token", len(req.Token))
		}
		// JSON field matching is case-insensitive, so the accepted set is
		// not a bijection — but the canonical re-marshalled form must be a
		// fixed point: decoding it and marshalling again changes nothing.
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-marshalling accepted handshake: %v", err)
		}
		back, err := decodeOpenRequest(re)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		re2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshalling round-tripped handshake: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical handshake form is not a fixed point:\n got %s\nwant %s", re2, re)
		}
	})
}

// FuzzDecodeAuthHandshake: the v5 open frame carries the tenant token —
// attacker-controlled bytes that reach the front door's authenticator
// before any session state exists. decodeOpenRequest on arbitrary bytes
// either fails cleanly or yields a request whose auth token is within
// the decode bound (so the authenticator never sees an oversized
// credential), and the canonical re-marshalled form is a fixed point.
func FuzzDecodeAuthHandshake(f *testing.F) {
	seed := func(req openRequest) []byte {
		payload, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		return payload
	}
	ws, err := encodeSpec(dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed(openRequest{Kind: kindSession, Window: 4, Spec: ws, AuthToken: "team-a-secret"}))
	f.Add(seed(openRequest{
		Kind: kindSession, Window: 8, Spec: ws, Resumable: true,
		Offset: 7, Token: "00112233445566778899aabbccddeeff", AuthToken: "team-b-secret",
	}))
	f.Add(seed(openRequest{Kind: kindSession, Window: 4, Spec: ws, AuthToken: strings.Repeat("x", maxAuthTokenLen)}))
	// Hostile handshakes: a token past the decode bound, tokens that are
	// JSON metacharacters, and spoofing attempts via unknown fields (a
	// client cannot name its tenant — only present a credential).
	f.Add([]byte(`{"kind":"session","auth_token":"` + strings.Repeat("a", maxAuthTokenLen+1) + `"}`))
	f.Add([]byte(`{"kind":"session","auth_token":"\"}{\\"}`))
	f.Add([]byte(`{"kind":"session","auth_token":"tok","tenant":"admin"}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeOpenRequest(data)
		if err != nil {
			return
		}
		if len(req.AuthToken) > maxAuthTokenLen {
			t.Fatalf("accepted %d-byte auth token", len(req.AuthToken))
		}
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-marshalling accepted handshake: %v", err)
		}
		back, err := decodeOpenRequest(re)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if back.AuthToken != req.AuthToken {
			t.Fatalf("auth token changed across round trip: %q != %q", back.AuthToken, req.AuthToken)
		}
		re2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshalling round-tripped handshake: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical handshake form is not a fixed point:\n got %s\nwant %s", re2, re)
		}
	})
}

// FuzzDecodeTablez: the tablez frame seeds a trainer's entire view of
// the table — model sizing, file plans, the spec it opens sessions with
// — so a malicious server must never panic the client, and negative
// counts, non-finite S, negative partition hours, and specless payloads
// are rejected rather than reaching sizing math. Accepted decodes must
// survive a re-encode/decode round trip.
func FuzzDecodeTablez(f *testing.F) {
	env := newTestEnv(f, 10)
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		f.Fatal(err)
	}
	full, err := encodeTableMeta(&TableMeta{
		Table: "tbl", DenseWidth: 4, TrainRows: 4096, S: 5.5,
		Spec:       dpp.Spec{Spec: alignedSpec(), ShareScans: true},
		Partitions: []TablePartition{{Hour: 0, Files: files}, {Hour: 3600, Files: files[:1]}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	minimal, err := encodeTableMeta(&TableMeta{Spec: dpp.Spec{Spec: alignedSpec()}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(minimal)
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		f.Add(full[:cut])
	}
	// Forged metadata a well-behaved server cannot emit.
	f.Add([]byte(`{"table":"tbl","dense_width":-1,"spec":{}}`))
	f.Add([]byte(`{"table":"tbl","train_rows":-5,"spec":{}}`))
	f.Add([]byte(`{"table":"tbl","s":-0.5,"spec":{}}`))
	f.Add([]byte(`{"table":"tbl","spec":{},"partitions":[{"hour":-1}]}`))
	f.Add([]byte(`{"table":"tbl"}`)) // no spec
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeTableMeta(data)
		if err != nil {
			return
		}
		if m.DenseWidth < 0 || m.TrainRows < 0 {
			t.Fatalf("accepted negative schema facts: %+v", m)
		}
		if m.S < 0 || math.IsNaN(m.S) || math.IsInf(m.S, 0) {
			t.Fatalf("accepted implausible S %v", m.S)
		}
		for _, p := range m.Partitions {
			if p.Hour < 0 {
				t.Fatalf("accepted negative partition hour %d", p.Hour)
			}
		}
		// As with the handshake fuzzer, JSON's case-insensitive matching
		// means hostile spellings can decode; the canonical re-encoding
		// must be a fixed point under decode/encode.
		re, err := encodeTableMeta(m)
		if err != nil {
			t.Fatalf("re-encoding accepted metadata: %v", err)
		}
		back, err := decodeTableMeta(re)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		re2, err := encodeTableMeta(back)
		if err != nil {
			t.Fatalf("re-encoding round-tripped metadata: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical tablez form is not a fixed point:\n got %s\nwant %s", re2, re)
		}
	})
}

// FuzzDecodeExtend: the v6 extend frame is server-controlled bytes a
// tailing client decodes mid-stream, so a malicious or corrupt server
// must never panic it, and empty or oversized file lists are rejected
// before the client's bookkeeping scales with them. Accepted decodes
// stay within the wire bounds and their canonical re-marshalled form is
// a fixed point under decode/marshal (JSON field matching is
// case-insensitive, so full bijectivity is not available).
func FuzzDecodeExtend(f *testing.F) {
	seed := func(en extendNotice) []byte {
		payload, err := json.Marshal(en)
		if err != nil {
			panic(err)
		}
		return payload
	}
	full := seed(extendNotice{Generation: 17, Files: []string{
		"tbl/hour=3600/landed-000004.dwrf", "tbl/hour=3600/landed-000005.dwrf",
	}})
	f.Add(full)
	f.Add(seed(extendNotice{Files: []string{"tbl/hour=0/landed-000000.dwrf"}}))
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		f.Add(full[:cut])
	}
	// Forged notices a well-behaved server cannot emit: no files, an
	// empty path, a path past the bound, and plain garbage.
	f.Add([]byte(`{"generation":3,"files":[]}`))
	f.Add([]byte(`{"files":[""]}`))
	f.Add([]byte(`{"files":["` + strings.Repeat("p", maxExtendPathLen+1) + `"]}`))
	f.Add([]byte(`{"files":null}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		en, err := decodeExtend(data)
		if err != nil {
			return
		}
		if len(en.Files) == 0 || len(en.Files) > maxExtendFiles {
			t.Fatalf("accepted notice with %d files", len(en.Files))
		}
		for _, fp := range en.Files {
			if fp == "" || len(fp) > maxExtendPathLen {
				t.Fatalf("accepted out-of-bounds path of %d bytes", len(fp))
			}
		}
		re, err := json.Marshal(en)
		if err != nil {
			t.Fatalf("re-marshalling accepted notice: %v", err)
		}
		back, err := decodeExtend(re)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		re2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshalling round-tripped notice: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical extend form is not a fixed point:\n got %s\nwant %s", re2, re)
		}
	})
}

func fileUnitSeed(u *dpp.FileUnit) []byte {
	var buf bytes.Buffer
	if err := encodeFileUnit(&buf, u); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFileUnit: the v3 file-unit frame is what a fleet mux
// reassembles its merged stream from, so a malicious or corrupt shard
// must never panic the client. decodeFileUnit on arbitrary bytes either
// fails cleanly or yields a unit within every wire bound whose
// re-encoding decodes back equal — byte-identity of the re-encoding is
// NOT required, because ReadUvarint accepts non-minimal varints.
func FuzzDecodeFileUnit(f *testing.F) {
	env := newTestEnv(f, 24)
	r, err := reader.NewReader(env.store, misalignedSpec())
	if err != nil {
		f.Fatal(err)
	}
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		f.Fatal(err)
	}
	// A real misaligned scan carries keys, complete batches, and a tail —
	// every section of the frame layout is populated.
	scan, err := r.ScanFile(context.Background(), files[0])
	if err != nil {
		f.Fatal(err)
	}
	full := fileUnitSeed(&dpp.FileUnit{Index: 3, Scan: scan, Hit: true})
	f.Add(full)
	f.Add(fileUnitSeed(&dpp.FileUnit{Scan: &reader.FileScan{Keys: []string{"item_0"}, Dense: 2}}))
	for _, cut := range []int{1, 2, len(full) / 2, len(full) - 1} {
		f.Add(full[:cut])
	}
	f.Add(append(append([]byte(nil), full...), 0x00)) // trailing byte
	// Forged header: plausible prefix, then a key count over the cap.
	forged := binary.AppendUvarint(nil, 1) // index
	forged = append(forged, 1)             // hit
	forged = binary.AppendUvarint(forged, 4)
	forged = binary.AppendUvarint(forged, maxUnitKeys+1)
	f.Add(forged)
	// Hit flag outside {0, 1}.
	bad := append([]byte(nil), full...)
	bad[binary.PutUvarint(make([]byte, binary.MaxVarintLen64), 3)] = 7
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := decodeFileUnit(data)
		if err != nil {
			return
		}
		if u.Index < 0 || u.Index > maxUnitIndex {
			t.Fatalf("accepted out-of-range index %d", u.Index)
		}
		if u.File != "" {
			t.Fatalf("decoded unit carries a file path %q; the index owns that mapping", u.File)
		}
		if u.Scan == nil {
			t.Fatal("accepted unit without a scan")
		}
		if len(u.Scan.Keys) > maxUnitKeys || u.Scan.Dense > maxUnitDense ||
			len(u.Scan.Batches) > maxUnitBatches || len(u.Scan.Tail) > maxUnitTail {
			t.Fatalf("accepted unit outside wire bounds: %d keys, dense %d, %d batches, %d tail rows",
				len(u.Scan.Keys), u.Scan.Dense, len(u.Scan.Batches), len(u.Scan.Tail))
		}
		for _, k := range u.Scan.Keys {
			if len(k) > maxUnitKeyLen {
				t.Fatalf("accepted %d-byte key", len(k))
			}
		}
		var re bytes.Buffer
		if err := encodeFileUnit(&re, u); err != nil {
			t.Fatalf("re-encode of accepted unit: %v", err)
		}
		back, err := decodeFileUnit(re.Bytes())
		if err != nil {
			t.Fatalf("re-decode of accepted unit: %v", err)
		}
		if !reflect.DeepEqual(u, back) {
			t.Fatalf("file unit did not round-trip:\n got %#v\nwant %#v", back, u)
		}
	})
}
