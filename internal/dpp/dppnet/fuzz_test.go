package dppnet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/dpp"
	"repro/internal/reader"
)

// Fuzz coverage for the two stats codecs the PR-5 scheduler fields
// extended: the binary session-stats frame (reader.Stats + cache
// counters + scheduler block) and the JSON svcstats frame. The
// adversarial model matches the batch-frame fuzzer: a malicious or
// corrupt server must never panic the client, every accepted decode must
// round-trip, and forged counts/overflow are rejected, not wrapped.

func sessionStatsSeed(st dpp.SessionStats) []byte {
	var buf bytes.Buffer
	if err := encodeSessionStats(&buf, st); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeSessionStats: decodeSessionStats on arbitrary bytes either
// fails cleanly or yields a value whose re-encoding decodes back equal
// (the codec is a bijection on its accepted set), with every counter
// non-negative and the worker count within the wire cap.
func FuzzDecodeSessionStats(f *testing.F) {
	full := dpp.SessionStats{
		Reader: reader.Stats{
			FillTime: 123 * time.Millisecond, ConvertTime: 45 * time.Millisecond,
			ProcessTime: 6 * time.Millisecond, ReadBytes: 1 << 20, SentBytes: 1 << 21,
			RowsDecoded: 4096, BatchesProduced: 16, ConvertValues: 99999, ProcessOps: 1234,
		},
		Cache: dpp.SessionCacheStats{Hits: 7, Misses: 3},
		Scheduler: dpp.SchedulerStats{
			Workers: 5, ScaleUps: 4, ScaleDowns: 2,
			WorkerStall: 250 * time.Millisecond, ConsumerStall: 80 * time.Millisecond,
		},
	}
	f.Add(sessionStatsSeed(full))
	f.Add(sessionStatsSeed(dpp.SessionStats{Scheduler: dpp.SchedulerStats{Workers: 1}}))
	// Truncations exercise every partial-field error path.
	whole := sessionStatsSeed(full)
	for _, cut := range []int{1, len(whole) / 2, len(whole) - 1} {
		f.Add(whole[:cut])
	}
	// Forged tails: plausible reader stats followed by hostile varints.
	var forged bytes.Buffer
	if err := (reader.Stats{}).Encode(&forged); err != nil {
		f.Fatal(err)
	}
	overflow := binary.AppendUvarint(nil, 1<<63)
	f.Add(append(append([]byte(nil), forged.Bytes()...), bytes.Repeat(overflow, 7)...))
	hugeWorkers := forged.Bytes()
	hugeWorkers = binary.AppendUvarint(hugeWorkers, 0) // hits
	hugeWorkers = binary.AppendUvarint(hugeWorkers, 0) // misses
	hugeWorkers = binary.AppendUvarint(hugeWorkers, maxWireWorkers+1)
	f.Add(hugeWorkers)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeSessionStats(bytes.NewReader(data))
		if err != nil {
			return
		}
		if st.Cache.Hits < 0 || st.Cache.Misses < 0 ||
			st.Scheduler.Workers < 0 || st.Scheduler.Workers > maxWireWorkers ||
			st.Scheduler.ScaleUps < 0 || st.Scheduler.ScaleDowns < 0 ||
			st.Scheduler.WorkerStall < 0 || st.Scheduler.ConsumerStall < 0 {
			t.Fatalf("accepted stats with out-of-range fields: %+v", st)
		}
		var re bytes.Buffer
		if err := encodeSessionStats(&re, st); err != nil {
			t.Fatalf("re-encoding accepted stats: %v", err)
		}
		back, err := decodeSessionStats(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if back != st {
			t.Fatalf("round trip changed stats:\n got %+v\nwant %+v", back, st)
		}
	})
}

// FuzzDecodeServiceStats: the svcstats JSON decoder on arbitrary bytes
// either fails cleanly or yields service stats with no negative counter
// — a forged statsz reply cannot poison downstream rate math.
func FuzzDecodeServiceStats(f *testing.F) {
	f.Add([]byte(`{"SessionsOpened":3,"ActiveSessions":1,"BatchesServed":42,` +
		`"Cache":{"Hits":5,"Misses":2,"Evictions":0,"Entries":2,"Bytes":1024},` +
		`"Scheduler":{"ScaleUps":4,"ScaleDowns":1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"BatchesServed":-1}`))
	f.Add([]byte(`{"Scheduler":{"ScaleUps":-9}}`))
	f.Add([]byte(`{"BatchesServed":999999999999999999999999}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeServiceStats(data)
		if err != nil {
			return
		}
		if st.SessionsOpened < 0 || st.ActiveSessions < 0 || st.BatchesServed < 0 ||
			st.Cache.Hits < 0 || st.Cache.Misses < 0 || st.Cache.Evictions < 0 ||
			st.Cache.Entries < 0 || st.Cache.Bytes < 0 ||
			st.Scheduler.ScaleUps < 0 || st.Scheduler.ScaleDowns < 0 {
			t.Fatalf("accepted service stats with negative fields: %+v", st)
		}
	})
}
