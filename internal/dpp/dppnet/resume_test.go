package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dpp"
	"repro/internal/reader"
	"repro/internal/testutil"
)

// chaosProxy relays one dppnet server over a loopback listener and cuts
// the server→client stream after a scheduled number of relayed bytes —
// the connection-loss injector for the resume suite. kills[i] is the
// byte budget of the i-th accepted connection (-1 / absent: unlimited);
// when a budget runs out the proxy closes both halves, exactly like a
// mid-stream network partition. A nonzero refuse duration makes the
// proxy accept-and-drop every new connection for that long after a kill
// (or killNow), holding the client in its backoff loop — the lever the
// TTL-expiry test uses to outlive the server's resume window.
type chaosProxy struct {
	t      *testing.T
	ln     net.Listener
	addr   string
	target string
	refuse time.Duration

	relayed atomic.Int64

	mu          sync.Mutex
	kills       []int64
	accepts     int
	conns       []net.Conn
	refuseUntil time.Time
	closed      bool

	acceptWG sync.WaitGroup
	relayWG  sync.WaitGroup
}

func startChaosProxy(t *testing.T, target string, kills []int64, refuse time.Duration) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{
		t: t, ln: ln, addr: ln.Addr().String(), target: target,
		refuse: refuse, kills: kills,
	}
	p.acceptWG.Add(1)
	go p.acceptLoop()
	t.Cleanup(p.Close)
	return p
}

func (p *chaosProxy) acceptLoop() {
	defer p.acceptWG.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		if time.Now().Before(p.refuseUntil) {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		idx := p.accepts
		p.accepts++
		limit := int64(-1)
		if idx < len(p.kills) {
			limit = p.kills[idx]
		}
		p.conns = append(p.conns, conn)
		p.mu.Unlock()

		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns = append(p.conns, up)
		p.relayWG.Add(2)
		p.mu.Unlock()
		go func() { // client → server
			defer p.relayWG.Done()
			io.Copy(up, conn)
			up.Close()
			conn.Close()
		}()
		go func() { // server → client, budgeted
			defer p.relayWG.Done()
			if limit < 0 {
				n, _ := io.Copy(conn, up)
				p.relayed.Add(n)
			} else {
				n, _ := io.CopyN(conn, up, limit)
				p.relayed.Add(n)
				p.startRefuse()
			}
			up.Close()
			conn.Close()
		}()
	}
}

func (p *chaosProxy) startRefuse() {
	if p.refuse <= 0 {
		return
	}
	p.mu.Lock()
	p.refuseUntil = time.Now().Add(p.refuse)
	p.mu.Unlock()
}

// killNow severs every live relayed connection immediately and, with a
// refuse window configured, starts it — a deterministic alternative to
// byte-budget kills when a test wants to cut after exactly k consumed
// batches.
func (p *chaosProxy) killNow() {
	p.startRefuse()
	p.mu.Lock()
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *chaosProxy) relayedBytes() int64 { return p.relayed.Load() }

func (p *chaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.acceptWG.Wait()
	p.relayWG.Wait()
}

// startTunedServer is startServer with a pre-Serve hook, for tests that
// must set Server knobs (ResumeTTL, Tablez) before any connection can
// race them.
func startTunedServer(t testing.TB, env *testEnv, cfg dpp.Config, tune func(*Server)) *harness {
	t.Helper()
	cfg.Backend = env.store
	cfg.Catalog = env.catalog
	svc, err := dpp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	if tune != nil {
		tune(srv)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	h := &harness{svc: svc, srv: srv, addr: ln.Addr().String()}
	t.Cleanup(func() {
		h.shutdown(t)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return h
}

func mustEqualBatches(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stream produced %d batches, reference %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("batch %d differs from the uninterrupted reference", i)
		}
	}
}

// consumeRemote pulls exactly k batches (encoded) without closing.
func consumeRemote(t *testing.T, rs *RemoteSession, k int) [][]byte {
	t.Helper()
	var enc [][]byte
	for i := 0; i < k; i++ {
		b, err := rs.Next(context.Background())
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		enc = append(enc, buf.Bytes())
	}
	return enc
}

// drainRemoteUnits pulls a remote unit session dry, returning each unit
// in its wire encoding with the cache-hit flag normalized (Hit is
// cache-state-dependent and excluded from the determinism contract,
// exactly as the chain hash skips it).
func drainRemoteUnits(t *testing.T, rus *RemoteUnitSession) [][]byte {
	t.Helper()
	defer rus.Close()
	var enc [][]byte
	for {
		u, err := rus.NextUnit(context.Background())
		if err == io.EOF {
			return enc
		}
		if err != nil {
			t.Fatal(err)
		}
		cp := *u
		cp.Hit = false
		var buf bytes.Buffer
		if err := encodeFileUnit(&buf, &cp); err != nil {
			t.Fatal(err)
		}
		enc = append(enc, buf.Bytes())
	}
}

// TestChaosReconnectDeterminism is the resume contract's pin (referenced
// by docs/ARCHITECTURE.md): for aligned, misaligned, and ShareScans
// specs, a session whose connection is severed at seeded byte offsets —
// one to three times per run — must deliver exactly the byte stream of
// an uninterrupted session, resuming via token (parked live state) with
// every resumed frame verified against the rolling chain hash. Each
// seeded schedule runs against a fresh server and must tear down with
// zero goroutine residue.
func TestChaosReconnectDeterminism(t *testing.T) {
	env := newTestEnv(t, 60)
	cases := []struct {
		name  string
		spec  reader.Spec
		share bool
	}{
		{"aligned", alignedSpec(), false},
		{"misaligned", misalignedSpec(), false},
		{"sharescans", alignedSpec(), true},
	}
	const seedsPerCase = 7
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := dpp.Spec{Spec: tc.spec, ShareScans: tc.share}

			// Uninterrupted reference, streamed through a pass-through
			// proxy so its relayed byte total sizes the kill schedules.
			refH := startServer(t, env, dpp.Config{})
			refP := startChaosProxy(t, refH.addr, nil, 0)
			refRS, err := NewClient(refP.addr).Open(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			want := drainRemote(t, refRS)
			refP.Close()
			refH.shutdown(t)
			total := refP.relayedBytes()
			if total < 1024 {
				t.Fatalf("reference stream relayed only %d bytes; kill schedules need room", total)
			}

			for seed := int64(0); seed < seedsPerCase; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					before := runtime.NumGoroutine()
					rng := rand.New(rand.NewSource(1000 + seed))
					kills := make([]int64, 1+rng.Intn(3))
					for i := range kills {
						// Past the handshake's ok frame, short of the
						// stats/EOF tail: every first cut forces a resume.
						kills[i] = 128 + rng.Int63n(total-384)
					}
					h := startServer(t, env, dpp.Config{})
					p := startChaosProxy(t, h.addr, kills, 0)
					client := NewClient(p.addr)
					client.Resume = ResumePolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond}
					rs, err := client.Open(context.Background(), spec)
					if err != nil {
						t.Fatal(err)
					}
					got := drainRemote(t, rs)
					if rs.Reconnects() < 1 {
						t.Fatalf("kills %v (reference total %d) never severed the stream", kills, total)
					}
					mustEqualBatches(t, got, want)
					st := h.srv.Stats()
					if st.ResumedSessions < 1 || st.ParkedSessions < 1 {
						t.Fatalf("server stats %+v: want parked and resumed sessions", st)
					}
					p.Close()
					h.shutdown(t)
					testutil.WaitForGoroutines(t, before)
				})
			}
		})
	}
}

// TestChaosReconnectUnitSession: the same severed-connection contract
// for file-unit streams (the fleet shard transport) — seeded kills, a
// token resume, chain-hash-verified continuation, and a unit stream
// identical to an uninterrupted session's modulo the cache-hit flag.
func TestChaosReconnectUnitSession(t *testing.T) {
	env := newTestEnv(t, 160)
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("test table landed only %d files; kills need a mid-stream target", len(files))
	}
	spec := dpp.Spec{Spec: alignedSpec(), Files: files, Readers: 2, Buffer: 2}

	refH := startServer(t, env, dpp.Config{})
	refP := startChaosProxy(t, refH.addr, nil, 0)
	refRUS, err := NewClient(refP.addr).OpenUnits(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := drainRemoteUnits(t, refRUS)
	refP.Close()
	refH.shutdown(t)
	total := refP.relayedBytes()
	if total < 1024 {
		t.Fatalf("reference unit stream relayed only %d bytes", total)
	}

	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			before := runtime.NumGoroutine()
			rng := rand.New(rand.NewSource(7000 + seed))
			kills := make([]int64, 1+rng.Intn(2))
			for i := range kills {
				kills[i] = 128 + rng.Int63n(total-384)
			}
			h := startServer(t, env, dpp.Config{})
			p := startChaosProxy(t, h.addr, kills, 0)
			client := NewClient(p.addr)
			client.Resume = ResumePolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond}
			rus, err := client.OpenUnits(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			got := drainRemoteUnits(t, rus)
			if rus.Reconnects() < 1 {
				t.Fatalf("kills %v (reference total %d) never severed the unit stream", kills, total)
			}
			if len(got) != len(want) {
				t.Fatalf("unit stream produced %d units, reference %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("unit %d differs from the uninterrupted reference", i)
				}
			}
			p.Close()
			h.shutdown(t)
			testutil.WaitForGoroutines(t, before)
		})
	}
}

// TestResumeTTLExpiryFallsBackToReplay: when the parked state's TTL
// lapses before the client gets back in (the proxy refuses new
// connections for longer than the TTL), the token claim is refused and
// the client falls back to a token-less offset replay — the server
// re-pulls and discards the already-delivered prefix, counts it in
// ReplayedBatches, and the stream completes byte-identical anyway.
func TestResumeTTLExpiryFallsBackToReplay(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 60)
	spec := dpp.Spec{Spec: alignedSpec(), Readers: 1, Buffer: 2}

	refH := startServer(t, env, dpp.Config{})
	refRS, err := NewClient(refH.addr).Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := drainRemote(t, refRS)
	refH.shutdown(t)

	h := startTunedServer(t, env, dpp.Config{}, func(s *Server) {
		s.ResumeTTL = 20 * time.Millisecond
	})
	p := startChaosProxy(t, h.addr, nil, 300*time.Millisecond)
	client := NewClient(p.addr)
	client.Resume = ResumePolicy{MaxAttempts: 10}
	rs, err := client.Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := consumeRemote(t, rs, 3)
	p.killNow()
	got = append(got, drainRemote(t, rs)...)

	if rs.Reconnects() < 1 {
		t.Fatal("stream completed without reconnecting")
	}
	mustEqualBatches(t, got, want)
	st := h.srv.Stats()
	if st.ResumeExpired < 1 {
		t.Fatalf("server stats %+v: parked entry should have expired under the 20ms TTL", st)
	}
	if st.ReplayedBatches < 3 {
		t.Fatalf("server stats %+v: want >= 3 replayed batches (offset-replay fallback)", st)
	}
	if st.ReplayedSessions < 1 {
		t.Fatalf("server stats %+v: the fallback handshake counts as an offset replay", st)
	}
	if st.ResumedSessions != 0 {
		t.Fatalf("server stats %+v: no token claim succeeded, so the token-resume counter must stay zero", st)
	}
	p.Close()
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestResumeFingerprintMismatchRejected: a resume handshake presenting a
// live token but a spec whose fingerprint differs from the parked
// session's must be refused — resuming someone else's stream shape is a
// protocol error, not a silent re-open.
func TestResumeFingerprintMismatchRejected(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	client := NewClient(h.addr)
	client.Resumable = true

	rs, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	consumeRemote(t, rs, 1)
	rs.mu.Lock()
	token := rs.token
	conn := rs.conn
	rs.mu.Unlock()
	if token == "" {
		t.Fatal("resumable handshake returned no token")
	}
	conn.Close()
	testutil.Eventually(t, func() bool { return h.srv.Stats().ParkedSessions >= 1 },
		"server parked the severed resumable session")

	ws, err := encodeSpec(dpp.Spec{Spec: misalignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err = client.openStream(context.Background(), client.addr, openRequest{
		Kind: kindSession, Window: 4, Spec: ws,
		Resumable: true, Offset: 1, Token: token,
	})
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched-spec resume = %v, want ErrRemote about the spec fingerprint", err)
	}
	rs.Close()
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestResumeTokenSingleClaim: a parked session's token is single-claim —
// while one reconnect holds it, a second handshake presenting the same
// token must be refused instead of splicing two consumers into one
// stream.
func TestResumeTokenSingleClaim(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	client := NewClient(h.addr)
	client.Resumable = true

	rs, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	rs.mu.Lock()
	token := rs.token
	conn := rs.conn
	rs.mu.Unlock()
	if token == "" {
		t.Fatal("resumable handshake returned no token")
	}
	conn.Close()
	testutil.Eventually(t, func() bool { return h.srv.Stats().ParkedSessions >= 1 },
		"server parked the severed resumable session")

	ws, err := encodeSpec(dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	req := openRequest{
		Kind: kindSession, Window: 4, Spec: ws,
		Resumable: true, Offset: 0, Token: token,
	}
	conn1, _, stop1, _, err := client.openStream(context.Background(), client.addr, req)
	if err != nil {
		t.Fatalf("first token claim: %v", err)
	}
	_, _, _, _, err = client.openStream(context.Background(), client.addr, req)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "already in use") {
		t.Fatalf("second claim of a held token = %v, want ErrRemote already-in-use", err)
	}
	stop1()
	conn1.Close()
	rs.Close()
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestResumeOffsetBeyondEOFRejected: a token-less replay handshake whose
// offset lies past the stream's end must come back as a remote error
// after the server replays to EOF, and a negative offset must be
// rejected at decode time — neither can open a session.
func TestResumeOffsetBeyondEOFRejected(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 10)
	h := startServer(t, env, dpp.Config{})
	client := NewClient(h.addr)
	ws, err := encodeSpec(dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}

	_, _, _, _, err = client.openStream(context.Background(), client.addr, openRequest{
		Kind: kindSession, Window: 4, Spec: ws, Resumable: true, Offset: 1 << 30,
	})
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "beyond end of stream") {
		t.Fatalf("replay past EOF = %v, want ErrRemote beyond-end-of-stream", err)
	}

	conn := rawDial(t, h.addr)
	defer conn.Close()
	conn.Write(append([]byte(protoMagic), protoVersion))
	payload, _ := json.Marshal(openRequest{Kind: kindSession, Window: 4, Spec: ws, Offset: -3})
	writeFrame(conn, frameOpen, payload)
	br := bufio.NewReader(conn)
	typ, reply, err := readFrame(br, maxFrameBytes)
	if err != nil {
		t.Fatalf("reading reply to negative offset: %v", err)
	}
	if typ != frameError || len(reply) == 0 {
		t.Fatalf("negative offset answered frame %#x %q, want an error frame", typ, reply)
	}

	testutil.Eventually(t, func() bool { return h.svc.Stats().ActiveSessions == 0 },
		"rejected resumes released their session slots")
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestTablezServedAndUnserved: a server with Tablez set answers the
// tablez handshake with its table metadata — round-tripped through the
// wire codec — and a server without one refuses it with a remote error.
func TestTablezServedAndUnserved(t *testing.T) {
	env := newTestEnv(t, 10)
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	meta := &TableMeta{
		Table:      "tbl",
		DenseWidth: 4,
		TrainRows:  len(env.samples),
		S:          5.5,
		Spec:       dpp.Spec{Spec: alignedSpec(), ShareScans: true},
		Partitions: []TablePartition{{Hour: 0, Files: files}},
	}
	h := startTunedServer(t, env, dpp.Config{}, func(s *Server) { s.Tablez = meta })
	got, err := NewClient(h.addr).Tablez(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != meta.Table || got.DenseWidth != meta.DenseWidth ||
		got.TrainRows != meta.TrainRows || got.S != meta.S || !got.Spec.ShareScans {
		t.Fatalf("served metadata %+v, want %+v", got, meta)
	}
	if got.Spec.Fingerprint() != meta.Spec.Fingerprint() {
		t.Fatalf("served spec fingerprint %q, want %q", got.Spec.Fingerprint(), meta.Spec.Fingerprint())
	}
	if gf := got.Files(0); len(gf) != len(files) {
		t.Fatalf("served partition has %d files, want %d", len(gf), len(files))
	}
	if got.Files(99) != nil {
		t.Fatal("absent partition hour returned a file list")
	}

	bare := startServer(t, env, dpp.Config{})
	_, err = NewClient(bare.addr).Tablez(context.Background())
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "no table metadata") {
		t.Fatalf("tablez against a bare server = %v, want ErrRemote no-table-metadata", err)
	}
}

// TestStreamHashMismatchFails is the hash contract's pin (referenced by
// docs/ARCHITECTURE.md): a batch frame whose stamped chain hash does not
// match the client's locally recomputed one must fail the stream loudly
// — a spliced or corrupted resume can never be consumed silently.
func TestStreamHashMismatchFails(t *testing.T) {
	before := runtime.NumGoroutine()
	body := []byte("not a real batch; the hash check runs before decode")
	addr, done := fakeServer(t, func(conn net.Conn) {
		bad := chainStep(chainSeed, body) ^ 1
		writeFrame(conn, frameBatch, encodeBatchFrame(0, bad, body))
	})
	rs, err := NewClient(addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rs.Next(context.Background())
	if err == nil || !strings.Contains(err.Error(), "stream hash mismatch") {
		t.Fatalf("Next on a mis-stamped frame = %v, want a stream hash mismatch", err)
	}
	rs.Close()
	<-done
	testutil.WaitForGoroutines(t, before)
}
