package dppnet

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dpp"
	"repro/internal/testutil"
)

// TestDrainFailoverMidStreamByteIdentical is the graceful-handoff
// contract: a server entering drain mode hands its in-flight batch
// session a drain notice, and a client with a Failover address continues
// the stream on the second server by deterministic offset replay — the
// merged stream byte-identical to an uninterrupted run. The draining
// server also refuses fresh opens with an error naming the drain.
func TestDrainFailoverMidStreamByteIdentical(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 240)
	// A small credit window keeps the server close behind the consumer,
	// so the drain notice lands well before the ~20-batch stream ends.
	spec := dpp.Spec{Spec: alignedSpec(), Readers: 1, Buffer: 2}

	ref := startServer(t, env, dpp.Config{})
	rsRef, err := NewClient(ref.addr).Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := drainRemote(t, rsRef)
	ref.shutdown(t)
	if len(want) < 10 {
		t.Fatalf("reference stream has %d batches; the drain needs a mid-stream window", len(want))
	}

	h1 := startServer(t, env, dpp.Config{})
	h2 := startServer(t, env, dpp.Config{})
	client := NewClient(h1.addr)
	client.Failover = []string{h2.addr}
	rs, err := client.Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := consumeRemote(t, rs, 2)
	h1.srv.Drain()
	got = append(got, drainRemote(t, rs)...)
	mustEqualBatches(t, got, want)

	if n := rs.DrainHandoffs(); n < 1 {
		t.Fatalf("DrainHandoffs = %d, want >= 1 (the session failed over to %s)", n, h2.addr)
	}
	st := h1.srv.Stats()
	if !st.Draining || st.DrainNotices < 1 {
		t.Fatalf("drained server stats %+v: want Draining with >= 1 drain notice handed out", st)
	}
	if n := h2.srv.Stats().ReplayedSessions; n < 1 {
		t.Fatalf("failover server ReplayedSessions = %d, want >= 1 (the handoff splices by offset replay)", n)
	}

	// A gateless draining server still refuses fresh opens, with the
	// error text fleet clients match to route around it.
	if _, err := NewClient(h1.addr).Open(context.Background(), spec); !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("open against a draining server = %v, want ErrRemote naming the drain", err)
	}

	h1.shutdown(t)
	h2.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestDrainWithoutFailoverAdvisory: for a client with nowhere to go the
// drain frame is advisory — the server keeps serving until the
// operator's deadline, and the session completes in place, byte-identical
// and with no handoff counted.
func TestDrainWithoutFailoverAdvisory(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 120)
	spec := dpp.Spec{Spec: alignedSpec(), Readers: 1, Buffer: 2}

	h := startServer(t, env, dpp.Config{})
	rsRef, err := NewClient(h.addr).Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := drainRemote(t, rsRef)

	rs, err := NewClient(h.addr).Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := consumeRemote(t, rs, 1)
	h.srv.Drain()
	got = append(got, drainRemote(t, rs)...)
	mustEqualBatches(t, got, want)
	if n := rs.DrainHandoffs(); n != 0 {
		t.Fatalf("DrainHandoffs = %d, want 0 (no failover addresses were configured)", n)
	}
	if st := h.srv.Stats(); st.DrainNotices < 1 {
		t.Fatalf("server stats %+v: the in-flight session should still get its notice", st)
	}

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestDrainUnitSessionTerminal: a file-unit stream surfaces the drain as
// ErrDrained instead of failing over itself — re-homing unit streams is
// the fleet multiplexer's job, which reroutes the shard's unconsumed
// files so nothing already served is refetched.
func TestDrainUnitSessionTerminal(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 160)
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	spec := dpp.Spec{Spec: alignedSpec(), Files: files, Readers: 1, Buffer: 2}

	h := startServer(t, env, dpp.Config{})
	rus, err := NewClient(h.addr).OpenUnits(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rus.NextUnit(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.srv.Drain()
	for {
		_, err := rus.NextUnit(context.Background())
		if err == nil {
			continue
		}
		if errors.Is(err, ErrDrained) {
			break
		}
		if err == io.EOF {
			t.Fatal("unit stream reached EOF without surfacing the drain")
		}
		t.Fatalf("NextUnit after Drain = %v, want ErrDrained", err)
	}
	rus.Close()

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}
