package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/dpp"
	"repro/internal/testutil"
)

// Fault-injection coverage for the transport: connections dropped
// mid-frame, the server dying under a blocked Next, clients vanishing
// without a close frame, and malformed handshakes. Every scenario must
// end in a prompt error (never a hang, never a panic) and zero leaked
// goroutines on whichever side survives.

// waitActiveSessions polls the service until no session holds a slot.
func waitActiveSessions(t *testing.T, svc *dpp.Service, want int) {
	t.Helper()
	testutil.Eventually(t, func() bool { return svc.Stats().ActiveSessions == want },
		"service session count settles to %d", want)
}

// TestClientVanishDuringSend: a client that disappears without a close
// frame — its connection just dies — must not strand the server-side
// session, its reader goroutines, or its service slot, even while the
// server is parked waiting for credits.
func TestClientVanishDuringSend(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Vanish: kill the socket out from under the session, no protocol
	// goodbye. The server is mid-stream (window exhausted or filling).
	rs.conn.Close()

	waitActiveSessions(t, h.svc, 0)

	// The client half observes the dead connection as an error, not EOF.
	for {
		_, err := rs.Next(context.Background())
		if err == nil {
			continue
		}
		if errors.Is(err, io.EOF) {
			t.Fatal("vanished connection surfaced as clean EOF")
		}
		break
	}
	rs.Close()

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestServerKillDuringNext: killing the server while the client is
// blocked in Next surfaces a prompt transport error on the client —
// never a hang — and tears everything down leak-free.
func TestServerKillDuringNext(t *testing.T) {
	before := runtime.NumGoroutine()

	// A wide scan (hundreds of batches) so the kill provably lands with
	// most of the stream still unsent: the consumer outruns the server's
	// decode pace, so it spends its time parked inside Next.
	env := newTestEnv(t, 400)
	h := startServer(t, env, dpp.Config{})
	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}

	midStream := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		consumed := 0
		for {
			_, err := rs.Next(context.Background())
			if err != nil {
				errCh <- err
				return
			}
			consumed++
			if consumed == 2 {
				close(midStream) // provably mid-stream; the kill may fire
			}
		}
	}()

	select {
	case <-midStream:
	case err := <-errCh:
		t.Fatalf("stream died before the kill: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("stream never started")
	}
	h.shutdown(t) // kill the server while the consumer is in Next

	select {
	case err := <-errCh:
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("killed server surfaced as %v, want transport error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next hung across server kill")
	}
	rs.Close()

	testutil.WaitForGoroutines(t, before)
}

// fakeServer accepts one dppnet connection, replies to the handshake
// with frameOK, then runs inject over the raw connection — the hook for
// serving protocol garbage a real server never sends.
func fakeServer(t *testing.T, inject func(net.Conn)) (addr string, done chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		preamble := make([]byte, len(protoMagic)+1)
		if _, err := io.ReadFull(br, preamble); err != nil {
			return
		}
		if typ, _, err := readFrame(br, maxControlFrameBytes); err != nil || typ != frameOpen {
			return
		}
		if err := writeFrame(conn, frameOK, nil); err != nil {
			return
		}
		inject(conn)
	}()
	return ln.Addr().String(), done
}

// TestMidFrameConnectionDrop: the server dies halfway through a batch
// frame — length prefix promises more bytes than ever arrive. The client
// must fail with a truncation error, not block or misparse.
func TestMidFrameConnectionDrop(t *testing.T) {
	before := runtime.NumGoroutine()

	addr, done := fakeServer(t, func(conn net.Conn) {
		var hdr bytes.Buffer
		hdr.WriteByte(frameBatch)
		hdr.Write([]byte{0xE8, 0x07}) // uvarint 1000: a 1000-byte payload...
		hdr.Write(make([]byte, 10))   // ...of which only 10 bytes exist
		conn.Write(hdr.Bytes())
	})

	rs, err := NewClient(addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rs.Next(context.Background())
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("mid-frame drop returned %v, want transport error", err)
	}
	rs.Close()
	<-done

	testutil.WaitForGoroutines(t, before)
}

// TestCorruptBatchFrame: a well-framed batch whose payload is garbage
// must surface as a decode error from Next — the codec's plausibility
// checks, not a panic, are the failure mode.
func TestCorruptBatchFrame(t *testing.T) {
	before := runtime.NumGoroutine()

	addr, done := fakeServer(t, func(conn net.Conn) {
		writeFrame(conn, frameBatch, []byte("XBATgarbage-that-is-not-a-batch"))
	})

	rs, err := NewClient(addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rs.Next(context.Background())
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("corrupt batch returned %v, want decode error", err)
	}
	rs.Close()
	<-done

	testutil.WaitForGoroutines(t, before)
}

// TestOversizedFrameRejected: a frame announcing more than maxFrameBytes
// is refused before any allocation happens.
func TestOversizedFrameRejected(t *testing.T) {
	before := runtime.NumGoroutine()

	addr, done := fakeServer(t, func(conn net.Conn) {
		var hdr bytes.Buffer
		hdr.WriteByte(frameBatch)
		hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // uvarint ~2^55
		conn.Write(hdr.Bytes())
	})

	rs, err := NewClient(addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rs.Next(context.Background())
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized frame returned %v, want limit error", err)
	}
	rs.Close()
	<-done

	testutil.WaitForGoroutines(t, before)
}

// rawDial opens a TCP connection to a real server for hand-rolled
// protocol abuse.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestServerRejectsMalformedHandshake drives the server with broken
// preambles and handshakes: wrong magic (dropped silently), bad JSON, an
// unknown request kind, and a session request without a spec. The server
// must answer with an error frame (or just close), never open a session,
// and leak nothing.
func TestServerRejectsMalformedHandshake(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 10)
	h := startServer(t, env, dpp.Config{})

	expectErrorFrame := func(t *testing.T, conn net.Conn) {
		t.Helper()
		br := bufio.NewReader(conn)
		typ, payload, err := readFrame(br, maxFrameBytes)
		if err != nil {
			t.Fatalf("reading server reply: %v", err)
		}
		if typ != frameError || len(payload) == 0 {
			t.Fatalf("server replied frame %#x %q, want non-empty error frame", typ, payload)
		}
	}

	t.Run("wrong magic", func(t *testing.T) {
		conn := rawDial(t, h.addr)
		defer conn.Close()
		conn.Write([]byte("HTTP/1.1 GET /statsz\r\n"))
		// The server drops the connection without a reply: there is no
		// known framing to answer in.
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if n, err := conn.Read(buf); err != io.EOF {
			t.Fatalf("read after bad magic = (%d, %v), want EOF", n, err)
		}
	})
	t.Run("bad json", func(t *testing.T) {
		conn := rawDial(t, h.addr)
		defer conn.Close()
		conn.Write(append([]byte(protoMagic), protoVersion))
		writeFrame(conn, frameOpen, []byte("{not json"))
		expectErrorFrame(t, conn)
	})
	t.Run("unknown kind", func(t *testing.T) {
		conn := rawDial(t, h.addr)
		defer conn.Close()
		conn.Write(append([]byte(protoMagic), protoVersion))
		payload, _ := json.Marshal(openRequest{Kind: "exfiltrate"})
		writeFrame(conn, frameOpen, payload)
		expectErrorFrame(t, conn)
	})
	t.Run("session without spec", func(t *testing.T) {
		conn := rawDial(t, h.addr)
		defer conn.Close()
		conn.Write(append([]byte(protoMagic), protoVersion))
		payload, _ := json.Marshal(openRequest{Kind: kindSession, Window: 4})
		writeFrame(conn, frameOpen, payload)
		expectErrorFrame(t, conn)
	})
	t.Run("zero window", func(t *testing.T) {
		conn := rawDial(t, h.addr)
		defer conn.Close()
		conn.Write(append([]byte(protoMagic), protoVersion))
		ws, err := encodeSpec(dpp.Spec{Spec: alignedSpec()})
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := json.Marshal(openRequest{Kind: kindSession, Spec: ws})
		writeFrame(conn, frameOpen, payload)
		expectErrorFrame(t, conn)
	})

	if n := h.svc.Stats().SessionsOpened; n != 0 {
		t.Fatalf("malformed handshakes opened %d sessions", n)
	}
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestAbandonedSessionAfterCancel: cancelling the Open context must tear
// the whole session down even if the consumer never calls Next or Close
// afterwards — Open documents cancel as equivalent to Close, so an
// abandoned RemoteSession may strand neither the server-side slot nor
// the client's receive goroutine (which at that point is sitting on a
// full credit window of undelivered batches).
func TestAbandonedSessionAfterCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := NewClient(h.addr).Open(ctx, dpp.Spec{Spec: alignedSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let the server exhaust the window so the receiver has buffered
	// batches it will never deliver.
	testutil.Eventually(t, func() bool { return h.svc.Stats().BatchesServed >= 1 },
		"server started streaming")
	cancel()
	_ = rs // abandoned: no Close, no further Next

	waitActiveSessions(t, h.svc, 0)
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestOpenCancelledDuringHandshake: a server that accepts the TCP
// connection but never answers the handshake cannot wedge Open past its
// context — cancellation must interrupt the handshake read.
func TestOpenCancelledDuringHandshake(t *testing.T) {
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // hold the connection open, reply with nothing
		}
	}()
	defer ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = NewClient(ln.Addr().String()).Open(ctx, dpp.Spec{Spec: alignedSpec()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Open against a mute server = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Open took %v to observe cancellation", elapsed)
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}

	testutil.WaitForGoroutines(t, before)
}

// TestRemoteOpenRejectsBadSpec: admission errors cross the wire — an
// invalid spec fails at Open with the server's message, wrapped in
// ErrRemote, and holds no slot.
func TestRemoteOpenRejectsBadSpec(t *testing.T) {
	env := newTestEnv(t, 10)
	h := startServer(t, env, dpp.Config{})

	bad := alignedSpec()
	bad.BatchSize = 0
	if _, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: bad}); !errors.Is(err, ErrRemote) {
		t.Fatalf("Open with invalid spec = %v, want ErrRemote", err)
	}
	missing := alignedSpec()
	missing.Table = "no_such_table"
	if _, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: missing}); !errors.Is(err, ErrRemote) {
		t.Fatalf("Open with unknown table = %v, want ErrRemote", err)
	}
	if n := h.svc.Stats().ActiveSessions; n != 0 {
		t.Fatalf("rejected opens left %d sessions", n)
	}
}
