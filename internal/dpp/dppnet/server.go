package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dpp"
	"repro/internal/dpp/front"
	"repro/internal/metrics"
)

// errDraining refuses a session handshake while the server drains. The
// text deliberately contains "draining": fleet clients (dppshard) match
// it to route new opens around a draining shard instead of failing.
var errDraining = errors.New("dppnet: server draining")

// Server fronts one dpp.Service on a TCP listener: every accepted
// connection is one handshake — a streamed session or a statsz probe.
// Sessions opened over the wire are ordinary service sessions, so they
// share the service's admission cap, ScanCache, and accounting with any
// in-process sessions on the same Service.
type Server struct {
	svc *dpp.Service

	// OnSession, when non-nil, receives one SessionEvent per session
	// lifecycle transition this server serves (open, close, error) — the
	// feed an access log subscribes to. Set it before Serve; it is read
	// from handler goroutines and must not be mutated afterwards. The
	// callback runs on the serving path and must be cheap and non-blocking
	// (obs.AccessLog.Record is; anything that can stall must hand off).
	OnSession func(SessionEvent)

	// Tablez, when non-nil, is the served table's metadata answered to
	// tablez handshakes — what lets recd-train -connect start cold from
	// the wire. Set before Serve.
	Tablez *TableMeta

	// ResumeTTL bounds how long a dropped resumable session's parked
	// state is kept before eviction (0 means defaultResumeTTL).
	// ResumeMax bounds the parked-session table (0 means
	// defaultResumeMax; negative disables parking — resume then always
	// takes the offset-replay path). Set both before Serve.
	ResumeTTL time.Duration
	ResumeMax int

	// Gate, when non-nil, is the multi-tenant front door every session
	// handshake passes through: the handshake's auth_token is
	// authenticated and the tenant's quotas charged *before* any session
	// state is allocated, and the session's tenant threads into its
	// spec, resume entry, access-log events, and metrics. Several
	// servers (recd-serve's shards) may share one Gate so quotas span
	// the process. statsz and tablez probes stay unauthenticated — they
	// are read-only operational metadata, the /healthz of the wire. Set
	// before Serve.
	Gate *front.Gate

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// Drain mode: draining flips once, drainCh closes to wake stalled
	// serving loops so they push the drain notice promptly.
	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{}

	// resumeClock, when non-nil, replaces the wall clock for resume
	// expiry (park/claim/janitor) — the test seam that makes same-tick
	// parking reproducible. Set before Serve.
	resumeClock func() time.Time

	// Transport accounting, exported through Stats for the observability
	// sidecar: internal/metrics atomics, so the serving loop never takes
	// a lock to count.
	connsAccepted    metrics.Counter
	connsActive      metrics.Gauge
	sessionsServed   metrics.Counter
	batchesSent      metrics.Counter
	unitsSent        metrics.Counter
	bytesSent        metrics.Counter
	creditStalls     metrics.Counter
	creditStallNS    metrics.Counter
	resumedSessions  metrics.Counter
	replayedSessions metrics.Counter
	replayedBatches  metrics.Counter
	parkedSessions   metrics.Counter
	resumeExpired    metrics.Counter
	drainNotices     metrics.Counter
	sessionSeq       atomic.Int64

	resume resumeTable

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// SessionEvent is one access-log record from the server's perspective.
// Kind is "open" (a session was admitted), "close" (its stream ended —
// Detail says how: "eof", "teardown", or "error: ..."), or "error" (the
// handshake or admission failed; no session existed).
type SessionEvent struct {
	// Kind is "open", "close", or "error".
	Kind string
	// ID is a server-local session sequence number tying an open event to
	// its close; 0 for pre-admission errors.
	ID int64
	// Peer is the client's remote address.
	Peer string
	// Table is the spec's table name.
	Table string
	// FileUnits marks a fleet shard's file-unit session.
	FileUnits bool
	// ShareScans marks a session that opted into the ScanCache.
	ShareScans bool
	// Batches and Bytes count frames and payload bytes shipped; set on
	// close events (for file-unit sessions, Batches counts unit frames).
	Batches, Bytes int64
	// Duration is the session's wall-clock lifetime; set on close events.
	Duration time.Duration
	// Resumed marks a reconnect: this session continued earlier state
	// (by token) or replayed to an offset, rather than starting fresh.
	// Offset is the stream index it continued from.
	Resumed bool
	Offset  int64
	// Tenant is the authenticated tenant the session (or failed
	// handshake) belongs to; empty when the server runs without a Gate.
	Tenant string
	// Detail carries the outcome or error text; a resumable session
	// whose connection dropped closes with Detail "parked".
	Detail string
}

// ServerStats is a snapshot of the server's transport accounting.
type ServerStats struct {
	// ConnsAccepted counts every accepted connection; ConnsActive is the
	// number currently being handled.
	ConnsAccepted, ConnsActive int64
	// SessionsServed counts admitted wire sessions (batch and file-unit).
	SessionsServed int64
	// BatchesSent and UnitsSent count payload frames shipped; BytesSent
	// totals their payload bytes.
	BatchesSent, UnitsSent, BytesSent int64
	// CreditStalls counts credit-window exhaustion episodes — the serving
	// loop wanted to send but the consumer owed credits — and
	// CreditStallTime totals the time spent blocked in them. This is the
	// wire-level twin of the sessions' ConsumerStall signal.
	CreditStalls    int64
	CreditStallTime time.Duration
	// ResumedSessions counts handshakes that continued an earlier stream
	// by claiming its parked token — retained frames resent, nothing
	// re-decoded. ReplayedSessions counts handshakes that continued by
	// deterministic offset replay instead (no parked state; the prefix
	// was re-pulled and discarded). The two are deliberately distinct:
	// a fleet that "recovers" only ever via replay is burning decode
	// work the resume path exists to avoid. ReplayedBatches counts the
	// frames pulled and discarded to reach replay offsets.
	// ParkedSessions counts resumable sessions whose state was parked
	// after a dropped connection; ResumeExpired counts parked entries
	// evicted (TTL or capacity) before anyone claimed them.
	ResumedSessions  int64
	ReplayedSessions int64
	ReplayedBatches  int64
	ParkedSessions   int64
	ResumeExpired    int64
	// DrainNotices counts drain frames handed to in-flight clients;
	// Draining reports whether the server has entered drain mode.
	DrainNotices int64
	Draining     bool
}

// Stats returns a snapshot of the transport accounting. Lock-free; safe
// to poll at any frequency.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ConnsAccepted:    s.connsAccepted.Value(),
		ConnsActive:      s.connsActive.Value(),
		SessionsServed:   s.sessionsServed.Value(),
		BatchesSent:      s.batchesSent.Value(),
		UnitsSent:        s.unitsSent.Value(),
		BytesSent:        s.bytesSent.Value(),
		CreditStalls:     s.creditStalls.Value(),
		CreditStallTime:  time.Duration(s.creditStallNS.Value()),
		ResumedSessions:  s.resumedSessions.Value(),
		ReplayedSessions: s.replayedSessions.Value(),
		ReplayedBatches:  s.replayedBatches.Value(),
		ParkedSessions:   s.parkedSessions.Value(),
		ResumeExpired:    s.resumeExpired.Value(),
		DrainNotices:     s.drainNotices.Value(),
		Draining:         s.draining.Load(),
	}
}

// event hands one access-log record to the OnSession subscriber, if any.
func (s *Server) event(ev SessionEvent) {
	if s.OnSession != nil {
		s.OnSession(ev)
	}
}

// NewServer wraps a service; call Serve to start accepting.
func NewServer(svc *dpp.Service) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{svc: svc, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{}),
		drainCh: make(chan struct{})}
}

// Drain puts the server in drain mode: new session handshakes and resume
// claims are refused (with an error fleet clients route around), parking
// stops, and every in-flight session is handed one drain frame carrying
// its resume token and current offset so the client can fail over to
// another address mid-stream. Serving continues — Drain never cuts a
// stream; the operator calls Close once ConnsActive reaches zero (or a
// deadline passes). Idempotent and safe from any goroutine.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		if s.Gate != nil {
			s.Gate.Drain()
		}
		close(s.drainCh)
	})
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections on ln until Close (which returns nil) or a
// listener failure (which returns the error). Each connection is handled
// on its own goroutine; Serve itself blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dppnet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsAccepted.Inc()
		s.connsActive.Inc()
		go func() {
			defer s.wg.Done()
			defer s.forget(conn)
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, force-closes every live connection (tearing
// their sessions down), and waits for the handlers to drain. The
// underlying dpp.Service is left open — it belongs to the caller.
// Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.cancel()
	ln := s.ln
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// A handler blocked mid-Write to a stalled client only unblocks when
	// its connection dies; ctx cancellation alone cannot reach it.
	for _, c := range open {
		c.Close()
	}
	s.wg.Wait()
	// With every handler (and the resume janitor) drained, nothing can
	// park or claim anymore; close whatever is still parked.
	s.drainResume()
	return nil
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.connsActive.Dec()
}

// handle runs one connection's conversation. Every exit path closes the
// connection, which is also what tears down the connection-reader
// goroutine and (via ctx) the session.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Preamble: magic + version. Anything else is not a dppnet client;
	// drop the connection without a reply (there is no known framing to
	// reply in).
	preamble := make([]byte, len(protoMagic)+1)
	if _, err := io.ReadFull(br, preamble); err != nil {
		return
	}
	if string(preamble[:len(protoMagic)]) != protoMagic || preamble[len(protoMagic)] != protoVersion {
		return
	}

	peer := conn.RemoteAddr().String()
	typ, payload, err := readFrame(br, maxControlFrameBytes)
	if err != nil || typ != frameOpen {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: "expected open frame"})
		writeError(bw, fmt.Errorf("dppnet: expected open frame"))
		return
	}
	req, err := decodeOpenRequest(payload)
	if err != nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: "malformed handshake"})
		writeError(bw, fmt.Errorf("dppnet: malformed handshake: %w", err))
		return
	}

	switch req.Kind {
	case kindStatsz:
		s.serveStatsz(bw)
	case kindTablez:
		s.serveTablez(bw)
	case kindSession:
		s.serveStream(peer, br, bw, &req)
	default:
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: fmt.Sprintf("unknown request kind %q", req.Kind)})
		writeError(bw, fmt.Errorf("dppnet: unknown request kind %q", req.Kind))
	}
}

// serveStatsz answers the wire form of /statsz: the service's aggregate
// stats as JSON, then EOF.
func (s *Server) serveStatsz(bw *bufio.Writer) {
	payload, err := json.Marshal(s.svc.Stats())
	if err != nil {
		writeError(bw, err)
		return
	}
	if writeFrame(bw, frameSvcStats, payload) == nil {
		bw.Flush()
	}
}

// serveTablez answers the tablez conversation with the served table's
// metadata, if recd-serve published any.
func (s *Server) serveTablez(bw *bufio.Writer) {
	if s.Tablez == nil {
		writeError(bw, fmt.Errorf("dppnet: no table metadata served here"))
		return
	}
	payload, err := encodeTableMeta(s.Tablez)
	if err != nil {
		writeError(bw, err)
		return
	}
	if writeFrame(bw, frameTablez, payload) == nil {
		bw.Flush()
	}
}

// serveStream opens — or resumes — a streamed session for the handshake
// and runs the credit-window serving loop until exhaustion, error, or
// teardown from either side. Both session kinds (batch and file-unit)
// run through here; the wireStream adapter hides the difference.
//
// Resume has three entry shapes:
//   - Token set: claim the parked entry it names and resend the retained
//     frames from the client's offset — no re-decoding at all.
//   - Offset without token (or after a token was refused): open a fresh
//     session and replay the deterministic stream to the offset,
//     discarding frames (cheap against a warm ScanCache) while the
//     rolling chain hash catches up.
//   - Neither: an ordinary fresh session from index 0.
//
// A resumable session's stream lives under the *server* context, not the
// connection's: when the connection dies without a close frame, the loop
// parks the live stream plus its unacknowledged frames instead of
// closing it, and a later handshake picks it up byte-where-it-left-off.
func (s *Server) serveStream(peer string, br *bufio.Reader, bw *bufio.Writer, req *openRequest) {
	tenant := ""
	fail := func(table, detail string, err error) {
		s.event(SessionEvent{Kind: "error", Peer: peer, Table: table, FileUnits: req.FileUnits,
			Tenant: tenant, Detail: detail})
		writeError(bw, err)
	}
	// Admission runs before anything else — before the spec is even
	// decoded — so an unauthenticated or over-quota open is judged
	// against zero allocated session state. The lease holds the tenant's
	// concurrency slot for this connection's lifetime and meters streamed
	// bytes against its budget; a parked session keeps only its byte
	// charge (the slot frees with the connection, and the resume
	// handshake re-admits because the client resends its auth token).
	var lease *front.Lease
	if s.Gate != nil {
		var aerr error
		lease, aerr = s.Gate.Admit(req.AuthToken)
		if aerr != nil {
			fail("", "admission: "+aerr.Error(), aerr)
			return
		}
		tenant = lease.Tenant
		defer lease.Release()
	} else if s.draining.Load() {
		fail("", errDraining.Error(), errDraining)
		return
	}
	if req.Spec == nil {
		fail("", "session handshake has no spec", fmt.Errorf("dppnet: session handshake has no spec"))
		return
	}
	window := req.Window
	if window <= 0 || window > maxWindow {
		fail("", fmt.Sprintf("window %d out of range", req.Window), fmt.Errorf("dppnet: window %d out of range [1,%d]", req.Window, maxWindow))
		return
	}
	spec, err := decodeSpec(req.Spec)
	if err != nil {
		fail("", err.Error(), err)
		return
	}
	// The tenant is a serving-side fact: it comes from the authenticated
	// lease, never from the wire spec.
	spec.Tenant = tenant
	resumable := req.Resumable || req.Token != ""
	// A Follow session's length is decided by the landing writer, not the
	// plan, so neither the file-unit merge (which needs the full plan up
	// front) nor resume (whose identity check hashes a frozen file list)
	// composes with it. Reject at the handshake, before any session state
	// exists.
	if spec.Follow && (req.FileUnits || resumable || req.Offset > 0) {
		ferr := fmt.Errorf("dppnet: follow sessions are incompatible with file units and resume")
		fail(spec.Table, ferr.Error(), ferr)
		return
	}
	fingerprint := spec.Spec.Fingerprint()
	filesHash := fileListHash(spec.Files)

	var (
		stream       wireStream
		streamCtx    context.Context
		streamCancel context.CancelFunc
		entry        *resumeEntry // claimed parked state, nil for a fresh open
		token        string
		sent, acked  int64 // stream frame indices: produced / client-confirmed
		base         int64 // index of retained[0]
		retained     [][]byte
	)
	resumed := req.Token != "" || req.Offset > 0

	// Follow plumbing: the session's tailer announces newly landed files
	// through OnExtend, which runs on the tailer goroutine — so it only
	// queues the notice under a mutex, and the serving loop (the
	// connection's single writer) drains the queue as extend frames.
	// followSess is the EndFollow target for the client's end-follow frame.
	var (
		followSess *dpp.Session
		extMu      sync.Mutex
		extPending []extendNotice
	)
	if spec.Follow {
		spec.OnExtend = func(files []string) {
			extMu.Lock()
			extPending = append(extPending, extendNotice{Files: append([]string(nil), files...)})
			extMu.Unlock()
		}
	}

	if req.Token != "" {
		entry, err = s.claimResume(req.Token, tenant, req.FileUnits, fingerprint, filesHash, req.Offset)
		if err != nil {
			fail(spec.Table, err.Error(), err)
			return
		}
		stream, streamCtx, streamCancel = entry.stream, entry.ctx, entry.cancel
		token = entry.token
		sent = entry.sent
		// The offset acknowledges everything below it; what remains of the
		// retained buffer is resent on this connection.
		retained = entry.retained[req.Offset-entry.acked:]
		acked, base = req.Offset, req.Offset
	} else {
		// The stream's context is the server's for resumable sessions (it
		// must outlive this connection to be parked) and effectively the
		// connection's otherwise — either way the exit path below cancels
		// it unless the stream is parked.
		streamCtx, streamCancel = context.WithCancel(s.ctx)
		if req.FileUnits {
			us, oerr := s.svc.OpenUnits(streamCtx, spec)
			if oerr != nil {
				err = oerr
			} else {
				stream = newUnitWire(us)
			}
		} else {
			sess, oerr := s.svc.Open(streamCtx, spec)
			if oerr != nil {
				err = oerr
			} else {
				stream = newBatchWire(sess)
				if spec.Follow {
					followSess = sess
				}
			}
		}
		if err != nil {
			streamCancel()
			fail(spec.Table, err.Error(), err)
			return
		}
		if resumable {
			if token, err = newResumeToken(); err != nil {
				streamCancel()
				stream.close()
				fail(spec.Table, err.Error(), err)
				return
			}
		}
		// Offset replay: the deterministic stream contract makes the
		// replayed prefix byte-identical to what the client already
		// consumed, so discarding it re-synchronizes index and chain.
		for sent < req.Offset {
			if _, rerr := stream.next(streamCtx); rerr != nil {
				if rerr == io.EOF {
					rerr = fmt.Errorf("dppnet: resume offset %d beyond end of stream at %d", req.Offset, sent)
				}
				streamCancel()
				stream.close()
				fail(spec.Table, rerr.Error(), rerr)
				return
			}
			sent++
			s.replayedBatches.Inc()
		}
		acked, base = sent, sent
	}
	// The two continuation paths count separately: a token resume resent
	// retained frames without re-decoding anything, an offset replay
	// re-pulled the prefix. Conflating them hid replay-only "recoveries"
	// behind the resume counter (the soak gate watched the wrong number).
	if req.Token != "" {
		s.resumedSessions.Inc()
	} else if resumed {
		s.replayedSessions.Inc()
	}

	id := s.sessionSeq.Add(1)
	s.sessionsServed.Inc()
	opened := time.Now()
	s.event(SessionEvent{Kind: "open", ID: id, Peer: peer, Table: spec.Table, FileUnits: req.FileUnits,
		ShareScans: spec.ShareScans, Resumed: resumed, Offset: req.Offset, Tenant: tenant})

	var connSent, connBytes int64
	outcome := "teardown"
	park := false
	okSent := false
	var clientClosed atomic.Bool
	// Declared before the park/close defer so it runs after it and sees
	// the final outcome.
	defer func() {
		s.event(SessionEvent{Kind: "close", ID: id, Peer: peer, Table: spec.Table, FileUnits: req.FileUnits,
			ShareScans: spec.ShareScans, Resumed: resumed, Offset: req.Offset, Tenant: tenant,
			Batches: connSent, Bytes: connBytes, Duration: time.Since(opened), Detail: outcome})
	}()
	defer func() {
		if park {
			e := entry
			if e == nil {
				e = &resumeEntry{token: token, fileUnits: req.FileUnits, fingerprint: fingerprint,
					filesHash: filesHash, table: spec.Table, shareScans: spec.ShareScans, window: window,
					tenant: tenant, ctx: streamCtx, cancel: streamCancel, stream: stream}
			}
			e.sent, e.acked, e.retained = sent, acked, retained
			if s.park(e) {
				s.parkedSessions.Inc()
				outcome = "parked"
				return
			}
		}
		if token != "" {
			s.dropResume(token)
		}
		streamCancel()
		stream.close()
	}()
	// canPark: the connection is gone but the stream is healthy, the
	// client neither closed cleanly nor is the server shutting down, and
	// the client holds (or was sent) the token it would resume with.
	canPark := func() bool {
		return resumable && !clientClosed.Load() && streamCtx.Err() == nil && (entry != nil || okSent)
	}

	var okPayload []byte
	if token != "" {
		okPayload, err = json.Marshal(okReply{Token: token})
		if err != nil {
			outcome = "error: " + err.Error()
			writeError(bw, err)
			return
		}
	}
	if writeFrame(bw, frameOK, okPayload) != nil || bw.Flush() != nil {
		park = canPark()
		return
	}
	okSent = true

	// Connection reader: credits and close requests. It owns br from
	// here on and exits — cancelling the connection context, never the
	// stream's — when the connection dies or the client half-closes.
	connCtx, connCancel := context.WithCancel(streamCtx)
	defer connCancel()
	credits := make(chan int64, 1)
	go func() {
		defer connCancel()
		for {
			typ, payload, err := readFrame(br, maxControlFrameBytes)
			if err != nil {
				return
			}
			switch typ {
			case frameCredit:
				n, err := decodeCredit(payload)
				if err != nil {
					return
				}
				select {
				case credits <- n:
				case <-connCtx.Done():
					return
				}
			case frameClose:
				clientClosed.Store(true)
				return
			case frameEndFollow:
				// End the tail but keep the conversation: the stream
				// drains the already-announced files to a normal EOF,
				// which the serving loop ships with stats as usual. A
				// no-op on non-follow sessions.
				if followSess != nil {
					followSess.EndFollow()
				}
			default:
				return
			}
		}
	}()

	ftype := stream.frameType()
	countFrame := func(payload []byte) {
		if req.FileUnits {
			s.unitsSent.Inc()
		} else {
			s.batchesSent.Inc()
		}
		s.bytesSent.Add(int64(len(payload)))
		if lease != nil {
			lease.AddBytes(int64(len(payload)))
		}
		connSent++
		connBytes += int64(len(payload))
	}
	// Drain notice: once the server enters drain mode, each in-flight
	// session is told exactly once — a drain frame carrying the resume
	// token (empty for non-resumable sessions, which can still replay by
	// offset) and the stream index reached, so the client can splice the
	// rest of the stream from another address. The notice is advisory:
	// serving continues here until the client acts or the operator
	// closes. drainWatch arms the credit-stall select so a stalled
	// session learns about the drain promptly instead of at next send.
	drainNotified := false
	drainWatch := s.drainCh
	notifyDrain := func() bool {
		if drainNotified || !s.draining.Load() {
			return true
		}
		drainNotified = true
		drainWatch = nil
		payload, merr := json.Marshal(drainNotice{Token: token, Offset: sent})
		if merr != nil {
			return true // keep serving; the notice is best-effort
		}
		if writeFrame(bw, frameDrain, payload) != nil || bw.Flush() != nil {
			return false
		}
		s.drainNotices.Inc()
		return true
	}
	// drainExtends writes the extend notices the Follow tailer has queued
	// since the last drain. Only this loop writes them — the tailer's
	// callback goroutine never touches the connection — and, like drain
	// frames, they are advisory control chatter outside the chain hash.
	// They are written right before the stream frame that follows them,
	// so a tailing client learns which files landed before their batches
	// arrive.
	drainExtends := func() bool {
		extMu.Lock()
		pend := extPending
		extPending = nil
		extMu.Unlock()
		for _, en := range pend {
			payload, merr := json.Marshal(en)
			if merr != nil {
				continue // advisory; never fail the stream over it
			}
			if writeFrame(bw, frameExtend, payload) != nil {
				return false
			}
		}
		return true
	}
	// Resend the retained frames a claimed entry still owes the client —
	// they were produced before the drop, so they don't pull from the
	// stream and are already within the client's granted window.
	for _, p := range retained {
		if writeFrame(bw, ftype, p) != nil {
			park = canPark()
			return
		}
		countFrame(p)
	}
	if len(retained) > 0 {
		if bw.Flush() != nil {
			park = canPark()
			return
		}
	}

	// prune drops retained frames the client has confirmed consuming.
	// Non-resumable sessions retain nothing; the clamp keeps the cursor
	// arithmetic shared.
	prune := func() {
		drop := acked - base
		if drop <= 0 {
			return
		}
		if n := int64(len(retained)); drop > n {
			drop = n
		}
		retained = retained[drop:]
		base = acked
	}
	bank := func(n int64) {
		acked += n
		if acked > sent {
			// Credits beyond what was sent confirm nothing; a correct
			// client can't produce them.
			acked = sent
		}
	}
	for {
		if !notifyDrain() {
			park = canPark()
			return
		}
		if sent-acked >= int64(window) {
			// Credit window exhausted: the serving loop wants to send but
			// the consumer owes credits. Time the episode — this is the
			// wire-level twin of the session's ConsumerStall signal and
			// the credit-stall series /metrics exports.
			stallStart := time.Now()
			s.creditStalls.Inc()
			for sent-acked >= int64(window) {
				select {
				case n := <-credits:
					bank(n)
				case <-drainWatch:
					// Drain began while credit-stalled: push the notice now
					// so the stalled client can fail over instead of sitting
					// on an exhausted window against a dying server.
					if !notifyDrain() {
						s.creditStallNS.Add(int64(time.Since(stallStart)))
						park = canPark()
						return
					}
				case <-connCtx.Done():
					s.creditStallNS.Add(int64(time.Since(stallStart)))
					park = canPark()
					return
				}
			}
			s.creditStallNS.Add(int64(time.Since(stallStart)))
		}
		// Drain any further banked credits without blocking.
		for {
			select {
			case n := <-credits:
				bank(n)
				continue
			default:
			}
			break
		}
		prune()

		payload, err := stream.next(connCtx)
		if err == io.EOF {
			outcome = "eof"
			if !drainExtends() {
				return
			}
			var enc bytes.Buffer
			if err := encodeSessionStats(&enc, stream.stats()); err != nil {
				outcome = "error: " + err.Error()
				writeError(bw, err)
				return
			}
			if writeFrame(bw, frameStats, enc.Bytes()) != nil {
				return
			}
			if writeFrame(bw, frameEOF, nil) != nil {
				return
			}
			bw.Flush()
			return
		}
		if err != nil {
			if connCtx.Err() != nil && streamCtx.Err() == nil {
				// The connection died (or the client closed) mid-pull; the
				// stream itself is intact.
				park = canPark()
				return
			}
			outcome = "error: " + err.Error()
			writeError(bw, err)
			return
		}
		if !drainExtends() {
			park = canPark()
			return
		}
		werr := writeFrame(bw, ftype, payload)
		if werr == nil {
			werr = bw.Flush()
		}
		sent++
		if resumable {
			// Retain until acked: a reconnect resends these instead of
			// re-decoding. Bounded by the credit window.
			retained = append(retained, payload)
		}
		if werr != nil {
			park = canPark()
			return
		}
		countFrame(payload)
	}
}

// writeError best-effort ships an error frame and flushes; the
// connection is about to close either way.
func writeError(bw *bufio.Writer, err error) {
	if writeFrame(bw, frameError, []byte(err.Error())) == nil {
		bw.Flush()
	}
}

// decodeCredit decodes one uvarint credit grant occupying the whole
// payload; zero, oversized, or trailing-byte grants are protocol errors.
func decodeCredit(payload []byte) (int64, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, errors.New("dppnet: malformed credit frame")
	}
	if v == 0 || v > maxWindow {
		return 0, fmt.Errorf("dppnet: credit grant %d out of range", v)
	}
	return int64(v), nil
}
