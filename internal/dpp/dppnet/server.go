package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dpp"
	"repro/internal/metrics"
)

// Server fronts one dpp.Service on a TCP listener: every accepted
// connection is one handshake — a streamed session or a statsz probe.
// Sessions opened over the wire are ordinary service sessions, so they
// share the service's admission cap, ScanCache, and accounting with any
// in-process sessions on the same Service.
type Server struct {
	svc *dpp.Service

	// OnSession, when non-nil, receives one SessionEvent per session
	// lifecycle transition this server serves (open, close, error) — the
	// feed an access log subscribes to. Set it before Serve; it is read
	// from handler goroutines and must not be mutated afterwards. The
	// callback runs on the serving path and must be cheap and non-blocking
	// (obs.AccessLog.Record is; anything that can stall must hand off).
	OnSession func(SessionEvent)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// Transport accounting, exported through Stats for the observability
	// sidecar: internal/metrics atomics, so the serving loop never takes
	// a lock to count.
	connsAccepted  metrics.Counter
	connsActive    metrics.Gauge
	sessionsServed metrics.Counter
	batchesSent    metrics.Counter
	unitsSent      metrics.Counter
	bytesSent      metrics.Counter
	creditStalls   metrics.Counter
	creditStallNS  metrics.Counter
	sessionSeq     atomic.Int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// SessionEvent is one access-log record from the server's perspective.
// Kind is "open" (a session was admitted), "close" (its stream ended —
// Detail says how: "eof", "teardown", or "error: ..."), or "error" (the
// handshake or admission failed; no session existed).
type SessionEvent struct {
	// Kind is "open", "close", or "error".
	Kind string
	// ID is a server-local session sequence number tying an open event to
	// its close; 0 for pre-admission errors.
	ID int64
	// Peer is the client's remote address.
	Peer string
	// Table is the spec's table name.
	Table string
	// FileUnits marks a fleet shard's file-unit session.
	FileUnits bool
	// ShareScans marks a session that opted into the ScanCache.
	ShareScans bool
	// Batches and Bytes count frames and payload bytes shipped; set on
	// close events (for file-unit sessions, Batches counts unit frames).
	Batches, Bytes int64
	// Duration is the session's wall-clock lifetime; set on close events.
	Duration time.Duration
	// Detail carries the outcome or error text.
	Detail string
}

// ServerStats is a snapshot of the server's transport accounting.
type ServerStats struct {
	// ConnsAccepted counts every accepted connection; ConnsActive is the
	// number currently being handled.
	ConnsAccepted, ConnsActive int64
	// SessionsServed counts admitted wire sessions (batch and file-unit).
	SessionsServed int64
	// BatchesSent and UnitsSent count payload frames shipped; BytesSent
	// totals their payload bytes.
	BatchesSent, UnitsSent, BytesSent int64
	// CreditStalls counts credit-window exhaustion episodes — the serving
	// loop wanted to send but the consumer owed credits — and
	// CreditStallTime totals the time spent blocked in them. This is the
	// wire-level twin of the sessions' ConsumerStall signal.
	CreditStalls    int64
	CreditStallTime time.Duration
}

// Stats returns a snapshot of the transport accounting. Lock-free; safe
// to poll at any frequency.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ConnsAccepted:   s.connsAccepted.Value(),
		ConnsActive:     s.connsActive.Value(),
		SessionsServed:  s.sessionsServed.Value(),
		BatchesSent:     s.batchesSent.Value(),
		UnitsSent:       s.unitsSent.Value(),
		BytesSent:       s.bytesSent.Value(),
		CreditStalls:    s.creditStalls.Value(),
		CreditStallTime: time.Duration(s.creditStallNS.Value()),
	}
}

// event hands one access-log record to the OnSession subscriber, if any.
func (s *Server) event(ev SessionEvent) {
	if s.OnSession != nil {
		s.OnSession(ev)
	}
}

// NewServer wraps a service; call Serve to start accepting.
func NewServer(svc *dpp.Service) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{svc: svc, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close (which returns nil) or a
// listener failure (which returns the error). Each connection is handled
// on its own goroutine; Serve itself blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dppnet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsAccepted.Inc()
		s.connsActive.Inc()
		go func() {
			defer s.wg.Done()
			defer s.forget(conn)
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, force-closes every live connection (tearing
// their sessions down), and waits for the handlers to drain. The
// underlying dpp.Service is left open — it belongs to the caller.
// Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.cancel()
	ln := s.ln
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// A handler blocked mid-Write to a stalled client only unblocks when
	// its connection dies; ctx cancellation alone cannot reach it.
	for _, c := range open {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.connsActive.Dec()
}

// handle runs one connection's conversation. Every exit path closes the
// connection, which is also what tears down the connection-reader
// goroutine and (via ctx) the session.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Preamble: magic + version. Anything else is not a dppnet client;
	// drop the connection without a reply (there is no known framing to
	// reply in).
	preamble := make([]byte, len(protoMagic)+1)
	if _, err := io.ReadFull(br, preamble); err != nil {
		return
	}
	if string(preamble[:len(protoMagic)]) != protoMagic || preamble[len(protoMagic)] != protoVersion {
		return
	}

	peer := conn.RemoteAddr().String()
	typ, payload, err := readFrame(br, maxControlFrameBytes)
	if err != nil || typ != frameOpen {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: "expected open frame"})
		writeError(bw, fmt.Errorf("dppnet: expected open frame"))
		return
	}
	var req openRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: "malformed handshake"})
		writeError(bw, fmt.Errorf("dppnet: malformed handshake: %w", err))
		return
	}

	switch req.Kind {
	case kindStatsz:
		s.serveStatsz(bw)
	case kindSession:
		if req.FileUnits {
			s.serveFileUnits(peer, br, bw, &req)
		} else {
			s.serveSession(peer, br, bw, &req)
		}
	default:
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: fmt.Sprintf("unknown request kind %q", req.Kind)})
		writeError(bw, fmt.Errorf("dppnet: unknown request kind %q", req.Kind))
	}
}

// serveStatsz answers the wire form of /statsz: the service's aggregate
// stats as JSON, then EOF.
func (s *Server) serveStatsz(bw *bufio.Writer) {
	payload, err := json.Marshal(s.svc.Stats())
	if err != nil {
		writeError(bw, err)
		return
	}
	if writeFrame(bw, frameSvcStats, payload) == nil {
		bw.Flush()
	}
}

// serveSession opens a service session for the handshake's spec and
// streams it under the credit window until exhaustion, error, or
// teardown from either side.
func (s *Server) serveSession(peer string, br *bufio.Reader, bw *bufio.Writer, req *openRequest) {
	if req.Spec == nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: "session handshake has no spec"})
		writeError(bw, fmt.Errorf("dppnet: session handshake has no spec"))
		return
	}
	window := req.Window
	if window <= 0 || window > maxWindow {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: fmt.Sprintf("window %d out of range", req.Window)})
		writeError(bw, fmt.Errorf("dppnet: window %d out of range [1,%d]", req.Window, maxWindow))
		return
	}
	spec, err := decodeSpec(req.Spec)
	if err != nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, Detail: err.Error()})
		writeError(bw, err)
		return
	}

	// The session lives under a per-connection context: the client
	// vanishing, a close frame, or Server.Close all cancel it, so a
	// remote consumer can never strand a service slot or its reader
	// goroutines.
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	sess, err := s.svc.Open(ctx, spec)
	if err != nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, Table: spec.Table, Detail: err.Error()})
		writeError(bw, err)
		return
	}
	defer sess.Close()

	id := s.sessionSeq.Add(1)
	s.sessionsServed.Inc()
	opened := time.Now()
	s.event(SessionEvent{Kind: "open", ID: id, Peer: peer, Table: spec.Table, ShareScans: spec.ShareScans})
	var sent, sentBytes int64
	outcome := "teardown"
	defer func() {
		s.event(SessionEvent{Kind: "close", ID: id, Peer: peer, Table: spec.Table, ShareScans: spec.ShareScans,
			Batches: sent, Bytes: sentBytes, Duration: time.Since(opened), Detail: outcome})
	}()

	if err := writeFrame(bw, frameOK, nil); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// Connection reader: credits and close requests. It owns br from
	// here on and exits when the connection dies (handle's deferred
	// Close) or the client half-closes.
	credits := make(chan int64, 1)
	go func() {
		defer cancel()
		for {
			typ, payload, err := readFrame(br, maxControlFrameBytes)
			if err != nil {
				return
			}
			switch typ {
			case frameCredit:
				n, err := decodeCredit(payload)
				if err != nil {
					return
				}
				select {
				case credits <- n:
				case <-ctx.Done():
					return
				}
			case frameClose:
				return
			default:
				return
			}
		}
	}()

	var enc bytes.Buffer
	avail := int64(window)
	for {
		if avail <= 0 {
			// Credit window exhausted: the serving loop wants to send but
			// the consumer owes credits. Time the episode — this is the
			// wire-level twin of the session's ConsumerStall signal and
			// the credit-stall series /metrics exports.
			stallStart := time.Now()
			s.creditStalls.Inc()
			for avail <= 0 {
				select {
				case n := <-credits:
					avail += n
				case <-ctx.Done():
					s.creditStallNS.Add(int64(time.Since(stallStart)))
					return
				}
			}
			s.creditStallNS.Add(int64(time.Since(stallStart)))
		}
		// Drain any further banked credits without blocking.
		for {
			select {
			case n := <-credits:
				avail += n
				continue
			default:
			}
			break
		}

		b, err := sess.Next(ctx)
		if err == io.EOF {
			outcome = "eof"
			enc.Reset()
			if err := encodeSessionStats(&enc, sess.Stats()); err != nil {
				outcome = "error: " + err.Error()
				writeError(bw, err)
				return
			}
			if writeFrame(bw, frameStats, enc.Bytes()) != nil {
				return
			}
			if writeFrame(bw, frameEOF, nil) != nil {
				return
			}
			bw.Flush()
			return
		}
		if err != nil {
			outcome = "error: " + err.Error()
			writeError(bw, err)
			return
		}
		enc.Reset()
		if err := b.Encode(&enc); err != nil {
			outcome = "error: " + err.Error()
			writeError(bw, err)
			return
		}
		if writeFrame(bw, frameBatch, enc.Bytes()) != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.batchesSent.Inc()
		s.bytesSent.Add(int64(enc.Len()))
		sent++
		sentBytes += int64(enc.Len())
		avail--
	}
}

// serveFileUnits opens a file-unit session (a fleet shard's serving
// loop) and streams whole decoded files under the credit window — one
// credit per unit frame — until exhaustion, error, or teardown from
// either side. The shape mirrors serveSession exactly; only the payload
// unit differs.
func (s *Server) serveFileUnits(peer string, br *bufio.Reader, bw *bufio.Writer, req *openRequest) {
	if req.Spec == nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, FileUnits: true, Detail: "session handshake has no spec"})
		writeError(bw, fmt.Errorf("dppnet: session handshake has no spec"))
		return
	}
	window := req.Window
	if window <= 0 || window > maxWindow {
		s.event(SessionEvent{Kind: "error", Peer: peer, FileUnits: true, Detail: fmt.Sprintf("window %d out of range", req.Window)})
		writeError(bw, fmt.Errorf("dppnet: window %d out of range [1,%d]", req.Window, maxWindow))
		return
	}
	spec, err := decodeSpec(req.Spec)
	if err != nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, FileUnits: true, Detail: err.Error()})
		writeError(bw, err)
		return
	}

	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	us, err := s.svc.OpenUnits(ctx, spec)
	if err != nil {
		s.event(SessionEvent{Kind: "error", Peer: peer, Table: spec.Table, FileUnits: true, Detail: err.Error()})
		writeError(bw, err)
		return
	}
	defer us.Close()

	id := s.sessionSeq.Add(1)
	s.sessionsServed.Inc()
	opened := time.Now()
	s.event(SessionEvent{Kind: "open", ID: id, Peer: peer, Table: spec.Table, FileUnits: true, ShareScans: spec.ShareScans})
	var sent, sentBytes int64
	outcome := "teardown"
	defer func() {
		s.event(SessionEvent{Kind: "close", ID: id, Peer: peer, Table: spec.Table, FileUnits: true, ShareScans: spec.ShareScans,
			Batches: sent, Bytes: sentBytes, Duration: time.Since(opened), Detail: outcome})
	}()

	if err := writeFrame(bw, frameOK, nil); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	credits := make(chan int64, 1)
	go func() {
		defer cancel()
		for {
			typ, payload, err := readFrame(br, maxControlFrameBytes)
			if err != nil {
				return
			}
			switch typ {
			case frameCredit:
				n, err := decodeCredit(payload)
				if err != nil {
					return
				}
				select {
				case credits <- n:
				case <-ctx.Done():
					return
				}
			case frameClose:
				return
			default:
				return
			}
		}
	}()

	var enc bytes.Buffer
	avail := int64(window)
	for {
		if avail <= 0 {
			stallStart := time.Now()
			s.creditStalls.Inc()
			for avail <= 0 {
				select {
				case n := <-credits:
					avail += n
				case <-ctx.Done():
					s.creditStallNS.Add(int64(time.Since(stallStart)))
					return
				}
			}
			s.creditStallNS.Add(int64(time.Since(stallStart)))
		}
		for {
			select {
			case n := <-credits:
				avail += n
				continue
			default:
			}
			break
		}

		u, err := us.NextUnit(ctx)
		if err == io.EOF {
			outcome = "eof"
			enc.Reset()
			if err := encodeSessionStats(&enc, us.Stats()); err != nil {
				outcome = "error: " + err.Error()
				writeError(bw, err)
				return
			}
			if writeFrame(bw, frameStats, enc.Bytes()) != nil {
				return
			}
			if writeFrame(bw, frameEOF, nil) != nil {
				return
			}
			bw.Flush()
			return
		}
		if err != nil {
			outcome = "error: " + err.Error()
			writeError(bw, err)
			return
		}
		enc.Reset()
		if err := encodeFileUnit(&enc, u); err != nil {
			outcome = "error: " + err.Error()
			writeError(bw, err)
			return
		}
		if writeFrame(bw, frameFileUnit, enc.Bytes()) != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.unitsSent.Inc()
		s.bytesSent.Add(int64(enc.Len()))
		sent++
		sentBytes += int64(enc.Len())
		avail--
	}
}

// writeError best-effort ships an error frame and flushes; the
// connection is about to close either way.
func writeError(bw *bufio.Writer, err error) {
	if writeFrame(bw, frameError, []byte(err.Error())) == nil {
		bw.Flush()
	}
}

// decodeCredit decodes one uvarint credit grant occupying the whole
// payload; zero, oversized, or trailing-byte grants are protocol errors.
func decodeCredit(payload []byte) (int64, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, errors.New("dppnet: malformed credit frame")
	}
	if v == 0 || v > maxWindow {
		return 0, fmt.Errorf("dppnet: credit grant %d out of range", v)
	}
	return int64(v), nil
}
