package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/dpp"
)

// Server fronts one dpp.Service on a TCP listener: every accepted
// connection is one handshake — a streamed session or a statsz probe.
// Sessions opened over the wire are ordinary service sessions, so they
// share the service's admission cap, ScanCache, and accounting with any
// in-process sessions on the same Service.
type Server struct {
	svc *dpp.Service

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a service; call Serve to start accepting.
func NewServer(svc *dpp.Service) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{svc: svc, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close (which returns nil) or a
// listener failure (which returns the error). Each connection is handled
// on its own goroutine; Serve itself blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dppnet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.forget(conn)
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, force-closes every live connection (tearing
// their sessions down), and waits for the handlers to drain. The
// underlying dpp.Service is left open — it belongs to the caller.
// Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.cancel()
	ln := s.ln
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// A handler blocked mid-Write to a stalled client only unblocks when
	// its connection dies; ctx cancellation alone cannot reach it.
	for _, c := range open {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle runs one connection's conversation. Every exit path closes the
// connection, which is also what tears down the connection-reader
// goroutine and (via ctx) the session.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Preamble: magic + version. Anything else is not a dppnet client;
	// drop the connection without a reply (there is no known framing to
	// reply in).
	preamble := make([]byte, len(protoMagic)+1)
	if _, err := io.ReadFull(br, preamble); err != nil {
		return
	}
	if string(preamble[:len(protoMagic)]) != protoMagic || preamble[len(protoMagic)] != protoVersion {
		return
	}

	typ, payload, err := readFrame(br, maxControlFrameBytes)
	if err != nil || typ != frameOpen {
		writeError(bw, fmt.Errorf("dppnet: expected open frame"))
		return
	}
	var req openRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		writeError(bw, fmt.Errorf("dppnet: malformed handshake: %w", err))
		return
	}

	switch req.Kind {
	case kindStatsz:
		s.serveStatsz(bw)
	case kindSession:
		if req.FileUnits {
			s.serveFileUnits(br, bw, &req)
		} else {
			s.serveSession(conn, br, bw, &req)
		}
	default:
		writeError(bw, fmt.Errorf("dppnet: unknown request kind %q", req.Kind))
	}
}

// serveStatsz answers the wire form of /statsz: the service's aggregate
// stats as JSON, then EOF.
func (s *Server) serveStatsz(bw *bufio.Writer) {
	payload, err := json.Marshal(s.svc.Stats())
	if err != nil {
		writeError(bw, err)
		return
	}
	if writeFrame(bw, frameSvcStats, payload) == nil {
		bw.Flush()
	}
}

// serveSession opens a service session for the handshake's spec and
// streams it under the credit window until exhaustion, error, or
// teardown from either side.
func (s *Server) serveSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, req *openRequest) {
	if req.Spec == nil {
		writeError(bw, fmt.Errorf("dppnet: session handshake has no spec"))
		return
	}
	window := req.Window
	if window <= 0 || window > maxWindow {
		writeError(bw, fmt.Errorf("dppnet: window %d out of range [1,%d]", req.Window, maxWindow))
		return
	}
	spec, err := decodeSpec(req.Spec)
	if err != nil {
		writeError(bw, err)
		return
	}

	// The session lives under a per-connection context: the client
	// vanishing, a close frame, or Server.Close all cancel it, so a
	// remote consumer can never strand a service slot or its reader
	// goroutines.
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	sess, err := s.svc.Open(ctx, spec)
	if err != nil {
		writeError(bw, err)
		return
	}
	defer sess.Close()

	if err := writeFrame(bw, frameOK, nil); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// Connection reader: credits and close requests. It owns br from
	// here on and exits when the connection dies (handle's deferred
	// Close) or the client half-closes.
	credits := make(chan int64, 1)
	go func() {
		defer cancel()
		for {
			typ, payload, err := readFrame(br, maxControlFrameBytes)
			if err != nil {
				return
			}
			switch typ {
			case frameCredit:
				n, err := decodeCredit(payload)
				if err != nil {
					return
				}
				select {
				case credits <- n:
				case <-ctx.Done():
					return
				}
			case frameClose:
				return
			default:
				return
			}
		}
	}()

	var enc bytes.Buffer
	avail := int64(window)
	for {
		for avail <= 0 {
			select {
			case n := <-credits:
				avail += n
			case <-ctx.Done():
				return
			}
		}
		// Drain any further banked credits without blocking.
		for {
			select {
			case n := <-credits:
				avail += n
				continue
			default:
			}
			break
		}

		b, err := sess.Next(ctx)
		if err == io.EOF {
			enc.Reset()
			if err := encodeSessionStats(&enc, sess.Stats()); err != nil {
				writeError(bw, err)
				return
			}
			if writeFrame(bw, frameStats, enc.Bytes()) != nil {
				return
			}
			if writeFrame(bw, frameEOF, nil) != nil {
				return
			}
			bw.Flush()
			return
		}
		if err != nil {
			writeError(bw, err)
			return
		}
		enc.Reset()
		if err := b.Encode(&enc); err != nil {
			writeError(bw, err)
			return
		}
		if writeFrame(bw, frameBatch, enc.Bytes()) != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		avail--
	}
}

// serveFileUnits opens a file-unit session (a fleet shard's serving
// loop) and streams whole decoded files under the credit window — one
// credit per unit frame — until exhaustion, error, or teardown from
// either side. The shape mirrors serveSession exactly; only the payload
// unit differs.
func (s *Server) serveFileUnits(br *bufio.Reader, bw *bufio.Writer, req *openRequest) {
	if req.Spec == nil {
		writeError(bw, fmt.Errorf("dppnet: session handshake has no spec"))
		return
	}
	window := req.Window
	if window <= 0 || window > maxWindow {
		writeError(bw, fmt.Errorf("dppnet: window %d out of range [1,%d]", req.Window, maxWindow))
		return
	}
	spec, err := decodeSpec(req.Spec)
	if err != nil {
		writeError(bw, err)
		return
	}

	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	us, err := s.svc.OpenUnits(ctx, spec)
	if err != nil {
		writeError(bw, err)
		return
	}
	defer us.Close()

	if err := writeFrame(bw, frameOK, nil); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	credits := make(chan int64, 1)
	go func() {
		defer cancel()
		for {
			typ, payload, err := readFrame(br, maxControlFrameBytes)
			if err != nil {
				return
			}
			switch typ {
			case frameCredit:
				n, err := decodeCredit(payload)
				if err != nil {
					return
				}
				select {
				case credits <- n:
				case <-ctx.Done():
					return
				}
			case frameClose:
				return
			default:
				return
			}
		}
	}()

	var enc bytes.Buffer
	avail := int64(window)
	for {
		for avail <= 0 {
			select {
			case n := <-credits:
				avail += n
			case <-ctx.Done():
				return
			}
		}
		for {
			select {
			case n := <-credits:
				avail += n
				continue
			default:
			}
			break
		}

		u, err := us.NextUnit(ctx)
		if err == io.EOF {
			enc.Reset()
			if err := encodeSessionStats(&enc, us.Stats()); err != nil {
				writeError(bw, err)
				return
			}
			if writeFrame(bw, frameStats, enc.Bytes()) != nil {
				return
			}
			if writeFrame(bw, frameEOF, nil) != nil {
				return
			}
			bw.Flush()
			return
		}
		if err != nil {
			writeError(bw, err)
			return
		}
		enc.Reset()
		if err := encodeFileUnit(&enc, u); err != nil {
			writeError(bw, err)
			return
		}
		if writeFrame(bw, frameFileUnit, enc.Bytes()) != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		avail--
	}
}

// writeError best-effort ships an error frame and flushes; the
// connection is about to close either way.
func writeError(bw *bufio.Writer, err error) {
	if writeFrame(bw, frameError, []byte(err.Error())) == nil {
		bw.Flush()
	}
}

// decodeCredit decodes one uvarint credit grant occupying the whole
// payload; zero, oversized, or trailing-byte grants are protocol errors.
func decodeCredit(payload []byte) (int64, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, errors.New("dppnet: malformed credit frame")
	}
	if v == 0 || v > maxWindow {
		return 0, fmt.Errorf("dppnet: credit grant %d out of range", v)
	}
	return int64(v), nil
}
