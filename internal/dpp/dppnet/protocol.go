// Package dppnet serves dpp preprocessing sessions over TCP — the
// paper's actual deployment shape, where the DPP workers are a fleet of
// processes feeding trainers over the network rather than a library
// linked into the training job (§2.1).
//
// The protocol is a length-prefixed frame stream over one TCP connection
// per session. A connection opens with a fixed magic + version, then a
// JSON handshake frame carrying the dpp.Spec (transforms encoded by
// name + parameters) and the client's receive window. After the server
// acks, preprocessed batches flow server→client framed with the existing
// reader.Batch wire codec, followed by a trailing dpp.SessionStats frame
// and an EOF frame; errors travel as error frames in either direction of
// the session's life.
//
// Backpressure is a credit window, not just TCP buffering: the server
// may have at most `window` unacknowledged batch frames in flight and
// blocks — without pulling further batches from the underlying session,
// so the session's own Buffer backpressure composes — until the client
// returns credits as it consumes. Cancellation is prompt in both
// directions: a client that closes (or whose Open context is cancelled)
// tears down the server-side session via the connection, and a dying
// server surfaces as an error from the remote session's Next, never a
// hang.
//
// The remote session (Client.Open) satisfies dpp.Stream, and its batch
// stream and deterministic stats are byte-identical to a local session
// with the same spec — pinned under -race by TestRemoteSessionMatchesLocal.
// A server additionally answers "statsz" handshakes with the service's
// aggregate dpp.Stats (Client.ServiceStats), the wire form of /statsz,
// and "tablez" handshakes with the served table's metadata (schema
// width, file plan, derived spec) so trainers can start cold from the
// wire (Client.Tablez).
//
// Sessions are resumable objects, not connection-scoped ones: a
// resumable handshake returns an opaque token in ok, every batch and
// file-unit frame is stamped with its stream index and a rolling FNV-64a
// chain hash, and a reconnecting client presents (token, consumed
// offset) to continue byte-where-it-left-off. The server parks the live
// session state of a dropped resumable connection in a bounded,
// TTL-evicted table; when the token has expired it replays the
// deterministic stream to the offset instead (cheap against a warm
// ScanCache). The chain hash makes a resumed stream *verified*
// identical to the uninterrupted one, not just trusted.
package dppnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/dpp"
	"repro/internal/reader"
)

// Connection preamble: magic + one version byte, written by the client
// before its handshake frame. Version 2 extended the session-stats frame
// with the scheduler block (workers, scale events, starvation stalls);
// version 3 added the file-unit session mode (openRequest.FileUnits and
// the file-unit frame) that fleet shards are served through; version 4
// added session resume (handshake offset/token, the token-bearing ok
// payload, and the index + rolling-chain-hash stamp on every batch and
// file-unit frame) plus the tablez metadata conversation; version 5
// added the multi-tenant front door (the handshake's auth_token, judged
// by the server's front.Gate before any session state exists) and the
// graceful-drain conversation (the server-pushed drain frame carrying a
// resume token + offset, which clients use to fail over mid-stream);
// version 6 added live tailing (the handshake spec's follow flag, the
// server-pushed extend frame announcing files landed mid-stream, and
// the client's end-follow frame that ends the tail and lets the stream
// drain to a normal EOF). The bump keeps a mixed-version pair from
// handshaking and then mis-decoding the stream.
const (
	protoMagic   = "DPPN"
	protoVersion = 6
)

// Frame types. Client→server frames are small control messages; all bulk
// payload flows server→client.
const (
	// frameOpen carries the JSON openRequest (client→server, first frame).
	frameOpen = byte(0x01)
	// frameCredit returns receive-window credits (client→server); payload
	// is a uvarint credit count.
	frameCredit = byte(0x02)
	// frameClose requests session teardown (client→server); empty payload.
	frameClose = byte(0x03)

	// frameOK acknowledges a successful session handshake; empty payload.
	frameOK = byte(0x10)
	// frameBatch carries one reader.Batch in its Encode wire form.
	frameBatch = byte(0x11)
	// frameStats carries the session's final dpp.SessionStats (the
	// reader.Stats wire codec plus the cache hit/miss counters), sent
	// after the last batch of a clean scan.
	frameStats = byte(0x12)
	// frameEOF marks a cleanly exhausted scan; empty payload.
	frameEOF = byte(0x13)
	// frameError carries a UTF-8 error message and ends the stream.
	frameError = byte(0x14)
	// frameSvcStats answers a statsz handshake with JSON dpp.Stats.
	frameSvcStats = byte(0x15)
	// frameFileUnit carries one whole decoded file (dpp.FileUnit) for a
	// file-unit session: subset index, cache-hit flag, schema, complete
	// batches, and raw tail rows. Fleet shards stream these instead of
	// batch frames so the client-side merge can cut carry-crossing
	// batches itself. Since protocol v4 the payload is prefixed with the
	// stream's rolling chain hash (see encodeUnitFrame).
	frameFileUnit = byte(0x16)
	// frameTablez answers a tablez handshake with the JSON TableMeta of
	// the served table: name, dense width, file plan per partition, and
	// the derived spec — everything a trainer needs to start cold.
	frameTablez = byte(0x17)
	// frameDrain (server→client, advisory) tells a still-active session
	// that the server is draining: the JSON drainNotice carries the
	// session's resume token and the server's sent offset so the client
	// can fail over to another address mid-stream and continue
	// byte-where-it-left-off. The server keeps serving after sending it;
	// a client with nowhere to go may simply finish on the draining
	// server.
	frameDrain = byte(0x18)
	// frameExtend (server→client, advisory) announces that a Follow
	// session's scan plan grew mid-stream: the JSON extendNotice names
	// the newly landed files in landed order. Batches for them follow on
	// the same stream with no further marking; the frame is what tells a
	// tailing client its stream is live rather than about to EOF, and
	// which files the upcoming bytes come from. Like drain and stats
	// frames it rides outside the rolling chain hash — the chain pins
	// batch bytes, not control chatter.
	frameExtend = byte(0x19)
	// frameEndFollow (client→server, empty payload) ends a Follow
	// session's tail: the server stops observing the catalog, drains the
	// already-announced files, and finishes the stream with the usual
	// stats + eof frames.
	frameEndFollow = byte(0x1a)
)

// maxFrameBytes bounds a batch-bearing (server→client) frame's declared
// payload length; maxControlFrameBytes bounds the client→server control
// frames (handshake with its spec and file list, credits, close), which
// are orders of magnitude smaller. A peer announcing more is
// protocol-corrupt and fails before any payload is read. Within the
// bound, readFrame additionally allocates in chunks as bytes actually
// arrive, so a forged length prefix with no payload behind it costs a
// peer at most one chunk — never the declared size.
const (
	maxFrameBytes        = 1 << 28
	maxControlFrameBytes = 1 << 22
	frameReadChunk       = 1 << 16
)

// maxWindow caps the negotiated credit window; a window beyond this
// buys no overlap and only defers backpressure.
const maxWindow = 1 << 10

// openRequest is the JSON handshake payload.
type openRequest struct {
	// Kind selects the conversation: "session" streams batches for Spec;
	// "statsz" returns the service's aggregate stats and closes;
	// "tablez" returns the served table's metadata and closes.
	Kind string `json:"kind"`
	// Window is the client's receive window in batches — or in file
	// units when FileUnits is set (session kind).
	Window int `json:"window,omitempty"`
	// Spec is the wire form of the dpp.Spec to open (session kind).
	Spec *wireSpec `json:"spec,omitempty"`
	// FileUnits switches the session to file-unit streaming
	// (dpp.Service.OpenUnits): whole decoded files in file-list order
	// instead of a batch stream. The fleet multiplexer's mode.
	FileUnits bool `json:"file_units,omitempty"`
	// Resumable asks the server to issue a resume token in ok and to
	// park this session's live state if the connection drops without a
	// close frame.
	Resumable bool `json:"resumable,omitempty"`
	// Offset is the number of stream frames (batches or file units) the
	// client has already consumed: the server starts the stream at this
	// index, either by continuing parked state (Token set) or by
	// replaying the deterministic prefix.
	Offset int64 `json:"offset,omitempty"`
	// Token is the opaque resume token from a previous ok reply;
	// presenting it claims the parked session it names.
	Token string `json:"token,omitempty"`
	// AuthToken identifies the tenant to a server running a front door
	// (recd-serve -tenants): the server's Authenticator maps it to a
	// tenant name before any session state is allocated. Servers without
	// a front door ignore it; servers with one refuse handshakes whose
	// token matches no tenant. The tenant itself never travels on the
	// wire — it is derived server-side, so a client cannot claim one.
	AuthToken string `json:"auth_token,omitempty"`
}

const (
	kindSession = "session"
	kindStatsz  = "statsz"
	kindTablez  = "tablez"
)

// Bounds on the hostile-input surface of the resume handshake: no real
// stream reaches 2^40 frames, and tokens the server mints are 32 hex
// characters — anything larger is forged and is rejected at decode,
// before any allocation or table lookup scales with it.
const (
	maxResumeOffset   = int64(1) << 40
	maxResumeTokenLen = 64
)

// maxAuthTokenLen bounds the handshake's tenant token: real deployments
// use short static tokens, so anything larger is hostile and is
// rejected at decode, before the authenticator sees it.
const maxAuthTokenLen = 256

// decodeOpenRequest parses and validates a handshake payload. All
// adversarial checks that don't need server state live here — negative
// or overflowing offsets and oversized tokens fail cleanly — so the
// whole hostile surface is one fuzzable function
// (FuzzDecodeResumeHandshake).
func decodeOpenRequest(payload []byte) (openRequest, error) {
	var req openRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return openRequest{}, fmt.Errorf("dppnet: handshake: %w", err)
	}
	if req.Offset < 0 || req.Offset > maxResumeOffset {
		return openRequest{}, fmt.Errorf("dppnet: handshake offset %d out of range", req.Offset)
	}
	if len(req.Token) > maxResumeTokenLen {
		return openRequest{}, fmt.Errorf("dppnet: handshake token of %d bytes exceeds limit %d", len(req.Token), maxResumeTokenLen)
	}
	if len(req.AuthToken) > maxAuthTokenLen {
		return openRequest{}, fmt.Errorf("dppnet: handshake auth token of %d bytes exceeds limit %d", len(req.AuthToken), maxAuthTokenLen)
	}
	return req, nil
}

// okReply is the JSON payload of a session ok frame. It is empty for
// non-resumable sessions (and was always empty before protocol v4).
type okReply struct {
	// Token names the server-side resumable state for this session;
	// present only when the handshake asked for a resumable session.
	Token string `json:"token,omitempty"`
}

func decodeOKReply(payload []byte) (okReply, error) {
	var ok okReply
	if len(payload) == 0 {
		return ok, nil
	}
	if err := json.Unmarshal(payload, &ok); err != nil {
		return okReply{}, fmt.Errorf("dppnet: ok payload: %w", err)
	}
	if len(ok.Token) > maxResumeTokenLen {
		return okReply{}, fmt.Errorf("dppnet: ok token of %d bytes exceeds limit %d", len(ok.Token), maxResumeTokenLen)
	}
	return ok, nil
}

// drainNotice is the JSON payload of a drain frame: the handoff ticket
// a draining server pushes to each still-active session. Token is the
// session's resume token (empty for a non-resumable session, which can
// still fail over by deterministic offset replay); Offset is how many
// stream frames the server has sent — advisory, since the client's own
// consumed count is what a handoff handshake presents.
type drainNotice struct {
	Token  string `json:"token,omitempty"`
	Offset int64  `json:"offset"`
}

// decodeDrainNotice parses a drain frame with the handshake's bounds:
// a forged notice cannot smuggle an oversized token or offset into the
// client's reconnect path.
func decodeDrainNotice(payload []byte) (drainNotice, error) {
	var dn drainNotice
	if err := json.Unmarshal(payload, &dn); err != nil {
		return drainNotice{}, fmt.Errorf("dppnet: drain notice: %w", err)
	}
	if dn.Offset < 0 || dn.Offset > maxResumeOffset {
		return drainNotice{}, fmt.Errorf("dppnet: drain notice offset %d out of range", dn.Offset)
	}
	if len(dn.Token) > maxResumeTokenLen {
		return drainNotice{}, fmt.Errorf("dppnet: drain notice token of %d bytes exceeds limit %d", len(dn.Token), maxResumeTokenLen)
	}
	return dn, nil
}

// extendNotice is the JSON payload of an extend frame: the files a
// Follow session's tailer observed landing, in landed order, plus the
// catalog generation they were observed at (advisory — lag telemetry,
// not a cursor the client must track).
type extendNotice struct {
	Generation uint64   `json:"generation,omitempty"`
	Files      []string `json:"files"`
}

// Bounds on the extend frame's hostile surface: one notice carries one
// observation's worth of landings, so anything past these caps is a
// forged frame, rejected before the client's bookkeeping scales with it.
const (
	maxExtendFiles   = 1 << 16
	maxExtendPathLen = 4096
)

// decodeExtend parses an extend frame. A malicious or corrupt server
// must never panic the client, and empty or oversized file lists are
// rejected rather than recorded (FuzzDecodeExtend pins this).
func decodeExtend(payload []byte) (extendNotice, error) {
	var en extendNotice
	if err := json.Unmarshal(payload, &en); err != nil {
		return extendNotice{}, fmt.Errorf("dppnet: extend notice: %w", err)
	}
	if len(en.Files) == 0 {
		return extendNotice{}, fmt.Errorf("dppnet: extend notice without files")
	}
	if len(en.Files) > maxExtendFiles {
		return extendNotice{}, fmt.Errorf("dppnet: extend notice with %d files exceeds limit %d", len(en.Files), maxExtendFiles)
	}
	for _, f := range en.Files {
		if f == "" {
			return extendNotice{}, fmt.Errorf("dppnet: extend notice with empty file path")
		}
		if len(f) > maxExtendPathLen {
			return extendNotice{}, fmt.Errorf("dppnet: extend notice path of %d bytes exceeds limit %d", len(f), maxExtendPathLen)
		}
	}
	return en, nil
}

// writeFrame emits one framed message: type byte, uvarint payload
// length, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := 1 + binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed message whose declared payload length is
// within limit, growing the payload buffer chunk by chunk as bytes
// arrive.
func readFrame(r reader.ByteReader, limit uint64) (byte, []byte, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("dppnet: frame length: %w", err)
	}
	if n > limit {
		return 0, nil, fmt.Errorf("dppnet: frame of %d bytes exceeds limit %d", n, limit)
	}
	payload := make([]byte, 0, int(min(n, frameReadChunk)))
	for uint64(len(payload)) < n {
		chunk := n - uint64(len(payload))
		if chunk > frameReadChunk {
			chunk = frameReadChunk
		}
		start := len(payload)
		payload = append(payload, make([]byte, int(chunk))...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return 0, nil, fmt.Errorf("dppnet: frame body: %w", err)
		}
	}
	return typ, payload, nil
}

// maxWireWorkers caps the decoded scheduler Workers field: no
// conceivable pool is wider, so anything larger is a corrupt or forged
// frame, rejected before it can reach capacity planning downstream.
const maxWireWorkers = 1 << 20

// encodeSessionStats serializes a session's final accounting: the
// reader.Stats wire codec, the scan-cache counters, then the scheduler
// block (pool size, resize counts, and the two starvation stalls in
// nanoseconds) — the credit-window starvation a trainer reads back to
// see how the service scaled its session.
func encodeSessionStats(w io.Writer, st dpp.SessionStats) error {
	if err := st.Reader.Encode(w); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	fields := [7]int64{
		st.Cache.Hits, st.Cache.Misses,
		int64(st.Scheduler.Workers), st.Scheduler.ScaleUps, st.Scheduler.ScaleDowns,
		int64(st.Scheduler.WorkerStall), int64(st.Scheduler.ConsumerStall),
	}
	for _, v := range fields {
		n := binary.PutUvarint(buf[:], uint64(v))
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// decodeSessionStats reads what encodeSessionStats wrote, bounding every
// counter at decode time: truncated frames fail cleanly, forged counts
// and overflowed durations are rejected rather than wrapped into
// negative accounting.
func decodeSessionStats(r reader.ByteReader) (dpp.SessionStats, error) {
	var st dpp.SessionStats
	var err error
	if st.Reader, err = reader.DecodeStats(r); err != nil {
		return dpp.SessionStats{}, err
	}
	var workers, workerStall, consumerStall int64
	fields := [7]*int64{
		&st.Cache.Hits, &st.Cache.Misses,
		&workers, &st.Scheduler.ScaleUps, &st.Scheduler.ScaleDowns,
		&workerStall, &consumerStall,
	}
	for _, f := range fields {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return dpp.SessionStats{}, err
		}
		if v > 1<<62 {
			return dpp.SessionStats{}, fmt.Errorf("dppnet: implausible stats counter %d", v)
		}
		*f = int64(v)
	}
	if workers > maxWireWorkers {
		return dpp.SessionStats{}, fmt.Errorf("dppnet: implausible worker count %d", workers)
	}
	st.Scheduler.Workers = int(workers)
	st.Scheduler.WorkerStall = time.Duration(workerStall)
	st.Scheduler.ConsumerStall = time.Duration(consumerStall)
	return st, nil
}

// The rolling stream hash is a chained FNV-64a: the chain starts at the
// FNV offset basis and each frame folds its canonical content bytes into
// the running value. Server and client compute it independently per
// frame, and the server stamps its value on the frame — so one 8-byte
// comparison per frame verifies the whole prefix, and a resumed or
// failed-over stream that diverges anywhere is caught at the first
// divergent frame.
const (
	chainSeed  = uint64(0xcbf29ce484222325)
	chainPrime = uint64(0x100000001b3)
)

// chainStep folds data into the rolling FNV-64a chain value.
func chainStep(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= chainPrime
	}
	return h
}

// chainUnit folds a file-unit payload (encodeFileUnit wire form) into
// the chain, skipping the cache-hit byte that follows the leading index
// uvarint: Hit depends on cache state, not stream content, so a resumed
// stream's re-decoded units must hash identically to the original's
// cache hits.
func chainUnit(h uint64, unit []byte) (uint64, error) {
	_, n := binary.Uvarint(unit)
	if n <= 0 || n >= len(unit) {
		return 0, fmt.Errorf("dppnet: file-unit payload too short to hash")
	}
	h = chainStep(h, unit[:n])
	return chainStep(h, unit[n+1:]), nil
}

// encodeBatchFrame stamps one batch's wire bytes with its stream index
// and the rolling chain hash *after* folding this batch:
// uvarint(index) | 8-byte big-endian chain | batch bytes.
func encodeBatchFrame(index int64, chain uint64, batch []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+8+len(batch))
	var tmp [binary.MaxVarintLen64 + 8]byte
	n := binary.PutUvarint(tmp[:], uint64(index))
	binary.BigEndian.PutUint64(tmp[n:], chain)
	buf = append(buf, tmp[:n+8]...)
	return append(buf, batch...)
}

// decodeBatchFrame splits a stamped batch frame into index, chain, and
// the batch wire bytes, bounding the index like the handshake offset.
func decodeBatchFrame(payload []byte) (int64, uint64, []byte, error) {
	idx, n := binary.Uvarint(payload)
	if n <= 0 || idx > uint64(maxResumeOffset) {
		return 0, 0, nil, fmt.Errorf("dppnet: corrupt batch frame index")
	}
	if len(payload) < n+8 {
		return 0, 0, nil, fmt.Errorf("dppnet: batch frame truncated before chain hash")
	}
	chain := binary.BigEndian.Uint64(payload[n : n+8])
	return int64(idx), chain, payload[n+8:], nil
}

// encodeUnitFrame prefixes a file-unit payload (which already leads with
// its own index) with the rolling chain hash after folding this unit:
// 8-byte big-endian chain | encodeFileUnit bytes.
func encodeUnitFrame(chain uint64, unit []byte) []byte {
	buf := make([]byte, 0, 8+len(unit))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], chain)
	buf = append(buf, tmp[:]...)
	return append(buf, unit...)
}

// decodeUnitFrame splits a stamped file-unit frame into chain and the
// encodeFileUnit payload.
func decodeUnitFrame(payload []byte) (uint64, []byte, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("dppnet: file-unit frame truncated before chain hash")
	}
	return binary.BigEndian.Uint64(payload[:8]), payload[8:], nil
}

// decodeServiceStats parses a svcstats frame (the JSON dpp.Stats answer
// to a statsz probe) with the same adversarial posture as the binary
// codecs: malformed JSON fails, and negative counters — impossible from
// a well-behaved server, trivially forged otherwise — are rejected
// instead of poisoning downstream rate math.
func decodeServiceStats(payload []byte) (dpp.Stats, error) {
	var st dpp.Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return dpp.Stats{}, err
	}
	for name, v := range map[string]int64{
		"SessionsOpened":          st.SessionsOpened,
		"ActiveSessions":          int64(st.ActiveSessions),
		"BatchesServed":           st.BatchesServed,
		"Cache.Hits":              st.Cache.Hits,
		"Cache.Misses":            st.Cache.Misses,
		"Cache.Evictions":         st.Cache.Evictions,
		"Cache.Entries":           int64(st.Cache.Entries),
		"Cache.Bytes":             st.Cache.Bytes,
		"SessionErrors":           st.SessionErrors,
		"Scheduler.ScaleUps":      st.Scheduler.ScaleUps,
		"Scheduler.ScaleDowns":    st.Scheduler.ScaleDowns,
		"Scheduler.WorkerStall":   int64(st.Scheduler.WorkerStall),
		"Scheduler.ConsumerStall": int64(st.Scheduler.ConsumerStall),
	} {
		if v < 0 {
			return dpp.Stats{}, fmt.Errorf("dppnet: negative service stat %s = %d", name, v)
		}
	}
	return st, nil
}
