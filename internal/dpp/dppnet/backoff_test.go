package dppnet

import (
	"testing"
	"time"
)

// TestResumePolicyNormalizedDefaults pins the zero-value policy: 50ms
// base, 2s cap, and the default downward jitter fraction. Negative
// jitter means "exactly exponential" (what deterministic tests pin);
// fractions above 1 clamp so a delay can never go negative.
func TestResumePolicyNormalizedDefaults(t *testing.T) {
	p := ResumePolicy{}.normalized()
	if p.BaseDelay != 50*time.Millisecond {
		t.Fatalf("default BaseDelay = %v, want 50ms", p.BaseDelay)
	}
	if p.MaxDelay != 2*time.Second {
		t.Fatalf("default MaxDelay = %v, want 2s", p.MaxDelay)
	}
	if p.Jitter != DefaultResumeJitter {
		t.Fatalf("default Jitter = %v, want %v", p.Jitter, DefaultResumeJitter)
	}
	if j := (ResumePolicy{Jitter: -1}).normalized().Jitter; j != 0 {
		t.Fatalf("negative Jitter normalized to %v, want 0 (disabled)", j)
	}
	if j := (ResumePolicy{Jitter: 3}).normalized().Jitter; j != 1 {
		t.Fatalf("Jitter above 1 normalized to %v, want clamp to 1", j)
	}
}

// TestBackoffExactExponentialWithoutJitter pins the unjittered schedule:
// doubling from BaseDelay, capped at MaxDelay, attempt 1 = BaseDelay.
func TestBackoffExactExponentialWithoutJitter(t *testing.T) {
	p := ResumePolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: -1}.normalized()
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := p.backoff(i+1, jitterRNG(p, 1)); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// A nil rng also disables jitter regardless of the fraction.
	jp := ResumePolicy{BaseDelay: 50 * time.Millisecond, Jitter: 1}.normalized()
	if got := jp.backoff(3, nil); got != 200*time.Millisecond {
		t.Fatalf("backoff(3) with nil rng = %v, want exact 200ms", got)
	}
}

// TestBackoffJitterDeterministicAndBounded: a seeded policy replays the
// identical delay sequence (two RNGs minted for the same session ordinal
// agree), and every jittered delay stays inside [(1-J)*exp, exp] of the
// capped exponential it was derived from.
func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := ResumePolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5, Seed: 42}.normalized()
	exact := ResumePolicy{BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay, Jitter: -1}.normalized()
	r1, r2 := jitterRNG(p, 1), jitterRNG(p, 1)
	for n := 1; n <= 10; n++ {
		d1, d2 := p.backoff(n, r1), p.backoff(n, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed and ordinal gave %v vs %v", n, d1, d2)
		}
		exp := exact.backoff(n, nil)
		lo := time.Duration((1 - p.Jitter) * float64(exp))
		if d1 < lo || d1 > exp {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", n, d1, lo, exp)
		}
	}
}

// TestBackoffJitterSpreadsSessions is the anti-herd property the jitter
// exists for: sessions sharing one client (same policy seed) mix in
// their own ordinal, so a server restart that drops all of them does not
// see them redial on one identical schedule. With 8 ordinals the third
// backoff must take several distinct values — before the ordinal mix it
// was one value repeated 8 times.
func TestBackoffJitterSpreadsSessions(t *testing.T) {
	p := ResumePolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5, Seed: 7}.normalized()
	distinct := map[time.Duration]bool{}
	for k := int64(1); k <= 8; k++ {
		distinct[p.backoff(3, jitterRNG(p, k))] = true
	}
	if len(distinct) < 6 {
		t.Fatalf("8 sessions produced only %d distinct third delays; the fleet would redial in lockstep", len(distinct))
	}
}
