package dppnet

import (
	"fmt"

	"repro/internal/dpp"
	"repro/internal/reader"
)

// wireSpec is the JSON form of a dpp.Spec. reader.Spec's transform
// fields are interfaces, so they travel by name + parameters and are
// rebuilt as the same concrete values on the server — which is what
// keeps reader.Spec.Fingerprint identical on both sides of the wire, so
// a remote ShareScans session lands in the same cache entries a local
// one would.
type wireSpec struct {
	Table                string          `json:"table,omitempty"`
	BatchSize            int             `json:"batch_size"`
	SparseFeatures       []string        `json:"sparse_features,omitempty"`
	DedupSparseFeatures  [][]string      `json:"dedup_sparse_features,omitempty"`
	PartialDedupFeatures []string        `json:"partial_dedup_features,omitempty"`
	SparseTransforms     []wireTransform `json:"sparse_transforms,omitempty"`
	DenseTransforms      []wireTransform `json:"dense_transforms,omitempty"`
	FillAhead            int             `json:"fill_ahead,omitempty"`
	ConvertWorkers       int             `json:"convert_workers,omitempty"`

	Readers    int      `json:"readers,omitempty"`
	Buffer     int      `json:"buffer,omitempty"`
	Files      []string `json:"files,omitempty"`
	ShareScans bool     `json:"share_scans,omitempty"`
	Follow     bool     `json:"follow,omitempty"`
}

// wireTransform carries one transform by name plus the union of the
// known transforms' parameters.
type wireTransform struct {
	Name      string   `json:"name"`
	Features  []string `json:"features,omitempty"`
	TableSize int64    `json:"table_size,omitempty"`
	Min       int64    `json:"min,omitempty"`
	Max       int64    `json:"max,omitempty"`
	MaxLen    int      `json:"max_len,omitempty"`
}

// encodeSparseTransform maps the package's concrete transforms to wire
// form. Custom SparseTransform implementations cannot cross the process
// boundary — the server has no code for them — so they are rejected at
// the client rather than silently dropped.
func encodeSparseTransform(tr reader.SparseTransform) (wireTransform, error) {
	switch v := tr.(type) {
	case reader.HashMod:
		return wireTransform{Name: v.Name(), Features: v.Features, TableSize: v.TableSize}, nil
	case reader.Clamp:
		return wireTransform{Name: v.Name(), Features: v.Features, Min: v.Min, Max: v.Max}, nil
	case reader.Truncate:
		return wireTransform{Name: v.Name(), Features: v.Features, MaxLen: v.MaxLen}, nil
	default:
		return wireTransform{}, fmt.Errorf("dppnet: sparse transform %T is not wire-encodable", tr)
	}
}

func decodeSparseTransform(wt wireTransform) (reader.SparseTransform, error) {
	switch wt.Name {
	case reader.HashMod{}.Name():
		return reader.HashMod{Features: wt.Features, TableSize: wt.TableSize}, nil
	case reader.Clamp{}.Name():
		return reader.Clamp{Features: wt.Features, Min: wt.Min, Max: wt.Max}, nil
	case reader.Truncate{}.Name():
		return reader.Truncate{Features: wt.Features, MaxLen: wt.MaxLen}, nil
	default:
		return nil, fmt.Errorf("dppnet: unknown sparse transform %q", wt.Name)
	}
}

func encodeDenseTransform(tr reader.DenseTransform) (wireTransform, error) {
	switch tr.(type) {
	case reader.LogNormalize:
		return wireTransform{Name: tr.Name()}, nil
	default:
		return wireTransform{}, fmt.Errorf("dppnet: dense transform %T is not wire-encodable", tr)
	}
}

func decodeDenseTransform(wt wireTransform) (reader.DenseTransform, error) {
	switch wt.Name {
	case reader.LogNormalize{}.Name():
		return reader.LogNormalize{}, nil
	default:
		return nil, fmt.Errorf("dppnet: unknown dense transform %q", wt.Name)
	}
}

// encodeSpec converts a dpp.Spec to its wire form.
func encodeSpec(spec dpp.Spec) (*wireSpec, error) {
	ws := &wireSpec{
		Table:                spec.Table,
		BatchSize:            spec.BatchSize,
		SparseFeatures:       spec.SparseFeatures,
		DedupSparseFeatures:  spec.DedupSparseFeatures,
		PartialDedupFeatures: spec.PartialDedupFeatures,
		FillAhead:            spec.FillAhead,
		ConvertWorkers:       spec.ConvertWorkers,
		Readers:              spec.Readers,
		Buffer:               spec.Buffer,
		Files:                spec.Files,
		ShareScans:           spec.ShareScans,
		Follow:               spec.Follow,
	}
	for _, tr := range spec.SparseTransforms {
		wt, err := encodeSparseTransform(tr)
		if err != nil {
			return nil, err
		}
		ws.SparseTransforms = append(ws.SparseTransforms, wt)
	}
	for _, tr := range spec.DenseTransforms {
		wt, err := encodeDenseTransform(tr)
		if err != nil {
			return nil, err
		}
		ws.DenseTransforms = append(ws.DenseTransforms, wt)
	}
	return ws, nil
}

// decodeSpec rebuilds the dpp.Spec a client sent. Validation is left to
// dpp.Service.Open, which already rejects malformed specs.
func decodeSpec(ws *wireSpec) (dpp.Spec, error) {
	spec := dpp.Spec{
		Readers:    ws.Readers,
		Buffer:     ws.Buffer,
		Files:      ws.Files,
		ShareScans: ws.ShareScans,
		Follow:     ws.Follow,
	}
	spec.Table = ws.Table
	spec.BatchSize = ws.BatchSize
	spec.SparseFeatures = ws.SparseFeatures
	spec.DedupSparseFeatures = ws.DedupSparseFeatures
	spec.PartialDedupFeatures = ws.PartialDedupFeatures
	spec.FillAhead = ws.FillAhead
	spec.ConvertWorkers = ws.ConvertWorkers
	for _, wt := range ws.SparseTransforms {
		tr, err := decodeSparseTransform(wt)
		if err != nil {
			return dpp.Spec{}, err
		}
		spec.SparseTransforms = append(spec.SparseTransforms, tr)
	}
	for _, wt := range ws.DenseTransforms {
		tr, err := decodeDenseTransform(wt)
		if err != nil {
			return dpp.Spec{}, err
		}
		spec.DenseTransforms = append(spec.DenseTransforms, tr)
	}
	return spec, nil
}
