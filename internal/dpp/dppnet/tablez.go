package dppnet

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dpp"
)

// TableMeta is the served table's metadata — everything a trainer needs
// to open sessions without building the table locally: the derived spec,
// the file plan per partition, and the schema facts the model config
// reads. recd-serve publishes it on Server.Tablez; recd-train -connect
// fetches it with Client.Tablez and starts cold from the wire.
type TableMeta struct {
	// Table is the catalog table name sessions open against.
	Table string
	// DenseWidth is the schema's dense feature width (model input size).
	DenseWidth int
	// TrainRows is the expected sample count of the training partition.
	TrainRows int
	// S is the measured mean samples per user session (the paper's S),
	// which the derived spec's dedup grouping was chosen from.
	S float64
	// Spec is the derived preprocessing spec (transforms, batch size,
	// dedup groups) the server recommends for this table.
	Spec dpp.Spec
	// Partitions lists the table's partitions and their files in catalog
	// order.
	Partitions []TablePartition
}

// TablePartition is one partition's file plan.
type TablePartition struct {
	Hour  int64    `json:"hour"`
	Files []string `json:"files"`
}

// Files returns the file list of the partition at hour, or nil.
func (m *TableMeta) Files(hour int64) []string {
	for _, p := range m.Partitions {
		if p.Hour == hour {
			return p.Files
		}
	}
	return nil
}

// wireTableMeta is the JSON wire form of TableMeta; the spec travels in
// its wireSpec handshake encoding.
type wireTableMeta struct {
	Table      string           `json:"table"`
	DenseWidth int              `json:"dense_width"`
	TrainRows  int              `json:"train_rows,omitempty"`
	S          float64          `json:"s,omitempty"`
	Spec       *wireSpec        `json:"spec"`
	Partitions []TablePartition `json:"partitions"`
}

func encodeTableMeta(m *TableMeta) ([]byte, error) {
	ws, err := encodeSpec(m.Spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wireTableMeta{
		Table:      m.Table,
		DenseWidth: m.DenseWidth,
		TrainRows:  m.TrainRows,
		S:          m.S,
		Spec:       ws,
		Partitions: m.Partitions,
	})
}

// decodeTableMeta parses a tablez frame with the decodeServiceStats
// posture: malformed JSON fails, and negative counts — impossible from a
// well-behaved server, trivially forged otherwise — are rejected before
// they can reach model sizing or file-plan math.
func decodeTableMeta(payload []byte) (*TableMeta, error) {
	var wm wireTableMeta
	if err := json.Unmarshal(payload, &wm); err != nil {
		return nil, fmt.Errorf("dppnet: tablez payload: %w", err)
	}
	if wm.Spec == nil {
		return nil, fmt.Errorf("dppnet: tablez payload missing spec")
	}
	for name, v := range map[string]int64{
		"DenseWidth": int64(wm.DenseWidth),
		"TrainRows":  int64(wm.TrainRows),
	} {
		if v < 0 {
			return nil, fmt.Errorf("dppnet: negative tablez field %s = %d", name, v)
		}
	}
	if wm.S < 0 || math.IsNaN(wm.S) || math.IsInf(wm.S, 0) {
		return nil, fmt.Errorf("dppnet: implausible tablez S = %v", wm.S)
	}
	for _, p := range wm.Partitions {
		if p.Hour < 0 {
			return nil, fmt.Errorf("dppnet: negative tablez partition hour %d", p.Hour)
		}
	}
	spec, err := decodeSpec(wm.Spec)
	if err != nil {
		return nil, err
	}
	return &TableMeta{
		Table:      wm.Table,
		DenseWidth: wm.DenseWidth,
		TrainRows:  wm.TrainRows,
		S:          wm.S,
		Spec:       spec,
		Partitions: wm.Partitions,
	}, nil
}
