package dppnet

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/dpp"
	"repro/internal/dpp/front"
	"repro/internal/testutil"
)

func twoTenantGate(limits map[string]front.Limits) *front.Gate {
	return front.NewGate(front.Config{
		Auth:   front.StaticTokens{"tok-a": "team-a", "tok-b": "team-b"},
		Limits: limits,
	})
}

// TestHandshakeAuthRejectsBeforeSessionState: a missing or unknown
// tenant token fails the handshake at the front door — before the
// service allocates any session state — while a valid token streams
// normally and threads its tenant into the access-log events.
func TestHandshakeAuthRejectsBeforeSessionState(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 60)
	gate := twoTenantGate(nil)
	var mu sync.Mutex
	var events []SessionEvent
	h := startTunedServer(t, env, dpp.Config{}, func(s *Server) {
		s.Gate = gate
		s.OnSession = func(ev SessionEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	})

	if _, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec()}); !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("tokenless open = %v, want ErrRemote unauthorized", err)
	}
	bogus := NewClient(h.addr)
	bogus.AuthToken = "not-a-token"
	if _, err := bogus.Open(context.Background(), dpp.Spec{Spec: alignedSpec()}); !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("bad-token open = %v, want ErrRemote unauthorized", err)
	}
	if n := h.svc.Stats().SessionsOpened; n != 0 {
		t.Fatalf("service opened %d sessions for rejected handshakes, want 0", n)
	}
	if st := gate.Stats(); st.AuthFailures != 2 {
		t.Fatalf("gate AuthFailures = %d, want 2", st.AuthFailures)
	}

	ok := NewClient(h.addr)
	ok.AuthToken = "tok-a"
	rs, err := ok.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatalf("authenticated open: %v", err)
	}
	if got := drainRemote(t, rs); len(got) == 0 {
		t.Fatal("authenticated session streamed no batches")
	}
	testutil.Eventually(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range events {
			if ev.Kind == "close" && ev.Tenant == "team-a" {
				return true
			}
		}
		return false
	}, "access log saw the session close under its tenant label")
	mu.Lock()
	for _, ev := range events {
		if ev.Kind == "error" && !strings.Contains(ev.Detail, "admission") {
			t.Errorf("unexpected non-admission error event: %+v", ev)
		}
	}
	mu.Unlock()

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestHandshakeQuotaRejectsOverCap: a tenant at its MaxSessions cap has
// further opens refused with the quota error (no session state spent),
// and the slot frees when the admitted session's connection ends.
func TestHandshakeQuotaRejectsOverCap(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 60)
	gate := twoTenantGate(map[string]front.Limits{"team-a": {MaxSessions: 1}})
	h := startTunedServer(t, env, dpp.Config{}, func(s *Server) { s.Gate = gate })

	client := NewClient(h.addr)
	client.AuthToken = "tok-a"
	rs, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	consumeRemote(t, rs, 1)

	if _, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec()}); !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "over quota") {
		t.Fatalf("open over the session cap = %v, want ErrRemote over-quota", err)
	}
	if n := h.svc.Stats().SessionsOpened; n != 1 {
		t.Fatalf("service opened %d sessions, want 1 (the rejected open spent none)", n)
	}
	if st := gate.Stats(); st.QuotaRejects != 1 {
		t.Fatalf("gate QuotaRejects = %d, want 1", st.QuotaRejects)
	}

	// Another tenant is untouched by team-a's cap.
	other := NewClient(h.addr)
	other.AuthToken = "tok-b"
	rsB, err := other.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatalf("team-b open while team-a is capped: %v", err)
	}
	drainRemote(t, rsB)

	// Closing the capped session frees the slot for a fresh admit.
	rs.Close()
	testutil.Eventually(t, func() bool { return gate.TenantStats("team-a").Active == 0 },
		"lease released when the session's connection ended")
	rs2, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatalf("open after the slot freed: %v", err)
	}
	drainRemote(t, rs2)

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestResumeClaimCrossTenantRejected: a parked resume token is scoped to
// the tenant that opened the session. Another tenant presenting the
// leaked token gets the *same* error as a dead token (no existence
// oracle), and the probe does not burn the entry — the owner still
// resumes afterwards.
func TestResumeClaimCrossTenantRejected(t *testing.T) {
	before := runtime.NumGoroutine()
	env := newTestEnv(t, 60)
	gate := twoTenantGate(nil)
	h := startTunedServer(t, env, dpp.Config{}, func(s *Server) { s.Gate = gate })

	owner := NewClient(h.addr)
	owner.AuthToken = "tok-a"
	owner.Resumable = true
	rs, err := owner.Open(context.Background(), dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	consumeRemote(t, rs, 1)
	rs.mu.Lock()
	token := rs.token
	conn := rs.conn
	rs.mu.Unlock()
	if token == "" {
		t.Fatal("resumable handshake returned no token")
	}
	conn.Close()
	testutil.Eventually(t, func() bool { return h.srv.Stats().ParkedSessions >= 1 },
		"server parked the severed resumable session")

	ws, err := encodeSpec(dpp.Spec{Spec: alignedSpec()})
	if err != nil {
		t.Fatal(err)
	}
	req := openRequest{
		Kind: kindSession, Window: 4, Spec: ws,
		Resumable: true, Offset: 1, Token: token,
	}
	thief := NewClient(h.addr)
	thief.AuthToken = "tok-b"
	_, _, _, _, err = thief.openStream(context.Background(), thief.addr, req)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "unknown or expired resume token") {
		t.Fatalf("cross-tenant claim = %v, want the dead-token error verbatim", err)
	}

	conn1, _, stop1, _, err := owner.openStream(context.Background(), owner.addr, req)
	if err != nil {
		t.Fatalf("owner's claim after the cross-tenant probe: %v", err)
	}
	stop1()
	conn1.Close()
	rs.Close()
	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}
