package dppnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/landing"
	"repro/internal/etl"
	"repro/internal/testutil"
)

// landLive appends freshly generated samples to env's table through a
// landing.Writer — small sealed files on a new hour, the way a live
// partition grows under a tailing session.
func landLive(t testing.TB, env *testEnv, hour int64, sessions int) int {
	t.Helper()
	gen := datagen.NewGenerator(env.schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 6, Seed: 1234 + hour,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	w, err := landing.NewWriter(landing.Config{
		Store: env.store, Catalog: env.catalog, Table: "tbl", Schema: env.schema,
		FlushRows: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(hour, samples...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return len(samples)
}

// TestRemoteFollowMatchesFrozen is the Follow determinism contract at
// the network boundary (run under -race in CI): a remote Follow session
// opened before files land observes the landings mid-stream, and the
// batches it delivers are byte-identical to a cold local session opened
// on the frozen publish-order file list after the fact. The extend
// frames the server pushes are visible as client-side tail telemetry.
func TestRemoteFollowMatchesFrozen(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 40)
	h := startServer(t, env, dpp.Config{})

	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Follow: true})
	if err != nil {
		t.Fatal(err)
	}

	// Land two live hours while the session tails. Total rows decide how
	// many full batches the open-ended stream owes before EndFollow.
	total := len(env.samples)
	total += landLive(t, env, 3600, 25)
	total += landLive(t, env, 7200, 25)
	batchSize := alignedSpec().BatchSize
	full := total / batchSize

	var gotEnc [][]byte
	for len(gotEnc) < full {
		b, err := rs.Next(context.Background())
		if err != nil {
			t.Fatalf("batch %d: %v", len(gotEnc), err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		gotEnc = append(gotEnc, buf.Bytes())
	}
	// End the tail; the stream flushes any short tail batch and EOFs.
	rs.EndFollow()
	rows := full * batchSize
	for {
		b, err := rs.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		gotEnc = append(gotEnc, buf.Bytes())
		rows += b.Size
	}
	if rows != total {
		t.Fatalf("follow stream delivered %d rows, landed %d", rows, total)
	}
	if rs.ExtendNotices() == 0 || rs.ExtendedFiles() == 0 {
		t.Fatalf("no extend frames observed (notices %d, files %d)", rs.ExtendNotices(), rs.ExtendedFiles())
	}
	rs.Close()

	// Freeze the prefix: the publish-sequence order is exactly the order
	// the Follow session emitted, so a cold session on that explicit file
	// list must produce the identical bytes.
	pubs, err := env.catalog.PublishedFiles("tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]string, len(pubs))
	for i, pf := range pubs {
		files[i] = pf.Path
	}
	localSvc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog})
	if err != nil {
		t.Fatal(err)
	}
	defer localSvc.Close()
	sess, err := localSvc.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Files: files})
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := drainLocal(t, sess)

	if len(gotEnc) != len(wantEnc) || len(wantEnc) == 0 {
		t.Fatalf("follow stream produced %d batches, frozen prefix %d (nonzero)", len(gotEnc), len(wantEnc))
	}
	for i := range wantEnc {
		if !bytes.Equal(gotEnc[i], wantEnc[i]) {
			t.Fatalf("batch %d differs between follow stream and frozen prefix", i)
		}
	}

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestRemoteFollowEndFollowDrainsToEOF: ending the tail immediately —
// before any live landing — drains the snapshot prefix to a clean EOF
// with final stats, the plain "tail of a static table" case.
func TestRemoteFollowEndFollowDrainsToEOF(t *testing.T) {
	env := newTestEnv(t, 40)
	h := startServer(t, env, dpp.Config{})

	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	rs.EndFollow()
	enc := drainRemote(t, rs)
	if len(enc) == 0 {
		t.Fatal("ended follow session delivered no batches from the snapshot prefix")
	}
	if _, ok := rs.Stats(); !ok {
		t.Fatal("stats missing after clean follow EOF")
	}
}

// TestFollowResumeRejected: Follow composes with neither resume nor
// failover (client-side refusal, before any dial) nor the file-unit
// merge (server-side handshake refusal).
func TestFollowResumeRejected(t *testing.T) {
	env := newTestEnv(t, 10)
	h := startServer(t, env, dpp.Config{})

	resuming := NewClient(h.addr)
	resuming.Resume.MaxAttempts = 3
	if _, err := resuming.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Follow: true}); err == nil ||
		!strings.Contains(err.Error(), "follow") {
		t.Fatalf("resuming client opened a follow session: %v", err)
	}
	failover := NewClient(h.addr)
	failover.Failover = []string{"127.0.0.1:1"}
	if _, err := failover.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Follow: true}); err == nil ||
		!strings.Contains(err.Error(), "follow") {
		t.Fatalf("failover client opened a follow session: %v", err)
	}
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(h.addr).OpenUnits(context.Background(), dpp.Spec{Spec: alignedSpec(), Files: files, Follow: true}); !errors.Is(err, ErrRemote) ||
		!strings.Contains(err.Error(), "follow") {
		t.Fatalf("server admitted a file-unit follow session: %v", err)
	}
}
