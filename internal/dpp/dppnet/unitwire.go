package dppnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/reader"
)

// File-unit frame payload layout (all counts uvarint):
//
//	index | hit byte | dense | nKeys (len-prefixed keys)... |
//	nBatches (reader.Batch wire codec each) |
//	nTail (datagen.Sample wire codec each)
//
// The file path itself does not travel: units arrive strictly in
// file-list order and the client owns the list it asked for, so the
// subset index names the file. Decode bounds every count before
// allocating, in the same adversarial posture as the batch and stats
// codecs — a forged frame fails cleanly, it never allocates the forgery.
const (
	// maxUnitKeys bounds a unit's schema width; no schema in the
	// reproduction is near this.
	maxUnitKeys = 1 << 16
	// maxUnitKeyLen bounds one feature name's length.
	maxUnitKeyLen = 1 << 16
	// maxUnitBatches bounds one file's complete-batch count.
	maxUnitBatches = 1 << 20
	// maxUnitTail bounds one file's tail-row count (always under the
	// spec's batch size in honest traffic).
	maxUnitTail = 1 << 24
	// maxUnitIndex bounds the subset index; the client additionally
	// requires indices to arrive exactly in order.
	maxUnitIndex = 1 << 32
	// maxUnitDense bounds the schema's dense width, mirroring the sample
	// codec's own cap.
	maxUnitDense = 1 << 20
)

// encodeFileUnit serializes one unit for a file-unit frame.
func encodeFileUnit(w io.Writer, u *dpp.FileUnit) error {
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(u.Index)); err != nil {
		return err
	}
	hit := byte(0)
	if u.Hit {
		hit = 1
	}
	if _, err := w.Write([]byte{hit}); err != nil {
		return err
	}
	if err := putUvarint(uint64(u.Scan.Dense)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(u.Scan.Keys))); err != nil {
		return err
	}
	for _, k := range u.Scan.Keys {
		if err := putUvarint(uint64(len(k))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, k); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(u.Scan.Batches))); err != nil {
		return err
	}
	for _, b := range u.Scan.Batches {
		if err := b.Encode(w); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(u.Scan.Tail))); err != nil {
		return err
	}
	return datagen.EncodeSamples(w, u.Scan.Tail)
}

// decodeFileUnit parses a file-unit frame payload. The returned unit's
// File is empty — the caller maps the subset index back to its own file
// list. Trailing bytes after the tail rows are a protocol error.
func decodeFileUnit(payload []byte) (*dpp.FileUnit, error) {
	r := bytes.NewReader(payload)
	bounded := func(name string, max uint64) (int, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("dppnet: file-unit %s: %w", name, err)
		}
		if v > max {
			return 0, fmt.Errorf("dppnet: implausible file-unit %s %d", name, v)
		}
		return int(v), nil
	}
	idx, err := bounded("index", maxUnitIndex)
	if err != nil {
		return nil, err
	}
	hit, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dppnet: file-unit hit flag: %w", err)
	}
	if hit > 1 {
		return nil, fmt.Errorf("dppnet: malformed file-unit hit flag %d", hit)
	}
	dense, err := bounded("dense width", maxUnitDense)
	if err != nil {
		return nil, err
	}
	nKeys, err := bounded("key count", maxUnitKeys)
	if err != nil {
		return nil, err
	}
	scan := &reader.FileScan{Dense: dense}
	if nKeys > 0 {
		scan.Keys = make([]string, nKeys)
		for i := range scan.Keys {
			kl, err := bounded("key length", maxUnitKeyLen)
			if err != nil {
				return nil, err
			}
			kb := make([]byte, kl)
			if _, err := io.ReadFull(r, kb); err != nil {
				return nil, fmt.Errorf("dppnet: file-unit key: %w", err)
			}
			scan.Keys[i] = string(kb)
		}
	}
	nBatches, err := bounded("batch count", maxUnitBatches)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nBatches; i++ {
		b, err := reader.DecodeBatch(r)
		if err != nil {
			return nil, fmt.Errorf("dppnet: file-unit batch %d: %w", i, err)
		}
		scan.Batches = append(scan.Batches, b)
	}
	nTail, err := bounded("tail count", maxUnitTail)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nTail; i++ {
		s, err := datagen.DecodeSample(r)
		if err != nil {
			return nil, fmt.Errorf("dppnet: file-unit tail row %d: %w", i, err)
		}
		scan.Tail = append(scan.Tail, s)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("dppnet: %d trailing bytes after file unit", r.Len())
	}
	return &dpp.FileUnit{Index: idx, Scan: scan, Hit: hit == 1}, nil
}
