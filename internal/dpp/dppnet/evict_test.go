package dppnet

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dpp"
)

// stubStream is a wireStream that only records whether it was closed —
// enough to drive the resume table's park/evict paths without a live
// session behind it.
type stubStream struct{ closed atomic.Bool }

func (s *stubStream) next(context.Context) ([]byte, error) { return nil, io.EOF }
func (s *stubStream) stats() dpp.SessionStats              { return dpp.SessionStats{} }
func (s *stubStream) close() error                         { s.closed.Store(true); return nil }
func (s *stubStream) frameType() byte                      { return frameBatch }

// TestResumeCapacityEvictionPrefersOldestPark is the regression test for
// the eviction tiebreak: entries parked within one clock tick share an
// expiry, and the old code then evicted whichever entry map iteration
// happened to visit — sometimes the *youngest*, stranding a reconnecting
// client whose token was still well inside its claim window. The fix
// breaks expiry ties on park order (resumeEntry.seq), so under a frozen
// clock the victim is always the oldest unclaimed entry.
func TestResumeCapacityEvictionPrefersOldestPark(t *testing.T) {
	s := NewServer(nil)
	defer s.Close()
	s.ResumeMax = 3
	fixed := time.Unix(1700000000, 0)
	s.resumeClock = func() time.Time { return fixed }

	streams := make([]*stubStream, 6)
	park := func(i int) bool {
		streams[i] = &stubStream{}
		return s.park(&resumeEntry{
			token:  fmt.Sprintf("t%d", i),
			stream: streams[i],
			cancel: func() {},
		})
	}
	tokens := func() map[string]bool {
		s.resume.mu.Lock()
		defer s.resume.mu.Unlock()
		got := make(map[string]bool, len(s.resume.entries))
		for tok := range s.resume.entries {
			got[tok] = true
		}
		return got
	}

	for i := 0; i < 3; i++ {
		if !park(i) {
			t.Fatalf("park t%d refused with the table below capacity", i)
		}
	}

	// Fourth park overflows: every entry expires at the same frozen
	// instant, so the seq tiebreak must pick t0, the oldest park.
	if !park(3) {
		t.Fatal("park t3 refused; capacity eviction should have made room")
	}
	if got := tokens(); got["t0"] || !got["t1"] || !got["t2"] || !got["t3"] {
		t.Fatalf("table holds %v, want t1..t3 with the oldest park t0 evicted", got)
	}
	if !streams[0].closed.Load() {
		t.Fatal("evicted entry t0 was not closed")
	}
	if st := s.Stats(); st.ResumeExpired != 1 {
		t.Fatalf("ResumeExpired = %d, want 1", st.ResumeExpired)
	}

	// An in-use entry — a client is mid-claim on it — is never the
	// victim: the next-oldest unclaimed entry (t2) goes instead.
	s.resume.mu.Lock()
	s.resume.entries["t1"].inUse = true
	s.resume.mu.Unlock()
	if !park(4) {
		t.Fatal("park t4 refused; t2 was evictable")
	}
	if got := tokens(); !got["t1"] || got["t2"] || !got["t3"] || !got["t4"] {
		t.Fatalf("table holds %v, want t1 (in use) kept and t2 evicted", got)
	}
	if streams[1].closed.Load() {
		t.Fatal("in-use entry t1 was closed by capacity eviction")
	}
	if !streams[2].closed.Load() {
		t.Fatal("evicted entry t2 was not closed")
	}
	if st := s.Stats(); st.ResumeExpired != 2 {
		t.Fatalf("ResumeExpired = %d, want 2", st.ResumeExpired)
	}

	// A table full of in-use entries refuses the park outright rather
	// than cutting a stream someone is actively resuming.
	s.resume.mu.Lock()
	for _, e := range s.resume.entries {
		e.inUse = true
	}
	s.resume.mu.Unlock()
	if park(5) {
		t.Fatal("park t5 succeeded against a table full of in-use entries")
	}
	if got := tokens(); got["t5"] {
		t.Fatal("refused park still inserted t5")
	}
}
