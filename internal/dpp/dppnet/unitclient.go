package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/dpp"
)

// OpenUnits opens a file-unit session on the remote service
// (dpp.Service.OpenUnits over the wire): whole decoded files arrive
// strictly in file-list order instead of a batch stream. This is how the
// fleet multiplexer (dppshard) consumes a shard; training loops consume
// batch sessions via Open.
//
// The spec must name its files explicitly (Spec.Files): units travel by
// subset index, so the client must own the list the indices name. The
// receive window counts unit frames in flight, sized like a batch
// session's — max(1,Readers) × buffer depth — so a shard's scan workers
// stay busy up to the same backpressure bound a local unit session's
// merge window allows.
func (c *Client) OpenUnits(ctx context.Context, spec dpp.Spec) (*RemoteUnitSession, error) {
	if len(spec.Files) == 0 {
		return nil, fmt.Errorf("dppnet: file-unit session needs an explicit file list")
	}
	ws, err := encodeSpec(spec)
	if err != nil {
		return nil, err
	}
	readers, buffer := spec.Readers, spec.Buffer
	if readers <= 0 {
		readers = dpp.DefaultReaders
	}
	if buffer <= 0 {
		buffer = dpp.DefaultBuffer
	}
	window := readers * buffer
	if window > maxWindow {
		window = maxWindow
	}

	conn, br, err := c.dial(ctx, openRequest{Kind: kindSession, Window: window, Spec: ws, FileUnits: true})
	if err != nil {
		return nil, err
	}
	watchStop := closeOnDone(ctx, conn)

	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil {
		watchStop()
		conn.Close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	switch typ {
	case frameOK:
	case frameError:
		watchStop()
		conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		watchStop()
		conn.Close()
		return nil, fmt.Errorf("dppnet: unexpected handshake reply %#x", typ)
	}

	rus := &RemoteUnitSession{
		conn:  conn,
		files: spec.Files,
		// One slot past the credit window, for the same reason as a batch
		// session's receive channel: the terminal message always fits.
		recv:      make(chan remoteUnitMsg, window+1),
		done:      make(chan struct{}),
		watchStop: watchStop,
	}
	go rus.receive(br)
	return rus, nil
}

// remoteUnitMsg is one received item handed from the connection reader
// to NextUnit: a decoded unit, or the terminal error.
type remoteUnitMsg struct {
	unit *dpp.FileUnit
	err  error
}

// RemoteUnitSession is the client half of one file-unit stream. NextUnit
// is single-consumer; Close may race it from another goroutine, exactly
// as with RemoteSession.
type RemoteUnitSession struct {
	conn      net.Conn
	files     []string
	recv      chan remoteUnitMsg
	done      chan struct{}
	watchStop func()

	wmu sync.Mutex // serializes credit/close frame writes

	mu      sync.Mutex
	stats   dpp.SessionStats
	gotEOF  bool
	closed  bool
	termErr error
}

// receive owns the connection's read half, mirroring RemoteSession's
// receiver. It additionally enforces the in-order contract: units must
// arrive with strictly consecutive subset indices starting at 0 — a
// server violating that is protocol-corrupt, and failing here keeps the
// fleet merge from ever seeing a misordered or aliased slot.
func (rus *RemoteUnitSession) receive(br *bufio.Reader) {
	defer close(rus.recv)
	defer rus.watchStop()
	terminal := func(err error) {
		select {
		case rus.recv <- remoteUnitMsg{err: err}:
		case <-rus.done:
		}
	}
	next := 0
	for {
		typ, payload, err := readFrame(br, maxFrameBytes)
		if err != nil {
			terminal(fmt.Errorf("dppnet: connection lost: %w", err))
			return
		}
		switch typ {
		case frameFileUnit:
			u, err := decodeFileUnit(payload)
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt file-unit frame: %w", err))
				return
			}
			if u.Index != next || u.Index >= len(rus.files) {
				terminal(fmt.Errorf("dppnet: file unit %d out of order (want %d of %d)", u.Index, next, len(rus.files)))
				return
			}
			u.File = rus.files[u.Index]
			next++
			select {
			case rus.recv <- remoteUnitMsg{unit: u}:
			case <-rus.done:
				return
			}
		case frameStats:
			st, err := decodeSessionStats(bytes.NewReader(payload))
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt stats frame: %w", err))
				return
			}
			rus.mu.Lock()
			rus.stats = st
			rus.mu.Unlock()
		case frameEOF:
			rus.mu.Lock()
			rus.gotEOF = true
			rus.mu.Unlock()
			terminal(io.EOF)
			return
		case frameError:
			terminal(fmt.Errorf("%w: %s", ErrRemote, payload))
			return
		default:
			terminal(fmt.Errorf("dppnet: unexpected frame %#x", typ))
			return
		}
	}
}

// NextUnit returns the stream's next file unit, blocking until one
// arrives, the scan is exhausted (io.EOF), the server reports an error
// (wrapped in ErrRemote), the connection fails, ctx is cancelled, or the
// session is closed (dpp.ErrClosed) — the same contract as a local
// UnitSession.NextUnit. Each consumed unit returns one window credit.
func (rus *RemoteUnitSession) NextUnit(ctx context.Context) (*dpp.FileUnit, error) {
	rus.mu.Lock()
	if rus.closed {
		rus.mu.Unlock()
		return nil, dpp.ErrClosed
	}
	if rus.termErr != nil {
		err := rus.termErr
		rus.mu.Unlock()
		return nil, err
	}
	rus.mu.Unlock()

	select {
	case m, ok := <-rus.recv:
		if !ok {
			rus.mu.Lock()
			defer rus.mu.Unlock()
			if rus.closed {
				return nil, dpp.ErrClosed
			}
			if rus.termErr != nil {
				return nil, rus.termErr
			}
			return nil, io.EOF
		}
		if m.err != nil {
			rus.mu.Lock()
			closed := rus.closed
			if rus.termErr == nil {
				rus.termErr = m.err
			}
			rus.mu.Unlock()
			if closed && m.err != io.EOF {
				return nil, dpp.ErrClosed
			}
			return nil, m.err
		}
		rus.sendCredit()
		return m.unit, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-rus.done:
		return nil, dpp.ErrClosed
	}
}

// sendCredit returns one window credit; a write failure means the
// connection is already dead and will surface through the receiver.
func (rus *RemoteUnitSession) sendCredit() {
	var payload [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(payload[:], 1)
	rus.wmu.Lock()
	defer rus.wmu.Unlock()
	_ = writeFrame(rus.conn, frameCredit, payload[:n])
}

// Stats returns the shard session's final accounting as reported in the
// trailing stats frame, available once NextUnit has returned io.EOF.
func (rus *RemoteUnitSession) Stats() (dpp.SessionStats, bool) {
	rus.mu.Lock()
	defer rus.mu.Unlock()
	return rus.stats, rus.gotEOF
}

// Close tears the remote unit session down: a best-effort close frame,
// then the connection. Idempotent; always returns nil.
func (rus *RemoteUnitSession) Close() error {
	rus.mu.Lock()
	if rus.closed {
		rus.mu.Unlock()
		return nil
	}
	rus.closed = true
	rus.mu.Unlock()
	close(rus.done)
	rus.watchStop()
	rus.wmu.Lock()
	_ = writeFrame(rus.conn, frameClose, nil)
	rus.wmu.Unlock()
	rus.conn.Close()
	for range rus.recv {
	}
	return nil
}
