package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dpp"
)

// OpenUnits opens a file-unit session on the remote service
// (dpp.Service.OpenUnits over the wire): whole decoded files arrive
// strictly in file-list order instead of a batch stream. This is how the
// fleet multiplexer (dppshard) consumes a shard; training loops consume
// batch sessions via Open.
//
// The spec must name its files explicitly (Spec.Files): units travel by
// subset index, so the client must own the list the indices name. The
// receive window counts unit frames in flight, sized like a batch
// session's — max(1,Readers) × buffer depth — so a shard's scan workers
// stay busy up to the same backpressure bound a local unit session's
// merge window allows.
//
// Under a Client.Resume policy the unit stream resumes over reconnects
// exactly like a batch session's, with the chain hash verifying the
// continued stream.
func (c *Client) OpenUnits(ctx context.Context, spec dpp.Spec) (*RemoteUnitSession, error) {
	if len(spec.Files) == 0 {
		return nil, fmt.Errorf("dppnet: file-unit session needs an explicit file list")
	}
	ws, err := encodeSpec(spec)
	if err != nil {
		return nil, err
	}
	readers, buffer := spec.Readers, spec.Buffer
	if readers <= 0 {
		readers = dpp.DefaultReaders
	}
	if buffer <= 0 {
		buffer = dpp.DefaultBuffer
	}
	window := readers * buffer
	if window > maxWindow {
		window = maxWindow
	}

	conn, br, watchStop, token, err := c.openStream(ctx, c.addr, openRequest{
		Kind: kindSession, Window: window, Spec: ws, FileUnits: true, Resumable: c.resumable(),
	})
	if err != nil {
		return nil, err
	}

	rus := &RemoteUnitSession{
		client: c,
		ws:     ws,
		window: window,
		rng:    jitterRNG(c.Resume.normalized(), c.sessionSeq.Add(1)),
		conn:   conn,
		files:  spec.Files,
		// One slot past the credit window, for the same reason as a batch
		// session's receive channel: the terminal message always fits.
		recv:      make(chan remoteUnitMsg, window+1),
		done:      make(chan struct{}),
		watchStop: watchStop,
		token:     token,
		chain:     chainSeed,
	}
	go rus.receive(br, rus.recv, watchStop, 0, chainSeed)
	return rus, nil
}

// remoteUnitMsg is one received item handed from the connection reader
// to NextUnit: a decoded unit with its verified chain value, or the
// terminal error.
type remoteUnitMsg struct {
	unit  *dpp.FileUnit
	chain uint64
	err   error
}

// RemoteUnitSession is the client half of one file-unit stream. NextUnit
// is single-consumer; Close may race it from another goroutine, exactly
// as with RemoteSession.
type RemoteUnitSession struct {
	client *Client
	ws     *wireSpec
	window int
	files  []string

	done chan struct{}

	wmu sync.Mutex // serializes credit/close frame writes

	// rng drives backoff jitter; touched only from the consumer
	// goroutine (reconnect runs under NextUnit).
	rng *rand.Rand

	// consumed and chain are the resume cursor: units [0, consumed) were
	// returned by NextUnit; chain is the rolling hash after the last.
	consumed   int64
	chain      uint64
	reconnects atomic.Int64

	mu        sync.Mutex
	conn      net.Conn
	recv      chan remoteUnitMsg
	watchStop func()
	token     string
	stats     dpp.SessionStats
	gotEOF    bool
	closed    bool
	termErr   error
}

// Reconnects reports how many times this session resumed over a new
// connection.
func (rus *RemoteUnitSession) Reconnects() int64 { return rus.reconnects.Load() }

// receive owns one connection's read half, mirroring RemoteSession's
// receiver. It additionally enforces the in-order contract: units must
// arrive with strictly consecutive subset indices starting at the
// resume offset — a server violating that is protocol-corrupt, and
// failing here keeps the fleet merge from ever seeing a misordered or
// aliased slot. The stamped chain hash is recomputed and compared per
// unit, so a resumed stream that diverges fails at the first frame.
func (rus *RemoteUnitSession) receive(br *bufio.Reader, recv chan remoteUnitMsg, stop func(), next int64, chain uint64) {
	defer close(recv)
	defer stop()
	terminal := func(err error) {
		select {
		case recv <- remoteUnitMsg{err: err}:
		case <-rus.done:
		}
	}
	for {
		typ, payload, err := readFrame(br, maxFrameBytes)
		if err != nil {
			terminal(fmt.Errorf("%w: %v", errConnLost, err))
			return
		}
		switch typ {
		case frameFileUnit:
			fchain, body, err := decodeUnitFrame(payload)
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt file-unit frame: %w", err))
				return
			}
			u, err := decodeFileUnit(body)
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt file-unit frame: %w", err))
				return
			}
			if int64(u.Index) != next || u.Index >= len(rus.files) {
				terminal(fmt.Errorf("dppnet: file unit %d out of order (want %d of %d)", u.Index, next, len(rus.files)))
				return
			}
			if chain, err = chainUnit(chain, body); err != nil {
				terminal(err)
				return
			}
			if chain != fchain {
				terminal(fmt.Errorf("dppnet: stream hash mismatch at file unit %d", u.Index))
				return
			}
			u.File = rus.files[u.Index]
			next++
			select {
			case recv <- remoteUnitMsg{unit: u, chain: chain}:
			case <-rus.done:
				return
			}
		case frameStats:
			st, err := decodeSessionStats(bytes.NewReader(payload))
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt stats frame: %w", err))
				return
			}
			rus.mu.Lock()
			rus.stats = st
			rus.mu.Unlock()
		case frameEOF:
			rus.mu.Lock()
			rus.gotEOF = true
			rus.mu.Unlock()
			terminal(io.EOF)
			return
		case frameDrain:
			if _, err := decodeDrainNotice(payload); err != nil {
				terminal(fmt.Errorf("dppnet: corrupt drain frame: %w", err))
				return
			}
			// Unit sessions always surface the drain: the fleet
			// multiplexer (dppshard) owns failover — it reroutes the
			// shard's unconsumed files to other shards, so nothing already
			// served is ever refetched.
			terminal(ErrDrained)
			return
		case frameError:
			terminal(fmt.Errorf("%w: %s", ErrRemote, payload))
			return
		default:
			terminal(fmt.Errorf("dppnet: unexpected frame %#x", typ))
			return
		}
	}
}

// NextUnit returns the stream's next file unit, blocking until one
// arrives, the scan is exhausted (io.EOF), the server reports an error
// (wrapped in ErrRemote), the connection fails, ctx is cancelled, or the
// session is closed (dpp.ErrClosed) — the same contract as a local
// UnitSession.NextUnit. Each consumed unit returns one window credit.
// Under a resume policy, a failed connection is redialed here instead of
// surfacing.
func (rus *RemoteUnitSession) NextUnit(ctx context.Context) (*dpp.FileUnit, error) {
	for {
		rus.mu.Lock()
		if rus.closed {
			rus.mu.Unlock()
			return nil, dpp.ErrClosed
		}
		if rus.termErr != nil {
			err := rus.termErr
			rus.mu.Unlock()
			return nil, err
		}
		recv := rus.recv
		rus.mu.Unlock()

		select {
		case m, ok := <-recv:
			if !ok {
				rus.mu.Lock()
				defer rus.mu.Unlock()
				if rus.closed {
					return nil, dpp.ErrClosed
				}
				if rus.termErr != nil {
					return nil, rus.termErr
				}
				return nil, io.EOF
			}
			if m.err != nil {
				resumeCut := false
				if errors.Is(m.err, errConnLost) && rus.client != nil && rus.client.Resume.MaxAttempts > 0 {
					rerr := rus.reconnect(ctx)
					if rerr == nil {
						rus.reconnects.Add(1)
						continue
					}
					if rerr != ctx.Err() {
						m.err = rerr
					} else {
						resumeCut = true
					}
				}
				rus.mu.Lock()
				closed := rus.closed
				if rus.termErr == nil {
					rus.termErr = m.err
				}
				rus.mu.Unlock()
				if closed && m.err != io.EOF {
					return nil, dpp.ErrClosed
				}
				if resumeCut {
					return nil, ctx.Err()
				}
				return nil, m.err
			}
			rus.consumed, rus.chain = int64(m.unit.Index)+1, m.chain
			rus.sendCredit()
			return m.unit, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-rus.done:
			return nil, dpp.ErrClosed
		}
	}
}

// reconnect mirrors RemoteSession.reconnect for the unit stream: token
// resume first, offset replay as fallback, capped exponential backoff
// between transport failures.
func (rus *RemoteUnitSession) reconnect(ctx context.Context) error {
	pol := rus.client.Resume.normalized()
	rus.mu.Lock()
	token := rus.token
	rus.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(pol.backoff(attempt, rus.rng)):
			case <-ctx.Done():
				return ctx.Err()
			case <-rus.done:
				return dpp.ErrClosed
			}
		}
		err := rus.redial(ctx, token)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrRemote) && token != "" {
			token = ""
			if err = rus.redial(ctx, ""); err == nil {
				return nil
			}
		}
		if errors.Is(err, ErrRemote) || errors.Is(err, dpp.ErrClosed) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("dppnet: resume failed after %d attempts: %w", pol.MaxAttempts, lastErr)
}

// redial performs one resume handshake and, on success, installs the new
// connection and a fresh receiver continuing at the consumed cursor.
func (rus *RemoteUnitSession) redial(ctx context.Context, token string) error {
	conn, br, stop, newToken, err := rus.client.openStream(ctx, rus.client.addr, openRequest{
		Kind: kindSession, Window: rus.window, Spec: rus.ws, FileUnits: true,
		Resumable: true, Offset: rus.consumed, Token: token,
	})
	if err != nil {
		return err
	}
	recv := make(chan remoteUnitMsg, rus.window+1)
	rus.mu.Lock()
	if rus.closed {
		rus.mu.Unlock()
		stop()
		conn.Close()
		return dpp.ErrClosed
	}
	old := rus.conn
	rus.conn = conn
	rus.recv = recv
	rus.watchStop = stop
	rus.token = newToken
	rus.mu.Unlock()
	if old != nil {
		old.Close()
	}
	go rus.receive(br, recv, stop, rus.consumed, rus.chain)
	return nil
}

// sendCredit returns one window credit; a write failure means the
// connection is already dead and will surface through the receiver.
func (rus *RemoteUnitSession) sendCredit() {
	rus.mu.Lock()
	conn := rus.conn
	rus.mu.Unlock()
	var payload [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(payload[:], 1)
	rus.wmu.Lock()
	defer rus.wmu.Unlock()
	_ = writeFrame(conn, frameCredit, payload[:n])
}

// Stats returns the shard session's final accounting as reported in the
// trailing stats frame, available once NextUnit has returned io.EOF.
func (rus *RemoteUnitSession) Stats() (dpp.SessionStats, bool) {
	rus.mu.Lock()
	defer rus.mu.Unlock()
	return rus.stats, rus.gotEOF
}

// Close tears the remote unit session down: a best-effort close frame,
// then the connection. Idempotent; always returns nil.
func (rus *RemoteUnitSession) Close() error {
	rus.mu.Lock()
	if rus.closed {
		rus.mu.Unlock()
		return nil
	}
	rus.closed = true
	conn := rus.conn
	recv := rus.recv
	stop := rus.watchStop
	rus.mu.Unlock()
	close(rus.done)
	stop()
	rus.wmu.Lock()
	_ = writeFrame(conn, frameClose, nil)
	rus.wmu.Unlock()
	conn.Close()
	for range recv {
	}
	return nil
}
