package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dpp"
	"repro/internal/reader"
)

// ErrRemote wraps failures the server reported over the wire (as opposed
// to transport failures observed locally).
var ErrRemote = errors.New("dppnet: remote error")

// ErrDrained reports that the server handed this session a drain notice:
// it is shutting down gracefully and wants the client to continue the
// stream elsewhere. A RemoteSession with Client.Failover addresses
// handles it internally (failing over mid-stream); otherwise it surfaces
// from Next/NextUnit so the caller can reroute.
var ErrDrained = errors.New("dppnet: server draining, session handed off")

// errConnLost marks transport-level stream failures — the connection
// died under the session. These (and only these) are the errors a
// resume policy reconnects across; corrupt frames and server-reported
// errors stay terminal.
var errConnLost = errors.New("dppnet: connection lost")

// ResumePolicy configures transparent reconnect-and-resume for remote
// sessions: when the connection under a session dies, the client redials
// with its resume token and consumed offset, verifying the continued
// stream against the rolling chain hash. The zero value disables
// reconnect (a dead connection is a terminal session error, the
// pre-resume behavior).
type ResumePolicy struct {
	// MaxAttempts caps consecutive failed redials before the session
	// gives up; 0 disables reconnect entirely.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (the first is
	// immediate); it doubles per attempt, capped at MaxDelay. Defaults:
	// 50ms base, 2s cap.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter randomizes each backoff delay downward by up to this
	// fraction of its exponential value, de-synchronizing the redial
	// storm when a server restart drops a whole fleet of sessions at
	// once (unjittered, every session slept the identical schedule and
	// the herd re-arrived in lockstep each round). 0 means
	// DefaultResumeJitter; negative disables jitter (exact exponential
	// delays, what deterministic tests pin); values above 1 clamp to 1.
	Jitter float64
	// Seed seeds the per-session jitter source, for tests that need a
	// reproducible delay sequence; 0 derives a seed from the clock. Each
	// session mixes in its own ordinal so sessions sharing a client (and
	// a seed) still spread apart.
	Seed int64
}

// DefaultResumeJitter is the backoff jitter fraction when
// ResumePolicy.Jitter is zero: each delay lands uniformly in
// [delay/2, delay].
const DefaultResumeJitter = 0.5

func (p ResumePolicy) normalized() ResumePolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = DefaultResumeJitter
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// backoff returns the pause before redial attempt n (n >= 1; attempt 0
// is immediate): BaseDelay doubled per attempt, capped at MaxDelay, then
// jittered downward by up to the Jitter fraction. Call on a normalized
// policy. rng may be nil (no jitter); it is only ever touched from the
// session's consumer goroutine.
func (p ResumePolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && rng != nil {
		d -= time.Duration(p.Jitter * rng.Float64() * float64(d))
	}
	return d
}

// jitterRNG mints the per-session jitter source: the policy seed (or the
// clock) mixed with the session ordinal k so concurrent sessions spread.
func jitterRNG(p ResumePolicy, k int64) *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	const mix = int64(-4645906587626371135) // 0x9e3779b97f4a7c15 as int64
	return rand.New(rand.NewSource(seed ^ k*mix))
}

// Client opens preprocessing sessions on a remote dppnet server. It
// holds no connection itself — every Open and ServiceStats dials its own
// TCP connection, mirroring one-connection-per-session on the server.
type Client struct {
	addr       string
	dialer     net.Dialer
	sessionSeq atomic.Int64

	// Resume, when MaxAttempts > 0, makes sessions opened by this client
	// survive connection loss: they handshake as resumable and
	// transparently redial-and-resume under the policy's capped backoff.
	// Set before Open.
	Resume ResumePolicy
	// Resumable asks the server for a resume token even when automatic
	// reconnect is disabled — the handoff primitive for external
	// failover. Sessions under a Resume policy are always resumable.
	Resumable bool
	// AuthToken is the tenant token presented in every handshake; leave
	// empty against servers that run without a front door. Set before
	// Open.
	AuthToken string
	// Failover lists alternate server addresses a session may continue
	// on when its server drains mid-stream. On a drain notice the
	// session redials the first reachable address (skipping the current
	// one) and splices the remainder of the stream by deterministic
	// offset replay — byte-identical, chain-verified. Empty means drain
	// notices are advisory only. Set before Open.
	Failover []string
}

// NewClient returns a client for the server at addr (host:port). No I/O
// happens until Open or ServiceStats.
func NewClient(addr string) *Client {
	return &Client{addr: addr}
}

func (c *Client) resumable() bool {
	return c.Resumable || c.Resume.MaxAttempts > 0
}

// dial establishes a connection to addr and writes the preamble +
// handshake, stamping the client's tenant token into the request.
func (c *Client) dial(ctx context.Context, addr string, req openRequest) (net.Conn, *bufio.Reader, error) {
	req.AuthToken = c.AuthToken
	conn, err := c.dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(req)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	var hello bytes.Buffer
	hello.WriteString(protoMagic)
	hello.WriteByte(protoVersion)
	if err := writeFrame(&hello, frameOpen, payload); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if _, err := conn.Write(hello.Bytes()); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, bufio.NewReader(conn), nil
}

// openStream dials and completes a session handshake, returning the
// connection, its reader, and the ok reply's resume token (empty for
// non-resumable sessions). Server refusals come back wrapped in
// ErrRemote.
func (c *Client) openStream(ctx context.Context, addr string, req openRequest) (net.Conn, *bufio.Reader, func(), string, error) {
	conn, br, err := c.dial(ctx, addr, req)
	if err != nil {
		return nil, nil, nil, "", err
	}
	// Install the ctx watcher before the handshake read: a server that
	// accepts but never replies must not be able to wedge the open past
	// its context.
	watchStop := closeOnDone(ctx, conn)
	fail := func(err error) (net.Conn, *bufio.Reader, func(), string, error) {
		watchStop()
		conn.Close()
		return nil, nil, nil, "", err
	}
	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil {
		if ctx.Err() != nil {
			return fail(ctx.Err())
		}
		return fail(err)
	}
	switch typ {
	case frameOK:
	case frameError:
		return fail(fmt.Errorf("%w: %s", ErrRemote, payload))
	default:
		return fail(fmt.Errorf("dppnet: unexpected handshake reply %#x", typ))
	}
	okr, err := decodeOKReply(payload)
	if err != nil {
		return fail(err)
	}
	return conn, br, watchStop, okr.Token, nil
}

// ServiceStats fetches the remote service's aggregate accounting — the
// wire form of a /statsz probe against dpp.Service.Stats.
func (c *Client) ServiceStats(ctx context.Context) (dpp.Stats, error) {
	conn, br, err := c.dial(ctx, c.addr, openRequest{Kind: kindStatsz})
	if err != nil {
		return dpp.Stats{}, err
	}
	defer conn.Close()
	stop := closeOnDone(ctx, conn)
	defer stop()

	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil {
		if ctx.Err() != nil {
			return dpp.Stats{}, ctx.Err()
		}
		return dpp.Stats{}, err
	}
	switch typ {
	case frameSvcStats:
		return decodeServiceStats(payload)
	case frameError:
		return dpp.Stats{}, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return dpp.Stats{}, fmt.Errorf("dppnet: unexpected frame %#x to statsz", typ)
	}
}

// Tablez fetches the served table's metadata — schema width, file plan,
// and derived spec — so a trainer can start cold from the wire with no
// local table build.
func (c *Client) Tablez(ctx context.Context) (*TableMeta, error) {
	conn, br, err := c.dial(ctx, c.addr, openRequest{Kind: kindTablez})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := closeOnDone(ctx, conn)
	defer stop()

	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	switch typ {
	case frameTablez:
		return decodeTableMeta(payload)
	case frameError:
		return nil, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return nil, fmt.Errorf("dppnet: unexpected frame %#x to tablez", typ)
	}
}

// closeOnDone force-closes conn when ctx is cancelled, so reads blocked
// on the connection observe cancellation promptly. The returned stop
// function releases the watcher.
func closeOnDone(ctx context.Context, conn net.Conn) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Open submits spec to the remote service and returns the session as a
// pull stream. The semantics mirror dpp.Service.Open: admission errors
// (invalid spec, session cap, closed service) surface here, wrapped in
// ErrRemote; cancelling ctx at any later point tears the remote session
// down as Close would.
//
// The receive window — how many batches the server may have in flight
// ahead of the consumer — is the session's backpressure bound, derived
// from the spec exactly as a local session sizes its buffers:
// max(1,Readers) × buffer depth. A stalled consumer therefore stalls
// the server-side readers at the same bound a local session would.
func (c *Client) Open(ctx context.Context, spec dpp.Spec) (*RemoteSession, error) {
	// A Follow session has no frozen file list to hash and no
	// predetermined length, so resume and drain failover — both built on
	// replaying a fixed deterministic stream — cannot apply. Refuse the
	// combination here, before any dial, rather than letting the server
	// reject it (which it also does).
	if spec.Follow && (c.resumable() || len(c.Failover) > 0) {
		return nil, fmt.Errorf("dppnet: follow sessions are incompatible with resume and failover; use a client without them")
	}
	ws, err := encodeSpec(spec)
	if err != nil {
		return nil, err
	}
	readers, buffer := spec.Readers, spec.Buffer
	if readers <= 0 {
		readers = dpp.DefaultReaders
	}
	if buffer <= 0 {
		buffer = dpp.DefaultBuffer
	}
	window := readers * buffer
	if window > maxWindow {
		window = maxWindow
	}

	conn, br, watchStop, token, err := c.openStream(ctx, c.addr, openRequest{
		Kind: kindSession, Window: window, Spec: ws, Resumable: c.resumable(),
	})
	if err != nil {
		return nil, err
	}

	rs := &RemoteSession{
		client: c,
		ws:     ws,
		window: window,
		addr:   c.addr,
		rng:    jitterRNG(c.Resume.normalized(), c.sessionSeq.Add(1)),
		conn:   conn,
		// One slot past the credit window: a protocol-conformant server
		// never has more than `window` undelivered batches buffered here,
		// so the extra slot guarantees the receiver's single terminal
		// message always fits — an abandoned session (Open ctx cancelled,
		// no Close, no Next) cannot strand the receive goroutine on a
		// full channel.
		recv:      make(chan remoteMsg, window+1),
		done:      make(chan struct{}),
		watchStop: watchStop,
		token:     token,
		chain:     chainSeed,
	}
	go rs.receive(br, rs.recv, watchStop, 0, chainSeed)
	return rs, nil
}

// remoteMsg is one received item handed from the connection reader to
// Next: a decoded batch with its verified stream index and chain value,
// or the terminal error (io.EOF for a clean end).
type remoteMsg struct {
	batch *reader.Batch
	index int64
	chain uint64
	err   error
}

// RemoteSession is the client half of one streamed session. It satisfies
// dpp.Stream: Next blocks for the next batch exactly like a local
// session's, and Close tears the remote session down. Next is
// single-consumer, as with a local Session.
//
// Under a Client.Resume policy the session is not connection-bound: when
// the transport dies, Next transparently redials with the session's
// resume token and consumed offset, and the continued stream is verified
// frame-by-frame against the rolling chain hash — a resumed stream that
// diverges anywhere from the uninterrupted one fails loudly at the first
// divergent frame.
type RemoteSession struct {
	client *Client
	ws     *wireSpec
	window int

	done chan struct{}

	wmu sync.Mutex // serializes credit/close frame writes

	// rng drives backoff jitter; touched only from the consumer
	// goroutine (reconnect/failover run under Next).
	rng *rand.Rand

	// consumed and chain are the resume cursor: frames [0, consumed)
	// were returned by Next, and chain is the rolling hash after the
	// last of them. Single-consumer like Next itself.
	consumed      int64
	chain         uint64
	reconnects    atomic.Int64
	tokenResumes  atomic.Int64
	replays       atomic.Int64
	drainHandoffs atomic.Int64
	extendCount   atomic.Int64
	extendFiles   atomic.Int64

	mu        sync.Mutex
	addr      string // current server; changes on drain failover
	conn      net.Conn
	recv      chan remoteMsg
	watchStop func()
	token     string
	stats     dpp.SessionStats
	gotEOF    bool
	closed    bool
	termErr   error
}

var _ dpp.Stream = (*RemoteSession)(nil)

// Reconnects reports how many times this session resumed over a new
// connection.
func (rs *RemoteSession) Reconnects() int64 { return rs.reconnects.Load() }

// TokenResumes and Replays split the session's successful continuations
// by kind: a token resume claimed parked server state (retained frames
// resent, nothing re-decoded), a replay re-synthesized the consumed
// prefix on a fresh session. DrainHandoffs counts mid-stream failovers
// to another address after a drain notice.
func (rs *RemoteSession) TokenResumes() int64  { return rs.tokenResumes.Load() }
func (rs *RemoteSession) Replays() int64       { return rs.replays.Load() }
func (rs *RemoteSession) DrainHandoffs() int64 { return rs.drainHandoffs.Load() }

// ExtendNotices and ExtendedFiles report the live-tail telemetry of a
// Follow session: how many extend frames the server pushed and the total
// files they announced. Both stay zero for non-follow sessions.
func (rs *RemoteSession) ExtendNotices() int64 { return rs.extendCount.Load() }
func (rs *RemoteSession) ExtendedFiles() int64 { return rs.extendFiles.Load() }

// EndFollow asks the server to end a Follow session's tail: the server
// stops observing the catalog, the stream drains the files already
// announced, and Next runs to a normal io.EOF with final stats — the
// wire twin of dpp.Session.EndFollow. Best-effort and idempotent; a
// no-op on non-follow sessions and dead connections.
func (rs *RemoteSession) EndFollow() {
	rs.mu.Lock()
	conn := rs.conn
	closed := rs.closed
	rs.mu.Unlock()
	if closed || conn == nil {
		return
	}
	rs.wmu.Lock()
	defer rs.wmu.Unlock()
	_ = writeFrame(conn, frameEndFollow, nil)
}

// receive owns one connection's read half: it decodes frames into the
// bounded recv channel (never blocking the socket beyond the credit
// window, which caps in-flight batches below the channel's capacity)
// and terminates with exactly one terminal message. Every batch frame's
// index must be the next expected and its stamped chain must equal the
// locally recomputed one — so a buggy or hostile resume can never splice
// a divergent stream in silently. Terminal sends bail out on rs.done so
// even a misbehaving server that overfills the window cannot strand the
// receiver once Close runs.
func (rs *RemoteSession) receive(br *bufio.Reader, recv chan remoteMsg, stop func(), expect int64, chain uint64) {
	defer close(recv)
	defer stop() // this connection's stream has ended; release its watcher
	terminal := func(err error) {
		select {
		case recv <- remoteMsg{err: err}:
		case <-rs.done:
		}
	}
	for {
		typ, payload, err := readFrame(br, maxFrameBytes)
		if err != nil {
			terminal(fmt.Errorf("%w: %v", errConnLost, err))
			return
		}
		switch typ {
		case frameBatch:
			idx, fchain, body, err := decodeBatchFrame(payload)
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt batch frame: %w", err))
				return
			}
			if idx != expect {
				terminal(fmt.Errorf("dppnet: batch index %d, want %d", idx, expect))
				return
			}
			chain = chainStep(chain, body)
			if chain != fchain {
				terminal(fmt.Errorf("dppnet: stream hash mismatch at batch %d", idx))
				return
			}
			b, err := reader.DecodeBatch(bytes.NewReader(body))
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt batch frame: %w", err))
				return
			}
			select {
			case recv <- remoteMsg{batch: b, index: idx, chain: chain}:
			case <-rs.done:
				return
			}
			expect++
		case frameStats:
			st, err := decodeSessionStats(bytes.NewReader(payload))
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt stats frame: %w", err))
				return
			}
			rs.mu.Lock()
			rs.stats = st
			rs.mu.Unlock()
		case frameEOF:
			rs.mu.Lock()
			rs.gotEOF = true
			rs.mu.Unlock()
			terminal(io.EOF)
			return
		case frameDrain:
			if _, err := decodeDrainNotice(payload); err != nil {
				terminal(fmt.Errorf("dppnet: corrupt drain frame: %w", err))
				return
			}
			if len(rs.client.Failover) == 0 {
				// Advisory only: with nowhere to go, keep consuming — the
				// server keeps serving until the operator's deadline.
				continue
			}
			terminal(ErrDrained)
			return
		case frameExtend:
			en, err := decodeExtend(payload)
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt extend frame: %w", err))
				return
			}
			rs.extendCount.Add(1)
			rs.extendFiles.Add(int64(len(en.Files)))
		case frameError:
			terminal(fmt.Errorf("%w: %s", ErrRemote, payload))
			return
		default:
			terminal(fmt.Errorf("dppnet: unexpected frame %#x", typ))
			return
		}
	}
}

// Next returns the session's next batch, blocking until one arrives over
// the wire, the scan is exhausted (io.EOF), the server reports an error
// (wrapped in ErrRemote), the connection fails, ctx is cancelled
// (ctx.Err()), or the session is closed (dpp.ErrClosed) — the same
// contract as a local Session.Next. Each consumed batch returns one
// window credit to the server. Under a resume policy, a failed
// connection is redialed here instead of surfacing.
func (rs *RemoteSession) Next(ctx context.Context) (*reader.Batch, error) {
	for {
		rs.mu.Lock()
		if rs.closed {
			rs.mu.Unlock()
			return nil, dpp.ErrClosed
		}
		if rs.termErr != nil {
			err := rs.termErr
			rs.mu.Unlock()
			return nil, err
		}
		recv := rs.recv
		rs.mu.Unlock()

		select {
		case m, ok := <-recv:
			if !ok {
				// The receiver already delivered its terminal error; this is
				// a Next after the end. Replay the recorded outcome.
				rs.mu.Lock()
				defer rs.mu.Unlock()
				if rs.closed {
					return nil, dpp.ErrClosed
				}
				if rs.termErr != nil {
					return nil, rs.termErr
				}
				return nil, io.EOF
			}
			if m.err != nil {
				resumeCut := false
				if errors.Is(m.err, ErrDrained) && rs.client != nil && len(rs.client.Failover) > 0 {
					ferr := rs.failover(ctx)
					if ferr == nil {
						rs.drainHandoffs.Add(1)
						continue
					}
					if errors.Is(ferr, dpp.ErrClosed) {
						m.err = ferr
					} else if ctx.Err() != nil && ferr == ctx.Err() {
						// Failover cut short by ctx: record the drain as the
						// outcome, report the cancellation to this caller.
						resumeCut = true
					}
					// Otherwise every failover address refused: ErrDrained
					// stands so the caller knows the stream needs a new home.
				}
				if errors.Is(m.err, errConnLost) && rs.client != nil && rs.client.Resume.MaxAttempts > 0 {
					rerr := rs.reconnect(ctx)
					if rerr == nil {
						rs.reconnects.Add(1)
						continue
					}
					if rerr != ctx.Err() {
						m.err = rerr
					} else {
						// A reconnect cut short by ctx keeps the transport
						// loss as the recorded outcome but reports the
						// cancellation to this caller.
						resumeCut = true
					}
				}
				rs.mu.Lock()
				closed := rs.closed
				if rs.termErr == nil {
					rs.termErr = m.err
				}
				rs.mu.Unlock()
				if closed && m.err != io.EOF {
					// Teardown races a connection error; Close semantics win.
					return nil, dpp.ErrClosed
				}
				if resumeCut {
					return nil, ctx.Err()
				}
				return nil, m.err
			}
			rs.consumed, rs.chain = m.index+1, m.chain
			rs.sendCredit()
			return m.batch, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-rs.done:
			return nil, dpp.ErrClosed
		}
	}
}

// reconnect redials the session under the client's resume policy: first
// presenting the resume token (continuing parked server state with no
// re-decoding), falling back to a token-less offset replay when the
// server refuses the token, and backing off exponentially — with
// downward jitter, so a fleet of sessions dropped by one restart doesn't
// re-arrive in lockstep — between transport failures. A server refusal
// of the replay itself is terminal.
func (rs *RemoteSession) reconnect(ctx context.Context) error {
	pol := rs.client.Resume.normalized()
	rs.mu.Lock()
	token := rs.token
	rs.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(pol.backoff(attempt, rs.rng)):
			case <-ctx.Done():
				return ctx.Err()
			case <-rs.done:
				return dpp.ErrClosed
			}
		}
		err := rs.redialTo(ctx, rs.currentAddr(), token)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrRemote) && token != "" {
			// The parked state is gone (expired, evicted, or claimed):
			// fall back to a fresh session replayed to our offset.
			token = ""
			if err = rs.redialTo(ctx, rs.currentAddr(), ""); err == nil {
				return nil
			}
		}
		if errors.Is(err, ErrRemote) || errors.Is(err, dpp.ErrClosed) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("dppnet: resume failed after %d attempts: %w", pol.MaxAttempts, lastErr)
}

func (rs *RemoteSession) currentAddr() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.addr
}

// failover moves the session to another address after a drain notice.
// The resume token anchors parked state on the *draining* server, so the
// new server is joined by deterministic offset replay: byte-identical,
// verified frame-by-frame against the rolling chain hash.
func (rs *RemoteSession) failover(ctx context.Context) error {
	cur := rs.currentAddr()
	var lastErr error
	for _, addr := range rs.client.Failover {
		if addr == "" || addr == cur {
			continue
		}
		err := rs.redialTo(ctx, addr, "")
		if err == nil {
			return nil
		}
		if errors.Is(err, dpp.ErrClosed) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dppnet: no failover address beyond draining %s", cur)
	}
	return lastErr
}

// redialTo performs one resume handshake against addr and, on success,
// installs the new connection and a fresh receiver continuing at the
// consumed cursor.
func (rs *RemoteSession) redialTo(ctx context.Context, addr string, token string) error {
	conn, br, stop, newToken, err := rs.client.openStream(ctx, addr, openRequest{
		Kind: kindSession, Window: rs.window, Spec: rs.ws,
		Resumable: true, Offset: rs.consumed, Token: token,
	})
	if err != nil {
		return err
	}
	recv := make(chan remoteMsg, rs.window+1)
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		stop()
		conn.Close()
		return dpp.ErrClosed
	}
	old := rs.conn
	rs.conn = conn
	rs.recv = recv
	rs.watchStop = stop
	rs.token = newToken
	rs.addr = addr
	rs.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if token != "" {
		rs.tokenResumes.Add(1)
	} else if rs.consumed > 0 {
		rs.replays.Add(1)
	}
	go rs.receive(br, recv, stop, rs.consumed, rs.chain)
	return nil
}

// sendCredit returns one window credit. A write failure means the
// connection is already dead; the receiver will surface that as the
// terminal error, so it is not reported here.
func (rs *RemoteSession) sendCredit() {
	rs.mu.Lock()
	conn := rs.conn
	rs.mu.Unlock()
	var payload [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(payload[:], 1)
	rs.wmu.Lock()
	defer rs.wmu.Unlock()
	_ = writeFrame(conn, frameCredit, payload[:n])
}

// Stats returns the session's final accounting as reported by the
// server in the trailing stats frame. It is available once Next has
// returned io.EOF; before that (or after a failure that lost the frame)
// it returns false.
func (rs *RemoteSession) Stats() (dpp.SessionStats, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.stats, rs.gotEOF
}

// Close tears the remote session down: a best-effort close frame, then
// the connection. Idempotent; always returns nil, like a local
// Session.Close. Batches already returned by Next remain valid.
func (rs *RemoteSession) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	conn := rs.conn
	recv := rs.recv
	stop := rs.watchStop
	rs.mu.Unlock()
	close(rs.done)
	stop()
	rs.wmu.Lock()
	_ = writeFrame(conn, frameClose, nil)
	rs.wmu.Unlock()
	conn.Close()
	// Drain the receiver so it observes the connection close and exits;
	// its terminal message is surfaced as ErrClosed by later Nexts.
	for range recv {
	}
	return nil
}
