package dppnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/dpp"
	"repro/internal/reader"
)

// ErrRemote wraps failures the server reported over the wire (as opposed
// to transport failures observed locally).
var ErrRemote = errors.New("dppnet: remote error")

// Client opens preprocessing sessions on a remote dppnet server. It
// holds no connection itself — every Open and ServiceStats dials its own
// TCP connection, mirroring one-connection-per-session on the server.
type Client struct {
	addr   string
	dialer net.Dialer
}

// NewClient returns a client for the server at addr (host:port). No I/O
// happens until Open or ServiceStats.
func NewClient(addr string) *Client {
	return &Client{addr: addr}
}

// dial establishes a connection and writes the preamble + handshake.
func (c *Client) dial(ctx context.Context, req openRequest) (net.Conn, *bufio.Reader, error) {
	conn, err := c.dialer.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(req)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	var hello bytes.Buffer
	hello.WriteString(protoMagic)
	hello.WriteByte(protoVersion)
	if err := writeFrame(&hello, frameOpen, payload); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if _, err := conn.Write(hello.Bytes()); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, bufio.NewReader(conn), nil
}

// ServiceStats fetches the remote service's aggregate accounting — the
// wire form of a /statsz probe against dpp.Service.Stats.
func (c *Client) ServiceStats(ctx context.Context) (dpp.Stats, error) {
	conn, br, err := c.dial(ctx, openRequest{Kind: kindStatsz})
	if err != nil {
		return dpp.Stats{}, err
	}
	defer conn.Close()
	stop := closeOnDone(ctx, conn)
	defer stop()

	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil {
		if ctx.Err() != nil {
			return dpp.Stats{}, ctx.Err()
		}
		return dpp.Stats{}, err
	}
	switch typ {
	case frameSvcStats:
		return decodeServiceStats(payload)
	case frameError:
		return dpp.Stats{}, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return dpp.Stats{}, fmt.Errorf("dppnet: unexpected frame %#x to statsz", typ)
	}
}

// closeOnDone force-closes conn when ctx is cancelled, so reads blocked
// on the connection observe cancellation promptly. The returned stop
// function releases the watcher.
func closeOnDone(ctx context.Context, conn net.Conn) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Open submits spec to the remote service and returns the session as a
// pull stream. The semantics mirror dpp.Service.Open: admission errors
// (invalid spec, session cap, closed service) surface here, wrapped in
// ErrRemote; cancelling ctx at any later point tears the remote session
// down as Close would.
//
// The receive window — how many batches the server may have in flight
// ahead of the consumer — is the session's backpressure bound, derived
// from the spec exactly as a local session sizes its buffers:
// max(1,Readers) × buffer depth. A stalled consumer therefore stalls
// the server-side readers at the same bound a local session would.
func (c *Client) Open(ctx context.Context, spec dpp.Spec) (*RemoteSession, error) {
	ws, err := encodeSpec(spec)
	if err != nil {
		return nil, err
	}
	readers, buffer := spec.Readers, spec.Buffer
	if readers <= 0 {
		readers = dpp.DefaultReaders
	}
	if buffer <= 0 {
		buffer = dpp.DefaultBuffer
	}
	window := readers * buffer
	if window > maxWindow {
		window = maxWindow
	}

	conn, br, err := c.dial(ctx, openRequest{Kind: kindSession, Window: window, Spec: ws})
	if err != nil {
		return nil, err
	}
	// Install the ctx watcher before the handshake read: a server that
	// accepts but never replies must not be able to wedge Open past its
	// context.
	watchStop := closeOnDone(ctx, conn)

	typ, payload, err := readFrame(br, maxFrameBytes)
	if err != nil {
		watchStop()
		conn.Close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	switch typ {
	case frameOK:
	case frameError:
		watchStop()
		conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		watchStop()
		conn.Close()
		return nil, fmt.Errorf("dppnet: unexpected handshake reply %#x", typ)
	}

	rs := &RemoteSession{
		conn: conn,
		// One slot past the credit window: a protocol-conformant server
		// never has more than `window` undelivered batches buffered here,
		// so the extra slot guarantees the receiver's single terminal
		// message always fits — an abandoned session (Open ctx cancelled,
		// no Close, no Next) cannot strand the receive goroutine on a
		// full channel.
		recv:      make(chan remoteMsg, window+1),
		done:      make(chan struct{}),
		watchStop: watchStop,
	}
	go rs.receive(br)
	return rs, nil
}

// remoteMsg is one received item handed from the connection reader to
// Next: a decoded batch, or the terminal error (io.EOF for a clean end).
type remoteMsg struct {
	batch *reader.Batch
	err   error
}

// RemoteSession is the client half of one streamed session. It satisfies
// dpp.Stream: Next blocks for the next batch exactly like a local
// session's, and Close tears the remote session down. Next is
// single-consumer, as with a local Session.
type RemoteSession struct {
	conn      net.Conn
	recv      chan remoteMsg
	done      chan struct{}
	watchStop func()

	wmu sync.Mutex // serializes credit/close frame writes

	mu      sync.Mutex
	stats   dpp.SessionStats
	gotEOF  bool
	closed  bool
	termErr error
}

var _ dpp.Stream = (*RemoteSession)(nil)

// receive owns the connection's read half: it decodes frames into the
// bounded recv channel (never blocking the socket beyond the credit
// window, which caps in-flight batches below the channel's capacity)
// and terminates with exactly one terminal message. Terminal sends
// bail out on rs.done so even a misbehaving server that overfills the
// window cannot strand the receiver once Close runs.
func (rs *RemoteSession) receive(br *bufio.Reader) {
	defer close(rs.recv)
	defer rs.watchStop() // the stream has ended; release the ctx watcher
	terminal := func(err error) {
		select {
		case rs.recv <- remoteMsg{err: err}:
		case <-rs.done:
		}
	}
	for {
		typ, payload, err := readFrame(br, maxFrameBytes)
		if err != nil {
			terminal(fmt.Errorf("dppnet: connection lost: %w", err))
			return
		}
		switch typ {
		case frameBatch:
			b, err := reader.DecodeBatch(bytes.NewReader(payload))
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt batch frame: %w", err))
				return
			}
			select {
			case rs.recv <- remoteMsg{batch: b}:
			case <-rs.done:
				return
			}
		case frameStats:
			st, err := decodeSessionStats(bytes.NewReader(payload))
			if err != nil {
				terminal(fmt.Errorf("dppnet: corrupt stats frame: %w", err))
				return
			}
			rs.mu.Lock()
			rs.stats = st
			rs.mu.Unlock()
		case frameEOF:
			rs.mu.Lock()
			rs.gotEOF = true
			rs.mu.Unlock()
			terminal(io.EOF)
			return
		case frameError:
			terminal(fmt.Errorf("%w: %s", ErrRemote, payload))
			return
		default:
			terminal(fmt.Errorf("dppnet: unexpected frame %#x", typ))
			return
		}
	}
}

// Next returns the session's next batch, blocking until one arrives over
// the wire, the scan is exhausted (io.EOF), the server reports an error
// (wrapped in ErrRemote), the connection fails, ctx is cancelled
// (ctx.Err()), or the session is closed (dpp.ErrClosed) — the same
// contract as a local Session.Next. Each consumed batch returns one
// window credit to the server.
func (rs *RemoteSession) Next(ctx context.Context) (*reader.Batch, error) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil, dpp.ErrClosed
	}
	if rs.termErr != nil {
		err := rs.termErr
		rs.mu.Unlock()
		return nil, err
	}
	rs.mu.Unlock()

	select {
	case m, ok := <-rs.recv:
		if !ok {
			// The receiver already delivered its terminal error; this is
			// a Next after the end. Replay the recorded outcome.
			rs.mu.Lock()
			defer rs.mu.Unlock()
			if rs.closed {
				return nil, dpp.ErrClosed
			}
			if rs.termErr != nil {
				return nil, rs.termErr
			}
			return nil, io.EOF
		}
		if m.err != nil {
			rs.mu.Lock()
			closed := rs.closed
			if rs.termErr == nil {
				rs.termErr = m.err
			}
			rs.mu.Unlock()
			if closed && m.err != io.EOF {
				// Teardown races a connection error; Close semantics win.
				return nil, dpp.ErrClosed
			}
			return nil, m.err
		}
		rs.sendCredit()
		return m.batch, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-rs.done:
		return nil, dpp.ErrClosed
	}
}

// sendCredit returns one window credit. A write failure means the
// connection is already dead; the receiver will surface that as the
// terminal error, so it is not reported here.
func (rs *RemoteSession) sendCredit() {
	var payload [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(payload[:], 1)
	rs.wmu.Lock()
	defer rs.wmu.Unlock()
	_ = writeFrame(rs.conn, frameCredit, payload[:n])
}

// Stats returns the session's final accounting as reported by the
// server in the trailing stats frame. It is available once Next has
// returned io.EOF; before that (or after a failure that lost the frame)
// it returns false.
func (rs *RemoteSession) Stats() (dpp.SessionStats, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.stats, rs.gotEOF
}

// Close tears the remote session down: a best-effort close frame, then
// the connection. Idempotent; always returns nil, like a local
// Session.Close. Batches already returned by Next remain valid.
func (rs *RemoteSession) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	rs.mu.Unlock()
	close(rs.done)
	rs.watchStop()
	rs.wmu.Lock()
	_ = writeFrame(rs.conn, frameClose, nil)
	rs.wmu.Unlock()
	rs.conn.Close()
	// Drain the receiver so it observes the connection close and exits;
	// its terminal message is surfaced as ErrClosed by later Nexts.
	for range rs.recv {
	}
	return nil
}
