package dppnet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dpp"
)

// Defaults for the resumable-session table; override via Server.ResumeTTL
// and Server.ResumeMax before Serve.
const (
	defaultResumeTTL = 45 * time.Second
	defaultResumeMax = 64
)

// wireStream adapts the two session kinds (batch and file-unit) to the
// unified serving loop: next returns the next frame payload with its
// stream index and rolling chain hash already stamped, so the loop —
// and the resume table's retained-frame buffer — handle both kinds
// identically.
type wireStream interface {
	next(ctx context.Context) ([]byte, error)
	stats() dpp.SessionStats
	close() error
	frameType() byte
}

// batchWire streams reader.Batch frames: uvarint index | chain | batch.
type batchWire struct {
	sess  *dpp.Session
	enc   bytes.Buffer
	idx   int64
	chain uint64
}

func newBatchWire(sess *dpp.Session) *batchWire {
	return &batchWire{sess: sess, chain: chainSeed}
}

func (b *batchWire) next(ctx context.Context) ([]byte, error) {
	bt, err := b.sess.Next(ctx)
	if err != nil {
		return nil, err
	}
	b.enc.Reset()
	if err := bt.Encode(&b.enc); err != nil {
		return nil, err
	}
	b.chain = chainStep(b.chain, b.enc.Bytes())
	payload := encodeBatchFrame(b.idx, b.chain, b.enc.Bytes())
	b.idx++
	return payload, nil
}

func (b *batchWire) stats() dpp.SessionStats { return b.sess.Stats() }
func (b *batchWire) close() error            { return b.sess.Close() }
func (b *batchWire) frameType() byte         { return frameBatch }

// unitWire streams dpp.FileUnit frames: chain | encodeFileUnit payload.
// The chain skips the payload's cache-hit byte (chainUnit), so a
// replayed unit hashes identically whether it was a hit or a re-decode.
type unitWire struct {
	us    *dpp.UnitSession
	enc   bytes.Buffer
	chain uint64
}

func newUnitWire(us *dpp.UnitSession) *unitWire {
	return &unitWire{us: us, chain: chainSeed}
}

func (u *unitWire) next(ctx context.Context) ([]byte, error) {
	un, err := u.us.NextUnit(ctx)
	if err != nil {
		return nil, err
	}
	u.enc.Reset()
	if err := encodeFileUnit(&u.enc, un); err != nil {
		return nil, err
	}
	c, err := chainUnit(u.chain, u.enc.Bytes())
	if err != nil {
		return nil, err
	}
	u.chain = c
	return encodeUnitFrame(c, u.enc.Bytes()), nil
}

func (u *unitWire) stats() dpp.SessionStats { return u.us.Stats() }
func (u *unitWire) close() error            { return u.us.Close() }
func (u *unitWire) frameType() byte         { return frameFileUnit }

// resumeEntry is one parked resumable session: the still-live stream
// (its context is server-scoped, not connection-scoped), the retained
// sent-but-unacknowledged frame payloads, and the identity facts a
// reconnect handshake must match. The retained window is bounded by the
// credit window — a client can never be owed more unacked frames than
// the window it granted.
type resumeEntry struct {
	token       string
	fileUnits   bool
	fingerprint string
	filesHash   uint64
	table       string
	shareScans  bool
	window      int
	// tenant scopes the entry to the tenant that opened the session: a
	// resume handshake must authenticate as the same tenant, so one
	// tenant's leaked token cannot splice another tenant's client into
	// its stream.
	tenant string

	ctx    context.Context
	cancel context.CancelFunc
	stream wireStream

	// sent is the stream index the next pulled frame gets; acked is the
	// lowest index the client has not confirmed consuming; retained holds
	// the frame payloads for [acked, sent).
	sent, acked int64
	retained    [][]byte

	expires time.Time
	// seq is the entry's park order (monotonic per server): capacity
	// eviction breaks expires ties on it, so the evicted entry is
	// deterministic even when many entries are parked within one clock
	// tick.
	seq   int64
	inUse bool
}

// resumeTable is the server's bounded, TTL-evicted table of parked
// sessions. The janitor goroutine starts lazily on first park and exits
// with the server context.
type resumeTable struct {
	mu      sync.Mutex
	entries map[string]*resumeEntry
	janitor bool
	// parkSeq numbers parks; resumeEntry.seq is drawn from it under mu.
	parkSeq int64
}

// now reads the resume table's clock: the resumeClock seam when a test
// installed one (to park entries at a frozen instant), the wall clock
// otherwise.
func (s *Server) now() time.Time {
	if s.resumeClock != nil {
		return s.resumeClock()
	}
	return time.Now()
}

// newResumeToken mints an opaque 32-hex-char session token.
func newResumeToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// fileListHash summarizes a spec's explicit file plan so a resume
// handshake naming a different plan is rejected instead of silently
// merging two different streams.
func fileListHash(files []string) uint64 {
	h := chainSeed
	for _, f := range files {
		h = chainStep(h, []byte(f))
		h = chainStep(h, []byte{0})
	}
	return h
}

func (s *Server) resumeTTL() time.Duration {
	if s.ResumeTTL > 0 {
		return s.ResumeTTL
	}
	return defaultResumeTTL
}

func (s *Server) resumeMax() int {
	if s.ResumeMax != 0 {
		return s.ResumeMax
	}
	return defaultResumeMax
}

// park stores (or re-stores, for a claimed entry) a dropped resumable
// session's state. It refuses — the caller then closes the stream —
// when parking is disabled, the server is shutting down, or the table
// is full of in-use entries.
func (s *Server) park(e *resumeEntry) bool {
	// A draining server refuses to park: parked state anchors a future
	// reconnect *here*, and drain mode's whole point is sending clients
	// elsewhere. The dropped session's client replays by offset against
	// its failover address instead.
	if s.resumeMax() < 0 || s.ctx.Err() != nil || s.draining.Load() {
		return false
	}
	var evict *resumeEntry
	s.resume.mu.Lock()
	if s.resume.entries == nil {
		s.resume.entries = make(map[string]*resumeEntry)
	}
	if _, ok := s.resume.entries[e.token]; !ok && len(s.resume.entries) >= s.resumeMax() {
		// Full: evict the entry closest to expiry that nobody is using,
		// breaking expires ties on park order. Without the seq tiebreak
		// the choice fell to map iteration order, so N entries parked in
		// the same clock tick (coarse-resolution clocks make that easy)
		// could evict a *younger* entry than the one a reconnecting
		// client still had a live claim window on.
		for _, cand := range s.resume.entries {
			if cand.inUse {
				continue
			}
			if evict == nil || cand.expires.Before(evict.expires) ||
				(cand.expires.Equal(evict.expires) && cand.seq < evict.seq) {
				evict = cand
			}
		}
		if evict == nil {
			s.resume.mu.Unlock()
			return false
		}
		delete(s.resume.entries, evict.token)
	}
	s.resume.parkSeq++
	e.seq = s.resume.parkSeq
	e.expires = s.now().Add(s.resumeTTL())
	e.inUse = false
	s.resume.entries[e.token] = e
	s.startJanitorLocked()
	s.resume.mu.Unlock()
	if evict != nil {
		s.resumeExpired.Inc()
		evict.cancel()
		evict.stream.close()
	}
	return true
}

// claimResume hands a parked entry to exactly one reconnecting client
// after checking everything the handshake asserts: the token is live and
// unclaimed, the tenant that authenticated matches the tenant that
// parked, the session kind, spec fingerprint, and file plan match, and
// the offset lies inside the retained window.
func (s *Server) claimResume(token, tenant string, fileUnits bool, fingerprint string, filesHash uint64, offset int64) (*resumeEntry, error) {
	s.resume.mu.Lock()
	defer s.resume.mu.Unlock()
	e := s.resume.entries[token]
	if e == nil || s.now().After(e.expires) {
		return nil, errors.New("dppnet: unknown or expired resume token")
	}
	if e.tenant != tenant {
		// Deliberately the same shape as a dead token: a cross-tenant
		// probe learns nothing about whether the token exists.
		return nil, errors.New("dppnet: unknown or expired resume token")
	}
	if e.inUse {
		return nil, errors.New("dppnet: resume token already in use")
	}
	if e.fileUnits != fileUnits {
		return nil, errors.New("dppnet: resume session kind mismatch")
	}
	if e.fingerprint != fingerprint {
		return nil, errors.New("dppnet: resume spec fingerprint mismatch")
	}
	if e.filesHash != filesHash {
		return nil, errors.New("dppnet: resume file plan mismatch")
	}
	if offset < e.acked || offset > e.sent {
		return nil, fmt.Errorf("dppnet: resume offset %d outside retained window [%d,%d]", offset, e.acked, e.sent)
	}
	e.inUse = true
	return e, nil
}

// dropResume removes a token's entry without closing its stream — the
// caller owns the stream (it just finished serving it).
func (s *Server) dropResume(token string) {
	s.resume.mu.Lock()
	delete(s.resume.entries, token)
	s.resume.mu.Unlock()
}

// startJanitorLocked launches the TTL sweeper once; resume.mu held.
func (s *Server) startJanitorLocked() {
	if s.resume.janitor {
		return
	}
	s.resume.janitor = true
	interval := s.resumeTTL() / 2
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.evictExpiredResume()
			}
		}
	}()
}

// evictExpiredResume closes and forgets every expired, unclaimed entry.
func (s *Server) evictExpiredResume() {
	now := s.now()
	var dead []*resumeEntry
	s.resume.mu.Lock()
	for tok, e := range s.resume.entries {
		if !e.inUse && now.After(e.expires) {
			delete(s.resume.entries, tok)
			dead = append(dead, e)
		}
	}
	s.resume.mu.Unlock()
	for _, e := range dead {
		s.resumeExpired.Inc()
		e.cancel()
		e.stream.close()
	}
}

// drainResume closes every parked session; called from Server.Close
// after the handlers have drained, so nothing races the table.
func (s *Server) drainResume() {
	s.resume.mu.Lock()
	entries := s.resume.entries
	s.resume.entries = nil
	s.resume.mu.Unlock()
	for _, e := range entries {
		e.cancel()
		e.stream.close()
	}
}
