package dppnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/testutil"
)

// testEnv lands one clustered partition of synthetic data, the same
// landing the dpp package's determinism tests use (256 rows per file, so
// batch size 64 is file-aligned and 48 is not).
type testEnv struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	schema  *datagen.Schema
	samples []datagen.Sample
}

func newTestEnv(t testing.TB, sessions int) *testEnv {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 6, Seed: 99,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 256, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{store: store, catalog: catalog, schema: schema, samples: samples}
}

func alignedSpec() reader.Spec {
	return reader.Spec{
		Table:          "tbl",
		BatchSize:      64,
		SparseFeatures: []string{"item_0", "item_1"},
		DedupSparseFeatures: [][]string{
			{"user_seq_0", "user_seq_1"},
			{"user_elem_0", "user_elem_1", "user_elem_2"},
		},
	}
}

func misalignedSpec() reader.Spec {
	return reader.Spec{
		Table:     "tbl",
		BatchSize: 48,
		SparseFeatures: []string{
			"item_0", "item_1", "user_seq_0", "user_seq_1",
			"user_elem_0", "user_elem_1", "user_elem_2",
		},
		SparseTransforms: []reader.SparseTransform{
			reader.HashMod{Features: []string{"user_seq_0"}, TableSize: 1 << 20},
		},
	}
}

// counters extracts the deterministic Stats fields.
func counters(s reader.Stats) [6]int64 {
	return [6]int64{s.ReadBytes, s.SentBytes, s.RowsDecoded, s.BatchesProduced, s.ConvertValues, s.ProcessOps}
}

// harness is one service + server pair on a loopback listener.
type harness struct {
	svc  *dpp.Service
	srv  *Server
	addr string
}

// startServer brings up a fresh service and a dppnet server for it on an
// ephemeral loopback port. Shut it down explicitly (before leak checks)
// or rely on the cleanup.
func startServer(t testing.TB, env *testEnv, cfg dpp.Config) *harness {
	t.Helper()
	cfg.Backend = env.store
	cfg.Catalog = env.catalog
	svc, err := dpp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	h := &harness{svc: svc, srv: srv, addr: ln.Addr().String()}
	t.Cleanup(func() {
		h.shutdown(t)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return h
}

func (h *harness) shutdown(t testing.TB) {
	t.Helper()
	if err := h.srv.Close(); err != nil {
		t.Errorf("server Close: %v", err)
	}
	h.svc.Close()
}

// drainLocal pulls a local session dry, returning encoded batches.
func drainLocal(t *testing.T, sess *dpp.Session) [][]byte {
	t.Helper()
	var enc [][]byte
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			return enc
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		enc = append(enc, buf.Bytes())
	}
}

// drainRemote pulls a remote session dry and closes it.
func drainRemote(t *testing.T, rs *RemoteSession) [][]byte {
	t.Helper()
	defer rs.Close()
	var enc [][]byte
	for {
		b, err := rs.Next(context.Background())
		if err == io.EOF {
			return enc
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		enc = append(enc, buf.Bytes())
	}
}

// TestRemoteSessionMatchesLocal is the network boundary's determinism
// contract (run under -race in CI): for a file-aligned spec, a
// misaligned spec (rows carry across files), and a ShareScans spec, a
// session streamed over TCP must deliver the same batches byte for byte
// as a local dpp.Session with the same spec, and the trailing stats
// frame must carry the same deterministic counters and cache traffic the
// local session reports.
//
// The server runs with autoscaling ON (aggressive interval, so resizes
// really happen mid-stream): the scheduling loop lives server-side where
// the credit window is, and it must never perturb the stream bytes or
// the deterministic counters a trainer sees.
func TestRemoteSessionMatchesLocal(t *testing.T) {
	env := newTestEnv(t, 60)
	autoscale := &dpp.AutoScalerConfig{MinReaders: 1, MaxReaders: 4, Interval: time.Millisecond}
	cases := []struct {
		name  string
		spec  reader.Spec
		share bool
	}{
		{"aligned", alignedSpec(), false},
		{"misaligned", misalignedSpec(), false},
		{"sharescans", alignedSpec(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh services on both sides so cache state matches: a
			// first ShareScans scan misses every aligned file on either
			// path.
			localSvc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog})
			if err != nil {
				t.Fatal(err)
			}
			defer localSvc.Close()
			sess, err := localSvc.Open(context.Background(), dpp.Spec{Spec: tc.spec, ShareScans: tc.share})
			if err != nil {
				t.Fatal(err)
			}
			wantEnc := drainLocal(t, sess)
			wantStats := sess.Stats()

			h := startServer(t, env, dpp.Config{AutoScale: autoscale})
			rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: tc.spec, ShareScans: tc.share})
			if err != nil {
				t.Fatal(err)
			}
			gotEnc := drainRemote(t, rs)

			if len(gotEnc) != len(wantEnc) || len(wantEnc) == 0 {
				t.Fatalf("remote session produced %d batches, local %d (nonzero)", len(gotEnc), len(wantEnc))
			}
			for i := range wantEnc {
				if !bytes.Equal(gotEnc[i], wantEnc[i]) {
					t.Fatalf("batch %d differs between remote and local stream", i)
				}
			}
			gotStats, ok := rs.Stats()
			if !ok {
				t.Fatal("remote stats unavailable after clean EOF")
			}
			if got, want := counters(gotStats.Reader), counters(wantStats.Reader); got != want {
				t.Fatalf("remote stats counters %v, local %v", got, want)
			}
			if gotStats.Cache != wantStats.Cache {
				t.Fatalf("remote cache traffic %+v, local %+v", gotStats.Cache, wantStats.Cache)
			}
			if tc.share && gotStats.Cache.Misses == 0 {
				t.Fatal("ShareScans session reported no cache traffic at all")
			}
			// The scheduler block crosses the wire: the pool size is
			// always at least one worker (exactly one for ShareScans,
			// whose sessions are exempt from scaling).
			if w := gotStats.Scheduler.Workers; w < 1 {
				t.Fatalf("remote scheduler stats carried %d workers", w)
			}
			if tc.share && gotStats.Scheduler.Workers != 1 {
				t.Fatalf("ShareScans session reported %d workers, want 1", gotStats.Scheduler.Workers)
			}
		})
	}
}

// TestRemoteStatszMatchesService: the statsz handshake returns the same
// aggregate accounting Service.Stats reports in-process.
func TestRemoteStatszMatchesService(t *testing.T) {
	env := newTestEnv(t, 40)
	h := startServer(t, env, dpp.Config{})
	client := NewClient(h.addr)

	rs, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), ShareScans: true})
	if err != nil {
		t.Fatal(err)
	}
	drainRemote(t, rs)

	got, err := client.ServiceStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := h.svc.Stats()
	if got != want {
		t.Fatalf("remote statsz %+v, local Service.Stats %+v", got, want)
	}
	if got.SessionsOpened != 1 || got.BatchesServed == 0 || got.Cache.Misses == 0 {
		t.Fatalf("statsz carries no traffic: %+v", got)
	}
}

// TestRemoteBackpressureWindow: a consumer that stalls stalls the server
// at the credit window — the service hands out at most `window` batches
// while no credits come back, then the drain completes normally.
func TestRemoteBackpressureWindow(t *testing.T) {
	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})

	// Window = Readers(1) × Buffer(1) = 1.
	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Without a single Next call, the server may pull exactly one batch
	// from the session (the unspent initial credit) and must then park.
	testutil.Eventually(t, func() bool { return h.svc.Stats().BatchesServed >= 1 },
		"server started streaming")
	time.Sleep(150 * time.Millisecond) // would overshoot here if credits were ignored
	if n := h.svc.Stats().BatchesServed; n != 1 {
		t.Fatalf("server pulled %d batches with no credits returned, window is 1", n)
	}

	got := drainRemote(t, rs)
	if len(got) < 2 {
		t.Fatalf("drain returned %d batches, want a multi-batch scan", len(got))
	}
	if n := h.svc.Stats().BatchesServed; n != int64(len(got)) {
		t.Fatalf("service served %d batches, client received %d", n, len(got))
	}
}

// TestRemoteAutoscaleRespondsToCreditStarvation closes the loop the
// ROADMAP asked for: the dppnet credit window measures consumer pace,
// and with autoscaling on, a remote consumer that stops returning
// credits starves the server-side merge at the window — which the
// session's AutoScaler reads as consumer stall and answers by shrinking
// the pool. The stream the slow consumer eventually drains is still
// byte-identical in count and carries the scale events in its trailing
// stats frame.
func TestRemoteAutoscaleRespondsToCreditStarvation(t *testing.T) {
	// A wide scan (hundreds of batches over many files), so the parked
	// consumer provably leaves the merge starved mid-stream rather than
	// letting the whole table fit in the window + output buffer.
	env := newTestEnv(t, 400)
	h := startServer(t, env, dpp.Config{
		AutoScale: &dpp.AutoScalerConfig{MinReaders: 1, MaxReaders: 8, Interval: 2 * time.Millisecond},
	})

	// Window = Readers(4) × Buffer(1) = 4 batches in flight, then the
	// server parks: no credits come back because the consumer never
	// calls Next.
	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Readers: 4, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, func() bool { return h.svc.Stats().Scheduler.ScaleDowns >= 3 },
		"server scaled the starved session down (scheduler %+v)", h.svc.Stats().Scheduler)

	got := drainRemote(t, rs)
	if len(got) < 2 {
		t.Fatalf("drain returned %d batches, want a multi-batch scan", len(got))
	}
	st, ok := rs.Stats()
	if !ok {
		t.Fatal("stats missing after clean EOF")
	}
	if st.Scheduler.ScaleDowns < 3 || st.Scheduler.ConsumerStall == 0 {
		t.Fatalf("trailing stats carry no starvation evidence: %+v", st.Scheduler)
	}
}

// TestRemoteSessionContextCancellation: cancelling the consumer's
// context surfaces promptly from Next, and cancelling the Open context
// tears the server-side session down without an explicit Close.
func TestRemoteSessionContextCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := NewClient(h.addr).Open(ctx, dpp.Spec{Spec: alignedSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		_, err := rs.Next(ctx)
		if err == nil {
			continue // batches already in flight may still surface
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, io.EOF) {
			// The watcher closes the connection on cancel, so a Next
			// racing it may see the connection error instead; both are
			// prompt teardown, but a hang or a clean EOF stream is not.
			var terminal bool
			rs.mu.Lock()
			terminal = rs.termErr != nil
			rs.mu.Unlock()
			if !terminal {
				t.Fatalf("Next after cancel = %v, want context/teardown error", err)
			}
		}
		if errors.Is(err, io.EOF) {
			t.Fatal("cancelled session streamed to clean EOF")
		}
		break
	}
	rs.Close()

	// The server side must release the session slot.
	testutil.Eventually(t, func() bool { return h.svc.Stats().ActiveSessions == 0 },
		"server released the cancelled session's slot")

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestRemoteSessionClose: Close mid-stream is idempotent, later Nexts
// report dpp.ErrClosed (the local session contract), and both sides tear
// down leak-free.
func TestRemoteSessionClose(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	rs, err := NewClient(h.addr).Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := rs.Next(context.Background()); !errors.Is(err, dpp.ErrClosed) {
		t.Fatalf("Next after Close = %v, want dpp.ErrClosed", err)
	}

	testutil.Eventually(t, func() bool { return h.svc.Stats().ActiveSessions == 0 },
		"server released the closed session's slot")

	h.shutdown(t)
	testutil.WaitForGoroutines(t, before)
}

// TestRemoteShareScansWarmCache: two successive remote sessions with one
// spec share the server's ScanCache across connections — the second
// decodes nothing, the batches still arrive byte-identical. This is the
// cross-process version of the PR-3 sharing contract.
func TestRemoteShareScansWarmCache(t *testing.T) {
	env := newTestEnv(t, 60)
	h := startServer(t, env, dpp.Config{})
	client := NewClient(h.addr)

	var first [][]byte
	for pass := 0; pass < 2; pass++ {
		rs, err := client.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), ShareScans: true})
		if err != nil {
			t.Fatal(err)
		}
		enc := drainRemote(t, rs)
		st, ok := rs.Stats()
		if !ok {
			t.Fatalf("pass %d: stats missing", pass)
		}
		if pass == 0 {
			first = enc
			if st.Cache.Hits != 0 || st.Cache.Misses == 0 {
				t.Fatalf("cold pass cache traffic %+v", st.Cache)
			}
			continue
		}
		if len(enc) != len(first) {
			t.Fatalf("warm pass produced %d batches, cold %d", len(enc), len(first))
		}
		for i := range first {
			if !bytes.Equal(enc[i], first[i]) {
				t.Fatalf("warm batch %d differs from cold batch", i)
			}
		}
		if st.Cache.Misses != 0 || st.Cache.Hits == 0 {
			t.Fatalf("warm pass cache traffic %+v, want all hits", st.Cache)
		}
		if st.Reader.RowsDecoded != 0 {
			t.Fatalf("warm pass decoded %d rows, want 0", st.Reader.RowsDecoded)
		}
	}
}
