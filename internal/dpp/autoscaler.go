package dpp

import (
	"context"
	"fmt"
	"time"
)

// ScaleTarget is what an AutoScaler controls: anything that exposes the
// two starvation signals and accepts worker-pool resizes. *Session is the
// production implementation; controller tests use fakes so decisions are
// pinned without running real scans.
type ScaleTarget interface {
	// SchedulerStats snapshots the monotone stall counters and the
	// current pool size.
	SchedulerStats() SchedulerStats
	// Resize requests a new worker count and returns the count actually
	// in effect.
	Resize(n int) int
}

// AutoScalerConfig shapes the per-session scaling controller.
type AutoScalerConfig struct {
	// MinReaders and MaxReaders bound the pool. Defaults: 1 and
	// DefaultMaxReaders.
	MinReaders, MaxReaders int
	// Interval is the controller's decision period. Default
	// DefaultAutoScaleInterval.
	Interval time.Duration
	// Threshold is the minimum dominant stall accumulated over one
	// interval before the controller acts — the hysteresis that keeps an
	// idle or balanced session from flapping. Default: Interval / 8.
	Threshold time.Duration
	// Clock drives decision ticks and defaults to the wall clock; tests
	// inject a manual-advance clock (testutil.Clock) for reproducible
	// decision sequences.
	Clock Clock
}

// DefaultMaxReaders and DefaultAutoScaleInterval are the controller
// defaults: a pool cap comfortably past the container-scale sweet spot,
// and a period long enough to integrate a meaningful stall sample but
// short next to any scan worth scaling.
const (
	DefaultMaxReaders        = 8
	DefaultAutoScaleInterval = 20 * time.Millisecond
)

func (c AutoScalerConfig) withDefaults() AutoScalerConfig {
	if c.MinReaders == 0 {
		c.MinReaders = 1
	}
	if c.MaxReaders == 0 {
		c.MaxReaders = DefaultMaxReaders
	}
	if c.Interval == 0 {
		c.Interval = DefaultAutoScaleInterval
	}
	if c.Threshold == 0 {
		c.Threshold = c.Interval / 8
	}
	if c.Clock == nil {
		c.Clock = systemClock{}
	}
	return c
}

func (c AutoScalerConfig) validate() error {
	if c.MinReaders < 1 {
		return fmt.Errorf("dpp: autoscale MinReaders %d < 1", c.MinReaders)
	}
	if c.MaxReaders < c.MinReaders {
		return fmt.Errorf("dpp: autoscale MaxReaders %d < MinReaders %d", c.MaxReaders, c.MinReaders)
	}
	if c.Interval < 0 || c.Threshold < 0 {
		return fmt.Errorf("dpp: negative autoscale interval/threshold")
	}
	return nil
}

// AutoScaler closes the paper's reader-scaling loop per session
// ("readers for each job are scaled to meet trainers' ingestion
// bandwidth demands"): each interval it compares how much new time the
// session spent starved for fill workers (WorkerStall — the merge waited
// on decodes) against how much it spent starved for the consumer
// (ConsumerStall — the merge waited on a full output buffer, which for a
// remote session is ultimately an exhausted dppnet credit window), and
// steps the pool one worker up or down within [MinReaders, MaxReaders]
// when one signal dominates. Because sessions reassemble their stream
// through an ordered work queue, resizes never change the batch stream —
// only its pace.
//
// An AutoScaler is single-goroutine: Run loops Step on the configured
// Clock; Step may also be called directly for deterministic tests.
type AutoScaler struct {
	target ScaleTarget
	cfg    AutoScalerConfig

	lastWorker, lastConsumer time.Duration
}

// NewAutoScaler validates cfg and builds a controller for target. The
// controller holds no goroutine until Run.
func NewAutoScaler(target ScaleTarget, cfg AutoScalerConfig) (*AutoScaler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &AutoScaler{target: target, cfg: cfg}, nil
}

// Step runs one observe→decide→act round and returns the worker count in
// effect afterwards plus whether it resized. The rule, in priority
// order: clamp a pool outside [Min, Max] back into bounds; scale up one
// worker when new worker stall dominates (≥ Threshold and more than
// double the new consumer stall); scale down one when consumer stall
// dominates symmetrically; otherwise hold.
func (a *AutoScaler) Step() (workers int, resized bool) {
	st := a.target.SchedulerStats()
	dWorker := st.WorkerStall - a.lastWorker
	dConsumer := st.ConsumerStall - a.lastConsumer
	a.lastWorker, a.lastConsumer = st.WorkerStall, st.ConsumerStall

	cur := st.Workers
	switch {
	case cur > a.cfg.MaxReaders:
		return a.target.Resize(a.cfg.MaxReaders), true
	case cur < a.cfg.MinReaders:
		return a.target.Resize(a.cfg.MinReaders), true
	case dWorker >= a.cfg.Threshold && dWorker > 2*dConsumer && cur < a.cfg.MaxReaders:
		return a.target.Resize(cur + 1), true
	case dConsumer >= a.cfg.Threshold && dConsumer > 2*dWorker && cur > a.cfg.MinReaders:
		return a.target.Resize(cur - 1), true
	}
	return cur, false
}

// Run steps the controller every Interval until ctx is cancelled. The
// session owns the goroutine: it starts Run under the session context,
// so teardown stops the controller before the pool is waited out.
func (a *AutoScaler) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-a.cfg.Clock.After(a.cfg.Interval):
			a.Step()
		}
	}
}
