package dpp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/reader"
	"repro/internal/storage"
)

// ErrClosed is returned by Next after the session has been closed.
var ErrClosed = errors.New("dpp: session closed")

// Spec is what a training job submits to the service: the DataLoader
// spec (which features, which dedup groups, which transforms) plus the
// session-level execution shape.
type Spec struct {
	reader.Spec

	// Readers is the session's initial reader-worker count. Workers pull
	// file indices from a shared ordered work queue and an ordered merge
	// reassembles the stream, so the batch stream is byte-identical to a
	// serial reader.Run over the whole scan set at every worker count —
	// and stays so when the service's AutoScaler resizes the pool
	// mid-scan. 0 defaults to 1.
	Readers int
	// Buffer sizes the session's decoded-batch buffer ahead of the
	// consumer (backpressure) together with Readers: the session holds at
	// most Readers×Buffer finished batches. 0 defaults to 2.
	Buffer int
	// Files optionally fixes the scan set explicitly — a partition's
	// files, a sampled subset — bypassing catalog resolution of Table.
	Files []string
	// Tenant is the authenticated tenant the session is accounted to.
	// It is assigned by the serving side (dppnet derives it from the
	// handshake's tenant token after front-door admission — it is never
	// taken from a client's wire spec) and threads through worker
	// arbitration (Config.Arbiter) and access-log/metric labels. Empty
	// means the single-tenant default. Not part of the spec fingerprint:
	// tenancy changes accounting, never bytes.
	Tenant string
	// ShareScans opts the session into the service's cross-session
	// ScanCache: decoded, deduped, preprocessed batches are memoized per
	// (file, spec fingerprint), so concurrent or successive sessions with
	// equal-output specs over the same files decode each file once
	// instead of once per session. The batch stream is byte-identical to
	// an unshared session's; batches served from the cache are shared
	// between sessions and must be treated as read-only (which Batch
	// consumers already must: batches never alias writer state).
	//
	// A ShareScans session runs a single scan loop — the cache itself is
	// its cross-session parallelism — so Readers is effectively 1 and
	// Resize/autoscaling are no-ops on it. reader.Spec's FillAhead knob
	// instead becomes the miss-path prefetch depth: with FillAhead > 0 a
	// producer goroutine runs up to FillAhead files ahead of the emit
	// loop, issuing the ScanCache lookups (and misaligned-fallback fills)
	// speculatively in file order, so a cold scan overlaps the next
	// file's fill/convert with the current file's egress. Lookup order,
	// single-flight dedup, and hit/miss accounting are identical to the
	// inline (FillAhead == 0) path.
	ShareScans bool
	// Follow opts the session into tailing a live table: instead of EOF
	// at end-of-catalog, the session parks, observes newly landed files
	// via the catalog's generation counter, and emits them in landed
	// (publish-sequence) order. The stream ends only after EndFollow: the
	// remaining known files drain, the tail rows flush, and Next returns
	// io.EOF — at which point the stream is byte-identical to a cold
	// session opened on the frozen file prefix the tail observed.
	//
	// Follow requires the service catalog to implement
	// storage.TailingCatalog and is incompatible with an explicit Files
	// list (there is no catalog position to tail) and with ShareScans
	// (the shared scan loop has no open-ended queue).
	Follow bool
	// OnExtend, when non-nil, is called from the session's tailer
	// goroutine with each slice of newly observed files, after they join
	// the scan plan. Serving-side hook (dppnet announces extensions to
	// remote clients through it); never part of the wire spec. The
	// callback must not block for long — the tail pauses while it runs —
	// and must not call back into the session.
	OnExtend func(files []string)
}

// DefaultReaders and DefaultBuffer are the execution-shape defaults
// applied when a Spec leaves Readers/Buffer zero. dppnet sizes a remote
// session's receive window from the same values, so the network
// boundary enforces the same backpressure bound a local session's
// output buffer does.
const (
	DefaultReaders = 1
	DefaultBuffer  = 2
)

// maxBufferedBatches caps the session's decoded-batch output buffer
// (Readers×Buffer), mirroring the dppnet credit-window cap: a deeper
// buffer buys no overlap and only defers backpressure.
const maxBufferedBatches = 1 << 10

func (s Spec) withDefaults() Spec {
	if s.Readers == 0 {
		s.Readers = DefaultReaders
	}
	if s.Buffer == 0 {
		s.Buffer = DefaultBuffer
	}
	return s
}

func (s Spec) validate() error {
	if s.Readers < 0 {
		return fmt.Errorf("dpp: negative reader count %d", s.Readers)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("dpp: negative buffer %d", s.Buffer)
	}
	if s.Follow && s.ShareScans {
		return fmt.Errorf("dpp: Follow and ShareScans are incompatible (the shared scan loop has no open-ended queue)")
	}
	if s.Follow && s.Files != nil {
		return fmt.Errorf("dpp: Follow tails the catalog; an explicit Files list has no tail")
	}
	return s.Spec.Validate()
}

// Stream is the pull contract a training loop consumes: batches in
// deterministic order until io.EOF, a context or session error, or
// Close. A local Session satisfies it, and so does a dppnet remote
// session — training code written against Stream runs unchanged whether
// the preprocessing service is in-process or across a TCP boundary.
type Stream interface {
	Next(ctx context.Context) (*reader.Batch, error)
	Close() error
}

var _ Stream = (*Session)(nil)

// Session is one job's pull-based batch stream. Next and Close may be
// called from different goroutines, but Next itself is single-consumer:
// one goroutine (the training loop) pulls batches in order.
//
// Internally the scan is a shared ordered work queue (reader.ScanQueue):
// fill workers claim file indices and decode them in parallel, and one
// assembler merges the results in file order, cutting and converting
// batches exactly as a serial scan would. The worker pool is resizable
// mid-scan (Resize, or the service's AutoScaler); the stream is
// byte-identical to the serial reference regardless of the pool's size
// or resize history.
type Session struct {
	svc    *Service
	id     int64
	cancel context.CancelFunc
	ctx    context.Context
	clock  Clock
	// spec is the defaulted Spec the session was opened with; set once in
	// newSession, read-only afterwards (late worker spawns derive their
	// readers and the queue window from it).
	spec Spec
	// arbitrated records that the session registered with the service's
	// WorkerArbiter and must unregister on release.
	arbitrated bool

	// out is the session's single bounded output buffer; the assembler
	// (or the shared scan loop) feeds it, Next drains it. Closed once the
	// scan ends, with the outcome recorded first.
	out   chan *reader.Batch
	queue *reader.ScanQueue // nil for ShareScans sessions (single scan loop)

	// Follow state: the tailer goroutine watches the catalog and extends
	// the queue; EndFollow cancels it (followCancel), waits for it to
	// exit (followDone), and then finishes the queue — so no Extend can
	// race the Finish. All nil/zero for non-Follow sessions.
	followCancel context.CancelFunc
	followDone   chan struct{}
	endFollow    sync.Once

	wg sync.WaitGroup

	// pmu guards the worker-pool shape. wg.Add for spawned workers
	// happens under pmu, and teardown sets stopped under pmu before
	// wg.Wait, so a racing Resize can never Add past a Wait.
	pmu        sync.Mutex
	target     int // desired worker count (= SchedulerStats.Workers)
	active     int // workers currently running
	stopped    bool
	scaleUps   int64
	scaleDowns int64

	mu    sync.Mutex
	stats reader.Stats
	cache SessionCacheStats
	// consumerStall is the completed blocked time handing batches to the
	// consumer; consumerStallSince is nonzero while the merge is blocked
	// right now, so the live interval is visible to the AutoScaler (a
	// consumer parked forever must read as growing stall, not zero).
	consumerStall      time.Duration
	consumerStallSince time.Time
	firstErr           error
	closed             bool
	done               bool
}

// tailState is the catalog position a Follow session starts tailing
// from: the generation at snapshot time and the publish sequence of the
// last file in the snapshot. Open captures it atomically enough (gen
// before files) that a landing racing the snapshot is seen either in the
// initial plan or by the first WaitChange, never missed.
type tailState struct {
	catalog storage.TailingCatalog
	gen     uint64
	cursor  uint64
}

// newSession plans the scan and starts the fill workers and the
// assembler. Workers begin claiming and decoding files immediately;
// nothing blocks on Open. tail is non-nil exactly for Follow sessions.
func newSession(ctx context.Context, svc *Service, id int64, spec Spec, files []string, tail *tailState) (*Session, error) {
	if spec.ShareScans && svc.cache == nil {
		return nil, fmt.Errorf("dpp: spec requests ShareScans but the service's scan cache is disabled")
	}
	sctx, cancel := context.WithCancel(ctx)
	buffered := spec.Readers * spec.Buffer
	if buffered > maxBufferedBatches {
		buffered = maxBufferedBatches
	}
	s := &Session{
		svc:    svc,
		id:     id,
		cancel: cancel,
		ctx:    sctx,
		clock:  svc.clock,
		spec:   spec,
		out:    make(chan *reader.Batch, buffered),
		target: 1,
	}

	if spec.ShareScans {
		r, err := reader.NewReader(svc.backend, spec.Spec)
		if err != nil {
			cancel()
			return nil, err
		}
		s.wg.Add(1)
		go s.runSharedScan(r, spec.Spec.Fingerprint(), files)
		return s, nil
	}

	asm, err := reader.NewReader(svc.backend, spec.Spec)
	if err != nil {
		cancel()
		return nil, err
	}
	if tail != nil {
		s.queue = reader.NewOpenScanQueue(files, queueWindow(spec, spec.Readers), s.clock.Now)
	} else {
		s.queue = reader.NewScanQueue(files, queueWindow(spec, spec.Readers), s.clock.Now)
	}

	// The queue blocks on condition variables, not channels; this watcher
	// translates context teardown into an Abort that wakes every parked
	// worker. The assembler aborts the queue on exit too, so the watcher
	// is only load-bearing for mid-scan cancellation.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.ctx.Done()
		s.queue.Abort()
	}()

	if tail != nil {
		fctx, fcancel := context.WithCancel(sctx)
		s.followCancel = fcancel
		s.followDone = make(chan struct{})
		s.wg.Add(1)
		go s.runTailer(fctx, tail)
	}

	s.pmu.Lock()
	s.target = spec.Readers
	for i := 0; i < spec.Readers; i++ {
		if err := s.spawnWorkerLocked(spec.Spec); err != nil {
			s.pmu.Unlock()
			cancel()
			s.queue.Abort()
			return nil, err
		}
	}
	s.pmu.Unlock()

	s.wg.Add(1)
	go s.runAssembler(asm)

	if svc.autoscale != nil {
		// With an arbiter, the controller's Resize calls become bids:
		// the session registers under its tenant, and the arbiter owns
		// actuation (it may resize this session immediately to fit the
		// budget). Observation still reads this session's own stats.
		var target ScaleTarget = s
		if svc.arbiter != nil {
			svc.arbiter.Register(spec.Tenant, s)
			s.arbitrated = true
			target = &arbitratedTarget{arb: svc.arbiter, tenant: spec.Tenant, sess: s}
		}
		as, err := NewAutoScaler(target, *svc.autoscale)
		if err != nil {
			cancel()
			s.queue.Abort()
			if s.arbitrated {
				svc.arbiter.Unregister(s)
			}
			return nil, err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			as.Run(s.ctx)
		}()
	}
	return s, nil
}

// queueWindow bounds how many files may be claimed (decoding or decoded,
// not yet merged) ahead of the assembler for a pool of n workers: one
// in-flight file per worker, one completed slot to hand over through, and
// the spec's FillAhead prefetch depth — which the queue absorbs now that
// fill workers no longer run their own per-worker pipeline.
func queueWindow(spec Spec, n int) int {
	return n + 1 + spec.FillAhead
}

// spawnWorkerLocked starts one fill worker; the caller holds pmu (which
// makes the wg.Add safe against teardown's Wait) and has already counted
// the worker in target.
func (s *Session) spawnWorkerLocked(rspec reader.Spec) error {
	r, err := reader.NewReader(s.svc.backend, rspec)
	if err != nil {
		return err
	}
	s.active++
	s.wg.Add(1)
	go s.runFillWorker(r)
	return nil
}

// runFillWorker drives one pool worker: claim file indices, fill them,
// deposit results. Between files it checks the scale-down checkpoint —
// a worker told to stop has already been uncounted by shouldStop, so
// only natural exits (queue exhausted, abort, fill error) decrement
// active here.
func (s *Session) runFillWorker(r *reader.Reader) {
	defer s.wg.Done()
	stopped := false
	r.FillQueue(s.ctx, s.queue, func() bool {
		if s.workerShouldStop() {
			stopped = true
			return true
		}
		return false
	})
	if !stopped {
		s.pmu.Lock()
		s.active--
		s.pmu.Unlock()
	}
	s.mu.Lock()
	s.stats.Add(r.Stats())
	s.mu.Unlock()
}

// workerShouldStop atomically decides and accounts one worker's
// scale-down exit, so a pool shrinking by k loses exactly k workers.
func (s *Session) workerShouldStop() bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.active > s.target {
		s.active--
		return true
	}
	return false
}

// Resize sets the session's desired worker count (clamped to at least 1),
// returning the new target. Scale-up spawns workers immediately;
// scale-down takes effect at each surplus worker's next between-files
// checkpoint — claims are never abandoned mid-file, which is one half of
// why the stream is identical across resize histories (the other half is
// the ordered merge). On a ShareScans session (single scan loop) Resize
// is a no-op returning 1. Safe for concurrent use; the service's
// AutoScaler is the usual caller.
func (s *Session) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	if s.queue == nil {
		return 1
	}
	s.pmu.Lock()
	if s.stopped || n == s.target {
		n = s.target
		s.pmu.Unlock()
		return n
	}
	up := n > s.target
	if up {
		s.scaleUps++
	} else {
		s.scaleDowns++
	}
	grow := n - s.active
	s.target = n
	for i := 0; i < grow; i++ {
		// Spawn cannot fail here: the spec was validated at Open and
		// NewReader has no other failure mode; guard anyway so a future
		// failure mode degrades to a smaller pool, never a panic.
		if err := s.spawnWorkerLocked(s.spec.Spec); err != nil {
			break
		}
	}
	// Resize the claim window under pmu too: concurrent Resize calls
	// (the AutoScaler plus a direct caller) must leave the window sized
	// for whichever target won, never the loser's.
	s.queue.SetWindow(queueWindow(s.spec, n))
	s.pmu.Unlock()
	s.svc.noteScale(up)
	return n
}

// runTailer is a Follow session's catalog watcher: it parks on the
// catalog generation, pulls the files published past its cursor, and
// extends the open scan queue with them in landed order. Exits when its
// context is cancelled — by EndFollow (clean end of the tail) or by
// session teardown.
func (s *Session) runTailer(ctx context.Context, tail *tailState) {
	defer s.wg.Done()
	defer close(s.followDone)
	gen, cursor := tail.gen, tail.cursor
	for {
		g, err := tail.catalog.WaitChange(ctx, gen)
		if err != nil {
			return
		}
		gen = g
		pubs, err := tail.catalog.PublishedFiles(s.spec.Table, cursor)
		if err != nil || len(pubs) == 0 {
			// No news for this table (the mutation was another table's, a
			// retention drop, or the table itself vanished): keep watching.
			continue
		}
		files := make([]string, len(pubs))
		for i, p := range pubs {
			files[i] = p.Path
		}
		cursor = pubs[len(pubs)-1].Seq
		s.queue.Extend(files)
		s.svc.noteExtend(len(files))
		if s.spec.OnExtend != nil {
			s.spec.OnExtend(files)
		}
	}
}

// EndFollow ends a Follow session's tail: the catalog watcher stops, the
// already-observed files drain, the final short batch (if any) flushes,
// and Next returns io.EOF — the stream as a whole is then byte-identical
// to a cold session over the frozen prefix the tail observed. Blocks
// only until the watcher exits. Idempotent; a no-op on non-Follow
// sessions.
func (s *Session) EndFollow() {
	if s.followCancel == nil {
		return
	}
	s.endFollow.Do(func() {
		s.followCancel()
		<-s.followDone
		s.queue.Finish()
	})
}

// Following reports whether this session was opened with Follow.
func (s *Session) Following() bool { return s.followCancel != nil }

// FollowLag reports how many observed files the session has not yet
// merged into its stream — the catalog-to-consumer lag the landing
// metrics export. Zero for non-Follow sessions.
func (s *Session) FollowLag() int {
	if s.followCancel == nil || s.queue == nil {
		return 0
	}
	return s.queue.Len() - s.queue.Pos()
}

// emitOut hands one batch to the consumer through the bounded output
// buffer, charging time spent blocked to the consumer-starvation counter
// — the "scale down" half of the autoscaling signal.
func (s *Session) emitOut(b *reader.Batch) error {
	select {
	case s.out <- b:
		return nil
	default:
	}
	start := s.clock.Now()
	s.mu.Lock()
	s.consumerStallSince = start
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.consumerStall += s.clock.Now().Sub(start)
		s.consumerStallSince = time.Time{}
		s.mu.Unlock()
	}()
	select {
	case s.out <- b:
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// runAssembler merges deposited files in order into the output stream.
// The channel is closed only after the outcome and stats are recorded,
// so a consumer that observes the close also observes the outcome; the
// trailing Abort wakes workers parked on a full claim window.
func (s *Session) runAssembler(r *reader.Reader) {
	defer s.wg.Done()
	err := r.RunQueue(s.ctx, s.queue, s.emitOut)
	s.mu.Lock()
	if err != nil && s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.stats.Add(r.Stats())
	s.mu.Unlock()
	s.queue.Abort()
	close(s.out)
}

// runSharedScan drives a ShareScans session's single scan loop through
// the service's cross-session ScanCache. The emitted batch stream is
// byte-identical to an unshared session's (the cache unit is file-aligned
// and the fingerprint covers every output-relevant spec field); what
// changes is the accounting — a fully cache-hit scan decodes nothing, so
// its RowsDecoded/ReadBytes/ConvertValues/ProcessOps stay zero while
// BatchesProduced and SentBytes still count every batch handed to the
// consumer (the session's egress is real either way).
func (s *Session) runSharedScan(r *reader.Reader, fingerprint string, files []string) {
	defer s.wg.Done()
	var served reader.Stats // egress accounting for cache-hit batches
	var cache SessionCacheStats
	var err error
	if s.spec.FillAhead > 0 {
		// Miss-path prefetch: a producer issues the cache lookups up to
		// FillAhead files ahead of the emit loop, on its own reader so the
		// fetch-side accounting (fill, convert, process for misses) and
		// the emit-side accounting (carry-cut ProduceBatch) stay separable
		// and sum to the inline path's totals.
		var producer *reader.Reader
		producer, err = reader.NewReader(s.svc.backend, s.spec.Spec)
		if err == nil {
			err = s.scanSharedPrefetch(r, producer, fingerprint, files, &served, &cache, s.emitOut)
			s.mu.Lock()
			s.stats.Add(producer.Stats())
			s.mu.Unlock()
		}
	} else {
		err = s.scanShared(r, fingerprint, files, &served, &cache, s.emitOut)
	}
	s.mu.Lock()
	if err != nil && s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.stats.Add(r.Stats())
	s.stats.Add(served)
	s.cache.Hits += cache.Hits
	s.cache.Misses += cache.Misses
	s.mu.Unlock()
	close(s.out)
}

// scanShared is the cached twin of reader.Run's consume loop. Files whose
// scan starts on a batch boundary (no carried rows) go through the
// ScanCache as whole file-aligned units; files entered mid-batch cannot
// share batches — their boundaries depend on the carry — so they fill and
// convert locally, exactly as the uncached path would.
func (s *Session) scanShared(r *reader.Reader, fingerprint string, files []string, served *reader.Stats, cache *SessionCacheStats, emit func(*reader.Batch) error) error {
	batchSize := r.BatchSize()
	var carry []datagen.Sample
	var keys []string
	var dense int
	checkSchema := func(file string, fileKeys []string) error {
		if keys == nil {
			return nil
		}
		if len(fileKeys) != len(keys) {
			return fmt.Errorf("dpp: file %q schema mismatch (%d vs %d features)", file, len(fileKeys), len(keys))
		}
		return nil
	}
	for _, f := range files {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		if len(carry) == 0 {
			scan, hit, err := s.svc.cache.Get(s.ctx, f, fingerprint, func(ctx context.Context) (*reader.FileScan, error) {
				return r.ScanFile(ctx, f)
			})
			if err != nil {
				return err
			}
			if hit {
				cache.Hits++
			} else {
				cache.Misses++
				s.svc.demoteRaw(f, fingerprint)
			}
			if err := checkSchema(f, scan.Keys); err != nil {
				return err
			}
			if keys == nil {
				keys, dense = scan.Keys, scan.Dense
			}
			for _, b := range scan.Batches {
				if hit {
					served.BatchesProduced++
					served.SentBytes += int64(b.WireBytes())
				}
				if err := emit(b); err != nil {
					return err
				}
			}
			// Copy the tail: the cached scan is shared and immutable, and
			// the carry slice is appended to below.
			carry = append([]datagen.Sample(nil), scan.Tail...)
			continue
		}
		samples, fileKeys, fileDense, err := r.FillFile(s.ctx, f)
		if err != nil {
			return err
		}
		if err := checkSchema(f, fileKeys); err != nil {
			return err
		}
		if keys == nil {
			keys, dense = fileKeys, fileDense
		}
		carry = append(carry, samples...)
		for len(carry) >= batchSize {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			b, err := r.ProduceBatch(carry[:batchSize], keys, dense)
			if err != nil {
				return err
			}
			if err := emit(b); err != nil {
				return err
			}
			carry = carry[batchSize:]
		}
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if len(carry) > 0 {
		b, err := r.ProduceBatch(carry, keys, dense)
		if err != nil {
			return err
		}
		return emit(b)
	}
	return nil
}

// sharedItem is one prefetched file handed from the shared-scan producer
// to the emit loop: a cache-path scan (aligned entry) or a fallback fill
// (carry-entered file), or the fetch error that ends the stream.
type sharedItem struct {
	file string
	// scan is set for files entered on a batch boundary (the cache path);
	// samples/keys/dense carry a misaligned fallback fill.
	scan    *reader.FileScan
	hit     bool
	samples []datagen.Sample
	keys    []string
	dense   int
	err     error
}

// scanSharedPrefetch is scanShared with the fetch side hoisted onto a
// producer goroutine running up to FillAhead files ahead of the emit
// loop. The producer cannot see the consumer's carry slice, but it does
// not need the rows — only whether each file is entered on a batch
// boundary — so it tracks the carry length arithmetically
// ((len + rows) mod batch size), which by construction matches the
// consumer's actual carry at every file. Lookups therefore hit the
// ScanCache in exactly the inline path's order and alignment split, one
// producer issuing them sequentially (single-flight dedup unchanged),
// and the hit/miss counts are identical; what the prefetch buys is the
// next miss's fill/convert overlapping the current file's emit.
func (s *Session) scanSharedPrefetch(r, producer *reader.Reader, fingerprint string, files []string, served *reader.Stats, cache *SessionCacheStats, emit func(*reader.Batch) error) error {
	batchSize := r.BatchSize()
	pctx, pcancel := context.WithCancel(s.ctx)
	items := make(chan sharedItem, s.spec.FillAhead)
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		defer close(items)
		carryLen := 0
		for _, f := range files {
			item := sharedItem{file: f}
			if carryLen == 0 {
				scan, hit, err := s.svc.cache.Get(pctx, f, fingerprint, func(ctx context.Context) (*reader.FileScan, error) {
					return producer.ScanFile(ctx, f)
				})
				if err != nil {
					item.err = err
				} else {
					// Counting here (not at consume) matches the inline
					// path: a lookup performed is a lookup counted, even if
					// the emit loop exits before draining it. The producer
					// is joined before scanSharedPrefetch returns, so the
					// counters are quiescent when runSharedScan reads them.
					if hit {
						cache.Hits++
					} else {
						cache.Misses++
						s.svc.demoteRaw(f, fingerprint)
					}
					item.scan, item.hit = scan, hit
					carryLen = len(scan.Tail)
				}
			} else {
				samples, keys, dense, err := producer.FillFile(pctx, f)
				if err != nil {
					item.err = err
				} else {
					item.samples, item.keys, item.dense = samples, keys, dense
					carryLen = (carryLen + len(samples)) % batchSize
				}
			}
			select {
			case items <- item:
			case <-pctx.Done():
				return
			}
			if item.err != nil {
				return
			}
		}
	}()
	// The producer parks on the items channel or on pctx; cancelling and
	// waiting here bounds it to this call whatever path exits the loop.
	defer pwg.Wait()
	defer pcancel()

	var carry []datagen.Sample
	var keys []string
	var dense int
	checkSchema := func(file string, fileKeys []string) error {
		if keys == nil || len(fileKeys) == len(keys) {
			return nil
		}
		return fmt.Errorf("dpp: file %q schema mismatch (%d vs %d features)", file, len(fileKeys), len(keys))
	}
	for item := range items {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		if item.err != nil {
			return item.err
		}
		if item.scan != nil {
			if err := checkSchema(item.file, item.scan.Keys); err != nil {
				return err
			}
			if keys == nil {
				keys, dense = item.scan.Keys, item.scan.Dense
			}
			for _, b := range item.scan.Batches {
				if item.hit {
					served.BatchesProduced++
					served.SentBytes += int64(b.WireBytes())
				}
				if err := emit(b); err != nil {
					return err
				}
			}
			carry = append([]datagen.Sample(nil), item.scan.Tail...)
			continue
		}
		if err := checkSchema(item.file, item.keys); err != nil {
			return err
		}
		if keys == nil {
			keys, dense = item.keys, item.dense
		}
		carry = append(carry, item.samples...)
		for len(carry) >= batchSize {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			b, err := r.ProduceBatch(carry[:batchSize], keys, dense)
			if err != nil {
				return err
			}
			if err := emit(b); err != nil {
				return err
			}
			carry = carry[batchSize:]
		}
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if len(carry) > 0 {
		b, err := r.ProduceBatch(carry, keys, dense)
		if err != nil {
			return err
		}
		return emit(b)
	}
	return nil
}

// Next returns the session's next preprocessed batch. It blocks until a
// batch is buffered, the scan is exhausted (io.EOF), a reader fails (the
// first error), ctx is cancelled (ctx.Err()), or the session is closed
// (ErrClosed). Batches arrive in deterministic order: the single serial
// scan order over the session's file list, at every worker count.
func (s *Session) Next(ctx context.Context) (*reader.Batch, error) {
	select {
	case b, ok := <-s.out:
		if !ok {
			return nil, s.finish()
		}
		s.svc.noteBatch()
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.ctx.Done():
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, s.ctx.Err()
	}
}

// finish is reached once the output stream has closed: stop the pool,
// wait for every goroutine, settle the accounting, and report the scan
// outcome. A scan cut short by Close or by job-context cancellation
// reports that, never a clean io.EOF; a reader failure surfaces after
// the serial prefix of batches that preceded it.
func (s *Session) finish() error {
	// Snapshot the job-context state before teardown cancels the session
	// context itself: a clean EOF must not read back its own teardown as
	// a cancellation.
	ctxErr := s.ctx.Err()
	s.teardown()
	s.mu.Lock()
	err := s.firstErr
	closed := s.closed
	s.mu.Unlock()
	s.release()
	if err == nil {
		if closed {
			err = ErrClosed
		} else if ctxErr != nil {
			err = ctxErr
		}
	}
	if err != nil {
		return err
	}
	return io.EOF
}

// teardown stops the pool (no further spawns), cancels the session
// context (waking the watcher, the autoscaler, and anything blocked on
// the queue or the output buffer), and waits for every session goroutine
// to exit. Idempotent.
func (s *Session) teardown() {
	s.pmu.Lock()
	s.stopped = true
	s.pmu.Unlock()
	s.cancel()
	if s.queue != nil {
		s.queue.Abort()
	}
	s.wg.Wait()
}

// Close cancels the session's workers, waits for them to exit, and
// releases the session's service slot. Idempotent; always returns nil.
// Batches already returned by Next remain valid — they never alias
// worker state.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.teardown()
	s.release()
	return nil
}

// release gives the session's service slot back exactly once; EOF,
// reader failure, and Close all funnel through it. The session's final
// scheduling telemetry is folded into the service-wide stall counters
// here, so the autoscaling signal stays observable after the sessions
// that produced it are gone.
func (s *Session) release() {
	s.mu.Lock()
	done := s.done
	s.done = true
	errored := s.firstErr != nil
	s.mu.Unlock()
	if !done {
		if s.arbitrated {
			// Leave arbitration before retiring so the departed pool's
			// workers are redistributed to still-running sessions.
			s.svc.arbiter.Unregister(s)
		}
		s.svc.retire(s.id, s.SchedulerStats(), errored)
	}
}

// SessionStats is the session's aggregated accounting: the per-reader
// pipeline counters, the session's view of the cross-session scan cache,
// and the scheduler's scaling/starvation telemetry.
type SessionStats struct {
	// Reader aggregates the session's reader accounting. For a
	// ShareScans session these counters reflect work this session
	// actually performed plus batches it actually served: cache-hit
	// files contribute BatchesProduced and SentBytes (the session still
	// ships those batches to its trainer) but no fill/convert/process
	// work — the ingest-and-compute saving cross-session sharing exists
	// to create.
	Reader reader.Stats
	// Cache is this session's scan-cache traffic; zero for sessions
	// without ShareScans.
	Cache SessionCacheStats
	// Scheduler is the session's worker-pool telemetry. Unlike Reader's
	// deterministic counters it is timing- and scheduling-dependent:
	// determinism tests compare streams and Reader counters and treat
	// Scheduler as informational.
	Scheduler SchedulerStats
}

// SessionCacheStats counts one session's ScanCache lookups.
type SessionCacheStats struct {
	// Hits counts file scans served from the cache (including scans this
	// session waited on another session to compute); Misses counts file
	// scans this session computed and published.
	Hits, Misses int64
}

// SchedulerStats is one session's scheduling telemetry: the pool shape,
// the resize history, and the two starvation signals the AutoScaler
// trades off.
type SchedulerStats struct {
	// Workers is the current desired worker-pool size (1 for ShareScans
	// sessions, which run a single scan loop).
	Workers int
	// ScaleUps and ScaleDowns count Resize calls that grew or shrank the
	// pool.
	ScaleUps, ScaleDowns int64
	// WorkerStall is the total time the ordered merge spent blocked
	// waiting for a fill worker's deposit: the session was starved for
	// reader parallelism.
	WorkerStall time.Duration
	// ConsumerStall is the total time the merge spent blocked handing a
	// finished batch to the consumer (a full output buffer — for remote
	// sessions, ultimately an exhausted dppnet credit window): the
	// consumer was the bottleneck.
	ConsumerStall time.Duration
}

// SchedulerStats snapshots the session's scheduling telemetry; it is the
// observe half of the AutoScaler's ScaleTarget contract.
func (s *Session) SchedulerStats() SchedulerStats {
	var st SchedulerStats
	s.pmu.Lock()
	st.Workers = s.target
	st.ScaleUps = s.scaleUps
	st.ScaleDowns = s.scaleDowns
	s.pmu.Unlock()
	if s.queue != nil {
		st.WorkerStall = s.queue.Stall()
	}
	s.mu.Lock()
	st.ConsumerStall = s.consumerStall
	if !s.consumerStallSince.IsZero() {
		st.ConsumerStall += s.clock.Now().Sub(s.consumerStallSince)
	}
	s.mu.Unlock()
	return st
}

// Stats returns the session's aggregated accounting. The deterministic
// reader counters (bytes, rows, batches, work) are exact and reproducible
// once Next has returned io.EOF or Close has completed; mid-scan it is a
// monotone snapshot of finished workers. The Scheduler block is timing-
// dependent telemetry, not part of the deterministic contract.
func (s *Session) Stats() SessionStats {
	sched := s.SchedulerStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{Reader: s.stats, Cache: s.cache, Scheduler: sched}
}
