package dpp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/reader"
)

// ErrClosed is returned by Next after the session has been closed.
var ErrClosed = errors.New("dpp: session closed")

// Spec is what a training job submits to the service: the DataLoader
// spec (which features, which dedup groups, which transforms) plus the
// session-level execution shape.
type Spec struct {
	reader.Spec

	// Readers is the per-session reader-worker count; files are split
	// across workers round-robin exactly as reader.Tier splits them.
	// 0 defaults to 1, which makes the session's batch stream
	// byte-identical to a serial reader.Run over the whole scan set.
	Readers int
	// Buffer bounds how many decoded batches each worker may hold ahead
	// of the consumer (backpressure). 0 defaults to 2.
	Buffer int
	// Files optionally fixes the scan set explicitly — a partition's
	// files, a sampled subset — bypassing catalog resolution of Table.
	Files []string
}

func (s Spec) withDefaults() Spec {
	if s.Readers == 0 {
		s.Readers = 1
	}
	if s.Buffer == 0 {
		s.Buffer = 2
	}
	return s
}

func (s Spec) validate() error {
	if s.Readers < 0 {
		return fmt.Errorf("dpp: negative reader count %d", s.Readers)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("dpp: negative buffer %d", s.Buffer)
	}
	return s.Spec.Validate()
}

// Session is one job's pull-based batch stream. Next and Close may be
// called from different goroutines, but Next itself is single-consumer:
// one goroutine (the training loop) pulls batches in order.
type Session struct {
	svc    *Service
	id     int64
	cancel context.CancelFunc
	ctx    context.Context

	chans []chan *reader.Batch
	cur   int // next channel to drain (consumer-owned)

	wg sync.WaitGroup

	mu       sync.Mutex
	stats    reader.Stats
	firstErr error
	closed   bool
	done     bool
}

// newSession plans the scan and starts the reader workers. Workers begin
// filling their bounded buffers immediately; nothing blocks on Open.
func newSession(ctx context.Context, svc *Service, id int64, spec Spec, files []string) (*Session, error) {
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{svc: svc, id: id, cancel: cancel, ctx: sctx}

	assignments := reader.PlanRoundRobin(files, spec.Readers)
	for _, assigned := range assignments {
		if len(assigned) == 0 {
			continue
		}
		r, err := reader.NewReader(svc.backend, spec.Spec)
		if err != nil {
			cancel()
			return nil, err
		}
		ch := make(chan *reader.Batch, spec.Buffer)
		s.chans = append(s.chans, ch)
		s.wg.Add(1)
		go s.runWorker(r, assigned, ch)
	}
	return s, nil
}

// runWorker drives one reader over its file assignment, publishing
// batches through the worker's bounded channel. The channel is closed
// only after the worker's error and stats are recorded, so a consumer
// that observes the close also observes the outcome.
func (s *Session) runWorker(r *reader.Reader, files []string, ch chan *reader.Batch) {
	defer s.wg.Done()
	err := r.Run(s.ctx, files, func(b *reader.Batch) error {
		select {
		case ch <- b:
			return nil
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	})
	s.mu.Lock()
	if err != nil && s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.stats.Add(r.Stats())
	s.mu.Unlock()
	close(ch)
}

// Next returns the session's next preprocessed batch. It blocks until a
// batch is buffered, the scan is exhausted (io.EOF), a reader fails (the
// first error), ctx is cancelled (ctx.Err()), or the session is closed
// (ErrClosed). Batches arrive in deterministic order: each worker's
// batches in its serial scan order, workers in planning order.
func (s *Session) Next(ctx context.Context) (*reader.Batch, error) {
	for {
		if s.cur >= len(s.chans) {
			return nil, s.finish()
		}
		select {
		case b, ok := <-s.chans[s.cur]:
			if !ok {
				// Worker finished. Fail fast on its error rather than
				// streaming later workers' batches first.
				s.mu.Lock()
				err := s.firstErr
				s.mu.Unlock()
				if err != nil {
					// Tear down like finish(): an errored session must
					// not keep occupying a service slot.
					s.cancel()
					s.wg.Wait()
					s.release()
					return nil, err
				}
				s.cur++
				continue
			}
			s.svc.noteBatch()
			return b, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.ctx.Done():
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil, ErrClosed
			}
			return nil, s.ctx.Err()
		}
	}
}

// finish is reached once every worker channel has drained: wait for the
// workers, settle the accounting, and report the scan outcome. A scan
// cut short by Close or by job-context cancellation reports that, never
// a clean io.EOF.
func (s *Session) finish() error {
	s.wg.Wait()
	s.mu.Lock()
	err := s.firstErr
	closed := s.closed
	s.mu.Unlock()
	s.release()
	if err == nil {
		if closed {
			err = ErrClosed
		} else if ctxErr := s.ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
	}
	if err != nil {
		return err
	}
	return io.EOF
}

// Close cancels the session's workers, waits for them to exit, and
// releases the session's service slot. Idempotent; always returns nil.
// Batches already returned by Next remain valid — they never alias
// worker state.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	// Unblock workers parked on their bounded channels, then wait so a
	// closed session leaves no goroutine behind.
	s.wg.Wait()
	s.release()
	return nil
}

// release gives the session's service slot back exactly once; EOF,
// reader failure, and Close all funnel through it.
func (s *Session) release() {
	s.mu.Lock()
	done := s.done
	s.done = true
	s.mu.Unlock()
	if !done {
		s.svc.forget(s.id)
	}
}

// Stats returns the session's aggregated reader accounting. The
// deterministic counters (bytes, rows, batches, work) are exact and
// reproducible once Next has returned io.EOF or Close has completed;
// mid-scan it is a monotone snapshot of finished workers.
func (s *Session) Stats() reader.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
