package dpp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/datagen"
	"repro/internal/reader"
)

// ErrClosed is returned by Next after the session has been closed.
var ErrClosed = errors.New("dpp: session closed")

// Spec is what a training job submits to the service: the DataLoader
// spec (which features, which dedup groups, which transforms) plus the
// session-level execution shape.
type Spec struct {
	reader.Spec

	// Readers is the per-session reader-worker count; files are split
	// across workers round-robin (reader.PlanRoundRobin).
	// 0 defaults to 1, which makes the session's batch stream
	// byte-identical to a serial reader.Run over the whole scan set.
	Readers int
	// Buffer bounds how many decoded batches each worker may hold ahead
	// of the consumer (backpressure). 0 defaults to 2.
	Buffer int
	// Files optionally fixes the scan set explicitly — a partition's
	// files, a sampled subset — bypassing catalog resolution of Table.
	Files []string
	// ShareScans opts the session into the service's cross-session
	// ScanCache: decoded, deduped, preprocessed batches are memoized per
	// (file, spec fingerprint), so concurrent or successive sessions with
	// equal-output specs over the same files decode each file once
	// instead of once per session. The batch stream is byte-identical to
	// an unshared session's; batches served from the cache are shared
	// between sessions and must be treated as read-only (which Batch
	// consumers already must: batches never alias writer state).
	//
	// Caveat: the shared scan loop runs fill inline, so reader.Spec's
	// FillAhead prefetch knob has no effect on a ShareScans session's
	// cache misses (ConvertWorkers still applies). Miss-heavy workloads
	// that depend on fill/convert overlap should stay unshared until
	// the cache grows miss-path prefetch (see ROADMAP open items).
	ShareScans bool
}

// DefaultReaders and DefaultBuffer are the execution-shape defaults
// applied when a Spec leaves Readers/Buffer zero. dppnet sizes a remote
// session's receive window from the same values, so the network
// boundary enforces the same backpressure bound a local session's
// channels do.
const (
	DefaultReaders = 1
	DefaultBuffer  = 2
)

func (s Spec) withDefaults() Spec {
	if s.Readers == 0 {
		s.Readers = DefaultReaders
	}
	if s.Buffer == 0 {
		s.Buffer = DefaultBuffer
	}
	return s
}

func (s Spec) validate() error {
	if s.Readers < 0 {
		return fmt.Errorf("dpp: negative reader count %d", s.Readers)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("dpp: negative buffer %d", s.Buffer)
	}
	return s.Spec.Validate()
}

// Stream is the pull contract a training loop consumes: batches in
// deterministic order until io.EOF, a context or session error, or
// Close. A local Session satisfies it, and so does a dppnet remote
// session — training code written against Stream runs unchanged whether
// the preprocessing service is in-process or across a TCP boundary.
type Stream interface {
	Next(ctx context.Context) (*reader.Batch, error)
	Close() error
}

var _ Stream = (*Session)(nil)

// Session is one job's pull-based batch stream. Next and Close may be
// called from different goroutines, but Next itself is single-consumer:
// one goroutine (the training loop) pulls batches in order.
type Session struct {
	svc    *Service
	id     int64
	cancel context.CancelFunc
	ctx    context.Context

	chans []chan *reader.Batch
	cur   int // next channel to drain (consumer-owned)

	wg sync.WaitGroup

	mu       sync.Mutex
	stats    reader.Stats
	cache    SessionCacheStats
	firstErr error
	closed   bool
	done     bool
}

// newSession plans the scan and starts the reader workers. Workers begin
// filling their bounded buffers immediately; nothing blocks on Open.
func newSession(ctx context.Context, svc *Service, id int64, spec Spec, files []string) (*Session, error) {
	if spec.ShareScans && svc.cache == nil {
		return nil, fmt.Errorf("dpp: spec requests ShareScans but the service's scan cache is disabled")
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{svc: svc, id: id, cancel: cancel, ctx: sctx}

	fingerprint := ""
	if spec.ShareScans {
		fingerprint = spec.Spec.Fingerprint()
	}
	assignments := reader.PlanRoundRobin(files, spec.Readers)
	for _, assigned := range assignments {
		if len(assigned) == 0 {
			continue
		}
		r, err := reader.NewReader(svc.backend, spec.Spec)
		if err != nil {
			cancel()
			return nil, err
		}
		ch := make(chan *reader.Batch, spec.Buffer)
		s.chans = append(s.chans, ch)
		s.wg.Add(1)
		if spec.ShareScans {
			go s.runSharedWorker(r, fingerprint, assigned, ch)
		} else {
			go s.runWorker(r, assigned, ch)
		}
	}
	return s, nil
}

// runWorker drives one reader over its file assignment, publishing
// batches through the worker's bounded channel. The channel is closed
// only after the worker's error and stats are recorded, so a consumer
// that observes the close also observes the outcome.
func (s *Session) runWorker(r *reader.Reader, files []string, ch chan *reader.Batch) {
	defer s.wg.Done()
	err := r.Run(s.ctx, files, func(b *reader.Batch) error {
		select {
		case ch <- b:
			return nil
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	})
	s.mu.Lock()
	if err != nil && s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.stats.Add(r.Stats())
	s.mu.Unlock()
	close(ch)
}

// runSharedWorker drives one reader over its file assignment through the
// service's cross-session ScanCache. The emitted batch stream is
// byte-identical to runWorker's (the cache unit is file-aligned and the
// fingerprint covers every output-relevant spec field); what changes is
// the accounting — a fully cache-hit scan decodes nothing, so its
// RowsDecoded/ReadBytes/ConvertValues/ProcessOps stay zero while
// BatchesProduced and SentBytes still count every batch handed to the
// consumer (the session's egress is real either way).
func (s *Session) runSharedWorker(r *reader.Reader, fingerprint string, files []string, ch chan *reader.Batch) {
	defer s.wg.Done()
	var served reader.Stats // egress accounting for cache-hit batches
	var cache SessionCacheStats
	err := s.scanShared(r, fingerprint, files, &served, &cache, func(b *reader.Batch) error {
		select {
		case ch <- b:
			return nil
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	})
	s.mu.Lock()
	if err != nil && s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.stats.Add(r.Stats())
	s.stats.Add(served)
	s.cache.Hits += cache.Hits
	s.cache.Misses += cache.Misses
	s.mu.Unlock()
	close(ch)
}

// scanShared is the cached twin of reader.Run's consume loop. Files whose
// scan starts on a batch boundary (no carried rows) go through the
// ScanCache as whole file-aligned units; files entered mid-batch cannot
// share batches — their boundaries depend on the carry — so they fill and
// convert locally, exactly as the uncached path would.
func (s *Session) scanShared(r *reader.Reader, fingerprint string, files []string, served *reader.Stats, cache *SessionCacheStats, emit func(*reader.Batch) error) error {
	batchSize := r.BatchSize()
	var carry []datagen.Sample
	var keys []string
	var dense int
	checkSchema := func(file string, fileKeys []string) error {
		if keys == nil {
			return nil
		}
		if len(fileKeys) != len(keys) {
			return fmt.Errorf("dpp: file %q schema mismatch (%d vs %d features)", file, len(fileKeys), len(keys))
		}
		return nil
	}
	for _, f := range files {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		if len(carry) == 0 {
			scan, hit, err := s.svc.cache.Get(s.ctx, f, fingerprint, func(ctx context.Context) (*reader.FileScan, error) {
				return r.ScanFile(ctx, f)
			})
			if err != nil {
				return err
			}
			if hit {
				cache.Hits++
			} else {
				cache.Misses++
			}
			if err := checkSchema(f, scan.Keys); err != nil {
				return err
			}
			if keys == nil {
				keys, dense = scan.Keys, scan.Dense
			}
			for _, b := range scan.Batches {
				if hit {
					served.BatchesProduced++
					served.SentBytes += int64(b.WireBytes())
				}
				if err := emit(b); err != nil {
					return err
				}
			}
			// Copy the tail: the cached scan is shared and immutable, and
			// the carry slice is appended to below.
			carry = append([]datagen.Sample(nil), scan.Tail...)
			continue
		}
		samples, fileKeys, fileDense, err := r.FillFile(s.ctx, f)
		if err != nil {
			return err
		}
		if err := checkSchema(f, fileKeys); err != nil {
			return err
		}
		if keys == nil {
			keys, dense = fileKeys, fileDense
		}
		carry = append(carry, samples...)
		for len(carry) >= batchSize {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			b, err := r.ProduceBatch(carry[:batchSize], keys, dense)
			if err != nil {
				return err
			}
			if err := emit(b); err != nil {
				return err
			}
			carry = carry[batchSize:]
		}
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if len(carry) > 0 {
		b, err := r.ProduceBatch(carry, keys, dense)
		if err != nil {
			return err
		}
		return emit(b)
	}
	return nil
}

// Next returns the session's next preprocessed batch. It blocks until a
// batch is buffered, the scan is exhausted (io.EOF), a reader fails (the
// first error), ctx is cancelled (ctx.Err()), or the session is closed
// (ErrClosed). Batches arrive in deterministic order: each worker's
// batches in its serial scan order, workers in planning order.
func (s *Session) Next(ctx context.Context) (*reader.Batch, error) {
	for {
		if s.cur >= len(s.chans) {
			return nil, s.finish()
		}
		select {
		case b, ok := <-s.chans[s.cur]:
			if !ok {
				// Worker finished. Fail fast on its error rather than
				// streaming later workers' batches first.
				s.mu.Lock()
				err := s.firstErr
				s.mu.Unlock()
				if err != nil {
					// Tear down like finish(): an errored session must
					// not keep occupying a service slot.
					s.cancel()
					s.wg.Wait()
					s.release()
					return nil, err
				}
				s.cur++
				continue
			}
			s.svc.noteBatch()
			return b, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.ctx.Done():
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil, ErrClosed
			}
			return nil, s.ctx.Err()
		}
	}
}

// finish is reached once every worker channel has drained: wait for the
// workers, settle the accounting, and report the scan outcome. A scan
// cut short by Close or by job-context cancellation reports that, never
// a clean io.EOF.
func (s *Session) finish() error {
	s.wg.Wait()
	s.mu.Lock()
	err := s.firstErr
	closed := s.closed
	s.mu.Unlock()
	s.release()
	if err == nil {
		if closed {
			err = ErrClosed
		} else if ctxErr := s.ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
	}
	if err != nil {
		return err
	}
	return io.EOF
}

// Close cancels the session's workers, waits for them to exit, and
// releases the session's service slot. Idempotent; always returns nil.
// Batches already returned by Next remain valid — they never alias
// worker state.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	// Unblock workers parked on their bounded channels, then wait so a
	// closed session leaves no goroutine behind.
	s.wg.Wait()
	s.release()
	return nil
}

// release gives the session's service slot back exactly once; EOF,
// reader failure, and Close all funnel through it.
func (s *Session) release() {
	s.mu.Lock()
	done := s.done
	s.done = true
	s.mu.Unlock()
	if !done {
		s.svc.forget(s.id)
	}
}

// SessionStats is the session's aggregated accounting: the per-reader
// pipeline counters plus the session's view of the cross-session scan
// cache.
type SessionStats struct {
	// Reader aggregates the session's reader accounting. For a
	// ShareScans session these counters reflect work this session
	// actually performed plus batches it actually served: cache-hit
	// files contribute BatchesProduced and SentBytes (the session still
	// ships those batches to its trainer) but no fill/convert/process
	// work — the ingest-and-compute saving cross-session sharing exists
	// to create.
	Reader reader.Stats
	// Cache is this session's scan-cache traffic; zero for sessions
	// without ShareScans.
	Cache SessionCacheStats
}

// SessionCacheStats counts one session's ScanCache lookups.
type SessionCacheStats struct {
	// Hits counts file scans served from the cache (including scans this
	// session waited on another session to compute); Misses counts file
	// scans this session computed and published.
	Hits, Misses int64
}

// Stats returns the session's aggregated accounting. The deterministic
// reader counters (bytes, rows, batches, work) are exact and reproducible
// once Next has returned io.EOF or Close has completed; mid-scan it is a
// monotone snapshot of finished workers.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{Reader: s.stats, Cache: s.cache}
}
