package dpp

// WorkerArbiter arbitrates a service-wide (or process-wide) worker
// budget across sessions. front.Governor is the implementation; the
// interface lives here so dpp never imports the front door it sits
// under.
//
// With Config.Arbiter set alongside Config.AutoScale, every
// queue-backed session is Registered under its Spec.Tenant when it
// opens and Unregistered when it releases, and its AutoScaler's Resize
// calls are rerouted into Bid: the controller still observes the
// session's own starvation and proposes a size, but the arbiter — which
// sees every tenant's demand — decides the grant and actuates
// Session.Resize itself. ShareScans sessions run a single scan loop and
// stay outside arbitration, exactly as they are exempt from
// autoscaling.
type WorkerArbiter interface {
	// Register enrolls a live session's scale target under its tenant.
	// The arbiter may immediately Resize it (and others) to fit the
	// budget.
	Register(tenant string, t ScaleTarget)
	// Unregister drops a departed target and redistributes its share.
	Unregister(t ScaleTarget)
	// Bid proposes a worker count for t and returns the granted count.
	// The arbiter actuates Resize on every session whose grant changed,
	// including t itself.
	Bid(tenant string, t ScaleTarget, n int) int
}

// arbitratedTarget is the ScaleTarget a session's AutoScaler drives
// when the service has a WorkerArbiter: observation passes through to
// the session, actuation becomes a bid.
type arbitratedTarget struct {
	arb    WorkerArbiter
	tenant string
	sess   *Session
}

func (t *arbitratedTarget) SchedulerStats() SchedulerStats { return t.sess.SchedulerStats() }

func (t *arbitratedTarget) Resize(n int) int { return t.arb.Bid(t.tenant, t.sess, n) }
