package dpp

import "time"

// Clock abstracts time for the scheduling layer: stall accounting on
// sessions and the AutoScaler's decision ticks. Production code runs on
// the wall clock; tests inject a manual-advance clock
// (internal/testutil.Clock satisfies this interface) so controller
// decisions are reproducible without time.Sleep.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the wall-clock default used when no Clock is injected.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
