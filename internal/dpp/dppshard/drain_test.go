package dppshard_test

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/dppshard"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/testutil"
)

// newDrainEnv lands a larger partition (~38 files at 64 rows each) than
// newFleetEnv: the drain test's window math needs each of two shards to
// own more files than the merge can possibly have pulled at the drain
// point, so the drained shard is deterministically still mid-stream.
func newDrainEnv(t testing.TB) *fleetEnv {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 400, MeanSamplesPerSession: 6, Seed: 99,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		t.Fatal(err)
	}
	files, err := catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 24 {
		t.Fatalf("drain env landed only %d files; the window math needs the larger shard to own > 10", len(files))
	}
	return &fleetEnv{store: store, catalog: catalog, files: files}
}

// TestFleetDrainHandsOffMidStream is the drain-during-stream contract:
// one of two shards enters drain mode mid-scan, its stream gets the
// drain notice, and the mux hands exactly the shard's *unconsumed* files
// to the survivor — merged stream byte-identical to the serial
// reference, no already-served file refetched, and the handoff counted
// as a drain handoff rather than a shard death. A fresh Open afterwards
// routes around the draining shard entirely.
//
// The same window math as TestShardRestartRejoinsViaResume makes the
// mid-stream guarantee deterministic: with Readers=Buffer=1 the servers
// have together sent at most consumed+6 units, and the larger shard of
// two owns at least half of ~38 files, so at drain point 2 its stream
// cannot have ended.
func TestFleetDrainHandsOffMidStream(t *testing.T) {
	env := newDrainEnv(t)
	wantEnc, _ := serialReference(t, env, alignedSpec())
	if len(wantEnc) < 24 {
		t.Fatalf("reference stream has only %d batches", len(wantEnc))
	}
	before := runtime.NumGoroutine()
	shards := startFleet(t, env, 2)
	fleet, err := dppshard.New(dppshard.Config{
		Addrs: addrsOf(shards), Backend: env.store,
		Resume: dppnet.ResumePolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := fleet.Open(context.Background(), dpp.Spec{
		Spec: alignedSpec(), Files: env.files, Readers: 1, Buffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The victim is whichever shard owns more files: it must still be
	// mid-stream when the drain notice lands (it owns >= half the files,
	// far past what the merge can have pulled by batch 2).
	open, _ := sess.ShardStats()
	if len(open) != 2 {
		t.Fatalf("fleet opened %d shard streams, want 2", len(open))
	}
	victimAddr := open[0].Addr
	if open[1].Files > open[0].Files {
		victimAddr = open[1].Addr
	}
	var victim, survivor *shard
	for _, s := range shards {
		if s.addr == victimAddr {
			victim = s
		} else {
			survivor = s
		}
	}

	const drainAt = 2
	var got [][]byte
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("after %d batches: %v", len(got), err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got = append(got, buf.Bytes())
		if len(got) == drainAt {
			victim.srv.Drain()
		}
	}
	mustEqualStreams(t, got, wantEnc)

	if n := sess.DrainHandoffs(); n < 1 {
		t.Fatalf("DrainHandoffs = %d, want >= 1 (the victim was mid-stream at the drain)", n)
	}
	stats, reroutes := sess.ShardStats()
	if reroutes != 0 {
		t.Fatalf("reroutes = %d, want 0: a drain handoff is planned movement, not a shard death", reroutes)
	}
	var drainedStat *dppshard.ShardStat
	var handoffFiles, servedTotal int
	for i := range stats {
		st := &stats[i]
		servedTotal += st.Served
		if st.Failed {
			t.Fatalf("shard stream %+v marked failed; nothing died in this test", st)
		}
		switch {
		case st.Drained:
			if drainedStat != nil {
				t.Fatalf("two drained shard streams; only %s was drained", victimAddr)
			}
			drainedStat = st
		case st.Addr == victimAddr:
			t.Fatalf("stream %+v reopened on the draining shard", st)
		default:
			handoffFiles += st.Files
		}
	}
	if drainedStat == nil || drainedStat.Addr != victimAddr {
		t.Fatalf("no drained stream recorded for victim %s in %+v", victimAddr, stats)
	}
	// Exactly the victim's unconsumed files moved: the survivor's streams
	// hold its own original files plus the drained remainder, so their
	// file counts must sum to everything the victim did not serve.
	if want := len(env.files) - drainedStat.Served; handoffFiles != want {
		t.Fatalf("survivor streams hold %d files, want %d (own share + the drained shard's unserved remainder)", handoffFiles, want)
	}
	if moved := drainedStat.Files - drainedStat.Served; moved < 1 {
		t.Fatalf("drained shard served all %d of its files; the drain landed too late to hand anything off", drainedStat.Files)
	}
	if servedTotal != len(env.files) {
		t.Fatalf("shard streams served %d units total, want exactly %d (each file merged once, no refetch)", servedTotal, len(env.files))
	}
	if st := victim.srv.Stats(); !st.Draining || st.DrainNotices < 1 {
		t.Fatalf("victim server stats %+v: want Draining with >= 1 drain notice", st)
	}
	sess.Close()

	// A fresh Open while the victim still drains routes every file to
	// the survivor — the draining refusal is a route-around, not an
	// error — and still reproduces the reference stream.
	sess2, err := fleet.Open(context.Background(), dpp.Spec{
		Spec: alignedSpec(), Files: env.files, Readers: 1, Buffer: 1,
	})
	if err != nil {
		t.Fatalf("open against a half-draining fleet: %v", err)
	}
	mustEqualStreams(t, drainFleet(t, sess2), wantEnc)
	stats2, _ := sess2.ShardStats()
	for _, st := range stats2 {
		if st.Addr != survivor.addr {
			t.Fatalf("post-drain open routed stream %+v to a non-survivor", st)
		}
	}
	sess2.Close()

	for _, s := range shards {
		s.shutdown()
	}
	testutil.WaitForGoroutines(t, before)
}
