package dppshard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/dpp/dppshard"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/testutil"
)

// newFleetEnv lands one clustered partition cut into many small files
// (64 rows each), so the scan shards across up to 8 servers with several
// files per shard. Batch size 64 divides the file size (aligned); 48
// does not (misaligned: rows carry across files and across shards).
type fleetEnv struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	files   []string
}

func newFleetEnv(t testing.TB) *fleetEnv {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 120, MeanSamplesPerSession: 6, Seed: 99,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		t.Fatal(err)
	}
	files, err := catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("fleet env landed only %d files; sharding needs many", len(files))
	}
	return &fleetEnv{store: store, catalog: catalog, files: files}
}

func alignedSpec() reader.Spec {
	return reader.Spec{
		Table:          "tbl",
		BatchSize:      64,
		SparseFeatures: []string{"item_0", "item_1"},
		DedupSparseFeatures: [][]string{
			{"user_seq_0", "user_seq_1"},
			{"user_elem_0", "user_elem_1", "user_elem_2"},
		},
	}
}

func misalignedSpec() reader.Spec {
	return reader.Spec{
		Table:     "tbl",
		BatchSize: 48,
		SparseFeatures: []string{
			"item_0", "item_1", "user_seq_0", "user_seq_1",
			"user_elem_0", "user_elem_1", "user_elem_2",
		},
		SparseTransforms: []reader.SparseTransform{
			reader.HashMod{Features: []string{"user_seq_0"}, TableSize: 1 << 20},
		},
	}
}

// shard is one live service + server pair of the test fleet.
type shard struct {
	svc  *dpp.Service
	srv  *dppnet.Server
	addr string
	once sync.Once
}

// kill force-closes the shard's server mid-stream (connections die, the
// service stays up); shutdown additionally closes the service. Both are
// safe to call repeatedly and in either order.
func (s *shard) kill() { s.once.Do(func() { s.srv.Close() }) }
func (s *shard) shutdown() {
	s.kill()
	s.svc.Close()
}

// startFleet brings up n shards over the shared store, each with its own
// service (own ScanCache — the fleet's cache is the sum of these).
func startFleet(t testing.TB, env *fleetEnv, n int) []*shard {
	t.Helper()
	shards := make([]*shard, n)
	for i := range shards {
		svc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := dppnet.NewServer(svc)
		go srv.Serve(ln)
		shards[i] = &shard{svc: svc, srv: srv, addr: ln.Addr().String()}
		t.Cleanup(shards[i].shutdown)
	}
	return shards
}

func addrsOf(shards []*shard) []string {
	addrs := make([]string, len(shards))
	for i, s := range shards {
		addrs[i] = s.addr
	}
	return addrs
}

// serialReference runs one Reader serially over the whole table — the
// stream every fleet shape must match byte for byte.
func serialReference(t *testing.T, env *fleetEnv, spec reader.Spec) ([][]byte, reader.Stats) {
	t.Helper()
	r, err := reader.NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	var enc [][]byte
	if err := r.Run(context.Background(), env.files, func(b *reader.Batch) error {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			return err
		}
		enc = append(enc, buf.Bytes())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return enc, r.Stats()
}

func counters(s reader.Stats) [6]int64 {
	return [6]int64{s.ReadBytes, s.SentBytes, s.RowsDecoded, s.BatchesProduced, s.ConvertValues, s.ProcessOps}
}

func drainFleet(t *testing.T, sess *dppshard.Session) [][]byte {
	t.Helper()
	var enc [][]byte
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			return enc
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		enc = append(enc, buf.Bytes())
	}
}

func mustEqualStreams(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("fleet produced %d batches, serial reference %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("batch %d differs from serial reference", i)
		}
	}
}

// TestFleetMatchesSingleServer is the sharding determinism contract:
// the merged fleet stream is byte-identical to one serial scan for
// every shard count 1–8, across aligned, misaligned (batch boundaries
// cross file — and therefore shard — boundaries), and ShareScans specs.
// For a cold aligned fleet the aggregate reader counters are exactly
// the serial reference's: the shards plus the mux together did the same
// work once.
func TestFleetMatchesSingleServer(t *testing.T) {
	env := newFleetEnv(t)
	cases := []struct {
		name  string
		spec  reader.Spec
		share bool
	}{
		{"aligned", alignedSpec(), false},
		{"misaligned", misalignedSpec(), false},
		{"sharescans", alignedSpec(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantEnc, wantStats := serialReference(t, env, tc.spec)
			for n := 1; n <= 8; n++ {
				shards := startFleet(t, env, n)
				fleet, err := dppshard.New(dppshard.Config{Addrs: addrsOf(shards), Backend: env.store})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := fleet.Open(context.Background(), dpp.Spec{
					Spec: tc.spec, Files: env.files, ShareScans: tc.share,
				})
				if err != nil {
					t.Fatalf("%d shards: %v", n, err)
				}
				got := drainFleet(t, sess)
				mustEqualStreams(t, got, wantEnc)
				st := sess.Stats()
				if tc.name == "aligned" {
					if counters(st.Reader) != counters(wantStats) {
						t.Fatalf("%d shards: aggregate counters %v, serial %v", n, counters(st.Reader), counters(wantStats))
					}
				}
				if _, reroutes := sess.ShardStats(); reroutes != 0 {
					t.Fatalf("%d shards: %d reroutes on a healthy fleet", n, reroutes)
				}
				sess.Close()
				for _, s := range shards {
					s.shutdown()
				}
			}
		})
	}
}

// TestFleetCachePartitioning pins the capacity story: under ShareScans
// every file is decoded (a cache miss) on exactly the one shard routing
// assigned it, and a second fleet pass over the same spec hits every
// shard's cache — the fleet cache is partitioned, not replicated.
func TestFleetCachePartitioning(t *testing.T) {
	env := newFleetEnv(t)
	shards := startFleet(t, env, 4)
	fleet, err := dppshard.New(dppshard.Config{Addrs: addrsOf(shards)})
	if err != nil {
		t.Fatal(err)
	}
	spec := dpp.Spec{Spec: alignedSpec(), Files: env.files, ShareScans: true}
	wantEnc, _ := serialReference(t, env, alignedSpec())

	sess, err := fleet.Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStreams(t, drainFleet(t, sess), wantEnc)
	stats, _ := sess.ShardStats()
	sess.Close()

	var files, misses, hits int64
	for _, st := range stats {
		if !st.StatsOK {
			t.Fatalf("shard %s lost its stats frame on a healthy fleet", st.Addr)
		}
		if st.Stats.Cache.Misses != int64(st.Files) {
			t.Fatalf("shard %s decoded %d files but was routed %d — files decoded off their owning shard",
				st.Addr, st.Stats.Cache.Misses, st.Files)
		}
		files += int64(st.Files)
		misses += st.Stats.Cache.Misses
		hits += st.Stats.Cache.Hits
	}
	if files != int64(len(env.files)) || misses != int64(len(env.files)) || hits != 0 {
		t.Fatalf("cold pass: %d files routed, %d misses, %d hits; want %d/%d/0",
			files, misses, hits, len(env.files), len(env.files))
	}

	// Second epoch: same spec, same routing, every file already resident
	// on its owning shard.
	sess2, err := fleet.Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStreams(t, drainFleet(t, sess2), wantEnc)
	stats2, _ := sess2.ShardStats()
	sess2.Close()
	misses, hits = 0, 0
	for _, st := range stats2 {
		misses += st.Stats.Cache.Misses
		hits += st.Stats.Cache.Hits
	}
	if misses != 0 || hits != int64(len(env.files)) {
		t.Fatalf("warm pass: %d misses, %d hits; want 0/%d", misses, hits, len(env.files))
	}
}

// TestFleetShardKillDeterminism is the failover half of the contract
// (run under -race in CI): a randomly chosen shard is killed at a
// seeded point mid-stream, its remaining files re-route to the
// survivors, and the merged stream must still be byte-identical to the
// serial reference — with zero leaked goroutines after teardown.
func TestFleetShardKillDeterminism(t *testing.T) {
	env := newFleetEnv(t)
	cases := []struct {
		name  string
		spec  reader.Spec
		share bool
	}{
		{"aligned", alignedSpec(), false},
		{"misaligned", misalignedSpec(), false},
		{"sharescans", alignedSpec(), true},
	}
	const seedsPerCase = 5
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantEnc, _ := serialReference(t, env, tc.spec)
			for seed := int64(0); seed < seedsPerCase; seed++ {
				before := runtime.NumGoroutine()
				rng := rand.New(rand.NewSource(seed))
				shards := startFleet(t, env, 3)
				fleet, err := dppshard.New(dppshard.Config{Addrs: addrsOf(shards), Backend: env.store})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := fleet.Open(context.Background(), dpp.Spec{
					Spec: tc.spec, Files: env.files, ShareScans: tc.share,
				})
				if err != nil {
					t.Fatal(err)
				}
				killAt := 1 + rng.Intn(len(wantEnc)-1)
				victim := rng.Intn(len(shards))
				var got [][]byte
				for {
					b, err := sess.Next(context.Background())
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					var buf bytes.Buffer
					if err := b.Encode(&buf); err != nil {
						t.Fatal(err)
					}
					got = append(got, buf.Bytes())
					if len(got) == killAt {
						shards[victim].kill()
					}
				}
				mustEqualStreams(t, got, wantEnc)
				sess.Close()
				for _, s := range shards {
					s.shutdown()
				}
				testutil.WaitForGoroutines(t, before)
			}
		})
	}
}

// TestFleetOpenSemantics covers the admission edges: config validation,
// the explicit-files requirement, remote spec rejection failing the
// whole Open, dead shards at Open re-routing like a mid-stream death,
// and a fully unreachable fleet failing cleanly.
func TestFleetOpenSemantics(t *testing.T) {
	env := newFleetEnv(t)

	if _, err := dppshard.New(dppshard.Config{}); err == nil {
		t.Fatal("New accepted an empty shard set")
	}
	if _, err := dppshard.New(dppshard.Config{Addrs: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("New accepted duplicate shard addresses")
	}

	shards := startFleet(t, env, 2)
	fleet, err := dppshard.New(dppshard.Config{Addrs: addrsOf(shards), Backend: env.store})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := fleet.Open(context.Background(), dpp.Spec{Spec: alignedSpec()}); err == nil {
		t.Fatal("Open accepted a spec without an explicit file list")
	}

	// An invalid spec fails Open locally — the mux reader validates it
	// before any shard is dialed.
	bad := alignedSpec()
	bad.BatchSize = 0
	if _, err := fleet.Open(context.Background(), dpp.Spec{Spec: bad, Files: env.files}); err == nil {
		t.Fatal("Open accepted a spec with batch size 0")
	}

	// A shard refusing admission (session cap) fails the whole Open with
	// ErrRemote — it is not treated as a dead shard to route around.
	cappedSvc, err := dpp.New(dpp.Config{Backend: env.store, Catalog: env.catalog, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cappedSvc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cappedSrv := dppnet.NewServer(cappedSvc)
	go cappedSrv.Serve(ln)
	defer cappedSrv.Close()
	capped, err := dppshard.New(dppshard.Config{Addrs: []string{ln.Addr().String()}, Backend: env.store})
	if err != nil {
		t.Fatal(err)
	}
	first, err := capped.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Files: env.files})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := capped.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Files: env.files}); !errors.Is(err, dppnet.ErrRemote) {
		t.Fatalf("capped shard: err = %v, want ErrRemote", err)
	}

	// A shard that is down at Open is treated as a mid-stream death at
	// file zero: its files re-route and the stream is still identical.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	mixed, err := dppshard.New(dppshard.Config{Addrs: []string{deadAddr, shards[0].addr, shards[1].addr}, Backend: env.store})
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, _ := serialReference(t, env, alignedSpec())
	sess, err := mixed.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Files: env.files})
	if err != nil {
		t.Fatalf("fleet with one dead shard failed Open: %v", err)
	}
	mustEqualStreams(t, drainFleet(t, sess), wantEnc)
	sess.Close()

	allDead, err := dppshard.New(dppshard.Config{Addrs: []string{deadAddr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := allDead.Open(context.Background(), dpp.Spec{Spec: alignedSpec(), Files: env.files}); err == nil {
		t.Fatal("Open succeeded with no reachable shards")
	}
}

// TestFleetMisalignedNeedsBackend pins the documented constraint: a
// misaligned spec (carry crosses file boundaries) needs local storage
// access to re-fill carry-entered files, and fails with a pointed error
// rather than wrong bytes when the fleet has none.
func TestFleetMisalignedNeedsBackend(t *testing.T) {
	env := newFleetEnv(t)
	shards := startFleet(t, env, 2)
	fleet, err := dppshard.New(dppshard.Config{Addrs: addrsOf(shards)}) // no Backend
	if err != nil {
		t.Fatal(err)
	}
	sess, err := fleet.Open(context.Background(), dpp.Spec{Spec: misalignedSpec(), Files: env.files})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for {
		_, err := sess.Next(context.Background())
		if err == io.EOF {
			t.Fatal("misaligned fleet scan without a backend drained cleanly")
		}
		if err != nil {
			if !strings.Contains(err.Error(), "backend") {
				t.Fatalf("err = %v, want a local-backend error", err)
			}
			return
		}
	}
}

// TestShardRestartRejoinsViaResume is the restart half of the failover
// contract (run under -race in CI): every shard server "restarts"
// mid-stream — killed and brought back on the same address with an
// empty resume table — and under a Resume policy the mux's wire
// sessions rejoin via token-less offset replay instead of re-routing
// files. The merged stream stays byte-identical to the serial
// reference, reroutes stay at zero, and every seeded schedule tears
// down leak-free.
//
// Window math makes the reconnect assertion deterministic: with
// Readers=Buffer=1 the merge pulls at most consumed+3 units and each
// shard server sends at most one unit past its last pull, so at kill
// point k every server together has sent at most k+6 of the table's
// files — with k <= files-7, some unit is still unsent and its shard's
// stream cannot have EOF'd, forcing at least one rejoin.
func TestShardRestartRejoinsViaResume(t *testing.T) {
	env := newFleetEnv(t)
	wantEnc, _ := serialReference(t, env, alignedSpec())
	if len(wantEnc) < 8 {
		t.Fatalf("reference stream has only %d batches; the kill window needs len-7 >= 1", len(wantEnc))
	}
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		share := seed%2 == 1
		t.Run(fmt.Sprintf("seed=%d,share=%v", seed, share), func(t *testing.T) {
			before := runtime.NumGoroutine()
			rng := rand.New(rand.NewSource(4000 + seed))
			shards := startFleet(t, env, 3)
			fleet, err := dppshard.New(dppshard.Config{
				Addrs: addrsOf(shards), Backend: env.store,
				Resume: dppnet.ResumePolicy{MaxAttempts: 30, BaseDelay: 20 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			sess, err := fleet.Open(context.Background(), dpp.Spec{
				Spec: alignedSpec(), Files: env.files, ShareScans: share,
				Readers: 1, Buffer: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			killAt := 1 + rng.Intn(len(wantEnc)-7)
			restarted := make([]*dppnet.Server, len(shards))
			var got [][]byte
			for {
				b, err := sess.Next(context.Background())
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("after %d batches: %v", len(got), err)
				}
				var buf bytes.Buffer
				if err := b.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				got = append(got, buf.Bytes())
				if len(got) == killAt {
					// Same services, same addresses, fresh servers: the
					// resume tables died with the old processes, so every
					// token claim fails and the rejoins are pure offset
					// replays.
					for i, s := range shards {
						s.kill()
						ln := relisten(t, s.addr)
						restarted[i] = dppnet.NewServer(s.svc)
						go restarted[i].Serve(ln)
					}
				}
			}
			mustEqualStreams(t, got, wantEnc)
			stats, reroutes := sess.ShardStats()
			if reroutes != 0 {
				t.Fatalf("fleet re-routed %d times; restarted shards should have been rejoined", reroutes)
			}
			var reconnects int64
			for _, st := range stats {
				reconnects += st.Reconnects
			}
			if reconnects < 1 {
				t.Fatalf("fleet-wide restart at batch %d/%d produced no reconnects", killAt, len(wantEnc))
			}
			sess.Close()
			for _, srv := range restarted {
				if err := srv.Close(); err != nil {
					t.Errorf("restarted server Close: %v", err)
				}
			}
			for _, s := range shards {
				s.shutdown()
			}
			testutil.WaitForGoroutines(t, before)
		})
	}
}

// relisten rebinds addr, retrying briefly while the killed server's
// listener finishes closing.
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
