// Package dppshard is the client-side fleet multiplexer over N
// recd-serve shards: one logical preprocessing session whose file scan
// is partitioned across servers by rendezvous (highest-random-weight)
// hashing, so each DWRF file is decoded — and, under ShareScans, cached
// — on exactly one shard, and the fleet's cache capacity is the sum of
// the shards' budgets rather than N replicas of the same working set.
//
// Each shard serves its file subset as a dppnet file-unit stream (whole
// decoded files in order: complete batches plus raw tail rows), and the
// multiplexer reassembles the global file order with the same
// deposit-by-index ordered-merge discipline a local session's fill pool
// uses (reader.OrderedMerge). Batches whose rows stay inside one file
// pass through untouched; batch boundaries that cross file boundaries
// are cut client-side from the carried tails — which is what makes the
// merged stream byte-identical to a single-server (or fully local)
// session over the same spec, at any shard count.
//
// Shard death mid-stream re-routes deterministically: the dead shard's
// not-yet-delivered files — and only those — are re-hashed over the
// surviving shards (rendezvous hashing moves no other file), new unit
// streams are opened for exactly those files, and the merge resumes at
// the precise file boundary. The stream stays byte-identical through
// the kill; see docs/ARCHITECTURE.md's determinism contract.
package dppshard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dpp/dppnet"
	"repro/internal/reader"
	"repro/internal/storage"
)

// Config describes the fleet a session multiplexes over.
type Config struct {
	// Addrs are the shard servers (host:port), one dppnet endpoint each.
	// Order does not affect routing — rendezvous hashing is symmetric in
	// the member set — but duplicates are rejected.
	Addrs []string
	// Backend optionally gives the multiplexer local storage access for
	// files whose batches cannot be cut shard-side: when a scan enters a
	// file with carried rows (a misaligned spec), the batch boundaries
	// depend on the carry, so the mux re-fills that file locally exactly
	// as a ShareScans session's misaligned fallback does. Nil is fine for
	// aligned specs; a misaligned scan without a backend fails cleanly.
	Backend storage.Backend
	// Resume, when it names a positive MaxAttempts, lets each shard
	// stream survive connection loss (or a shard restart) through the
	// dppnet resume protocol instead of immediately re-routing: a
	// restarted shard rejoins the stream where it left off. A shard that
	// stays unreachable past the policy's attempts still re-routes to
	// the survivors exactly as before.
	Resume dppnet.ResumePolicy
	// AuthToken is the tenant token presented to every shard; leave
	// empty against fleets that run without a front door.
	AuthToken string
}

// Fleet opens multiplexed sessions over a fixed shard set.
type Fleet struct {
	addrs     []string
	backend   storage.Backend
	resume    dppnet.ResumePolicy
	authToken string
}

// New validates the shard set.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("dppshard: fleet needs at least one shard address")
	}
	seen := make(map[string]struct{}, len(cfg.Addrs))
	for _, a := range cfg.Addrs {
		if a == "" {
			return nil, fmt.Errorf("dppshard: empty shard address")
		}
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("dppshard: duplicate shard address %q", a)
		}
		seen[a] = struct{}{}
	}
	return &Fleet{addrs: append([]string(nil), cfg.Addrs...), backend: cfg.Backend,
		resume: cfg.Resume, authToken: cfg.AuthToken}, nil
}

// isDrainingRefusal recognizes a server-side open refusal caused by
// drain mode. It is deliberately a substring match on the remote error:
// the refusing server may be behind a front door (front.ErrDraining) or
// bare (dppnet's own refusal), and both spell "draining".
func isDrainingRefusal(err error) bool {
	return errors.Is(err, dppnet.ErrRemote) && strings.Contains(err.Error(), "draining")
}

// route picks the shard for one file by rendezvous hashing: the highest
// fnv64a(file, fingerprint, addr) score wins. Every client with the
// same member set routes identically (no coordination), and removing a
// member re-routes only that member's files — the property failover
// leans on. The fingerprint is hashed in so distinct specs spread their
// cache load independently.
func route(file, fingerprint string, addrs []string) string {
	best := ""
	var bestScore uint64
	for _, a := range addrs {
		h := fnv.New64a()
		h.Write([]byte(file))
		h.Write([]byte{0})
		h.Write([]byte(fingerprint))
		h.Write([]byte{0})
		h.Write([]byte(a))
		s := h.Sum64()
		if best == "" || s > bestScore || (s == bestScore && a < best) {
			best, bestScore = a, s
		}
	}
	return best
}

// group is one shard's route set: the global file indices it serves, in
// increasing order.
type group struct {
	addr    string
	indices []int
}

// regroup routes each global index over the alive shard set, emitting
// groups in alive-set order (deterministic for a given member set).
func regroup(files []string, fingerprint string, indices []int, alive []string) []group {
	byAddr := make(map[string][]int, len(alive))
	for _, idx := range indices {
		a := route(files[idx], fingerprint, alive)
		byAddr[a] = append(byAddr[a], idx)
	}
	out := make([]group, 0, len(byAddr))
	for _, a := range alive {
		if idxs := byAddr[a]; len(idxs) > 0 {
			out = append(out, group{addr: a, indices: idxs})
		}
	}
	return out
}

// shardState tracks one opened unit stream (initial or re-routed).
type shardState struct {
	addr    string
	indices []int
	sess    *dppnet.RemoteUnitSession

	// Written by the owning pump under the session's pmu.
	served  int // units delivered into the merge
	failed  bool
	drained bool             // the shard drained; its remainder was handed off
	stats   dpp.SessionStats // the shard's trailing stats frame
	statsOK bool
}

// shardUnit is one merge slot: a delivered unit or the stream's fate.
type shardUnit struct {
	unit *dpp.FileUnit
	err  error
}

// maxMergeWindow caps how many undelivered decoded files the merge may
// hold client-side; whole files are much larger than batches, so the
// cap is far below the batch-session buffer cap.
const maxMergeWindow = 256

// Session is one fleet-multiplexed preprocessing stream. It satisfies
// dpp.Stream: Next returns batches in the single-server order until
// io.EOF, and Close tears down every shard stream. Next is
// single-consumer, as with every other session kind.
type Session struct {
	fleet       *Fleet
	spec        dpp.Spec
	files       []string
	fingerprint string

	ctx    context.Context
	cancel context.CancelFunc
	merge  *reader.OrderedMerge[shardUnit]
	out    chan *reader.Batch
	// mux is the session's local reader: it cuts carry-crossing batches
	// from tails (ProduceBatch) and re-fills carry-entered files
	// (FillFile, needs Config.Backend).
	mux *reader.Reader
	wg  sync.WaitGroup
	// pumps tracks only the shard pump goroutines: a cleanly exhausted
	// merge waits for them before closing the stream, so every healthy
	// shard's trailing stats frame is drained by the time the consumer
	// sees io.EOF and reads Stats.
	pumps sync.WaitGroup

	// pmu guards the shard set and teardown flag; wg.Add for re-route
	// pumps happens under pmu with a stopped check, so a racing teardown
	// can never Wait past an Add.
	pmu           sync.Mutex
	dead          map[string]bool
	shards        []*shardState
	stopped       bool
	reroutes      int64 // shard deaths survived mid-stream
	drainHandoffs int64 // shard drains handed off mid-stream

	mu                 sync.Mutex
	muxStats           reader.Stats
	consumerStall      time.Duration
	consumerStallSince time.Time
	firstErr           error
	closed             bool
}

var _ dpp.Stream = (*Session)(nil)

// Open routes spec.Files over the fleet and starts one unit stream per
// shard with files to serve. The spec must name its files explicitly —
// routing is by file, so the client must own the list. Admission errors
// a shard reports (invalid spec, session cap) fail the whole Open;
// shards that are unreachable at Open are treated exactly like a
// mid-stream death: marked dead, their files re-routed to survivors.
func (f *Fleet) Open(ctx context.Context, spec dpp.Spec) (*Session, error) {
	if len(spec.Files) == 0 {
		return nil, fmt.Errorf("dppshard: fleet session needs an explicit file list")
	}
	files := spec.Files
	fingerprint := spec.Spec.Fingerprint()

	readers, buffer := spec.Readers, spec.Buffer
	if readers <= 0 {
		readers = dpp.DefaultReaders
	}
	if buffer <= 0 {
		buffer = dpp.DefaultBuffer
	}

	mux, err := reader.NewReader(f.backend, spec.Spec)
	if err != nil {
		return nil, err
	}

	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		fleet:       f,
		spec:        spec,
		files:       files,
		fingerprint: fingerprint,
		ctx:         sctx,
		cancel:      cancel,
		out:         make(chan *reader.Batch, readers*buffer),
		mux:         mux,
		dead:        make(map[string]bool),
	}
	window := len(f.addrs) * readers * buffer
	if window > maxMergeWindow {
		window = maxMergeWindow
	}
	s.merge = reader.NewOrderedMerge[shardUnit](len(files), window, nil)

	// Open the initial shard streams synchronously, re-routing around
	// unreachable shards; only then do pumps start, so Open's error
	// semantics match a single server's (a spec the service rejects
	// fails here, not as a mid-stream error).
	queue := regroup(files, fingerprint, allIndices(len(files)), f.addrs)
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		rus, err := s.openShard(g)
		if err != nil {
			if (errors.Is(err, dppnet.ErrRemote) && !isDrainingRefusal(err)) || sctx.Err() != nil {
				s.abandonOpen()
				return nil, err
			}
			// Transport failure — or a shard refusing opens because it is
			// draining: either way the shard is dead to this session; its
			// files re-route over the survivors.
			s.dead[g.addr] = true
			alive := s.aliveLocked()
			if len(alive) == 0 {
				s.abandonOpen()
				return nil, fmt.Errorf("dppshard: no reachable shards: %w", err)
			}
			queue = append(queue, regroup(files, fingerprint, g.indices, alive)...)
			continue
		}
		s.shards = append(s.shards, &shardState{addr: g.addr, indices: g.indices, sess: rus})
	}

	for _, st := range s.shards {
		s.wg.Add(1)
		s.pumps.Add(1)
		go s.runPump(st)
	}
	s.wg.Add(1)
	go s.runMerge()
	return s, nil
}

func allIndices(n int) []int {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}

// openShard opens one unit stream carrying exactly g's file subset.
func (s *Session) openShard(g group) (*dppnet.RemoteUnitSession, error) {
	subset := make([]string, len(g.indices))
	for i, idx := range g.indices {
		subset[i] = s.files[idx]
	}
	shardSpec := s.spec
	shardSpec.Files = subset
	cl := dppnet.NewClient(g.addr)
	cl.Resume = s.fleet.resume
	cl.AuthToken = s.fleet.authToken
	return cl.OpenUnits(s.ctx, shardSpec)
}

// abandonOpen tears down a half-built session whose Open is failing.
func (s *Session) abandonOpen() {
	s.cancel()
	for _, st := range s.shards {
		st.sess.Close()
	}
}

// aliveLocked returns the fleet addresses this session has not declared
// dead, in fleet order. Callers hold pmu (or, during Open, have sole
// ownership).
func (s *Session) aliveLocked() []string {
	alive := make([]string, 0, len(s.fleet.addrs))
	for _, a := range s.fleet.addrs {
		if !s.dead[a] {
			alive = append(alive, a)
		}
	}
	return alive
}

// runPump drives one shard stream: wait for each of its global indices
// to enter the merge window (backpressure), pull the unit, deposit it.
// A shard that dies mid-stream hands its remaining indices to
// rerouteShard; a shard that finishes cleanly drains the trailing
// stats frame so the fleet's aggregate accounting includes it.
func (s *Session) runPump(st *shardState) {
	defer s.wg.Done()
	defer s.pumps.Done()
	defer st.sess.Close()
	pos := 0
	for pos < len(st.indices) {
		gidx := st.indices[pos]
		if !s.merge.WaitWindow(gidx) {
			return // merge aborted: teardown or a terminal error elsewhere
		}
		u, err := st.sess.NextUnit(s.ctx)
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			if err == io.EOF {
				err = fmt.Errorf("dppshard: shard %s ended after %d of %d units", st.addr, pos, len(st.indices))
			}
			if errors.Is(err, dppnet.ErrDrained) {
				// Graceful drain handoff: only the shard's *unconsumed*
				// files move — everything already merged stays merged, so
				// no already-served file is ever refetched or re-decoded.
				s.pmu.Lock()
				st.drained = true
				s.drainHandoffs++
				s.pmu.Unlock()
			}
			s.rerouteShard(st, pos, err)
			return
		}
		s.merge.Deposit(gidx, shardUnit{unit: u})
		pos++
		s.pmu.Lock()
		st.served = pos
		s.pmu.Unlock()
	}
	// Subset delivered; the next read is the trailing stats + EOF.
	if _, err := st.sess.NextUnit(s.ctx); err == io.EOF {
		if stats, ok := st.sess.Stats(); ok {
			s.pmu.Lock()
			st.stats, st.statsOK = stats, true
			s.pmu.Unlock()
		}
	}
}

// rerouteShard declares st's shard dead and re-routes its undelivered
// files over the survivors, opening fresh unit streams for exactly
// those files. Rendezvous hashing guarantees no other shard's files
// move, and the merge consumes by global index, so the stream resumes
// at the precise file boundary the dead shard reached. With no
// survivors left, the failure surfaces in-order as the stream error at
// the first undelivered file.
func (s *Session) rerouteShard(st *shardState, pos int, cause error) {
	remaining := st.indices[pos:]
	s.pmu.Lock()
	s.dead[st.addr] = true
	if !st.drained {
		// A drain handoff is planned movement, not a shard death; it
		// counts under drainHandoffs (already charged) instead.
		st.failed = true
		s.reroutes++
	}
	alive := s.aliveLocked()
	stopped := s.stopped
	s.pmu.Unlock()
	if stopped {
		return
	}
	if len(alive) == 0 {
		s.merge.Deposit(remaining[0], shardUnit{err: fmt.Errorf("dppshard: shard %s died with no survivors: %w", st.addr, cause)})
		return
	}
	queue := regroup(s.files, s.fingerprint, remaining, alive)
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		rus, err := s.openShard(g)
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			if errors.Is(err, dppnet.ErrRemote) && !isDrainingRefusal(err) {
				// The survivor is up but refused the session (e.g. its
				// admission cap): not a routing problem, a terminal one.
				s.merge.Deposit(g.indices[0], shardUnit{err: fmt.Errorf("dppshard: re-route to %s failed: %w", g.addr, err)})
				continue
			}
			s.pmu.Lock()
			s.dead[g.addr] = true
			alive := s.aliveLocked()
			s.pmu.Unlock()
			if len(alive) == 0 {
				s.merge.Deposit(g.indices[0], shardUnit{err: fmt.Errorf("dppshard: shard %s died with no survivors: %w", g.addr, err)})
				return
			}
			queue = append(queue, regroup(s.files, s.fingerprint, g.indices, alive)...)
			continue
		}
		st2 := &shardState{addr: g.addr, indices: g.indices, sess: rus}
		s.pmu.Lock()
		if s.stopped {
			s.pmu.Unlock()
			rus.Close()
			return
		}
		s.shards = append(s.shards, st2)
		// Safe relative to teardown's Wait: this pump's own wg slot is
		// still held, so neither counter can be at zero here.
		s.wg.Add(1)
		s.pumps.Add(1)
		s.pmu.Unlock()
		go s.runPump(st2)
	}
}

// runMerge consumes deposited units strictly in global file order and
// emits the batch stream, closing out only after the outcome is
// recorded — the same discipline as every other session kind.
func (s *Session) runMerge() {
	defer s.wg.Done()
	err := s.mergeLoop()
	if err == nil {
		// Clean exhaustion: every deposit was consumed, so the pumps are
		// past their last unit and only draining trailing stats frames —
		// a prompt wait that makes Stats complete at io.EOF.
		s.pumps.Wait()
	}
	s.mu.Lock()
	if err != nil && s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.muxStats.Add(s.mux.Stats())
	s.mu.Unlock()
	s.merge.Abort()
	close(s.out)
}

// mergeLoop is the fleet twin of the ShareScans scan loop: files entered
// on a batch boundary pass their shard-cut batches through, files
// entered with carried rows are re-filled locally and cut against the
// carry, and the final short batch is cut from the last tail.
func (s *Session) mergeLoop() error {
	batchSize := s.mux.BatchSize()
	var carry []datagen.Sample
	var keys []string
	var dense int
	checkSchema := func(file string, fileKeys []string) error {
		if keys != nil && len(fileKeys) != len(keys) {
			return fmt.Errorf("dppshard: file %q schema mismatch (%d vs %d features)", file, len(fileKeys), len(keys))
		}
		return nil
	}
	for i := range s.files {
		res, ok := s.merge.Await(i)
		if !ok {
			return s.ctx.Err()
		}
		if res.err != nil {
			return res.err
		}
		scan := res.unit.Scan
		if len(carry) == 0 {
			if err := checkSchema(s.files[i], scan.Keys); err != nil {
				return err
			}
			if keys == nil {
				keys, dense = scan.Keys, scan.Dense
			}
			for _, b := range scan.Batches {
				if err := s.emitOut(b); err != nil {
					return err
				}
			}
			// Copy the tail: the unit may be cache-shared shard-side and
			// the carry slice is appended to below.
			carry = append([]datagen.Sample(nil), scan.Tail...)
			continue
		}
		// Carry-entered file: its batch boundaries depend on the carried
		// rows, so the shard-cut batches cannot be used. Re-fill locally,
		// exactly as the ShareScans misaligned fallback does.
		if s.fleet.backend == nil {
			return fmt.Errorf("dppshard: file %q entered mid-batch but the fleet has no local backend to re-fill it (misaligned spec needs Config.Backend)", s.files[i])
		}
		samples, fileKeys, fileDense, err := s.mux.FillFile(s.ctx, s.files[i])
		if err != nil {
			return err
		}
		if err := checkSchema(s.files[i], fileKeys); err != nil {
			return err
		}
		if keys == nil {
			keys, dense = fileKeys, fileDense
		}
		carry = append(carry, samples...)
		for len(carry) >= batchSize {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			b, err := s.mux.ProduceBatch(carry[:batchSize], keys, dense)
			if err != nil {
				return err
			}
			if err := s.emitOut(b); err != nil {
				return err
			}
			carry = carry[batchSize:]
		}
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if len(carry) > 0 {
		b, err := s.mux.ProduceBatch(carry, keys, dense)
		if err != nil {
			return err
		}
		return s.emitOut(b)
	}
	return nil
}

// emitOut hands one batch to the consumer through the bounded output
// buffer, charging blocked time to the consumer-stall counter.
func (s *Session) emitOut(b *reader.Batch) error {
	select {
	case s.out <- b:
		return nil
	default:
	}
	start := time.Now()
	s.mu.Lock()
	s.consumerStallSince = start
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.consumerStall += time.Since(start)
		s.consumerStallSince = time.Time{}
		s.mu.Unlock()
	}()
	select {
	case s.out <- b:
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// Next returns the fleet stream's next batch — the single-server order,
// whatever the shard count or failover history. The contract matches
// every other session kind: batches until io.EOF, the first error, a
// cancelled ctx, or dpp.ErrClosed.
func (s *Session) Next(ctx context.Context) (*reader.Batch, error) {
	select {
	case b, ok := <-s.out:
		if !ok {
			return nil, s.finish()
		}
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.ctx.Done():
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, dpp.ErrClosed
		}
		return nil, s.ctx.Err()
	}
}

// finish settles the stream outcome once the output has closed.
func (s *Session) finish() error {
	ctxErr := s.ctx.Err()
	s.teardown()
	s.mu.Lock()
	err := s.firstErr
	closed := s.closed
	s.mu.Unlock()
	if err == nil {
		if closed {
			err = dpp.ErrClosed
		} else if ctxErr != nil {
			err = ctxErr
		}
	}
	if err != nil {
		return err
	}
	return io.EOF
}

// teardown stops the pumps and the merge and waits for every session
// goroutine; shard connections close as their pumps exit. Idempotent.
func (s *Session) teardown() {
	s.pmu.Lock()
	s.stopped = true
	s.pmu.Unlock()
	s.cancel()
	s.merge.Abort()
	s.wg.Wait()
}

// Close tears the fleet session down across every shard. Idempotent;
// always returns nil. Batches already returned by Next remain valid.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.teardown()
	return nil
}

// Stats aggregates the fleet session's accounting: every shard's
// trailing stats (decode work, egress, per-shard cache traffic) summed
// with the multiplexer's own local reader work (carry-file re-fills and
// carry-crossing batch cuts). For an aligned cold scan the aggregate
// reader counters equal the single-server session's exactly; shard
// stats are complete once Next has returned io.EOF (a shard killed
// mid-stream loses its trailing frame — its completed work is absent,
// which ShardStats surfaces per shard).
func (s *Session) Stats() dpp.SessionStats {
	var agg dpp.SessionStats
	s.pmu.Lock()
	for _, st := range s.shards {
		if st.statsOK {
			agg.Reader.Add(st.stats.Reader)
			agg.Cache.Hits += st.stats.Cache.Hits
			agg.Cache.Misses += st.stats.Cache.Misses
		}
	}
	agg.Scheduler.Workers = len(s.aliveLocked())
	s.pmu.Unlock()
	agg.Scheduler.WorkerStall = s.merge.Stall()
	s.mu.Lock()
	agg.Reader.Add(s.muxStats)
	agg.Scheduler.ConsumerStall = s.consumerStall
	if !s.consumerStallSince.IsZero() {
		agg.Scheduler.ConsumerStall += time.Since(s.consumerStallSince)
	}
	s.mu.Unlock()
	return agg
}

// ShardStat is one shard stream's view in ShardStats.
type ShardStat struct {
	// Addr is the shard's address; re-routed file sets appear as their
	// own entries (an address can host several streams after failover).
	Addr string
	// Files is the number of files routed to this stream; Served is how
	// many it delivered into the merge.
	Files, Served int
	// Failed marks a stream whose shard died mid-stream. Drained marks a
	// stream whose shard drained gracefully — its unconsumed files were
	// handed off to survivors without a byte lost.
	Failed  bool
	Drained bool
	// Stats is the shard's trailing accounting; valid when StatsOK (the
	// stream completed and delivered its stats frame).
	Stats   dpp.SessionStats
	StatsOK bool
	// Reconnects counts how many times this stream resumed over a new
	// connection under the fleet's resume policy (0 without one).
	Reconnects int64
}

// ShardStats returns the per-shard-stream accounting plus the count of
// shard deaths survived — the fleet-level cache-partitioning evidence
// (each file's decode shows up in exactly one shard's misses) and the
// failover audit trail.
func (s *Session) ShardStats() (stats []ShardStat, reroutes int64) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	out := make([]ShardStat, 0, len(s.shards))
	for _, st := range s.shards {
		out = append(out, ShardStat{
			Addr:       st.addr,
			Files:      len(st.indices),
			Served:     st.served,
			Failed:     st.failed,
			Drained:    st.drained,
			Stats:      st.stats,
			StatsOK:    st.statsOK,
			Reconnects: st.sess.Reconnects(),
		})
	}
	return out, s.reroutes
}

// DrainHandoffs reports how many shard streams this session moved off a
// draining server mid-stream — the soak harness's evidence that a
// SIGTERM'd shard handed its work over instead of erroring.
func (s *Session) DrainHandoffs() int64 {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.drainHandoffs
}
