package dpp_test

import (
	"context"
	"fmt"
	"io"
	"log"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
)

// ExampleService is the service-API replacement for the old callback
// idiom: instead of handing Reader.Run a push callback, a training job
// opens a Session on the shared Service and pulls batches at its own
// pace, closing (or cancelling) when done.
func ExampleService() {
	// Land one small clustered partition in the in-memory store.
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 1, UserElem: 1, Item: 1, Dense: 2, SeqLen: 8, Seed: 1,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 20, MeanSamplesPerSession: 6, Seed: 2,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "clicks", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		log.Fatal(err)
	}

	// One service, shared by every training job in the process.
	svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// A job submits its DataLoader spec and pulls preprocessed batches.
	ctx := context.Background()
	sess, err := svc.Open(ctx, dpp.Spec{
		Spec: reader.Spec{
			Table:               "clicks",
			BatchSize:           32,
			SparseFeatures:      []string{"item_0"},
			DedupSparseFeatures: [][]string{{"user_seq_0"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	batches, rows := 0, 0
	for {
		b, err := sess.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		batches++
		rows += b.Size
	}
	st := sess.Stats()
	fmt.Printf("pulled %d batches, %d rows\n", batches, rows)
	fmt.Printf("rows decoded: %d, batches produced: %d\n", st.Reader.RowsDecoded, st.Reader.BatchesProduced)
	fmt.Printf("exact same data as the partition: %v\n", rows == len(samples))
	// Output:
	// pulled 4 batches, 123 rows
	// rows decoded: 123, batches produced: 4
	// exact same data as the partition: true
}

// ExampleScanCache is cross-session scan sharing end to end: two jobs
// with the same DataLoader spec read the same table, and the second
// decodes nothing — its batches are served from the service's ScanCache,
// byte for byte what an unshared session would have produced.
func ExampleScanCache() {
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 1, UserElem: 1, Item: 1, Dense: 2, SeqLen: 8, Seed: 1,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 20, MeanSamplesPerSession: 6, Seed: 2,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "clicks", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		log.Fatal(err)
	}

	svc, err := dpp.New(dpp.Config{Backend: store, Catalog: catalog})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	spec := dpp.Spec{
		Spec: reader.Spec{
			Table:               "clicks",
			BatchSize:           32,
			SparseFeatures:      []string{"item_0"},
			DedupSparseFeatures: [][]string{{"user_seq_0"}},
		},
		ShareScans: true, // opt into the cross-session ScanCache
	}

	ctx := context.Background()
	for job := 1; job <= 2; job++ {
		sess, err := svc.Open(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		rows := 0
		for {
			b, err := sess.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			rows += b.Size
		}
		st := sess.Stats()
		fmt.Printf("job %d: %d rows pulled, %d decoded, cache hits/misses %d/%d\n",
			job, rows, st.Reader.RowsDecoded, st.Cache.Hits, st.Cache.Misses)
		sess.Close()
	}
	cs := svc.Stats().Cache
	fmt.Printf("service cache: %d entries, %d hits, %d misses\n", cs.Entries, cs.Hits, cs.Misses)
	// Output:
	// job 1: 123 rows pulled, 123 decoded, cache hits/misses 0/2
	// job 2: 123 rows pulled, 0 decoded, cache hits/misses 2/0
	// service cache: 2 entries, 2 hits, 2 misses
}
