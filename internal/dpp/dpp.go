// Package dpp implements the paper's disaggregated Data PreProcessing
// service shape (§2.1): a long-lived Service that many training jobs
// submit DataLoader Specs to, each getting back a Session — a pull-based
// batch iterator — instead of registering a push callback.
//
// A Session plans its table scan across per-session reader workers
// (reader.PlanRoundRobin, the paper's reader-fleet sharding), multiplexes with every
// other session over one shared storage.Backend, buffers at most
// Spec.Buffer decoded batches per worker (backpressure: slow trainers
// stall their own readers, not the service), and tears everything down
// promptly on context cancellation or Close. Batch order is
// deterministic: the stream equals the concatenation of serial
// reader.Run scans over each worker's planned file assignment, so a
// session with Readers == 1 is byte-identical to a direct serial scan.
//
// Sessions may additionally opt into cross-session scan sharing
// (Spec.ShareScans): the Service owns a ScanCache that memoizes decoded,
// deduplicated, preprocessed batches per (file, spec fingerprint) with
// single-flight coalescing and byte-bounded LRU eviction, so N jobs over
// the same data pay for each file's decode once instead of N times —
// without changing any session's batch stream. See docs/ARCHITECTURE.md
// for where this sits in the overall pipeline.
package dpp

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Config wires a Service to its storage tier.
type Config struct {
	// Backend is the shared blob store every session reads through.
	Backend storage.Backend
	// Catalog resolves Spec.Table to its scan set. May be nil if every
	// session supplies an explicit Spec.Files list.
	Catalog storage.Catalog
	// MaxSessions caps concurrently open sessions; 0 means unlimited.
	MaxSessions int
	// ScanCacheBytes bounds the service's cross-session ScanCache, which
	// memoizes decoded batches per (file, spec fingerprint) for sessions
	// that opt in via Spec.ShareScans. 0 picks DefaultScanCacheBytes;
	// negative disables the cache entirely (ShareScans sessions are then
	// rejected at Open).
	ScanCacheBytes int64
}

// DefaultScanCacheBytes is the scan-cache budget used when Config leaves
// ScanCacheBytes zero: large enough to hold a few partitions of decoded
// batches at the reproduction's scales, small enough to stay invisible
// next to a training job's own working set.
const DefaultScanCacheBytes = 256 << 20

// Service hosts concurrent preprocessing sessions over shared storage.
// All methods are safe for concurrent use.
type Service struct {
	backend storage.Backend
	catalog storage.Catalog
	max     int
	// cache memoizes file scans across ShareScans sessions; nil when
	// disabled by Config.ScanCacheBytes < 0.
	cache *ScanCache

	mu       sync.Mutex
	closed   bool
	nextID   int64
	sessions map[int64]*Session
	// reserved counts admissions granted but not yet registered, so the
	// MaxSessions cap holds across concurrent Opens.
	reserved int

	opened        int64
	batchesServed int64
}

// New validates the config and builds an empty service.
func New(cfg Config) (*Service, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("dpp: config needs a storage backend")
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("dpp: negative session cap %d", cfg.MaxSessions)
	}
	var cache *ScanCache
	if cfg.ScanCacheBytes >= 0 {
		budget := cfg.ScanCacheBytes
		if budget == 0 {
			budget = DefaultScanCacheBytes
		}
		cache = NewScanCache(budget)
	}
	return &Service{
		backend:  cfg.Backend,
		catalog:  cfg.Catalog,
		max:      cfg.MaxSessions,
		cache:    cache,
		sessions: make(map[int64]*Session),
	}, nil
}

// ScanCache returns the service's cross-session scan cache, or nil when
// disabled. Exposed for operational introspection (hit ratios, resident
// entries); sessions use it automatically via Spec.ShareScans.
func (s *Service) ScanCache() *ScanCache { return s.cache }

// Stats is a snapshot of service-level accounting.
type Stats struct {
	// SessionsOpened counts every session ever opened.
	SessionsOpened int64
	// ActiveSessions counts sessions currently open.
	ActiveSessions int
	// BatchesServed counts batches handed out across all sessions.
	BatchesServed int64
	// Cache is the cross-session scan cache's aggregate accounting;
	// zero-valued when the cache is disabled.
	Cache ScanCacheStats
}

// Stats returns a snapshot of the service accounting.
func (s *Service) Stats() Stats {
	var cache ScanCacheStats
	if s.cache != nil {
		cache = s.cache.Stats()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		SessionsOpened: s.opened,
		ActiveSessions: len(s.sessions),
		BatchesServed:  s.batchesServed,
		Cache:          cache,
	}
}

// Open admits a new session for one training job. The session's scan is
// planned immediately and its reader workers start filling their bounded
// buffers right away. Cancelling ctx — the job's context — tears the
// session down as if Close had been called; the service's other sessions
// are unaffected.
func (s *Service) Open(ctx context.Context, spec Spec) (*Session, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	files := spec.Files
	if files == nil {
		if s.catalog == nil {
			return nil, fmt.Errorf("dpp: service has no catalog and spec %q names no files", spec.Table)
		}
		var err error
		files, err = s.catalog.AllFiles(spec.Table)
		if err != nil {
			return nil, err
		}
	}

	// Reserve an admission slot atomically with the cap/closed checks,
	// register under the same lock once the session exists, and give the
	// slot back on any failure — concurrent Opens cannot overshoot the
	// cap and a racing Close cannot strand a live session.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("dpp: service closed")
	}
	if s.max > 0 && len(s.sessions)+s.reserved >= s.max {
		s.mu.Unlock()
		return nil, fmt.Errorf("dpp: session cap %d reached", s.max)
	}
	s.reserved++
	s.nextID++
	id := s.nextID
	s.mu.Unlock()

	sess, err := newSession(ctx, s, id, spec, files)
	s.mu.Lock()
	s.reserved--
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if s.closed {
		s.mu.Unlock()
		sess.Close()
		return nil, fmt.Errorf("dpp: service closed")
	}
	s.sessions[id] = sess
	s.opened++
	s.mu.Unlock()
	return sess, nil
}

// Close shuts the service down, cancelling every open session and
// rejecting future Opens. Safe to call more than once.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	open := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	for _, sess := range open {
		sess.Close()
	}
	return nil
}

func (s *Service) noteBatch() {
	s.mu.Lock()
	s.batchesServed++
	s.mu.Unlock()
}

func (s *Service) forget(id int64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}
