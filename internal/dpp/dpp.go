// Package dpp implements the paper's disaggregated Data PreProcessing
// service shape (§2.1): a long-lived Service that many training jobs
// submit DataLoader Specs to, each getting back a Session — a pull-based
// batch iterator — instead of registering a push callback.
//
// A Session executes its table scan through a shared ordered work queue
// (reader.ScanQueue): fill workers claim file indices and decode them in
// parallel, and an ordered merge reassembles the batch stream,
// multiplexing with every other session over one shared storage.Backend.
// Sessions buffer at most Readers×Buffer decoded batches ahead of the
// consumer (backpressure: slow trainers stall their own readers, not the
// service) and tear everything down promptly on context cancellation or
// Close. Batch order is deterministic and worker-count independent: the
// stream is byte-identical to one serial reader.Run over the whole scan
// set at every pool size and across every resize history — which is what
// lets the service resize pools live. With Config.AutoScale set, a
// per-session AutoScaler closes the paper's reader-scaling loop from the
// session's observed worker/consumer starvation.
//
// Sessions may additionally opt into cross-session scan sharing
// (Spec.ShareScans): the Service owns a ScanCache that memoizes decoded,
// deduplicated, preprocessed batches per (file, spec fingerprint) with
// single-flight coalescing and byte-bounded LRU eviction, so N jobs over
// the same data pay for each file's decode once instead of N times —
// without changing any session's batch stream. See docs/ARCHITECTURE.md
// for where this sits in the overall pipeline.
package dpp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// Config wires a Service to its storage tier.
type Config struct {
	// Backend is the shared blob store every session reads through.
	Backend storage.Backend
	// Catalog resolves Spec.Table to its scan set. May be nil if every
	// session supplies an explicit Spec.Files list.
	Catalog storage.Catalog
	// MaxSessions caps concurrently open sessions; 0 means unlimited.
	MaxSessions int
	// ScanCacheBytes bounds the service's cross-session ScanCache, which
	// memoizes decoded batches per (file, spec fingerprint) for sessions
	// that opt in via Spec.ShareScans. 0 picks DefaultScanCacheBytes;
	// negative disables the cache entirely (ShareScans sessions are then
	// rejected at Open).
	ScanCacheBytes int64
	// AutoScale, when non-nil, attaches a per-session AutoScaler to every
	// queue-backed session (ShareScans sessions run a single scan loop
	// and are exempt): the service resizes each session's worker pool
	// within [MinReaders, MaxReaders] from its observed worker/consumer
	// starvation. Nil keeps every pool at its Spec.Readers size.
	AutoScale *AutoScalerConfig
	// Arbiter, when non-nil (and AutoScale is set), turns each
	// AutoScaler from the final allocator into a bid source: sessions
	// register with the arbiter under their Spec.Tenant, and every
	// resize the controller proposes is routed through WorkerArbiter.Bid
	// so one budget can be fair-shared across all sessions — and, when
	// the same arbiter is wired into several services, across a whole
	// process. front.NewGovernor builds the standard implementation.
	Arbiter WorkerArbiter
	// Clock stamps the sessions' stall accounting and drives AutoScaler
	// ticks. Nil uses the wall clock; tests inject a manual-advance clock
	// for reproducible controller decisions.
	Clock Clock
}

// DefaultScanCacheBytes is the scan-cache budget used when Config leaves
// ScanCacheBytes zero: large enough to hold a few partitions of decoded
// batches at the reproduction's scales, small enough to stay invisible
// next to a training job's own working set.
const DefaultScanCacheBytes = 256 << 20

// Service hosts concurrent preprocessing sessions over shared storage.
// All methods are safe for concurrent use.
type Service struct {
	backend storage.Backend
	catalog storage.Catalog
	max     int
	// cache memoizes file scans across ShareScans sessions; nil when
	// disabled by Config.ScanCacheBytes < 0.
	cache *ScanCache
	// rawCache is the backend's raw-blob tier when the backend is a
	// storage.CachingBackend, else nil. Held so the decoded tier can
	// demote a file's raw bytes once its scan is resident — one file,
	// one tier (the double-caching fix).
	rawCache *storage.CachingBackend
	// autoscale, when non-nil, is the defaulted controller config every
	// queue-backed session gets an AutoScaler from.
	autoscale *AutoScalerConfig
	// arbiter, when non-nil, fair-shares a worker budget across the
	// autoscaled sessions (Config.Arbiter).
	arbiter WorkerArbiter
	clock   Clock

	mu       sync.Mutex
	closed   bool
	nextID   int64
	sessions map[int64]*Session
	// unitSessions are the open file-unit sessions (fleet shards); they
	// share the MaxSessions cap with batch sessions.
	unitSessions map[int64]*UnitSession
	// reserved counts admissions granted but not yet registered, so the
	// MaxSessions cap holds across concurrent Opens.
	reserved int

	// Service-level accounting, kept as internal/metrics counters so the
	// hot paths (noteBatch on every served batch, noteScale on every
	// resize) never touch mu and an observability scraper reads them
	// without test hooks. The stall counters accumulate retired sessions'
	// final worker/consumer starvation; Stats folds live sessions in.
	opened          metrics.Counter
	batchesServed   metrics.Counter
	scaleUps        metrics.Counter
	scaleDowns      metrics.Counter
	sessionErrors   metrics.Counter
	workerStallNS   metrics.Counter
	consumerStallNS metrics.Counter
	followExtended  metrics.Counter
}

// New validates the config and builds an empty service.
func New(cfg Config) (*Service, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("dpp: config needs a storage backend")
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("dpp: negative session cap %d", cfg.MaxSessions)
	}
	var cache *ScanCache
	if cfg.ScanCacheBytes >= 0 {
		budget := cfg.ScanCacheBytes
		if budget == 0 {
			budget = DefaultScanCacheBytes
		}
		cache = NewScanCache(budget)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = systemClock{}
	}
	var autoscale *AutoScalerConfig
	if cfg.AutoScale != nil {
		ac := *cfg.AutoScale
		if ac.Clock == nil {
			ac.Clock = clock
		}
		ac = ac.withDefaults()
		if err := ac.validate(); err != nil {
			return nil, err
		}
		autoscale = &ac
	}
	svc := &Service{
		backend:      cfg.Backend,
		catalog:      cfg.Catalog,
		max:          cfg.MaxSessions,
		cache:        cache,
		autoscale:    autoscale,
		arbiter:      cfg.Arbiter,
		clock:        clock,
		sessions:     make(map[int64]*Session),
		unitSessions: make(map[int64]*UnitSession),
	}
	if cb, ok := cfg.Backend.(*storage.CachingBackend); ok {
		svc.rawCache = cb
	}

	// Cache coherence with retention: when the catalog announces dropped
	// files, evict them from the decoded tier and — if the backend is the
	// caching tier — from the raw-blob tier too. Without this, a warm
	// service keeps serving decoded batches for data retention already
	// destroyed (the stale-cache-after-retention bug).
	if notifier, ok := cfg.Catalog.(storage.InvalidationNotifier); ok {
		scans := svc.cache
		blobs := svc.rawCache
		if scans != nil || blobs != nil {
			notifier.OnInvalidate(func(paths []string) {
				if scans != nil {
					scans.InvalidateFiles(paths)
				}
				if blobs != nil {
					blobs.InvalidateFiles(paths)
				}
			})
		}
	}
	return svc, nil
}

// demoteRaw releases file's raw bytes from the caching backend once its
// decoded scan is resident in the ScanCache: the decoded form is the one
// sessions reuse, and holding both would charge the same file to two
// byte budgets. A scan that was computed but not retained (oversized,
// doomed) keeps its raw bytes cached — the next decode still wants them.
func (s *Service) demoteRaw(file, fingerprint string) {
	if s.rawCache == nil || s.cache == nil {
		return
	}
	if s.cache.Contains(file, fingerprint) {
		s.rawCache.Demote(file)
	}
}

// ScanCache returns the service's cross-session scan cache, or nil when
// disabled. Exposed for operational introspection (hit ratios, resident
// entries); sessions use it automatically via Spec.ShareScans.
func (s *Service) ScanCache() *ScanCache { return s.cache }

// Stats is a snapshot of service-level accounting.
type Stats struct {
	// SessionsOpened counts every session ever opened.
	SessionsOpened int64
	// ActiveSessions counts sessions currently open.
	ActiveSessions int
	// BatchesServed counts batches handed out across all sessions.
	BatchesServed int64
	// SessionErrors counts sessions that ended with a reader or scan
	// error (clean EOFs and client-initiated closes are not errors).
	SessionErrors int64
	// Cache is the cross-session scan cache's aggregate accounting;
	// zero-valued when the cache is disabled.
	Cache ScanCacheStats
	// Scheduler aggregates worker-pool resizes across every session —
	// the service-level view of autoscaling activity (sessions resized
	// directly via Session.Resize count too).
	Scheduler ServiceSchedulerStats
	// Follow is the live-tail activity: open Follow sessions, their
	// observed-but-unmerged backlog, and the files extended into their
	// plans since the service started.
	Follow FollowStats
}

// FollowStats is the service-wide view of live tailing.
type FollowStats struct {
	// Sessions counts currently open Follow sessions.
	Sessions int
	// LagFiles sums, over open Follow sessions, files observed from the
	// catalog but not yet merged into the session's stream.
	LagFiles int
	// ExtendedFiles counts files extended into Follow scan plans since
	// the service started (monotone).
	ExtendedFiles int64
}

// ServiceSchedulerStats is the service-wide scaling activity.
type ServiceSchedulerStats struct {
	// ScaleUps and ScaleDowns count pool resizes across all sessions.
	ScaleUps, ScaleDowns int64
	// WorkerStall and ConsumerStall aggregate every session's starvation
	// telemetry — retired sessions' final counters plus live sessions'
	// current ones — so the controller's input signal is observable
	// service-wide (an operator's /metrics view of why pools resize),
	// not only per session in tests. Timing telemetry, not part of the
	// deterministic contract.
	WorkerStall, ConsumerStall time.Duration
}

// Stats returns a snapshot of the service accounting. The stall fields
// mix retired-session totals with live-session reads taken after the
// session list is snapshotted, so they are approximate at any instant
// (exact once the service is quiescent); every other counter is exact.
func (s *Service) Stats() Stats {
	var cache ScanCacheStats
	if s.cache != nil {
		cache = s.cache.Stats()
	}
	s.mu.Lock()
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	liveUnits := make([]*UnitSession, 0, len(s.unitSessions))
	for _, u := range s.unitSessions {
		liveUnits = append(liveUnits, u)
	}
	active := len(s.sessions) + len(s.unitSessions)
	s.mu.Unlock()

	sched := ServiceSchedulerStats{
		ScaleUps:      s.scaleUps.Value(),
		ScaleDowns:    s.scaleDowns.Value(),
		WorkerStall:   time.Duration(s.workerStallNS.Value()),
		ConsumerStall: time.Duration(s.consumerStallNS.Value()),
	}
	follow := FollowStats{ExtendedFiles: s.followExtended.Value()}
	for _, sess := range live {
		st := sess.SchedulerStats()
		sched.WorkerStall += st.WorkerStall
		sched.ConsumerStall += st.ConsumerStall
		if sess.Following() {
			follow.Sessions++
			follow.LagFiles += sess.FollowLag()
		}
	}
	for _, u := range liveUnits {
		st := u.Stats().Scheduler
		sched.WorkerStall += st.WorkerStall
		sched.ConsumerStall += st.ConsumerStall
	}

	return Stats{
		SessionsOpened: s.opened.Value(),
		ActiveSessions: active,
		BatchesServed:  s.batchesServed.Value(),
		SessionErrors:  s.sessionErrors.Value(),
		Cache:          cache,
		Scheduler:      sched,
		Follow:         follow,
	}
}

// Open admits a new session for one training job. The session's scan is
// planned immediately and its reader workers start filling their bounded
// buffers right away. Cancelling ctx — the job's context — tears the
// session down as if Close had been called; the service's other sessions
// are unaffected.
func (s *Service) Open(ctx context.Context, spec Spec) (*Session, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	files := spec.Files
	var tail *tailState
	if spec.Follow {
		// A Follow session plans over the publish-order snapshot (landed
		// order, robust to retention shifting the hour-ordered view) and
		// remembers the generation and last publish sequence it saw; the
		// tailer resumes from exactly there. Generation is read before the
		// snapshot so a landing racing Open is observed by the snapshot or
		// by the first WaitChange — never missed.
		tc, ok := s.catalog.(storage.TailingCatalog)
		if !ok {
			return nil, fmt.Errorf("dpp: spec requests Follow but the service catalog cannot tail")
		}
		gen := tc.Generation()
		pubs, err := tc.PublishedFiles(spec.Table, 0)
		if err != nil {
			return nil, err
		}
		files = make([]string, len(pubs))
		var cursor uint64
		for i, p := range pubs {
			files[i] = p.Path
			cursor = p.Seq
		}
		tail = &tailState{catalog: tc, gen: gen, cursor: cursor}
	} else if files == nil {
		if s.catalog == nil {
			return nil, fmt.Errorf("dpp: service has no catalog and spec %q names no files", spec.Table)
		}
		var err error
		files, err = s.catalog.AllFiles(spec.Table)
		if err != nil {
			return nil, err
		}
	}

	// Reserve an admission slot atomically with the cap/closed checks,
	// register under the same lock once the session exists, and give the
	// slot back on any failure — concurrent Opens cannot overshoot the
	// cap and a racing Close cannot strand a live session.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("dpp: service closed")
	}
	if s.max > 0 && len(s.sessions)+len(s.unitSessions)+s.reserved >= s.max {
		s.mu.Unlock()
		return nil, fmt.Errorf("dpp: session cap %d reached", s.max)
	}
	s.reserved++
	s.nextID++
	id := s.nextID
	s.mu.Unlock()

	sess, err := newSession(ctx, s, id, spec, files, tail)
	s.mu.Lock()
	s.reserved--
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if s.closed {
		s.mu.Unlock()
		sess.Close()
		return nil, fmt.Errorf("dpp: service closed")
	}
	s.sessions[id] = sess
	s.opened.Inc()
	s.mu.Unlock()
	return sess, nil
}

// Close shuts the service down, cancelling every open session and
// rejecting future Opens. Safe to call more than once.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	open := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	openUnits := make([]*UnitSession, 0, len(s.unitSessions))
	for _, u := range s.unitSessions {
		openUnits = append(openUnits, u)
	}
	s.mu.Unlock()
	for _, sess := range open {
		sess.Close()
	}
	for _, u := range openUnits {
		u.Close()
	}
	return nil
}

func (s *Service) noteBatch() { s.batchesServed.Inc() }

// noteExtend counts files extended into Follow sessions' scan plans.
func (s *Service) noteExtend(n int) { s.followExtended.Add(int64(n)) }

func (s *Service) noteScale(up bool) {
	if up {
		s.scaleUps.Inc()
	} else {
		s.scaleDowns.Inc()
	}
}

// retire removes a finished session and folds its final scheduling
// telemetry into the service-wide counters, so stall accounting survives
// the session it was measured on. Called exactly once per session (the
// release path guards it).
func (s *Service) retire(id int64, sched SchedulerStats, errored bool) {
	s.workerStallNS.Add(int64(sched.WorkerStall))
	s.consumerStallNS.Add(int64(sched.ConsumerStall))
	if errored {
		s.sessionErrors.Inc()
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

func (s *Service) retireUnit(id int64, sched SchedulerStats, errored bool) {
	s.workerStallNS.Add(int64(sched.WorkerStall))
	s.consumerStallNS.Add(int64(sched.ConsumerStall))
	if errored {
		s.sessionErrors.Inc()
	}
	s.mu.Lock()
	delete(s.unitSessions, id)
	s.mu.Unlock()
}
