package dpp_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/dpp"
	"repro/internal/testutil"
)

// fakeTarget is a scriptable ScaleTarget: the test sets the stall
// counters, the controller resizes a plain integer.
type fakeTarget struct {
	workers                    int
	workerStall, consumerStall time.Duration
	resizes                    []int
}

func (f *fakeTarget) SchedulerStats() dpp.SchedulerStats {
	return dpp.SchedulerStats{
		Workers:       f.workers,
		WorkerStall:   f.workerStall,
		ConsumerStall: f.consumerStall,
	}
}

func (f *fakeTarget) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	f.workers = n
	f.resizes = append(f.resizes, n)
	return n
}

// TestAutoScalerDecisions pins the controller's decision table on a
// scripted stall trace — fully deterministic, no clocks, no goroutines:
// worker starvation scales up one step, consumer starvation scales down
// one step, balanced or sub-threshold stalls hold, and [Min, Max] bound
// everything including an out-of-range starting pool.
func TestAutoScalerDecisions(t *testing.T) {
	tgt := &fakeTarget{workers: 2}
	as, err := dpp.NewAutoScaler(tgt, dpp.AutoScalerConfig{
		MinReaders: 1, MaxReaders: 4,
		Interval:  10 * time.Millisecond,
		Threshold: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	step := func(wantWorkers int, wantResized bool) {
		t.Helper()
		got, resized := as.Step()
		if got != wantWorkers || resized != wantResized {
			t.Fatalf("Step = (%d, %v), want (%d, %v)", got, resized, wantWorkers, wantResized)
		}
	}

	// No stall at all: hold.
	step(2, false)

	// Worker stall dominates: up one step per interval until Max.
	tgt.workerStall += 5 * time.Millisecond
	step(3, true)
	tgt.workerStall += 5 * time.Millisecond
	step(4, true)
	tgt.workerStall += 5 * time.Millisecond
	step(4, false) // pinned at MaxReaders

	// Consumer stall dominates: down one step per interval until Min.
	tgt.consumerStall += 20 * time.Millisecond
	step(3, true)
	tgt.consumerStall += 20 * time.Millisecond
	step(2, true)
	tgt.consumerStall += 20 * time.Millisecond
	step(1, true)
	tgt.consumerStall += 20 * time.Millisecond
	step(1, false) // pinned at MinReaders

	// Balanced stalls (neither dominates 2x): hold.
	tgt.workerStall += 10 * time.Millisecond
	tgt.consumerStall += 10 * time.Millisecond
	step(1, false)

	// Dominant but sub-threshold stall: hold (hysteresis).
	tgt.workerStall += 500 * time.Microsecond
	step(1, false)
	// The sub-threshold delta is consumed, not banked: repeating it still
	// holds rather than accumulating into a trigger.
	tgt.workerStall += 500 * time.Microsecond
	step(1, false)

	// A pool outside the bounds is clamped before anything else.
	tgt.workers = 9
	step(4, true)
	if got := tgt.resizes[len(tgt.resizes)-1]; got != 4 {
		t.Fatalf("clamp resized to %d, want 4", got)
	}
}

// TestAutoScalerRunOnFakeClock drives Run on a manual-advance clock: each
// Advance(interval) fires exactly one decision, so the resize sequence is
// reproducible without a single time.Sleep.
func TestAutoScalerRunOnFakeClock(t *testing.T) {
	clock := testutil.NewClock(time.Unix(0, 0))
	tgt := &fakeTarget{workers: 1}
	const interval = 10 * time.Millisecond
	as, err := dpp.NewAutoScaler(tgt, dpp.AutoScalerConfig{
		MinReaders: 1, MaxReaders: 3,
		Interval:  interval,
		Threshold: time.Millisecond,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		as.Run(ctx)
	}()

	// Each round: wait for Run to arm its tick, script the stalls, fire
	// the tick, and wait for the decision to land (Run re-arms only after
	// Step returns). Note Run reads the fake target without locks — safe
	// here because BlockUntilWaiters strictly alternates test writes with
	// controller reads.
	tick := func() {
		t.Helper()
		clock.BlockUntilWaiters(t, 1)
		clock.Advance(interval)
		testutil.Eventually(t, func() bool { return clock.Waiters() == 1 || ctx.Err() != nil },
			"controller finished its step")
	}

	clock.BlockUntilWaiters(t, 1)
	tgt.workerStall = 8 * time.Millisecond
	tick() // 1 → 2
	tgt.workerStall = 16 * time.Millisecond
	tick() // 2 → 3
	tick() // hold: no new stall this interval
	tgt.consumerStall = 40 * time.Millisecond
	tick() // 3 → 2

	cancel()
	<-done
	want := []int{2, 3, 2}
	if len(tgt.resizes) != len(want) {
		t.Fatalf("resize sequence %v, want %v", tgt.resizes, want)
	}
	for i := range want {
		if tgt.resizes[i] != want[i] {
			t.Fatalf("resize sequence %v, want %v", tgt.resizes, want)
		}
	}
}

// TestAutoScalerConfigValidation: nonsense bounds are rejected up front.
func TestAutoScalerConfigValidation(t *testing.T) {
	tgt := &fakeTarget{workers: 1}
	if _, err := dpp.NewAutoScaler(tgt, dpp.AutoScalerConfig{MinReaders: 4, MaxReaders: 2}); err == nil {
		t.Fatal("expected error for Max < Min")
	}
	if _, err := dpp.NewAutoScaler(tgt, dpp.AutoScalerConfig{MinReaders: -1}); err == nil {
		t.Fatal("expected error for negative Min")
	}
	if _, err := dpp.NewAutoScaler(tgt, dpp.AutoScalerConfig{Interval: -time.Second}); err == nil {
		t.Fatal("expected error for negative interval")
	}
	as, err := dpp.NewAutoScaler(tgt, dpp.AutoScalerConfig{})
	if err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	if w, resized := as.Step(); w != 1 || resized {
		t.Fatalf("idle Step on defaults = (%d, %v), want (1, false)", w, resized)
	}
}
