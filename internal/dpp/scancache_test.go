package dpp_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/reader"
)

// fakeScan builds a FileScan whose MemBytes is deterministic: tail-only
// samples with no feature payloads cost a fixed struct overhead each.
func fakeScan(tailRows int) *reader.FileScan {
	return &reader.FileScan{Tail: make([]datagen.Sample, tailRows)}
}

func mustGet(t *testing.T, c *dpp.ScanCache, file, fp string, scan *reader.FileScan) bool {
	t.Helper()
	_, hit, err := c.Get(context.Background(), file, fp, func(context.Context) (*reader.FileScan, error) {
		return scan, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hit
}

// TestScanCacheEvictionOrder fills the cache past its byte budget and
// asserts least-recently-used entries leave first — with a recency
// refresh flipping the victim.
func TestScanCacheEvictionOrder(t *testing.T) {
	unit := fakeScan(2).MemBytes() // cost of one two-row entry
	c := dpp.NewScanCache(3 * unit)

	const fp = "spec-v1"
	if hit := mustGet(t, c, "a", fp, fakeScan(2)); hit {
		t.Fatal("first insert reported a hit")
	}
	mustGet(t, c, "b", fp, fakeScan(2))
	mustGet(t, c, "c", fp, fakeScan(2))
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 3 || st.Bytes != 3*unit {
		t.Fatalf("pre-pressure stats %+v", st)
	}

	// Refresh a: the LRU victim is now b.
	if hit := mustGet(t, c, "a", fp, nil); !hit {
		t.Fatal("a should be resident")
	}
	mustGet(t, c, "d", fp, fakeScan(2)) // over budget: evicts b
	if c.Contains("b", fp) {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, f := range []string{"a", "c", "d"} {
		if !c.Contains(f, fp) {
			t.Fatalf("%s should be resident", f)
		}
	}
	mustGet(t, c, "e", fp, fakeScan(2)) // evicts c (a was refreshed, d/e newer)
	if c.Contains("c", fp) {
		t.Fatal("c should have been evicted after b")
	}
	if !c.Contains("a", fp) {
		t.Fatal("refreshed a should have outlived b and c")
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Entries != 3 || st.Bytes != 3*unit {
		t.Fatalf("post-pressure stats %+v", st)
	}

	// Entries() reports recency order: most recent first.
	entries := c.Entries()
	if len(entries) != 3 || entries[0].File != "e" || entries[2].File != "a" {
		t.Fatalf("recency order %+v", entries)
	}

	// An entry exceeding the whole budget is served but not retained.
	if hit := mustGet(t, c, "huge", fp, fakeScan(100)); hit {
		t.Fatal("oversized entry cannot hit")
	}
	if c.Contains("huge", fp) {
		t.Fatal("oversized entry should not be resident")
	}

	// The fingerprint is half the key: same file, different spec = miss.
	if hit := mustGet(t, c, "a", "spec-v2", fakeScan(2)); hit {
		t.Fatal("different fingerprint must not share entries")
	}
}

// TestScanCacheSingleFlight: concurrent Gets of one missing key share a
// single compute call.
func TestScanCacheSingleFlight(t *testing.T) {
	c := dpp.NewScanCache(1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := c.Get(context.Background(), "f", "fp", func(context.Context) (*reader.FileScan, error) {
				computes.Add(1)
				<-release // hold every other caller in the coalesced wait
				return fakeScan(1), nil
			})
			if err != nil {
				t.Error(err)
			}
			hits[i] = hit
		}(i)
	}
	// Let the leader win the key and the rest pile up behind it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times for %d concurrent callers", n, callers)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats %+v, want 1 miss %d hits", st, callers-1)
	}
	nHits := 0
	for _, h := range hits {
		if h {
			nHits++
		}
	}
	if nHits != callers-1 {
		t.Fatalf("%d callers reported hits, want %d", nHits, callers-1)
	}
}

// TestScanCacheLeaderFailureDoesNotPoison: a failed compute propagates to
// its caller only; waiters (and later callers) retry and succeed.
func TestScanCacheLeaderFailureDoesNotPoison(t *testing.T) {
	c := dpp.NewScanCache(1 << 20)
	boom := errors.New("decode failed")
	var calls atomic.Int64

	_, _, err := c.Get(context.Background(), "f", "fp", func(context.Context) (*reader.FileScan, error) {
		calls.Add(1)
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	if c.Contains("f", "fp") {
		t.Fatal("failed entry must not be cached")
	}
	scan, hit, err := c.Get(context.Background(), "f", "fp", func(context.Context) (*reader.FileScan, error) {
		calls.Add(1)
		return fakeScan(1), nil
	})
	if err != nil || hit || scan == nil {
		t.Fatalf("retry: scan=%v hit=%v err=%v", scan, hit, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("computed %d times, want 2", calls.Load())
	}
}

// TestScanCacheWaiterCancellation: a caller blocked on another caller's
// compute honours its own context.
func TestScanCacheWaiterCancellation(t *testing.T) {
	c := dpp.NewScanCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go func() {
		c.Get(context.Background(), "f", "fp", func(context.Context) (*reader.FileScan, error) {
			close(started)
			<-release
			return fakeScan(1), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, "f", "fp", func(context.Context) (*reader.FileScan, error) {
			return nil, fmt.Errorf("waiter must not compute")
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}
