package dpp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/reader"
)

// FileUnit is one file's complete decoded scan, the unit a preprocessing
// shard serves to the fleet multiplexer (dppshard): the file's complete
// batches plus its carry-out tail rows, exactly the ScanCache's unit of
// sharing. Shipping whole file-aligned units instead of a batch stream
// is what lets the client-side merge reassemble the global file order
// byte-identically — batch boundaries that cross file boundaries are cut
// client-side from the tails, so they never depend on how files were
// split across shards.
type FileUnit struct {
	// Index is the file's position in the session's own file list (the
	// shard's subset, not the fleet's global order — the mux owns that
	// mapping).
	Index int
	// File is the file's path.
	File string
	// Scan is the decoded unit. Cache-hit units are shared and must be
	// treated as read-only, which FileUnit consumers already must: units
	// never alias producer state.
	Scan *reader.FileScan
	// Hit reports whether the unit was served from the service's
	// cross-session ScanCache rather than decoded for this session.
	Hit bool
}

// UnitSession is a session that yields whole decoded files in file-list
// order instead of a batch stream — the serving half of a fleet shard.
// NextUnit and Close may be called from different goroutines, but
// NextUnit itself is single-consumer.
//
// Internally a non-ShareScans unit session runs Spec.Readers scan
// workers over the same ordered-merge discipline a batch session's fill
// pool uses (reader.OrderedMerge): workers claim file indices, decode
// whole files in parallel, and a single merge emits them strictly in
// order. A ShareScans unit session runs a single loop through the
// service's ScanCache — the cache is its cross-session parallelism —
// exactly as a ShareScans batch session does.
type UnitSession struct {
	svc    *Service
	id     int64
	cancel context.CancelFunc
	ctx    context.Context
	spec   Spec
	files  []string

	// out is the bounded unit buffer between the merge and NextUnit;
	// units are whole decoded files, so the bound is Spec.Buffer alone
	// (not Readers×Buffer — the merge window already scales the
	// in-flight decode bound with the worker count).
	out   chan *FileUnit
	merge *reader.OrderedMerge[unitResult] // nil for ShareScans sessions
	wg    sync.WaitGroup

	mu       sync.Mutex
	stats    reader.Stats
	cache    SessionCacheStats
	firstErr error
	closed   bool
	done     bool
}

// unitResult is one decoded file handed from a scan worker to the merge.
type unitResult struct {
	scan *reader.FileScan
	err  error
}

// OpenUnits admits a file-unit session under the same MaxSessions cap,
// catalog resolution, and teardown rules as Open. It is the server-side
// entry point for fleet shards (dppnet's file-unit mode); training jobs
// consume batch sessions, not unit sessions.
func (s *Service) OpenUnits(ctx context.Context, spec Spec) (*UnitSession, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	files := spec.Files
	if files == nil {
		if s.catalog == nil {
			return nil, fmt.Errorf("dpp: service has no catalog and spec %q names no files", spec.Table)
		}
		var err error
		files, err = s.catalog.AllFiles(spec.Table)
		if err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("dpp: service closed")
	}
	if s.max > 0 && len(s.sessions)+len(s.unitSessions)+s.reserved >= s.max {
		s.mu.Unlock()
		return nil, fmt.Errorf("dpp: session cap %d reached", s.max)
	}
	s.reserved++
	s.nextID++
	id := s.nextID
	s.mu.Unlock()

	u, err := newUnitSession(ctx, s, id, spec, files)
	s.mu.Lock()
	s.reserved--
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if s.closed {
		s.mu.Unlock()
		u.Close()
		return nil, fmt.Errorf("dpp: service closed")
	}
	s.unitSessions[id] = u
	s.opened.Inc()
	s.mu.Unlock()
	return u, nil
}

// newUnitSession starts the scan workers and the unit merge. Workers
// begin decoding immediately; nothing blocks on OpenUnits.
func newUnitSession(ctx context.Context, svc *Service, id int64, spec Spec, files []string) (*UnitSession, error) {
	if spec.ShareScans && svc.cache == nil {
		return nil, fmt.Errorf("dpp: spec requests ShareScans but the service's scan cache is disabled")
	}
	sctx, cancel := context.WithCancel(ctx)
	u := &UnitSession{
		svc:    svc,
		id:     id,
		cancel: cancel,
		ctx:    sctx,
		spec:   spec,
		files:  files,
		out:    make(chan *FileUnit, spec.Buffer),
	}

	if spec.ShareScans {
		r, err := reader.NewReader(svc.backend, spec.Spec)
		if err != nil {
			cancel()
			return nil, err
		}
		u.wg.Add(1)
		go u.runSharedUnits(r, spec.Spec.Fingerprint())
		return u, nil
	}

	u.merge = reader.NewOrderedMerge[unitResult](len(files), queueWindow(spec, spec.Readers), svc.clock.Now)

	// The merge blocks on condition variables, not channels; this watcher
	// translates context teardown into an Abort that wakes every parked
	// worker, exactly as the batch session's queue watcher does.
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		<-u.ctx.Done()
		u.merge.Abort()
	}()

	for i := 0; i < spec.Readers; i++ {
		r, err := reader.NewReader(svc.backend, spec.Spec)
		if err != nil {
			cancel()
			u.merge.Abort()
			return nil, err
		}
		u.wg.Add(1)
		go u.runUnitWorker(r)
	}

	u.wg.Add(1)
	go u.runUnitMerge()
	return u, nil
}

// runUnitWorker drives one scan worker: claim file indices, decode whole
// files, deposit the scans. Decode work charges this worker's reader;
// the session sums its workers at exit, so a cold aligned unit session's
// counters equal the serial reference's for its file subset.
func (u *UnitSession) runUnitWorker(r *reader.Reader) {
	defer u.wg.Done()
	for {
		idx, ok := u.merge.Claim()
		if !ok {
			break
		}
		scan, err := r.ScanFile(u.ctx, u.files[idx])
		u.merge.Deposit(idx, unitResult{scan: scan, err: err})
		if err != nil {
			break
		}
	}
	u.mu.Lock()
	u.stats.Add(r.Stats())
	u.mu.Unlock()
}

// runUnitMerge emits deposited scans strictly in file-list order. The
// out channel is closed only after the outcome is recorded, so a
// consumer that observes the close also observes the outcome; the
// trailing Abort wakes workers parked on a full window.
func (u *UnitSession) runUnitMerge() {
	defer u.wg.Done()
	var keys []string
	var firstErr error
	for i := range u.files {
		res, ok := u.merge.Await(i)
		if !ok {
			break // aborted: teardown owns the outcome
		}
		if res.err != nil {
			firstErr = res.err
			break
		}
		if keys != nil && len(res.scan.Keys) != len(keys) {
			firstErr = fmt.Errorf("dpp: file %q schema mismatch (%d vs %d features)", u.files[i], len(res.scan.Keys), len(keys))
			break
		}
		keys = res.scan.Keys
		if err := u.emitUnit(&FileUnit{Index: i, File: u.files[i], Scan: res.scan}); err != nil {
			break // context teardown; outcome handled below
		}
	}
	u.settle(firstErr)
	u.merge.Abort()
	close(u.out)
}

// runSharedUnits is the ShareScans twin of runUnitMerge: one loop, every
// aligned unit through the service's cross-session ScanCache. Cache-hit
// units charge egress (BatchesProduced, SentBytes) but no decode work —
// the same accounting contract as a ShareScans batch session.
func (u *UnitSession) runSharedUnits(r *reader.Reader, fingerprint string) {
	defer u.wg.Done()
	var served reader.Stats
	var cache SessionCacheStats
	var keys []string
	var firstErr error
	for i, f := range u.files {
		if err := u.ctx.Err(); err != nil {
			break
		}
		scan, hit, err := u.svc.cache.Get(u.ctx, f, fingerprint, func(ctx context.Context) (*reader.FileScan, error) {
			return r.ScanFile(ctx, f)
		})
		if err != nil {
			firstErr = err
			break
		}
		if hit {
			cache.Hits++
		} else {
			cache.Misses++
		}
		if keys != nil && len(scan.Keys) != len(keys) {
			firstErr = fmt.Errorf("dpp: file %q schema mismatch (%d vs %d features)", f, len(scan.Keys), len(keys))
			break
		}
		keys = scan.Keys
		if hit {
			for _, b := range scan.Batches {
				served.BatchesProduced++
				served.SentBytes += int64(b.WireBytes())
			}
		}
		if err := u.emitUnit(&FileUnit{Index: i, File: f, Scan: scan, Hit: hit}); err != nil {
			break
		}
	}
	u.mu.Lock()
	u.stats.Add(served)
	u.cache.Hits += cache.Hits
	u.cache.Misses += cache.Misses
	u.mu.Unlock()
	u.settle(firstErr)
	u.mu.Lock()
	u.stats.Add(r.Stats())
	u.mu.Unlock()
	close(u.out)
}

// settle records the scan outcome, filtering the session's own teardown
// out of the error channel exactly as batch sessions do.
func (u *UnitSession) settle(err error) {
	u.mu.Lock()
	if err != nil && u.firstErr == nil && !errors.Is(err, context.Canceled) {
		u.firstErr = err
	}
	u.mu.Unlock()
}

// emitUnit hands one unit to the consumer through the bounded buffer.
func (u *UnitSession) emitUnit(unit *FileUnit) error {
	select {
	case u.out <- unit:
		return nil
	case <-u.ctx.Done():
		return u.ctx.Err()
	}
}

// NextUnit returns the session's next file unit, strictly in file-list
// order. It blocks until a unit is buffered, the scan is exhausted
// (io.EOF), a scan fails (the first error, after the in-order prefix of
// units that preceded it), ctx is cancelled, or the session is closed
// (ErrClosed).
func (u *UnitSession) NextUnit(ctx context.Context) (*FileUnit, error) {
	select {
	case unit, ok := <-u.out:
		if !ok {
			return nil, u.finish()
		}
		return unit, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-u.ctx.Done():
		u.mu.Lock()
		closed := u.closed
		u.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, u.ctx.Err()
	}
}

// finish mirrors Session.finish: stop everything, settle the outcome,
// release the service slot, and report EOF only for a clean scan.
func (u *UnitSession) finish() error {
	ctxErr := u.ctx.Err()
	u.teardown()
	u.mu.Lock()
	err := u.firstErr
	closed := u.closed
	u.mu.Unlock()
	u.release()
	if err == nil {
		if closed {
			err = ErrClosed
		} else if ctxErr != nil {
			err = ctxErr
		}
	}
	if err != nil {
		return err
	}
	return io.EOF
}

// teardown cancels the session context and waits for every session
// goroutine. Idempotent.
func (u *UnitSession) teardown() {
	u.cancel()
	if u.merge != nil {
		u.merge.Abort()
	}
	u.wg.Wait()
}

// Close cancels the session's workers, waits for them to exit, and
// releases the session's service slot. Idempotent; always returns nil.
// Units already returned by NextUnit remain valid.
func (u *UnitSession) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	u.teardown()
	u.release()
	return nil
}

// release gives the session's service slot back exactly once, folding
// the session's final scheduling telemetry into the service-wide stall
// counters as batch sessions do.
func (u *UnitSession) release() {
	u.mu.Lock()
	done := u.done
	u.done = true
	errored := u.firstErr != nil
	u.mu.Unlock()
	if !done {
		u.svc.retireUnit(u.id, u.Stats().Scheduler, errored)
	}
}

// Stats returns the session's aggregated accounting in the same shape a
// batch session reports, so fleet-level aggregation (dppshard) and the
// dppnet stats trailer treat both session kinds uniformly. Workers is
// the fixed scan-worker count — unit sessions are not autoscaled; the
// fleet scales by adding shards, not by resizing one shard's pool.
func (u *UnitSession) Stats() SessionStats {
	sched := SchedulerStats{Workers: u.spec.Readers}
	if u.spec.ShareScans {
		sched.Workers = 1
	}
	if u.merge != nil {
		sched.WorkerStall = u.merge.Stall()
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return SessionStats{Reader: u.stats, Cache: u.cache, Scheduler: sched}
}
