package dpp_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// testEnv lands one clustered partition of synthetic data.
type testEnv struct {
	store   *lakefs.Store
	catalog *lakefs.Catalog
	samples []datagen.Sample
}

func newTestEnv(t testing.TB, sessions int) *testEnv {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 6, Seed: 99,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 256, Writer: dwrf.WriterOptions{StripeRows: 128}}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{store: store, catalog: catalog, samples: samples}
}

func newService(t testing.TB, env *testEnv, cfg dpp.Config) *dpp.Service {
	t.Helper()
	cfg.Backend = env.store
	cfg.Catalog = env.catalog
	svc, err := dpp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func dedupSpec() reader.Spec {
	return reader.Spec{
		Table:          "tbl",
		BatchSize:      64,
		SparseFeatures: []string{"item_0", "item_1"},
		DedupSparseFeatures: [][]string{
			{"user_seq_0", "user_seq_1"},
			{"user_elem_0", "user_elem_1", "user_elem_2"},
		},
	}
}

func kjtSpec() reader.Spec {
	return reader.Spec{
		Table:     "tbl",
		BatchSize: 48,
		SparseFeatures: []string{
			"item_0", "item_1", "user_seq_0", "user_seq_1",
			"user_elem_0", "user_elem_1", "user_elem_2",
		},
		SparseTransforms: []reader.SparseTransform{
			reader.HashMod{Features: []string{"user_seq_0"}, TableSize: 1 << 20},
		},
	}
}

// serialReference runs one Reader serially over the whole table — the
// reference stream a Readers==1 session must match byte for byte.
func serialReference(t *testing.T, env *testEnv, spec reader.Spec) ([][]byte, reader.Stats) {
	t.Helper()
	r, err := reader.NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, err := env.catalog.AllFiles(spec.Table)
	if err != nil {
		t.Fatal(err)
	}
	var enc [][]byte
	if err := r.Run(context.Background(), files, func(b *reader.Batch) error {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			return err
		}
		enc = append(enc, buf.Bytes())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return enc, r.Stats()
}

// counters extracts the deterministic Stats fields.
func counters(s reader.Stats) [6]int64 {
	return [6]int64{s.ReadBytes, s.SentBytes, s.RowsDecoded, s.BatchesProduced, s.ConvertValues, s.ProcessOps}
}

func drainSession(t *testing.T, sess *dpp.Session) [][]byte {
	t.Helper()
	var enc [][]byte
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			return enc
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		enc = append(enc, buf.Bytes())
	}
}

// TestConcurrentSessionsMatchSerial is the service determinism contract
// (run under -race in CI): two sessions with different specs consumed
// concurrently over one Service must each produce batches byte-identical
// to their serial single-reader reference runs, with identical
// deterministic Stats counters.
func TestConcurrentSessionsMatchSerial(t *testing.T) {
	env := newTestEnv(t, 60)
	svc := newService(t, env, dpp.Config{})

	specs := []reader.Spec{dedupSpec(), kjtSpec()}
	wantEnc := make([][][]byte, len(specs))
	wantStats := make([]reader.Stats, len(specs))
	for i, spec := range specs {
		wantEnc[i], wantStats[i] = serialReference(t, env, spec)
	}

	gotEnc := make([][][]byte, len(specs))
	gotStats := make([]reader.Stats, len(specs))
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, spec := range specs {
		sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *dpp.Session) {
			defer wg.Done()
			for {
				b, err := sess.Next(context.Background())
				if err == io.EOF {
					gotStats[i] = sess.Stats().Reader
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
				var buf bytes.Buffer
				if err := b.Encode(&buf); err != nil {
					errs[i] = err
					return
				}
				gotEnc[i] = append(gotEnc[i], buf.Bytes())
			}
		}(i, sess)
	}
	wg.Wait()

	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if len(gotEnc[i]) != len(wantEnc[i]) {
			t.Fatalf("session %d produced %d batches, serial reference %d", i, len(gotEnc[i]), len(wantEnc[i]))
		}
		for bi := range wantEnc[i] {
			if !bytes.Equal(gotEnc[i][bi], wantEnc[i][bi]) {
				t.Fatalf("session %d batch %d differs from serial reference", i, bi)
			}
		}
		if got, want := counters(gotStats[i]), counters(wantStats[i]); got != want {
			t.Fatalf("session %d stats counters %v, serial reference %v", i, got, want)
		}
	}

	st := svc.Stats()
	if st.SessionsOpened != 2 {
		t.Fatalf("SessionsOpened = %d want 2", st.SessionsOpened)
	}
	if st.ActiveSessions != 0 {
		t.Fatalf("ActiveSessions = %d want 0 after exhaustion", st.ActiveSessions)
	}
	if want := int64(len(wantEnc[0]) + len(wantEnc[1])); st.BatchesServed != want {
		t.Fatalf("BatchesServed = %d want %d", st.BatchesServed, want)
	}
}

// TestMultiReaderSessionMatchesSerial: the ordered work queue makes the
// batch stream worker-count independent — with Readers > 1 the stream is
// byte-identical to the single serial scan over the whole file list
// (batch boundaries and all, even when rows carry across files), with
// identical deterministic counters.
func TestMultiReaderSessionMatchesSerial(t *testing.T) {
	env := newTestEnv(t, 60)
	svc := newService(t, env, dpp.Config{})

	for _, spec := range []reader.Spec{dedupSpec(), kjtSpec()} {
		wantEnc, wantStats := serialReference(t, env, spec)
		for _, workers := range []int{2, 3, 5} {
			sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec, Readers: workers, Buffer: 1})
			if err != nil {
				t.Fatal(err)
			}
			gotEnc := drainSession(t, sess)

			if len(gotEnc) != len(wantEnc) {
				t.Fatalf("readers=%d produced %d batches, serial reference %d", workers, len(gotEnc), len(wantEnc))
			}
			for i := range wantEnc {
				if !bytes.Equal(gotEnc[i], wantEnc[i]) {
					t.Fatalf("readers=%d batch %d differs from serial reference", workers, i)
				}
			}
			if got, want := counters(sess.Stats().Reader), counters(wantStats); got != want {
				t.Fatalf("readers=%d stats counters %v, serial reference %v", workers, got, want)
			}
			if w := sess.Stats().Scheduler.Workers; w != workers {
				t.Fatalf("SchedulerStats.Workers = %d, want %d", w, workers)
			}
		}
	}
}

// TestSessionCancellation: cancelling the job context mid-stream makes
// Next fail with the context error and tears the workers down without
// leaking goroutines.
func TestSessionCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 40)
	svc := newService(t, env, dpp.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	spec := dedupSpec()
	spec.FillAhead = 2 // exercise the pipelined reader path too
	sess, err := svc.Open(ctx, dpp.Spec{Spec: spec, Readers: 2, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		_, err := sess.Next(context.Background())
		if err == nil {
			continue // batches already buffered may still surface
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next after cancel = %v, want context.Canceled", err)
		}
		break
	}
	sess.Close()

	testutil.WaitForGoroutines(t, before)
}

// TestSessionClose: Close mid-stream unblocks parked workers, later Next
// calls report ErrClosed, and the service slot is released.
func TestSessionClose(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestEnv(t, 40)
	svc := newService(t, env, dpp.Config{})
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	for {
		_, err := sess.Next(context.Background())
		if err == nil {
			continue
		}
		if !errors.Is(err, dpp.ErrClosed) {
			t.Fatalf("Next after Close = %v, want ErrClosed", err)
		}
		break
	}
	if n := svc.Stats().ActiveSessions; n != 0 {
		t.Fatalf("ActiveSessions = %d want 0 after Close", n)
	}

	testutil.WaitForGoroutines(t, before)
}

// TestServiceAdmission covers the service lifecycle errors: session cap,
// closed service, unknown table, and spec validation.
func TestServiceAdmission(t *testing.T) {
	env := newTestEnv(t, 10)

	if _, err := dpp.New(dpp.Config{}); err == nil {
		t.Fatal("expected error for missing backend")
	}

	svc := newService(t, env, dpp.Config{MaxSessions: 1})
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()}); err == nil {
		t.Fatal("expected session-cap error")
	}
	sess.Close()
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()}); err != nil {
		t.Fatalf("slot should free after Close: %v", err)
	}

	bad := dedupSpec()
	bad.Table = "missing"
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: bad}); err == nil {
		t.Fatal("expected unknown-table error")
	}
	invalid := dedupSpec()
	invalid.BatchSize = 0
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: invalid}); err == nil {
		t.Fatal("expected spec validation error")
	}
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Readers: -1}); err == nil {
		t.Fatal("expected negative-readers error")
	}

	svc.Close()
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()}); err == nil {
		t.Fatal("expected closed-service error")
	}
}

// TestSessionReaderError: a runtime reader failure (a dedup group naming
// a feature the table lacks) surfaces out of Next, not silently as EOF,
// and the dead session releases its service slot without an explicit
// Close.
func TestSessionReaderError(t *testing.T) {
	env := newTestEnv(t, 10)
	svc := newService(t, env, dpp.Config{MaxSessions: 1})
	spec := dedupSpec()
	spec.DedupSparseFeatures = append(spec.DedupSparseFeatures, []string{"not_a_feature"})
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := sess.Next(context.Background())
		if err == io.EOF {
			t.Fatal("reader error swallowed: got EOF")
		}
		if err != nil {
			break
		}
	}
	if n := svc.Stats().ActiveSessions; n != 0 {
		t.Fatalf("ActiveSessions = %d want 0 after reader error", n)
	}
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()}); err != nil {
		t.Fatalf("errored session should free its cap slot: %v", err)
	}
}

// TestConcurrentOpenRespectsCap hammers Open from many goroutines
// against a capped service: admissions must never exceed the cap even
// under contention (the check and the registration are one atomic
// admission).
func TestConcurrentOpenRespectsCap(t *testing.T) {
	env := newTestEnv(t, 10)
	const maxSessions = 3
	svc := newService(t, env, dpp.Config{MaxSessions: maxSessions})

	const attempts = 16
	sessions := make([]*dpp.Session, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()})
			if err == nil {
				sessions[i] = sess
			}
		}(i)
	}
	wg.Wait()

	admitted := 0
	for _, sess := range sessions {
		if sess != nil {
			admitted++
		}
	}
	if admitted > maxSessions {
		t.Fatalf("admitted %d sessions, cap %d", admitted, maxSessions)
	}
	if admitted == 0 {
		t.Fatal("no session admitted at all")
	}
	if n := svc.Stats().ActiveSessions; n != admitted {
		t.Fatalf("ActiveSessions = %d want %d", n, admitted)
	}
	for _, sess := range sessions {
		if sess != nil {
			sess.Close()
		}
	}
}

// TestSessionExplicitFiles: Spec.Files scopes the session to a subset of
// the table (recd-train reads per-hour partitions this way).
func TestSessionExplicitFiles(t *testing.T) {
	env := newTestEnv(t, 30)
	svc := newService(t, env, dpp.Config{})

	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Skip("partition landed in a single file")
	}
	sub := files[:1]

	r, err := reader.NewReader(env.store, dedupSpec())
	if err != nil {
		t.Fatal(err)
	}
	var wantRows int64
	if err := r.Run(context.Background(), sub, func(b *reader.Batch) error {
		wantRows += int64(b.Size)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Files: sub})
	if err != nil {
		t.Fatal(err)
	}
	var gotRows int64
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		gotRows += int64(b.Size)
	}
	if gotRows != wantRows || gotRows == 0 {
		t.Fatalf("explicit-files session rows = %d want %d (nonzero)", gotRows, wantRows)
	}
}

// TestSharedSessionsMatchSerial is the cross-session scan-sharing
// determinism contract (run under -race in CI): concurrent ShareScans
// sessions — three with one spec (batch-aligned files, fully shareable),
// one with a different spec (misaligned batch size, so rows carry across
// files and only some boundaries share), and one unshared control — must
// each produce batch streams byte-identical to their serial single-reader
// references, while the aligned trio decodes the table exactly once
// between them.
func TestSharedSessionsMatchSerial(t *testing.T) {
	env := newTestEnv(t, 60)
	svc := newService(t, env, dpp.Config{})

	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	nFiles := int64(len(files))
	if nFiles < 2 {
		t.Skip("partition landed in a single file")
	}

	// Sessions 0-2 share dedupSpec; 3 is kjtSpec (BatchSize 48, which 256
	// rows/file does not divide); 4 is an unshared dedupSpec control.
	specs := []reader.Spec{dedupSpec(), dedupSpec(), dedupSpec(), kjtSpec(), dedupSpec()}
	share := []bool{true, true, true, true, false}

	wantEnc := make([][][]byte, len(specs))
	wantStats := make([]reader.Stats, len(specs))
	for i, spec := range specs {
		wantEnc[i], wantStats[i] = serialReference(t, env, spec)
	}

	gotEnc := make([][][]byte, len(specs))
	gotStats := make([]dpp.SessionStats, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec, ShareScans: share[i]})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *dpp.Session) {
			defer wg.Done()
			for {
				b, err := sess.Next(context.Background())
				if err == io.EOF {
					gotStats[i] = sess.Stats()
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
				var buf bytes.Buffer
				if err := b.Encode(&buf); err != nil {
					errs[i] = err
					return
				}
				gotEnc[i] = append(gotEnc[i], buf.Bytes())
			}
		}(i, sess)
	}
	wg.Wait()

	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if len(gotEnc[i]) != len(wantEnc[i]) {
			t.Fatalf("session %d produced %d batches, serial reference %d", i, len(gotEnc[i]), len(wantEnc[i]))
		}
		for bi := range wantEnc[i] {
			if !bytes.Equal(gotEnc[i][bi], wantEnc[i][bi]) {
				t.Fatalf("session %d batch %d differs from serial reference", i, bi)
			}
		}
		// Egress is real for every session, hits or not.
		if got, want := gotStats[i].Reader.BatchesProduced, wantStats[i].BatchesProduced; got != want {
			t.Fatalf("session %d BatchesProduced = %d, serial reference %d", i, got, want)
		}
		if got, want := gotStats[i].Reader.SentBytes, wantStats[i].SentBytes; got != want {
			t.Fatalf("session %d SentBytes = %d, serial reference %d", i, got, want)
		}
	}

	// The aligned trio decodes every file exactly once between them: with
	// no eviction possible at this scale, misses across the three equal
	// the file count and their decoded rows sum to one serial scan.
	var trioHits, trioMisses, trioRows int64
	for i := 0; i < 3; i++ {
		st := gotStats[i]
		if got := st.Cache.Hits + st.Cache.Misses; got != nFiles {
			t.Fatalf("session %d cache lookups = %d, want %d (one per file)", i, got, nFiles)
		}
		trioHits += st.Cache.Hits
		trioMisses += st.Cache.Misses
		trioRows += st.Reader.RowsDecoded
	}
	if trioMisses != nFiles || trioHits != 2*nFiles {
		t.Fatalf("trio cache traffic hits=%d misses=%d, want %d/%d", trioHits, trioMisses, 2*nFiles, nFiles)
	}
	if trioRows != wantStats[0].RowsDecoded {
		t.Fatalf("trio decoded %d rows, want %d (each file decoded once)", trioRows, wantStats[0].RowsDecoded)
	}
	// The unshared control never touches the cache.
	if c := gotStats[4].Cache; c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("unshared session reported cache traffic %+v", c)
	}
	// The misaligned session shares only boundary-aligned files (at least
	// the first), and falls back to local decode for the rest.
	if c := gotStats[3].Cache; c.Hits+c.Misses == 0 || c.Hits+c.Misses == nFiles {
		t.Fatalf("misaligned session cache traffic %+v, want partial sharing over %d files", c, nFiles)
	}

	if st := svc.Stats().Cache; st.Hits != trioHits || st.Evictions != 0 {
		t.Fatalf("service cache stats %+v, want %d hits, 0 evictions", st, trioHits)
	}
}

// TestSharedSessionEvictionPressure runs ShareScans sessions against a
// cache far smaller than the table, so entries are evicted mid-scan, and
// pins that post-eviction re-reads still match the uncached reference.
func TestSharedSessionEvictionPressure(t *testing.T) {
	env := newTestEnv(t, 200)
	spec := dedupSpec()
	wantEnc, _ := serialReference(t, env, spec)

	// Budget two files' worth of decoded batches: the scan itself evicts.
	r, err := reader.NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Skip("need at least 3 files for eviction pressure")
	}
	one, err := r.ScanFile(context.Background(), files[0])
	if err != nil {
		t.Fatal(err)
	}
	svc := newService(t, env, dpp.Config{ScanCacheBytes: 2 * one.MemBytes()})

	for pass := 0; pass < 2; pass++ {
		sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec, ShareScans: true})
		if err != nil {
			t.Fatal(err)
		}
		gotEnc := drainSession(t, sess)
		if len(gotEnc) != len(wantEnc) {
			t.Fatalf("pass %d produced %d batches, reference %d", pass, len(gotEnc), len(wantEnc))
		}
		for bi := range wantEnc {
			if !bytes.Equal(gotEnc[bi], wantEnc[bi]) {
				t.Fatalf("pass %d batch %d differs from reference", pass, bi)
			}
		}
	}
	st := svc.Stats().Cache
	if st.Evictions == 0 {
		t.Fatal("expected evictions under memory pressure")
	}
	if st.Bytes > 2*one.MemBytes() {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, 2*one.MemBytes())
	}
	// Both passes completed byte-identically even though pass 2's early
	// files had been evicted by pass 1's tail — they were simply
	// recomputed (and counted as misses again).
	if st.Misses <= int64(len(files)) {
		t.Fatalf("misses = %d, want > %d (evicted entries recomputed)", st.Misses, len(files))
	}
}

// TestShareScansMisalignedFallbackAccounting pins the misaligned-boundary
// fallback's accounting: when the batch size does not divide rows-per-file,
// only files entered on a batch boundary (no carried rows) go through the
// ScanCache; every other file falls back to local fill+convert. The cache
// must report exactly the boundary-aligned lookups — never a false hit for
// a fallback file — and a repeat session's reuse must split across the two
// tiers: batch-level reuse (scan-cache hits, zero decode) for aligned
// files, fill-only reuse (raw-byte CachingBackend hits, full re-decode)
// for the rest.
func TestShareScansMisalignedFallbackAccounting(t *testing.T) {
	env := newTestEnv(t, 200)
	spec := kjtSpec() // BatchSize 48; files land with 256 rows each

	files, err := env.catalog.AllFiles(spec.Table)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Skip("need a multi-file partition for misaligned boundaries")
	}

	// Replay the carry arithmetic to find which files a scan enters on a
	// batch boundary, probing row counts against the raw store so the
	// service's caches see no traffic from the setup.
	probe, err := reader.NewReader(env.store, spec)
	if err != nil {
		t.Fatal(err)
	}
	aligned := map[string]bool{}
	var alignedCount int
	var misalignedRows int64
	carry := 0
	for _, f := range files {
		samples, _, _, err := probe.FillFile(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		if carry == 0 {
			aligned[f] = true
			alignedCount++
		} else {
			misalignedRows += int64(len(samples))
		}
		carry = (carry + len(samples)) % spec.BatchSize
	}
	if alignedCount == 0 || alignedCount == len(files) {
		t.Fatalf("degenerate alignment: %d/%d files aligned", alignedCount, len(files))
	}

	wantEnc, wantStats := serialReference(t, env, spec)

	// The raw-byte tier under the service absorbs fill-path reuse the
	// batch-level cache cannot express.
	cached := storage.NewCachingBackend(env.store, 64<<20)
	svc, err := dpp.New(dpp.Config{Backend: cached, Catalog: env.catalog})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	var stats [2]dpp.SessionStats
	for pass := 0; pass < 2; pass++ {
		sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec, ShareScans: true})
		if err != nil {
			t.Fatal(err)
		}
		gotEnc := drainSession(t, sess)
		if len(gotEnc) != len(wantEnc) {
			t.Fatalf("pass %d produced %d batches, reference %d", pass, len(gotEnc), len(wantEnc))
		}
		for bi := range wantEnc {
			if !bytes.Equal(gotEnc[bi], wantEnc[bi]) {
				t.Fatalf("pass %d batch %d differs from serial reference", pass, bi)
			}
		}
		stats[pass] = sess.Stats()
	}

	// Cache lookups happen only at aligned boundaries: the first pass
	// misses each aligned file once, the repeat pass hits each exactly
	// once, and fallback files never appear as lookups at all.
	if c := stats[0].Cache; c.Misses != int64(alignedCount) || c.Hits != 0 {
		t.Fatalf("pass 0 cache traffic %+v, want %d misses / 0 hits", c, alignedCount)
	}
	if c := stats[1].Cache; c.Hits != int64(alignedCount) || c.Misses != 0 {
		t.Fatalf("pass 1 cache traffic %+v, want %d hits / 0 misses (no false hits)", c, alignedCount)
	}
	// Egress is real on both passes; decode work on the repeat pass is
	// exactly the fallback files — aligned hits ship batches without
	// decoding a row.
	for pass, st := range stats {
		if got, want := st.Reader.BatchesProduced, wantStats.BatchesProduced; got != want {
			t.Fatalf("pass %d BatchesProduced = %d, reference %d", pass, got, want)
		}
	}
	if got := stats[1].Reader.RowsDecoded; got != misalignedRows {
		t.Fatalf("repeat pass decoded %d rows, want %d (fallback files only)", got, misalignedRows)
	}
	// The repeat pass's fallback fills are served by the raw-byte tier:
	// one hit per misaligned file, and nothing else ever hit it.
	misalignedCount := int64(len(files) - alignedCount)
	if bs := cached.Stats(); bs.Hits != misalignedCount || bs.Misses != int64(len(files)) {
		t.Fatalf("raw-byte tier traffic hits=%d misses=%d, want %d/%d (fill-only reuse)",
			bs.Hits, bs.Misses, misalignedCount, len(files))
	}
}

// TestShareScansPrefetchAccounting pins the ShareScans miss-path
// prefetch (Spec.FillAhead > 0): the prefetching session's stream is
// byte-identical to the serial reference and its deterministic reader
// counters and cache hit/miss split are exactly the inline path's, for
// both aligned specs (every file through the cache) and misaligned ones
// (the producer's arithmetic carry must reproduce the inline path's
// aligned/fallback split); a warm second pass over the aligned spec is
// all hits.
func TestShareScansPrefetchAccounting(t *testing.T) {
	env := newTestEnv(t, 60)
	files, err := env.catalog.AllFiles("tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Skip("partition landed in too few files")
	}
	for _, spec := range []reader.Spec{dedupSpec(), kjtSpec()} {
		wantEnc, _ := serialReference(t, env, spec)

		// Inline reference: a ShareScans session with FillAhead 0 on a
		// fresh service (cold cache).
		inlineSvc := newService(t, env, dpp.Config{})
		inlineSess, err := inlineSvc.Open(context.Background(), dpp.Spec{Spec: spec, ShareScans: true})
		if err != nil {
			t.Fatal(err)
		}
		drainSession(t, inlineSess)
		inlineStats := inlineSess.Stats()
		inlineSess.Close()

		pspec := spec
		pspec.FillAhead = 3
		preSvc := newService(t, env, dpp.Config{})
		preSess, err := preSvc.Open(context.Background(), dpp.Spec{Spec: pspec, ShareScans: true})
		if err != nil {
			t.Fatal(err)
		}
		gotEnc := drainSession(t, preSess)
		preStats := preSess.Stats()
		preSess.Close()

		if len(gotEnc) != len(wantEnc) {
			t.Fatalf("batch %d: prefetch produced %d batches, serial reference %d", spec.BatchSize, len(gotEnc), len(wantEnc))
		}
		for bi := range wantEnc {
			if !bytes.Equal(gotEnc[bi], wantEnc[bi]) {
				t.Fatalf("batch size %d: prefetch batch %d differs from serial reference", spec.BatchSize, bi)
			}
		}
		if counters(preStats.Reader) != counters(inlineStats.Reader) {
			t.Fatalf("batch size %d: prefetch counters %v, inline %v", spec.BatchSize, counters(preStats.Reader), counters(inlineStats.Reader))
		}
		if preStats.Cache != inlineStats.Cache {
			t.Fatalf("batch size %d: prefetch cache traffic %+v, inline %+v", spec.BatchSize, preStats.Cache, inlineStats.Cache)
		}

		// Warm pass on the prefetch service: every aligned lookup hits.
		warm, err := preSvc.Open(context.Background(), dpp.Spec{Spec: pspec, ShareScans: true})
		if err != nil {
			t.Fatal(err)
		}
		drainSession(t, warm)
		warmStats := warm.Stats()
		warm.Close()
		wantLookups := preStats.Cache.Hits + preStats.Cache.Misses
		if warmStats.Cache.Hits != wantLookups || warmStats.Cache.Misses != 0 {
			t.Fatalf("batch size %d: warm pass cache traffic %+v, want %d hits / 0 misses", spec.BatchSize, warmStats.Cache, wantLookups)
		}
	}
}

// TestShareScansRejectedWhenCacheDisabled: a service built with the scan
// cache disabled refuses ShareScans sessions instead of silently running
// them unshared.
func TestShareScansRejectedWhenCacheDisabled(t *testing.T) {
	env := newTestEnv(t, 10)
	svc := newService(t, env, dpp.Config{ScanCacheBytes: -1})
	if _, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), ShareScans: true}); err == nil {
		t.Fatal("expected error: ShareScans with disabled cache")
	}
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec()})
	if err != nil {
		t.Fatalf("unshared session must still open: %v", err)
	}
	sess.Close()
}

// TestSessionDrainAccounting is the session-era Drain contract (the old
// reader.Tier.Drain): draining a multi-reader session while discarding
// every batch yields the same batch count and deterministic counters as
// one serial scan over the whole file list (the queue model's reference
// at every worker count), without retaining any batch.
func TestSessionDrainAccounting(t *testing.T) {
	env := newTestEnv(t, 40)
	svc := newService(t, env, dpp.Config{})
	spec := dedupSpec()

	files, err := env.catalog.AllFiles(spec.Table)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	var wantBatches int
	var wantStats reader.Stats
	{
		r, err := reader.NewReader(env.store, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(context.Background(), files, func(*reader.Batch) error {
			wantBatches++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		wantStats = r.Stats()
	}

	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: spec, Readers: workers, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	drained := 0
	for {
		_, err := sess.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		drained++
	}
	if drained != wantBatches || drained == 0 {
		t.Fatalf("drained %d batches, want %d (nonzero)", drained, wantBatches)
	}
	if got, want := counters(sess.Stats().Reader), counters(wantStats); got != want {
		t.Fatalf("drained stats counters %v, want %v", got, want)
	}
}
