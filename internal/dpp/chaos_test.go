package dpp_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dpp"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/testutil"
)

// newChaosEnv lands a partition cut into many small files (64 rows each)
// so a scan is a long queue of work items — resizes land mid-stream, not
// after the fact. Batch size 64 divides the file size (aligned specs);
// 48 does not (misaligned: rows carry across files).
func newChaosEnv(t testing.TB) *testEnv {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 3, Item: 2, Dense: 4, SeqLen: 24, Seed: 11,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: 120, MeanSamplesPerSession: 6, Seed: 99,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples,
		dwrf.TableOptions{RowsPerFile: 64, Writer: dwrf.WriterOptions{StripeRows: 32}}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{store: store, catalog: catalog, samples: samples}
}

// TestChaosResizeDeterminism is the autoscaling determinism contract,
// and this PR's load-bearing invariant (run under -race in CI): a
// session's batch stream is byte-identical to the serial single-reader
// reference no matter how the worker pool is resized while it drains.
// 51 seeded schedules (17 per spec shape) randomize the initial pool
// size, the buffer depth, the resize cadence, and the resize targets
// across an aligned spec, a misaligned spec (rows carry across files),
// and a ShareScans spec; every stream must match the serial reference
// byte for byte with identical deterministic counters (scheduler stats
// excepted — they are timing-dependent by design), and every schedule
// must tear down to zero leaked goroutines.
func TestChaosResizeDeterminism(t *testing.T) {
	env := newChaosEnv(t)

	cases := []struct {
		name  string
		spec  reader.Spec
		share bool
	}{
		{"aligned", dedupSpec(), false},
		{"misaligned", kjtSpec(), false},
		{"sharescans", dedupSpec(), true},
	}
	const seedsPerCase = 17

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantEnc, wantStats := serialReference(t, env, tc.spec)
			if len(wantEnc) < 8 {
				t.Fatalf("reference scan produced only %d batches; chaos needs a long stream", len(wantEnc))
			}
			for seed := int64(0); seed < seedsPerCase; seed++ {
				before := runtime.NumGoroutine()
				rng := rand.New(rand.NewSource(seed))

				// Fresh service per schedule so ShareScans counters are
				// comparable (cold cache every time) and leak checks are
				// per-schedule.
				svc := newService(t, env, dpp.Config{})
				sess, err := svc.Open(context.Background(), dpp.Spec{
					Spec:       tc.spec,
					Readers:    1 + rng.Intn(4),
					Buffer:     1 + rng.Intn(2),
					ShareScans: tc.share,
				})
				if err != nil {
					t.Fatal(err)
				}

				var gotEnc [][]byte
				nextResize := 1 + rng.Intn(3)
				for {
					b, err := sess.Next(context.Background())
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					var buf bytes.Buffer
					if err := b.Encode(&buf); err != nil {
						t.Fatal(err)
					}
					gotEnc = append(gotEnc, buf.Bytes())
					if len(gotEnc) == nextResize {
						sess.Resize(1 + rng.Intn(6))
						nextResize += 1 + rng.Intn(3)
					}
				}

				if len(gotEnc) != len(wantEnc) {
					t.Fatalf("seed %d produced %d batches, serial reference %d", seed, len(gotEnc), len(wantEnc))
				}
				for i := range wantEnc {
					if !bytes.Equal(gotEnc[i], wantEnc[i]) {
						t.Fatalf("seed %d batch %d differs from serial reference", seed, i)
					}
				}
				st := sess.Stats()
				if tc.share {
					// A shared session's decode counters depend on cache
					// traffic; its egress is the deterministic half.
					if st.Reader.BatchesProduced != wantStats.BatchesProduced ||
						st.Reader.SentBytes != wantStats.SentBytes {
						t.Fatalf("seed %d egress (%d batches, %d bytes) differs from serial (%d, %d)",
							seed, st.Reader.BatchesProduced, st.Reader.SentBytes,
							wantStats.BatchesProduced, wantStats.SentBytes)
					}
				} else if got, want := counters(st.Reader), counters(wantStats); got != want {
					t.Fatalf("seed %d stats counters %v, serial reference %v", seed, got, want)
				}

				svc.Close()
				testutil.WaitForGoroutines(t, before)
			}
		})
	}
}

// TestResizeSemantics pins the Resize contract edges: clamping below 1,
// the ShareScans no-op, idempotent same-size calls, and calls after the
// session ended.
func TestResizeSemantics(t *testing.T) {
	env := newChaosEnv(t)
	svc := newService(t, env, dpp.Config{})

	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Readers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Resize(0); got != 1 {
		t.Fatalf("Resize(0) = %d, want clamp to 1", got)
	}
	if got := sess.Resize(-3); got != 1 {
		t.Fatalf("Resize(-3) = %d, want clamp to 1", got)
	}
	if got := sess.Resize(4); got != 4 {
		t.Fatalf("Resize(4) = %d", got)
	}
	if got := sess.Resize(4); got != 4 {
		t.Fatalf("repeat Resize(4) = %d", got)
	}
	st := sess.Stats().Scheduler
	// 2→1 (clamped), 1→4: one down, one up; the no-ops count nothing.
	if st.ScaleUps != 1 || st.ScaleDowns != 1 || st.Workers != 4 {
		t.Fatalf("scheduler stats after resizes: %+v", st)
	}
	sess.Close()
	if got := sess.Resize(8); got != 4 {
		t.Fatalf("Resize after Close = %d, want frozen pool size 4", got)
	}

	shared, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), ShareScans: true, Readers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	if got := shared.Resize(5); got != 1 {
		t.Fatalf("ShareScans Resize = %d, want no-op 1", got)
	}
	if st := shared.Stats().Scheduler; st.Workers != 1 || st.ScaleUps != 0 {
		t.Fatalf("ShareScans scheduler stats: %+v", st)
	}

	if got := svc.Stats().Scheduler; got.ScaleUps != 1 || got.ScaleDowns != 1 {
		t.Fatalf("service scale counters %+v, want 1 up / 1 down", got)
	}
}

// TestAutoscaleScalesDownStalledConsumer: with the service autoscaler on
// and a consumer that never pulls, consumer stall dominates every
// interval and the pool steps down to MinReaders.
func TestAutoscaleScalesDownStalledConsumer(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newChaosEnv(t)
	svc := newService(t, env, dpp.Config{
		AutoScale: &dpp.AutoScalerConfig{
			MinReaders: 1, MaxReaders: 8,
			Interval: 2 * time.Millisecond,
		},
	})
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Readers: 4, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One pull proves the stream is live; afterwards the consumer stalls,
	// the output buffer stays full, and the merge parks on it.
	if _, err := sess.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, func() bool { return sess.Stats().Scheduler.Workers == 1 },
		"pool scaled down to MinReaders (at %d)", sess.Stats().Scheduler.Workers)
	st := sess.Stats().Scheduler
	if st.ScaleDowns < 3 || st.ConsumerStall == 0 {
		t.Fatalf("expected >=3 scale-downs with consumer stall, got %+v", st)
	}
	sess.Close()
	svc.Close()
	testutil.WaitForGoroutines(t, before)
}

// TestAutoscaleScalesUpStarvedMerge: a consumer pulling flat-out keeps
// the merge starved for fill results, so the autoscaler grows the pool
// from 1 toward MaxReaders mid-scan — and the stream stays equal to the
// serial reference while it happens.
func TestAutoscaleScalesUpStarvedMerge(t *testing.T) {
	env := newChaosEnv(t)
	wantEnc, _ := serialReference(t, env, dedupSpec())

	svc := newService(t, env, dpp.Config{
		AutoScale: &dpp.AutoScalerConfig{
			MinReaders: 1, MaxReaders: 4,
			Interval:  time.Millisecond,
			Threshold: 200 * time.Microsecond,
		},
	})
	var maxWorkers int
	var gotEnc [][]byte
	sess, err := svc.Open(context.Background(), dpp.Spec{Spec: dedupSpec(), Readers: 1, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, err := sess.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		gotEnc = append(gotEnc, buf.Bytes())
		if w := sess.Stats().Scheduler.Workers; w > maxWorkers {
			maxWorkers = w
		}
	}
	if len(gotEnc) != len(wantEnc) {
		t.Fatalf("autoscaled session produced %d batches, serial reference %d", len(gotEnc), len(wantEnc))
	}
	for i := range wantEnc {
		if !bytes.Equal(gotEnc[i], wantEnc[i]) {
			t.Fatalf("batch %d differs from serial reference under autoscaling", i)
		}
	}
	if maxWorkers < 2 {
		st := sess.Stats().Scheduler
		t.Fatalf("pool never grew past 1 worker (scheduler %+v)", st)
	}
}
