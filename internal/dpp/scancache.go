package dpp

import (
	"context"

	"repro/internal/cachecore"
	"repro/internal/reader"
)

// ScanCache memoizes decoded, deduplicated, preprocessed batches across
// sessions: the cross-session scan sharing the paper's service exists to
// provide. N training jobs whose DataLoader specs agree (same batch size,
// features, dedup groups, and transforms — reader.Spec.Fingerprint) and
// whose scans cover the same files pay for each file's fill → convert →
// process once, not N times.
//
// Entries are keyed by (file, spec fingerprint) and hold a
// reader.FileScan: the file's complete batches plus its carry-out tail
// rows. Both halves of the key are load-bearing for soundness — the file
// names the bytes, the fingerprint names every spec field that can change
// what those bytes convert to — and FileScan's file alignment is what
// lets cached entries compose into a stream byte-identical to an
// uncached serial scan (pinned by the reader and dpp determinism tests).
//
// The single-flight + byte-bounded-LRU engine underneath is
// internal/cachecore, shared with storage.CachingBackend: concurrent
// requests for a missing entry coalesce (one caller computes, the rest
// wait and are charged hits), completed entries are evicted least-
// recently-used once the budget is exceeded, and a failed compute
// reaches only its own caller. Evicted entries remain valid for
// sessions already holding them — entries are immutable and the cache
// never recycles their memory.
//
// All methods are safe for concurrent use.
type ScanCache struct {
	core *cachecore.Cache[scanKey, *reader.FileScan]
}

// scanKey is the identity of one shareable unit of scan work.
type scanKey struct {
	file        string
	fingerprint string
}

// NewScanCache builds a cache bounded to maxBytes of estimated batch and
// tail-row memory (reader.FileScan.MemBytes). maxBytes must be positive.
func NewScanCache(maxBytes int64) *ScanCache {
	if maxBytes <= 0 {
		panic("dpp: scan cache needs a positive byte budget")
	}
	return &ScanCache{
		core: cachecore.New[scanKey](
			cachecore.Config{MaxBytes: maxBytes, CountWaiterHits: true},
			func(fs *reader.FileScan) int64 { return fs.MemBytes() },
		),
	}
}

// Get returns the scan for (file, fingerprint), computing and caching it
// via compute on a miss. Concurrent Gets of the same key share one
// compute call; callers served a result another caller computed (or a
// cached entry) report hit == true. If the computing caller fails, its
// waiters retry — one caller's cancellation must not fail another
// session's scan. Cancelling ctx abandons the wait (the in-flight
// compute itself is cancelled only by its own caller's context).
func (c *ScanCache) Get(ctx context.Context, file, fingerprint string, compute func(context.Context) (*reader.FileScan, error)) (scan *reader.FileScan, hit bool, err error) {
	return c.core.Get(ctx, scanKey{file: file, fingerprint: fingerprint}, compute)
}

// Contains reports whether a completed entry for (file, fingerprint) is
// currently resident, without touching its recency.
func (c *ScanCache) Contains(file, fingerprint string) bool {
	return c.core.Contains(scanKey{file: file, fingerprint: fingerprint})
}

// InvalidateFiles evicts every entry whose file half matches one of
// paths, across all fingerprints — a file deleted by retention is gone
// for every spec that ever decoded it. In-flight computes are doomed
// (served to their waiters, not retained). Wired to the catalog's
// InvalidationNotifier by Service; returns how many entries were
// dropped.
func (c *ScanCache) InvalidateFiles(paths []string) int {
	if len(paths) == 0 {
		return 0
	}
	dropped := make(map[string]bool, len(paths))
	for _, p := range paths {
		dropped[p] = true
	}
	return c.core.RemoveIf(func(k scanKey) bool { return dropped[k.file] })
}

// ScanCacheStats is a snapshot of cache-wide accounting.
type ScanCacheStats struct {
	// Hits counts Gets served from a resident entry or coalesced onto
	// another caller's compute; Misses counts Gets that computed.
	Hits, Misses int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
	// Invalidations counts entries dropped because their file was deleted
	// (retention coherence, not budget pressure).
	Invalidations int64
	// Entries and Bytes describe current occupancy (complete entries).
	Entries int
	Bytes   int64
}

// Stats returns a snapshot of the cache accounting.
func (c *ScanCache) Stats() ScanCacheStats {
	st := c.core.Stats()
	return ScanCacheStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
		Entries:       st.Entries,
		Bytes:         st.Bytes,
	}
}

// EntryStats describes one resident entry, most-recently-used first —
// the per-entry view of hit traffic and memory cost.
type EntryStats struct {
	File string
	// Fingerprint is the spec fingerprint half of the key.
	Fingerprint string
	// Hits counts Gets served by this entry since it was inserted.
	Hits int64
	// Bytes is the entry's estimated resident cost.
	Bytes int64
}

// Entries returns the resident entries in recency order (most recently
// used first) — the order in which eviction will NOT happen.
func (c *ScanCache) Entries() []EntryStats {
	core := c.core.Entries()
	out := make([]EntryStats, 0, len(core))
	for _, e := range core {
		out = append(out, EntryStats{
			File:        e.Key.file,
			Fingerprint: e.Key.fingerprint,
			Hits:        e.Hits,
			Bytes:       e.Bytes,
		})
	}
	return out
}
