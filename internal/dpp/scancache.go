package dpp

import (
	"container/list"
	"context"

	"sync"

	"repro/internal/reader"
)

// ScanCache memoizes decoded, deduplicated, preprocessed batches across
// sessions: the cross-session scan sharing the paper's service exists to
// provide. N training jobs whose DataLoader specs agree (same batch size,
// features, dedup groups, and transforms — reader.Spec.Fingerprint) and
// whose scans cover the same files pay for each file's fill → convert →
// process once, not N times.
//
// Entries are keyed by (file, spec fingerprint) and hold a
// reader.FileScan: the file's complete batches plus its carry-out tail
// rows. Both halves of the key are load-bearing for soundness — the file
// names the bytes, the fingerprint names every spec field that can change
// what those bytes convert to — and FileScan's file alignment is what
// lets cached entries compose into a stream byte-identical to an
// uncached serial scan (pinned by the reader and dpp determinism tests).
//
// Concurrent requests for a missing entry coalesce: one caller computes
// while the rest block on that computation (single-flight), so a burst of
// sessions opening over the same partition decodes each file once.
// Memory is bounded in bytes: completed entries are evicted least-
// recently-used once the budget is exceeded. Evicted entries remain valid
// for sessions already holding them — entries are immutable and the
// cache never recycles their memory.
//
// All methods are safe for concurrent use.
type ScanCache struct {
	max int64

	mu      sync.Mutex
	bytes   int64
	entries map[scanKey]*scanEntry
	lru     *list.List // complete entries only; front = most recent

	hits, misses, evictions int64
}

// scanKey is the identity of one shareable unit of scan work.
type scanKey struct {
	file        string
	fingerprint string
}

// scanEntry is one cached (or in-flight) file scan.
type scanEntry struct {
	key  scanKey
	el   *list.Element // nil while in flight
	cost int64
	hits int64

	ready chan struct{} // closed when scan/err are set
	scan  *reader.FileScan
	err   error
}

// NewScanCache builds a cache bounded to maxBytes of estimated batch and
// tail-row memory (reader.FileScan.MemBytes). maxBytes must be positive.
func NewScanCache(maxBytes int64) *ScanCache {
	if maxBytes <= 0 {
		panic("dpp: scan cache needs a positive byte budget")
	}
	return &ScanCache{
		max:     maxBytes,
		entries: make(map[scanKey]*scanEntry),
		lru:     list.New(),
	}
}

// Get returns the scan for (file, fingerprint), computing and caching it
// via compute on a miss. Concurrent Gets of the same key share one
// compute call; callers served a result another caller computed (or a
// cached entry) report hit == true. If the computing caller fails, its
// waiters retry — one caller's cancellation must not fail another
// session's scan. Cancelling ctx abandons the wait (the in-flight
// compute itself is cancelled only by its own caller's context).
func (c *ScanCache) Get(ctx context.Context, file, fingerprint string, compute func(context.Context) (*reader.FileScan, error)) (scan *reader.FileScan, hit bool, err error) {
	key := scanKey{file: file, fingerprint: fingerprint}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.ready: // complete
				if e.err == nil {
					c.touch(e)
					c.hits++
					e.hits++
					c.mu.Unlock()
					return e.scan, true, nil
				}
				// Failed entries are removed by their computer; if one is
				// still visible we lost a race — fall through and wait.
			default:
			}
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			c.mu.Lock()
			if e.err == nil {
				c.touch(e)
				c.hits++
				e.hits++
				c.mu.Unlock()
				return e.scan, true, nil
			}
			c.mu.Unlock()
			continue // leader failed; retry (and possibly lead)
		}

		e := &scanEntry{key: key, ready: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		c.mu.Unlock()

		e.scan, e.err = compute(ctx)

		c.mu.Lock()
		if e.err != nil {
			delete(c.entries, key)
			c.mu.Unlock()
			close(e.ready)
			return nil, false, e.err
		}
		e.cost = e.scan.MemBytes()
		e.el = c.lru.PushFront(e)
		c.bytes += e.cost
		c.evict()
		c.mu.Unlock()
		close(e.ready)
		return e.scan, false, nil
	}
}

// touch marks an entry most-recently-used. Callers hold c.mu.
func (c *ScanCache) touch(e *scanEntry) {
	if e.el != nil {
		c.lru.MoveToFront(e.el)
	}
}

// evict drops least-recently-used complete entries until the budget
// holds. Callers hold c.mu. A single entry larger than the whole budget
// is evicted immediately after insertion — it is served to its computer
// and its coalesced waiters but never retained.
func (c *ScanCache) evict() {
	for c.bytes > c.max {
		last := c.lru.Back()
		if last == nil {
			return
		}
		e := last.Value.(*scanEntry)
		c.lru.Remove(last)
		delete(c.entries, e.key)
		c.bytes -= e.cost
		e.el = nil
		c.evictions++
	}
}

// Contains reports whether a completed entry for (file, fingerprint) is
// currently resident, without touching its recency.
func (c *ScanCache) Contains(file, fingerprint string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[scanKey{file: file, fingerprint: fingerprint}]
	return ok && e.el != nil
}

// ScanCacheStats is a snapshot of cache-wide accounting.
type ScanCacheStats struct {
	// Hits counts Gets served from a resident entry or coalesced onto
	// another caller's compute; Misses counts Gets that computed.
	Hits, Misses int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
	// Entries and Bytes describe current occupancy (complete entries).
	Entries int
	Bytes   int64
}

// Stats returns a snapshot of the cache accounting.
func (c *ScanCache) Stats() ScanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ScanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
	}
}

// EntryStats describes one resident entry, most-recently-used first —
// the per-entry view of hit traffic and memory cost.
type EntryStats struct {
	File string
	// Fingerprint is the spec fingerprint half of the key.
	Fingerprint string
	// Hits counts Gets served by this entry since it was inserted.
	Hits int64
	// Bytes is the entry's estimated resident cost.
	Bytes int64
}

// Entries returns the resident entries in recency order (most recently
// used first) — the order in which eviction will NOT happen.
func (c *ScanCache) Entries() []EntryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EntryStats, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*scanEntry)
		out = append(out, EntryStats{
			File:        e.key.file,
			Fingerprint: e.key.fingerprint,
			Hits:        e.hits,
			Bytes:       e.cost,
		})
	}
	return out
}
