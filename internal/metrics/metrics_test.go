package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	if got := tm.Total(); got != 40*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
	if got := tm.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := tm.Count(); got != 2 {
		t.Errorf("Count = %d", got)
	}
	var empty Timer
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
	tm.Reset()
	if tm.Total() != 0 || tm.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestTimerTime(t *testing.T) {
	var tm Timer
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if tm.Total() < time.Millisecond/2 {
		t.Errorf("Total = %v, want >= ~1ms", tm.Total())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8})
	for _, v := range []int64{1, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d", got)
	}
	if got := h.Mean(); got != (1+1+2+3+5+100)/6.0 {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("Max = %d", got)
	}
	buckets := h.Buckets()
	if len(buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(buckets))
	}
	// v<=1: two; v==2: one; v in 3-4: one; 5-8: one; >8: one.
	wantCounts := []int64{2, 1, 1, 1, 1}
	for i, w := range wantCounts {
		if buckets[i].Count != w {
			t.Errorf("bucket %d (%s) = %d, want %d", i, buckets[i].Label, buckets[i].Count, w)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 * 1024 * 1024, "3.00MiB"},
		{5 * 1024 * 1024 * 1024, "5.00GiB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.n); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestByteCounterString(t *testing.T) {
	var bc ByteCounter
	bc.RX.Add(1024)
	bc.TX.Add(100)
	if got := bc.String(); got != "rx=1.00KiB tx=100B" {
		t.Errorf("String = %q", got)
	}
}
