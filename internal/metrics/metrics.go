// Package metrics provides the lightweight counters, timers and
// histograms shared by every tier of the pipeline (Scribe, ETL, storage,
// readers, trainers). It exists so tiers can account their work without
// importing each other: a Counter is one atomic word, a Timer attributes
// wall-clock time to pipeline stages (the paper's Fig 10 CPU breakdown),
// and a Histogram records into fixed pre-sized buckets so observation
// never allocates on a hot path. All types are safe for concurrent use —
// reader fill loops and scribe appends record from many goroutines at
// once.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous atomic value — a level, not a count:
// currently active sessions, open connections, resident cache bytes.
// Unlike Counter it may move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates elapsed wall-clock durations, used to attribute reader
// CPU time to fill/convert/process stages (paper Fig 10).
type Timer struct {
	ns atomic.Int64
	n  atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.n.Add(1)
}

// Time runs f and records its duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	t.Observe(time.Since(start))
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.n.Load() }

// Mean returns the average observed duration (0 if none).
func (t *Timer) Mean() time.Duration {
	n := t.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(t.ns.Load() / n)
}

// Reset zeroes the timer.
func (t *Timer) Reset() {
	t.ns.Store(0)
	t.n.Store(0)
}

// Histogram is a fixed-bucket histogram over int64 observations, used for
// the samples-per-session distributions (paper Fig 3).
type Histogram struct {
	mu      sync.Mutex
	bounds  []int64 // bucket i counts v <= bounds[i]; last bucket unbounded
	counts  []int64
	total   int64
	sum     int64
	maxSeen int64
}

// NewHistogram builds a histogram with the given ascending upper bounds. A
// final overflow bucket is added automatically.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observed value.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxSeen
}

// Buckets returns (label, count) pairs for rendering.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Bucket, 0, len(h.counts))
	lo := int64(1)
	for i, c := range h.counts {
		var label string
		if i < len(h.bounds) {
			if lo == h.bounds[i] {
				label = fmt.Sprintf("%d", lo)
			} else {
				label = fmt.Sprintf("%d-%d", lo, h.bounds[i])
			}
			lo = h.bounds[i] + 1
		} else {
			label = fmt.Sprintf(">%d", lo-1)
		}
		out = append(out, Bucket{Label: label, Count: c})
	}
	return out
}

// Bucket is one rendered histogram bucket.
type Bucket struct {
	Label string
	Count int64
}

// ByteCounter tracks bytes in/out for a pipeline component.
type ByteCounter struct {
	RX Counter
	TX Counter
}

// String renders the counter compactly.
func (b *ByteCounter) String() string {
	return fmt.Sprintf("rx=%s tx=%s", FormatBytes(b.RX.Value()), FormatBytes(b.TX.Value()))
}

// FormatBytes renders a byte count with a binary suffix.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
