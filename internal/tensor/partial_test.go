package tensor

import (
	"math/rand"
	"testing"
)

// TestPaperSection7PartialExample reproduces the paper's §7 worked example:
// feature b rows [3,4,5], [4,5,6], [3,4,5] partially deduplicate to
// values=[3,4,5,6] and inverse_lookup=[[0,3],[1,3],[0,3]].
func TestPaperSection7PartialExample(t *testing.T) {
	j := NewJagged([][]Value{{3, 4, 5}, {4, 5, 6}, {3, 4, 5}})
	p := PartialDedup("feature_b", j)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantVals := []Value{3, 4, 5, 6}
	if len(p.Values) != len(wantVals) {
		t.Fatalf("values = %v, want %v", p.Values, wantVals)
	}
	for i := range wantVals {
		if p.Values[i] != wantVals[i] {
			t.Fatalf("values = %v, want %v", p.Values, wantVals)
		}
	}
	wantLookup := [][2]int32{{0, 3}, {1, 3}, {0, 3}}
	for i := range wantLookup {
		if p.Lookup[i] != wantLookup[i] {
			t.Fatalf("lookup = %v, want %v", p.Lookup, wantLookup)
		}
	}
}

func TestPartialRoundTrip(t *testing.T) {
	cases := [][][]Value{
		{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {3, 4, 5}},
		{{}, {1}, {}, {1, 2}},
		{{7, 7, 7}, {7, 7}, {7}},
		{{1}, {2}, {3}},
		nil,
	}
	for ci, rows := range cases {
		j := NewJagged(rows)
		p := PartialDedup("f", j)
		if err := p.Validate(); err != nil {
			t.Fatalf("case %d: Validate: %v", ci, err)
		}
		back := p.ToJagged()
		if !back.Equal(j) {
			t.Errorf("case %d: round trip %v -> %v", ci, j, back)
		}
	}
}

// TestPartialBeatsExactOnShifts verifies partial dedup captures shift
// duplication that exact dedup cannot (paper: partial matches capture an
// additional 7.8% of values beyond the 81.6% exact).
func TestPartialBeatsExactOnShifts(t *testing.T) {
	// A session whose history feature shifts by one every sample: exact
	// dedup finds nothing, partial dedup stores ~1 new value per row.
	const n, l = 50, 100
	rows := make([][]Value, n)
	for i := range rows {
		row := make([]Value, l)
		for c := range row {
			row[c] = Value(i + c)
		}
		rows[i] = row
	}
	j := NewJagged(rows)

	exact, err := DedupJagged([]string{"f"}, []Jagged{j})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if got := exact.MeasuredFactor(); got != 1 {
		t.Fatalf("exact factor = %v, want 1 (all rows shifted)", got)
	}

	p := PartialDedup("f", j)
	if got, wantMin := p.Factor(), 20.0; got < wantMin {
		t.Fatalf("partial factor = %v, want >= %v", got, wantMin)
	}
	if len(p.Values) != l+n-1 {
		t.Errorf("stored %d values, want %d (window over shifting sequence)", len(p.Values), l+n-1)
	}
	if !p.ToJagged().Equal(j) {
		t.Fatal("partial round trip failed")
	}
}

func TestPartialRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		rows := make([][]Value, n)
		prev := []Value{}
		for i := range rows {
			switch rng.Intn(3) {
			case 0: // exact repeat of previous
				rows[i] = append([]Value(nil), prev...)
			case 1: // shift: drop head, append new
				row := append([]Value(nil), prev...)
				if len(row) > 0 {
					row = row[1:]
				}
				row = append(row, Value(rng.Int63n(1000)))
				rows[i] = row
			default: // fresh row
				row := make([]Value, rng.Intn(10))
				for c := range row {
					row[c] = Value(rng.Int63n(1000))
				}
				rows[i] = row
			}
			prev = rows[i]
		}
		j := NewJagged(rows)
		p := PartialDedup("f", j)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !p.ToJagged().Equal(j) {
			t.Fatalf("trial %d: round trip failed", trial)
		}
		if p.Factor() < 1 {
			t.Fatalf("trial %d: factor %v < 1", trial, p.Factor())
		}
	}
}

func TestPartialWireBytes(t *testing.T) {
	j := NewJagged([][]Value{{1, 2, 3}, {1, 2, 3}})
	p := PartialDedup("f", j)
	want := 3*ValueBytes + 2*2*OffsetBytes
	if got := p.WireBytes(); got != want {
		t.Errorf("WireBytes = %d, want %d", got, want)
	}
	if p.WireBytes() >= j.WireBytes() {
		t.Errorf("partial (%d) should beat raw (%d) on duplicated batch", p.WireBytes(), j.WireBytes())
	}
}
