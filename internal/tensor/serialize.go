package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Wire serialization for jagged tensors, KJTs and IKJTs. Readers serialize
// preprocessed batches in this format when shipping them to trainers; the
// byte counts it produces are what the reader->trainer network accounting
// measures (paper Table 3 "Send Bytes").
//
// The format is little-endian and self-describing enough for round-trip
// tests; it is intentionally simple rather than schema-evolving.

const (
	tagJagged  = uint8(1)
	tagKJT     = uint8(2)
	tagIKJT    = uint8(3)
	tagDense   = uint8(4)
	tagPartial = uint8(5)
)

var wireOrder = binary.LittleEndian

// Decode-side plausibility caps. Wire payloads may arrive from another
// process (dppnet serves batches over TCP), so every length prefix is
// bounded before it sizes an allocation: a corrupt or malicious frame
// must fail with an error, never overflow an int, exhaust memory, or
// panic. The caps sit orders of magnitude above anything a real batch
// carries (values per tensor ≤ batch size × sequence length).
const (
	// maxWireElems bounds any single element-count prefix (values,
	// offsets, dense cells, lookup entries): 2^24 elements = 128 MiB of
	// 8-byte values.
	maxWireElems = 1 << 24
	// maxWireKeys bounds per-collection key counts (KJT/IKJT features).
	maxWireKeys = 1 << 16
	// maxWireString bounds feature-name lengths.
	maxWireString = 1 << 16
)

// readCount reads one uvarint length prefix and rejects implausible
// values before any allocation is sized from it.
func readCount(r byteReader, what string, max uint64) (int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if n > max {
		return 0, fmt.Errorf("tensor: implausible %s count %d", what, n)
	}
	return int(n), nil
}

// scratchPool recycles the byte staging buffers the value/offset/dense
// codecs use between the in-memory representation and the wire. Encoding
// or decoding a tensor no longer costs a `make([]byte, 8*n)` per call;
// buffers grow to the largest tensor seen and are reused.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// getScratch returns a pooled buffer resized to exactly n bytes.
func getScratch(n int) *[]byte {
	bp := scratchPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putScratch(bp *[]byte) { scratchPool.Put(bp) }

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

type byteReader interface {
	io.Reader
	io.ByteReader
}

func readString(r byteReader) (string, error) {
	n, err := readCount(r, "string byte", maxWireString)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValues(w io.Writer, vals []Value) error {
	if err := writeUvarint(w, uint64(len(vals))); err != nil {
		return err
	}
	bp := getScratch(8 * len(vals))
	defer putScratch(bp)
	buf := *bp
	for i, v := range vals {
		wireOrder.PutUint64(buf[i*8:], uint64(v))
	}
	_, err := w.Write(buf)
	return err
}

func readValues(r byteReader) ([]Value, error) {
	n, err := readCount(r, "value", maxWireElems)
	if err != nil {
		return nil, err
	}
	bp := getScratch(8 * n)
	defer putScratch(bp)
	buf := *bp
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]Value, n)
	for i := range out {
		out[i] = Value(wireOrder.Uint64(buf[i*8:]))
	}
	return out, nil
}

func writeInt32s(w io.Writer, vals []int32) error {
	if err := writeUvarint(w, uint64(len(vals))); err != nil {
		return err
	}
	bp := getScratch(4 * len(vals))
	defer putScratch(bp)
	buf := *bp
	for i, v := range vals {
		wireOrder.PutUint32(buf[i*4:], uint32(v))
	}
	_, err := w.Write(buf)
	return err
}

func readInt32s(r byteReader) ([]int32, error) {
	n, err := readCount(r, "int32", maxWireElems)
	if err != nil {
		return nil, err
	}
	bp := getScratch(4 * n)
	defer putScratch(bp)
	buf := *bp
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(wireOrder.Uint32(buf[i*4:]))
	}
	return out, nil
}

// WriteJagged serializes j to w.
func WriteJagged(w io.Writer, j Jagged) error {
	if _, err := w.Write([]byte{tagJagged}); err != nil {
		return err
	}
	if err := writeValues(w, j.Values); err != nil {
		return err
	}
	return writeInt32s(w, j.Offsets)
}

// ReadJagged deserializes a jagged tensor from r.
func ReadJagged(r byteReader) (Jagged, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return Jagged{}, err
	}
	if tag[0] != tagJagged {
		return Jagged{}, fmt.Errorf("tensor: bad jagged tag %d", tag[0])
	}
	vals, err := readValues(r)
	if err != nil {
		return Jagged{}, err
	}
	offs, err := readInt32s(r)
	if err != nil {
		return Jagged{}, err
	}
	j := Jagged{Values: vals, Offsets: offs}
	if err := j.Validate(); err != nil {
		return Jagged{}, err
	}
	return j, nil
}

// WriteKJT serializes a KJT to w.
func WriteKJT(w io.Writer, k *KJT) error {
	if _, err := w.Write([]byte{tagKJT}); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(k.NumKeys())); err != nil {
		return err
	}
	for i := 0; i < k.NumKeys(); i++ {
		if err := writeString(w, k.KeyAt(i)); err != nil {
			return err
		}
		if err := WriteJagged(w, k.FeatureAt(i)); err != nil {
			return err
		}
	}
	return nil
}

// ReadKJT deserializes a KJT from r.
func ReadKJT(r byteReader) (*KJT, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagKJT {
		return nil, fmt.Errorf("tensor: bad kjt tag %d", tag[0])
	}
	n, err := readCount(r, "kjt key", maxWireKeys)
	if err != nil {
		return nil, err
	}
	keys := make([]string, n)
	tensors := make([]Jagged, n)
	for i := range keys {
		if keys[i], err = readString(r); err != nil {
			return nil, err
		}
		if tensors[i], err = ReadJagged(r); err != nil {
			return nil, err
		}
	}
	return NewKJT(keys, tensors)
}

// WriteIKJT serializes an IKJT (including its inverse lookup) to w.
func WriteIKJT(w io.Writer, ik *IKJT) error {
	if _, err := w.Write([]byte{tagIKJT}); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(ik.NumKeys())); err != nil {
		return err
	}
	for i := 0; i < ik.NumKeys(); i++ {
		if err := writeString(w, ik.keys[i]); err != nil {
			return err
		}
		if err := WriteJagged(w, ik.tensors[i]); err != nil {
			return err
		}
	}
	return writeInt32s(w, ik.inverseLookup)
}

// ReadIKJT deserializes an IKJT from r.
func ReadIKJT(r byteReader) (*IKJT, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagIKJT {
		return nil, fmt.Errorf("tensor: bad ikjt tag %d", tag[0])
	}
	n, err := readCount(r, "ikjt key", maxWireKeys)
	if err != nil {
		return nil, err
	}
	keys := make([]string, n)
	tensors := make([]Jagged, n)
	for i := range keys {
		if keys[i], err = readString(r); err != nil {
			return nil, err
		}
		if tensors[i], err = ReadJagged(r); err != nil {
			return nil, err
		}
	}
	inverse, err := readInt32s(r)
	if err != nil {
		return nil, err
	}
	return ikjtFromParts(keys, tensors, inverse)
}

// WriteDense serializes a dense tensor to w.
func WriteDense(w io.Writer, d Dense) error {
	if _, err := w.Write([]byte{tagDense}); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(d.RowsN)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(d.Cols)); err != nil {
		return err
	}
	bp := getScratch(4 * len(d.Data))
	defer putScratch(bp)
	buf := *bp
	for i, v := range d.Data {
		wireOrder.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadDense deserializes a dense tensor from r.
func ReadDense(r byteReader) (Dense, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return Dense{}, err
	}
	if tag[0] != tagDense {
		return Dense{}, fmt.Errorf("tensor: bad dense tag %d", tag[0])
	}
	rows, err := readCount(r, "dense row", maxWireElems)
	if err != nil {
		return Dense{}, err
	}
	cols, err := readCount(r, "dense col", maxWireElems)
	if err != nil {
		return Dense{}, err
	}
	if rows > 0 && cols > maxWireElems/rows {
		return Dense{}, fmt.Errorf("tensor: implausible dense shape %dx%d", rows, cols)
	}
	bp := getScratch(4 * rows * cols)
	defer putScratch(bp)
	buf := *bp
	if _, err := io.ReadFull(r, buf); err != nil {
		return Dense{}, err
	}
	d := NewDense(int(rows), int(cols))
	for i := range d.Data {
		d.Data[i] = math.Float32frombits(wireOrder.Uint32(buf[i*4:]))
	}
	return d, nil
}

// WritePartial serializes a partial IKJT to w.
func WritePartial(w io.Writer, p *PartialIKJT) error {
	if _, err := w.Write([]byte{tagPartial}); err != nil {
		return err
	}
	if err := writeString(w, p.Key); err != nil {
		return err
	}
	if err := writeValues(w, p.Values); err != nil {
		return err
	}
	flat := make([]int32, 0, 2*len(p.Lookup))
	for _, w2 := range p.Lookup {
		flat = append(flat, w2[0], w2[1])
	}
	return writeInt32s(w, flat)
}

// ReadPartial deserializes a partial IKJT from r.
func ReadPartial(r byteReader) (*PartialIKJT, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagPartial {
		return nil, fmt.Errorf("tensor: bad partial tag %d", tag[0])
	}
	key, err := readString(r)
	if err != nil {
		return nil, err
	}
	vals, err := readValues(r)
	if err != nil {
		return nil, err
	}
	flat, err := readInt32s(r)
	if err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("tensor: partial lookup has odd length %d", len(flat))
	}
	p := &PartialIKJT{Key: key, Values: vals, Lookup: make([][2]int32, len(flat)/2)}
	for i := range p.Lookup {
		p.Lookup[i] = [2]int32{flat[2*i], flat[2*i+1]}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
