// Package tensor implements the sparse-tensor formats at the heart of RecD:
// JaggedTensor, KeyedJaggedTensor (KJT), InverseKeyedJaggedTensor (IKJT,
// including grouped and partial variants), and the jagged index-select
// primitive used to convert IKJTs back to KJTs (paper §4.2, §5, §7).
//
// The encoding follows the paper's convention: a jagged tensor with B rows
// stores a flat values slice plus an offsets slice with one entry per row;
// offsets[i] is the start of row i in values, and the length of row i is
// offsets[i+1]-offsets[i] (or len(values)-offsets[i] for the last row).
package tensor

import (
	"fmt"
	"strings"
)

// Value is the element type of sparse feature lists (categorical IDs).
type Value = int64

// ValueBytes is the wire size of one sparse value.
const ValueBytes = 8

// OffsetBytes is the wire size of one offset or inverse-lookup entry.
const OffsetBytes = 4

// Jagged is a tensor with one jagged (variable-length) dimension: B rows,
// each a variable-length list of values. It is the Go analogue of a
// TorchRec JaggedTensor.
type Jagged struct {
	// Values holds all rows' elements back to back.
	Values []Value
	// Offsets has one entry per row; Offsets[i] is the index in Values
	// where row i begins. Offsets[0] is always 0.
	Offsets []int32
}

// NewJagged builds a Jagged from explicit per-row lists.
func NewJagged(rows [][]Value) Jagged {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	j := Jagged{
		Values:  make([]Value, 0, total),
		Offsets: make([]int32, len(rows)),
	}
	for i, r := range rows {
		j.Offsets[i] = int32(len(j.Values))
		j.Values = append(j.Values, r...)
	}
	return j
}

// EmptyJagged returns a Jagged with rows empty rows.
func EmptyJagged(rows int) Jagged {
	return Jagged{Offsets: make([]int32, rows)}
}

// Rows reports the number of rows (the batch dimension).
func (j Jagged) Rows() int { return len(j.Offsets) }

// RowBounds returns the [start, end) bounds of row i in Values.
func (j Jagged) RowBounds(i int) (start, end int) {
	start = int(j.Offsets[i])
	if i+1 < len(j.Offsets) {
		end = int(j.Offsets[i+1])
	} else {
		end = len(j.Values)
	}
	return start, end
}

// Row returns the value slice for row i. The slice aliases the underlying
// Values storage; callers must not mutate it.
func (j Jagged) Row(i int) []Value {
	start, end := j.RowBounds(i)
	return j.Values[start:end]
}

// RowLen returns the length of row i.
func (j Jagged) RowLen(i int) int {
	start, end := j.RowBounds(i)
	return end - start
}

// Lengths materializes the per-row lengths.
func (j Jagged) Lengths() []int32 {
	out := make([]int32, j.Rows())
	for i := range out {
		out[i] = int32(j.RowLen(i))
	}
	return out
}

// NumValues reports the total number of stored values.
func (j Jagged) NumValues() int { return len(j.Values) }

// WireBytes reports the number of bytes needed to transmit this tensor
// (values + offsets). This is the quantity RecD reduces during sparse data
// distribution (paper §5).
func (j Jagged) WireBytes() int {
	return len(j.Values)*ValueBytes + len(j.Offsets)*OffsetBytes
}

// Validate checks structural invariants.
func (j Jagged) Validate() error {
	if len(j.Offsets) == 0 {
		if len(j.Values) != 0 {
			return fmt.Errorf("tensor: jagged with 0 rows has %d values", len(j.Values))
		}
		return nil
	}
	if j.Offsets[0] != 0 {
		return fmt.Errorf("tensor: first offset is %d, want 0", j.Offsets[0])
	}
	prev := int32(0)
	for i, off := range j.Offsets {
		if off < prev {
			return fmt.Errorf("tensor: offsets not monotone at row %d: %d < %d", i, off, prev)
		}
		if int(off) > len(j.Values) {
			return fmt.Errorf("tensor: offset %d at row %d exceeds %d values", off, i, len(j.Values))
		}
		prev = off
	}
	return nil
}

// Equal reports whether two jagged tensors encode identical logical data
// (same rows with same values; offset slices must match exactly because the
// encoding is canonical).
func (j Jagged) Equal(o Jagged) bool {
	if len(j.Offsets) != len(o.Offsets) || len(j.Values) != len(o.Values) {
		return false
	}
	for i := range j.Offsets {
		if j.Offsets[i] != o.Offsets[i] {
			return false
		}
	}
	for i := range j.Values {
		if j.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (j Jagged) Clone() Jagged {
	return Jagged{
		Values:  append([]Value(nil), j.Values...),
		Offsets: append([]int32(nil), j.Offsets...),
	}
}

// ToRows materializes the per-row lists (deep copy).
func (j Jagged) ToRows() [][]Value {
	out := make([][]Value, j.Rows())
	for i := range out {
		out[i] = append([]Value(nil), j.Row(i)...)
	}
	return out
}

// Concat appends the rows of o after the rows of j, returning a new tensor.
func (j Jagged) Concat(o Jagged) Jagged {
	out := Jagged{
		Values:  make([]Value, 0, len(j.Values)+len(o.Values)),
		Offsets: make([]int32, 0, len(j.Offsets)+len(o.Offsets)),
	}
	out.Values = append(out.Values, j.Values...)
	out.Offsets = append(out.Offsets, j.Offsets...)
	base := int32(len(j.Values))
	for _, off := range o.Offsets {
		out.Offsets = append(out.Offsets, base+off)
	}
	out.Values = append(out.Values, o.Values...)
	return out
}

// String renders a compact human-readable form, e.g. "[[1 2] [] [3]]".
func (j Jagged) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < j.Rows(); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", j.Row(i))
	}
	b.WriteByte(']')
	return b.String()
}

// Dense is a 2-D row-major float32 tensor used for dense features and
// intermediate activations.
type Dense struct {
	RowsN int
	Cols  int
	Data  []float32
}

// NewDense allocates a zeroed RowsN x Cols dense tensor.
func NewDense(rows, cols int) Dense {
	return Dense{RowsN: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the underlying storage.
func (d Dense) Row(i int) []float32 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// At returns element (i, j).
func (d Dense) At(i, j int) float32 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d Dense) Set(i, j int, v float32) { d.Data[i*d.Cols+j] = v }

// WireBytes reports the transmission size in bytes.
func (d Dense) WireBytes() int { return len(d.Data) * 4 }

// Clone returns a deep copy.
func (d Dense) Clone() Dense {
	return Dense{RowsN: d.RowsN, Cols: d.Cols, Data: append([]float32(nil), d.Data...)}
}
