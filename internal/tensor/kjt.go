package tensor

import (
	"fmt"
	"sort"
)

// KJT is a KeyedJaggedTensor: an ordered collection of jagged tensors, one
// per feature key, all sharing the same batch dimension. It is the baseline
// sparse-batch format used by the reader and trainer tiers (paper §4.2).
type KJT struct {
	keys    []string
	tensors []Jagged
	index   map[string]int
}

// NewKJT builds a KJT from parallel key/tensor slices. All tensors must
// share the same number of rows.
func NewKJT(keys []string, tensors []Jagged) (*KJT, error) {
	if len(keys) != len(tensors) {
		return nil, fmt.Errorf("tensor: %d keys but %d tensors", len(keys), len(tensors))
	}
	k := &KJT{
		keys:    append([]string(nil), keys...),
		tensors: append([]Jagged(nil), tensors...),
		index:   make(map[string]int, len(keys)),
	}
	rows := -1
	for i, key := range k.keys {
		if _, dup := k.index[key]; dup {
			return nil, fmt.Errorf("tensor: duplicate key %q", key)
		}
		k.index[key] = i
		if rows == -1 {
			rows = k.tensors[i].Rows()
		} else if k.tensors[i].Rows() != rows {
			return nil, fmt.Errorf("tensor: key %q has %d rows, want %d", key, k.tensors[i].Rows(), rows)
		}
	}
	return k, nil
}

// MustKJT is NewKJT that panics on error; for tests and literals.
func MustKJT(keys []string, tensors []Jagged) *KJT {
	k, err := NewKJT(keys, tensors)
	if err != nil {
		panic(err)
	}
	return k
}

// Keys returns the ordered feature keys. Callers must not mutate it.
func (k *KJT) Keys() []string { return k.keys }

// NumKeys reports the number of features.
func (k *KJT) NumKeys() int { return len(k.keys) }

// Rows reports the batch size. A KJT with no keys has zero rows.
func (k *KJT) Rows() int {
	if len(k.tensors) == 0 {
		return 0
	}
	return k.tensors[0].Rows()
}

// Feature returns the jagged tensor for key, or false if absent.
func (k *KJT) Feature(key string) (Jagged, bool) {
	i, ok := k.index[key]
	if !ok {
		return Jagged{}, false
	}
	return k.tensors[i], true
}

// FeatureAt returns the i-th feature tensor.
func (k *KJT) FeatureAt(i int) Jagged { return k.tensors[i] }

// KeyAt returns the i-th key.
func (k *KJT) KeyAt(i int) string { return k.keys[i] }

// HasKey reports whether key is present.
func (k *KJT) HasKey(key string) bool {
	_, ok := k.index[key]
	return ok
}

// Select returns a new KJT holding only the requested keys, in the given
// order. It errors if any key is absent.
func (k *KJT) Select(keys []string) (*KJT, error) {
	tensors := make([]Jagged, len(keys))
	for i, key := range keys {
		idx, ok := k.index[key]
		if !ok {
			return nil, fmt.Errorf("tensor: select: missing key %q", key)
		}
		tensors[i] = k.tensors[idx]
	}
	return NewKJT(keys, tensors)
}

// Without returns a new KJT excluding the given keys.
func (k *KJT) Without(exclude map[string]bool) *KJT {
	var keys []string
	var tensors []Jagged
	for i, key := range k.keys {
		if !exclude[key] {
			keys = append(keys, key)
			tensors = append(tensors, k.tensors[i])
		}
	}
	out, err := NewKJT(keys, tensors)
	if err != nil {
		panic(err) // unreachable: subsetting preserves invariants
	}
	return out
}

// Merge returns a new KJT containing all features of k followed by all
// features of o. Key sets must be disjoint and row counts equal.
func (k *KJT) Merge(o *KJT) (*KJT, error) {
	if k.NumKeys() > 0 && o.NumKeys() > 0 && k.Rows() != o.Rows() {
		return nil, fmt.Errorf("tensor: merge row mismatch: %d vs %d", k.Rows(), o.Rows())
	}
	keys := append(append([]string(nil), k.keys...), o.keys...)
	tensors := append(append([]Jagged(nil), k.tensors...), o.tensors...)
	return NewKJT(keys, tensors)
}

// WireBytes reports the total transmission size across all features.
func (k *KJT) WireBytes() int {
	total := 0
	for _, t := range k.tensors {
		total += t.WireBytes()
	}
	return total
}

// NumValues reports the total number of values across all features.
func (k *KJT) NumValues() int {
	total := 0
	for _, t := range k.tensors {
		total += t.NumValues()
	}
	return total
}

// Equal reports whether both KJTs hold the same keys in the same order with
// identical tensors.
func (k *KJT) Equal(o *KJT) bool {
	if k.NumKeys() != o.NumKeys() {
		return false
	}
	for i := range k.keys {
		if k.keys[i] != o.keys[i] || !k.tensors[i].Equal(o.tensors[i]) {
			return false
		}
	}
	return true
}

// Validate checks structural invariants across all features.
func (k *KJT) Validate() error {
	rows := k.Rows()
	for i, t := range k.tensors {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("tensor: key %q: %w", k.keys[i], err)
		}
		if t.Rows() != rows {
			return fmt.Errorf("tensor: key %q has %d rows, want %d", k.keys[i], t.Rows(), rows)
		}
	}
	return nil
}

// SortedKeys returns the keys in lexicographic order (for deterministic
// iteration in tests and reports).
func (k *KJT) SortedKeys() []string {
	out := append([]string(nil), k.keys...)
	sort.Strings(out)
	return out
}
