package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// referenceDedup is a deliberately naive grouped dedup: string-keyed map,
// first-occurrence order. It is the oracle the open-addressed Deduper must
// match exactly.
func referenceDedup(keys []string, features []Jagged) (uniques [][][]Value, inverse []int32) {
	batch := features[0].Rows()
	seen := map[string]int32{}
	inverse = make([]int32, batch)
	uniques = make([][][]Value, len(features))
	for row := 0; row < batch; row++ {
		sig := ""
		for fi := range features {
			sig += fmt.Sprintf("|%v", features[fi].Row(row))
		}
		if u, ok := seen[sig]; ok {
			inverse[row] = u
			continue
		}
		u := int32(len(seen))
		seen[sig] = u
		inverse[row] = u
		for fi := range features {
			uniques[fi] = append(uniques[fi], append([]Value(nil), features[fi].Row(row)...))
		}
	}
	return uniques, inverse
}

// randomGroup builds a grouped batch with heavy session-style duplication
// across nKeys synchronized features.
func randomGroup(rng *rand.Rand, nKeys int) []Jagged {
	batch := rng.Intn(64) + 1
	rows := make([][][]Value, nKeys)
	for fi := range rows {
		rows[fi] = make([][]Value, batch)
	}
	for i := 0; i < batch; i++ {
		if i > 0 && rng.Intn(3) != 0 {
			// Duplicate a random prior row group (all features together).
			src := rng.Intn(i)
			for fi := range rows {
				rows[fi][i] = rows[fi][src]
			}
			continue
		}
		for fi := range rows {
			row := make([]Value, rng.Intn(10))
			for c := range row {
				row[c] = Value(rng.Int63n(1 << 16))
			}
			rows[fi][i] = row
		}
	}
	out := make([]Jagged, nKeys)
	for fi := range out {
		out[fi] = NewJagged(rows[fi])
	}
	return out
}

func assertMatchesReference(t *testing.T, keys []string, features []Jagged, ik *IKJT) {
	t.Helper()
	wantUniques, wantInverse := referenceDedup(keys, features)
	if err := ik.Validate(); err != nil {
		t.Fatal(err)
	}
	if ik.UniqueRows() != len(wantUniques[0]) {
		t.Fatalf("unique rows %d, reference %d", ik.UniqueRows(), len(wantUniques[0]))
	}
	for i, u := range ik.InverseLookup() {
		if u != wantInverse[i] {
			t.Fatalf("inverse[%d] = %d, reference %d", i, u, wantInverse[i])
		}
	}
	for fi := range features {
		dd := ik.DedupedAt(fi)
		for ui, wantRow := range wantUniques[fi] {
			got := dd.Row(ui)
			if len(got) != len(wantRow) {
				t.Fatalf("feature %d unique %d: len %d want %d", fi, ui, len(got), len(wantRow))
			}
			for c := range wantRow {
				if got[c] != wantRow[c] {
					t.Fatalf("feature %d unique %d value %d: %d want %d", fi, ui, c, got[c], wantRow[c])
				}
			}
		}
	}
}

// TestDeduperMatchesReference checks the open-addressed Deduper against
// the naive reference across randomized grouped inputs, reusing one
// Deduper for every batch (the reader's usage pattern).
func TestDeduperMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDeduper()
	for trial := 0; trial < 300; trial++ {
		nKeys := rng.Intn(3) + 1
		keys := make([]string, nKeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("f%d", i)
		}
		features := randomGroup(rng, nKeys)
		ik, err := d.Dedup(keys, features)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesReference(t, keys, features, ik)
	}
}

// TestDeduperOutputsSurviveReuse pins the reuse contract: IKJTs returned
// from earlier Dedup calls must stay intact while the same Deduper keeps
// processing new batches (no retained references into scratch).
func TestDeduperOutputsSurviveReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDeduper()
	keys := []string{"a", "b"}
	type held struct {
		features []Jagged
		ik       *IKJT
	}
	var outputs []held
	for trial := 0; trial < 50; trial++ {
		features := randomGroup(rng, 2)
		ik, err := d.Dedup(keys, features)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, held{features: features, ik: ik})
	}
	for i, h := range outputs {
		out := h.ik.ToKJT()
		for fi := range h.features {
			got := out.FeatureAt(fi)
			if !got.Equal(h.features[fi]) {
				t.Fatalf("output %d feature %d corrupted by later Dedup calls", i, fi)
			}
		}
	}
}

// TestDeduperErrors covers the argument validation paths.
func TestDeduperErrors(t *testing.T) {
	d := NewDeduper()
	if _, err := d.Dedup(nil, nil); err == nil {
		t.Fatal("expected error for empty key group")
	}
	if _, err := d.Dedup([]string{"a", "b"}, []Jagged{EmptyJagged(1)}); err == nil {
		t.Fatal("expected error for key/tensor count mismatch")
	}
	if _, err := d.Dedup([]string{"a", "b"}, []Jagged{EmptyJagged(1), EmptyJagged(2)}); err == nil {
		t.Fatal("expected error for row count mismatch")
	}
}

// TestJaggedIndexSelectInto checks destination reuse: the second select
// must reuse the first result's storage when capacity suffices and still
// produce exact rows.
func TestJaggedIndexSelectInto(t *testing.T) {
	j := NewJagged([][]Value{{1, 2, 3}, {4}, {}, {5, 6}})
	idx := []int32{3, 0, 0, 1}
	dst := JaggedIndexSelectInto(Jagged{}, j, idx)
	want := JaggedIndexSelect(j, idx)
	if !dst.Equal(want) {
		t.Fatalf("into %v want %v", dst, want)
	}
	firstValues := &dst.Values[0]
	dst2 := JaggedIndexSelectInto(dst, j, []int32{1, 2})
	if dst2.Rows() != 2 || dst2.RowLen(0) != 1 || dst2.Row(0)[0] != 4 || dst2.RowLen(1) != 0 {
		t.Fatalf("reused select wrong: %v", dst2)
	}
	if &dst2.Values[0] != firstValues {
		t.Fatal("destination storage was not reused despite sufficient capacity")
	}
}

func TestMeasuredFactorMatchesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		features := randomGroup(rng, 2)
		ik, err := DedupJagged([]string{"x", "y"}, features)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: expand and compare value counts directly.
		expanded, stored := 0, 0
		for fi := 0; fi < ik.NumKeys(); fi++ {
			expanded += JaggedIndexSelect(ik.DedupedAt(fi), ik.InverseLookup()).NumValues()
			stored += ik.DedupedAt(fi).NumValues()
		}
		want := 1.0
		if stored > 0 {
			want = float64(expanded) / float64(stored)
		}
		if got := ik.MeasuredFactor(); got != want {
			t.Fatalf("MeasuredFactor %v want %v", got, want)
		}
	}
}
