package tensor

import (
	"fmt"
)

// IKJT is an InverseKeyedJaggedTensor (paper §4.2): a group of one or more
// feature keys whose per-row lists have been deduplicated by exact match.
// The deduplicated tensors store only the unique rows; a shared
// inverseLookup slice, with one entry per batch row, maps each original row
// to its unique entry.
//
// Grouped IKJTs hold multiple features that are updated synchronously
// across samples (e.g. item-ID and seller-ID of the same cart sequence) and
// therefore share a single inverseLookup. A batch row is deduplicated only
// if ALL features in the group match a prior row exactly, which maintains
// the shared-lookup invariant.
type IKJT struct {
	keys          []string
	tensors       []Jagged // one per key; Rows() == UniqueRows for all
	inverseLookup []int32  // len == batch size; values in [0, UniqueRows)
	batch         int
}

// DedupStats summarizes how effective deduplication was for one IKJT group.
type DedupStats struct {
	Batch          int // original batch rows
	UniqueRows     int // rows kept after dedup
	OriginalValues int // total values across group before dedup
	DedupValues    int // total values across group after dedup
}

// Factor returns the measured deduplication factor: original values length
// over deduplicated values length (paper §4.2 DedupeFactor). It reports 1
// when the group carried no values.
func (s DedupStats) Factor() float64 {
	if s.DedupValues == 0 {
		return 1
	}
	return float64(s.OriginalValues) / float64(s.DedupValues)
}

// Keys returns the ordered feature keys in this group.
func (ik *IKJT) Keys() []string { return ik.keys }

// NumKeys reports the number of features in the group.
func (ik *IKJT) NumKeys() int { return len(ik.keys) }

// Batch reports the original (logical) batch size.
func (ik *IKJT) Batch() int { return ik.batch }

// UniqueRows reports the number of rows kept after deduplication.
func (ik *IKJT) UniqueRows() int {
	if len(ik.tensors) == 0 {
		return 0
	}
	return ik.tensors[0].Rows()
}

// InverseLookup returns the shared inverse lookup slice. Callers must not
// mutate it.
func (ik *IKJT) InverseLookup() []int32 { return ik.inverseLookup }

// Deduped returns the deduplicated jagged tensor for key, or false.
func (ik *IKJT) Deduped(key string) (Jagged, bool) {
	for i, k := range ik.keys {
		if k == key {
			return ik.tensors[i], true
		}
	}
	return Jagged{}, false
}

// DedupedAt returns the i-th deduplicated tensor.
func (ik *IKJT) DedupedAt(i int) Jagged { return ik.tensors[i] }

// ToKJT expands the IKJT back to a KJT with the original batch size using
// jagged index selection (paper §5 "Jagged Index Select"). The expansion
// encodes exactly the same logical data the IKJT was built from.
func (ik *IKJT) ToKJT() *KJT {
	tensors := make([]Jagged, len(ik.tensors))
	for i, t := range ik.tensors {
		tensors[i] = JaggedIndexSelect(t, ik.inverseLookup)
	}
	kjt, err := NewKJT(ik.keys, tensors)
	if err != nil {
		panic(err) // unreachable: expansion preserves invariants
	}
	return kjt
}

// Feature expands a single key back to its full-batch jagged tensor.
func (ik *IKJT) Feature(key string) (Jagged, bool) {
	dd, ok := ik.Deduped(key)
	if !ok {
		return Jagged{}, false
	}
	return JaggedIndexSelect(dd, ik.inverseLookup), true
}

// Stats computes dedup statistics for the group, given the original (pre-
// dedup) total value count across all features in the group.
func (ik *IKJT) Stats(originalValues int) DedupStats {
	dedup := 0
	for _, t := range ik.tensors {
		dedup += t.NumValues()
	}
	return DedupStats{
		Batch:          ik.batch,
		UniqueRows:     ik.UniqueRows(),
		OriginalValues: originalValues,
		DedupValues:    dedup,
	}
}

// MeasuredFactor recomputes the dedup factor by expanding the IKJT: the
// ratio of expanded to stored values. It needs no external bookkeeping.
// One pass over the inverse lookup counts how often each unique row
// expands; every tensor then reuses those counts, making the walk
// O(batch + keys*unique) instead of O(keys*batch).
func (ik *IKJT) MeasuredFactor() float64 {
	counts := make([]int64, ik.UniqueRows())
	for _, u := range ik.inverseLookup {
		counts[u]++
	}
	var stored, expanded int64
	for _, t := range ik.tensors {
		stored += int64(t.NumValues())
		for u, c := range counts {
			expanded += c * int64(t.RowLen(u))
		}
	}
	if stored == 0 {
		return 1
	}
	return float64(expanded) / float64(stored)
}

// WireBytes reports the full transmission size (values + offsets for every
// feature, plus the shared inverse lookup). This is what readers send to
// trainers (paper §4.3).
func (ik *IKJT) WireBytes() int {
	total := len(ik.inverseLookup) * OffsetBytes
	for _, t := range ik.tensors {
		total += t.WireBytes()
	}
	return total
}

// SDDWireBytes reports the bytes sent during sparse data distribution:
// only values and offsets cross the network; inverse-lookup slices stay
// local to the originating GPU (paper §5 "Sparse Data Distribution").
func (ik *IKJT) SDDWireBytes() int {
	total := 0
	for _, t := range ik.tensors {
		total += t.WireBytes()
	}
	return total
}

// Validate checks the IKJT invariants: every tensor has UniqueRows rows,
// every inverse-lookup entry is in range, and the group is non-empty.
func (ik *IKJT) Validate() error {
	if len(ik.keys) == 0 {
		return fmt.Errorf("tensor: ikjt has no keys")
	}
	if len(ik.keys) != len(ik.tensors) {
		return fmt.Errorf("tensor: ikjt has %d keys but %d tensors", len(ik.keys), len(ik.tensors))
	}
	unique := ik.UniqueRows()
	for i, t := range ik.tensors {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("tensor: ikjt key %q: %w", ik.keys[i], err)
		}
		if t.Rows() != unique {
			return fmt.Errorf("tensor: ikjt key %q has %d unique rows, want %d", ik.keys[i], t.Rows(), unique)
		}
	}
	if len(ik.inverseLookup) != ik.batch {
		return fmt.Errorf("tensor: ikjt inverse lookup has %d entries, want %d", len(ik.inverseLookup), ik.batch)
	}
	for row, u := range ik.inverseLookup {
		if u < 0 || int(u) >= unique {
			return fmt.Errorf("tensor: ikjt inverse lookup[%d]=%d out of range [0,%d)", row, u, unique)
		}
	}
	return nil
}

// MapDeduped returns a new IKJT in which the deduplicated tensor of key
// has been replaced by fn's output. This is the primitive behind the
// paper's transparent preprocessing wrappers (§4.3): a transform written
// against KJT offsets/values runs over the deduplicated slices only. The
// replacement must keep the same number of unique rows (row lengths may
// change, e.g. truncation).
func (ik *IKJT) MapDeduped(key string, fn func(Jagged) Jagged) (*IKJT, error) {
	idx := -1
	for i, k := range ik.keys {
		if k == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("tensor: ikjt has no key %q", key)
	}
	out := fn(ik.tensors[idx])
	if out.Rows() != ik.UniqueRows() {
		return nil, fmt.Errorf("tensor: transform changed unique rows for %q: %d -> %d",
			key, ik.UniqueRows(), out.Rows())
	}
	tensors := append([]Jagged(nil), ik.tensors...)
	tensors[idx] = out
	return &IKJT{
		keys:          append([]string(nil), ik.keys...),
		tensors:       tensors,
		inverseLookup: ik.inverseLookup,
		batch:         ik.batch,
	}, nil
}

// fromParts builds an IKJT from raw parts, validating invariants. Used by
// deserialization.
func ikjtFromParts(keys []string, tensors []Jagged, inverse []int32) (*IKJT, error) {
	ik := &IKJT{keys: keys, tensors: tensors, inverseLookup: inverse, batch: len(inverse)}
	if err := ik.Validate(); err != nil {
		return nil, err
	}
	return ik, nil
}
