package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// Deduper performs grouped exact-match row deduplication (the reader-side
// duplicate detection of paper §6.3) with no per-batch table allocation.
// It owns an open-addressed int32 hash table plus scratch slices that are
// reset — not reallocated — between batches, so a reader converting a
// stream of batches pays the table cost once and amortizes it forever.
//
// Reuse contract: the IKJT returned by Dedup never retains references into
// the Deduper's scratch storage; its inverse lookup, value, and offset
// slices are freshly allocated at their exact final sizes. Callers may
// therefore hold earlier outputs indefinitely while continuing to call
// Dedup. A Deduper is NOT safe for concurrent use; give each worker its
// own (the reader pipeline keeps one per dedup group).
type Deduper struct {
	// table is the open-addressed hash table: 0 means empty, otherwise the
	// stored value is uniqueIndex+1. Cleared (memclr) between batches.
	table []int32
	// hashes holds the per-batch-row group hash.
	hashes []uint64
	// firstRow maps each unique index to the first batch row carrying that
	// row group, so equality probes compare against the input tensors
	// directly instead of an incrementally built copy.
	firstRow []int32
}

// NewDeduper returns an empty Deduper; storage grows on first use.
func NewDeduper() *Deduper { return &Deduper{} }

// Multiplicative mixing constants (splitmix64 finalizer family). The hash
// consumes one 64-bit multiply per value instead of the eight byte-wise
// FNV rounds the seed implementation spent, and correctness never depends
// on hash quality: collisions fall through to full row comparison.
const (
	mixMul1 = 0xff51afd7ed558ccd
	mixMul2 = 0xc4ceb9fe1a85ec53
)

func mix64(h, v uint64) uint64 {
	h ^= v
	h *= mixMul1
	h ^= h >> 33
	return h
}

// hashRowGroup hashes row `row` across all features of a group,
// word-at-a-time over the uint64 values. Row lengths are folded in so
// [1,2]+[3] cannot collide with [1]+[2,3] across feature boundaries.
func hashRowGroup(features []Jagged, row int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for fi := range features {
		start, end := features[fi].RowBounds(row)
		h = mix64(h, uint64(end-start))
		for _, v := range features[fi].Values[start:end] {
			h = mix64(h, uint64(v))
		}
	}
	h *= mixMul2
	h ^= h >> 29
	return h
}

// rowGroupEqual reports whether batch rows a and b are identical across
// every feature of the group.
func rowGroupEqual(features []Jagged, a, b int) bool {
	for fi := range features {
		as, ae := features[fi].RowBounds(a)
		bs, be := features[fi].RowBounds(b)
		if ae-as != be-bs {
			return false
		}
		av, bv := features[fi].Values[as:ae], features[fi].Values[bs:be]
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// reset prepares the scratch storage for a batch of the given size.
func (d *Deduper) reset(batch int) {
	// Load factor <= 0.5: table has at least 2*batch power-of-two slots.
	need := 4
	if batch > 2 {
		need = 1 << bits.Len(uint(2*batch-1))
	}
	if len(d.table) < need {
		d.table = make([]int32, need)
	} else {
		clear(d.table)
	}
	if cap(d.hashes) < batch {
		d.hashes = make([]uint64, batch)
		d.firstRow = make([]int32, batch)
	}
	d.hashes = d.hashes[:batch]
	d.firstRow = d.firstRow[:batch]
}

// Dedup deduplicates a parallel set of jagged tensors (one per key,
// identical row counts) into a grouped IKJT. A batch row deduplicates only
// if ALL features in the group match a prior row exactly, which maintains
// the shared inverse-lookup invariant.
func (d *Deduper) Dedup(keys []string, features []Jagged) (*IKJT, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("tensor: dedup: empty key group")
	}
	if len(keys) != len(features) {
		return nil, fmt.Errorf("tensor: dedup: %d keys but %d tensors", len(keys), len(features))
	}
	batch := features[0].Rows()
	for i := 1; i < len(features); i++ {
		if features[i].Rows() != batch {
			return nil, fmt.Errorf("tensor: dedup: key %q has %d rows, want %d", keys[i], features[i].Rows(), batch)
		}
	}

	d.reset(batch)
	mask := uint64(len(d.table) - 1)
	inverse := make([]int32, batch)
	next := int32(0)

	// Pass 1: hash + probe. The table stores unique indices; equality
	// probes compare candidate rows inside the input features, so no
	// unique copy is built yet.
	for row := 0; row < batch; row++ {
		h := hashRowGroup(features, row)
		d.hashes[row] = h
		slot := h & mask
		for {
			cand := d.table[slot]
			if cand == 0 {
				d.table[slot] = next + 1
				d.firstRow[next] = int32(row)
				inverse[row] = next
				next++
				break
			}
			u := cand - 1
			first := int(d.firstRow[u])
			if d.hashes[first] == h && rowGroupEqual(features, row, first) {
				inverse[row] = u
				break
			}
			slot = (slot + 1) & mask
		}
	}

	// Pass 2: bulk-copy the unique rows into exactly-sized buffers.
	uniques := make([]Jagged, len(features))
	firstRows := d.firstRow[:next]
	for fi := range features {
		total := 0
		for _, row := range firstRows {
			total += features[fi].RowLen(int(row))
		}
		values := make([]Value, total)
		offsets := make([]int32, next)
		pos := 0
		for ui, row := range firstRows {
			offsets[ui] = int32(pos)
			start, end := features[fi].RowBounds(int(row))
			pos += copy(values[pos:], features[fi].Values[start:end])
		}
		uniques[fi] = Jagged{Values: values, Offsets: offsets}
	}

	return &IKJT{
		keys:          append([]string(nil), keys...),
		tensors:       uniques,
		inverseLookup: inverse,
		batch:         batch,
	}, nil
}

// deduperPool backs the package-level DedupJagged convenience entry point
// so one-shot callers still amortize table allocation across calls.
var deduperPool = sync.Pool{New: func() any { return NewDeduper() }}

// DedupJagged deduplicates a parallel set of jagged tensors (one per key,
// identical row counts) into a grouped IKJT using a pooled Deduper.
func DedupJagged(keys []string, features []Jagged) (*IKJT, error) {
	d := deduperPool.Get().(*Deduper)
	ik, err := d.Dedup(keys, features)
	deduperPool.Put(d)
	return ik, err
}

// DedupKJT deduplicates the given feature keys of kjt into a single grouped
// IKJT. The features form one group and share the inverseLookup slice. It
// errors if any key is missing from kjt.
func DedupKJT(kjt *KJT, keys []string) (*IKJT, error) {
	features := make([]Jagged, len(keys))
	for i, key := range keys {
		jt, ok := kjt.Feature(key)
		if !ok {
			return nil, fmt.Errorf("tensor: dedup: missing key %q", key)
		}
		features[i] = jt
	}
	return DedupJagged(keys, features)
}
