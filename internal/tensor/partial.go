package tensor

import "fmt"

// PartialIKJT implements the partial-deduplication extension of §7
// ("Supporting Partial IKJTs"). It exploits the fact that partial matches
// in session data are shifts: a sequence feature is updated by appending a
// new ID and sliding its window, so consecutive rows overlap heavily.
//
// A partial IKJT removes the offsets slice and instead encodes each row's
// [offset, length] pair directly in the inverse-lookup slice, allowing rows
// to reference arbitrary overlapping windows of the shared values slice.
// The paper's worked example: rows [3 4 5], [4 5 6], [3 4 5] encode as
// values=[3 4 5 6] with inverseLookup=[[0 3] [1 3] [0 3]].
type PartialIKJT struct {
	Key    string
	Values []Value
	// Lookup[i] = {offset, length} of row i within Values.
	Lookup [][2]int32
}

// PartialDedup builds a PartialIKJT from a jagged tensor. Exact duplicates
// of any prior row reuse that row's window; rows that are forward shifts of
// the immediately preceding unique window (share a suffix of the values
// buffer as their prefix) append only the new tail. Rows with no overlap
// are appended whole.
func PartialDedup(key string, j Jagged) *PartialIKJT {
	p := &PartialIKJT{
		Key:    key,
		Lookup: make([][2]int32, j.Rows()),
	}
	// Exact-match index over windows we have emitted, so repeated rows
	// (the dominant case, §3) cost O(1) values.
	type window struct{ off, length int32 }
	seen := make(map[uint64][]window, j.Rows())

	hashRow := func(vals []Value) uint64 {
		h := mix64(0x9e3779b97f4a7c15, uint64(len(vals)))
		for _, v := range vals {
			h = mix64(h, uint64(v))
		}
		h *= mixMul2
		h ^= h >> 29
		return h
	}
	windowEqual := func(vals []Value, w window) bool {
		if int(w.length) != len(vals) {
			return false
		}
		for i, v := range vals {
			if p.Values[int(w.off)+i] != v {
				return false
			}
		}
		return true
	}

	for row := 0; row < j.Rows(); row++ {
		vals := j.Row(row)
		h := hashRow(vals)
		matched := false
		for _, w := range seen[h] {
			if windowEqual(vals, w) {
				p.Lookup[row] = [2]int32{w.off, w.length}
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		// Shift detection: the longest prefix of this row that equals a
		// suffix of the current values buffer. A one-step shift of the
		// previous row overlaps in all but its final element.
		overlap := 0
		maxK := len(vals)
		if len(p.Values) < maxK {
			maxK = len(p.Values)
		}
		for k := maxK; k > 0; k-- {
			tail := p.Values[len(p.Values)-k:]
			ok := true
			for i := 0; i < k; i++ {
				if tail[i] != vals[i] {
					ok = false
					break
				}
			}
			if ok {
				overlap = k
				break
			}
		}
		off := int32(len(p.Values) - overlap)
		p.Values = append(p.Values, vals[overlap:]...)
		w := window{off: off, length: int32(len(vals))}
		p.Lookup[row] = [2]int32{w.off, w.length}
		seen[h] = append(seen[h], w)
	}
	return p
}

// Rows reports the logical batch size.
func (p *PartialIKJT) Rows() int { return len(p.Lookup) }

// Row returns the value window for row i, aliasing the shared buffer.
func (p *PartialIKJT) Row(i int) []Value {
	off, length := p.Lookup[i][0], p.Lookup[i][1]
	return p.Values[off : off+length]
}

// ToJagged expands back to the original jagged tensor.
func (p *PartialIKJT) ToJagged() Jagged {
	total := 0
	for i := range p.Lookup {
		total += int(p.Lookup[i][1])
	}
	out := Jagged{
		Values:  make([]Value, 0, total),
		Offsets: make([]int32, len(p.Lookup)),
	}
	for i := range p.Lookup {
		out.Offsets[i] = int32(len(out.Values))
		out.Values = append(out.Values, p.Row(i)...)
	}
	return out
}

// Factor returns the measured dedup factor: expanded values over stored
// values.
func (p *PartialIKJT) Factor() float64 {
	if len(p.Values) == 0 {
		return 1
	}
	expanded := 0
	for i := range p.Lookup {
		expanded += int(p.Lookup[i][1])
	}
	return float64(expanded) / float64(len(p.Values))
}

// WireBytes reports the transmission size: values plus one [offset,length]
// pair per row.
func (p *PartialIKJT) WireBytes() int {
	return len(p.Values)*ValueBytes + len(p.Lookup)*2*OffsetBytes
}

// Validate checks that every lookup window lies within the values buffer.
func (p *PartialIKJT) Validate() error {
	for i, w := range p.Lookup {
		off, length := int(w[0]), int(w[1])
		if off < 0 || length < 0 || off+length > len(p.Values) {
			return fmt.Errorf("tensor: partial ikjt row %d window [%d,%d) exceeds %d values",
				i, off, off+length, len(p.Values))
		}
	}
	return nil
}
