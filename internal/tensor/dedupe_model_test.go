package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestPaperDedupeModelExample checks the paper's §4.2 worked example:
// B = S = 3, l(b) = 3, d(b) = 0.5 gives DedupeLen = 6, DedupeFactor = 1.5.
func TestPaperDedupeModelExample(t *testing.T) {
	m := FeatureModel{S: 3, B: 3, D: 0.5, L: 3}
	if got := m.DedupeLen(); math.Abs(got-6) > 1e-9 {
		t.Errorf("DedupeLen = %v, want 6", got)
	}
	if got := m.DedupeFactor(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("DedupeFactor = %v, want 1.5", got)
	}
}

func TestDedupeModelMonotonicity(t *testing.T) {
	base := FeatureModel{S: 8, B: 4096, D: 0.8, L: 100}
	f0 := base.DedupeFactor()
	// Factor increases with S, d(f); DedupeLen increases with l(f), B.
	moreS := base
	moreS.S = 16
	if moreS.DedupeFactor() <= f0 {
		t.Errorf("factor should grow with S: %v vs %v", moreS.DedupeFactor(), f0)
	}
	moreD := base
	moreD.D = 0.95
	if moreD.DedupeFactor() <= f0 {
		t.Errorf("factor should grow with d(f): %v vs %v", moreD.DedupeFactor(), f0)
	}
	if base.DedupeFactor() < 1 {
		t.Errorf("factor %v < 1", base.DedupeFactor())
	}
}

func TestDedupeModelEdgeCases(t *testing.T) {
	// d=0: nothing duplicated, factor exactly 1.
	m := FeatureModel{S: 10, B: 100, D: 0, L: 50}
	if got := m.DedupeFactor(); got != 1 {
		t.Errorf("d=0 factor = %v, want 1", got)
	}
	// S=1: single sample per session, factor 1 regardless of d.
	m = FeatureModel{S: 1, B: 100, D: 0.99, L: 50}
	if got := m.DedupeFactor(); got != 1 {
		t.Errorf("S=1 factor = %v, want 1", got)
	}
	// S<=0 degenerates to no dedup.
	m = FeatureModel{S: 0, B: 100, D: 0.9, L: 50}
	if got := m.DedupeLen(); got != 5000 {
		t.Errorf("S=0 DedupeLen = %v, want 5000", got)
	}
}

func TestWorthDeduplicating(t *testing.T) {
	// The paper's example lands exactly at 1.5, which is not > 1.5.
	if (FeatureModel{S: 3, B: 3, D: 0.5, L: 3}).WorthDeduplicating() {
		t.Error("factor exactly 1.5 should not pass the > 1.5 threshold")
	}
	if !(FeatureModel{S: 16.5, B: 4096, D: 0.9, L: 100}).WorthDeduplicating() {
		t.Error("high-dup long feature should pass the threshold")
	}
	if (FeatureModel{S: 16.5, B: 4096, D: 0.05, L: 100}).WorthDeduplicating() {
		t.Error("item-like low-dup feature should not pass")
	}
}

func TestLookupOverheadNegligibleForLongFeatures(t *testing.T) {
	m := FeatureModel{S: 16, B: 4096, D: 0.9, L: 1000}
	if got := m.LookupOverheadRatio(); got > 0.01 {
		t.Errorf("overhead ratio = %v, want <= 1%% for l(f)*B >> B", got)
	}
	short := FeatureModel{S: 16, B: 4096, D: 0.9, L: 1}
	if got := short.LookupOverheadRatio(); got < 1 {
		t.Errorf("overhead ratio = %v for l=1, want >= 1 (2 aux entries per value)", got)
	}
}

// TestDedupeModelPredictsMeasuredFactor validates the analytic model
// against the actual dedup implementation on a synthetic adjacent-row
// workload matching the model's assumptions.
func TestDedupeModelPredictsMeasuredFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const (
		B = 8192
		S = 8
		L = 40
		D = 0.75
	)
	rows := make([][]Value, 0, B)
	var cur []Value
	fresh := func() []Value {
		row := make([]Value, L)
		for c := range row {
			row[c] = Value(rng.Int63())
		}
		return row
	}
	for len(rows) < B {
		cur = fresh()
		rows = append(rows, cur)
		// S-1 more samples in this session; each keeps the value with
		// probability D.
		for s := 1; s < S && len(rows) < B; s++ {
			if rng.Float64() >= D {
				cur = fresh()
			}
			rows = append(rows, cur)
		}
	}
	ik, err := DedupJagged([]string{"f"}, []Jagged{NewJagged(rows)})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	measured := ik.MeasuredFactor()
	predicted := FeatureModel{S: S, B: B, D: D, L: L}.DedupeFactor()
	// The model assumes adjacent-row dedup; the implementation can also
	// catch non-adjacent repeats, so measured >= predicted within noise.
	if measured < predicted*0.9 {
		t.Errorf("measured factor %.3f far below model prediction %.3f", measured, predicted)
	}
	if measured > predicted*1.35 {
		t.Errorf("measured factor %.3f far above model prediction %.3f", measured, predicted)
	}
}
