package tensor

import (
	"testing"
)

func TestJaggedIndexSelect(t *testing.T) {
	j := NewJagged([][]Value{{1, 2}, {3}, {}, {4, 5, 6}})
	out := JaggedIndexSelect(j, []int32{3, 0, 0, 2})
	want := NewJagged([][]Value{{4, 5, 6}, {1, 2}, {1, 2}, {}})
	if !out.Equal(want) {
		t.Fatalf("JaggedIndexSelect = %v, want %v", out, want)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestJaggedIndexSelectEmptyIndices(t *testing.T) {
	j := NewJagged([][]Value{{1}})
	out := JaggedIndexSelect(j, nil)
	if out.Rows() != 0 || out.NumValues() != 0 {
		t.Fatalf("empty select: rows=%d values=%d", out.Rows(), out.NumValues())
	}
}

func TestJaggedIndexSelectIdentity(t *testing.T) {
	j := NewJagged([][]Value{{1, 2}, {}, {3}})
	idx := []int32{0, 1, 2}
	if !JaggedIndexSelect(j, idx).Equal(j) {
		t.Fatal("identity select should reproduce input")
	}
}

func TestDenseIndexSelect(t *testing.T) {
	d := NewDense(3, 2)
	for i := 0; i < 3; i++ {
		for c := 0; c < 2; c++ {
			d.Set(i, c, float32(10*i+c))
		}
	}
	out := DenseIndexSelect(d, []int32{2, 2, 0})
	if out.RowsN != 3 || out.Cols != 2 {
		t.Fatalf("shape = %dx%d", out.RowsN, out.Cols)
	}
	wantRows := [][]float32{{20, 21}, {20, 21}, {0, 1}}
	for i, want := range wantRows {
		got := out.Row(i)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("row %d = %v, want %v", i, got, want)
			}
		}
	}
}

func TestDenseIndexAddIsTransposeOfSelect(t *testing.T) {
	// For y = select(x, idx), grad_x = indexAdd(zeros, idx, grad_y).
	idx := []int32{1, 0, 1, 1}
	gradY := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		gradY.Set(i, 0, float32(i+1))
		gradY.Set(i, 1, float32(2*(i+1)))
	}
	gradX := NewDense(2, 2)
	DenseIndexAdd(gradX, idx, gradY)
	// Row 0 receives contribution from i=1; row 1 from i=0,2,3.
	if gradX.At(0, 0) != 2 || gradX.At(0, 1) != 4 {
		t.Errorf("gradX row 0 = %v", gradX.Row(0))
	}
	if gradX.At(1, 0) != 1+3+4 || gradX.At(1, 1) != 2+6+8 {
		t.Errorf("gradX row 1 = %v", gradX.Row(1))
	}
}

func TestPaddedDenseFromJagged(t *testing.T) {
	j := NewJagged([][]Value{{1, 2, 3}, {4}, {}})
	dense, maxLen := PaddedDenseFromJagged(j, -1)
	if maxLen != 3 {
		t.Fatalf("maxLen = %d, want 3", maxLen)
	}
	want := [][]Value{{1, 2, 3}, {4, -1, -1}, {-1, -1, -1}}
	for i := range want {
		for c := range want[i] {
			if dense[i][c] != want[i][c] {
				t.Fatalf("dense[%d] = %v, want %v", i, dense[i], want[i])
			}
		}
	}
}

// TestPaddingMemoryOverheadVsJagged quantifies why jagged index select
// matters (paper O6): padding a skewed batch inflates memory by the ratio
// of max to mean length.
func TestPaddingMemoryOverheadVsJagged(t *testing.T) {
	rows := make([][]Value, 100)
	for i := range rows {
		rows[i] = []Value{Value(i)} // length 1
	}
	long := make([]Value, 1000)
	for c := range long {
		long[c] = Value(c)
	}
	rows[50] = long
	j := NewJagged(rows)
	dense, maxLen := PaddedDenseFromJagged(j, 0)
	padded := len(dense) * maxLen
	if padded <= 50*j.NumValues() {
		t.Errorf("expected >50x inflation: padded=%d jagged=%d", padded, j.NumValues())
	}
}
