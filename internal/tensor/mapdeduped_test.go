package tensor

import "testing"

func TestMapDedupedTransformsUniqueRowsOnly(t *testing.T) {
	b := NewJagged([][]Value{{3, 4, 5}, {4, 5, 6}, {3, 4, 5}})
	ik, err := DedupJagged([]string{"b"}, []Jagged{b})
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	out, err := ik.MapDeduped("b", func(j Jagged) Jagged {
		calls++
		c := j.Clone()
		for i := range c.Values {
			c.Values[i] *= 10
		}
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("transform called %d times", calls)
	}
	// Expansion reflects the transform on every (duplicated) row.
	j, _ := out.Feature("b")
	want := [][]Value{{30, 40, 50}, {40, 50, 60}, {30, 40, 50}}
	for r := range want {
		got := j.Row(r)
		for i := range want[r] {
			if got[i] != want[r][i] {
				t.Fatalf("row %d = %v want %v", r, got, want[r])
			}
		}
	}
	// Original IKJT untouched.
	orig, _ := ik.Deduped("b")
	if orig.Values[0] != 3 {
		t.Fatal("MapDeduped mutated the source IKJT")
	}
	// Inverse lookup is shared, not copied.
	if &out.InverseLookup()[0] != &ik.InverseLookup()[0] {
		t.Fatal("inverse lookup should be shared")
	}
}

func TestMapDedupedRowReshape(t *testing.T) {
	b := NewJagged([][]Value{{1, 2, 3, 4}, {1, 2, 3, 4}, {9}})
	ik, err := DedupJagged([]string{"b"}, []Jagged{b})
	if err != nil {
		t.Fatal(err)
	}
	// Truncation-style transforms may change row lengths but not counts.
	out, err := ik.MapDeduped("b", func(j Jagged) Jagged {
		rows := make([][]Value, j.Rows())
		for i := 0; i < j.Rows(); i++ {
			r := j.Row(i)
			if len(r) > 2 {
				r = r[:2]
			}
			rows[i] = append([]Value(nil), r...)
		}
		return NewJagged(rows)
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := out.Feature("b")
	if j.RowLen(0) != 2 || j.RowLen(1) != 2 || j.RowLen(2) != 1 {
		t.Fatalf("reshaped rows wrong: %v", j)
	}

	// Changing the unique-row COUNT is rejected.
	if _, err := ik.MapDeduped("b", func(j Jagged) Jagged {
		return EmptyJagged(j.Rows() + 1)
	}); err == nil {
		t.Fatal("expected error for changed row count")
	}
}

func TestMapDedupedUnknownKey(t *testing.T) {
	b := NewJagged([][]Value{{1}})
	ik, err := DedupJagged([]string{"b"}, []Jagged{b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ik.MapDeduped("nope", func(j Jagged) Jagged { return j }); err == nil {
		t.Fatal("expected error for unknown key")
	}
}

func TestMapDedupedGroupedKeepsOtherFeatures(t *testing.T) {
	c := NewJagged([][]Value{{7, 8}, {7, 8}, {10}})
	d := NewJagged([][]Value{{9}, {9}, {11}})
	ik, err := DedupJagged([]string{"c", "d"}, []Jagged{c, d})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ik.MapDeduped("c", func(j Jagged) Jagged {
		cl := j.Clone()
		for i := range cl.Values {
			cl.Values[i]++
		}
		return cl
	})
	if err != nil {
		t.Fatal(err)
	}
	// d is untouched.
	jd, _ := out.Feature("d")
	if !jd.Equal(d) {
		t.Fatal("untransformed group member changed")
	}
	jc, _ := out.Feature("c")
	if jc.Row(0)[0] != 8 || jc.Row(2)[0] != 11 {
		t.Fatalf("transformed member wrong: %v", jc)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}
