package tensor

import (
	"testing"
)

func TestNewJaggedBasics(t *testing.T) {
	j := NewJagged([][]Value{{1, 2}, {}, {3, 4, 5}})
	if got := j.Rows(); got != 3 {
		t.Fatalf("Rows() = %d, want 3", got)
	}
	if got := j.NumValues(); got != 5 {
		t.Fatalf("NumValues() = %d, want 5", got)
	}
	wantOff := []int32{0, 2, 2}
	for i, w := range wantOff {
		if j.Offsets[i] != w {
			t.Errorf("Offsets[%d] = %d, want %d", i, j.Offsets[i], w)
		}
	}
	if got := j.RowLen(1); got != 0 {
		t.Errorf("RowLen(1) = %d, want 0", got)
	}
	if got := j.RowLen(2); got != 3 {
		t.Errorf("RowLen(2) = %d, want 3", got)
	}
	if err := j.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

// TestPaperFigure5KJT reproduces the paper's Figure 5 KJT example: feature
// a over rows [[1,2], [], [1,2]] becomes values [1,2,1,2], offsets [0,2,2].
func TestPaperFigure5KJT(t *testing.T) {
	j := NewJagged([][]Value{{1, 2}, {}, {1, 2}})
	wantVals := []Value{1, 2, 1, 2}
	wantOffs := []int32{0, 2, 2}
	if len(j.Values) != len(wantVals) {
		t.Fatalf("values = %v, want %v", j.Values, wantVals)
	}
	for i := range wantVals {
		if j.Values[i] != wantVals[i] {
			t.Fatalf("values = %v, want %v", j.Values, wantVals)
		}
	}
	for i := range wantOffs {
		if j.Offsets[i] != wantOffs[i] {
			t.Fatalf("offsets = %v, want %v", j.Offsets, wantOffs)
		}
	}
}

func TestJaggedRowAccess(t *testing.T) {
	rows := [][]Value{{10}, {20, 21, 22}, {}, {30, 31}}
	j := NewJagged(rows)
	for i, want := range rows {
		got := j.Row(i)
		if len(got) != len(want) {
			t.Fatalf("Row(%d) = %v, want %v", i, got, want)
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("Row(%d) = %v, want %v", i, got, want)
			}
		}
	}
}

func TestJaggedToRowsRoundTrip(t *testing.T) {
	rows := [][]Value{{5, 6, 7}, {}, {8}, {9, 10}}
	j := NewJagged(rows)
	back := j.ToRows()
	j2 := NewJagged(back)
	if !j.Equal(j2) {
		t.Fatalf("round trip mismatch: %v vs %v", j, j2)
	}
}

func TestJaggedEmpty(t *testing.T) {
	j := NewJagged(nil)
	if j.Rows() != 0 || j.NumValues() != 0 {
		t.Fatalf("empty jagged has %d rows, %d values", j.Rows(), j.NumValues())
	}
	if err := j.Validate(); err != nil {
		t.Errorf("Validate() on empty = %v", err)
	}
	e := EmptyJagged(4)
	if e.Rows() != 4 || e.NumValues() != 0 {
		t.Fatalf("EmptyJagged(4): rows=%d values=%d", e.Rows(), e.NumValues())
	}
	for i := 0; i < 4; i++ {
		if e.RowLen(i) != 0 {
			t.Errorf("EmptyJagged row %d has len %d", i, e.RowLen(i))
		}
	}
}

func TestJaggedValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name string
		j    Jagged
	}{
		{"first offset nonzero", Jagged{Values: []Value{1}, Offsets: []int32{1}}},
		{"non-monotone", Jagged{Values: []Value{1, 2, 3}, Offsets: []int32{0, 2, 1}}},
		{"offset beyond values", Jagged{Values: []Value{1}, Offsets: []int32{0, 5}}},
		{"zero rows with values", Jagged{Values: []Value{1}}},
	}
	for _, tc := range cases {
		if err := tc.j.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestJaggedWireBytes(t *testing.T) {
	j := NewJagged([][]Value{{1, 2, 3}, {4}})
	want := 4*ValueBytes + 2*OffsetBytes
	if got := j.WireBytes(); got != want {
		t.Errorf("WireBytes() = %d, want %d", got, want)
	}
}

func TestJaggedConcat(t *testing.T) {
	a := NewJagged([][]Value{{1, 2}, {3}})
	b := NewJagged([][]Value{{}, {4, 5}})
	c := a.Concat(b)
	want := NewJagged([][]Value{{1, 2}, {3}, {}, {4, 5}})
	if !c.Equal(want) {
		t.Fatalf("Concat = %v, want %v", c, want)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestJaggedCloneIndependent(t *testing.T) {
	a := NewJagged([][]Value{{1, 2}})
	b := a.Clone()
	b.Values[0] = 99
	if a.Values[0] == 99 {
		t.Fatal("Clone shares values storage")
	}
}

func TestJaggedString(t *testing.T) {
	j := NewJagged([][]Value{{1, 2}, {}})
	if got := j.String(); got != "[[1 2] []]" {
		t.Errorf("String() = %q", got)
	}
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 5.5)
	if got := d.At(1, 2); got != 5.5 {
		t.Errorf("At(1,2) = %v, want 5.5", got)
	}
	if got := d.WireBytes(); got != 24 {
		t.Errorf("WireBytes() = %d, want 24", got)
	}
	row := d.Row(1)
	if len(row) != 3 || row[2] != 5.5 {
		t.Errorf("Row(1) = %v", row)
	}
	c := d.Clone()
	c.Set(0, 0, 1)
	if d.At(0, 0) == 1 {
		t.Error("Clone shares storage")
	}
}
