package tensor

import (
	"math/rand"
	"testing"
)

// figure5KJT builds the paper's Figure 5 batch of 3 rows:
//
//	row0: a:[1,2] b:[3,4,5]   c:[7,8]  d:[9]   label 1
//	row1:         b:[4,5,6]   c:[7,8]  d:[9]   label 0
//	row2: a:[1,2] b:[3,4,5]   c:[10]   d:[11]  label 1
func figure5KJT(t *testing.T) *KJT {
	t.Helper()
	kjt, err := NewKJT(
		[]string{"feature_a", "feature_b", "feature_c", "feature_d"},
		[]Jagged{
			NewJagged([][]Value{{1, 2}, {}, {1, 2}}),
			NewJagged([][]Value{{3, 4, 5}, {4, 5, 6}, {3, 4, 5}}),
			NewJagged([][]Value{{7, 8}, {7, 8}, {10}}),
			NewJagged([][]Value{{9}, {9}, {11}}),
		})
	if err != nil {
		t.Fatalf("NewKJT: %v", err)
	}
	return kjt
}

// TestPaperFigure5SingleFeatureIKJT checks feature b's IKJT against the
// paper's worked example: values [3,4,5,4,5,6], offsets [0,3],
// inverse_lookup [0,1,0].
func TestPaperFigure5SingleFeatureIKJT(t *testing.T) {
	kjt := figure5KJT(t)
	ik, err := DedupKJT(kjt, []string{"feature_b"})
	if err != nil {
		t.Fatalf("DedupKJT: %v", err)
	}
	if err := ik.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dd, _ := ik.Deduped("feature_b")
	wantVals := []Value{3, 4, 5, 4, 5, 6}
	wantOffs := []int32{0, 3}
	wantInv := []int32{0, 1, 0}
	if len(dd.Values) != len(wantVals) {
		t.Fatalf("values = %v, want %v", dd.Values, wantVals)
	}
	for i := range wantVals {
		if dd.Values[i] != wantVals[i] {
			t.Fatalf("values = %v, want %v", dd.Values, wantVals)
		}
	}
	if len(dd.Offsets) != len(wantOffs) {
		t.Fatalf("offsets = %v, want %v", dd.Offsets, wantOffs)
	}
	for i := range wantOffs {
		if dd.Offsets[i] != wantOffs[i] {
			t.Fatalf("offsets = %v, want %v", dd.Offsets, wantOffs)
		}
	}
	inv := ik.InverseLookup()
	for i := range wantInv {
		if inv[i] != wantInv[i] {
			t.Fatalf("inverse = %v, want %v", inv, wantInv)
		}
	}
	// inverse_lookup[0] == inverse_lookup[2], as the paper calls out.
	if inv[0] != inv[2] {
		t.Errorf("rows 0 and 2 should share a unique entry")
	}
}

// TestPaperFigure5GroupedIKJT checks the grouped dedup of features c and d:
// c: values [7,8,10] offsets [0,2]; d: values [9,11] offsets [0,1];
// shared inverse_lookup [0,0,1].
func TestPaperFigure5GroupedIKJT(t *testing.T) {
	kjt := figure5KJT(t)
	ik, err := DedupKJT(kjt, []string{"feature_c", "feature_d"})
	if err != nil {
		t.Fatalf("DedupKJT: %v", err)
	}
	c, _ := ik.Deduped("feature_c")
	d, _ := ik.Deduped("feature_d")

	checkJagged := func(name string, got Jagged, wantVals []Value, wantOffs []int32) {
		t.Helper()
		if len(got.Values) != len(wantVals) {
			t.Fatalf("%s values = %v, want %v", name, got.Values, wantVals)
		}
		for i := range wantVals {
			if got.Values[i] != wantVals[i] {
				t.Fatalf("%s values = %v, want %v", name, got.Values, wantVals)
			}
		}
		if len(got.Offsets) != len(wantOffs) {
			t.Fatalf("%s offsets = %v, want %v", name, got.Offsets, wantOffs)
		}
		for i := range wantOffs {
			if got.Offsets[i] != wantOffs[i] {
				t.Fatalf("%s offsets = %v, want %v", name, got.Offsets, wantOffs)
			}
		}
	}
	checkJagged("c", c, []Value{7, 8, 10}, []int32{0, 2})
	checkJagged("d", d, []Value{9, 11}, []int32{0, 1})

	inv := ik.InverseLookup()
	wantInv := []int32{0, 0, 1}
	for i := range wantInv {
		if inv[i] != wantInv[i] {
			t.Fatalf("inverse = %v, want %v", inv, wantInv)
		}
	}
}

func TestIKJTToKJTRoundTrip(t *testing.T) {
	kjt := figure5KJT(t)
	for _, group := range [][]string{
		{"feature_a"},
		{"feature_b"},
		{"feature_c", "feature_d"},
		{"feature_a", "feature_b", "feature_c", "feature_d"},
	} {
		ik, err := DedupKJT(kjt, group)
		if err != nil {
			t.Fatalf("DedupKJT(%v): %v", group, err)
		}
		back := ik.ToKJT()
		orig, err := kjt.Select(group)
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		if !back.Equal(orig) {
			t.Errorf("group %v: round trip mismatch", group)
		}
	}
}

// TestGroupedUnsynchronizedRowsNotDeduped verifies the paper's invariant:
// if grouped feature values are not synchronously updated, the
// unsynchronized rows are NOT deduplicated (so the shared inverse lookup
// stays correct).
func TestGroupedUnsynchronizedRowsNotDeduped(t *testing.T) {
	// Feature x repeats across rows 0/1 but feature y changes at row 1.
	x := NewJagged([][]Value{{1, 2}, {1, 2}, {1, 2}})
	y := NewJagged([][]Value{{5}, {6}, {5}})
	ik, err := DedupJagged([]string{"x", "y"}, []Jagged{x, y})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if got := ik.UniqueRows(); got != 2 {
		t.Fatalf("UniqueRows = %d, want 2 (rows 0/2 dedup, row 1 kept)", got)
	}
	inv := ik.InverseLookup()
	if inv[0] != inv[2] || inv[0] == inv[1] {
		t.Fatalf("inverse = %v, want rows 0/2 shared, row 1 distinct", inv)
	}
	// Expansion must reproduce the original data for both features.
	back := ik.ToKJT()
	gx, _ := back.Feature("x")
	gy, _ := back.Feature("y")
	if !gx.Equal(x) || !gy.Equal(y) {
		t.Error("expansion mismatch after partial synchronization")
	}
}

func TestDedupFullyDuplicatedBatch(t *testing.T) {
	rows := make([][]Value, 64)
	for i := range rows {
		rows[i] = []Value{42, 43, 44}
	}
	ik, err := DedupJagged([]string{"f"}, []Jagged{NewJagged(rows)})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if ik.UniqueRows() != 1 {
		t.Fatalf("UniqueRows = %d, want 1", ik.UniqueRows())
	}
	if got := ik.MeasuredFactor(); got != 64 {
		t.Fatalf("MeasuredFactor = %v, want 64", got)
	}
}

func TestDedupNoDuplicates(t *testing.T) {
	rows := make([][]Value, 32)
	for i := range rows {
		rows[i] = []Value{Value(i), Value(i + 1)}
	}
	j := NewJagged(rows)
	ik, err := DedupJagged([]string{"f"}, []Jagged{j})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if ik.UniqueRows() != 32 {
		t.Fatalf("UniqueRows = %d, want 32", ik.UniqueRows())
	}
	if got := ik.MeasuredFactor(); got != 1 {
		t.Fatalf("MeasuredFactor = %v, want 1", got)
	}
	dd, _ := ik.Deduped("f")
	if !dd.Equal(j) {
		t.Error("dedup of unique batch should be identity")
	}
}

func TestDedupEmptyRowsShareEntry(t *testing.T) {
	j := NewJagged([][]Value{{}, {1}, {}, {}})
	ik, err := DedupJagged([]string{"f"}, []Jagged{j})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if ik.UniqueRows() != 2 {
		t.Fatalf("UniqueRows = %d, want 2", ik.UniqueRows())
	}
	if !ik.ToKJT().FeatureAt(0).Equal(j) {
		t.Error("round trip with empty rows failed")
	}
}

// TestDedupBoundaryCollision checks that rows [1,2]+[3] and [1]+[2,3]
// across a two-feature group are not treated as duplicates (length is part
// of the hash and verification).
func TestDedupBoundaryCollision(t *testing.T) {
	x := NewJagged([][]Value{{1, 2}, {1}})
	y := NewJagged([][]Value{{3}, {2, 3}})
	ik, err := DedupJagged([]string{"x", "y"}, []Jagged{x, y})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if ik.UniqueRows() != 2 {
		t.Fatalf("UniqueRows = %d, want 2 (boundary shift must not dedup)", ik.UniqueRows())
	}
}

func TestIKJTWireBytesSmallerThanKJT(t *testing.T) {
	// Highly duplicated long-list batch: IKJT must be strictly smaller on
	// the wire, and SDD bytes exclude the inverse lookup.
	rows := make([][]Value, 128)
	for i := range rows {
		base := Value(i / 16 * 100)
		row := make([]Value, 50)
		for c := range row {
			row[c] = base + Value(c)
		}
		rows[i] = row
	}
	j := NewJagged(rows)
	ik, err := DedupJagged([]string{"f"}, []Jagged{j})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	if ik.WireBytes() >= j.WireBytes() {
		t.Errorf("IKJT wire bytes %d >= KJT %d", ik.WireBytes(), j.WireBytes())
	}
	if ik.SDDWireBytes() >= ik.WireBytes() {
		t.Errorf("SDD bytes %d should exclude inverse lookup (%d total)", ik.SDDWireBytes(), ik.WireBytes())
	}
}

func TestDedupStatsFactor(t *testing.T) {
	s := DedupStats{Batch: 4, UniqueRows: 2, OriginalValues: 100, DedupValues: 50}
	if got := s.Factor(); got != 2 {
		t.Errorf("Factor = %v, want 2", got)
	}
	zero := DedupStats{}
	if got := zero.Factor(); got != 1 {
		t.Errorf("empty Factor = %v, want 1", got)
	}
}

func TestDedupErrors(t *testing.T) {
	kjt := figure5KJT(t)
	if _, err := DedupKJT(kjt, []string{"missing"}); err == nil {
		t.Error("missing key should error")
	}
	if _, err := DedupJagged(nil, nil); err == nil {
		t.Error("empty group should error")
	}
	if _, err := DedupJagged([]string{"a", "b"}, []Jagged{NewJagged([][]Value{{1}})}); err == nil {
		t.Error("key/tensor count mismatch should error")
	}
	if _, err := DedupJagged([]string{"a", "b"}, []Jagged{
		NewJagged([][]Value{{1}}),
		NewJagged([][]Value{{1}, {2}}),
	}); err == nil {
		t.Error("row mismatch should error")
	}
}

func TestDedupLargeRandomSessionBatch(t *testing.T) {
	// Session-shaped batch: runs of identical rows, as produced by a
	// clustered table. Dedup should find exactly one unique row per run of
	// distinct values.
	rng := rand.New(rand.NewSource(7))
	var rows [][]Value
	uniqueWant := 0
	for len(rows) < 1000 {
		runLen := 1 + rng.Intn(20)
		row := make([]Value, 1+rng.Intn(30))
		for c := range row {
			row[c] = Value(rng.Int63n(1 << 40))
		}
		uniqueWant++
		for r := 0; r < runLen && len(rows) < 1000; r++ {
			rows = append(rows, row)
		}
	}
	ik, err := DedupJagged([]string{"f"}, []Jagged{NewJagged(rows)})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	// Random 40-bit rows are distinct with overwhelming probability.
	if ik.UniqueRows() != uniqueWant {
		t.Fatalf("UniqueRows = %d, want %d", ik.UniqueRows(), uniqueWant)
	}
	if !ik.ToKJT().FeatureAt(0).Equal(NewJagged(rows)) {
		t.Fatal("round trip failed on session batch")
	}
}
