package tensor

import (
	"bytes"
	"testing"
)

func TestSerializeJaggedRoundTrip(t *testing.T) {
	j := NewJagged([][]Value{{1, -2, 3}, {}, {1 << 50}})
	var buf bytes.Buffer
	if err := WriteJagged(&buf, j); err != nil {
		t.Fatalf("WriteJagged: %v", err)
	}
	back, err := ReadJagged(&buf)
	if err != nil {
		t.Fatalf("ReadJagged: %v", err)
	}
	if !back.Equal(j) {
		t.Fatalf("round trip: %v vs %v", j, back)
	}
}

func TestSerializeKJTRoundTrip(t *testing.T) {
	kjt := MustKJT(
		[]string{"a", "b"},
		[]Jagged{
			NewJagged([][]Value{{1}, {2, 3}}),
			NewJagged([][]Value{{}, {4}}),
		})
	var buf bytes.Buffer
	if err := WriteKJT(&buf, kjt); err != nil {
		t.Fatalf("WriteKJT: %v", err)
	}
	back, err := ReadKJT(&buf)
	if err != nil {
		t.Fatalf("ReadKJT: %v", err)
	}
	if !back.Equal(kjt) {
		t.Fatal("KJT round trip mismatch")
	}
}

func TestSerializeIKJTRoundTrip(t *testing.T) {
	ik, err := DedupJagged([]string{"c", "d"}, []Jagged{
		NewJagged([][]Value{{7, 8}, {7, 8}, {10}}),
		NewJagged([][]Value{{9}, {9}, {11}}),
	})
	if err != nil {
		t.Fatalf("DedupJagged: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteIKJT(&buf, ik); err != nil {
		t.Fatalf("WriteIKJT: %v", err)
	}
	back, err := ReadIKJT(&buf)
	if err != nil {
		t.Fatalf("ReadIKJT: %v", err)
	}
	if back.UniqueRows() != ik.UniqueRows() || back.Batch() != ik.Batch() {
		t.Fatal("shape mismatch after round trip")
	}
	if !back.ToKJT().Equal(ik.ToKJT()) {
		t.Fatal("IKJT round trip mismatch")
	}
}

func TestSerializeDenseRoundTrip(t *testing.T) {
	d := NewDense(2, 3)
	for i := range d.Data {
		d.Data[i] = float32(i) * 1.5
	}
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatalf("WriteDense: %v", err)
	}
	back, err := ReadDense(&buf)
	if err != nil {
		t.Fatalf("ReadDense: %v", err)
	}
	if back.RowsN != 2 || back.Cols != 3 {
		t.Fatalf("shape = %dx%d", back.RowsN, back.Cols)
	}
	for i := range d.Data {
		if back.Data[i] != d.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, back.Data[i], d.Data[i])
		}
	}
}

func TestSerializePartialRoundTrip(t *testing.T) {
	p := PartialDedup("f", NewJagged([][]Value{{3, 4, 5}, {4, 5, 6}, {3, 4, 5}}))
	var buf bytes.Buffer
	if err := WritePartial(&buf, p); err != nil {
		t.Fatalf("WritePartial: %v", err)
	}
	back, err := ReadPartial(&buf)
	if err != nil {
		t.Fatalf("ReadPartial: %v", err)
	}
	if back.Key != "f" || !back.ToJagged().Equal(p.ToJagged()) {
		t.Fatal("partial round trip mismatch")
	}
}

func TestSerializeRejectsBadTag(t *testing.T) {
	buf := bytes.NewBuffer([]byte{99, 0, 0})
	if _, err := ReadJagged(buf); err == nil {
		t.Error("ReadJagged accepted bad tag")
	}
	buf = bytes.NewBuffer([]byte{99})
	if _, err := ReadKJT(buf); err == nil {
		t.Error("ReadKJT accepted bad tag")
	}
	buf = bytes.NewBuffer([]byte{99})
	if _, err := ReadIKJT(buf); err == nil {
		t.Error("ReadIKJT accepted bad tag")
	}
}

func TestSerializeRejectsTruncation(t *testing.T) {
	j := NewJagged([][]Value{{1, 2, 3}})
	var buf bytes.Buffer
	if err := WriteJagged(&buf, j); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		r := bytes.NewBuffer(full[:cut])
		if _, err := ReadJagged(r); err == nil {
			t.Fatalf("accepted truncation at %d bytes", cut)
		}
	}
}

func TestKJTOperations(t *testing.T) {
	kjt := MustKJT(
		[]string{"a", "b", "c"},
		[]Jagged{
			NewJagged([][]Value{{1}, {2}}),
			NewJagged([][]Value{{3}, {4}}),
			NewJagged([][]Value{{5}, {6}}),
		})
	sel, err := kjt.Select([]string{"c", "a"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if sel.NumKeys() != 2 || sel.KeyAt(0) != "c" || sel.KeyAt(1) != "a" {
		t.Fatalf("Select keys = %v", sel.Keys())
	}
	if _, err := kjt.Select([]string{"zzz"}); err == nil {
		t.Error("Select of missing key should error")
	}

	rest := kjt.Without(map[string]bool{"b": true})
	if rest.NumKeys() != 2 || rest.HasKey("b") {
		t.Fatalf("Without keys = %v", rest.Keys())
	}

	other := MustKJT([]string{"d"}, []Jagged{NewJagged([][]Value{{7}, {8}})})
	merged, err := rest.Merge(other)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if merged.NumKeys() != 3 {
		t.Fatalf("merged keys = %v", merged.Keys())
	}
	if _, err := kjt.Merge(kjt); err == nil {
		t.Error("Merge with duplicate keys should error")
	}

	if err := kjt.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	sorted := kjt.SortedKeys()
	if sorted[0] != "a" || sorted[2] != "c" {
		t.Errorf("SortedKeys = %v", sorted)
	}
}

func TestKJTConstructorErrors(t *testing.T) {
	if _, err := NewKJT([]string{"a"}, nil); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := NewKJT([]string{"a", "a"}, []Jagged{{}, {}}); err == nil {
		t.Error("duplicate keys should error")
	}
	if _, err := NewKJT([]string{"a", "b"}, []Jagged{
		NewJagged([][]Value{{1}}),
		NewJagged([][]Value{{1}, {2}}),
	}); err == nil {
		t.Error("row mismatch should error")
	}
}
