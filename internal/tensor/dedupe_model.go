package tensor

// Analytical deduplication model from paper §4.2 ("Using IKJTs").
//
// For a feature f with:
//
//	S    — average number of samples per session,
//	B    — batch size,
//	d(f) — probability f's value is unchanged across adjacent rows,
//	l(f) — average list length of f,
//
// the paper defines
//
//	DedupeLen(f)    = l(f) * B * (1 - (S-1)/S * d(f))
//	DedupeFactor(f) = l(f) * B / DedupeLen(f)
//
// DedupeLen is the expected size of the values slice after deduplicating f
// in each training batch; DedupeFactor is the ratio of the original values
// length to the deduplicated length. The total amount deduplicated grows
// with S, l(f) and d(f), which aligns with data-scaling trends (§2.2).

// FeatureModel carries the per-feature parameters of the analytic model.
type FeatureModel struct {
	S float64 // average samples per session within the batch
	B float64 // batch size
	D float64 // probability the value is unchanged across adjacent rows
	L float64 // average list length
}

// DedupeLen returns the expected deduplicated values-slice length per batch.
func (m FeatureModel) DedupeLen() float64 {
	if m.S <= 0 {
		return m.L * m.B
	}
	keep := 1 - (m.S-1)/m.S*m.D
	return m.L * m.B * keep
}

// DedupeFactor returns the expected deduplication factor. It is >= 1 for
// all valid parameters (0 <= D <= 1, S >= 1).
func (m FeatureModel) DedupeFactor() float64 {
	dl := m.DedupeLen()
	if dl == 0 {
		// Fully duplicated in the limit; treat as the batch-size bound.
		return m.B
	}
	return m.L * m.B / dl
}

// DefaultDedupeThreshold is the DedupeFactor above which ML engineers
// typically choose to deduplicate a feature (paper §4.2, §7: "we typically
// deduplicate features with DedupeFactor(f) > 1.5").
const DefaultDedupeThreshold = 1.5

// WorthDeduplicating applies the paper's heuristic threshold.
func (m FeatureModel) WorthDeduplicating() bool {
	return m.DedupeFactor() > DefaultDedupeThreshold
}

// LookupOverheadRatio reports the relative overhead of carrying the extra
// inverse-lookup slice: (inverse + offsets entries) over value entries. The
// paper argues this is negligible because for most features l(f)*B >> B.
func (m FeatureModel) LookupOverheadRatio() float64 {
	values := m.L * m.B
	if values == 0 {
		return 0
	}
	// Up to B inverse entries plus up to B offsets entries.
	return (2 * m.B) / values
}
