package tensor

// JaggedIndexSelect gathers rows of a jagged tensor by index without first
// densifying it (paper §5, optimization O6). Before RecD, index_select only
// operated on dense tensors, so jagged tensors had to be padded to a dense
// representation first, incurring large memory overheads; this operates
// directly on the (values, offsets) encoding.
//
// The result has len(indices) rows; row i of the result is row indices[i]
// of j. Indices may repeat (that is the point: expanding an IKJT duplicates
// unique rows back out) and must be valid row indices of j.
func JaggedIndexSelect(j Jagged, indices []int32) Jagged {
	return JaggedIndexSelectInto(Jagged{}, j, indices)
}

// JaggedIndexSelectInto is JaggedIndexSelect with an optional destination:
// dst's value and offset storage is reused when its capacity suffices, so
// steady-state expansion loops (e.g. a trainer expanding every batch's
// IKJTs) run allocation-free. The zero Jagged is a valid dst. The result
// aliases dst's storage; j must not alias dst.
func JaggedIndexSelectInto(dst Jagged, j Jagged, indices []int32) Jagged {
	total := 0
	for _, idx := range indices {
		total += j.RowLen(int(idx))
	}
	values := dst.Values
	if cap(values) < total {
		values = make([]Value, total)
	} else {
		values = values[:total]
	}
	offsets := dst.Offsets
	if cap(offsets) < len(indices) {
		offsets = make([]int32, len(indices))
	} else {
		offsets = offsets[:len(indices)]
	}
	pos := 0
	for i, idx := range indices {
		offsets[i] = int32(pos)
		start, end := j.RowBounds(int(idx))
		pos += copy(values[pos:], j.Values[start:end])
	}
	return Jagged{Values: values, Offsets: offsets}
}

// DenseIndexSelect gathers rows of a dense tensor by index; the dense
// analogue used to expand deduplicated pooled embeddings back to the full
// batch (paper §5 "Deduplicated Pooling": compute on unique rows, then use
// the shared inverse lookup to expand the output).
func DenseIndexSelect(d Dense, indices []int32) Dense {
	out := NewDense(len(indices), d.Cols)
	for i, idx := range indices {
		copy(out.Row(i), d.Row(int(idx)))
	}
	return out
}

// DenseIndexAdd scatter-adds rows of src into dst at the given indices:
// dst[indices[i]] += src[i]. It is the backward (transpose) of
// DenseIndexSelect and is used to accumulate gradients from expanded rows
// back onto the deduplicated rows during training.
func DenseIndexAdd(dst Dense, indices []int32, src Dense) {
	for i, idx := range indices {
		drow := dst.Row(int(idx))
		srow := src.Row(i)
		for c := range drow {
			drow[c] += srow[c]
		}
	}
}

// PaddedDenseFromJagged converts a jagged tensor into a padded dense matrix
// of shape rows x maxLen (the pre-RecD conversion path whose memory
// overhead JaggedIndexSelect eliminates). Missing tail entries are filled
// with padValue. It returns the dense matrix and the padded length.
func PaddedDenseFromJagged(j Jagged, padValue Value) ([][]Value, int) {
	maxLen := 0
	for i := 0; i < j.Rows(); i++ {
		if l := j.RowLen(i); l > maxLen {
			maxLen = l
		}
	}
	out := make([][]Value, j.Rows())
	for i := range out {
		row := make([]Value, maxLen)
		src := j.Row(i)
		copy(row, src)
		for c := len(src); c < maxLen; c++ {
			row[c] = padValue
		}
		out[i] = row
	}
	return out, maxLen
}
