package tensor

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// jaggedGen is a quick.Generator-compatible random jagged batch with
// session-like duplication so dedup paths are exercised.
type jaggedBatch struct {
	Rows [][]Value
}

func (jaggedBatch) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size%64 + 2)
	rows := make([][]Value, n)
	var prev []Value
	for i := range rows {
		if i > 0 && rng.Intn(3) != 0 {
			rows[i] = append([]Value(nil), prev...) // duplicate prior row
		} else {
			row := make([]Value, rng.Intn(12))
			for c := range row {
				row[c] = Value(rng.Int63n(1 << 20))
			}
			rows[i] = row
		}
		prev = rows[i]
	}
	return reflect.ValueOf(jaggedBatch{Rows: rows})
}

var quickCfg = &quick.Config{MaxCount: 200}

// Property: IKJT round trip is lossless for any batch.
func TestQuickIKJTRoundTrip(t *testing.T) {
	f := func(b jaggedBatch) bool {
		j := NewJagged(b.Rows)
		ik, err := DedupJagged([]string{"f"}, []Jagged{j})
		if err != nil {
			return false
		}
		if ik.Validate() != nil {
			return false
		}
		return ik.ToKJT().FeatureAt(0).Equal(j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: dedup never increases the values slice and factor >= 1.
func TestQuickDedupNeverGrows(t *testing.T) {
	f := func(b jaggedBatch) bool {
		j := NewJagged(b.Rows)
		ik, err := DedupJagged([]string{"f"}, []Jagged{j})
		if err != nil {
			return false
		}
		dd, _ := ik.Deduped("f")
		return dd.NumValues() <= j.NumValues() && ik.MeasuredFactor() >= 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: SDD wire bytes of the IKJT never exceed the KJT's (the paper's
// "IKJTs strictly decrease over-the-network tensor sizes" claim; equality
// happens only when nothing deduplicates and offsets counts match).
func TestQuickSDDBytesNeverExceedKJT(t *testing.T) {
	f := func(b jaggedBatch) bool {
		j := NewJagged(b.Rows)
		ik, err := DedupJagged([]string{"f"}, []Jagged{j})
		if err != nil {
			return false
		}
		return ik.SDDWireBytes() <= j.WireBytes()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: partial IKJT round trip is lossless and never stores more
// values than the original.
func TestQuickPartialRoundTrip(t *testing.T) {
	f := func(b jaggedBatch) bool {
		j := NewJagged(b.Rows)
		p := PartialDedup("f", j)
		if p.Validate() != nil {
			return false
		}
		return p.ToJagged().Equal(j) && len(p.Values) <= j.NumValues()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: partial dedup is at least as effective as exact dedup on the
// stored-values metric (it subsumes exact matches).
func TestQuickPartialSubsumesExact(t *testing.T) {
	f := func(b jaggedBatch) bool {
		j := NewJagged(b.Rows)
		ik, err := DedupJagged([]string{"f"}, []Jagged{j})
		if err != nil {
			return false
		}
		dd, _ := ik.Deduped("f")
		p := PartialDedup("f", j)
		return len(p.Values) <= dd.NumValues()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: grouped dedup expansion reproduces every feature exactly.
func TestQuickGroupedRoundTrip(t *testing.T) {
	f := func(a, b jaggedBatch) bool {
		// Force equal row counts by truncation.
		n := len(a.Rows)
		if len(b.Rows) < n {
			n = len(b.Rows)
		}
		ja := NewJagged(a.Rows[:n])
		jb := NewJagged(b.Rows[:n])
		ik, err := DedupJagged([]string{"x", "y"}, []Jagged{ja, jb})
		if err != nil {
			return false
		}
		out := ik.ToKJT()
		gx, _ := out.Feature("x")
		gy, _ := out.Feature("y")
		return gx.Equal(ja) && gy.Equal(jb)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: serialization round trips byte-exactly.
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(b jaggedBatch) bool {
		j := NewJagged(b.Rows)
		var buf bytes.Buffer
		if WriteJagged(&buf, j) != nil {
			return false
		}
		back, err := ReadJagged(&buf)
		if err != nil || !back.Equal(j) {
			return false
		}

		ik, err := DedupJagged([]string{"f"}, []Jagged{j})
		if err != nil {
			return false
		}
		buf.Reset()
		if WriteIKJT(&buf, ik) != nil {
			return false
		}
		back2, err := ReadIKJT(&buf)
		if err != nil {
			return false
		}
		return back2.ToKJT().FeatureAt(0).Equal(j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: JaggedIndexSelect commutes with row materialization.
func TestQuickIndexSelectConsistent(t *testing.T) {
	f := func(b jaggedBatch, seed int64) bool {
		j := NewJagged(b.Rows)
		if j.Rows() == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		idx := make([]int32, rng.Intn(2*j.Rows()+1))
		for i := range idx {
			idx[i] = int32(rng.Intn(j.Rows()))
		}
		out := JaggedIndexSelect(j, idx)
		if out.Validate() != nil {
			return false
		}
		for i, ix := range idx {
			got, want := out.Row(i), j.Row(int(ix))
			if len(got) != len(want) {
				return false
			}
			for c := range want {
				if got[c] != want[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
