package trainer

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// InteractionCache stores the inputs of one interaction forward.
type InteractionCache struct {
	inputs []tensor.Dense
}

// InteractionForward computes the DLRM feature-interaction layer (paper
// §2.2): given F same-dimension vectors per row (the bottom-MLP output
// first, then one pooled vector per sparse feature), it emits the
// bottom-MLP output concatenated with all pairwise dot products —
// D + F·(F−1)/2 values per row.
func InteractionForward(inputs []tensor.Dense) (tensor.Dense, *InteractionCache, error) {
	if len(inputs) == 0 {
		return tensor.Dense{}, nil, fmt.Errorf("trainer: interaction needs inputs")
	}
	b := inputs[0].RowsN
	d := inputs[0].Cols
	for i, in := range inputs {
		if in.RowsN != b || in.Cols != d {
			return tensor.Dense{}, nil, fmt.Errorf("trainer: interaction input %d is %dx%d, want %dx%d",
				i, in.RowsN, in.Cols, b, d)
		}
	}
	f := len(inputs)
	pairs := f * (f - 1) / 2
	out := tensor.NewDense(b, d+pairs)
	for r := 0; r < b; r++ {
		o := out.Row(r)
		copy(o[:d], inputs[0].Row(r))
		p := d
		for i := 0; i < f; i++ {
			vi := inputs[i].Row(r)
			for j := i + 1; j < f; j++ {
				vj := inputs[j].Row(r)
				var dot float32
				for k := 0; k < d; k++ {
					dot += vi[k] * vj[k]
				}
				o[p] = dot
				p++
			}
		}
	}
	return out, &InteractionCache{inputs: inputs}, nil
}

// InteractionBackward propagates dOut through the interaction, returning
// one gradient per input.
func InteractionBackward(c *InteractionCache, dOut tensor.Dense) []tensor.Dense {
	f := len(c.inputs)
	b := c.inputs[0].RowsN
	d := c.inputs[0].Cols
	grads := make([]tensor.Dense, f)
	for i := range grads {
		grads[i] = tensor.NewDense(b, d)
	}
	for r := 0; r < b; r++ {
		do := dOut.Row(r)
		copy(grads[0].Row(r), do[:d])
		p := d
		for i := 0; i < f; i++ {
			vi := c.inputs[i].Row(r)
			gi := grads[i].Row(r)
			for j := i + 1; j < f; j++ {
				vj := c.inputs[j].Row(r)
				gj := grads[j].Row(r)
				g := do[p]
				p++
				if g == 0 {
					continue
				}
				for k := 0; k < d; k++ {
					gi[k] += g * vj[k]
					gj[k] += g * vi[k]
				}
			}
		}
	}
	return grads
}

// InteractionOutputDim returns the interaction layer's output width for F
// inputs of dimension d.
func InteractionOutputDim(f, d int) int { return d + f*(f-1)/2 }

// BCEWithLogits computes mean binary cross-entropy over sigmoid(logits)
// and the gradient with respect to the logits (already divided by the
// batch size). Labels must be 0 or 1.
func BCEWithLogits(logits tensor.Dense, labels []float32) (float64, tensor.Dense, error) {
	if logits.Cols != 1 || logits.RowsN != len(labels) {
		return 0, tensor.Dense{}, fmt.Errorf("trainer: loss shapes %dx%d vs %d labels",
			logits.RowsN, logits.Cols, len(labels))
	}
	n := len(labels)
	grad := tensor.NewDense(n, 1)
	var loss float64
	for i := 0; i < n; i++ {
		z := float64(logits.At(i, 0))
		y := float64(labels[i])
		// Numerically stable: log(1+e^-|z|) + max(z,0) - z·y.
		loss += math.Log1p(math.Exp(-math.Abs(z))) + math.Max(z, 0) - z*y
		p := 1 / (1 + math.Exp(-z))
		grad.Set(i, 0, float32((p-y)/float64(n)))
	}
	return loss / float64(n), grad, nil
}
