package trainer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestOptimizerString(t *testing.T) {
	if SGD.String() != "sgd" || Adagrad.String() != "adagrad" {
		t.Fatal("optimizer names wrong")
	}
	if Optimizer(9).String() == "" {
		t.Fatal("unknown optimizer should still print")
	}
}

func TestAdagradApplyKnown(t *testing.T) {
	params := []float32{1, 1}
	grads := []float32{2, 0}
	state := []float32{0, 0}
	adagradApply(params, grads, state, 0.5)
	// state[0] = 4; step = 0.5·2/(2+eps) ≈ 0.5.
	if math.Abs(float64(params[0]-0.5)) > 1e-5 {
		t.Fatalf("params[0] = %v want 0.5", params[0])
	}
	// Zero gradient leaves the coordinate and its state untouched.
	if params[1] != 1 || state[1] != 0 {
		t.Fatal("zero-grad coordinate moved")
	}
	if grads[0] != 0 {
		t.Fatal("grads must be zeroed")
	}

	// A second identical gradient takes a smaller step (adaptive decay).
	before := params[0]
	grads[0] = 2
	adagradApply(params, grads, state, 0.5)
	step2 := float64(before - params[0])
	if step2 >= 0.5 || step2 <= 0 {
		t.Fatalf("second adagrad step %v should shrink below 0.5", step2)
	}
}

func TestLinearAdagradConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(2, 1, rng)
	x := tensor.NewDense(4, 2)
	target := []float32{3, -1, 1, 5}
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	// Targets from a fixed linear function plus the layer must fit it.
	for i := 0; i < 4; i++ {
		target[i] = 2*x.At(i, 0) - 3*x.At(i, 1)
	}
	var first, last float64
	for it := 0; it < 300; it++ {
		out := l.Forward(x)
		g := tensor.NewDense(4, 1)
		var loss float64
		for i := 0; i < 4; i++ {
			diff := out.At(i, 0) - target[i]
			loss += float64(diff) * float64(diff)
			g.Set(i, 0, 2*diff)
		}
		if it == 0 {
			first = loss
		}
		last = loss
		l.Backward(g)
		l.Apply(Adagrad, 0.5)
	}
	if last > first/100 {
		t.Fatalf("adagrad did not converge: %v -> %v", first, last)
	}
}

func TestEmbeddingAdagradSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := NewEmbeddingBag(16, 2, rng)
	ids := tensor.NewJagged([][]tensor.Value{{3}})
	if _, err := e.LookupPooled(ids, SumPool); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewDense(1, 2)
	g.Data[0] = 1
	if err := e.BackwardPooled(g); err != nil {
		t.Fatal(err)
	}
	slot := e.slot(3)
	before := e.row(slot)[0]
	e.Apply(Adagrad, 0.1)
	step1 := before - e.row(slot)[0]
	if step1 <= 0 {
		t.Fatal("adagrad step should move against gradient")
	}
	if e.PendingGradRows() != 0 {
		t.Fatal("Apply must clear sparse grads")
	}

	// Same gradient again: smaller step.
	e.LookupPooled(ids, SumPool)
	e.BackwardPooled(g)
	before = e.row(slot)[0]
	e.Apply(Adagrad, 0.1)
	step2 := before - e.row(slot)[0]
	if step2 >= step1 {
		t.Fatalf("adagrad step should decay: %v then %v", step1, step2)
	}
}

// TestModelAdagradTrains: the full DLRM converges under Adagrad, and the
// two execution modes remain equivalent.
func TestModelAdagradTrains(t *testing.T) {
	batches := makeBatches(t, 30, 64)
	cfg := modelConfig()
	cfg.Opt = Adagrad
	cfg.LR = 0.1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := batches[0]
	var first, last float64
	for it := 0; it < 25; it++ {
		loss, _, err := m.TrainStep(b, RecD)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("adagrad training did not improve: %v -> %v", first, last)
	}

	// Mode equivalence holds under Adagrad as well.
	mBase, _ := New(cfg)
	mRecD, _ := New(cfg)
	for i := 0; i < 3; i++ {
		lb, _, err := mBase.TrainStep(batches[i], Baseline)
		if err != nil {
			t.Fatal(err)
		}
		lr, _, err := mRecD.TrainStep(batches[i], RecD)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lb-lr) > 1e-3*math.Max(1, math.Abs(lb)) {
			t.Fatalf("adagrad mode losses diverged: %v vs %v", lb, lr)
		}
	}
}

func TestAttentionAdagrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAttentionBlock(4, rng)
	x := randSeq(rng, 3, 4)
	out, cache := a.Forward(x)
	dOut := make([]float32, 4)
	for i, v := range out {
		dOut[i] = v
	}
	a.Backward(cache, dOut)
	w0 := a.Wq[0]
	a.Apply(Adagrad, 0.1)
	for i := range a.dWq {
		if a.dWq[i] != 0 {
			t.Fatal("Apply must zero grads")
		}
	}
	_ = w0
}
