package trainer

import (
	"repro/internal/reader"
	"repro/internal/tensor"
)

// CostReport counts the per-iteration resources the paper's trainer
// optimizations target (Table 1 O5–O7, Fig 6): embedding lookups and
// activation memory, pooling compute, SDD and embedding-return all-to-all
// bytes, and index-select traffic. The numeric computation in Model is
// the ground truth; CostReport is the bridge to the gpusim/comm cluster
// model that converts these counts into iteration latency.
type CostReport struct {
	// Batch is the logical batch size.
	Batch int
	// Mode is the execution path that produced the report.
	Mode Mode

	// EmbLookups counts embedding rows gathered.
	EmbLookups int64
	// EmbActivationBytes counts bytes of embedding activations
	// materialized (inputs to pooling) — the dynamic GPU memory of §5.
	EmbActivationBytes int64
	// PoolFLOPs counts attention-pooling flops (the expensive modules).
	PoolFLOPs float64
	// DenseFLOPs counts MLP and interaction flops.
	DenseFLOPs float64

	// SDDBytes counts sparse feature bytes (values + offsets) crossing
	// the sparse-data-distribution all-to-all. Inverse lookups stay
	// local and are never charged (paper §5).
	SDDBytes int64
	// EmbOutBytes counts pooled-embedding bytes crossing the return
	// all-to-all; deduplicated pooling keeps these at unique-row count
	// until the post-A2A index select (O5 "Deduplicated EMB").
	EmbOutBytes int64
	// IndexSelectBytes counts bytes moved expanding deduplicated pooled
	// outputs to the full batch via jagged/dense index select (O6).
	IndexSelectBytes int64
	// PaddedExpandBytes counts what the same expansions would move if
	// jagged tensors first had to be padded to dense, the pre-O6 cost.
	PaddedExpandBytes int64

	// DenseParamBytes is the data-parallel parameter volume all-reduced
	// every iteration.
	DenseParamBytes int64
}

// NewCostReport starts a report for one batch.
func NewCostReport(b *reader.Batch, mode Mode, m *Model) *CostReport {
	return &CostReport{Batch: b.Size, Mode: mode}
}

// chargeFeature accounts one feature's forward costs. j is the jagged
// tensor compute ran over (deduplicated when deduped is true); expansion
// costs are charged for deduped features.
func (c *CostReport) chargeFeature(m *Model, fc FeatureConfig, j tensor.Jagged, deduped bool) {
	dim := m.cfg.EmbDim
	values := int64(j.NumValues())

	c.EmbLookups += values
	c.EmbActivationBytes += values * int64(dim) * 4
	c.SDDBytes += int64(j.WireBytes())

	if fc.Pool == AttentionPool {
		a := m.attn[fc.Key]
		for r := 0; r < j.Rows(); r++ {
			c.PoolFLOPs += a.FLOPsForSeq(j.RowLen(r))
		}
	} else {
		// Element-wise pooling: one fused multiply-add per value element.
		c.PoolFLOPs += float64(values) * float64(dim)
	}

	// Pooled output rows crossing the embedding-return all-to-all.
	c.EmbOutBytes += int64(j.Rows()) * int64(dim) * 4

	if deduped {
		// Post-A2A expansion via index select: write B rows of dim.
		expand := int64(c.Batch) * int64(dim) * 4
		c.IndexSelectBytes += expand
		// Without jagged index select the conversion back to a KJT pads
		// the unique rows to the max list length first (paper §5):
		// materialize U×maxLen values then gather B of those rows.
		maxLen := 0
		for r := 0; r < j.Rows(); r++ {
			if l := j.RowLen(r); l > maxLen {
				maxLen = l
			}
		}
		padded := int64(j.Rows()) * int64(maxLen) * tensor.ValueBytes
		c.PaddedExpandBytes += padded + int64(c.Batch)*int64(maxLen)*tensor.ValueBytes
	}
}

// finish adds batch-proportional dense costs once all features are charged.
func (c *CostReport) finish(m *Model, batch int) {
	fwd := m.bottom.ForwardFLOPs(batch) + m.top.ForwardFLOPs(batch)
	nInputs := 1 + len(m.cfg.Features)
	pairs := float64(nInputs * (nInputs - 1) / 2)
	inter := 2 * float64(batch) * pairs * float64(m.cfg.EmbDim)
	// Backward is ≈2× forward for dense layers.
	c.DenseFLOPs += 3 * (fwd + inter)
	c.DenseParamBytes = m.DenseParamCount() * 4
}

// TotalFLOPs sums compute.
func (c *CostReport) TotalFLOPs() float64 { return c.PoolFLOPs + c.DenseFLOPs }

// Add accumulates o into c (for multi-batch aggregation).
func (c *CostReport) Add(o *CostReport) {
	c.Batch += o.Batch
	c.EmbLookups += o.EmbLookups
	c.EmbActivationBytes += o.EmbActivationBytes
	c.PoolFLOPs += o.PoolFLOPs
	c.DenseFLOPs += o.DenseFLOPs
	c.SDDBytes += o.SDDBytes
	c.EmbOutBytes += o.EmbOutBytes
	c.IndexSelectBytes += o.IndexSelectBytes
	c.PaddedExpandBytes += o.PaddedExpandBytes
	if o.DenseParamBytes > c.DenseParamBytes {
		c.DenseParamBytes = o.DenseParamBytes
	}
}
