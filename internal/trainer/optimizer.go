package trainer

import (
	"fmt"
	"math"
)

// Optimizer selects the parameter-update rule. Production DLRMs typically
// train embeddings with Adagrad (per-coordinate adaptive rates are
// essential for power-law-distributed sparse IDs) and dense layers with
// SGD or Adagrad; both are supported everywhere here.
type Optimizer int

const (
	// SGD is plain stochastic gradient descent.
	SGD Optimizer = iota
	// Adagrad divides the rate by the root of the accumulated squared
	// gradient per coordinate.
	Adagrad
)

// String names the optimizer.
func (o Optimizer) String() string {
	switch o {
	case SGD:
		return "sgd"
	case Adagrad:
		return "adagrad"
	}
	return fmt.Sprintf("Optimizer(%d)", int(o))
}

// adagradEps stabilizes the adaptive denominator.
const adagradEps = 1e-8

// adagradApply updates params in place from grads using accumulated
// squared gradients in state (same length as params), then zeroes grads.
func adagradApply(params, grads, state []float32, lr float32) {
	for i, g := range grads {
		if g == 0 {
			continue
		}
		state[i] += g * g
		params[i] -= lr * g / (sqrt32(state[i]) + adagradEps)
		grads[i] = 0
	}
}

// sgdApply updates params in place and zeroes grads.
func sgdApply(params, grads []float32, lr float32) {
	for i, g := range grads {
		params[i] -= lr * g
		grads[i] = 0
	}
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}
