package trainer

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/reader"
	"repro/internal/tensor"
)

// Mode selects the execution path for sparse features.
type Mode int

const (
	// Baseline expands every IKJT back to a KJT before any compute, as a
	// pre-RecD trainer would.
	Baseline Mode = iota
	// RecD performs embedding lookups and pooling on deduplicated rows
	// and expands pooled outputs afterwards via index select (O5–O7).
	RecD
)

// String names the mode.
func (m Mode) String() string {
	if m == RecD {
		return "recd"
	}
	return "baseline"
}

// FeatureConfig describes one sparse feature consumed by the model.
type FeatureConfig struct {
	Key string
	// Pool selects the pooling module.
	Pool PoolKind
	// TableRows is the embedding table height (IDs are hashed in).
	TableRows int
}

// Config assembles a DLRM.
type Config struct {
	// EmbDim is the embedding dimension, shared by all tables and the
	// bottom MLP output.
	EmbDim int
	// DenseIn is the dense feature count.
	DenseIn int
	// BottomHidden are the bottom MLP hidden widths (output is EmbDim).
	BottomHidden []int
	// TopHidden are the top MLP hidden widths (output is one logit).
	TopHidden []int
	// Features lists the sparse features in model order.
	Features []FeatureConfig
	// LR is the learning rate.
	LR float32
	// Opt selects the update rule (SGD by default; production DLRMs use
	// Adagrad for sparse tables).
	Opt Optimizer
	// Seed makes initialization deterministic.
	Seed int64
}

// Model is a numeric DLRM.
type Model struct {
	cfg    Config
	bottom *MLP
	top    *MLP
	tables map[string]*EmbeddingBag
	attn   map[string]*AttentionBlock
}

// New builds and initializes a model.
func New(cfg Config) (*Model, error) {
	if cfg.EmbDim <= 0 || cfg.DenseIn <= 0 {
		return nil, fmt.Errorf("trainer: config needs EmbDim and DenseIn, got %d/%d", cfg.EmbDim, cfg.DenseIn)
	}
	if len(cfg.Features) == 0 {
		return nil, fmt.Errorf("trainer: config needs at least one sparse feature")
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	bottomSizes := append(append([]int{cfg.DenseIn}, cfg.BottomHidden...), cfg.EmbDim)
	bottom, err := NewMLP(bottomSizes, true, rng)
	if err != nil {
		return nil, err
	}
	interDim := InteractionOutputDim(1+len(cfg.Features), cfg.EmbDim)
	topSizes := append(append([]int{interDim}, cfg.TopHidden...), 1)
	top, err := NewMLP(topSizes, false, rng)
	if err != nil {
		return nil, err
	}

	m := &Model{
		cfg:    cfg,
		bottom: bottom,
		top:    top,
		tables: make(map[string]*EmbeddingBag),
		attn:   make(map[string]*AttentionBlock),
	}
	seen := map[string]bool{}
	for _, f := range cfg.Features {
		if seen[f.Key] {
			return nil, fmt.Errorf("trainer: feature %q configured twice", f.Key)
		}
		seen[f.Key] = true
		rows := f.TableRows
		if rows <= 0 {
			rows = 1 << 16
		}
		tb, err := NewEmbeddingBag(rows, cfg.EmbDim, rng)
		if err != nil {
			return nil, err
		}
		m.tables[f.Key] = tb
		if f.Pool == AttentionPool {
			m.attn[f.Key] = NewAttentionBlock(cfg.EmbDim, rng)
		}
	}
	return m, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// DenseParamCount sums data-parallel (MLP + attention) parameters — the
// ones the all-reduce synchronizes.
func (m *Model) DenseParamCount() int64 {
	n := m.bottom.ParamCount() + m.top.ParamCount()
	for _, a := range m.attn {
		n += a.ParamCount()
	}
	return n
}

// EmbParamBytes sums embedding-table bytes — the model-parallel state.
func (m *Model) EmbParamBytes() int64 {
	var n int64
	for _, t := range m.tables {
		n += t.Bytes()
	}
	return n
}

// featState carries one feature's forward intermediates.
type featState struct {
	cfg     FeatureConfig
	table   *EmbeddingBag
	attn    *AttentionBlock
	inverse []int32 // non-nil when the RecD path deduplicated this feature

	// attention path
	caches []*AttnCache
	seqIDs [][]tensor.Value
}

// forwardState caches one forward pass for backward.
type forwardState struct {
	mode       Mode
	batchSize  int
	feats      []*featState
	interCache *InteractionCache
}

// featureInput resolves the jagged tensor a feature's compute should run
// over, honoring the mode: the RecD path uses deduplicated rows when the
// batch carries the feature in an IKJT.
func featureInput(b *reader.Batch, key string, mode Mode) (j tensor.Jagged, inverse []int32, err error) {
	if mode == RecD {
		for _, ik := range b.IKJTs {
			if dd, ok := ik.Deduped(key); ok {
				return dd, ik.InverseLookup(), nil
			}
		}
	}
	j, ok := b.Feature(key)
	if !ok {
		return tensor.Jagged{}, nil, fmt.Errorf("trainer: batch is missing feature %q", key)
	}
	return j, nil, nil
}

// Forward runs one forward pass, returning logits (B×1), the state needed
// for Backward, and the resource cost report.
func (m *Model) Forward(b *reader.Batch, mode Mode) (tensor.Dense, *forwardState, *CostReport, error) {
	if err := b.Validate(); err != nil {
		return tensor.Dense{}, nil, nil, err
	}
	if b.Dense.Cols != m.cfg.DenseIn {
		return tensor.Dense{}, nil, nil, fmt.Errorf("trainer: batch has %d dense features, model wants %d",
			b.Dense.Cols, m.cfg.DenseIn)
	}
	cost := NewCostReport(b, mode, m)
	st := &forwardState{mode: mode, batchSize: b.Size}

	inputs := make([]tensor.Dense, 0, 1+len(m.cfg.Features))
	bottomOut := m.bottom.Forward(b.Dense)
	inputs = append(inputs, bottomOut)

	for _, fc := range m.cfg.Features {
		j, inverse, err := featureInput(b, fc.Key, mode)
		if err != nil {
			return tensor.Dense{}, nil, nil, err
		}
		fs := &featState{cfg: fc, table: m.tables[fc.Key], inverse: inverse}
		cost.chargeFeature(m, fc, j, inverse != nil)

		var pooled tensor.Dense
		if fc.Pool == AttentionPool {
			fs.attn = m.attn[fc.Key]
			pooled = tensor.NewDense(j.Rows(), m.cfg.EmbDim)
			fs.caches = make([]*AttnCache, j.Rows())
			fs.seqIDs = make([][]tensor.Value, j.Rows())
			for r := 0; r < j.Rows(); r++ {
				ids := j.Row(r)
				seq := fs.table.LookupSeq(ids)
				out, cache := fs.attn.Forward(seq)
				copy(pooled.Row(r), out)
				fs.caches[r] = cache
				fs.seqIDs[r] = ids
			}
		} else {
			var err error
			pooled, err = fs.table.LookupPooled(j, fc.Pool)
			if err != nil {
				return tensor.Dense{}, nil, nil, err
			}
		}

		if inverse != nil {
			// Expand deduplicated pooled outputs to the full batch —
			// the index select after the embedding all-to-all (O6).
			pooled = tensor.DenseIndexSelect(pooled, inverse)
		}
		inputs = append(inputs, pooled)
		st.feats = append(st.feats, fs)
	}

	interOut, ic, err := InteractionForward(inputs)
	if err != nil {
		return tensor.Dense{}, nil, nil, err
	}
	st.interCache = ic
	logits := m.top.Forward(interOut)
	cost.finish(m, b.Size)
	return logits, st, cost, nil
}

// Backward propagates the logit gradient through the whole model,
// accumulating parameter gradients.
func (m *Model) Backward(st *forwardState, dLogits tensor.Dense) error {
	dInter := m.top.Backward(dLogits)
	grads := InteractionBackward(st.interCache, dInter)
	m.bottom.Backward(grads[0])

	for i, fs := range st.feats {
		g := grads[i+1] // B×D

		if fs.inverse != nil {
			// Fold duplicate-row gradients onto their unique row: the
			// backward of the expansion index select.
			gU := tensor.NewDense(uniqueRows(fs), m.cfg.EmbDim)
			tensor.DenseIndexAdd(gU, fs.inverse, g)
			g = gU
		}

		if fs.cfg.Pool == AttentionPool {
			for r := 0; r < g.RowsN; r++ {
				dSeq := fs.attn.Backward(fs.caches[r], g.Row(r))
				if dSeq.RowsN > 0 {
					fs.table.AccumulateSeqGrad(fs.seqIDs[r], dSeq, 1)
				}
			}
		} else {
			if err := fs.table.BackwardPooled(g); err != nil {
				return err
			}
		}
	}
	return nil
}

func uniqueRows(fs *featState) int {
	if fs.cfg.Pool == AttentionPool {
		return len(fs.caches)
	}
	return fs.table.lastIDs.Rows()
}

// Step applies the configured optimizer to every module.
func (m *Model) Step() {
	m.bottom.Apply(m.cfg.Opt, m.cfg.LR)
	m.top.Apply(m.cfg.Opt, m.cfg.LR)
	for _, t := range m.tables {
		t.Apply(m.cfg.Opt, m.cfg.LR)
	}
	for _, a := range m.attn {
		a.Apply(m.cfg.Opt, m.cfg.LR)
	}
}

// TrainStep runs forward, loss, backward, and the optimizer step,
// returning the loss and the iteration's cost report.
func (m *Model) TrainStep(b *reader.Batch, mode Mode) (float64, *CostReport, error) {
	logits, st, cost, err := m.Forward(b, mode)
	if err != nil {
		return 0, nil, err
	}
	loss, dLogits, err := BCEWithLogits(logits, b.Labels)
	if err != nil {
		return 0, nil, err
	}
	if err := m.Backward(st, dLogits); err != nil {
		return 0, nil, err
	}
	m.Step()
	return loss, cost, nil
}

// Predict runs inference only and returns sigmoid probabilities.
func (m *Model) Predict(b *reader.Batch, mode Mode) ([]float64, error) {
	logits, _, _, err := m.Forward(b, mode)
	if err != nil {
		return nil, err
	}
	out := make([]float64, logits.RowsN)
	for i := range out {
		out[i] = sigmoid(float64(logits.At(i, 0)))
	}
	return out, nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
