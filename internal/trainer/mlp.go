// Package trainer implements a numeric DLRM (paper §2.2, Fig 2) and the
// RecD trainer-side optimizations (paper §5, O5–O7). The model computes
// real forward and backward passes in float32 at laptop scale; every
// module can run in two modes — Baseline, which expands IKJTs to KJTs
// before compute, and RecD, which performs embedding lookups, pooling, and
// attention on deduplicated rows and expands afterwards via (jagged) index
// select. The two modes are numerically equivalent; RecD does strictly
// less work, and the work is accounted in CostReport for the cluster
// simulation.
package trainer

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = xWᵀ + b with cached input for the
// backward pass and accumulated gradients for SGD.
type Linear struct {
	In, Out int
	W       []float32 // Out×In, row-major
	B       []float32 // Out

	dW []float32
	dB []float32

	// Adagrad accumulators, allocated on first adaptive step.
	gsqW []float32
	gsqB []float32

	lastX tensor.Dense
}

// NewLinear initializes a layer with uniform Xavier weights drawn from rng.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  make([]float32, in*out),
		B:  make([]float32, out),
		dW: make([]float32, in*out),
		dB: make([]float32, out),
	}
	bound := float32(math.Sqrt(6.0 / float64(in+out)))
	for i := range l.W {
		l.W[i] = (rng.Float32()*2 - 1) * bound
	}
	return l
}

// Forward computes y = xWᵀ + b for a batch, caching x.
func (l *Linear) Forward(x tensor.Dense) tensor.Dense {
	if x.Cols != l.In {
		panic(fmt.Sprintf("trainer: linear expects %d inputs, got %d", l.In, x.Cols))
	}
	l.lastX = x
	y := tensor.NewDense(x.RowsN, l.Out)
	for i := 0; i < x.RowsN; i++ {
		xi := x.Row(i)
		yi := y.Row(i)
		for o := 0; o < l.Out; o++ {
			w := l.W[o*l.In : (o+1)*l.In]
			acc := l.B[o]
			for k, xv := range xi {
				acc += xv * w[k]
			}
			yi[o] = acc
		}
	}
	return y
}

// Backward consumes dY, accumulates dW/dB, and returns dX.
func (l *Linear) Backward(dY tensor.Dense) tensor.Dense {
	x := l.lastX
	dX := tensor.NewDense(x.RowsN, l.In)
	for i := 0; i < x.RowsN; i++ {
		xi := x.Row(i)
		dyi := dY.Row(i)
		dxi := dX.Row(i)
		for o := 0; o < l.Out; o++ {
			g := dyi[o]
			if g == 0 {
				continue
			}
			w := l.W[o*l.In : (o+1)*l.In]
			dw := l.dW[o*l.In : (o+1)*l.In]
			l.dB[o] += g
			for k := range xi {
				dw[k] += g * xi[k]
				dxi[k] += g * w[k]
			}
		}
	}
	return dX
}

// Step applies SGD with learning rate lr and zeroes gradients.
func (l *Linear) Step(lr float32) { l.Apply(SGD, lr) }

// Apply updates the layer under the given optimizer and zeroes gradients.
func (l *Linear) Apply(opt Optimizer, lr float32) {
	if opt == Adagrad {
		if l.gsqW == nil {
			l.gsqW = make([]float32, len(l.W))
			l.gsqB = make([]float32, len(l.B))
		}
		adagradApply(l.W, l.dW, l.gsqW, lr)
		adagradApply(l.B, l.dB, l.gsqB, lr)
		return
	}
	sgdApply(l.W, l.dW, lr)
	sgdApply(l.B, l.dB, lr)
}

// ParamCount returns the number of trainable parameters.
func (l *Linear) ParamCount() int64 { return int64(len(l.W) + len(l.B)) }

// MLP is a stack of Linear layers with ReLU between them, and optionally
// after the last layer (DLRM bottom MLPs end in ReLU; the top MLP emits a
// raw logit).
type MLP struct {
	Layers    []*Linear
	FinalReLU bool

	masks []tensor.Dense // ReLU masks cached per forward
}

// NewMLP builds an MLP with the given layer widths: sizes[0] is the input
// dimension, sizes[len-1] the output dimension.
func NewMLP(sizes []int, finalReLU bool, rng *rand.Rand) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("trainer: mlp needs at least input and output sizes, got %v", sizes)
	}
	m := &MLP{FinalReLU: finalReLU}
	for i := 0; i+1 < len(sizes); i++ {
		if sizes[i] <= 0 || sizes[i+1] <= 0 {
			return nil, fmt.Errorf("trainer: mlp size %d invalid in %v", sizes[i], sizes)
		}
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
	}
	return m, nil
}

// Forward runs the batch through all layers.
func (m *MLP) Forward(x tensor.Dense) tensor.Dense {
	m.masks = m.masks[:0]
	for li, l := range m.Layers {
		x = l.Forward(x)
		if li < len(m.Layers)-1 || m.FinalReLU {
			mask := tensor.NewDense(x.RowsN, x.Cols)
			for i, v := range x.Data {
				if v > 0 {
					mask.Data[i] = 1
				} else {
					x.Data[i] = 0
				}
			}
			m.masks = append(m.masks, mask)
		}
	}
	return x
}

// Backward propagates dOut through the stack, accumulating layer grads.
func (m *MLP) Backward(dOut tensor.Dense) tensor.Dense {
	mi := len(m.masks) - 1
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 || m.FinalReLU {
			mask := m.masks[mi]
			mi--
			for i := range dOut.Data {
				dOut.Data[i] *= mask.Data[i]
			}
		}
		dOut = m.Layers[li].Backward(dOut)
	}
	return dOut
}

// Step updates every layer with SGD.
func (m *MLP) Step(lr float32) { m.Apply(SGD, lr) }

// Apply updates every layer under the given optimizer.
func (m *MLP) Apply(opt Optimizer, lr float32) {
	for _, l := range m.Layers {
		l.Apply(opt, lr)
	}
}

// ParamCount sums layer parameters.
func (m *MLP) ParamCount() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.ParamCount()
	}
	return n
}

// ForwardFLOPs estimates the dense flops of one forward pass at the given
// batch size (2·B·In·Out per layer).
func (m *MLP) ForwardFLOPs(batch int) float64 {
	var f float64
	for _, l := range m.Layers {
		f += 2 * float64(batch) * float64(l.In) * float64(l.Out)
	}
	return f
}
