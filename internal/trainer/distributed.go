package trainer

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/gpusim"
)

// ClusterConfig describes the simulated multi-GPU training tier the cost
// model runs against (the paper's ZionEX nodes, §6.1).
type ClusterConfig struct {
	Topology comm.Topology
	Device   gpusim.DeviceSpec
	// OverlapFraction is how much of concurrent compute can hide
	// collective latency (paper §6.2: part of A2A is overlapped; the
	// remainder is "exposed").
	OverlapFraction float64
}

// DefaultCluster returns the paper's setup scaled by node count.
func DefaultCluster(nodes int) ClusterConfig {
	return ClusterConfig{
		Topology:        comm.ZionEX(nodes),
		Device:          gpusim.A100(),
		OverlapFraction: 0.3,
	}
}

// SimInput carries one iteration's global-batch cost plus the static
// state the cluster must hold.
type SimInput struct {
	// Cost is the cost report aggregated over the global batch.
	Cost *CostReport
	// GlobalBatch is the number of samples in the iteration.
	GlobalBatch int
	// EmbParamBytes is the total embedding-table state, model-parallel
	// sharded across GPUs.
	EmbParamBytes int64
	// DenseStateBytes is the replicated dense state per GPU (params +
	// optimizer), in addition to what Cost reports.
	DenseStateBytes int64
	// UseJaggedIndexSelect selects O6; when false the pre-RecD padded
	// expansion cost is charged instead.
	UseJaggedIndexSelect bool

	// The numeric model runs at laptop scale (small embedding dims, short
	// sequences, dozens of features); production DLRMs are orders of
	// magnitude larger. These calibration factors rescale the cost report
	// to production magnitude so byte-dependent collective terms are not
	// swamped by fixed per-message latency (DESIGN.md documents the
	// derivation). Zero means 1 (no scaling).
	ByteScale      float64 // SDD/EMB-out/activation/index-select bytes
	PoolFlopScale  float64 // pooling (attention) flops
	DenseFlopScale float64 // MLP + interaction flops
	ParamScale     float64 // dense parameter bytes (all-reduce volume)
	// ActMemScale additionally scales activation bytes in the MEMORY
	// accounting only (production sequence features are ~1000 IDs at dim
	// 128-1024, making baseline trainers activation-memory-bound — the
	// paper's RM1 baseline sits at 99.9% of HBM).
	ActMemScale float64
}

// scaled applies the calibration factors to a copy of the cost report.
func (in SimInput) scaled() *CostReport {
	f := func(v float64) float64 {
		if v == 0 {
			return 1
		}
		return v
	}
	bs, ps, ds, prs := f(in.ByteScale), f(in.PoolFlopScale), f(in.DenseFlopScale), f(in.ParamScale)
	c := *in.Cost
	c.SDDBytes = int64(float64(c.SDDBytes) * bs)
	c.EmbOutBytes = int64(float64(c.EmbOutBytes) * bs)
	c.EmbActivationBytes = int64(float64(c.EmbActivationBytes) * bs)
	c.IndexSelectBytes = int64(float64(c.IndexSelectBytes) * bs)
	c.PaddedExpandBytes = int64(float64(c.PaddedExpandBytes) * bs)
	c.EmbLookups = int64(float64(c.EmbLookups) * bs)
	c.PoolFLOPs *= ps
	c.DenseFLOPs *= ds
	c.DenseParamBytes = int64(float64(c.DenseParamBytes) * prs)
	return &c
}

// IterationReport is the modelled outcome of one training iteration.
type IterationReport struct {
	// Breakdown is the Fig 8 exposed-latency decomposition (per GPU).
	Breakdown gpusim.Breakdown
	// QPS is cluster samples/second at this iteration latency.
	QPS float64
	// PeakMemBytes and AvgMemBytes are per-GPU dynamic+static memory.
	PeakMemBytes int64
	AvgMemBytes  int64
	// MemUtilization fractions against device capacity.
	PeakMemUtilization float64
	AvgMemUtilization  float64
	// AchievedFLOPs is the realized flop/s per GPU (Table 2 compute
	// efficiency).
	AchievedFLOPs float64
}

// SimulateIteration converts a global-batch cost report into per-GPU
// iteration latency, memory, and throughput under the cluster model.
func SimulateIteration(in SimInput, cluster ClusterConfig) (IterationReport, error) {
	if in.Cost == nil || in.GlobalBatch <= 0 {
		return IterationReport{}, fmt.Errorf("trainer: sim input needs cost and batch")
	}
	if err := cluster.Topology.Validate(); err != nil {
		return IterationReport{}, err
	}
	if err := cluster.Device.Validate(); err != nil {
		return IterationReport{}, err
	}
	n := cluster.Topology.NumGPUs()
	nf := float64(n)
	dev := cluster.Device
	c := in.scaled()

	// --- Compute (per GPU; work divides evenly across data-parallel ranks).
	// Pool flops are forward-only in the report; backward ≈ 2× forward.
	poolTime := dev.FLOPsTime(3 * c.PoolFLOPs / nf)
	gemmTime := dev.FLOPsTime(c.DenseFLOPs / nf)

	// EMB lookups: forward gather + backward scatter ⇒ 2× activation traffic.
	embTime := dev.MemBoundTime(2 * c.EmbActivationBytes / int64(n))

	// Index select (O6) or padded expansion (pre-O6), forward + backward.
	expandBytes := c.IndexSelectBytes
	if !in.UseJaggedIndexSelect {
		expandBytes = c.PaddedExpandBytes
	}
	expandTime := dev.MemBoundTime(2 * expandBytes / int64(n))

	// --- Collectives. SDD forward, EMB-return forward, and their
	// backward mirrors; parameters all-reduced once.
	perPair := func(total int64) int64 {
		if n == 1 {
			return 0
		}
		return total / int64(n*n)
	}
	sdd, err := cluster.Topology.UniformAllToAll(perPair(c.SDDBytes))
	if err != nil {
		return IterationReport{}, err
	}
	embOut, err := cluster.Topology.UniformAllToAll(perPair(c.EmbOutBytes))
	if err != nil {
		return IterationReport{}, err
	}
	embBwd, err := cluster.Topology.UniformAllToAll(perPair(c.EmbOutBytes))
	if err != nil {
		return IterationReport{}, err
	}
	allReduce, err := cluster.Topology.AllReduce(c.DenseParamBytes)
	if err != nil {
		return IterationReport{}, err
	}

	a2aRaw := sdd.Time + embOut.Time + embBwd.Time
	computeTime := poolTime + gemmTime + embTime
	a2aExposed := gpusim.Overlap(a2aRaw, computeTime, cluster.OverlapFraction)

	bd := gpusim.Breakdown{
		EMB:   embTime,
		GEMM:  poolTime + gemmTime,
		A2A:   a2aExposed,
		Other: expandTime + allReduce.Time,
	}

	// --- Memory (per GPU).
	mem := gpusim.NewMemTracker(dev)
	static := in.EmbParamBytes/int64(n) + in.DenseStateBytes
	if err := mem.Alloc(static); err != nil {
		return IterationReport{}, err
	}
	// Inputs: the local share of SDD values plus expansion buffers.
	inputBytes := c.SDDBytes/int64(n) + expandBytes/int64(n)
	if err := mem.Alloc(inputBytes); err != nil {
		return IterationReport{}, err
	}
	// Activations live until backward: forward + gradient buffers.
	actScale := in.ActMemScale
	if actScale == 0 {
		actScale = 1
	}
	actBytes := int64(float64(2*c.EmbActivationBytes/int64(n)) * actScale)
	if err := mem.Alloc(actBytes); err != nil {
		return IterationReport{}, err
	}
	peak := mem.Peak()
	// Average over the iteration: static always resident, dynamic about
	// half-resident (allocated through forward, released through backward).
	avg := static + (inputBytes+actBytes)/2

	iter := bd.Total()
	rep := IterationReport{
		Breakdown:          bd,
		PeakMemBytes:       peak,
		AvgMemBytes:        avg,
		PeakMemUtilization: float64(peak) / float64(dev.HBMCapacity),
		AvgMemUtilization:  float64(avg) / float64(dev.HBMCapacity),
	}
	if iter > 0 {
		rep.QPS = float64(in.GlobalBatch) / iter.Seconds()
		rep.AchievedFLOPs = (3*c.PoolFLOPs + c.DenseFLOPs) / nf / iter.Seconds()
	}
	return rep, nil
}

// SimulateTraining aggregates cost reports from several batches into one
// representative iteration (averaging per-batch costs) and simulates it.
func SimulateTraining(costs []*CostReport, batchPerIter int, in SimInput, cluster ClusterConfig) (IterationReport, error) {
	if len(costs) == 0 {
		return IterationReport{}, fmt.Errorf("trainer: no cost reports")
	}
	agg := &CostReport{}
	var rows int
	for _, c := range costs {
		agg.Add(c)
		rows += c.Batch
	}
	// Rescale the aggregate to one iteration of batchPerIter samples.
	scale := float64(batchPerIter) / float64(rows)
	scaled := &CostReport{
		Batch:              batchPerIter,
		Mode:               costs[0].Mode,
		EmbLookups:         int64(float64(agg.EmbLookups) * scale),
		EmbActivationBytes: int64(float64(agg.EmbActivationBytes) * scale),
		PoolFLOPs:          agg.PoolFLOPs * scale,
		DenseFLOPs:         agg.DenseFLOPs * scale,
		SDDBytes:           int64(float64(agg.SDDBytes) * scale),
		EmbOutBytes:        int64(float64(agg.EmbOutBytes) * scale),
		IndexSelectBytes:   int64(float64(agg.IndexSelectBytes) * scale),
		PaddedExpandBytes:  int64(float64(agg.PaddedExpandBytes) * scale),
		DenseParamBytes:    agg.DenseParamBytes,
	}
	in.Cost = scaled
	in.GlobalBatch = batchPerIter
	return SimulateIteration(in, cluster)
}
