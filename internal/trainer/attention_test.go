package trainer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randSeq(rng *rand.Rand, n, d int) tensor.Dense {
	x := tensor.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	return x
}

func TestAttentionForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAttentionBlock(8, rng)
	out, cache := a.Forward(randSeq(rng, 5, 8))
	if len(out) != 8 {
		t.Fatalf("out dim %d want 8", len(out))
	}
	if cache == nil || cache.S.RowsN != 5 || cache.S.Cols != 5 {
		t.Fatal("cache scores wrong shape")
	}
	// Softmax rows sum to 1.
	for i := 0; i < 5; i++ {
		var s float64
		for _, v := range cache.S.Row(i) {
			if v < 0 {
				t.Fatal("negative softmax weight")
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestAttentionEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAttentionBlock(4, rng)
	out, cache := a.Forward(tensor.NewDense(0, 4))
	if cache != nil {
		t.Fatal("empty sequence should have nil cache")
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty sequence should pool to zero")
		}
	}
	// Backward of nil cache is a no-op.
	dX := a.Backward(nil, out)
	if dX.RowsN != 0 {
		t.Fatal("backward of nil cache should be empty")
	}
}

func TestAttentionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAttentionBlock(8, rng)
	x := randSeq(rng, 6, 8)
	out1, _ := a.Forward(x)
	out2, _ := a.Forward(x)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("attention forward not deterministic")
		}
	}
}

func TestAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := 4
	a := NewAttentionBlock(d, rng)
	x := randSeq(rng, 3, d)

	loss := func() float64 {
		out, _ := a.Forward(x)
		var s float64
		for _, v := range out {
			s += float64(v) * float64(v)
		}
		return s
	}

	out, cache := a.Forward(x)
	dOut := make([]float32, d)
	for i, v := range out {
		dOut[i] = 2 * v
	}
	dX := a.Backward(cache, dOut)

	check := func(name string, got float64, param *float32) {
		want := numericGrad(param, loss)
		if math.Abs(got-want) > 3e-2*math.Max(0.1, math.Abs(want)) {
			t.Fatalf("%s = %v want %v", name, got, want)
		}
	}
	check("dWq[1]", float64(a.dWq[1]), &a.Wq[1])
	check("dWk[5]", float64(a.dWk[5]), &a.Wk[5])
	check("dWv[9]", float64(a.dWv[9]), &a.Wv[9])
	check("dX[0]", float64(dX.Data[0]), &x.Data[0])
	check("dX[7]", float64(dX.Data[7]), &x.Data[7])
}

func TestAttentionStepZeroesGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAttentionBlock(4, rng)
	x := randSeq(rng, 3, 4)
	out, cache := a.Forward(x)
	dOut := make([]float32, 4)
	for i, v := range out {
		dOut[i] = v
	}
	a.Backward(cache, dOut)
	w0 := a.Wq[0]
	a.Step(0.1)
	for i := range a.dWq {
		if a.dWq[i] != 0 || a.dWk[i] != 0 || a.dWv[i] != 0 {
			t.Fatal("Step must zero gradients")
		}
	}
	_ = w0 // weights may or may not move depending on grad; the zeroing is the contract
}

func TestAttentionFLOPsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewAttentionBlock(16, rng)
	if a.FLOPsForSeq(10) >= a.FLOPsForSeq(20) {
		t.Fatal("flops should grow with sequence length")
	}
	if a.ParamCount() != 3*16*16 {
		t.Fatalf("ParamCount = %d", a.ParamCount())
	}
}

// TestAttentionDedupScaledBackward verifies the RecD dedup-compute
// identity used in Model.Backward: running one backward with the summed
// gradient of k duplicate rows equals running k backwards with each
// row's gradient.
func TestAttentionDedupScaledBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 4
	x := randSeq(rng, 3, d)
	g1 := []float32{0.1, -0.2, 0.3, 0.4}
	g2 := []float32{-0.5, 0.6, 0.7, -0.8}

	// Path A: two separate backwards (baseline: two duplicate rows).
	aA := NewAttentionBlock(d, rand.New(rand.NewSource(8)))
	_, cA := aA.Forward(x)
	aA.Backward(cA, g1)
	_, cA2 := aA.Forward(x)
	aA.Backward(cA2, g2)

	// Path B: one backward with the summed gradient (RecD: one unique row).
	aB := NewAttentionBlock(d, rand.New(rand.NewSource(8)))
	_, cB := aB.Forward(x)
	sum := make([]float32, d)
	for i := range sum {
		sum[i] = g1[i] + g2[i]
	}
	aB.Backward(cB, sum)

	for i := range aA.dWq {
		if math.Abs(float64(aA.dWq[i]-aB.dWq[i])) > 1e-5 {
			t.Fatalf("dWq[%d]: %v vs %v", i, aA.dWq[i], aB.dWq[i])
		}
		if math.Abs(float64(aA.dWv[i]-aB.dWv[i])) > 1e-5 {
			t.Fatalf("dWv[%d]: %v vs %v", i, aA.dWv[i], aB.dWv[i])
		}
	}
}
