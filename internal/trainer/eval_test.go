package trainer

import (
	"math"
	"testing"
)

func TestAUCPerfectRanking(t *testing.T) {
	preds := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float32{0, 0, 1, 1}
	m, err := ComputeMetrics(preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	if m.AUC != 1.0 {
		t.Fatalf("perfect ranking AUC = %v", m.AUC)
	}
}

func TestAUCReversedRanking(t *testing.T) {
	preds := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float32{0, 0, 1, 1}
	m, _ := ComputeMetrics(preds, labels)
	if m.AUC != 0.0 {
		t.Fatalf("reversed ranking AUC = %v", m.AUC)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	// All predictions tied → AUC must be exactly 0.5 by tie handling.
	preds := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []float32{0, 1, 0, 1}
	m, _ := ComputeMetrics(preds, labels)
	if m.AUC != 0.5 {
		t.Fatalf("all-tied AUC = %v want 0.5", m.AUC)
	}
}

func TestAUCSingleClass(t *testing.T) {
	m, _ := ComputeMetrics([]float64{0.2, 0.8}, []float32{1, 1})
	if m.AUC != 0.5 {
		t.Fatalf("single-class AUC = %v want 0.5 fallback", m.AUC)
	}
}

func TestAUCPartialTies(t *testing.T) {
	// One tie straddling classes: pairs (0.3:0, 0.3:1, 0.7:1).
	// Comparisons: pos 0.3 vs neg 0.3 → 0.5; pos 0.7 vs neg 0.3 → 1.
	// AUC = (0.5 + 1) / 2 = 0.75.
	m, _ := ComputeMetrics([]float64{0.3, 0.3, 0.7}, []float32{0, 1, 1})
	if math.Abs(m.AUC-0.75) > 1e-12 {
		t.Fatalf("tied AUC = %v want 0.75", m.AUC)
	}
}

func TestLogLossKnown(t *testing.T) {
	// Perfectly confident correct predictions → loss ≈ 0.
	m, _ := ComputeMetrics([]float64{1, 0}, []float32{1, 0})
	if m.LogLoss > 1e-9 {
		t.Fatalf("confident correct loss = %v", m.LogLoss)
	}
	// p=0.5 everywhere → ln 2.
	m, _ = ComputeMetrics([]float64{0.5, 0.5}, []float32{1, 0})
	if math.Abs(m.LogLoss-math.Ln2) > 1e-9 {
		t.Fatalf("uniform loss = %v want ln2", m.LogLoss)
	}
	// Clamping keeps confident-wrong finite.
	m, _ = ComputeMetrics([]float64{0}, []float32{1})
	if math.IsInf(m.LogLoss, 0) || math.IsNaN(m.LogLoss) {
		t.Fatalf("clamped loss = %v", m.LogLoss)
	}
}

func TestCalibration(t *testing.T) {
	// Mean prediction 0.4, mean label 0.5 → calibration 0.8.
	m, _ := ComputeMetrics([]float64{0.4, 0.4}, []float32{1, 0})
	if math.Abs(m.Calibration-0.8) > 1e-9 {
		t.Fatalf("calibration = %v want 0.8", m.Calibration)
	}
	if m.PositiveRate != 0.5 {
		t.Fatalf("positive rate = %v", m.PositiveRate)
	}
}

func TestComputeMetricsErrors(t *testing.T) {
	if _, err := ComputeMetrics([]float64{0.5}, []float32{1, 0}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := ComputeMetrics(nil, nil); err == nil {
		t.Fatal("expected empty input error")
	}
}

// TestEvaluateOnModel wires Evaluate through a real model and checks the
// metrics are finite and AUC-consistent between modes.
func TestEvaluateOnModel(t *testing.T) {
	batches := makeBatches(t, 20, 32)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Evaluate(batches, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	recd, err := m.Evaluate(batches, RecD)
	if err != nil {
		t.Fatal(err)
	}
	// Forward passes are bit-identical, so metrics must match exactly.
	if base.AUC != recd.AUC || base.LogLoss != recd.LogLoss {
		t.Fatalf("metrics differ between modes: %+v vs %+v", base, recd)
	}
	if base.Samples == 0 || math.IsNaN(base.LogLoss) {
		t.Fatalf("bad metrics: %+v", base)
	}
}
