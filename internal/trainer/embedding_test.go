package trainer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestEmbeddingLookupPooledSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := NewEmbeddingBag(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ids := tensor.NewJagged([][]tensor.Value{{5, 9}, {}, {5}})
	out, err := e.LookupPooled(ids, SumPool)
	if err != nil {
		t.Fatal(err)
	}
	if out.RowsN != 3 || out.Cols != 4 {
		t.Fatalf("shape %dx%d", out.RowsN, out.Cols)
	}
	// Row 1 (empty list) pools to zero.
	for _, v := range out.Row(1) {
		if v != 0 {
			t.Fatal("empty list should pool to zero")
		}
	}
	// Row 0 = emb(5)+emb(9); row 2 = emb(5).
	r5 := e.row(e.slot(5))
	r9 := e.row(e.slot(9))
	for d := 0; d < 4; d++ {
		if math.Abs(float64(out.At(0, d)-(r5[d]+r9[d]))) > 1e-6 {
			t.Fatal("sum pooling wrong")
		}
		if out.At(2, d) != r5[d] {
			t.Fatal("single-element sum wrong")
		}
	}
}

func TestEmbeddingLookupPooledMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := NewEmbeddingBag(64, 4, rng)
	ids := tensor.NewJagged([][]tensor.Value{{1, 2, 3, 4}})
	sum, _ := e.LookupPooled(ids, SumPool)
	mean, _ := e.LookupPooled(ids, MeanPool)
	for d := 0; d < 4; d++ {
		if math.Abs(float64(mean.At(0, d)-sum.At(0, d)/4)) > 1e-6 {
			t.Fatal("mean != sum/4")
		}
	}
}

func TestEmbeddingLookupPooledMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, _ := NewEmbeddingBag(64, 2, rng)
	ids := tensor.NewJagged([][]tensor.Value{{7, 11, 13}})
	out, _ := e.LookupPooled(ids, MaxPool)
	for d := 0; d < 2; d++ {
		maxv := float32(math.Inf(-1))
		for _, id := range []tensor.Value{7, 11, 13} {
			if v := e.row(e.slot(id))[d]; v > maxv {
				maxv = v
			}
		}
		if out.At(0, d) != maxv {
			t.Fatal("max pooling wrong")
		}
	}
}

func TestEmbeddingAttentionPoolRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, _ := NewEmbeddingBag(8, 2, rng)
	if _, err := e.LookupPooled(tensor.EmptyJagged(1), AttentionPool); err == nil {
		t.Fatal("expected error for attention pooling via LookupPooled")
	}
}

func TestEmbeddingBackwardSumGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, _ := NewEmbeddingBag(32, 3, rng)
	ids := tensor.NewJagged([][]tensor.Value{{4, 4, 6}, {6}})

	loss := func() float64 {
		out, _ := e.LookupPooled(ids, SumPool)
		var s float64
		for _, v := range out.Data {
			s += float64(v) * float64(v)
		}
		return s
	}

	out, _ := e.LookupPooled(ids, SumPool)
	if err := e.BackwardPooled(lossGrad(out)); err != nil {
		t.Fatal(err)
	}
	slot4 := e.slot(4)
	got := float64(e.grads[slot4][0])
	want := numericGrad(&e.W[slot4*3], loss)
	if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
		t.Fatalf("emb grad = %v want %v", got, want)
	}
}

func TestEmbeddingBackwardMeanAndMax(t *testing.T) {
	for _, pool := range []PoolKind{MeanPool, MaxPool} {
		rng := rand.New(rand.NewSource(6))
		e, _ := NewEmbeddingBag(32, 3, rng)
		ids := tensor.NewJagged([][]tensor.Value{{2, 9, 17}})
		loss := func() float64 {
			out, _ := e.LookupPooled(ids, pool)
			var s float64
			for _, v := range out.Data {
				s += float64(v) * float64(v)
			}
			return s
		}
		out, _ := e.LookupPooled(ids, pool)
		if err := e.BackwardPooled(lossGrad(out)); err != nil {
			t.Fatal(err)
		}
		slot := e.slot(9)
		var got float64
		if g, ok := e.grads[slot]; ok {
			got = float64(g[1])
		}
		want := numericGrad(&e.W[slot*3+1], loss)
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("%v grad = %v want %v", pool, got, want)
		}
	}
}

func TestEmbeddingBackwardShapeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := NewEmbeddingBag(8, 2, rng)
	if _, err := e.LookupPooled(tensor.NewJagged([][]tensor.Value{{1}}), SumPool); err != nil {
		t.Fatal(err)
	}
	if err := e.BackwardPooled(tensor.NewDense(5, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestEmbeddingStepClearsAndUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, _ := NewEmbeddingBag(16, 2, rng)
	ids := tensor.NewJagged([][]tensor.Value{{3}})
	out, _ := e.LookupPooled(ids, SumPool)
	g := tensor.NewDense(1, 2)
	g.Data[0], g.Data[1] = 1, -1
	if err := e.BackwardPooled(g); err != nil {
		t.Fatal(err)
	}
	if e.PendingGradRows() != 1 {
		t.Fatalf("pending rows = %d", e.PendingGradRows())
	}
	slot := e.slot(3)
	before := append([]float32(nil), e.row(slot)...)
	e.Step(0.5)
	after := e.row(slot)
	if math.Abs(float64(after[0]-(before[0]-0.5))) > 1e-6 ||
		math.Abs(float64(after[1]-(before[1]+0.5))) > 1e-6 {
		t.Fatalf("sparse update wrong: %v -> %v", before, after)
	}
	if e.PendingGradRows() != 0 {
		t.Fatal("Step must clear gradients")
	}
	_ = out
}

func TestEmbeddingSeqAndAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, _ := NewEmbeddingBag(16, 2, rng)
	ids := []tensor.Value{1, 5}
	seq := e.LookupSeq(ids)
	if seq.RowsN != 2 || seq.Cols != 2 {
		t.Fatalf("seq shape %dx%d", seq.RowsN, seq.Cols)
	}
	for i, id := range ids {
		r := e.row(e.slot(id))
		for d := 0; d < 2; d++ {
			if seq.At(i, d) != r[d] {
				t.Fatal("seq lookup wrong")
			}
		}
	}
	dSeq := tensor.NewDense(2, 2)
	for i := range dSeq.Data {
		dSeq.Data[i] = 1
	}
	e.AccumulateSeqGrad(ids, dSeq, 2) // scale 2
	// Expected grad per slot accounts for possible hash collisions.
	want := map[int]float32{}
	for _, id := range ids {
		want[e.slot(id)] += 2
	}
	for slot, w := range want {
		if g := e.grads[slot]; g[0] != w {
			t.Fatalf("scaled seq grad at slot %d = %v want %v", slot, g[0], w)
		}
	}
}

func TestEmbeddingInvalidConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if _, err := NewEmbeddingBag(0, 4, rng); err == nil {
		t.Fatal("expected error for zero rows")
	}
	if _, err := NewEmbeddingBag(4, 0, rng); err == nil {
		t.Fatal("expected error for zero dim")
	}
}

func TestPoolKindString(t *testing.T) {
	if SumPool.String() != "sum" || MeanPool.String() != "mean" ||
		MaxPool.String() != "max" || AttentionPool.String() != "attention" {
		t.Fatal("PoolKind names wrong")
	}
	if PoolKind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}
