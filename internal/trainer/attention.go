package trainer

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// AttentionBlock is a single-head self-attention pooling module: given a
// sequence of n embedding vectors it computes softmax(QKᵀ/√d)·V and mean-
// pools the result to one vector. It stands in for the transformer
// pooling modules the paper's RM1 uses over long user-history sequences —
// the modules whose compute RecD deduplicates (O7): with a grouped IKJT
// the block runs once per unique row instead of once per batch row.
type AttentionBlock struct {
	Dim           int
	Wq, Wk, Wv    []float32 // Dim×Dim, row-major in→out
	dWq, dWk, dWv []float32

	// Adagrad accumulators, allocated on the first adaptive step.
	gsq [][]float32
}

// NewAttentionBlock initializes projection matrices from rng.
func NewAttentionBlock(dim int, rng *rand.Rand) *AttentionBlock {
	a := &AttentionBlock{
		Dim: dim,
		Wq:  make([]float32, dim*dim), Wk: make([]float32, dim*dim), Wv: make([]float32, dim*dim),
		dWq: make([]float32, dim*dim), dWk: make([]float32, dim*dim), dWv: make([]float32, dim*dim),
	}
	bound := float32(math.Sqrt(3.0 / float64(dim)))
	for _, w := range [][]float32{a.Wq, a.Wk, a.Wv} {
		for i := range w {
			w[i] = (rng.Float32()*2 - 1) * bound
		}
	}
	return a
}

// AttnCache holds intermediates of one Forward call for its backward.
type AttnCache struct {
	X, Q, K, V, S, Ctx tensor.Dense
}

// matmul computes C = A·B for row-major matrices (A: m×k, B: k×n).
func matmul(a tensor.Dense, b []float32, k, n int) tensor.Dense {
	c := tensor.NewDense(a.RowsN, n)
	for i := 0; i < a.RowsN; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for kk := 0; kk < k; kk++ {
			av := ai[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += av * brow[j]
			}
		}
	}
	return c
}

// Forward pools one sequence (n×Dim) to a Dim vector. Empty sequences
// pool to zero with a nil cache.
func (a *AttentionBlock) Forward(x tensor.Dense) ([]float32, *AttnCache) {
	n := x.RowsN
	out := make([]float32, a.Dim)
	if n == 0 {
		return out, nil
	}
	c := &AttnCache{X: x}
	c.Q = matmul(x, a.Wq, a.Dim, a.Dim)
	c.K = matmul(x, a.Wk, a.Dim, a.Dim)
	c.V = matmul(x, a.Wv, a.Dim, a.Dim)

	invSqrt := float32(1 / math.Sqrt(float64(a.Dim)))
	c.S = tensor.NewDense(n, n)
	for i := 0; i < n; i++ {
		qi := c.Q.Row(i)
		si := c.S.Row(i)
		maxv := float32(math.Inf(-1))
		for j := 0; j < n; j++ {
			kj := c.K.Row(j)
			var dot float32
			for d := 0; d < a.Dim; d++ {
				dot += qi[d] * kj[d]
			}
			si[j] = dot * invSqrt
			if si[j] > maxv {
				maxv = si[j]
			}
		}
		var sum float32
		for j := range si {
			si[j] = float32(math.Exp(float64(si[j] - maxv)))
			sum += si[j]
		}
		inv := 1 / sum
		for j := range si {
			si[j] *= inv
		}
	}

	c.Ctx = tensor.NewDense(n, a.Dim)
	for i := 0; i < n; i++ {
		si := c.S.Row(i)
		ci := c.Ctx.Row(i)
		for j := 0; j < n; j++ {
			vj := c.V.Row(j)
			sv := si[j]
			for d := 0; d < a.Dim; d++ {
				ci[d] += sv * vj[d]
			}
		}
	}

	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		ci := c.Ctx.Row(i)
		for d := 0; d < a.Dim; d++ {
			out[d] += ci[d] * invN
		}
	}
	return out, c
}

// Backward consumes dOut (Dim) for one cached Forward, accumulates weight
// gradients, and returns dX (n×Dim). The caller pre-scales dOut when one
// deduplicated forward stands for several duplicate rows.
func (a *AttentionBlock) Backward(c *AttnCache, dOut []float32) tensor.Dense {
	if c == nil {
		return tensor.Dense{}
	}
	n := c.X.RowsN
	d := a.Dim
	invN := 1 / float32(n)

	// Mean pool backward.
	dCtx := tensor.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := dCtx.Row(i)
		for j := 0; j < d; j++ {
			row[j] = dOut[j] * invN
		}
	}

	// Ctx = S·V.
	dS := tensor.NewDense(n, n)
	dV := tensor.NewDense(n, d)
	for i := 0; i < n; i++ {
		dci := dCtx.Row(i)
		si := c.S.Row(i)
		dsi := dS.Row(i)
		for j := 0; j < n; j++ {
			vj := c.V.Row(j)
			dvj := dV.Row(j)
			var dot float32
			sv := si[j]
			for k := 0; k < d; k++ {
				dot += dci[k] * vj[k]
				dvj[k] += sv * dci[k]
			}
			dsi[j] = dot
		}
	}

	// Softmax backward per row: dZ = (dS - (dS·S)) ⊙ S, then scale by
	// 1/√d from Z = QKᵀ/√d.
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	dZ := tensor.NewDense(n, n)
	for i := 0; i < n; i++ {
		si := c.S.Row(i)
		dsi := dS.Row(i)
		var dot float32
		for j := 0; j < n; j++ {
			dot += dsi[j] * si[j]
		}
		dzi := dZ.Row(i)
		for j := 0; j < n; j++ {
			dzi[j] = (dsi[j] - dot) * si[j] * invSqrt
		}
	}

	// Z = Q·Kᵀ: dQ = dZ·K, dK = dZᵀ·Q.
	dQ := tensor.NewDense(n, d)
	dK := tensor.NewDense(n, d)
	for i := 0; i < n; i++ {
		dzi := dZ.Row(i)
		dqi := dQ.Row(i)
		qi := c.Q.Row(i)
		for j := 0; j < n; j++ {
			kj := c.K.Row(j)
			dkj := dK.Row(j)
			z := dzi[j]
			if z == 0 {
				continue
			}
			for k := 0; k < d; k++ {
				dqi[k] += z * kj[k]
				dkj[k] += z * qi[k]
			}
		}
	}

	// Projections: P = X·W ⇒ dW += Xᵀ·dP, dX += dP·Wᵀ.
	dX := tensor.NewDense(n, d)
	accumProj := func(dP tensor.Dense, w, dw []float32) {
		for i := 0; i < n; i++ {
			xi := c.X.Row(i)
			dpi := dP.Row(i)
			dxi := dX.Row(i)
			for k := 0; k < d; k++ {
				xv := xi[k]
				dwrow := dw[k*d : (k+1)*d]
				wrow := w[k*d : (k+1)*d]
				var acc float32
				for o := 0; o < d; o++ {
					dwrow[o] += xv * dpi[o]
					acc += dpi[o] * wrow[o]
				}
				dxi[k] += acc
			}
		}
	}
	accumProj(dQ, a.Wq, a.dWq)
	accumProj(dK, a.Wk, a.dWk)
	accumProj(dV, a.Wv, a.dWv)
	return dX
}

// Step applies SGD and zeroes gradients.
func (a *AttentionBlock) Step(lr float32) { a.Apply(SGD, lr) }

// Apply updates the projections under the given optimizer.
func (a *AttentionBlock) Apply(opt Optimizer, lr float32) {
	pairs := []struct{ w, g []float32 }{{a.Wq, a.dWq}, {a.Wk, a.dWk}, {a.Wv, a.dWv}}
	if opt == Adagrad {
		if a.gsq == nil {
			a.gsq = make([][]float32, len(pairs))
			for i := range a.gsq {
				a.gsq[i] = make([]float32, a.Dim*a.Dim)
			}
		}
		for i, p := range pairs {
			adagradApply(p.w, p.g, a.gsq[i], lr)
		}
		return
	}
	for _, p := range pairs {
		sgdApply(p.w, p.g, lr)
	}
}

// ParamCount returns trainable parameter count.
func (a *AttentionBlock) ParamCount() int64 { return int64(3 * a.Dim * a.Dim) }

// FLOPsForSeq estimates forward flops for one sequence of length n:
// three projections (2nd² each) plus QKᵀ and S·V (2n²d each).
func (a *AttentionBlock) FLOPsForSeq(n int) float64 {
	d := float64(a.Dim)
	nf := float64(n)
	return 6*nf*d*d + 4*nf*nf*d
}
