package trainer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/reader"
)

// EvalMetrics are the standard DLRM evaluation measures: log loss (the
// training objective on held-out data), ROC AUC (ranking quality), and
// calibration (mean prediction over mean label; 1.0 is perfectly
// calibrated). The paper's accuracy discussion (§6.2) concerns how
// clustering affects generalization; these metrics quantify it.
type EvalMetrics struct {
	LogLoss      float64
	AUC          float64
	Calibration  float64
	Samples      int
	PositiveRate float64
}

// Evaluate runs inference over the batches and computes held-out metrics.
func (m *Model) Evaluate(batches []*reader.Batch, mode Mode) (EvalMetrics, error) {
	var preds []float64
	var labels []float32
	for _, b := range batches {
		p, err := m.Predict(b, mode)
		if err != nil {
			return EvalMetrics{}, err
		}
		preds = append(preds, p...)
		labels = append(labels, b.Labels...)
	}
	return ComputeMetrics(preds, labels)
}

// ComputeMetrics computes log loss, AUC, and calibration for predictions
// against binary labels.
func ComputeMetrics(preds []float64, labels []float32) (EvalMetrics, error) {
	if len(preds) != len(labels) {
		return EvalMetrics{}, fmt.Errorf("trainer: %d predictions for %d labels", len(preds), len(labels))
	}
	if len(preds) == 0 {
		return EvalMetrics{}, fmt.Errorf("trainer: no samples to evaluate")
	}
	const eps = 1e-12
	var ll, meanPred, meanLabel float64
	for i, p := range preds {
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		y := float64(labels[i])
		ll += -(y*math.Log(p) + (1-y)*math.Log(1-p))
		meanPred += p
		meanLabel += y
	}
	n := float64(len(preds))
	m := EvalMetrics{
		LogLoss:      ll / n,
		Samples:      len(preds),
		PositiveRate: meanLabel / n,
	}
	if meanLabel > 0 {
		m.Calibration = meanPred / meanLabel
	}
	m.AUC = auc(preds, labels)
	return m, nil
}

// auc computes the ROC AUC via the rank-sum (Mann-Whitney) formulation,
// with tie handling through average ranks.
func auc(preds []float64, labels []float32) float64 {
	type pair struct {
		p float64
		y float32
	}
	pairs := make([]pair, len(preds))
	for i := range preds {
		pairs[i] = pair{preds[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].p < pairs[j].p })

	var nPos, nNeg float64
	var rankSum float64
	i := 0
	rank := 1.0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].p == pairs[i].p {
			j++
		}
		// Average rank for the tie group [i, j).
		avgRank := (rank + rank + float64(j-i) - 1) / 2
		for k := i; k < j; k++ {
			if pairs[k].y > 0 {
				rankSum += avgRank
				nPos++
			} else {
				nNeg++
			}
		}
		rank += float64(j - i)
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}
