package trainer

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// PoolKind selects how embedding activations of one feature list are
// aggregated to a single vector per row (paper §2.2).
type PoolKind int

const (
	// SumPool adds element embeddings.
	SumPool PoolKind = iota
	// MeanPool averages element embeddings.
	MeanPool
	// MaxPool takes the element-wise maximum.
	MaxPool
	// AttentionPool runs a self-attention block over the embedding
	// sequence (paper §5 "Deduplicated Pooling"; the expensive module
	// RecD deduplicates for RM1's transformers).
	AttentionPool
)

// String names the pooling kind.
func (p PoolKind) String() string {
	switch p {
	case SumPool:
		return "sum"
	case MeanPool:
		return "mean"
	case MaxPool:
		return "max"
	case AttentionPool:
		return "attention"
	}
	return fmt.Sprintf("PoolKind(%d)", int(p))
}

// EmbeddingBag is one embedding table with pooled lookups and sparse SGD.
// IDs are hashed into the table with a multiplicative hash so arbitrary
// ID spaces fit any table size.
type EmbeddingBag struct {
	Rows int
	Dim  int
	W    []float32 // Rows×Dim

	grads map[int][]float32
	// gsq holds Adagrad accumulators per table coordinate, allocated on
	// the first adaptive step.
	gsq []float32

	// caches for backward
	lastIDs    tensor.Jagged
	lastPool   PoolKind
	lastArgmax [][]int // MaxPool: winning list position per row per dim
}

// NewEmbeddingBag allocates and initializes a table.
func NewEmbeddingBag(rows, dim int, rng *rand.Rand) (*EmbeddingBag, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("trainer: embedding table %dx%d invalid", rows, dim)
	}
	e := &EmbeddingBag{
		Rows:  rows,
		Dim:   dim,
		W:     make([]float32, rows*dim),
		grads: make(map[int][]float32),
	}
	scale := float32(0.1)
	for i := range e.W {
		e.W[i] = (rng.Float32()*2 - 1) * scale
	}
	return e, nil
}

// slot maps an arbitrary ID into the table.
func (e *EmbeddingBag) slot(id tensor.Value) int {
	x := uint64(id) * 0x9E3779B97F4A7C15
	x ^= x >> 31
	return int(x % uint64(e.Rows))
}

// row returns the embedding vector of a slot.
func (e *EmbeddingBag) row(slot int) []float32 {
	return e.W[slot*e.Dim : (slot+1)*e.Dim]
}

// LookupPooled gathers and pools embeddings for every row of ids. Empty
// lists pool to the zero vector. The output has ids.Rows() rows.
func (e *EmbeddingBag) LookupPooled(ids tensor.Jagged, pool PoolKind) (tensor.Dense, error) {
	if pool == AttentionPool {
		return tensor.Dense{}, fmt.Errorf("trainer: attention pooling is done by AttentionBlock, not EmbeddingBag")
	}
	e.lastIDs = ids
	e.lastPool = pool
	e.lastArgmax = nil
	out := tensor.NewDense(ids.Rows(), e.Dim)
	if pool == MaxPool {
		e.lastArgmax = make([][]int, ids.Rows())
	}
	for i := 0; i < ids.Rows(); i++ {
		lst := ids.Row(i)
		o := out.Row(i)
		switch pool {
		case SumPool, MeanPool:
			for _, id := range lst {
				r := e.row(e.slot(id))
				for d := range o {
					o[d] += r[d]
				}
			}
			if pool == MeanPool && len(lst) > 0 {
				inv := 1 / float32(len(lst))
				for d := range o {
					o[d] *= inv
				}
			}
		case MaxPool:
			am := make([]int, e.Dim)
			for d := range am {
				am[d] = -1
			}
			for li, id := range lst {
				r := e.row(e.slot(id))
				for d := range o {
					if am[d] == -1 || r[d] > o[d] {
						o[d] = r[d]
						am[d] = li
					}
				}
			}
			e.lastArgmax[i] = am
		}
	}
	return out, nil
}

// LookupSeq gathers the raw embedding sequence for one row (len(list)×Dim)
// for attention pooling. The caller is responsible for backward via
// AccumulateSeqGrad.
func (e *EmbeddingBag) LookupSeq(ids []tensor.Value) tensor.Dense {
	out := tensor.NewDense(len(ids), e.Dim)
	for i, id := range ids {
		copy(out.Row(i), e.row(e.slot(id)))
	}
	return out
}

// BackwardPooled consumes dOut (rows×Dim) for the last LookupPooled call
// and accumulates sparse gradients.
func (e *EmbeddingBag) BackwardPooled(dOut tensor.Dense) error {
	ids := e.lastIDs
	if dOut.RowsN != ids.Rows() || dOut.Cols != e.Dim {
		return fmt.Errorf("trainer: embedding backward shape %dx%d, want %dx%d",
			dOut.RowsN, dOut.Cols, ids.Rows(), e.Dim)
	}
	for i := 0; i < ids.Rows(); i++ {
		lst := ids.Row(i)
		g := dOut.Row(i)
		switch e.lastPool {
		case SumPool, MeanPool:
			scale := float32(1)
			if e.lastPool == MeanPool && len(lst) > 0 {
				scale = 1 / float32(len(lst))
			}
			for _, id := range lst {
				acc := e.gradRow(e.slot(id))
				for d := range g {
					acc[d] += g[d] * scale
				}
			}
		case MaxPool:
			am := e.lastArgmax[i]
			for d, li := range am {
				if li < 0 {
					continue
				}
				acc := e.gradRow(e.slot(lst[li]))
				acc[d] += g[d]
			}
		}
	}
	return nil
}

// AccumulateSeqGrad adds gradients for one row's embedding sequence, the
// backward of LookupSeq. scale multiplies the gradient, which lets the
// RecD path apply one deduplicated attention backward for k duplicate
// rows by scaling with k.
func (e *EmbeddingBag) AccumulateSeqGrad(ids []tensor.Value, dSeq tensor.Dense, scale float32) {
	for i, id := range ids {
		acc := e.gradRow(e.slot(id))
		g := dSeq.Row(i)
		for d := range acc {
			acc[d] += g[d] * scale
		}
	}
}

func (e *EmbeddingBag) gradRow(slot int) []float32 {
	acc, ok := e.grads[slot]
	if !ok {
		acc = make([]float32, e.Dim)
		e.grads[slot] = acc
	}
	return acc
}

// Step applies sparse SGD and clears accumulated gradients.
func (e *EmbeddingBag) Step(lr float32) { e.Apply(SGD, lr) }

// Apply performs a sparse update under the given optimizer: only rows
// with pending gradients are touched (production "row-wise" sparse
// Adagrad visits the same rows).
func (e *EmbeddingBag) Apply(opt Optimizer, lr float32) {
	if opt == Adagrad && e.gsq == nil {
		e.gsq = make([]float32, len(e.W))
	}
	for slot, g := range e.grads {
		r := e.row(slot)
		if opt == Adagrad {
			gs := e.gsq[slot*e.Dim : (slot+1)*e.Dim]
			adagradApply(r, g, gs, lr)
		} else {
			sgdApply(r, g, lr)
		}
		delete(e.grads, slot)
	}
}

// PendingGradRows reports how many distinct table rows have gradients —
// the sparse-update volume the optimizer's EMB all-to-all synchronizes.
func (e *EmbeddingBag) PendingGradRows() int { return len(e.grads) }

// ParamCount returns the table size.
func (e *EmbeddingBag) ParamCount() int64 { return int64(len(e.W)) }

// Bytes returns the table's memory footprint.
func (e *EmbeddingBag) Bytes() int64 { return int64(len(e.W)) * 4 }
