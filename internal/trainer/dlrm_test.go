package trainer

import (
	"context"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dwrf"
	"repro/internal/etl"
	"repro/internal/lakefs"
	"repro/internal/reader"
	"repro/internal/tensor"
)

// makeBatches generates a clustered synthetic partition and reads it back
// through the reader tier with dedup groups, so every batch carries IKJTs
// that can be run in either mode.
func makeBatches(t testing.TB, sessions, batchSize int) []*reader.Batch {
	t.Helper()
	schema := datagen.StandardSchema(datagen.StandardSchemaConfig{
		UserSeq: 2, UserElem: 2, Item: 1, Dense: 4, SeqLen: 12, Seed: 5,
	})
	gen := datagen.NewGenerator(schema, datagen.GeneratorConfig{
		Sessions: sessions, MeanSamplesPerSession: 5, Seed: 21,
	})
	samples := etl.ClusterBySession(gen.GeneratePartition())
	store := lakefs.NewStore()
	catalog := lakefs.NewCatalog()
	if _, err := dwrf.WritePartition(store, catalog, "tbl", 0, schema, samples, dwrf.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	spec := reader.Spec{
		Table:          "tbl",
		BatchSize:      batchSize,
		SparseFeatures: []string{"item_0"},
		DedupSparseFeatures: [][]string{
			{"user_seq_0", "user_seq_1"},
			{"user_elem_0", "user_elem_1"},
		},
	}
	r, err := reader.NewReader(store, spec)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := catalog.AllFiles("tbl")
	var batches []*reader.Batch
	if err := r.Run(context.Background(), files, func(b *reader.Batch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	return batches
}

func modelConfig() Config {
	return Config{
		EmbDim:       8,
		DenseIn:      4,
		BottomHidden: []int{16},
		TopHidden:    []int{16},
		Features: []FeatureConfig{
			{Key: "user_seq_0", Pool: AttentionPool, TableRows: 1 << 10},
			{Key: "user_seq_1", Pool: SumPool, TableRows: 1 << 10},
			{Key: "user_elem_0", Pool: MeanPool, TableRows: 1 << 10},
			{Key: "user_elem_1", Pool: MaxPool, TableRows: 1 << 10},
			{Key: "item_0", Pool: SumPool, TableRows: 1 << 10},
		},
		LR:   0.05,
		Seed: 1234,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	cfg := modelConfig()
	cfg.Features = append(cfg.Features, cfg.Features[0]) // duplicate key
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for duplicate feature")
	}
	cfg = modelConfig()
	cfg.Features = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for no features")
	}
}

// TestForwardModeEquivalence is the paper's central accuracy claim
// (§6.2 "IKJTs encode the exact same logical data"): the RecD execution
// path produces bit-identical logits to the baseline path on the same
// batch with the same weights.
func TestForwardModeEquivalence(t *testing.T) {
	batches := makeBatches(t, 30, 32)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for bi, b := range batches {
		base, _, _, err := m.Forward(b, Baseline)
		if err != nil {
			t.Fatal(err)
		}
		recd, _, _, err := m.Forward(b, RecD)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Data {
			if base.Data[i] != recd.Data[i] {
				t.Fatalf("batch %d logit %d differs: %v vs %v", bi, i, base.Data[i], recd.Data[i])
			}
		}
	}
}

// TestTrainingModeEquivalence trains two identically initialized models,
// one per mode, on the same batches; losses must track within float
// accumulation noise.
func TestTrainingModeEquivalence(t *testing.T) {
	batches := makeBatches(t, 30, 32)
	mBase, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	mRecD, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		for bi, b := range batches {
			lb, _, err := mBase.TrainStep(b, Baseline)
			if err != nil {
				t.Fatal(err)
			}
			lr, _, err := mRecD.TrainStep(b, RecD)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(lb-lr) > 1e-4*math.Max(1, math.Abs(lb)) {
				t.Fatalf("epoch %d batch %d: losses diverged %v vs %v", epoch, bi, lb, lr)
			}
		}
	}
}

// TestTrainingConverges: loss on a fixed batch decreases over steps.
func TestTrainingConverges(t *testing.T) {
	batches := makeBatches(t, 30, 64)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := batches[0]
	var first, last float64
	for it := 0; it < 30; it++ {
		loss, _, err := m.TrainStep(b, RecD)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

// TestCostReportSavings asserts the resource arithmetic behind Fig 6:
// RecD does fewer lookups, fewer pooling flops, fewer SDD and EMB-return
// bytes, at the cost of index-select traffic — which is itself far
// cheaper than the pre-O6 padded expansion.
func TestCostReportSavings(t *testing.T) {
	batches := makeBatches(t, 40, 64)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	var base, recd CostReport
	for _, b := range batches {
		_, _, cb, err := m.Forward(b, Baseline)
		if err != nil {
			t.Fatal(err)
		}
		base.Add(cb)
		_, _, cr, err := m.Forward(b, RecD)
		if err != nil {
			t.Fatal(err)
		}
		recd.Add(cr)
	}

	if recd.EmbLookups >= base.EmbLookups {
		t.Fatalf("RecD lookups %d not fewer than baseline %d", recd.EmbLookups, base.EmbLookups)
	}
	if recd.EmbActivationBytes >= base.EmbActivationBytes {
		t.Fatal("RecD should shrink activation memory")
	}
	if recd.PoolFLOPs >= base.PoolFLOPs {
		t.Fatal("RecD should shrink pooling flops")
	}
	if recd.SDDBytes >= base.SDDBytes {
		t.Fatal("RecD should shrink SDD bytes")
	}
	if recd.EmbOutBytes >= base.EmbOutBytes {
		t.Fatal("RecD should shrink embedding-return bytes")
	}
	if base.IndexSelectBytes != 0 {
		t.Fatal("baseline should not pay index select")
	}
	if recd.IndexSelectBytes == 0 {
		t.Fatal("RecD must account index select")
	}
	if recd.PaddedExpandBytes <= recd.IndexSelectBytes {
		t.Fatal("padded expansion should cost more than jagged index select")
	}
	// Dense flops are mode-independent (same batch, same model).
	if base.DenseFLOPs != recd.DenseFLOPs {
		t.Fatalf("dense flops should match: %v vs %v", base.DenseFLOPs, recd.DenseFLOPs)
	}
	t.Logf("lookups %.2fx, pool flops %.2fx, SDD bytes %.2fx",
		float64(base.EmbLookups)/float64(recd.EmbLookups),
		base.PoolFLOPs/recd.PoolFLOPs,
		float64(base.SDDBytes)/float64(recd.SDDBytes))
}

func TestForwardErrors(t *testing.T) {
	batches := makeBatches(t, 5, 16)
	cfg := modelConfig()
	cfg.Features = append(cfg.Features, FeatureConfig{Key: "ghost", Pool: SumPool})
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Forward(batches[0], RecD); err == nil {
		t.Fatal("expected error for missing feature")
	}

	cfg = modelConfig()
	cfg.DenseIn = 99
	m, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Forward(batches[0], Baseline); err == nil {
		t.Fatal("expected error for dense width mismatch")
	}
}

func TestPredictProbabilities(t *testing.T) {
	batches := makeBatches(t, 10, 16)
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.Predict(batches[0], RecD)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != batches[0].Size {
		t.Fatalf("got %d probs for %d rows", len(probs), batches[0].Size)
	}
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestParamAccounting(t *testing.T) {
	m, err := New(modelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.DenseParamCount() <= 0 {
		t.Fatal("dense params should be positive")
	}
	// 5 tables × 1024 rows × 8 dim × 4 bytes.
	want := int64(5 * 1024 * 8 * 4)
	if got := m.EmbParamBytes(); got != want {
		t.Fatalf("EmbParamBytes = %d want %d", got, want)
	}
}

func TestBCEWithLogits(t *testing.T) {
	logits := tensorDenseFromValues([]float32{0, 5, -5})
	labels := []float32{1, 1, 0}
	loss, grad, err := BCEWithLogits(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	// z=0,y=1 → ln2; z=5,y=1 → ~0.0067; z=-5,y=0 → ~0.0067.
	want := (math.Log(2) + 2*0.006715) / 3
	if math.Abs(loss-want) > 1e-4 {
		t.Fatalf("loss = %v want ≈%v", loss, want)
	}
	// grad = (sigmoid(z)-y)/n.
	if math.Abs(float64(grad.At(0, 0))-(0.5-1)/3) > 1e-5 {
		t.Fatalf("grad[0] = %v", grad.At(0, 0))
	}
	if _, _, err := BCEWithLogits(logits, []float32{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func tensorDenseFromValues(vals []float32) tensor.Dense {
	d := tensor.NewDense(len(vals), 1)
	copy(d.Data, vals)
	return d
}
