package trainer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGrad estimates dLoss/dparam by central differences.
func numericGrad(param *float32, loss func() float64) float64 {
	const eps = 1e-3
	orig := *param
	*param = orig + eps
	lp := loss()
	*param = orig - eps
	lm := loss()
	*param = orig
	return (lp - lm) / (2 * eps)
}

// scalarLoss squares-and-sums the output so dOut = 2·out.
func scalarLoss(out tensor.Dense) float64 {
	var s float64
	for _, v := range out.Data {
		s += float64(v) * float64(v)
	}
	return s
}

func lossGrad(out tensor.Dense) tensor.Dense {
	g := tensor.NewDense(out.RowsN, out.Cols)
	for i, v := range out.Data {
		g.Data[i] = 2 * v
	}
	return g
}

func TestLinearForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(2, 2, rng)
	l.W = []float32{1, 2, 3, 4} // row 0: [1,2], row 1: [3,4]
	l.B = []float32{10, 20}
	x := tensor.NewDense(1, 2)
	x.Data[0], x.Data[1] = 1, 1
	y := l.Forward(x)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("forward = %v want [13 27]", y.Data)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(3, 2, rng)
	x := tensor.NewDense(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}

	loss := func() float64 { return scalarLoss(l.Forward(x)) }

	out := l.Forward(x)
	dX := l.Backward(lossGrad(out))

	// Weight gradients.
	for _, idx := range []int{0, 3, 5} {
		want := numericGrad(&l.W[idx], loss)
		got := float64(l.dW[idx])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dW[%d] = %v want %v", idx, got, want)
		}
	}
	// Bias gradients.
	want := numericGrad(&l.B[1], loss)
	if got := float64(l.dB[1]); math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
		t.Fatalf("dB[1] = %v want %v", got, want)
	}
	// Input gradients.
	wantX := numericGrad(&x.Data[2], loss)
	if got := float64(dX.Data[2]); math.Abs(got-wantX) > 1e-2*math.Max(1, math.Abs(wantX)) {
		t.Fatalf("dX[2] = %v want %v", got, wantX)
	}
}

func TestLinearStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(2, 1, rng)
	l.dW[0] = 1
	l.dB[0] = 2
	w0, b0 := l.W[0], l.B[0]
	l.Step(0.1)
	if math.Abs(float64(l.W[0]-(w0-0.1))) > 1e-6 {
		t.Fatalf("W update wrong: %v", l.W[0])
	}
	if math.Abs(float64(l.B[0]-(b0-0.2))) > 1e-6 {
		t.Fatalf("B update wrong: %v", l.B[0])
	}
	if l.dW[0] != 0 || l.dB[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewMLP([]int{3, 5, 2}, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(3, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	loss := func() float64 { return scalarLoss(m.Forward(x)) }

	out := m.Forward(x)
	dX := m.Backward(lossGrad(out))

	for li, l := range m.Layers {
		idx := li // probe one weight per layer
		want := numericGrad(&l.W[idx], loss)
		got := float64(l.dW[idx])
		if math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("layer %d dW[%d] = %v want %v", li, idx, got, want)
		}
	}

	wantX := numericGrad(&x.Data[0], loss)
	if got := float64(dX.Data[0]); math.Abs(got-wantX) > 2e-2*math.Max(1, math.Abs(wantX)) {
		t.Fatalf("dX[0] = %v want %v", got, wantX)
	}
}

func TestMLPFinalReLUNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewMLP([]int{4, 4}, true, rng)
	x := tensor.NewDense(8, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*4 - 2
	}
	out := m.Forward(x)
	for _, v := range out.Data {
		if v < 0 {
			t.Fatalf("final ReLU output negative: %v", v)
		}
	}
}

func TestMLPInvalidSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewMLP([]int{3}, false, rng); err == nil {
		t.Fatal("expected error for single size")
	}
	if _, err := NewMLP([]int{3, 0}, false, rng); err == nil {
		t.Fatal("expected error for zero width")
	}
}

func TestMLPParamAndFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := NewMLP([]int{10, 20, 5}, false, rng)
	wantParams := int64(10*20 + 20 + 20*5 + 5)
	if got := m.ParamCount(); got != wantParams {
		t.Fatalf("ParamCount = %d want %d", got, wantParams)
	}
	wantFLOPs := float64(2 * 32 * (10*20 + 20*5))
	if got := m.ForwardFLOPs(32); got != wantFLOPs {
		t.Fatalf("ForwardFLOPs = %v want %v", got, wantFLOPs)
	}
}

// TestMLPTrainsOnToyProblem verifies gradient descent actually learns:
// separate two Gaussian blobs with a small MLP and BCE loss.
func TestMLPTrainsOnToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, _ := NewMLP([]int{2, 8, 1}, false, rng)

	n := 64
	x := tensor.NewDense(n, 2)
	labels := make([]float32, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, rng.Float32()+1)
			x.Set(i, 1, rng.Float32()+1)
			labels[i] = 1
		} else {
			x.Set(i, 0, -rng.Float32()-1)
			x.Set(i, 1, -rng.Float32()-1)
		}
	}

	var first, last float64
	for it := 0; it < 200; it++ {
		out := m.Forward(x)
		loss, grad, err := BCEWithLogits(out, labels)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
		m.Backward(grad)
		m.Step(0.5)
	}
	if last > first/4 {
		t.Fatalf("training did not converge: first %.4f last %.4f", first, last)
	}
}
